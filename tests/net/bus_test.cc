#include "net/bus.h"

#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace lla::net {
namespace {

Message Ping(EndpointId from, EndpointId to, double mu = 1.0) {
  Message message;
  message.sender = from;
  message.receiver = to;
  message.payload = ResourcePriceUpdate{ResourceId(0u), mu, 0, false};
  return message;
}

TEST(BusTest, DeliversInTimestampOrder) {
  BusConfig config;
  config.base_delay_ms = 1.0;
  InProcessBus bus(config);
  std::vector<double> received;
  const EndpointId a = bus.Register("a", [&](const Message& m) {
    received.push_back(std::get<ResourcePriceUpdate>(m.payload).mu);
  });
  const EndpointId b = bus.Register("b", nullptr);
  bus.Send(Ping(b, a, 1.0));
  bus.Send(Ping(b, a, 2.0));
  bus.RunAll();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_DOUBLE_EQ(received[0], 1.0);  // FIFO for equal timestamps
  EXPECT_DOUBLE_EQ(received[1], 2.0);
  EXPECT_DOUBLE_EQ(bus.now_ms(), 1.0);
}

TEST(BusTest, AppliesBaseDelay) {
  BusConfig config;
  config.base_delay_ms = 5.0;
  InProcessBus bus(config);
  double delivered_at = -1.0;
  const EndpointId a =
      bus.Register("a", [&](const Message&) { delivered_at = bus.now_ms(); });
  bus.Send(Ping(a, a));
  bus.RunAll();
  EXPECT_DOUBLE_EQ(delivered_at, 5.0);
}

TEST(BusTest, JitterIsDeterministicPerSeed) {
  auto trace = [](std::uint64_t seed) {
    BusConfig config;
    config.base_delay_ms = 1.0;
    config.jitter_ms = 4.0;
    config.seed = seed;
    InProcessBus bus(config);
    std::vector<double> times;
    const EndpointId a =
        bus.Register("a", [&](const Message&) { times.push_back(bus.now_ms()); });
    for (int i = 0; i < 20; ++i) bus.Send(Ping(a, a));
    bus.RunAll();
    return times;
  };
  EXPECT_EQ(trace(3), trace(3));
  EXPECT_NE(trace(3), trace(4));
}

TEST(BusTest, DropsMessagesAtConfiguredRate) {
  BusConfig config;
  config.drop_probability = 0.5;
  config.seed = 11;
  InProcessBus bus(config);
  int received = 0;
  const EndpointId a =
      bus.Register("a", [&](const Message&) { ++received; });
  const int sent = 2000;
  for (int i = 0; i < sent; ++i) bus.Send(Ping(a, a));
  bus.RunAll();
  EXPECT_EQ(bus.stats().sent, static_cast<std::uint64_t>(sent));
  EXPECT_EQ(bus.stats().delivered + bus.stats().dropped,
            static_cast<std::uint64_t>(sent));
  EXPECT_NEAR(static_cast<double>(received) / sent, 0.5, 0.05);
}

TEST(BusTest, RunUntilStopsAtHorizon) {
  BusConfig config;
  config.base_delay_ms = 10.0;
  InProcessBus bus(config);
  int received = 0;
  const EndpointId a =
      bus.Register("a", [&](const Message&) { ++received; });
  bus.Send(Ping(a, a));          // delivery at t=10
  bus.RunUntil(5.0);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.pending(), 1u);
  EXPECT_DOUBLE_EQ(bus.now_ms(), 5.0);
  bus.RunUntil(10.0);
  EXPECT_EQ(received, 1);
}

TEST(BusTest, TimersFireAndCanReschedule) {
  InProcessBus bus;
  int fired = 0;
  EndpointId a = 0;
  a = bus.Register("a", nullptr, [&](std::uint64_t token) {
    ++fired;
    if (token < 3) bus.ScheduleTimer(a, 1.0, token + 1);
  });
  bus.ScheduleTimer(a, 1.0, 1);
  bus.RunUntil(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(bus.stats().timers_fired, 3u);
}

TEST(BusTest, AccountsBytes) {
  InProcessBus bus;
  const EndpointId a = bus.Register("a", nullptr);
  Message message = Ping(a, a);
  bus.Send(message);
  EXPECT_EQ(bus.stats().bytes, WireSize(message));
}

TEST(BusTest, EndpointNames) {
  InProcessBus bus;
  const EndpointId a = bus.Register("alpha", nullptr);
  EXPECT_EQ(bus.endpoint_name(a), "alpha");
}

TEST(BusTest, DropIncrementsGlobalAndBothEndpointCounters) {
  // Regression: CountDrop used to nest the per-endpoint increments inside
  // the global counter's null check; the three counters are independent and
  // must each tick on a drop (sender, receiver, and global).
  obs::MetricRegistry metrics;
  BusConfig config;
  config.metrics = &metrics;
  InProcessBus bus(config);
  const EndpointId a = bus.Register("a", nullptr);
  const EndpointId b = bus.Register("b", nullptr);
  bus.BlackoutEndpoint(b, 100.0);
  bus.Send(Ping(a, b));
  EXPECT_EQ(metrics.GetCounter("bus.dropped")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("bus.endpoint.a.dropped")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("bus.endpoint.b.dropped")->value(), 1u);
  // The send itself was still accounted before the drop decision.
  EXPECT_EQ(metrics.GetCounter("bus.sent")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("bus.endpoint.a.sent")->value(), 1u);
  EXPECT_EQ(bus.stats().dropped, 1u);
}

TEST(BusTest, StampsSenderIncarnationOnSend) {
  InProcessBus bus;
  std::vector<std::uint32_t> seen;
  EndpointId a = 0;
  const EndpointId b = bus.Register(
      "b", [&](const Message& m) { seen.push_back(m.incarnation); });
  a = bus.Register("a", nullptr);
  EXPECT_EQ(bus.incarnation(a), 0u);
  bus.Send(Ping(a, b));
  bus.RunAll();
  bus.CrashEndpoint(a);
  bus.RestartEndpoint(a);
  bus.RestartEndpoint(a);  // a second restart keeps counting up
  EXPECT_EQ(bus.incarnation(a), 2u);
  bus.Send(Ping(a, b));
  bus.RunAll();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 0u);
  EXPECT_EQ(seen[1], 2u);
}

TEST(BusTest, CrashedEndpointDropsTrafficUntilRestart) {
  BusConfig config;
  config.base_delay_ms = 1.0;
  InProcessBus bus(config);
  int received = 0;
  const EndpointId a = bus.Register("a", [&](const Message&) { ++received; });
  const EndpointId b = bus.Register("b", nullptr);

  bus.CrashEndpoint(a);
  EXPECT_TRUE(bus.IsBlackedOut(a));
  bus.Send(Ping(b, a));  // toward the crashed endpoint
  bus.Send(Ping(a, b));  // from the crashed endpoint
  bus.RunAll();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.stats().dropped, 2u);

  // Unlike BlackoutEndpoint, the crash is open-ended: it survives any
  // amount of virtual time until an explicit restart.
  bus.RunUntil(1e12);
  EXPECT_TRUE(bus.IsBlackedOut(a));

  bus.RestartEndpoint(a);
  EXPECT_FALSE(bus.IsBlackedOut(a));
  bus.Send(Ping(b, a));
  bus.RunAll();
  EXPECT_EQ(received, 1);
}

TEST(BusTest, InFlightMessageDropsWhenReceiverCrashesBeforeDelivery) {
  BusConfig config;
  config.base_delay_ms = 10.0;
  InProcessBus bus(config);
  int received = 0;
  const EndpointId a = bus.Register("a", [&](const Message&) { ++received; });
  const EndpointId b = bus.Register("b", nullptr);
  bus.Send(Ping(b, a));  // delivery would be at t=10
  bus.RunUntil(5.0);
  bus.CrashEndpoint(a);
  bus.RunAll();  // delivery attempt happens while a is down
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.stats().dropped, 1u);
}

}  // namespace
}  // namespace lla::net
