#include "net/message.h"

#include <gtest/gtest.h>

namespace lla::net {
namespace {

Message MakeLatencyMessage() {
  LatencyUpdate update;
  update.task = TaskId(2u);
  update.subtasks = {SubtaskId(5u), SubtaskId(9u)};
  update.latencies_ms = {12.75, 3.5};
  Message message;
  message.sender = 7;
  message.receiver = 3;
  message.payload = std::move(update);
  return message;
}

Message MakePriceMessage() {
  ResourcePriceUpdate update;
  update.resource = ResourceId(4u);
  update.mu = 179.25;
  update.epoch = 42;
  update.congested = true;
  Message message;
  message.sender = 1;
  message.receiver = 2;
  message.incarnation = 3;
  message.payload = update;
  return message;
}

Message MakeRepairRequestMessage() {
  RepairRequest request;
  request.resource = ResourceId(6u);
  Message message;
  message.sender = 9;
  message.receiver = 4;
  message.incarnation = 2;
  message.payload = request;
  return message;
}

Message MakeRepairResponseMessage() {
  RepairResponse repair;
  repair.resource = ResourceId(6u);
  repair.task = TaskId(1u);
  repair.mu = 37.5;
  repair.epoch = 250;
  repair.congested = true;
  repair.subtasks = {SubtaskId(3u), SubtaskId(8u)};
  repair.latencies_ms = {4.25, 0.5};
  Message message;
  message.sender = 4;
  message.receiver = 9;
  message.payload = std::move(repair);
  return message;
}

Message MakeShardLatencyMessage() {
  auto arena = std::make_shared<std::string>();
  const double latencies[] = {4.5, 9.25, -1.75};
  const ArenaSpan span = AppendShardLatencyPayload(latencies, 3, arena.get());
  ShardLatencyUpdate update;
  update.task = TaskId(5u);
  update.shard = 2;
  update.count = 3;
  update.payload = WireSlice(
      std::shared_ptr<const std::string>(std::move(arena)), span.offset,
      span.length);
  Message message;
  message.sender = 11;
  message.receiver = 6;
  message.payload = std::move(update);
  return message;
}

Message MakeShardPriceMessage(bool with_stale) {
  auto arena = std::make_shared<std::string>();
  const double mu[] = {10.0, 0.0, 256.5};
  const std::uint8_t congested[] = {1, 0, 1};
  const std::uint8_t stale[] = {0, 1, 0};
  const ArenaSpan span = AppendShardPricePayload(
      mu, congested, with_stale ? stale : nullptr, 3, arena.get());
  ShardPriceUpdate update;
  update.shard = 1;
  update.epoch = 77;
  update.count = 3;
  update.payload = WireSlice(
      std::shared_ptr<const std::string>(std::move(arena)), span.offset,
      span.length);
  Message message;
  message.sender = 6;
  message.receiver = 11;
  message.payload = std::move(update);
  return message;
}

TEST(MessageTest, LatencyUpdateRoundTrips) {
  const Message original = MakeLatencyMessage();
  const auto bytes = Serialize(original);
  const auto decoded = Deserialize(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(MessageTest, PriceUpdateRoundTrips) {
  const Message original = MakePriceMessage();
  const auto decoded = Deserialize(Serialize(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
  const auto& price = std::get<ResourcePriceUpdate>(decoded->payload);
  EXPECT_TRUE(price.congested);
  EXPECT_EQ(price.epoch, 42u);
}

TEST(MessageTest, EmptyLatencyUpdateRoundTrips) {
  Message message;
  message.payload = LatencyUpdate{TaskId(0u), {}, {}};
  const auto decoded = Deserialize(Serialize(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(MessageTest, RepairRequestRoundTrips) {
  const Message original = MakeRepairRequestMessage();
  const auto decoded = Deserialize(Serialize(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
  EXPECT_EQ(decoded->incarnation, 2u);
}

TEST(MessageTest, RepairResponseRoundTrips) {
  const Message original = MakeRepairResponseMessage();
  const auto decoded = Deserialize(Serialize(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
  const auto& repair = std::get<RepairResponse>(decoded->payload);
  EXPECT_EQ(repair.epoch, 250u);
  EXPECT_TRUE(repair.congested);
  ASSERT_EQ(repair.subtasks.size(), 2u);
  EXPECT_DOUBLE_EQ(repair.latencies_ms[1], 0.5);
}

TEST(MessageTest, IncarnationSurvivesRoundTrip) {
  Message message = MakePriceMessage();
  message.incarnation = 0xdeadbeef;
  const auto decoded = Deserialize(Serialize(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->incarnation, 0xdeadbeefu);
}

TEST(MessageTest, WireSizeMatchesSerializedLength) {
  for (const Message& message :
       {MakeLatencyMessage(), MakePriceMessage(), MakeRepairRequestMessage(),
        MakeRepairResponseMessage()}) {
    EXPECT_EQ(WireSize(message), Serialize(message).size());
  }
}

TEST(MessageTest, RejectsTruncatedInput) {
  auto bytes = Serialize(MakeLatencyMessage());
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + cut);
    EXPECT_FALSE(Deserialize(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(MessageTest, RejectsTrailingGarbage) {
  auto bytes = Serialize(MakePriceMessage());
  bytes.push_back(0xab);
  EXPECT_FALSE(Deserialize(bytes).has_value());
}

TEST(MessageTest, RejectsUnknownTag) {
  auto bytes = Serialize(MakePriceMessage());
  bytes[12] = 0x7f;  // tag byte follows sender, receiver and incarnation
  EXPECT_FALSE(Deserialize(bytes).has_value());
}

TEST(MessageTest, RejectsEmptyInput) {
  EXPECT_FALSE(Deserialize({}).has_value());
}

TEST(MessageTest, ShardLatencyUpdateRoundTrips) {
  const Message original = MakeShardLatencyMessage();
  const auto decoded = Deserialize(Serialize(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
  const auto& update = std::get<ShardLatencyUpdate>(decoded->payload);
  std::vector<double> latencies;
  ASSERT_TRUE(DecodeShardLatencyUpdate(update, &latencies));
  ASSERT_EQ(latencies.size(), 3u);
  EXPECT_DOUBLE_EQ(latencies[0], 4.5);
  EXPECT_DOUBLE_EQ(latencies[2], -1.75);
}

TEST(MessageTest, ShardPriceUpdateRoundTrips) {
  for (const bool with_stale : {false, true}) {
    const Message original = MakeShardPriceMessage(with_stale);
    const auto decoded = Deserialize(Serialize(original));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, original);
    const auto& update = std::get<ShardPriceUpdate>(decoded->payload);
    EXPECT_EQ(update.epoch, 77u);
    std::vector<double> mu;
    ShardPriceBitsets bits;
    ASSERT_TRUE(DecodeShardPriceUpdate(update, &mu, &bits));
    ASSERT_EQ(mu.size(), 3u);
    EXPECT_DOUBLE_EQ(mu[0], 10.0);
    EXPECT_DOUBLE_EQ(mu[2], 256.5);
    EXPECT_TRUE(TestWireBit(bits.congested, 0));
    EXPECT_FALSE(TestWireBit(bits.congested, 1));
    EXPECT_TRUE(TestWireBit(bits.congested, 2));
    if (with_stale) {
      ASSERT_NE(bits.stale, nullptr);
      EXPECT_FALSE(TestWireBit(bits.stale, 0));
      EXPECT_TRUE(TestWireBit(bits.stale, 1));
    } else {
      EXPECT_EQ(bits.stale, nullptr);
    }
  }
}

TEST(MessageTest, ShardWireSizeMatchesSerializedLength) {
  for (const Message& message :
       {MakeShardLatencyMessage(), MakeShardPriceMessage(false),
        MakeShardPriceMessage(true)}) {
    EXPECT_EQ(WireSize(message), Serialize(message).size());
  }
}

TEST(MessageTest, ShardMessagesSmallerThanIdCarryingFormat) {
  // The positional wire format must beat the PR 8 id-carrying one at every
  // entry count: 25 + 12n (latency) / 25 + 13n (price) bytes then.
  for (std::size_t n : {1u, 2u, 7u, 64u}) {
    std::vector<double> values(n, 3.25);
    std::vector<std::uint8_t> congested(n, 1);
    auto arena = std::make_shared<std::string>();
    const ArenaSpan lat_span =
        AppendShardLatencyPayload(values.data(), n, arena.get());
    const ArenaSpan price_span = AppendShardPricePayload(
        values.data(), congested.data(), nullptr, n, arena.get());
    const std::shared_ptr<const std::string> frozen(std::move(arena));
    Message latency;
    latency.payload = ShardLatencyUpdate{
        TaskId(0u), 0, static_cast<std::uint32_t>(n),
        WireSlice(frozen, lat_span.offset, lat_span.length)};
    Message price;
    price.payload = ShardPriceUpdate{
        0, 0, static_cast<std::uint32_t>(n),
        WireSlice(frozen, price_span.offset, price_span.length)};
    EXPECT_LT(WireSize(latency), 25 + 12 * n) << "n=" << n;
    EXPECT_LT(WireSize(price), 25 + 13 * n) << "n=" << n;
  }
}

TEST(MessageTest, ShardSlicesShareOneArena) {
  // Encode-once-slice-per-client: two spans appended to the same arena view
  // the same backing bytes at different offsets.
  auto arena = std::make_shared<std::string>();
  const double a[] = {1.0, 2.0};
  const double b[] = {3.0};
  const ArenaSpan span_a = AppendShardLatencyPayload(a, 2, arena.get());
  const ArenaSpan span_b = AppendShardLatencyPayload(b, 1, arena.get());
  const std::shared_ptr<const std::string> frozen(std::move(arena));
  const WireSlice slice_a(frozen, span_a.offset, span_a.length);
  const WireSlice slice_b(frozen, span_b.offset, span_b.length);
  EXPECT_EQ(slice_a.data(), frozen->data() + span_a.offset);
  EXPECT_EQ(slice_b.data(), frozen->data() + span_b.offset);
  // Equality is byte-wise, so a deep copy compares equal to the original.
  EXPECT_EQ(slice_a, WireSlice::Copy(slice_a.data(), slice_a.size()));
  EXPECT_FALSE(slice_a == slice_b);
}

TEST(MessageTest, RejectsTruncatedShardMessages) {
  for (const Message& message :
       {MakeShardLatencyMessage(), MakeShardPriceMessage(true)}) {
    const auto bytes = Serialize(message);
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
      std::vector<std::uint8_t> truncated(bytes.begin(),
                                          bytes.begin() + cut);
      EXPECT_FALSE(Deserialize(truncated).has_value()) << "cut=" << cut;
    }
  }
}

TEST(MessageTest, RejectsCorruptShardPayloadEncoding) {
  auto bytes = Serialize(MakeShardLatencyMessage());
  // Payload layout after the 25-byte prefix: [encoding u8][words...];
  // an unknown encoding byte must be rejected at deserialize time.
  bytes[25] = 0x7f;
  EXPECT_FALSE(Deserialize(bytes).has_value());
}

TEST(MessageTest, NegativeAndSpecialDoublesSurvive) {
  LatencyUpdate update;
  update.task = TaskId(0u);
  update.subtasks = {SubtaskId(0u)};
  update.latencies_ms = {-17.125};
  Message message;
  message.payload = std::move(update);
  const auto decoded = Deserialize(Serialize(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(
      std::get<LatencyUpdate>(decoded->payload).latencies_ms[0], -17.125);
}

}  // namespace
}  // namespace lla::net
