#include "net/message.h"

#include <gtest/gtest.h>

namespace lla::net {
namespace {

Message MakeLatencyMessage() {
  LatencyUpdate update;
  update.task = TaskId(2u);
  update.subtasks = {SubtaskId(5u), SubtaskId(9u)};
  update.latencies_ms = {12.75, 3.5};
  Message message;
  message.sender = 7;
  message.receiver = 3;
  message.payload = std::move(update);
  return message;
}

Message MakePriceMessage() {
  ResourcePriceUpdate update;
  update.resource = ResourceId(4u);
  update.mu = 179.25;
  update.epoch = 42;
  update.congested = true;
  Message message;
  message.sender = 1;
  message.receiver = 2;
  message.incarnation = 3;
  message.payload = update;
  return message;
}

Message MakeRepairRequestMessage() {
  RepairRequest request;
  request.resource = ResourceId(6u);
  Message message;
  message.sender = 9;
  message.receiver = 4;
  message.incarnation = 2;
  message.payload = request;
  return message;
}

Message MakeRepairResponseMessage() {
  RepairResponse repair;
  repair.resource = ResourceId(6u);
  repair.task = TaskId(1u);
  repair.mu = 37.5;
  repair.epoch = 250;
  repair.congested = true;
  repair.subtasks = {SubtaskId(3u), SubtaskId(8u)};
  repair.latencies_ms = {4.25, 0.5};
  Message message;
  message.sender = 4;
  message.receiver = 9;
  message.payload = std::move(repair);
  return message;
}

TEST(MessageTest, LatencyUpdateRoundTrips) {
  const Message original = MakeLatencyMessage();
  const auto bytes = Serialize(original);
  const auto decoded = Deserialize(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(MessageTest, PriceUpdateRoundTrips) {
  const Message original = MakePriceMessage();
  const auto decoded = Deserialize(Serialize(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
  const auto& price = std::get<ResourcePriceUpdate>(decoded->payload);
  EXPECT_TRUE(price.congested);
  EXPECT_EQ(price.epoch, 42u);
}

TEST(MessageTest, EmptyLatencyUpdateRoundTrips) {
  Message message;
  message.payload = LatencyUpdate{TaskId(0u), {}, {}};
  const auto decoded = Deserialize(Serialize(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(MessageTest, RepairRequestRoundTrips) {
  const Message original = MakeRepairRequestMessage();
  const auto decoded = Deserialize(Serialize(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
  EXPECT_EQ(decoded->incarnation, 2u);
}

TEST(MessageTest, RepairResponseRoundTrips) {
  const Message original = MakeRepairResponseMessage();
  const auto decoded = Deserialize(Serialize(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
  const auto& repair = std::get<RepairResponse>(decoded->payload);
  EXPECT_EQ(repair.epoch, 250u);
  EXPECT_TRUE(repair.congested);
  ASSERT_EQ(repair.subtasks.size(), 2u);
  EXPECT_DOUBLE_EQ(repair.latencies_ms[1], 0.5);
}

TEST(MessageTest, IncarnationSurvivesRoundTrip) {
  Message message = MakePriceMessage();
  message.incarnation = 0xdeadbeef;
  const auto decoded = Deserialize(Serialize(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->incarnation, 0xdeadbeefu);
}

TEST(MessageTest, WireSizeMatchesSerializedLength) {
  for (const Message& message :
       {MakeLatencyMessage(), MakePriceMessage(), MakeRepairRequestMessage(),
        MakeRepairResponseMessage()}) {
    EXPECT_EQ(WireSize(message), Serialize(message).size());
  }
}

TEST(MessageTest, RejectsTruncatedInput) {
  auto bytes = Serialize(MakeLatencyMessage());
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + cut);
    EXPECT_FALSE(Deserialize(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(MessageTest, RejectsTrailingGarbage) {
  auto bytes = Serialize(MakePriceMessage());
  bytes.push_back(0xab);
  EXPECT_FALSE(Deserialize(bytes).has_value());
}

TEST(MessageTest, RejectsUnknownTag) {
  auto bytes = Serialize(MakePriceMessage());
  bytes[12] = 0x7f;  // tag byte follows sender, receiver and incarnation
  EXPECT_FALSE(Deserialize(bytes).has_value());
}

TEST(MessageTest, RejectsEmptyInput) {
  EXPECT_FALSE(Deserialize({}).has_value());
}

TEST(MessageTest, NegativeAndSpecialDoublesSurvive) {
  LatencyUpdate update;
  update.task = TaskId(0u);
  update.subtasks = {SubtaskId(0u)};
  update.latencies_ms = {-17.125};
  Message message;
  message.payload = std::move(update);
  const auto decoded = Deserialize(Serialize(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(
      std::get<LatencyUpdate>(decoded->payload).latencies_ms[0], -17.125);
}

}  // namespace
}  // namespace lla::net
