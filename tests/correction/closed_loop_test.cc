// End-to-end reproduction test of the paper's Sec. 6 experiment shape
// (Figure 8): with error correction enabled, the optimizer reduces the fast
// tasks' shares to their sustainable minimum and reassigns the surplus to
// the slow tasks.
#include "correction/closed_loop.h"

#include <cmath>

#include <gtest/gtest.h>

#include "workloads/paper.h"

namespace lla::correction {
namespace {

ClosedLoopConfig TestConfig() {
  ClosedLoopConfig config;
  config.lla.step_policy = StepPolicyKind::kAdaptive;
  config.lla.gamma0 = 3.0;
  config.lla.record_history = false;
  config.sim.duration_ms = 15000.0;
  config.epochs = 12;
  config.enable_correction_at_epoch = 3;
  return config;
}

class ClosedLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto workload = MakePrototypeWorkload();
    ASSERT_TRUE(workload.ok());
    workload_ = std::make_unique<Workload>(std::move(workload).value());
  }
  std::unique_ptr<Workload> workload_;
};

TEST_F(ClosedLoopTest, ReproducesFigure8ShareShift) {
  ClosedLoop loop(*workload_, TestConfig());
  const auto records = loop.Run();
  ASSERT_EQ(records.size(), 12u);

  // Uncorrected epochs: fast at the theoretical equilibrium 0.2857 (the
  // fast critical time binds), slow at ~0.1643.
  const auto& before = records[2];
  EXPECT_FALSE(before.correction_active);
  EXPECT_NEAR(before.shares[0], 0.2857, 0.005);
  EXPECT_NEAR(before.shares[6], 0.1643, 0.005);

  // Corrected steady state: fast at the sustainable minimum 0.2, slow
  // absorbing the surplus (0.25).
  const auto& after = records.back();
  EXPECT_TRUE(after.correction_active);
  EXPECT_NEAR(after.shares[0], 0.20, 0.01);
  EXPECT_NEAR(after.shares[6], 0.25, 0.01);

  // Directions match the paper (-23% / +32% there).
  EXPECT_LT(after.shares[0], before.shares[0]);
  EXPECT_GT(after.shares[6], before.shares[6]);
}

TEST_F(ClosedLoopTest, ErrorsAreNegativeAndStabilize) {
  ClosedLoop loop(*workload_, TestConfig());
  const auto records = loop.Run();
  const auto& last = records.back();
  const auto& prev = records[records.size() - 2];
  for (const SubtaskInfo& sub : workload_->subtasks()) {
    const std::size_t s = sub.id.value();
    // Over-prediction: errors negative once learned.
    EXPECT_LT(last.errors_ms[s], 0.0) << sub.name;
    // Stabilizing: late epochs change slowly.
    EXPECT_NEAR(last.errors_ms[s], prev.errors_ms[s],
                0.15 * std::fabs(prev.errors_ms[s]) + 0.5)
        << sub.name;
  }
}

TEST_F(ClosedLoopTest, ThroughputSustainedThroughout) {
  ClosedLoop loop(*workload_, TestConfig());
  const auto records = loop.Run();
  // 2 fast tasks at 40/s + 2 slow at 10/s = 100 job sets per second; with
  // 15 s epochs every epoch must complete ~1500 job sets (no starvation).
  for (const auto& record : records) {
    EXPECT_GT(record.job_sets_completed, 1350u) << "epoch " << record.epoch;
  }
}

TEST_F(ClosedLoopTest, CorrectionDisabledKeepsUncorrectedShares) {
  ClosedLoopConfig config = TestConfig();
  config.enable_correction_at_epoch = -1;
  config.epochs = 6;
  ClosedLoop loop(*workload_, config);
  const auto records = loop.Run();
  for (const auto& record : records) {
    EXPECT_FALSE(record.correction_active);
    EXPECT_NEAR(record.shares[0], 0.2857, 0.005);
    for (double e : record.errors_ms) EXPECT_DOUBLE_EQ(e, 0.0);
  }
}

TEST_F(ClosedLoopTest, MeasuredLatenciesBelowPredictedBeforeCorrection) {
  ClosedLoopConfig config = TestConfig();
  config.epochs = 2;
  config.enable_correction_at_epoch = -1;
  ClosedLoop loop(*workload_, config);
  const auto records = loop.Run();
  for (const SubtaskInfo& sub : workload_->subtasks()) {
    EXPECT_LT(records[0].measured_ms[sub.id.value()],
              records[0].predicted_ms[sub.id.value()])
        << sub.name;
  }
}

}  // namespace
}  // namespace lla::correction
