// Closed-loop correction under stochastic conditions beyond the paper's
// periodic/GPS setting: Poisson and bursty triggers, the quantum
// surplus-fair scheduler, and per-subtask percentile plans.  The Figure 8
// structure (fast tasks settle at their sustainable floor, slow tasks
// absorb the surplus, errors negative) must be robust to all of them.
#include <gtest/gtest.h>

#include "correction/closed_loop.h"
#include "correction/percentile_plan.h"
#include "workloads/paper.h"
#include "workloads/transform.h"

namespace lla::correction {
namespace {

ClosedLoopConfig BaseConfig() {
  ClosedLoopConfig config;
  config.lla.step_policy = StepPolicyKind::kAdaptive;
  config.lla.gamma0 = 3.0;
  config.lla.record_history = false;
  config.sim.duration_ms = 15000.0;
  config.epochs = 12;
  config.enable_correction_at_epoch = 3;
  return config;
}

void ExpectFigure8Shape(const std::vector<EpochRecord>& records,
                        bool expect_negative_errors = true) {
  const auto& after = records.back();
  EXPECT_NEAR(after.shares[0], 0.20, 0.015);   // fast at its floor
  EXPECT_NEAR(after.shares[6], 0.25, 0.015);   // slow absorbs the surplus
  if (expect_negative_errors) {
    EXPECT_LT(after.errors_ms[0], 0.0);
    EXPECT_LT(after.errors_ms[6], 0.0);
  }
}

TEST(StochasticLoopTest, PoissonTriggers) {
  auto base = MakePrototypeWorkload();
  ASSERT_TRUE(base.ok());
  auto workload = Rebuild(base.value(), nullptr, [](TaskId, TaskSpec& spec) {
    spec.trigger = TriggerSpec::Poisson(spec.trigger.MeanRatePerSecond());
  });
  ASSERT_TRUE(workload.ok()) << workload.error();
  ClosedLoop loop(workload.value(), BaseConfig());
  ExpectFigure8Shape(loop.Run());
}

TEST(StochasticLoopTest, BurstyTriggers) {
  auto base = MakePrototypeWorkload();
  ASSERT_TRUE(base.ok());
  // Same mean rates, bursts of 2.
  auto workload = Rebuild(base.value(), nullptr, [](TaskId, TaskSpec& spec) {
    const double rate = spec.trigger.MeanRatePerSecond();
    spec.trigger = TriggerSpec::Bursty(2000.0 / rate, 2, 3.0);
  });
  ASSERT_TRUE(workload.ok()) << workload.error();
  ClosedLoop loop(workload.value(), BaseConfig());
  // Intra-burst queueing can push the high percentile ABOVE the
  // synchronized-release model (positive error for the slow tasks), which
  // is exactly the adaptive-correction point: the sign of the error is
  // learned, not assumed.  The share equilibrium still lands on the
  // Figure 8 endpoints.
  ExpectFigure8Shape(loop.Run(), /*expect_negative_errors=*/false);
}

TEST(StochasticLoopTest, SurplusFairScheduler) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  ClosedLoopConfig config = BaseConfig();
  config.sim.scheduler = sim::SchedulerKind::kSurplusFair;
  config.sim.sfs_quantum_ms = 1.0;
  ClosedLoop loop(workload.value(), config);
  ExpectFigure8Shape(loop.Run());
}

TEST(StochasticLoopTest, PercentilePlanDrivenCorrection) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  ClosedLoopConfig config = BaseConfig();
  // Correct against the per-subtask percentile the 3-hop p95 SLA needs
  // (q = 0.95^(1/3) ~ 0.983) instead of a flat 0.95.
  config.correction.per_subtask_percentiles =
      PlanSubtaskPercentiles(workload.value(), 0.95);
  ClosedLoop loop(workload.value(), config);
  const auto records = loop.Run();
  // Tighter percentiles -> less negative error than flat-0.95 correction,
  // but the equilibrium structure is unchanged.
  ExpectFigure8Shape(records);
}

TEST(StochasticLoopTest, ServiceJitterSweep) {
  for (double jitter : {0.0, 0.25, 0.5}) {
    auto workload = MakePrototypeWorkload();
    ASSERT_TRUE(workload.ok());
    ClosedLoopConfig config = BaseConfig();
    config.sim.service_jitter = jitter;
    ClosedLoop loop(workload.value(), config);
    const auto records = loop.Run();
    const auto& after = records.back();
    // Less jitter = jobs closer to WCET = higher measured latency, but the
    // floor equilibrium persists across the sweep.
    EXPECT_NEAR(after.shares[0], 0.20, 0.02) << "jitter " << jitter;
    EXPECT_GT(after.shares[6], 0.20) << "jitter " << jitter;
  }
}

}  // namespace
}  // namespace lla::correction
