#include "correction/error_corrector.h"

#include <gtest/gtest.h>

#include "workloads/paper.h"

namespace lla::correction {
namespace {

std::vector<SampleQuantile> MakeSamples(const Workload& w, SubtaskId target,
                                        std::initializer_list<double> values) {
  std::vector<SampleQuantile> samples(w.subtask_count());
  for (double v : values) samples[target.value()].Add(v);
  return samples;
}

class ErrorCorrectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto workload = MakePrototypeWorkload();
    ASSERT_TRUE(workload.ok());
    workload_ = std::make_unique<Workload>(std::move(workload).value());
    model_ = std::make_unique<LatencyModel>(*workload_);
  }
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<LatencyModel> model_;
};

TEST_F(ErrorCorrectorTest, LearnsNegativeErrorFromFastMeasurements) {
  CorrectionConfig config;
  config.alpha = 1.0;  // no smoothing for exactness
  config.min_samples = 3;
  ErrorCorrector corrector(*workload_, model_.get(), config);

  // Fast subtask 0: work = 10, share 0.25 -> predicted 40 ms; measure ~20.
  std::vector<double> shares(workload_->subtask_count(), 0.25);
  auto samples = MakeSamples(*workload_, SubtaskId(0u),
                             {18.0, 20.0, 19.0, 21.0, 20.0});
  corrector.Observe(samples, shares);
  // p95 of the samples is ~21; error = 21 - 40 = -19.
  EXPECT_NEAR(corrector.error(SubtaskId(0u)), -19.2, 0.5);
  // The model was updated: share to achieve latency 20.8 is now
  // 10 / (20.8 + 19.2) = 0.25.
  EXPECT_NEAR(model_->AdditiveError(SubtaskId(0u)),
              corrector.error(SubtaskId(0u)), 1e-12);
}

TEST_F(ErrorCorrectorTest, SkipsSubtasksWithTooFewSamples) {
  CorrectionConfig config;
  config.min_samples = 10;
  ErrorCorrector corrector(*workload_, model_.get(), config);
  std::vector<double> shares(workload_->subtask_count(), 0.25);
  auto samples = MakeSamples(*workload_, SubtaskId(0u), {5.0, 6.0});
  corrector.Observe(samples, shares);
  EXPECT_DOUBLE_EQ(corrector.error(SubtaskId(0u)), 0.0);
  EXPECT_DOUBLE_EQ(model_->AdditiveError(SubtaskId(0u)), 0.0);
}

TEST_F(ErrorCorrectorTest, SmoothsAcrossWindows) {
  CorrectionConfig config;
  config.alpha = 0.5;
  config.min_samples = 1;
  ErrorCorrector corrector(*workload_, model_.get(), config);
  std::vector<double> shares(workload_->subtask_count(), 0.25);
  // Predicted 40; first window measures 30 (error -10).
  corrector.Observe(MakeSamples(*workload_, SubtaskId(0u), {30.0}), shares);
  EXPECT_NEAR(corrector.error(SubtaskId(0u)), -10.0, 1e-9);
  // Second window measures 20 (raw error -20): smoothed -15.
  corrector.Observe(MakeSamples(*workload_, SubtaskId(0u), {20.0}), shares);
  EXPECT_NEAR(corrector.error(SubtaskId(0u)), -15.0, 1e-9);
}

TEST_F(ErrorCorrectorTest, ClampsWildNegativeErrors) {
  CorrectionConfig config;
  config.alpha = 1.0;
  config.min_samples = 1;
  config.clamp_margin = 0.05;
  ErrorCorrector corrector(*workload_, model_.get(), config);
  std::vector<double> shares(workload_->subtask_count(), 0.25);
  // Measured ~0 would give error -40 == -predicted; clamp keeps 5% margin.
  corrector.Observe(MakeSamples(*workload_, SubtaskId(0u), {0.001}), shares);
  EXPECT_NEAR(corrector.error(SubtaskId(0u)), -0.95 * 40.0, 1e-9);
}

TEST_F(ErrorCorrectorTest, PositiveErrorsSupported) {
  CorrectionConfig config;
  config.alpha = 1.0;
  config.min_samples = 1;
  ErrorCorrector corrector(*workload_, model_.get(), config);
  std::vector<double> shares(workload_->subtask_count(), 0.25);
  // Model under-predicts: measured 50 vs predicted 40.
  corrector.Observe(MakeSamples(*workload_, SubtaskId(0u), {50.0}), shares);
  EXPECT_NEAR(corrector.error(SubtaskId(0u)), 10.0, 1e-9);
  // Corrected share function demands more share for the same latency.
  EXPECT_GT(model_->share(SubtaskId(0u)).Share(40.0), 0.25);
}

TEST_F(ErrorCorrectorTest, ResetRestoresBaseModel) {
  CorrectionConfig config;
  config.alpha = 1.0;
  config.min_samples = 1;
  ErrorCorrector corrector(*workload_, model_.get(), config);
  std::vector<double> shares(workload_->subtask_count(), 0.25);
  corrector.Observe(MakeSamples(*workload_, SubtaskId(0u), {20.0}), shares);
  ASSERT_NE(corrector.error(SubtaskId(0u)), 0.0);
  corrector.Reset();
  EXPECT_DOUBLE_EQ(corrector.error(SubtaskId(0u)), 0.0);
  EXPECT_DOUBLE_EQ(model_->share(SubtaskId(0u)).Share(40.0), 0.25);
}

TEST_F(ErrorCorrectorTest, IgnoresZeroShares) {
  CorrectionConfig config;
  config.min_samples = 1;
  ErrorCorrector corrector(*workload_, model_.get(), config);
  std::vector<double> shares(workload_->subtask_count(), 0.0);
  corrector.Observe(MakeSamples(*workload_, SubtaskId(0u), {20.0}), shares);
  EXPECT_DOUBLE_EQ(corrector.error(SubtaskId(0u)), 0.0);
}

}  // namespace
}  // namespace lla::correction
