#include "correction/model_fitter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "correction/closed_loop.h"
#include "workloads/paper.h"

namespace lla::correction {
namespace {

class ModelFitterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto workload = MakePrototypeWorkload();
    ASSERT_TRUE(workload.ok());
    workload_ = std::make_unique<Workload>(std::move(workload).value());
    model_ = std::make_unique<LatencyModel>(*workload_);
  }

  /// Feeds an observation of (share, latency) for subtask 0.
  void Feed(ShareModelFitter& fitter, double share, double latency,
            int samples = 50) {
    std::vector<SampleQuantile> measured(workload_->subtask_count());
    for (int i = 0; i < samples; ++i) {
      measured[0].Add(latency);
    }
    std::vector<double> shares(workload_->subtask_count(), 0.0);
    shares[0] = share;
    fitter.Observe(measured, shares);
  }

  std::unique_ptr<Workload> workload_;
  std::unique_ptr<LatencyModel> model_;
};

TEST_F(ModelFitterTest, RecoversExactCurve) {
  // Ground truth: latency = 7/share - 12.
  FitterConfig config;
  config.min_samples = 3;
  ShareModelFitter fitter(*workload_, model_.get(), config);
  for (double share : {0.2, 0.3, 0.45}) {
    Feed(fitter, share, 7.0 / share - 12.0);
  }
  const auto fit = fitter.fit(SubtaskId(0u));
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.work_ms, 7.0, 1e-6);
  EXPECT_NEAR(fit.offset_ms, -12.0, 1e-6);
  // The installed share function inverts the learned curve.
  EXPECT_NEAR(model_->share(SubtaskId(0u)).Share(7.0 / 0.25 - 12.0), 0.25,
              1e-9);
}

TEST_F(ModelFitterTest, RefusesConstantShareHistory) {
  // All observations at the same share: two parameters are unidentifiable.
  ShareModelFitter fitter(*workload_, model_.get(), {});
  for (int i = 0; i < 10; ++i) Feed(fitter, 0.25, 30.0);
  EXPECT_FALSE(fitter.fit(SubtaskId(0u)).valid);
  // Model untouched: still the nominal (wcet 5 + lag 5)/lat.
  EXPECT_DOUBLE_EQ(model_->share(SubtaskId(0u)).Share(40.0), 0.25);
}

TEST_F(ModelFitterTest, RequiresMinimumSamples) {
  FitterConfig config;
  config.min_samples = 4;
  ShareModelFitter fitter(*workload_, model_.get(), config);
  Feed(fitter, 0.2, 40.0);
  Feed(fitter, 0.4, 20.0);
  Feed(fitter, 0.3, 26.0);
  EXPECT_FALSE(fitter.fit(SubtaskId(0u)).valid);
  Feed(fitter, 0.25, 33.0);
  EXPECT_TRUE(fitter.fit(SubtaskId(0u)).valid);
}

TEST_F(ModelFitterTest, RejectsInsaneWork) {
  // Latencies imply an effective work far above the nominal 10 ms.
  FitterConfig config;
  config.min_samples = 3;
  config.max_work_ratio = 4.0;
  ShareModelFitter fitter(*workload_, model_.get(), config);
  for (double share : {0.2, 0.3, 0.45}) {
    Feed(fitter, share, 100.0 / share);  // work 100 >> 4 * 10
  }
  EXPECT_FALSE(fitter.fit(SubtaskId(0u)).valid);
}

TEST_F(ModelFitterTest, ForgettingTracksDrift) {
  FitterConfig config;
  config.min_samples = 3;
  config.forgetting = 0.5;  // aggressive for the test
  ShareModelFitter fitter(*workload_, model_.get(), config);
  // Old regime: latency = 10/share.
  for (double share : {0.2, 0.3, 0.45}) Feed(fitter, share, 10.0 / share);
  ASSERT_TRUE(fitter.fit(SubtaskId(0u)).valid);
  EXPECT_NEAR(fitter.fit(SubtaskId(0u)).work_ms, 10.0, 1e-6);
  // New regime: the system slowed down, latency = 16/share - 5.
  for (int round = 0; round < 12; ++round) {
    for (double share : {0.2, 0.3, 0.45}) {
      Feed(fitter, share, 16.0 / share - 5.0);
    }
  }
  EXPECT_NEAR(fitter.fit(SubtaskId(0u)).work_ms, 16.0, 0.2);
  EXPECT_NEAR(fitter.fit(SubtaskId(0u)).offset_ms, -5.0, 0.5);
}

TEST_F(ModelFitterTest, ResetRestoresNominalModel) {
  FitterConfig config;
  config.min_samples = 3;
  ShareModelFitter fitter(*workload_, model_.get(), config);
  for (double share : {0.2, 0.3, 0.45}) Feed(fitter, share, 7.0 / share);
  ASSERT_TRUE(fitter.fit(SubtaskId(0u)).valid);
  fitter.Reset();
  EXPECT_FALSE(fitter.fit(SubtaskId(0u)).valid);
  EXPECT_DOUBLE_EQ(model_->share(SubtaskId(0u)).Share(40.0), 0.25);
}

TEST_F(ModelFitterTest, ClosedLoopFittedModeReachesAccurateOptimum) {
  // The Figure 8 experiment driven by the fitter.  Unlike the additive
  // corrector (which keeps the nominal wcet+lag numerator and so still
  // parks the fast tasks at their floor), the fitted model learns the much
  // smaller *effective* work of the fast tasks; under it the fast deadline
  // no longer binds and the optimizer balances marginal latencies,
  // saturating the CPUs at a distinct, model-accurate equilibrium.
  ClosedLoopConfig config;
  config.lla.step_policy = StepPolicyKind::kAdaptive;
  config.lla.gamma0 = 3.0;
  config.lla.record_history = false;
  config.sim.duration_ms = 15000.0;
  config.epochs = 14;
  config.enable_correction_at_epoch = 3;
  config.mode = CorrectionMode::kFitted;
  config.fitter.min_samples = 2;
  config.fitter.min_regressor_spread = 0.02;
  ClosedLoop loop(*workload_, config);
  const auto records = loop.Run();
  const auto& after = records.back();
  // CPUs saturated at the corrected equilibrium...
  const double cpu_sum = 2.0 * (after.shares[0] + after.shares[6]);
  EXPECT_NEAR(cpu_sum, 0.90, 0.02);
  // ...with shares strictly above the sustainable floors on both classes.
  EXPECT_GT(after.shares[0], 0.21);
  EXPECT_GT(after.shares[6], 0.14);
  // Model accuracy: predictions track measurements within ~15%.
  for (int s : {0, 6}) {
    EXPECT_NEAR(after.predicted_ms[s], after.measured_ms[s],
                0.15 * after.measured_ms[s])
        << "subtask " << s;
  }
}

}  // namespace
}  // namespace lla::correction
