#include "correction/percentile_plan.h"

#include <cmath>

#include <gtest/gtest.h>

#include "model/percentile.h"
#include "workloads/paper.h"

namespace lla::correction {
namespace {

TEST(PercentilePlanTest, PaperWorkloadHopCounts) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const auto plan = PlanSubtaskPercentiles(w, 0.99);
  // Task 1: every subtask lies on a 3-hop path -> q = 0.99^(1/3).
  for (unsigned s = 0; s < 7; ++s) {
    EXPECT_NEAR(plan[s], std::pow(0.99, 1.0 / 3.0), 1e-12) << s;
  }
  // Task 2: T21/T22 sit on the 6-hop critical path; T23 only on 3-hop.
  EXPECT_NEAR(plan[7], std::pow(0.99, 1.0 / 6.0), 1e-12);
  EXPECT_NEAR(plan[9], std::pow(0.99, 1.0 / 3.0), 1e-12);
  // Task 3: the 6-hop chain throughout.
  for (unsigned s = 15; s < 21; ++s) {
    EXPECT_NEAR(plan[s], std::pow(0.99, 1.0 / 6.0), 1e-12) << s;
  }
}

TEST(PercentilePlanTest, LongerPathsGetTighterPercentiles) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const auto plan = PlanSubtaskPercentiles(workload.value(), 0.9);
  // 6-hop subtask percentile > 3-hop subtask percentile (more stringent).
  EXPECT_GT(plan[7], plan[9]);
  for (double q : plan) {
    EXPECT_GT(q, 0.9);
    EXPECT_LT(q, 1.0);
  }
}

TEST(PercentilePlanTest, PerTaskTargets) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  std::vector<double> targets = {0.99, 0.5, 0.9};
  const auto plan = PlanSubtaskPercentiles(w, targets);
  EXPECT_NEAR(plan[0], std::pow(0.99, 1.0 / 3.0), 1e-12);   // task 1
  EXPECT_NEAR(plan[7], std::pow(0.50, 1.0 / 6.0), 1e-12);   // task 2
  EXPECT_NEAR(plan[15], std::pow(0.90, 1.0 / 6.0), 1e-12);  // task 3
}

TEST(PercentilePlanTest, ConsistentWithPercentileComposition) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const double target = 0.95;
  const auto plan = PlanSubtaskPercentiles(w, target);
  // For every path: the product of member percentile fractions (assuming
  // independence) is at least the task target.
  for (const PathInfo& path : w.paths()) {
    double product = 1.0;
    for (SubtaskId sid : path.subtasks) product *= plan[sid.value()];
    EXPECT_GE(product, target - 1e-12);
  }
}

}  // namespace
}  // namespace lla::correction
