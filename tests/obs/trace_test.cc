#include "obs/trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace lla::obs {
namespace {

IterationTrace MakeTrace(int iteration) {
  IterationTrace trace;
  trace.iteration = iteration;
  trace.total_utility = -70.0 - iteration;
  trace.feasible = iteration % 2 == 0;
  trace.max_resource_excess = 0.25;
  trace.max_path_ratio = 0.5;
  trace.resource_share_sums = {0.5, 1.5};
  trace.resource_mu = {0.0, 3.25};
  trace.resource_step = {4.0, 8.0};
  trace.path_latencies = {10.0, 20.0, 30.0};
  trace.path_lambda = {0.0, 0.0, 1.0};
  trace.path_step = {4.0, 4.0, 8.0};
  return trace;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(JsonlTraceSinkTest, WritesBracketedRun) {
  const std::string path = ::testing::TempDir() + "/trace_run.jsonl";
  {
    JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    RunInfo info;
    info.label = "gamma=1";
    info.resource_count = 2;
    info.path_count = 3;
    sink.OnRunBegin(info);
    sink.OnIteration(MakeTrace(1));
    sink.OnIteration(MakeTrace(2));
    sink.OnRunEnd();
  }
  const std::string jsonl = ReadFile(path);
  std::istringstream lines(jsonl);
  std::string line;
  std::vector<std::string> records;
  while (std::getline(lines, line)) records.push_back(line);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0],
            "{\"type\":\"run_begin\",\"run\":\"gamma=1\",\"resources\":2,"
            "\"paths\":3}");
  EXPECT_NE(records[1].find("\"type\":\"iteration\""), std::string::npos);
  EXPECT_NE(records[1].find("\"run\":\"gamma=1\""), std::string::npos);
  EXPECT_NE(records[1].find("\"iteration\":1"), std::string::npos);
  EXPECT_NE(records[1].find("\"total_utility\":-71"), std::string::npos);
  EXPECT_NE(records[1].find("\"resource_share_sums\":[0.5,1.5]"),
            std::string::npos);
  EXPECT_NE(records[1].find("\"path_step\":[4,4,8]"), std::string::npos);
  // The engine's at_ms sentinel (< 0) is omitted from the record.
  EXPECT_EQ(records[1].find("at_ms"), std::string::npos);
  EXPECT_EQ(records[3], "{\"type\":\"run_end\",\"run\":\"gamma=1\"}");
  std::remove(path.c_str());
}

TEST(JsonlTraceSinkTest, IncludesVirtualTimeWhenSet) {
  const std::string path = ::testing::TempDir() + "/trace_at_ms.jsonl";
  {
    JsonlTraceSink sink(path);
    IterationTrace trace = MakeTrace(1);
    trace.at_ms = 125.5;
    sink.OnIteration(trace);
  }
  EXPECT_NE(ReadFile(path).find("\"at_ms\":125.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonlTraceSinkTest, EventsCarryTypeAndFields) {
  const std::string path = ::testing::TempDir() + "/trace_event.jsonl";
  {
    JsonlTraceSink sink(path);
    RunInfo info;
    info.label = "fig8";
    sink.OnRunBegin(info);
    TraceEvent event;
    event.type = "epoch";
    event.fields = {{"epoch", 3.0}, {"fast_share", 0.25}};
    sink.OnEvent(event);
  }
  const std::string jsonl = ReadFile(path);
  EXPECT_NE(jsonl.find("{\"type\":\"event\",\"event\":\"epoch\","
                       "\"run\":\"fig8\",\"epoch\":3,\"fast_share\":0.25}"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonlTraceSinkTest, BadPathReportsNotOkAndDropsRecords) {
  JsonlTraceSink sink("/nonexistent-dir/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  sink.OnRunBegin(RunInfo{});
  sink.OnIteration(MakeTrace(1));  // must not crash
  sink.OnRunEnd();
}

TEST(JsonlTraceSinkTest, RoundTripsDoublesExactly) {
  const std::string path = ::testing::TempDir() + "/trace_prec.jsonl";
  const double value = 1.0 / 3.0;
  {
    JsonlTraceSink sink(path);
    IterationTrace trace = MakeTrace(1);
    trace.total_utility = value;
    sink.OnIteration(trace);
  }
  const std::string jsonl = ReadFile(path);
  const auto pos = jsonl.find("\"total_utility\":");
  ASSERT_NE(pos, std::string::npos);
  // %.17g preserves the bit pattern through a parse round-trip.
  const double parsed =
      std::strtod(jsonl.c_str() + pos + std::strlen("\"total_utility\":"),
                  nullptr);
  EXPECT_EQ(parsed, value);
  std::remove(path.c_str());
}

TEST(CsvTraceSinkTest, HeaderAndScalarRows) {
  const std::string path = ::testing::TempDir() + "/trace.csv";
  {
    CsvTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    RunInfo info;
    info.label = "run1";
    sink.OnRunBegin(info);
    sink.OnIteration(MakeTrace(1));
    sink.OnIteration(MakeTrace(2));
  }
  const std::string csv = ReadFile(path);
  std::istringstream lines(csv);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0],
            "run,iteration,at_ms,total_utility,feasible,"
            "max_resource_excess,max_path_ratio");
  EXPECT_EQ(rows[1].find("run1,1,"), 0u);
  EXPECT_NE(rows[1].find(",0,0.25,"), std::string::npos);  // feasible = 0
  EXPECT_NE(rows[2].find(",1,0.25,"), std::string::npos);  // feasible = 1
}

TEST(RingBufferTraceSinkTest, KeepsDeepCopies) {
  RingBufferTraceSink sink(4);
  IterationTrace trace = MakeTrace(1);
  sink.OnIteration(trace);
  // Mutate the producer's buffer after the fact; the sink must have copied.
  trace.total_utility = 999.0;
  trace.resource_mu[0] = 999.0;
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.at(0).total_utility, -71.0);
  EXPECT_DOUBLE_EQ(sink.at(0).resource_mu[0], 0.0);
}

TEST(RingBufferTraceSinkTest, OverwritesOldestWhenFull) {
  RingBufferTraceSink sink(3);
  for (int i = 1; i <= 5; ++i) sink.OnIteration(MakeTrace(i));
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.total_received(), 5u);
  EXPECT_EQ(sink.at(0).iteration, 3);
  EXPECT_EQ(sink.at(1).iteration, 4);
  EXPECT_EQ(sink.at(2).iteration, 5);
}

}  // namespace
}  // namespace lla::obs
