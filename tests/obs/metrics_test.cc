#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace lla::obs {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("engine.steps");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(MetricsTest, SameNameReturnsSameHandle) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("bus.sent");
  Counter* b = registry.GetCounter("bus.sent");
  EXPECT_EQ(a, b);
  Timer* ta = registry.GetTimer("engine.solve");
  Timer* tb = registry.GetTimer("engine.solve");
  EXPECT_EQ(ta, tb);
  // Counters and timers are separate namespaces.
  registry.GetTimer("bus.sent");
  EXPECT_EQ(registry.GetCounter("bus.sent"), a);
}

TEST(MetricsTest, HandlesStableUnderRegistryGrowth) {
  MetricRegistry registry;
  Counter* first = registry.GetCounter("first");
  for (int i = 0; i < 1000; ++i) {
    registry.GetCounter("bulk." + std::to_string(i));
  }
  first->Increment(7);
  EXPECT_EQ(registry.GetCounter("first"), first);
  EXPECT_EQ(first->value(), 7u);
}

TEST(MetricsTest, TimerStatistics) {
  Timer timer;
  EXPECT_EQ(timer.count(), 0u);
  EXPECT_DOUBLE_EQ(timer.mean_ms(), 0.0);
  timer.RecordMs(2.0);
  timer.RecordMs(4.0);
  timer.RecordMs(3.0);
  EXPECT_EQ(timer.count(), 3u);
  EXPECT_DOUBLE_EQ(timer.total_ms(), 9.0);
  EXPECT_DOUBLE_EQ(timer.mean_ms(), 3.0);
  EXPECT_DOUBLE_EQ(timer.max_ms(), 4.0);
}

TEST(MetricsTest, ScopedTimerRecordsOnceAndNullIsSafe) {
  Timer timer;
  { ScopedTimer scope(&timer); }
  EXPECT_EQ(timer.count(), 1u);
  EXPECT_GE(timer.total_ms(), 0.0);
  { ScopedTimer scope(nullptr); }  // must not crash nor record anywhere
}

TEST(MetricsTest, SnapshotPreservesRegistrationOrder) {
  MetricRegistry registry;
  registry.GetCounter("z.last")->Increment(3);
  registry.GetCounter("a.first")->Increment(1);
  registry.GetTimer("t.one")->RecordMs(1.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "z.last");
  EXPECT_EQ(snapshot.counters[0].value, 3u);
  EXPECT_EQ(snapshot.counters[1].name, "a.first");
  ASSERT_EQ(snapshot.timers.size(), 1u);
  EXPECT_EQ(snapshot.timers[0].name, "t.one");
  EXPECT_EQ(snapshot.timers[0].count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.timers[0].total_ms, 1.5);
}

TEST(MetricsTest, RenderTextListsEveryMetric) {
  MetricRegistry registry;
  registry.GetCounter("engine.steps")->Increment(12);
  registry.GetTimer("engine.solve")->RecordMs(0.5);
  const std::string text = registry.Snapshot().RenderText();
  EXPECT_NE(text.find("engine.steps"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
  EXPECT_NE(text.find("engine.solve"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST(MetricsTest, RenderJsonIsWellFormed) {
  MetricRegistry registry;
  registry.GetCounter("bus.sent")->Increment(5);
  registry.GetTimer("sim.run")->RecordMs(2.0);
  const std::string json = registry.Snapshot().RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"bus.sent\":5"), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.run\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsTest, EmptyRegistrySnapshotsCleanly) {
  MetricRegistry registry;
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.timers.empty());
  EXPECT_EQ(snapshot.RenderJson(), "{\"counters\":{},\"timers\":{}}");
}

}  // namespace
}  // namespace lla::obs
