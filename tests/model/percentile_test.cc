#include "model/percentile.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lla {
namespace {

TEST(PercentileTest, PathLengthOneIsIdentity) {
  EXPECT_DOUBLE_EQ(PerSubtaskPercentile(0.9, 1), 0.9);
  EXPECT_DOUBLE_EQ(PathPercentile(0.9, 1), 0.9);
}

TEST(PercentileTest, PaperTwoSubtaskExample) {
  // Paper Sec. 2.1: two subtasks each at percentile p yield the p^2/100
  // percentile (percent notation), i.e. fraction p_f^2.
  EXPECT_DOUBLE_EQ(PathPercentile(0.5, 2), 0.25);
  EXPECT_NEAR(PerSubtaskPercentile(0.25, 2), 0.5, 1e-12);
}

TEST(PercentileTest, CompositionRoundTrips) {
  for (int n : {1, 2, 3, 5, 8}) {
    for (double p : {0.5, 0.9, 0.95, 0.99}) {
      const double q = PerSubtaskPercentile(p, n);
      EXPECT_NEAR(PathPercentile(q, n), p, 1e-12)
          << "n=" << n << " p=" << p;
      EXPECT_GE(q, p);  // per-subtask percentile is more stringent
      EXPECT_LE(q, 1.0);
    }
  }
}

TEST(PercentileTest, PercentNotationMatchesPaperFormula) {
  // q_pct = p^(1/n) * 100^((n-1)/n).
  EXPECT_NEAR(PerSubtaskPercentilePct(99.0, 3),
              std::pow(99.0, 1.0 / 3) * std::pow(100.0, 2.0 / 3), 1e-9);
  // Consistency with the fraction API.
  for (int n : {1, 2, 4}) {
    EXPECT_NEAR(PerSubtaskPercentilePct(90.0, n) / 100.0,
                PerSubtaskPercentile(0.90, n), 1e-12);
  }
}

TEST(PercentileTest, HundredthPercentileStaysHundredth) {
  EXPECT_DOUBLE_EQ(PerSubtaskPercentile(1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(PerSubtaskPercentilePct(100.0, 5), 100.0);
}

TEST(PercentileTest, LongerPathsNeedTighterSubtaskPercentiles) {
  const double p = 0.9;
  double prev = 0.0;
  for (int n = 1; n <= 10; ++n) {
    const double q = PerSubtaskPercentile(p, n);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

}  // namespace
}  // namespace lla
