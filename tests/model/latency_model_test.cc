#include "model/latency_model.h"

#include <gtest/gtest.h>

#include "workloads/paper.h"

namespace lla {
namespace {

TEST(LatencyModelTest, DefaultsToPaperShareFunction) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  ASSERT_EQ(model.size(), w.subtask_count());
  // T11: wcet 2, lag 1 -> share(9.7) = 3/9.7.
  EXPECT_DOUBLE_EQ(model.share(SubtaskId(0u)).Share(9.7), 3.0 / 9.7);
  EXPECT_DOUBLE_EQ(model.AdditiveError(SubtaskId(0u)), 0.0);
}

TEST(LatencyModelTest, SetAdditiveErrorInstallsCorrectedModel) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  model.SetAdditiveError(SubtaskId(0u), -15.0);
  EXPECT_DOUBLE_EQ(model.AdditiveError(SubtaskId(0u)), -15.0);
  // fast subtask: wcet 5, lag 5: share(35) = 10/(35+15) = 0.2.
  EXPECT_DOUBLE_EQ(model.share(SubtaskId(0u)).Share(35.0), 0.2);
  // Other subtasks untouched.
  EXPECT_DOUBLE_EQ(model.AdditiveError(SubtaskId(1u)), 0.0);
}

TEST(LatencyModelTest, SetShareFunctionReplaces) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  LatencyModel model(workload.value());
  model.SetShareFunction(SubtaskId(2u),
                         std::make_shared<WcetLagShare>(10.0, 0.0));
  EXPECT_DOUBLE_EQ(model.share(SubtaskId(2u)).Share(20.0), 0.5);
}

TEST(LatencyModelTest, ErrorUpdateOverwritesPrevious) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  LatencyModel model(workload.value());
  model.SetAdditiveError(SubtaskId(3u), -10.0);
  model.SetAdditiveError(SubtaskId(3u), -12.5);
  EXPECT_DOUBLE_EQ(model.AdditiveError(SubtaskId(3u)), -12.5);
}

}  // namespace
}  // namespace lla
