#include "model/graph.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace lla {
namespace {

TEST(DagTest, SingleNode) {
  auto dag = Dag::Create(1, {});
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag.value().root(), 0);
  EXPECT_EQ(dag.value().leaves(), std::vector<int>{0});
  EXPECT_EQ(dag.value().paths().size(), 1u);
  EXPECT_EQ(dag.value().paths()[0], std::vector<int>{0});
  EXPECT_EQ(dag.value().path_counts(), std::vector<int>{1});
}

TEST(DagTest, Chain) {
  const Dag dag = Dag::Chain(4);
  EXPECT_EQ(dag.root(), 0);
  EXPECT_EQ(dag.leaves(), std::vector<int>{3});
  ASSERT_EQ(dag.paths().size(), 1u);
  EXPECT_EQ(dag.paths()[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(dag.path_counts(), (std::vector<int>{1, 1, 1, 1}));
}

TEST(DagTest, FanOutTree) {
  // 0 -> 1 -> {2,3,4}: the task-1 shape of the paper workload.
  auto dag = Dag::Create(5, {{0, 1}, {1, 2}, {1, 3}, {1, 4}});
  ASSERT_TRUE(dag.ok());
  const Dag& d = dag.value();
  EXPECT_EQ(d.leaves(), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(d.paths().size(), 3u);
  EXPECT_EQ(d.path_counts(), (std::vector<int>{3, 3, 1, 1, 1}));
}

TEST(DagTest, DiamondMerge) {
  // 0 -> {1,2} -> 3: merging is allowed (DAG, not a tree).
  auto dag = Dag::Create(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  ASSERT_TRUE(dag.ok());
  const Dag& d = dag.value();
  EXPECT_EQ(d.leaves(), std::vector<int>{3});
  EXPECT_EQ(d.paths().size(), 2u);
  EXPECT_EQ(d.path_counts(), (std::vector<int>{2, 1, 1, 2}));
}

TEST(DagTest, PaperTask2Shape) {
  // 0 -> 1 -> {2,3}; 3 -> {4,5}; 5 -> 6 -> 7.
  auto dag = Dag::Create(
      8, {{0, 1}, {1, 2}, {1, 3}, {3, 4}, {3, 5}, {5, 6}, {6, 7}});
  ASSERT_TRUE(dag.ok());
  const Dag& d = dag.value();
  EXPECT_EQ(d.paths().size(), 3u);
  // Paths in deterministic (lexicographic) order.
  EXPECT_EQ(d.paths()[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(d.paths()[1], (std::vector<int>{0, 1, 3, 4}));
  EXPECT_EQ(d.paths()[2], (std::vector<int>{0, 1, 3, 5, 6, 7}));
  EXPECT_EQ(d.path_counts(), (std::vector<int>{3, 3, 1, 2, 1, 1, 1, 1}));
}

TEST(DagTest, TopoOrderRespectsEdges) {
  auto dag = Dag::Create(6, {{0, 2}, {0, 1}, {1, 3}, {2, 3}, {3, 4}, {3, 5}});
  ASSERT_TRUE(dag.ok());
  const auto& topo = dag.value().topo_order();
  std::vector<int> position(6);
  for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
  for (const auto& [from, to] : dag.value().edges()) {
    EXPECT_LT(position[from], position[to]);
  }
}

TEST(DagTest, PathCountEqualsEnumeratedPaths) {
  auto dag = Dag::Create(7, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4},
                             {3, 5}, {4, 6}, {5, 6}});
  ASSERT_TRUE(dag.ok());
  const Dag& d = dag.value();
  // Count occurrences of each node across enumerated paths and compare with
  // path_counts().
  std::vector<int> counted(7, 0);
  for (const auto& path : d.paths()) {
    for (int v : path) ++counted[v];
  }
  EXPECT_EQ(counted, d.path_counts());
}

TEST(DagTest, RejectsEmptyGraph) {
  EXPECT_FALSE(Dag::Create(0, {}).ok());
}

TEST(DagTest, RejectsSelfLoop) {
  auto dag = Dag::Create(2, {{0, 1}, {1, 1}});
  ASSERT_FALSE(dag.ok());
  EXPECT_NE(dag.error().find("self loop"), std::string::npos);
}

TEST(DagTest, RejectsDuplicateEdge) {
  auto dag = Dag::Create(2, {{0, 1}, {0, 1}});
  ASSERT_FALSE(dag.ok());
  EXPECT_NE(dag.error().find("duplicate"), std::string::npos);
}

TEST(DagTest, RejectsInvalidNode) {
  EXPECT_FALSE(Dag::Create(2, {{0, 5}}).ok());
  EXPECT_FALSE(Dag::Create(2, {{-1, 1}}).ok());
}

TEST(DagTest, RejectsCycle) {
  auto dag = Dag::Create(3, {{0, 1}, {1, 2}, {2, 1}});
  ASSERT_FALSE(dag.ok());
}

TEST(DagTest, RejectsMultipleRoots) {
  auto dag = Dag::Create(3, {{0, 2}, {1, 2}});
  ASSERT_FALSE(dag.ok());
  EXPECT_NE(dag.error().find("multiple roots"), std::string::npos);
}

TEST(DagTest, RejectsPureCycleWithNoRoot) {
  auto dag = Dag::Create(2, {{0, 1}, {1, 0}});
  ASSERT_FALSE(dag.ok());
  EXPECT_NE(dag.error().find("no root"), std::string::npos);
}

// Property: for random-ish layered DAGs, every enumerated path starts at the
// root, ends at a leaf, and follows edges.
class DagPathProperty : public ::testing::TestWithParam<int> {};

TEST_P(DagPathProperty, PathsAreWellFormed) {
  const int width = GetParam();
  // Layered DAG: root -> layer of `width` -> single sink.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < width; ++i) {
    edges.push_back({0, 1 + i});
    edges.push_back({1 + i, 1 + width});
  }
  auto dag = Dag::Create(width + 2, edges);
  ASSERT_TRUE(dag.ok());
  const Dag& d = dag.value();
  EXPECT_EQ(d.paths().size(), static_cast<std::size_t>(width));
  std::set<std::pair<int, int>> edge_set(d.edges().begin(), d.edges().end());
  for (const auto& path : d.paths()) {
    EXPECT_EQ(path.front(), d.root());
    EXPECT_TRUE(d.successors(path.back()).empty());
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(edge_set.count({path[i], path[i + 1]}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DagPathProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace lla
