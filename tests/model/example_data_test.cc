// Keeps the shipped example workload files (examples/data/*.lla) loadable
// and schedulable — they are user-facing documentation.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "model/serialization.h"

#ifndef LLA_SOURCE_DIR
#define LLA_SOURCE_DIR "."
#endif

namespace lla {
namespace {

std::string DataPath(const std::string& name) {
  return std::string(LLA_SOURCE_DIR) + "/examples/data/" + name;
}

TEST(ExampleDataTest, TradingWorkloadLoadsAndSolves) {
  auto workload = LoadWorkloadFromFile(DataPath("trading.lla"));
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  EXPECT_EQ(w.task_count(), 3u);
  EXPECT_EQ(w.resource_count(), 5u);
  LatencyModel model(w);
  LlaConfig config;
  config.gamma0 = 3.0;
  LlaEngine engine(w, model, config);
  const RunResult run = engine.Run(12000);
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(run.final_feasibility.feasible);
}

TEST(ExampleDataTest, PaperTable1ExportMatchesBuilder) {
  auto from_file = LoadWorkloadFromFile(DataPath("paper_table1.lla"));
  ASSERT_TRUE(from_file.ok()) << from_file.error();
  EXPECT_EQ(from_file.value().task_count(), 3u);
  EXPECT_EQ(from_file.value().subtask_count(), 21u);
  EXPECT_EQ(from_file.value().path_count(), 9u);
  EXPECT_DOUBLE_EQ(from_file.value().task(TaskId(1u)).critical_time_ms,
                   76.0);
}

}  // namespace
}  // namespace lla
