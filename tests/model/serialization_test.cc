#include "model/serialization.h"

#include <cstdio>
#include <cstdint>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "model/utility.h"
#include "workloads/paper.h"

namespace lla {
namespace {

constexpr const char* kSample = R"(
# two resources, two tasks
resource cpu0 cpu 0.9 1.0
resource link0 link 1.0 0.5

task pipeline 40
  utility linear 80 1
  trigger periodic 50 0
  subtask parse cpu0 4 0.08
  subtask publish link0 6 0.12
  edge 0 1
end

task analytics 200
  utility power 400 0.005 2
  trigger poisson 10
  subtask model-update cpu0 9
end
)";

TEST(SerializationTest, LoadsSample) {
  auto workload = LoadWorkloadFromString(kSample);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  EXPECT_EQ(w.resource_count(), 2u);
  EXPECT_EQ(w.task_count(), 2u);
  EXPECT_EQ(w.subtask_count(), 3u);
  EXPECT_EQ(w.resource(ResourceId(1u)).kind, ResourceKind::kNetworkLink);
  EXPECT_DOUBLE_EQ(w.resource(ResourceId(0u)).capacity, 0.9);
  const TaskInfo& pipeline = w.task(TaskId(0u));
  EXPECT_DOUBLE_EQ(pipeline.critical_time_ms, 40.0);
  EXPECT_DOUBLE_EQ(pipeline.utility->Value(0.0), 80.0);
  EXPECT_EQ(pipeline.trigger.kind, TriggerSpec::Kind::kPeriodic);
  EXPECT_DOUBLE_EQ(w.subtask(SubtaskId(0u)).min_share, 0.08);
  EXPECT_DOUBLE_EQ(w.subtask(SubtaskId(2u)).min_share, 0.0);
  const TaskInfo& analytics = w.task(TaskId(1u));
  EXPECT_EQ(analytics.trigger.kind, TriggerSpec::Kind::kPoisson);
}

TEST(SerializationTest, SaveLoadRoundTripsPaperWorkload) {
  auto original = MakeSimWorkload();
  ASSERT_TRUE(original.ok());
  auto text = SaveWorkloadToString(original.value());
  ASSERT_TRUE(text.ok()) << text.error();
  auto reloaded = LoadWorkloadFromString(text.value());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  const Workload& a = original.value();
  const Workload& b = reloaded.value();
  ASSERT_EQ(a.subtask_count(), b.subtask_count());
  ASSERT_EQ(a.path_count(), b.path_count());
  for (std::size_t s = 0; s < a.subtask_count(); ++s) {
    EXPECT_EQ(a.subtask(SubtaskId(s)).name, b.subtask(SubtaskId(s)).name);
    EXPECT_DOUBLE_EQ(a.subtask(SubtaskId(s)).wcet_ms,
                     b.subtask(SubtaskId(s)).wcet_ms);
    EXPECT_EQ(a.subtask(SubtaskId(s)).resource,
              b.subtask(SubtaskId(s)).resource);
  }
  for (std::size_t t = 0; t < a.task_count(); ++t) {
    EXPECT_DOUBLE_EQ(a.task(TaskId(t)).utility->Value(17.0),
                     b.task(TaskId(t)).utility->Value(17.0));
  }
}

TEST(SerializationTest, AllUtilityShapesRoundTrip) {
  const char* text = R"(
resource r cpu 1 0
task t1 100
  utility power 10 0.5 1.5
  trigger periodic 100
  subtask s r 1
end
task t2 100
  utility negexp 5 0.05
  trigger periodic 100
  subtask s r 1
end
task t3 100
  utility inelastic 50 20 2
  trigger bursty 100 3 2
  subtask s r 1
end
)";
  // Three tasks share resource r — allowed; the same-resource restriction
  // only applies within one task.
  auto workload = LoadWorkloadFromString(text);
  ASSERT_TRUE(workload.ok()) << workload.error();
  auto saved = SaveWorkloadToString(workload.value());
  ASSERT_TRUE(saved.ok()) << saved.error();
  auto reloaded = LoadWorkloadFromString(saved.value());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  for (std::size_t t = 0; t < 3; ++t) {
    for (double x : {0.0, 10.0, 25.0, 60.0}) {
      EXPECT_DOUBLE_EQ(
          workload.value().task(TaskId(t)).utility->Value(x),
          reloaded.value().task(TaskId(t)).utility->Value(x))
          << "task " << t << " x " << x;
    }
  }
  EXPECT_EQ(reloaded.value().task(TaskId(2u)).trigger.kind,
            TriggerSpec::Kind::kBursty);
}

TEST(SerializationTest, ErrorsCarryLineNumbers) {
  const auto missing_end = LoadWorkloadFromString(
      "resource r cpu 1 0\ntask t 10\n  subtask s r 1\n");
  ASSERT_FALSE(missing_end.ok());
  EXPECT_NE(missing_end.error().find("missing 'end'"), std::string::npos);

  const auto bad_keyword =
      LoadWorkloadFromString("resource r cpu 1 0\nfrobnicate\n");
  ASSERT_FALSE(bad_keyword.ok());
  EXPECT_NE(bad_keyword.error().find("line 2"), std::string::npos);

  const auto bad_resource = LoadWorkloadFromString(
      "resource r cpu 1 0\ntask t 10\n  subtask s missing 1\nend\n");
  ASSERT_FALSE(bad_resource.ok());
  EXPECT_NE(bad_resource.error().find("unknown resource"),
            std::string::npos);

  const auto bad_number =
      LoadWorkloadFromString("resource r cpu one 0\n");
  ASSERT_FALSE(bad_number.ok());
  EXPECT_NE(bad_number.error().find("line 1"), std::string::npos);

  const auto bad_kind = LoadWorkloadFromString("resource r gpu 1 0\n");
  ASSERT_FALSE(bad_kind.ok());
  EXPECT_NE(bad_kind.error().find("cpu or link"), std::string::npos);
}

TEST(SerializationTest, ValidationStillApplies) {
  // Parses fine, but the DAG has a cycle: Workload::Create must reject.
  const auto cyclic = LoadWorkloadFromString(R"(
resource r0 cpu 1 0
resource r1 cpu 1 0
task t 10
  utility linear 20 1
  trigger periodic 100
  subtask a r0 1
  subtask b r1 1
  edge 0 1
  edge 1 0
end
)");
  EXPECT_FALSE(cyclic.ok());
}

TEST(SerializationTest, FileRoundTrip) {
  auto original = MakeSimWorkload();
  ASSERT_TRUE(original.ok());
  const std::string path = ::testing::TempDir() + "/workload.lla";
  ASSERT_TRUE(SaveWorkloadToFile(original.value(), path).ok());
  auto reloaded = LoadWorkloadFromFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  EXPECT_EQ(reloaded.value().subtask_count(),
            original.value().subtask_count());
  EXPECT_FALSE(LoadWorkloadFromFile("/nonexistent/nope.lla").ok());
}

// --- StateSnapshot (DESIGN.md §7.7): bit-exact round trip and strict
// rejection of malformed input.

StateSnapshot MakeSnapshot() {
  StateSnapshot snapshot;
  snapshot.resource_count = 2;
  snapshot.path_count = 3;
  snapshot.subtask_count = 4;
  snapshot.task_count = 2;
  snapshot.iteration = 17;
  snapshot.converged = true;
  snapshot.total_subtask_solves = 68;
  // Values chosen to stress bit-exactness: negative zero, denormals-ish
  // tiny magnitudes, and non-terminating binary fractions.
  snapshot.mu = {-0.0, 179.033203125};
  snapshot.lambda = {0.1, 1e-300, 3.5};
  snapshot.resource_step_multiplier = {1.0, 8.0};
  snapshot.path_step_multiplier = {2.0, 1.0, 4.0};
  snapshot.step_iteration = 17;
  snapshot.recent_utilities = {100.25, 100.5, 100.625};
  // v2 momentum state, same bit-stress values (negative velocity, -0.0).
  snapshot.mu_velocity = {-0.125, 0.0};
  snapshot.lambda_velocity = {-0.0, 1e-300, 0.5};
  snapshot.mu_base = {0.0, 179.0};
  snapshot.lambda_base = {0.1, 0.0, 3.25};
  snapshot.mu_phase = {12.0, 0.0};
  snapshot.lambda_phase = {0.0, 7.0, 1.0};
  snapshot.momentum_restarts = 23;
  snapshot.price_state_primed = true;
  snapshot.mu_settled = {1, 0};
  snapshot.lambda_settled = {0, 1, 0};
  snapshot.mu_zero_epochs = {3, 0};
  snapshot.lambda_zero_epochs = {0, 0, 9};
  snapshot.mu_stable_epochs = {1, 2};
  snapshot.lambda_stable_epochs = {4, 5, 6};
  snapshot.shadow_mu = {-0.0, 179.033203125};
  snapshot.shadow_lambda = {0.1, 1e-300, 3.5};
  snapshot.prev_share_sums = {0.25, 0.75};
  snapshot.prev_path_latencies = {1.5, 2.5, 3.5};
  return snapshot;
}

void ExpectSnapshotsEqual(const StateSnapshot& a, const StateSnapshot& b) {
  EXPECT_EQ(a.resource_count, b.resource_count);
  EXPECT_EQ(a.path_count, b.path_count);
  EXPECT_EQ(a.subtask_count, b.subtask_count);
  EXPECT_EQ(a.task_count, b.task_count);
  EXPECT_EQ(a.iteration, b.iteration);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.total_subtask_solves, b.total_subtask_solves);
  EXPECT_EQ(a.step_iteration, b.step_iteration);
  EXPECT_EQ(a.price_state_primed, b.price_state_primed);
  // memcmp on the raw doubles: the format must preserve exact bit patterns,
  // including the sign of -0.0.
  auto expect_bits = [](const std::vector<double>& x,
                        const std::vector<double>& y) {
    ASSERT_EQ(x.size(), y.size());
    EXPECT_EQ(std::memcmp(x.data(), y.data(), x.size() * sizeof(double)), 0);
  };
  expect_bits(a.mu, b.mu);
  expect_bits(a.lambda, b.lambda);
  expect_bits(a.resource_step_multiplier, b.resource_step_multiplier);
  expect_bits(a.path_step_multiplier, b.path_step_multiplier);
  expect_bits(a.recent_utilities, b.recent_utilities);
  expect_bits(a.mu_velocity, b.mu_velocity);
  expect_bits(a.lambda_velocity, b.lambda_velocity);
  expect_bits(a.mu_base, b.mu_base);
  expect_bits(a.lambda_base, b.lambda_base);
  expect_bits(a.mu_phase, b.mu_phase);
  expect_bits(a.lambda_phase, b.lambda_phase);
  EXPECT_EQ(a.momentum_restarts, b.momentum_restarts);
  expect_bits(a.shadow_mu, b.shadow_mu);
  expect_bits(a.shadow_lambda, b.shadow_lambda);
  expect_bits(a.prev_share_sums, b.prev_share_sums);
  expect_bits(a.prev_path_latencies, b.prev_path_latencies);
  EXPECT_EQ(a.mu_settled, b.mu_settled);
  EXPECT_EQ(a.lambda_settled, b.lambda_settled);
  EXPECT_EQ(a.mu_zero_epochs, b.mu_zero_epochs);
  EXPECT_EQ(a.lambda_zero_epochs, b.lambda_zero_epochs);
  EXPECT_EQ(a.mu_stable_epochs, b.mu_stable_epochs);
  EXPECT_EQ(a.lambda_stable_epochs, b.lambda_stable_epochs);
}

TEST(SnapshotSerializationTest, RoundTripsThroughString) {
  const StateSnapshot original = MakeSnapshot();
  auto saved = SaveSnapshotToString(original);
  ASSERT_TRUE(saved.ok());
  const std::string& text = saved.value();
  EXPECT_NE(text.find("snapshot v2"), std::string::npos);
  auto loaded = LoadSnapshotFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ExpectSnapshotsEqual(original, loaded.value());
}

// A v1 file (pre-momentum format: v1 header, no momentum_restarts line, no
// velocity fvecs) must still load, with the dynamics state reading as empty
// — the compatibility contract that keeps old durable checkpoints usable.
TEST(SnapshotSerializationTest, ReadsV1Files) {
  StateSnapshot original = MakeSnapshot();
  original.mu_velocity.clear();
  original.lambda_velocity.clear();
  original.mu_base.clear();
  original.lambda_base.clear();
  original.mu_phase.clear();
  original.lambda_phase.clear();
  original.momentum_restarts = 0;
  auto saved = SaveSnapshotToString(original);
  ASSERT_TRUE(saved.ok());
  // Rewrite the v2 text as its v1 equivalent: swap the header and drop the
  // v2-only lines (they encode empty state, so nothing is lost).
  std::string text = saved.value();
  const std::size_t header = text.find("snapshot v2");
  ASSERT_NE(header, std::string::npos);
  text.replace(header, 11, "snapshot v1");
  for (const char* line :
       {"momentum_restarts 0\n", "fvec mu_velocity 0\n",
        "fvec lambda_velocity 0\n", "fvec mu_base 0\n",
        "fvec lambda_base 0\n", "fvec mu_phase 0\n",
        "fvec lambda_phase 0\n"}) {
    const std::size_t pos = text.find(line);
    ASSERT_NE(pos, std::string::npos) << line;
    text.erase(pos, std::strlen(line));
  }
  auto loaded = LoadSnapshotFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ExpectSnapshotsEqual(original, loaded.value());
  EXPECT_TRUE(loaded.value().mu_velocity.empty());
  EXPECT_EQ(loaded.value().momentum_restarts, 0u);
}

TEST(SnapshotSerializationTest, RoundTripsThroughFile) {
  const StateSnapshot original = MakeSnapshot();
  const std::string path = ::testing::TempDir() + "/snapshot_rt.snap";
  ASSERT_TRUE(SaveSnapshotToFile(original, path).ok());
  auto loaded = LoadSnapshotFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ExpectSnapshotsEqual(original, loaded.value());
  std::remove(path.c_str());
}

TEST(SnapshotSerializationTest, UnprimedSnapshotOmitsActiveSetVectors) {
  StateSnapshot snapshot = MakeSnapshot();
  snapshot.price_state_primed = false;
  snapshot.mu_settled.clear();
  snapshot.lambda_settled.clear();
  snapshot.mu_zero_epochs.clear();
  snapshot.lambda_zero_epochs.clear();
  snapshot.mu_stable_epochs.clear();
  snapshot.lambda_stable_epochs.clear();
  snapshot.shadow_mu.clear();
  snapshot.shadow_lambda.clear();
  snapshot.prev_share_sums.clear();
  snapshot.prev_path_latencies.clear();
  auto saved = SaveSnapshotToString(snapshot);
  ASSERT_TRUE(saved.ok());
  auto loaded = LoadSnapshotFromString(saved.value());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_FALSE(loaded.value().price_state_primed);
  EXPECT_TRUE(loaded.value().shadow_mu.empty());
}

TEST(SnapshotSerializationTest, RejectsMalformedInput) {
  auto saved = SaveSnapshotToString(MakeSnapshot());
  ASSERT_TRUE(saved.ok());
  const std::string good = saved.value();

  // Each mutation must fail with an error, not crash or mis-parse.
  EXPECT_FALSE(LoadSnapshotFromString("").ok());
  EXPECT_FALSE(LoadSnapshotFromString("snapshot v3\nend\n").ok());
  EXPECT_FALSE(LoadSnapshotFromString("shape 1 1 1 1\nend\n").ok());

  // Truncation: drop the trailing "end".
  const std::string truncated = good.substr(0, good.rfind("end"));
  EXPECT_FALSE(LoadSnapshotFromString(truncated).ok());

  // Content after "end" is a hard error.
  EXPECT_FALSE(LoadSnapshotFromString(good + "fvec mu 0\n").ok());

  // Count/value mismatch inside a vector line.
  std::string short_vec = good;
  const std::size_t pos = short_vec.find("fvec mu 2 ");
  ASSERT_NE(pos, std::string::npos);
  short_vec.replace(pos, 10, "fvec mu 3 ");
  EXPECT_FALSE(LoadSnapshotFromString(short_vec).ok());

  // Unknown vector names are rejected (future-format safety).
  std::string unknown = good;
  const std::size_t mu_pos = unknown.find("fvec mu ");
  ASSERT_NE(mu_pos, std::string::npos);
  unknown.replace(mu_pos, 8, "fvec xx ");
  EXPECT_FALSE(LoadSnapshotFromString(unknown).ok());

  // Non-hex garbage where a double's bit pattern belongs.
  std::string bad_hex = good;
  const std::size_t hex_pos = bad_hex.find("fvec lambda 3 ");
  ASSERT_NE(hex_pos, std::string::npos);
  bad_hex.replace(hex_pos + 14, 4, "zzzz");
  EXPECT_FALSE(LoadSnapshotFromString(bad_hex).ok());
}

TEST(SnapshotSerializationTest, RejectsPriceVectorShapeMismatch) {
  StateSnapshot snapshot = MakeSnapshot();
  snapshot.mu.push_back(1.0);  // now disagrees with resource_count
  auto saved = SaveSnapshotToString(snapshot);
  ASSERT_TRUE(saved.ok());
  EXPECT_FALSE(LoadSnapshotFromString(saved.value()).ok());
}

// --- Binary snapshot format "b1" (DESIGN.md §7.10).

// Helpers that poke the fixed layout: magic(8) + version(4) + section
// count(4) + scalars to byte 88, then 32-byte table entries
// {id u32, elem_kind u8, encoding u8, pad u16, count u64, offset u64,
// size u64}, then 8-byte aligned payload.
constexpr std::size_t kB1Header = 88;
constexpr std::size_t kB1Entry = 32;

std::uint32_t B1SectionCount(const std::string& bytes) {
  std::uint32_t count;
  std::memcpy(&count, bytes.data() + 12, 4);
  return count;
}

/// Byte offset of section `id`'s table entry, or npos.
std::size_t B1FindEntry(const std::string& bytes, std::uint32_t id) {
  for (std::uint32_t s = 0; s < B1SectionCount(bytes); ++s) {
    std::uint32_t entry_id;
    std::memcpy(&entry_id, bytes.data() + kB1Header + s * kB1Entry, 4);
    if (entry_id == id) return kB1Header + s * kB1Entry;
  }
  return std::string::npos;
}

TEST(BinarySnapshotTest, RoundTripsBitExactlyAndDeterministically) {
  const StateSnapshot original = MakeSnapshot();
  auto bytes = SaveSnapshotBinaryToString(original);
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(SnapshotBytesAreBinary(bytes.value()));
  auto loaded = LoadSnapshotBinaryFromString(bytes.value());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ExpectSnapshotsEqual(original, loaded.value());
  // Deterministic bytes: re-serializing the loaded snapshot reproduces the
  // image exactly, so snapshot files diff/dedup cleanly.
  auto again = SaveSnapshotBinaryToString(loaded.value());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(bytes.value(), again.value());
}

TEST(BinarySnapshotTest, GenericLoadersSniffTheMagic) {
  const StateSnapshot original = MakeSnapshot();
  auto bytes = SaveSnapshotBinaryToString(original);
  ASSERT_TRUE(bytes.ok());
  // String entry point.
  auto loaded = LoadSnapshotFromString(bytes.value());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ExpectSnapshotsEqual(original, loaded.value());
  // File entry point (std::istream path; the file is binary-safe).
  const std::string path = ::testing::TempDir() + "/snapshot_b1.snap";
  ASSERT_TRUE(SaveSnapshotBinaryToFile(original, path).ok());
  auto from_file = LoadSnapshotFromFile(path);
  ASSERT_TRUE(from_file.ok()) << from_file.error();
  ExpectSnapshotsEqual(original, from_file.value());
  std::remove(path.c_str());
  // Text bytes are not misidentified.
  auto text = SaveSnapshotToString(original);
  ASSERT_TRUE(text.ok());
  EXPECT_FALSE(SnapshotBytesAreBinary(text.value()));
}

TEST(BinarySnapshotTest, RejectsEveryTruncation) {
  auto bytes = SaveSnapshotBinaryToString(MakeSnapshot());
  ASSERT_TRUE(bytes.ok());
  const std::string& good = bytes.value();
  // Any prefix that loses more than the trailing alignment padding (< 8
  // bytes, bit-zero) must be rejected — header, section table, and payload
  // truncations alike.
  for (std::size_t len = 0; len + 8 <= good.size(); ++len) {
    EXPECT_FALSE(LoadSnapshotBinaryFromString(good.substr(0, len)).ok())
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(BinarySnapshotTest, RejectsHeaderCorruption) {
  auto bytes = SaveSnapshotBinaryToString(MakeSnapshot());
  ASSERT_TRUE(bytes.ok());
  const std::string& good = bytes.value();

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(LoadSnapshotBinaryFromString(bad_magic).ok());
  EXPECT_FALSE(LoadSnapshotFromString(bad_magic).ok());  // nor as text

  std::string bad_version = good;
  bad_version[8] = 2;
  EXPECT_FALSE(LoadSnapshotBinaryFromString(bad_version).ok());

  std::string bad_count = good;  // section count beyond the actual table
  bad_count[12] = static_cast<char>(0xff);
  bad_count[13] = static_cast<char>(0xff);
  EXPECT_FALSE(LoadSnapshotBinaryFromString(bad_count).ok());

  std::string bad_flag = good;
  bad_flag[80] = 2;  // converged must be 0/1
  EXPECT_FALSE(LoadSnapshotBinaryFromString(bad_flag).ok());
}

TEST(BinarySnapshotTest, RejectsSectionTableCorruption) {
  auto bytes = SaveSnapshotBinaryToString(MakeSnapshot());
  ASSERT_TRUE(bytes.ok());
  const std::string& good = bytes.value();
  const std::size_t mu_entry = B1FindEntry(good, 1);
  const std::size_t lambda_entry = B1FindEntry(good, 2);
  ASSERT_NE(mu_entry, std::string::npos);
  ASSERT_NE(lambda_entry, std::string::npos);

  {
    std::string bad = good;  // unknown section id
    bad[mu_entry] = 99;
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // duplicate section id
    bad[lambda_entry] = 1;
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // unknown element kind
    bad[mu_entry + 4] = 7;
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // unknown encoding
    bad[mu_entry + 5] = 9;
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // element count no longer matches payload size
    ++bad[mu_entry + 8];
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // hostile count: must refuse to allocate
    std::memset(bad.data() + mu_entry + 8, 0xff, 8);
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // misaligned payload offset
    ++bad[mu_entry + 16];
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // offset past the payload region
    std::memset(bad.data() + mu_entry + 16, 0x7f, 8);
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // size overrunning the payload region
    std::memset(bad.data() + mu_entry + 24, 0x7f, 8);
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
}

TEST(BinarySnapshotTest, RejectsCorruptCompressedPayloads) {
  // Force the two compressed encodings: a mostly-zero f64 vector (sparse)
  // and a constant f64 vector (rle), both longer than the table overhead.
  StateSnapshot snapshot = MakeSnapshot();
  snapshot.path_count = 64;
  snapshot.lambda.assign(64, 0.0);
  snapshot.lambda[5] = 0.25;  // sparse: 8 + 1*12 bytes << raw 512
  snapshot.path_step_multiplier.assign(64, 1.0);  // rle: one run
  snapshot.lambda_velocity.clear();
  snapshot.lambda_base.clear();
  snapshot.lambda_phase.clear();
  snapshot.lambda_settled.clear();
  snapshot.lambda_zero_epochs.clear();
  snapshot.lambda_stable_epochs.clear();
  snapshot.shadow_lambda.clear();
  snapshot.prev_path_latencies.clear();
  auto bytes = SaveSnapshotBinaryToString(snapshot);
  ASSERT_TRUE(bytes.ok());
  const std::string& good = bytes.value();
  ASSERT_TRUE(LoadSnapshotBinaryFromString(good).ok());

  const std::size_t payload_start =
      kB1Header + B1SectionCount(good) * kB1Entry;
  const std::size_t lambda_entry = B1FindEntry(good, 2);
  const std::size_t rle_entry = B1FindEntry(good, 4);
  ASSERT_NE(lambda_entry, std::string::npos);
  ASSERT_NE(rle_entry, std::string::npos);
  std::uint8_t lambda_encoding =
      static_cast<std::uint8_t>(good[lambda_entry + 5]);
  std::uint8_t rle_encoding = static_cast<std::uint8_t>(good[rle_entry + 5]);
  ASSERT_EQ(lambda_encoding, 2u);  // sparse
  ASSERT_EQ(rle_encoding, 1u);     // rle
  std::uint64_t lambda_off, rle_off;
  std::memcpy(&lambda_off, good.data() + lambda_entry + 16, 8);
  std::memcpy(&rle_off, good.data() + rle_entry + 16, 8);

  {
    std::string bad = good;  // sparse index out of range (>= count)
    const std::uint32_t index = 64;
    std::memcpy(bad.data() + payload_start + lambda_off + 8, &index, 4);
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // sparse nnz disagrees with section size
    ++bad[payload_start + lambda_off];
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // rle run count disagrees with section size
    ++bad[payload_start + rle_off];
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    std::string bad = good;  // rle run length exceeds the element count
    const std::uint64_t run_len = 65;
    std::memcpy(bad.data() + payload_start + rle_off + 8, &run_len, 8);
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
  {
    // rle run count crafted so 8 + runs * 16 wraps u64 back to the real
    // section size: without the runs <= count bound the size equality
    // passes and the decode loop reads far past the section.
    std::string bad = good;
    std::uint64_t size;
    std::memcpy(&size, bad.data() + rle_entry + 24, 8);
    const std::uint64_t runs = ((size - 8) / 16) + (1ull << 60);
    std::memcpy(bad.data() + payload_start + rle_off, &runs, 8);
    EXPECT_FALSE(LoadSnapshotBinaryFromString(bad).ok());
  }
}

}  // namespace
}  // namespace lla
