#include "model/serialization.h"

#include <gtest/gtest.h>

#include "model/utility.h"
#include "workloads/paper.h"

namespace lla {
namespace {

constexpr const char* kSample = R"(
# two resources, two tasks
resource cpu0 cpu 0.9 1.0
resource link0 link 1.0 0.5

task pipeline 40
  utility linear 80 1
  trigger periodic 50 0
  subtask parse cpu0 4 0.08
  subtask publish link0 6 0.12
  edge 0 1
end

task analytics 200
  utility power 400 0.005 2
  trigger poisson 10
  subtask model-update cpu0 9
end
)";

TEST(SerializationTest, LoadsSample) {
  auto workload = LoadWorkloadFromString(kSample);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  EXPECT_EQ(w.resource_count(), 2u);
  EXPECT_EQ(w.task_count(), 2u);
  EXPECT_EQ(w.subtask_count(), 3u);
  EXPECT_EQ(w.resource(ResourceId(1u)).kind, ResourceKind::kNetworkLink);
  EXPECT_DOUBLE_EQ(w.resource(ResourceId(0u)).capacity, 0.9);
  const TaskInfo& pipeline = w.task(TaskId(0u));
  EXPECT_DOUBLE_EQ(pipeline.critical_time_ms, 40.0);
  EXPECT_DOUBLE_EQ(pipeline.utility->Value(0.0), 80.0);
  EXPECT_EQ(pipeline.trigger.kind, TriggerSpec::Kind::kPeriodic);
  EXPECT_DOUBLE_EQ(w.subtask(SubtaskId(0u)).min_share, 0.08);
  EXPECT_DOUBLE_EQ(w.subtask(SubtaskId(2u)).min_share, 0.0);
  const TaskInfo& analytics = w.task(TaskId(1u));
  EXPECT_EQ(analytics.trigger.kind, TriggerSpec::Kind::kPoisson);
}

TEST(SerializationTest, SaveLoadRoundTripsPaperWorkload) {
  auto original = MakeSimWorkload();
  ASSERT_TRUE(original.ok());
  auto text = SaveWorkloadToString(original.value());
  ASSERT_TRUE(text.ok()) << text.error();
  auto reloaded = LoadWorkloadFromString(text.value());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  const Workload& a = original.value();
  const Workload& b = reloaded.value();
  ASSERT_EQ(a.subtask_count(), b.subtask_count());
  ASSERT_EQ(a.path_count(), b.path_count());
  for (std::size_t s = 0; s < a.subtask_count(); ++s) {
    EXPECT_EQ(a.subtask(SubtaskId(s)).name, b.subtask(SubtaskId(s)).name);
    EXPECT_DOUBLE_EQ(a.subtask(SubtaskId(s)).wcet_ms,
                     b.subtask(SubtaskId(s)).wcet_ms);
    EXPECT_EQ(a.subtask(SubtaskId(s)).resource,
              b.subtask(SubtaskId(s)).resource);
  }
  for (std::size_t t = 0; t < a.task_count(); ++t) {
    EXPECT_DOUBLE_EQ(a.task(TaskId(t)).utility->Value(17.0),
                     b.task(TaskId(t)).utility->Value(17.0));
  }
}

TEST(SerializationTest, AllUtilityShapesRoundTrip) {
  const char* text = R"(
resource r cpu 1 0
task t1 100
  utility power 10 0.5 1.5
  trigger periodic 100
  subtask s r 1
end
task t2 100
  utility negexp 5 0.05
  trigger periodic 100
  subtask s r 1
end
task t3 100
  utility inelastic 50 20 2
  trigger bursty 100 3 2
  subtask s r 1
end
)";
  // Three tasks share resource r — allowed; the same-resource restriction
  // only applies within one task.
  auto workload = LoadWorkloadFromString(text);
  ASSERT_TRUE(workload.ok()) << workload.error();
  auto saved = SaveWorkloadToString(workload.value());
  ASSERT_TRUE(saved.ok()) << saved.error();
  auto reloaded = LoadWorkloadFromString(saved.value());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  for (std::size_t t = 0; t < 3; ++t) {
    for (double x : {0.0, 10.0, 25.0, 60.0}) {
      EXPECT_DOUBLE_EQ(
          workload.value().task(TaskId(t)).utility->Value(x),
          reloaded.value().task(TaskId(t)).utility->Value(x))
          << "task " << t << " x " << x;
    }
  }
  EXPECT_EQ(reloaded.value().task(TaskId(2u)).trigger.kind,
            TriggerSpec::Kind::kBursty);
}

TEST(SerializationTest, ErrorsCarryLineNumbers) {
  const auto missing_end = LoadWorkloadFromString(
      "resource r cpu 1 0\ntask t 10\n  subtask s r 1\n");
  ASSERT_FALSE(missing_end.ok());
  EXPECT_NE(missing_end.error().find("missing 'end'"), std::string::npos);

  const auto bad_keyword =
      LoadWorkloadFromString("resource r cpu 1 0\nfrobnicate\n");
  ASSERT_FALSE(bad_keyword.ok());
  EXPECT_NE(bad_keyword.error().find("line 2"), std::string::npos);

  const auto bad_resource = LoadWorkloadFromString(
      "resource r cpu 1 0\ntask t 10\n  subtask s missing 1\nend\n");
  ASSERT_FALSE(bad_resource.ok());
  EXPECT_NE(bad_resource.error().find("unknown resource"),
            std::string::npos);

  const auto bad_number =
      LoadWorkloadFromString("resource r cpu one 0\n");
  ASSERT_FALSE(bad_number.ok());
  EXPECT_NE(bad_number.error().find("line 1"), std::string::npos);

  const auto bad_kind = LoadWorkloadFromString("resource r gpu 1 0\n");
  ASSERT_FALSE(bad_kind.ok());
  EXPECT_NE(bad_kind.error().find("cpu or link"), std::string::npos);
}

TEST(SerializationTest, ValidationStillApplies) {
  // Parses fine, but the DAG has a cycle: Workload::Create must reject.
  const auto cyclic = LoadWorkloadFromString(R"(
resource r0 cpu 1 0
resource r1 cpu 1 0
task t 10
  utility linear 20 1
  trigger periodic 100
  subtask a r0 1
  subtask b r1 1
  edge 0 1
  edge 1 0
end
)");
  EXPECT_FALSE(cyclic.ok());
}

TEST(SerializationTest, FileRoundTrip) {
  auto original = MakeSimWorkload();
  ASSERT_TRUE(original.ok());
  const std::string path = ::testing::TempDir() + "/workload.lla";
  ASSERT_TRUE(SaveWorkloadToFile(original.value(), path).ok());
  auto reloaded = LoadWorkloadFromFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  EXPECT_EQ(reloaded.value().subtask_count(),
            original.value().subtask_count());
  EXPECT_FALSE(LoadWorkloadFromFile("/nonexistent/nope.lla").ok());
}

}  // namespace
}  // namespace lla
