#include "model/workload.h"

#include <gtest/gtest.h>

#include "model/trigger.h"
#include "model/utility.h"

namespace lla {
namespace {

std::vector<ResourceSpec> TwoResources() {
  return {{"cpu0", ResourceKind::kCpu, 1.0, 1.0},
          {"link0", ResourceKind::kNetworkLink, 0.8, 0.5}};
}

TaskSpec SimpleChainTask(const std::string& name = "t") {
  TaskSpec task;
  task.name = name;
  task.critical_time_ms = 50.0;
  task.utility = MakePaperSimUtility(50.0);
  task.trigger = TriggerSpec::Periodic(100.0);
  task.subtasks = {{"a", ResourceId(0u), 2.0, 0.0},
                   {"b", ResourceId(1u), 3.0, 0.1}};
  task.edges = {{0, 1}};
  return task;
}

TEST(WorkloadTest, BuildsValidWorkload) {
  auto workload = Workload::Create(TwoResources(), {SimpleChainTask()});
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  EXPECT_EQ(w.resource_count(), 2u);
  EXPECT_EQ(w.task_count(), 1u);
  EXPECT_EQ(w.subtask_count(), 2u);
  EXPECT_EQ(w.path_count(), 1u);

  const SubtaskInfo& a = w.subtask(SubtaskId(0u));
  EXPECT_EQ(a.name, "a");
  EXPECT_DOUBLE_EQ(a.wcet_ms, 2.0);
  EXPECT_DOUBLE_EQ(a.work_ms, 3.0);  // wcet + cpu0 lag 1.0
  const SubtaskInfo& b = w.subtask(SubtaskId(1u));
  EXPECT_DOUBLE_EQ(b.work_ms, 3.5);  // wcet + link0 lag 0.5
  EXPECT_DOUBLE_EQ(b.min_share, 0.1);

  EXPECT_EQ(w.resource(ResourceId(0u)).subtasks.size(), 1u);
  EXPECT_EQ(w.path(PathId(0u)).subtasks.size(), 2u);
  EXPECT_DOUBLE_EQ(w.path(PathId(0u)).critical_time_ms, 50.0);
}

TEST(WorkloadTest, WeightsFollowVariant) {
  // Fan-out: root on cpu0, two leaves on link0 + a third resource.
  std::vector<ResourceSpec> resources = TwoResources();
  resources.push_back({"cpu1", ResourceKind::kCpu, 1.0, 0.0});
  TaskSpec task;
  task.name = "fan";
  task.critical_time_ms = 40.0;
  task.utility = MakePaperSimUtility(40.0);
  task.subtasks = {{"root", ResourceId(0u), 1.0, 0.0},
                   {"leaf1", ResourceId(1u), 1.0, 0.0},
                   {"leaf2", ResourceId(2u), 1.0, 0.0}};
  task.edges = {{0, 1}, {0, 2}};
  auto workload = Workload::Create(std::move(resources), {task});
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  EXPECT_DOUBLE_EQ(w.Weight(SubtaskId(0u), UtilityVariant::kSum), 1.0);
  EXPECT_DOUBLE_EQ(w.Weight(SubtaskId(0u), UtilityVariant::kPathWeighted),
                   2.0);
  EXPECT_DOUBLE_EQ(w.Weight(SubtaskId(1u), UtilityVariant::kPathWeighted),
                   1.0);
  EXPECT_EQ(w.subtask(SubtaskId(0u)).paths.size(), 2u);
}

TEST(WorkloadTest, RejectsEmptyInputs) {
  EXPECT_FALSE(Workload::Create({}, {SimpleChainTask()}).ok());
  EXPECT_FALSE(Workload::Create(TwoResources(), {}).ok());
}

TEST(WorkloadTest, RejectsBadCapacity) {
  auto resources = TwoResources();
  resources[0].capacity = 0.0;
  EXPECT_FALSE(Workload::Create(resources, {SimpleChainTask()}).ok());
  resources[0].capacity = 1.5;
  EXPECT_FALSE(Workload::Create(resources, {SimpleChainTask()}).ok());
}

TEST(WorkloadTest, RejectsNegativeLag) {
  auto resources = TwoResources();
  resources[1].lag_ms = -0.1;
  EXPECT_FALSE(Workload::Create(resources, {SimpleChainTask()}).ok());
}

TEST(WorkloadTest, RejectsBadCriticalTime) {
  auto task = SimpleChainTask();
  task.critical_time_ms = 0.0;
  EXPECT_FALSE(Workload::Create(TwoResources(), {task}).ok());
}

TEST(WorkloadTest, RejectsMissingUtility) {
  auto task = SimpleChainTask();
  task.utility = nullptr;
  EXPECT_FALSE(Workload::Create(TwoResources(), {task}).ok());
}

TEST(WorkloadTest, RejectsInvalidResourceReference) {
  auto task = SimpleChainTask();
  task.subtasks[1].resource = ResourceId(9u);
  EXPECT_FALSE(Workload::Create(TwoResources(), {task}).ok());
  task.subtasks[1].resource = ResourceId();  // invalid sentinel
  EXPECT_FALSE(Workload::Create(TwoResources(), {task}).ok());
}

TEST(WorkloadTest, RejectsNonPositiveWcet) {
  auto task = SimpleChainTask();
  task.subtasks[0].wcet_ms = 0.0;
  EXPECT_FALSE(Workload::Create(TwoResources(), {task}).ok());
}

TEST(WorkloadTest, RejectsMinShareAboveCapacity) {
  auto task = SimpleChainTask();
  task.subtasks[1].min_share = 0.9;  // link capacity is 0.8
  EXPECT_FALSE(Workload::Create(TwoResources(), {task}).ok());
}

TEST(WorkloadTest, RejectsSharedResourceWithinTaskByDefault) {
  auto task = SimpleChainTask();
  task.subtasks[1].resource = ResourceId(0u);
  auto rejected = Workload::Create(TwoResources(), {task});
  ASSERT_FALSE(rejected.ok());
  WorkloadOptions options;
  options.allow_shared_resource_within_task = true;
  auto allowed = Workload::Create(TwoResources(), {task}, options);
  EXPECT_TRUE(allowed.ok()) << allowed.error();
}

TEST(WorkloadTest, RejectsMalformedDag) {
  auto task = SimpleChainTask();
  task.edges = {{0, 1}, {1, 0}};
  EXPECT_FALSE(Workload::Create(TwoResources(), {task}).ok());
}

TEST(WorkloadTest, MinShareDemandSums) {
  auto workload = Workload::Create(
      TwoResources(), {SimpleChainTask("t1"), SimpleChainTask("t2")});
  ASSERT_TRUE(workload.ok()) << workload.error();
  EXPECT_DOUBLE_EQ(workload.value().MinShareDemand(ResourceId(0u)), 0.0);
  EXPECT_DOUBLE_EQ(workload.value().MinShareDemand(ResourceId(1u)), 0.2);
}

TEST(WorkloadTest, NamesDefaultWhenEmpty) {
  auto task = SimpleChainTask();
  task.name.clear();
  task.subtasks[0].name.clear();
  auto workload = Workload::Create(TwoResources(), {task});
  ASSERT_TRUE(workload.ok()) << workload.error();
  EXPECT_EQ(workload.value().task(TaskId(0u)).name, "task0");
  EXPECT_EQ(workload.value().subtask(SubtaskId(0u)).name, "task0.0");
}

TEST(TriggerSpecTest, MeanRates) {
  EXPECT_DOUBLE_EQ(TriggerSpec::Periodic(100.0).MeanRatePerSecond(), 10.0);
  EXPECT_DOUBLE_EQ(TriggerSpec::Poisson(40.0).MeanRatePerSecond(), 40.0);
  EXPECT_DOUBLE_EQ(TriggerSpec::Bursty(100.0, 5, 1.0).MeanRatePerSecond(),
                   50.0);
}

}  // namespace
}  // namespace lla
