#include "model/evaluation.h"

#include <gtest/gtest.h>

#include "model/trigger.h"
#include "model/utility.h"
#include "workloads/paper.h"

namespace lla {
namespace {

// Two tasks sharing resource 0; task "fan" has a fork so sum and
// path-weighted differ.
Workload MakeFixture() {
  std::vector<ResourceSpec> resources = {
      {"r0", ResourceKind::kCpu, 1.0, 1.0},
      {"r1", ResourceKind::kCpu, 0.9, 0.0},
      {"r2", ResourceKind::kNetworkLink, 1.0, 2.0}};
  TaskSpec chain;
  chain.name = "chain";
  chain.critical_time_ms = 30.0;
  chain.utility = MakePaperSimUtility(30.0);  // f(x) = 60 - x
  chain.trigger = TriggerSpec::Periodic(100.0);
  chain.subtasks = {{"c0", ResourceId(0u), 2.0, 0.0},
                    {"c1", ResourceId(1u), 3.0, 0.0}};
  chain.edges = {{0, 1}};

  TaskSpec fan;
  fan.name = "fan";
  fan.critical_time_ms = 40.0;
  fan.utility = MakePaperSimUtility(40.0);  // f(x) = 80 - x
  fan.trigger = TriggerSpec::Periodic(100.0);
  fan.subtasks = {{"f0", ResourceId(0u), 1.0, 0.0},
                  {"f1", ResourceId(1u), 2.0, 0.0},
                  {"f2", ResourceId(2u), 4.0, 0.0}};
  fan.edges = {{0, 1}, {0, 2}};

  auto workload = Workload::Create(std::move(resources), {chain, fan});
  EXPECT_TRUE(workload.ok()) << workload.error();
  return std::move(workload).value();
}

TEST(EvaluationTest, TaskUtilitySumVariant) {
  const Workload w = MakeFixture();
  const Assignment lat = {10.0, 5.0, 4.0, 6.0, 8.0};
  // chain: 60 - (10 + 5) = 45.
  EXPECT_DOUBLE_EQ(
      TaskUtility(w, TaskId(0u), lat, UtilityVariant::kSum), 45.0);
  // fan: 80 - (4 + 6 + 8) = 62.
  EXPECT_DOUBLE_EQ(
      TaskUtility(w, TaskId(1u), lat, UtilityVariant::kSum), 62.0);
  EXPECT_DOUBLE_EQ(TotalUtility(w, lat, UtilityVariant::kSum), 107.0);
}

TEST(EvaluationTest, TaskUtilityPathWeightedVariant) {
  const Workload w = MakeFixture();
  const Assignment lat = {10.0, 5.0, 4.0, 6.0, 8.0};
  // fan root f0 lies on 2 paths: 80 - (2*4 + 6 + 8) = 58.
  EXPECT_DOUBLE_EQ(
      TaskUtility(w, TaskId(1u), lat, UtilityVariant::kPathWeighted), 58.0);
  // chain is a single path: same as sum.
  EXPECT_DOUBLE_EQ(
      TaskUtility(w, TaskId(0u), lat, UtilityVariant::kPathWeighted), 45.0);
}

TEST(EvaluationTest, ResourceShareSum) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  const Assignment lat = {10.0, 5.0, 4.0, 6.0, 8.0};
  // r0 hosts c0 (work 3) at lat 10 and f0 (work 2) at lat 4:
  // 3/10 + 2/4 = 0.8.
  EXPECT_DOUBLE_EQ(
      ResourceShareSum(w, model, ResourceId(0u), lat), 0.8);
  // r2 hosts f2 (work 6) at lat 8.
  EXPECT_DOUBLE_EQ(ResourceShareSum(w, model, ResourceId(2u), lat), 0.75);
}

TEST(EvaluationTest, PathAndCriticalPathLatency) {
  const Workload w = MakeFixture();
  const Assignment lat = {10.0, 5.0, 4.0, 6.0, 8.0};
  EXPECT_DOUBLE_EQ(PathLatency(w, PathId(0u), lat), 15.0);  // chain
  // fan paths: f0->f1 = 10, f0->f2 = 12.
  EXPECT_DOUBLE_EQ(CriticalPathLatency(w, TaskId(1u), lat), 12.0);
}

TEST(EvaluationTest, FeasibilityDetectsResourceOverload) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  // Tiny latencies on r0: 3/1 + 2/1 = 5 > 1.
  const Assignment lat = {1.0, 5.0, 1.0, 6.0, 8.0};
  const auto report = CheckFeasibility(w, model, lat);
  EXPECT_FALSE(report.feasible);
  EXPECT_NEAR(report.max_resource_excess, 4.0, 1e-12);
}

TEST(EvaluationTest, FeasibilityDetectsDeadlineViolation) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  // chain latency 35 > critical time 30, resources fine.
  const Assignment lat = {20.0, 15.0, 4.0, 6.0, 8.0};
  const auto report = CheckFeasibility(w, model, lat);
  EXPECT_FALSE(report.feasible);
  EXPECT_NEAR(report.max_path_ratio, 35.0 / 30.0, 1e-12);
}

TEST(EvaluationTest, FeasibleAssignmentPasses) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  const Assignment lat = {10.0, 8.0, 6.0, 8.0, 10.0};
  const auto report = CheckFeasibility(w, model, lat);
  EXPECT_TRUE(report.feasible);
  EXPECT_DOUBLE_EQ(report.max_resource_excess, 0.0);
  EXPECT_EQ(report.resource_share_sums.size(), 3u);
  EXPECT_EQ(report.critical_paths.size(), 2u);
}

TEST(EvaluationTest, ToleranceAllowsBoundarySlack) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  // chain at exactly 30.02 with C=30: 0.1% tolerance admits it, 0.01% not.
  const Assignment lat = {20.0, 10.02, 4.0, 6.0, 8.0};
  EXPECT_TRUE(CheckFeasibility(w, model, lat, 1e-3).feasible);
  EXPECT_FALSE(CheckFeasibility(w, model, lat, 1e-5).feasible);
}

}  // namespace
}  // namespace lla
