#include "model/share.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lla {
namespace {

TEST(WcetLagShareTest, PaperEquation10) {
  // share = (c + l) / lat with c = 5, l = 5 (the prototype's parameters).
  WcetLagShare share(5.0, 5.0);
  EXPECT_DOUBLE_EQ(share.work_ms(), 10.0);
  EXPECT_DOUBLE_EQ(share.Share(50.0), 0.2);
  EXPECT_DOUBLE_EQ(share.LatencyForShare(0.2), 50.0);
  EXPECT_DOUBLE_EQ(share.DShareDLat(10.0), -0.1);
}

TEST(WcetLagShareTest, InverseRoundTrips) {
  WcetLagShare share(3.0, 1.0);
  for (double lat : {0.5, 1.0, 4.0, 40.0, 400.0}) {
    EXPECT_NEAR(share.LatencyForShare(share.Share(lat)), lat, 1e-12);
  }
}

TEST(WcetLagShareTest, PassesPropertyCheck) {
  WcetLagShare share(2.0, 1.0);
  EXPECT_TRUE(CheckShareFunction(share, 0.1, 100.0));
}

TEST(WcetLagShareTest, NegSlopeClosedForm) {
  WcetLagShare share(5.0, 1.0);  // work = 6
  // -share'(lat) = 6/lat^2 = 1.5 => lat = 2.
  EXPECT_DOUBLE_EQ(share.LatencyForNegSlope(1.5, 0.1, 100.0), 2.0);
  // Clamping.
  EXPECT_DOUBLE_EQ(share.LatencyForNegSlope(1.5, 3.0, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(share.LatencyForNegSlope(1.5, 0.1, 1.0), 1.0);
  // g = 0 (no pressure): largest latency.
  EXPECT_DOUBLE_EQ(share.LatencyForNegSlope(0.0, 0.1, 100.0), 100.0);
}

TEST(WcetLagShareTest, NegSlopeMatchesGenericBisection) {
  WcetLagShare share(4.0, 2.0);
  // Route through the base-class implementation.
  const ShareFunction& base = share;
  for (double g : {0.001, 0.1, 1.0, 10.0}) {
    const double closed = share.LatencyForNegSlope(g, 1e-3, 1e4);
    const double generic = base.ShareFunction::LatencyForNegSlope(g, 1e-3, 1e4);
    EXPECT_NEAR(closed, generic, 1e-6 * closed) << "g=" << g;
  }
}

TEST(CorrectedWcetLagShareTest, NegativeErrorShiftsLatencyDown) {
  // Uncorrected predicts 10/sigma; correction discovers actual latency is
  // ~15 ms lower (the paper's unsynchronized-release effect).
  CorrectedWcetLagShare corrected(5.0, 5.0, -15.0);
  // For latency 35: share = 10 / (35 + 15) = 0.2.
  EXPECT_DOUBLE_EQ(corrected.Share(35.0), 0.2);
  EXPECT_DOUBLE_EQ(corrected.LatencyForShare(0.2), 35.0);
}

TEST(CorrectedWcetLagShareTest, ZeroErrorMatchesUncorrected) {
  WcetLagShare plain(5.0, 2.0);
  CorrectedWcetLagShare corrected(5.0, 2.0, 0.0);
  for (double lat : {1.0, 5.0, 50.0}) {
    EXPECT_DOUBLE_EQ(corrected.Share(lat), plain.Share(lat));
    EXPECT_DOUBLE_EQ(corrected.DShareDLat(lat), plain.DShareDLat(lat));
  }
}

TEST(CorrectedWcetLagShareTest, PositiveErrorRaisesMinLatency) {
  CorrectedWcetLagShare corrected(5.0, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(corrected.MinLatency(), 3.0);
  EXPECT_GT(corrected.Share(3.5), 0.0);
}

TEST(CorrectedWcetLagShareTest, PassesPropertyCheck) {
  CorrectedWcetLagShare negative(5.0, 1.0, -4.0);
  EXPECT_TRUE(CheckShareFunction(negative, 0.5, 100.0));
  CorrectedWcetLagShare positive(5.0, 1.0, 2.0);
  EXPECT_TRUE(CheckShareFunction(positive, 2.5, 100.0));
}

TEST(CorrectedWcetLagShareTest, NegSlopeClosedForm) {
  CorrectedWcetLagShare corrected(5.0, 1.0, -2.0);  // work 6, e = -2
  // -share' = 6/(lat+2)^2 = 1.5 => lat = 0 -> clamped at lo.
  EXPECT_DOUBLE_EQ(corrected.LatencyForNegSlope(1.5, 0.5, 100.0), 0.5);
  // 6/(lat+2)^2 = 0.06 => lat + 2 = 10 => lat = 8.
  EXPECT_NEAR(corrected.LatencyForNegSlope(0.06, 0.5, 100.0), 8.0, 1e-12);
}

// Parameterized inversion property across the (wcet, lag, error) space.
struct ShareParams {
  double wcet;
  double lag;
  double error;
};

class CorrectedShareProperty
    : public ::testing::TestWithParam<ShareParams> {};

TEST_P(CorrectedShareProperty, ShareAndInverseAgree) {
  const auto& p = GetParam();
  CorrectedWcetLagShare share(p.wcet, p.lag, p.error);
  const double lo = share.MinLatency() + 0.5;
  for (double lat = lo; lat < lo + 200.0; lat += 7.3) {
    const double s = share.Share(lat);
    EXPECT_GT(s, 0.0);
    EXPECT_NEAR(share.LatencyForShare(s), lat, 1e-9 * lat);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, CorrectedShareProperty,
    ::testing::Values(ShareParams{1.0, 0.0, 0.0}, ShareParams{5.0, 5.0, -15.0},
                      ShareParams{13.0, 5.0, -20.0}, ShareParams{2.0, 1.0, 3.0},
                      ShareParams{8.0, 0.5, -0.25}));

}  // namespace
}  // namespace lla
