#include "model/utility.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace lla {
namespace {

TEST(LinearUtilityTest, ValueAndDerivative) {
  LinearUtility u(90.0, 1.0);
  EXPECT_DOUBLE_EQ(u.Value(0.0), 90.0);
  EXPECT_DOUBLE_EQ(u.Value(45.0), 45.0);
  EXPECT_DOUBLE_EQ(u.Derivative(10.0), -1.0);
  EXPECT_DOUBLE_EQ(u.Derivative(1000.0), -1.0);
}

TEST(LinearUtilityTest, PaperSimFactory) {
  // f(x) = 2C - x with C = 45.
  auto u = MakePaperSimUtility(45.0);
  EXPECT_DOUBLE_EQ(u->Value(0.0), 90.0);
  EXPECT_DOUBLE_EQ(u->Value(45.0), 45.0);
}

TEST(LinearUtilityTest, PrototypeFactoryIsNegLatency) {
  auto u = MakePrototypeUtility();
  EXPECT_DOUBLE_EQ(u->Value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(u->Value(100.0), -100.0);
}

TEST(PowerUtilityTest, QuadraticCase) {
  PowerUtility u(100.0, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(u.Value(0.0), 100.0);
  EXPECT_DOUBLE_EQ(u.Value(10.0), 50.0);
  EXPECT_DOUBLE_EQ(u.Derivative(10.0), -10.0);
}

TEST(PowerUtilityTest, ExponentOneIsLinear) {
  PowerUtility p(10.0, 2.0, 1.0);
  LinearUtility l(10.0, 2.0);
  for (double x : {0.0, 1.0, 5.5, 20.0}) {
    EXPECT_DOUBLE_EQ(p.Value(x), l.Value(x));
    EXPECT_DOUBLE_EQ(p.Derivative(x), l.Derivative(x));
  }
}

TEST(NegExpUtilityTest, ValueAndDerivative) {
  NegExpUtility u(0.0, 0.1);
  EXPECT_DOUBLE_EQ(u.Value(0.0), -10.0);  // -exp(0)/0.1
  EXPECT_DOUBLE_EQ(u.Derivative(0.0), -1.0);
  EXPECT_NEAR(u.Derivative(10.0), -std::exp(1.0), 1e-12);
}

TEST(InelasticUtilityTest, FlatThenQuadratic) {
  InelasticUtility u(50.0, 20.0, 2.0);
  EXPECT_DOUBLE_EQ(u.Value(0.0), 50.0);
  EXPECT_DOUBLE_EQ(u.Value(20.0), 50.0);
  EXPECT_DOUBLE_EQ(u.Derivative(15.0), 0.0);
  EXPECT_DOUBLE_EQ(u.Value(22.0), 50.0 - 0.5 * 2.0 * 4.0);
  EXPECT_DOUBLE_EQ(u.Derivative(22.0), -4.0);
}

TEST(InelasticUtilityTest, ContinuouslyDifferentiableAtKink) {
  InelasticUtility u(10.0, 5.0, 3.0);
  const double eps = 1e-7;
  EXPECT_NEAR(u.Value(5.0 - eps), u.Value(5.0 + eps), 1e-6);
  EXPECT_NEAR(u.Derivative(5.0 - eps), u.Derivative(5.0 + eps), 1e-5);
}

// Every provided utility must pass the concavity/monotonicity property.
TEST(ConcavityCheckTest, AllProvidedUtilitiesPass) {
  std::vector<UtilityPtr> utilities = {
      std::make_shared<LinearUtility>(90.0, 1.0),
      std::make_shared<LinearUtility>(0.0, 0.0),  // constant is allowed
      std::make_shared<PowerUtility>(10.0, 0.1, 2.0),
      std::make_shared<PowerUtility>(10.0, 0.1, 1.5),
      std::make_shared<NegExpUtility>(5.0, 0.05),
      std::make_shared<InelasticUtility>(50.0, 20.0, 2.0),
      MakePaperSimUtility(76.0),
      MakePrototypeUtility(),
  };
  for (const auto& u : utilities) {
    EXPECT_TRUE(CheckConcaveNonIncreasing(*u, 0.0, 200.0)) << u->Describe();
  }
}

// The checker must reject shapes the optimizer cannot handle.
class IncreasingUtility final : public UtilityFunction {
 public:
  double Value(double x) const override { return x; }
  double Derivative(double) const override { return 1.0; }
  std::string Describe() const override { return "increasing"; }
};

class ConvexDecreasingUtility final : public UtilityFunction {
 public:
  // exp(-x): decreasing but convex.
  double Value(double x) const override { return std::exp(-x); }
  double Derivative(double x) const override { return -std::exp(-x); }
  std::string Describe() const override { return "convex-decreasing"; }
};

TEST(ConcavityCheckTest, RejectsIncreasing) {
  EXPECT_FALSE(CheckConcaveNonIncreasing(IncreasingUtility{}, 0.0, 10.0));
}

TEST(ConcavityCheckTest, RejectsConvex) {
  EXPECT_FALSE(
      CheckConcaveNonIncreasing(ConvexDecreasingUtility{}, 0.0, 10.0));
}

// Property: derivative matches a central finite difference for all shapes.
class UtilityDerivativeProperty
    : public ::testing::TestWithParam<double> {};

TEST_P(UtilityDerivativeProperty, DerivativeMatchesFiniteDifference) {
  const double x = GetParam();
  std::vector<UtilityPtr> utilities = {
      std::make_shared<LinearUtility>(90.0, 1.0),
      std::make_shared<PowerUtility>(10.0, 0.1, 2.0),
      std::make_shared<PowerUtility>(10.0, 0.3, 1.7),
      std::make_shared<NegExpUtility>(5.0, 0.05),
      std::make_shared<InelasticUtility>(50.0, 20.0, 2.0),
  };
  const double h = 1e-6 * (1.0 + x);
  for (const auto& u : utilities) {
    const double fd = (u->Value(x + h) - u->Value(x - h)) / (2.0 * h);
    EXPECT_NEAR(u->Derivative(x), fd, 1e-4 * (1.0 + std::fabs(fd)))
        << u->Describe() << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Points, UtilityDerivativeProperty,
                         ::testing::Values(0.5, 1.0, 7.0, 19.9, 20.1, 50.0,
                                           120.0));

}  // namespace
}  // namespace lla
