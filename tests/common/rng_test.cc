#include "common/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace lla {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.Below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformMomentsAreSane) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextDouble();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(77);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(25.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(SplitMix64Test, KnownFirstOutputsDiffer) {
  SplitMix64 a(0), b(1);
  EXPECT_NE(a.Next(), b.Next());
}

}  // namespace
}  // namespace lla
