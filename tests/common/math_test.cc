#include "common/math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lla {
namespace {

TEST(AlmostEqualTest, ExactAndNearValues) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(0.0, 0.0));
  EXPECT_TRUE(AlmostEqual(1e-15, -1e-15));  // abs tolerance near zero
  EXPECT_FALSE(AlmostEqual(1.0, -1.0));
}

TEST(AlmostEqualTest, RelativeToleranceScalesWithMagnitude) {
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 + 1.0, 1e-9));
  EXPECT_FALSE(AlmostEqual(1e12, 1e12 + 1e5, 1e-9));
}

TEST(ClampTest, Basics) {
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(3.0, 3.0, 3.0), 3.0);
}

TEST(BisectTest, FindsRootOfMonotoneFunction) {
  const auto f = [](double x) { return x * x - 2.0; };
  const auto result = Bisect(f, 0.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, std::sqrt(2.0), 1e-9);
}

TEST(BisectTest, AcceptsRootAtEndpoint) {
  const auto f = [](double x) { return x - 1.0; };
  const auto at_lo = Bisect(f, 1.0, 2.0);
  EXPECT_TRUE(at_lo.converged);
  EXPECT_DOUBLE_EQ(at_lo.root, 1.0);
  const auto at_hi = Bisect(f, 0.0, 1.0);
  EXPECT_TRUE(at_hi.converged);
  EXPECT_DOUBLE_EQ(at_hi.root, 1.0);
}

TEST(BisectTest, ReportsFailureWithoutSignChange) {
  const auto f = [](double x) { return x * x + 1.0; };
  const auto result = Bisect(f, -1.0, 1.0);
  EXPECT_FALSE(result.converged);
}

TEST(SafeguardedNewtonTest, ConvergesFastOnSmoothFunction) {
  const auto f = [](double x) { return x * x * x - 8.0; };
  const auto df = [](double x) { return 3.0 * x * x; };
  const auto result = SafeguardedNewton(f, df, 0.0, 10.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, 2.0, 1e-9);
  EXPECT_LT(result.iterations, 30);
}

TEST(SafeguardedNewtonTest, SurvivesZeroDerivative) {
  // f'(0) = 0; the safeguard must bisect through it.
  const auto f = [](double x) { return x * x * x - 1.0; };
  const auto df = [](double x) { return 3.0 * x * x; };
  const auto result = SafeguardedNewton(f, df, -1.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, 1.0, 1e-9);
}

TEST(SafeguardedNewtonTest, KeepsIterateInsideBracket) {
  // Steep function whose Newton step from the midpoint escapes the bracket.
  const auto f = [](double x) { return std::tanh(10.0 * (x - 0.9)); };
  const auto df = [](double x) {
    const double t = std::tanh(10.0 * (x - 0.9));
    return 10.0 * (1.0 - t * t);
  };
  const auto result = SafeguardedNewton(f, df, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, 0.9, 1e-8);
}

TEST(GoldenSectionMaxTest, FindsMaximumOfConcaveFunction) {
  const auto f = [](double x) { return -(x - 3.0) * (x - 3.0); };
  EXPECT_NEAR(GoldenSectionMax(f, 0.0, 10.0), 3.0, 1e-7);
}

TEST(GoldenSectionMaxTest, HandlesBoundaryMaximum) {
  const auto f = [](double x) { return -x; };
  EXPECT_NEAR(GoldenSectionMax(f, 2.0, 5.0), 2.0, 1e-6);
}

// Property sweep: Bisect and SafeguardedNewton agree on a family of
// monotone functions of the shape the latency solver inverts
// (work/lat^2 - g).
class RootFinderAgreement : public ::testing::TestWithParam<double> {};

TEST_P(RootFinderAgreement, NewtonMatchesBisection) {
  const double g = GetParam();
  const double work = 6.0;
  const auto f = [&](double lat) { return work / (lat * lat) - g; };
  const auto df = [&](double lat) { return -2.0 * work / (lat * lat * lat); };
  const auto newton = SafeguardedNewton(f, df, 1e-3, 1e4);
  const auto bisect = Bisect(f, 1e-3, 1e4);
  ASSERT_TRUE(newton.converged);
  ASSERT_TRUE(bisect.converged);
  EXPECT_NEAR(newton.root, std::sqrt(work / g), 1e-6 * newton.root);
  EXPECT_NEAR(newton.root, bisect.root, 1e-5 * newton.root);
}

INSTANTIATE_TEST_SUITE_P(SlopeTargets, RootFinderAgreement,
                         ::testing::Values(1e-4, 1e-2, 0.5, 1.0, 7.3, 123.0,
                                           4096.0));

}  // namespace
}  // namespace lla
