#include "common/expected.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lla {
namespace {

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e = 42;
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
}

TEST(ExpectedTest, HoldsError) {
  auto e = Expected<int>::Error("boom");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.error(), "boom");
}

TEST(ExpectedTest, MoveOutValue) {
  Expected<std::vector<int>> e = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(e).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ExpectedTest, MutableAccess) {
  Expected<std::string> e = std::string("a");
  e.value() += "b";
  EXPECT_EQ(e.value(), "ab");
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::Error("bad");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error(), "bad");
}

}  // namespace
}  // namespace lla
