#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lla {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {3.0, -1.5, 7.25, 0.0, 2.5, 2.5, -8.0};
  RunningStats stats;
  for (double x : xs) stats.Add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size() - 1;  // sample variance, matching RunningStats

  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -8.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.25);
}

TEST(RunningStatsTest, UsesSampleVarianceNotPopulation) {
  // Two points where the estimators differ by a factor of two: the sample
  // variance of {0, 2} is 2 (divide by n-1 = 1); the population variance
  // would be 1.  Guards against a regression back to the biased estimator.
  RunningStats stats;
  stats.Add(0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);  // undefined below 2 samples
  stats.Add(2.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 2.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), std::sqrt(2.0));
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats stats;
  stats.Add(5.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0u);
  stats.Add(1.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 1.0);
}

TEST(SampleQuantileTest, ExactOrderStatistics) {
  SampleQuantile q;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) q.Add(x);
  EXPECT_DOUBLE_EQ(q.Value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Value(0.5), 3.0);
  EXPECT_DOUBLE_EQ(q.Value(1.0), 5.0);
  EXPECT_DOUBLE_EQ(q.Value(0.25), 2.0);
  // Interpolation between order statistics.
  EXPECT_DOUBLE_EQ(q.Value(0.125), 1.5);
}

TEST(SampleQuantileTest, EmptyReturnsZero) {
  SampleQuantile q;
  EXPECT_DOUBLE_EQ(q.Value(0.5), 0.0);
}

TEST(P2QuantileTest, ExactForFewSamples) {
  P2Quantile q(0.5);
  q.Add(10.0);
  EXPECT_DOUBLE_EQ(q.Value(), 10.0);
  q.Add(20.0);
  EXPECT_DOUBLE_EQ(q.Value(), 15.0);
  q.Add(30.0);
  EXPECT_DOUBLE_EQ(q.Value(), 20.0);
}

class P2QuantileAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2QuantileAccuracy, TracksExactQuantileOnUniformData) {
  const double target = GetParam();
  Rng rng(42);
  P2Quantile p2(target);
  SampleQuantile exact;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform(0.0, 100.0);
    p2.Add(x);
    exact.Add(x);
  }
  EXPECT_NEAR(p2.Value(), exact.Value(target), 1.5)
      << "quantile " << target;
}

TEST_P(P2QuantileAccuracy, TracksExactQuantileOnExponentialData) {
  const double target = GetParam();
  Rng rng(7);
  P2Quantile p2(target);
  SampleQuantile exact;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Exponential(10.0);
    p2.Add(x);
    exact.Add(x);
  }
  const double reference = exact.Value(target);
  EXPECT_NEAR(p2.Value(), reference, 0.08 * reference + 0.5)
      << "quantile " << target;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2QuantileAccuracy,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.95,
                                           0.99));

TEST(ExponentialSmootherTest, FirstSampleInitializes) {
  ExponentialSmoother s(0.3);
  EXPECT_FALSE(s.initialized());
  EXPECT_DOUBLE_EQ(s.Add(10.0), 10.0);
  EXPECT_TRUE(s.initialized());
}

TEST(ExponentialSmootherTest, SmoothsTowardNewValues) {
  ExponentialSmoother s(0.5);
  s.Add(0.0);
  EXPECT_DOUBLE_EQ(s.Add(10.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Add(10.0), 7.5);
  EXPECT_DOUBLE_EQ(s.Add(10.0), 8.75);
}

TEST(ExponentialSmootherTest, AlphaOneTracksInput) {
  ExponentialSmoother s(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Add(-7.0), -7.0);
}

TEST(ExponentialSmootherTest, ConvergesToConstantInput) {
  ExponentialSmoother s(0.2);
  s.Add(100.0);
  for (int i = 0; i < 200; ++i) s.Add(4.0);
  EXPECT_NEAR(s.value(), 4.0, 1e-9);
}

TEST(ExponentialSmootherTest, ResetForgetsHistory) {
  ExponentialSmoother s(0.2);
  s.Add(100.0);
  s.Reset();
  EXPECT_FALSE(s.initialized());
  EXPECT_DOUBLE_EQ(s.Add(1.0), 1.0);
}

}  // namespace
}  // namespace lla
