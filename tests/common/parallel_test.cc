// ThreadPool / ChunkRange: the static partitioning must cover [0, n) with
// disjoint contiguous chunks for any (n, threads), the pool must run every
// index exactly once per ParallelFor, and the pool must be reusable — these
// are the properties the engine's bit-identical parallelism rests on.
//
// The pool clamps its worker count to hardware concurrency by default, so
// tests that need real threads pass ParallelConfig{max_concurrency = N}
// (and min_items_per_thread = 1 where the sweep is small) to force the
// requested width regardless of the host.
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

#if defined(__SANITIZE_THREAD__)
#define LLA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LLA_TSAN 1
#endif
#endif

namespace lla {
namespace {

// Forces a pool of exactly `threads` workers with a grain of one item, so
// parallel paths are exercised even on single-core CI hosts.
ParallelConfig Force(int threads) {
  ParallelConfig config;
  config.min_items_per_thread = 1;
  config.max_concurrency = threads;
  return config;
}

TEST(ChunkRangeTest, CoversRangeDisjointly) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{7}, std::size_t{64}, std::size_t{101}}) {
    for (int chunks : {1, 2, 3, 4, 8, 16}) {
      std::size_t expected_begin = 0;
      for (int index = 0; index < chunks; ++index) {
        const auto [begin, end] = ChunkRange(n, chunks, index);
        EXPECT_EQ(begin, expected_begin)
            << "n=" << n << " chunks=" << chunks << " index=" << index;
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n) << "n=" << n << " chunks=" << chunks;
    }
  }
}

TEST(ChunkRangeTest, ChunkSizesDifferByAtMostOne) {
  const std::size_t n = 103;
  const int chunks = 8;
  std::size_t min_size = n, max_size = 0;
  for (int index = 0; index < chunks; ++index) {
    const auto [begin, end] = ChunkRange(n, chunks, index);
    min_size = std::min(min_size, end - begin);
    max_size = std::max(max_size, end - begin);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4, Force(4));
  EXPECT_EQ(pool.size(), 4);
  const std::size_t n = 1000;
  std::vector<int> hits(n, 0);
  pool.ParallelFor(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "i=" << i;
}

TEST(ThreadPoolTest, ClampsToHardwareConcurrencyByDefault) {
  const int hardware = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  ThreadPool pool(4096);
  EXPECT_LE(pool.size(), hardware);
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3, Force(3));
  std::vector<double> out(64, 0.0);
  for (int round = 1; round <= 50; ++round) {
    pool.ParallelFor(out.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(round) * static_cast<double>(i);
      }
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], static_cast<double>(round) * static_cast<double>(i));
    }
  }
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8, Force(8));
  std::vector<int> hits(3, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4, Force(4));
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// Grain cutoff: participant count is a pure function of (n, min_items,
// pool size) — never of load, timing, or hardware state — so chunk
// boundaries (and therefore the set of per-chunk partial results) are
// deterministic.
TEST(ThreadPoolTest, ParticipantsForHonorsGrainCutoff) {
  ThreadPool pool(4, Force(4));
  EXPECT_EQ(pool.ParticipantsFor(0, 32), 1);
  EXPECT_EQ(pool.ParticipantsFor(31, 32), 1);
  EXPECT_EQ(pool.ParticipantsFor(32, 32), 1);
  EXPECT_EQ(pool.ParticipantsFor(64, 32), 2);
  EXPECT_EQ(pool.ParticipantsFor(96, 32), 3);
  EXPECT_EQ(pool.ParticipantsFor(128, 32), 4);
  EXPECT_EQ(pool.ParticipantsFor(100000, 32), 4);  // clamped to pool size
  EXPECT_EQ(pool.ParticipantsFor(3, 1), 3);
  // min_items <= 0 is sanitized to 1.
  EXPECT_EQ(pool.ParticipantsFor(2, 0), 2);
}

TEST(ThreadPoolTest, BelowGrainCutoffRunsSerially) {
  ParallelConfig config;
  config.min_items_per_thread = 64;
  config.max_concurrency = 4;
  ThreadPool pool(4, config);
  std::atomic<int> distinct_chunks{0};
  pool.ParallelFor(63, [&](std::size_t begin, std::size_t end) {
    distinct_chunks.fetch_add(1, std::memory_order_relaxed);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 63u);
  });
  EXPECT_EQ(distinct_chunks.load(), 1);
}

TEST(ThreadPoolTest, RunRegionRunsEveryParticipantOnce) {
  ThreadPool pool(4, Force(4));
  std::vector<int> hits(4, 0);
  pool.RunRegion(4, [&](int index, int participants) {
    EXPECT_EQ(participants, 4);
    ++hits[index];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, RunRegionWithInternalBarrier) {
  ThreadPool pool(4, Force(4));
  std::vector<int> phase1(4, 0);
  std::vector<int> sums(4, -1);
  SpinBarrier barrier(4);
  pool.RunRegion(4, [&](int index, int participants) {
    phase1[index] = index + 1;
    barrier.Wait();
    int sum = 0;
    for (int i = 0; i < participants; ++i) sum += phase1[i];
    sums[index] = sum;
  });
  // Every participant must observe every phase-1 write after the barrier.
  for (int s : sums) EXPECT_EQ(s, 1 + 2 + 3 + 4);
}

TEST(SpinBarrierTest, ReusableAcrossPhases) {
  ThreadPool pool(3, Force(3));
  SpinBarrier barrier(3);
  std::vector<int> counters(3, 0);
  pool.RunRegion(3, [&](int index, int) {
    for (int phase = 0; phase < 100; ++phase) {
      ++counters[index];
      barrier.Wait();
      // After each barrier all counters agree.
      for (int i = 0; i < 3; ++i) {
        if (counters[i] != counters[index]) {
          ADD_FAILURE() << "phase skew at phase " << phase;
        }
      }
      barrier.Wait();
    }
  });
  for (int c : counters) EXPECT_EQ(c, 100);
}

TEST(ParallelSweepTest, GrainOfOneCoversAllItems) {
  ThreadPool pool(4, Force(4));
  std::vector<int> hits(7, 0);
  ParallelSweep(&pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelSweepTest, NullPoolRunsSerialInOrder) {
  std::vector<std::size_t> order;
  ParallelSweep(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(FunctionRefTest, WrapsLambdaWithoutOwnership) {
  int calls = 0;
  auto lambda = [&](std::size_t begin, std::size_t end) {
    calls += static_cast<int>(end - begin);
  };
  ParallelBody body(lambda);
  ASSERT_TRUE(static_cast<bool>(body));
  body(3, 10);
  EXPECT_EQ(calls, 7);
  ParallelBody null_body;
  EXPECT_FALSE(static_cast<bool>(null_body));
}

TEST(StaticParallelForTest, NullPoolFallsBackToOneSerialCall) {
  int calls = 0;
  std::size_t seen_begin = 99, seen_end = 0;
  StaticParallelFor(nullptr, 17, [&](std::size_t begin, std::size_t end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 0u);
  EXPECT_EQ(seen_end, 17u);
}

TEST(StaticParallelForTest, NullPoolEmptyRangeSkipsBody) {
  int calls = 0;
  StaticParallelFor(nullptr, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// Stress: many rounds of concurrent disjoint writes plus an atomic counter;
// under TSan this is the race detector's main target for the pool.
TEST(ThreadPoolTest, ConcurrentWriteStress) {
  ThreadPool pool(4, Force(4));
  const std::size_t n = 4096;
  std::vector<std::size_t> out(n, 0);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(n, [&](std::size_t begin, std::size_t end) {
      std::size_t local = 0;
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = i + static_cast<std::size_t>(round);
        local += 1;
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), n * 200);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i + 199);
}

// Stress across the awkward sizes: n = 0, n < threads, n straddling the
// grain cutoff, back to back with no settling time — the doorbell/park
// protocol must hand out every index exactly once every round.
TEST(ThreadPoolTest, VaryingSizeStress) {
  ThreadPool pool(8, Force(8));
  const std::size_t sizes[] = {0, 1, 2, 3, 7, 8, 9, 63, 64, 65, 1024, 0, 5};
  std::vector<std::atomic<int>> hits(1024);
  for (int round = 0; round < 300; ++round) {
    for (const std::size_t n : sizes) {
      for (std::size_t i = 0; i < n; ++i) {
        hits[i].store(0, std::memory_order_relaxed);
      }
      pool.ParallelFor(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1)
            << "round=" << round << " n=" << n << " i=" << i;
      }
    }
  }
}

// Pools constructed, dispatched through, and torn down in a tight loop:
// exercises worker startup racing the first doorbell and destruction
// racing the last park.
TEST(ThreadPoolTest, ConstructionTeardownUnderLoad) {
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(4, Force(4));
    std::atomic<int> sum{0};
    pool.ParallelFor(97, [&](std::size_t begin, std::size_t end) {
      sum.fetch_add(static_cast<int>(end - begin),
                    std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 97);
    // Destructor runs immediately after the dispatch returns.
  }
  // Teardown with no dispatch at all (workers park and must still exit).
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(4, Force(4));
  }
}

#if !defined(LLA_TSAN) && defined(GTEST_HAS_DEATH_TEST)
// The reentrancy check is a release-mode abort, not a debug assert: a
// nested dispatch would deadlock or corrupt the shared job descriptor, so
// the pool refuses loudly.  (Excluded from the TSan copy: death tests fork,
// which TSan does not support reliably.)
TEST(ThreadPoolDeathTest, NestedDispatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool pool(2, Force(2));
  EXPECT_DEATH(
      pool.ParallelFor(64,
                       [&](std::size_t, std::size_t) {
                         pool.ParallelFor(
                             64, [](std::size_t, std::size_t) {});
                       }),
      "not reentrant");
}
#endif

}  // namespace
}  // namespace lla
