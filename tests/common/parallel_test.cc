// ThreadPool / ChunkRange: the static partitioning must cover [0, n) with
// disjoint contiguous chunks for any (n, threads), the pool must run every
// index exactly once per ParallelFor, and the pool must be reusable — these
// are the properties the engine's bit-identical parallelism rests on.
#include <atomic>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace lla {
namespace {

TEST(ChunkRangeTest, CoversRangeDisjointly) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{7}, std::size_t{64}, std::size_t{101}}) {
    for (int chunks : {1, 2, 3, 4, 8, 16}) {
      std::size_t expected_begin = 0;
      for (int index = 0; index < chunks; ++index) {
        const auto [begin, end] = ChunkRange(n, chunks, index);
        EXPECT_EQ(begin, expected_begin)
            << "n=" << n << " chunks=" << chunks << " index=" << index;
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n) << "n=" << n << " chunks=" << chunks;
    }
  }
}

TEST(ChunkRangeTest, ChunkSizesDifferByAtMostOne) {
  const std::size_t n = 103;
  const int chunks = 8;
  std::size_t min_size = n, max_size = 0;
  for (int index = 0; index < chunks; ++index) {
    const auto [begin, end] = ChunkRange(n, chunks, index);
    min_size = std::min(min_size, end - begin);
    max_size = std::max(max_size, end - begin);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  const std::size_t n = 1000;
  std::vector<int> hits(n, 0);
  pool.ParallelFor(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "i=" << i;
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::vector<double> out(64, 0.0);
  for (int round = 1; round <= 50; ++round) {
    pool.ParallelFor(out.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(round) * static_cast<double>(i);
      }
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], static_cast<double>(round) * static_cast<double>(i));
    }
  }
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<int> hits(3, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(StaticParallelForTest, NullPoolFallsBackToOneSerialCall) {
  int calls = 0;
  std::size_t seen_begin = 99, seen_end = 0;
  StaticParallelFor(nullptr, 17, [&](std::size_t begin, std::size_t end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 0u);
  EXPECT_EQ(seen_end, 17u);
}

TEST(StaticParallelForTest, NullPoolEmptyRangeSkipsBody) {
  int calls = 0;
  StaticParallelFor(nullptr, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// Stress: many rounds of concurrent disjoint writes plus an atomic counter;
// under TSan this is the race detector's main target for the pool.
TEST(ThreadPoolTest, ConcurrentWriteStress) {
  ThreadPool pool(4);
  const std::size_t n = 4096;
  std::vector<std::size_t> out(n, 0);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(n, [&](std::size_t begin, std::size_t end) {
      std::size_t local = 0;
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = i + static_cast<std::size_t>(round);
        local += 1;
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), n * 200);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i + 199);
}

}  // namespace
}  // namespace lla
