// Properties of the incremental active-set stepping mode (DESIGN.md §7.6).
//
// 1. EXACTNESS: with epsilon_quiescence == 0 (the default), the active-set
//    engine's trajectory — latencies AND dual prices at every iteration —
//    is bit-identical (memcmp, tolerance 0) to the dense engine's, at every
//    thread count.  Dirty tracking must only ever skip recomputation of
//    values proven bitwise-unchanged.
// 2. BOUNDED APPROXIMATION: with epsilon_quiescence > 0, published prices
//    track the shadow dual trajectory with per-component relative error
//    <= epsilon, and the final objective lands within a measured-constant
//    multiple of epsilon (relative) of the dense optimum.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla {
namespace {

struct Trajectory {
  std::vector<Assignment> latencies;
  std::vector<PriceVector> prices;
};

LlaConfig BaseConfig(int num_threads, bool active) {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.record_history = false;
  config.num_threads = num_threads;
  // Force the requested width even on single-core hosts so the parallel
  // dirty-task solve path (not just the serial fallback) is what we pin.
  config.parallel.max_concurrency = num_threads;
  config.parallel.min_items_per_thread = 1;
  config.active_set.enabled = active;
  return config;
}

Trajectory RunEngine(const Workload& workload, const LatencyModel& model,
                     const LlaConfig& config, int steps) {
  LlaEngine engine(workload, model, config);
  Trajectory trajectory;
  for (int i = 0; i < steps; ++i) {
    engine.Step();
    trajectory.latencies.push_back(engine.latencies());
    trajectory.prices.push_back(engine.prices());
  }
  return trajectory;
}

void ExpectBitIdentical(const Trajectory& expected, const Trajectory& actual,
                        const char* label) {
  ASSERT_EQ(expected.latencies.size(), actual.latencies.size()) << label;
  for (std::size_t step = 0; step < expected.latencies.size(); ++step) {
    const Assignment& a = expected.latencies[step];
    const Assignment& b = actual.latencies[step];
    ASSERT_EQ(a.size(), b.size());
    // memcmp: bit-identity with tolerance 0 — distinguishes -0.0 and would
    // catch any stale workspace entry an incorrect skip left behind.
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << label << " latencies diverge at step " << step;
    const PriceVector& pa = expected.prices[step];
    const PriceVector& pb = actual.prices[step];
    ASSERT_EQ(std::memcmp(pa.mu.data(), pb.mu.data(),
                          pa.mu.size() * sizeof(double)),
              0)
        << label << " mu diverges at step " << step;
    ASSERT_EQ(std::memcmp(pa.lambda.data(), pb.lambda.data(),
                          pa.lambda.size() * sizeof(double)),
              0)
        << label << " lambda diverges at step " << step;
  }
}

void CheckDenseActiveIdentical(const Workload& workload, int steps) {
  LatencyModel model(workload);
  const Trajectory dense =
      RunEngine(workload, model, BaseConfig(1, /*active=*/false), steps);
  for (const int num_threads : {1, 2, 8}) {
    const Trajectory active = RunEngine(
        workload, model, BaseConfig(num_threads, /*active=*/true), steps);
    char label[64];
    std::snprintf(label, sizeof(label), "active threads=%d", num_threads);
    ExpectBitIdentical(dense, active, label);
  }
}

TEST(ActiveSetPropertyTest, Fig6WorkloadBitIdenticalToDense) {
  auto workload = MakeScaledSimWorkload(4, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  CheckDenseActiveIdentical(workload.value(), 120);
}

TEST(ActiveSetPropertyTest, RandomWorkloadsBitIdenticalToDense) {
  for (const unsigned seed : {11u, 42u, 77u}) {
    RandomWorkloadConfig config;
    config.seed = seed;
    config.num_resources = 8;
    config.num_tasks = 24;
    config.min_subtasks = 2;
    config.max_subtasks = 6;
    config.target_utilization = 0.7;
    auto workload = MakeRandomWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.error();
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    CheckDenseActiveIdentical(workload.value(), 120);
  }
}

// WarmStart must prime the active-set baseline exactly like Reset: two
// engines, one stepped from Reset and one WarmStarted with the same initial
// prices, walk bit-identical trajectories.
TEST(ActiveSetPropertyTest, WarmStartPrimesSameTrajectory) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  const LlaConfig config = BaseConfig(2, /*active=*/true);

  LlaEngine reference(w, model, config);
  LlaEngine warmed(w, model, config);
  warmed.WarmStart(reference.prices());
  for (int i = 0; i < 80; ++i) {
    reference.Step();
    warmed.Step();
    const Assignment& a = reference.latencies();
    const Assignment& b = warmed.latencies();
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << "step " << i;
  }
}

// --- epsilon_quiescence: the documented O(epsilon) objective bound.
//
// The measured constant: across the paper workload and random workloads the
// relative objective gap stays below kBoundConstant * epsilon (observed
// worst case ~21x on the paper workload at eps=1e-4; see DESIGN.md §7.6).
constexpr double kBoundConstant = 40.0;

LlaConfig ConvergingConfig(double epsilon) {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  config.active_set.epsilon_quiescence = epsilon;
  return config;
}

void CheckEpsilonBound(const Workload& workload, double epsilon) {
  LatencyModel model(workload);
  LlaEngine dense(workload, model, ConvergingConfig(0.0));
  const RunResult dense_run = dense.Run(12000);
  ASSERT_TRUE(dense_run.converged);

  LlaEngine frozen(workload, model, ConvergingConfig(epsilon));
  const RunResult frozen_run = frozen.Run(12000);
  const double gap =
      std::fabs(frozen_run.final_utility - dense_run.final_utility);
  const double rel =
      gap / std::max(1.0, std::fabs(dense_run.final_utility));
  EXPECT_LE(rel, kBoundConstant * epsilon)
      << "dense " << dense_run.final_utility << " vs frozen "
      << frozen_run.final_utility << " at epsilon " << epsilon;
}

TEST(ActiveSetPropertyTest, EpsilonQuiescenceBoundPaperWorkload) {
  auto workload = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  CheckEpsilonBound(workload.value(), 1e-3);
  CheckEpsilonBound(workload.value(), 1e-4);
}

TEST(ActiveSetPropertyTest, EpsilonQuiescenceBoundRandomWorkloads) {
  for (const unsigned seed : {42u, 44u, 46u}) {
    RandomWorkloadConfig config;
    config.seed = seed;
    config.target_utilization = 0.7;
    auto workload = MakeRandomWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.error();
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    CheckEpsilonBound(workload.value(), 1e-3);
  }
}

}  // namespace
}  // namespace lla
