// Property suite for the parallel sharded round (DESIGN.md §7.11): the
// deferred-commit delivery must leave the coordinator in a BIT-IDENTICAL
// state to single-threaded delivery at any thread count.  We check this by
// memcmp-ing the raw double words of the dual prices and the enacted
// assignment — not EXPECT_NEAR; the determinism argument promises exact
// equality, so any ulp of drift is a bug in lane partitioning or outbox
// commit order.
//
// The sweep crosses thread counts {1, 2, 8} with both local-solver gather
// modes (dense lambda gather vs the active-set compaction), since the two
// paths exercise different per-lane scratch shapes.
#include <cstring>

#include <gtest/gtest.h>

#include "runtime/coordinator.h"
#include "workloads/random.h"

namespace lla::runtime {
namespace {

struct RoundOutcome {
  PriceVector prices;
  Assignment assignment;
  double utility = 0.0;
};

bool SameDoubles(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

class ParallelRoundEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  RoundOutcome RunSharded(const Workload& w, const LatencyModel& model,
                          int round_threads, bool compact_gather,
                          DynamicsKind dynamics = DynamicsKind::kPlain) {
    CoordinatorConfig config;
    config.step.gamma0 = 3.0;
    config.bus.base_delay_ms = 0.0;
    config.solver.compact_lambda_gather = compact_gather;
    config.record_history = false;
    config.num_shards = 4;
    config.round_threads = round_threads;
    config.dynamics.kind = dynamics;
    config.dynamics.momentum = 0.7;
    Coordinator coordinator(w, model, config);
    for (int round = 0; round < 60; ++round) coordinator.RunSyncRound();
    RoundOutcome outcome;
    outcome.prices = coordinator.CurrentPrices();
    outcome.assignment = coordinator.CurrentAssignment();
    outcome.utility = coordinator.CurrentUtility();
    return outcome;
  }
};

TEST_P(ParallelRoundEquivalence, ShardedRoundsBitIdenticalAcrossThreads) {
  RandomWorkloadConfig workload_config;
  workload_config.seed = GetParam();
  workload_config.num_resources = 16;
  workload_config.num_tasks = 12;
  workload_config.min_subtasks = 4;
  workload_config.max_subtasks = 9;
  workload_config.target_utilization = 0.75;
  auto workload = MakeRandomWorkload(workload_config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  for (const bool compact_gather : {false, true}) {
    SCOPED_TRACE(compact_gather ? "active-set gather" : "dense gather");
    const RoundOutcome serial = RunSharded(w, model, 1, compact_gather);
    for (const int threads : {2, 8}) {
      SCOPED_TRACE("round_threads=" + std::to_string(threads));
      const RoundOutcome parallel = RunSharded(w, model, threads,
                                               compact_gather);
      EXPECT_TRUE(SameDoubles(serial.prices.mu, parallel.prices.mu));
      EXPECT_TRUE(SameDoubles(serial.prices.lambda, parallel.prices.lambda));
      EXPECT_TRUE(SameDoubles(serial.assignment, parallel.assignment));
      EXPECT_EQ(0, std::memcmp(&serial.utility, &parallel.utility,
                               sizeof(double)));
    }
  }
}

TEST_P(ParallelRoundEquivalence, OversubscribedThreadsStillBitIdentical) {
  // More lanes than shards: lanes beyond the shard count must stay idle
  // without perturbing the commit order.
  RandomWorkloadConfig workload_config;
  workload_config.seed = GetParam() * 17 + 3;
  workload_config.num_resources = 8;
  workload_config.num_tasks = 6;
  workload_config.target_utilization = 0.75;
  auto workload = MakeRandomWorkload(workload_config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  const RoundOutcome serial = RunSharded(w, model, 1, false);
  const RoundOutcome wide = RunSharded(w, model, 8, false);
  EXPECT_TRUE(SameDoubles(serial.prices.mu, wide.prices.mu));
  EXPECT_TRUE(SameDoubles(serial.prices.lambda, wide.prices.lambda));
  EXPECT_TRUE(SameDoubles(serial.assignment, wide.assignment));
}

TEST_P(ParallelRoundEquivalence, MomentumRoundsBitIdenticalAcrossThreads) {
  // The accelerated mu dynamics (DESIGN.md §7.12) add per-resource velocity
  // / base / phase slots to the shard agents.  They are updated only inside
  // ComputePricesAndBroadcast — per-resource-local, shards disjoint across
  // lanes — so the parallel round's fixed point must stay bit-identical at
  // any thread count, exactly like the plain update.
  RandomWorkloadConfig workload_config;
  workload_config.seed = GetParam();
  workload_config.num_resources = 16;
  workload_config.num_tasks = 12;
  workload_config.min_subtasks = 4;
  workload_config.max_subtasks = 9;
  workload_config.target_utilization = 0.75;
  auto workload = MakeRandomWorkload(workload_config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  for (const DynamicsKind dynamics :
       {DynamicsKind::kHeavyBall, DynamicsKind::kNesterov}) {
    SCOPED_TRACE(ToString(dynamics));
    const RoundOutcome serial = RunSharded(w, model, 1, false, dynamics);
    const RoundOutcome parallel = RunSharded(w, model, 8, false, dynamics);
    EXPECT_TRUE(SameDoubles(serial.prices.mu, parallel.prices.mu));
    EXPECT_TRUE(SameDoubles(serial.prices.lambda, parallel.prices.lambda));
    EXPECT_TRUE(SameDoubles(serial.assignment, parallel.assignment));
    EXPECT_EQ(0, std::memcmp(&serial.utility, &parallel.utility,
                             sizeof(double)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRoundEquivalence,
                         ::testing::Values(501, 502, 503));

}  // namespace
}  // namespace lla::runtime
