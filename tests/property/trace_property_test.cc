// Observability must be read-only: an attached sink or metric registry must
// leave the engine's trajectory bit-identical to an uninstrumented run, for
// serial and thread-pooled execution alike (DESIGN.md §7.4).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla {
namespace {

struct Trajectory {
  std::vector<double> latencies;
  std::vector<double> mu;
  std::vector<double> lambda;
  double utility = 0.0;
};

Trajectory RunEngine(const Workload& w, int num_threads,
                     obs::TraceSink* sink, obs::MetricRegistry* metrics,
                     int iterations) {
  LatencyModel model(w);
  LlaConfig config;
  config.gamma0 = 3.0;
  config.num_threads = num_threads;
  config.record_history = false;
  config.trace_sink = sink;
  config.metrics = metrics;
  LlaEngine engine(w, model, config);
  for (int i = 0; i < iterations; ++i) engine.Step();
  Trajectory t;
  t.latencies = engine.latencies();
  t.mu = engine.prices().mu;
  t.lambda = engine.prices().lambda;
  t.utility = engine.TotalUtilityNow();
  return t;
}

void ExpectBitIdentical(const Trajectory& a, const Trajectory& b) {
  ASSERT_EQ(a.latencies.size(), b.latencies.size());
  for (std::size_t i = 0; i < a.latencies.size(); ++i) {
    EXPECT_EQ(a.latencies[i], b.latencies[i]) << "latency " << i;
  }
  ASSERT_EQ(a.mu.size(), b.mu.size());
  for (std::size_t i = 0; i < a.mu.size(); ++i) {
    EXPECT_EQ(a.mu[i], b.mu[i]) << "mu " << i;
  }
  ASSERT_EQ(a.lambda.size(), b.lambda.size());
  for (std::size_t i = 0; i < a.lambda.size(); ++i) {
    EXPECT_EQ(a.lambda[i], b.lambda[i]) << "lambda " << i;
  }
  EXPECT_EQ(a.utility, b.utility);
}

class TraceNonInterference : public ::testing::TestWithParam<int> {};

TEST_P(TraceNonInterference, PaperWorkloadTrajectoryUnchanged) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  const int threads = GetParam();
  const int iterations = 500;

  const Trajectory plain =
      RunEngine(w, threads, nullptr, nullptr, iterations);

  obs::RingBufferTraceSink sink(64);
  obs::MetricRegistry metrics;
  const Trajectory traced =
      RunEngine(w, threads, &sink, &metrics, iterations);

  ExpectBitIdentical(plain, traced);
  EXPECT_EQ(sink.total_received(), static_cast<std::uint64_t>(iterations));
  // engine.steps, the eight engine.active.* skipped-work counters, and the
  // two engine.reprime.* structural warm-start counters.
  EXPECT_EQ(metrics.Snapshot().counters.size(), 11u);
  // The newest retained record reflects the final engine state exactly.
  const obs::IterationTrace& last = sink.at(sink.size() - 1);
  EXPECT_EQ(last.iteration, iterations);
  EXPECT_EQ(last.total_utility, plain.utility);
  for (std::size_t r = 0; r < plain.mu.size(); ++r) {
    EXPECT_EQ(last.resource_mu[r], plain.mu[r]);
  }
}

TEST_P(TraceNonInterference, RandomWorkloadTrajectoryUnchanged) {
  RandomWorkloadConfig workload_config;
  workload_config.seed = 7001;
  workload_config.target_utilization = 0.8;
  auto workload = MakeRandomWorkload(workload_config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  const int threads = GetParam();
  const int iterations = 300;

  const Trajectory plain =
      RunEngine(w, threads, nullptr, nullptr, iterations);
  obs::RingBufferTraceSink sink(16);
  obs::MetricRegistry metrics;
  const Trajectory traced =
      RunEngine(w, threads, &sink, &metrics, iterations);
  ExpectBitIdentical(plain, traced);
}

INSTANTIATE_TEST_SUITE_P(Threads, TraceNonInterference,
                         ::testing::Values(1, 8));

}  // namespace
}  // namespace lla
