// Property suite for the distributed runtime: across random workloads the
// synchronous message-passing deployment must match the single-process
// engine, and the asynchronous deployment (delays + loss) must reach the
// same optimum.
#include <cmath>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "runtime/coordinator.h"
#include "workloads/random.h"

namespace lla::runtime {
namespace {

class DistributedEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DistributedEquivalence, SyncMatchesEngine) {
  RandomWorkloadConfig workload_config;
  workload_config.seed = GetParam();
  workload_config.target_utilization = 0.75;
  auto workload = MakeRandomWorkload(workload_config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  LlaConfig engine_config;
  engine_config.step_policy = StepPolicyKind::kAdaptive;
  engine_config.gamma0 = 3.0;
  engine_config.record_history = false;
  LlaEngine engine(w, model, engine_config);
  const RunResult engine_run = engine.Run(12000);
  ASSERT_TRUE(engine_run.converged);

  CoordinatorConfig coordinator_config;
  coordinator_config.step.gamma0 = 3.0;
  coordinator_config.bus.base_delay_ms = 0.0;
  Coordinator coordinator(w, model, coordinator_config);
  const RunResult sync_run = coordinator.RunSync(12000);
  EXPECT_TRUE(sync_run.converged);
  EXPECT_NEAR(sync_run.final_utility, engine_run.final_utility,
              5e-3 * std::max(1.0, std::fabs(engine_run.final_utility)));
}

TEST_P(DistributedEquivalence, AsyncWithLossMatchesSync) {
  RandomWorkloadConfig workload_config;
  workload_config.seed = GetParam();
  workload_config.target_utilization = 0.75;
  auto workload = MakeRandomWorkload(workload_config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  CoordinatorConfig sync_config;
  sync_config.step.gamma0 = 3.0;
  sync_config.bus.base_delay_ms = 0.0;
  Coordinator sync(w, model, sync_config);
  const RunResult sync_run = sync.RunSync(12000);
  ASSERT_TRUE(sync_run.converged);

  CoordinatorConfig async_config;
  async_config.step.gamma0 = 3.0;
  async_config.bus.base_delay_ms = 1.0;
  async_config.bus.jitter_ms = 1.5;
  async_config.bus.drop_probability = 0.03;
  async_config.bus.seed = GetParam() * 31 + 7;
  Coordinator async(w, model, async_config);
  async.RunAsync(120000.0);
  EXPECT_TRUE(async.CurrentFeasibility().feasible);
  EXPECT_NEAR(async.CurrentUtility(), sync_run.final_utility,
              0.02 * std::max(1.0, std::fabs(sync_run.final_utility)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedEquivalence,
                         ::testing::Values(401, 402, 403, 404, 405));

}  // namespace
}  // namespace lla::runtime
