// Crash-restart recovery property (DESIGN.md §7.7): LlaEngine::Checkpoint
// followed by Restore into a FRESH engine resumes the dual trajectory
// bit-identically — every subsequent iteration's latencies and prices
// memcmp-equal (tolerance 0) to an uninterrupted reference run, at every
// thread count, in dense and active-set mode, and with the snapshot pushed
// through the durable text serialization (string and file round trips).
//
// This is the guarantee that makes checkpointed restart a pure fast-path:
// a restore is indistinguishable from never having crashed.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "model/serialization.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla {
namespace {

LlaConfig MakeConfig(int num_threads, bool active) {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.record_history = false;
  config.num_threads = num_threads;
  // Force the requested width even on single-core hosts so the parallel
  // solve path participates in the bit-identity claim.
  config.parallel.max_concurrency = num_threads;
  config.parallel.min_items_per_thread = 1;
  config.active_set.enabled = active;
  return config;
}

struct Trajectory {
  std::vector<Assignment> latencies;
  std::vector<PriceVector> prices;
};

Trajectory StepAndRecord(LlaEngine* engine, int steps) {
  Trajectory trajectory;
  for (int i = 0; i < steps; ++i) {
    engine->Step();
    trajectory.latencies.push_back(engine->latencies());
    trajectory.prices.push_back(engine->prices());
  }
  return trajectory;
}

void ExpectBitIdentical(const Trajectory& expected, const Trajectory& actual,
                        const char* label) {
  ASSERT_EQ(expected.latencies.size(), actual.latencies.size()) << label;
  for (std::size_t step = 0; step < expected.latencies.size(); ++step) {
    const Assignment& a = expected.latencies[step];
    const Assignment& b = actual.latencies[step];
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << label << " latencies diverge at post-restore step " << step;
    const PriceVector& pa = expected.prices[step];
    const PriceVector& pb = actual.prices[step];
    ASSERT_EQ(std::memcmp(pa.mu.data(), pb.mu.data(),
                          pa.mu.size() * sizeof(double)),
              0)
        << label << " mu diverges at post-restore step " << step;
    ASSERT_EQ(std::memcmp(pa.lambda.data(), pb.lambda.data(),
                          pa.lambda.size() * sizeof(double)),
              0)
        << label << " lambda diverges at post-restore step " << step;
  }
}

enum class RoundTrip { kInMemory, kString, kFile, kBinary };

// Runs `pre` iterations, checkpoints, runs `post` more on the original
// engine, then restores the snapshot (optionally via the serialized form)
// into a brand-new engine and verifies the continuation is bit-identical.
void CheckResume(const Workload& workload, const LlaConfig& config, int pre,
                 int post, RoundTrip round_trip, const char* label) {
  LatencyModel model(workload);
  LlaEngine reference(workload, model, config);
  for (int i = 0; i < pre; ++i) reference.Step();

  StateSnapshot snapshot = reference.Checkpoint();
  EXPECT_EQ(snapshot.iteration, pre);
  const Trajectory expected = StepAndRecord(&reference, post);

  if (round_trip == RoundTrip::kString) {
    auto text = SaveSnapshotToString(snapshot);
    ASSERT_TRUE(text.ok()) << label;
    auto loaded = LoadSnapshotFromString(text.value());
    ASSERT_TRUE(loaded.ok()) << label << ": " << loaded.error();
    snapshot = loaded.value();
  } else if (round_trip == RoundTrip::kFile) {
    const std::string path = ::testing::TempDir() + "/recovery_prop.snap";
    ASSERT_TRUE(SaveSnapshotToFile(snapshot, path).ok()) << label;
    auto loaded = LoadSnapshotFromFile(path);
    ASSERT_TRUE(loaded.ok()) << label << ": " << loaded.error();
    snapshot = loaded.value();
    std::remove(path.c_str());
  } else if (round_trip == RoundTrip::kBinary) {
    // Binary b1, deliberately loaded through the generic (magic-sniffing)
    // entry point rather than the binary-specific one.
    auto bytes = SaveSnapshotBinaryToString(snapshot);
    ASSERT_TRUE(bytes.ok()) << label;
    ASSERT_TRUE(SnapshotBytesAreBinary(bytes.value())) << label;
    auto loaded = LoadSnapshotFromString(bytes.value());
    ASSERT_TRUE(loaded.ok()) << label << ": " << loaded.error();
    snapshot = loaded.value();
  }

  LlaEngine restored(workload, model, config);
  const Status status = restored.Restore(snapshot);
  ASSERT_TRUE(status.ok()) << label << ": " << status.error();
  EXPECT_EQ(restored.iteration(), pre);
  const Trajectory actual = StepAndRecord(&restored, post);
  ExpectBitIdentical(expected, actual, label);
}

void CheckAllModes(const Workload& workload, int pre, int post) {
  for (const bool active : {false, true}) {
    for (const int num_threads : {1, 8}) {
      char label[64];
      std::snprintf(label, sizeof(label), "%s threads=%d",
                    active ? "active" : "dense", num_threads);
      CheckResume(workload, MakeConfig(num_threads, active), pre, post,
                  RoundTrip::kInMemory, label);
    }
  }
}

TEST(RecoveryPropertyTest, ResumesBitIdenticallyOnPaperWorkload) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  CheckAllModes(workload.value(), /*pre=*/60, /*post=*/80);
}

TEST(RecoveryPropertyTest, ResumesBitIdenticallyOnRandomWorkloads) {
  for (const unsigned seed : {11u, 42u}) {
    RandomWorkloadConfig config;
    config.seed = seed;
    config.num_resources = 6;
    config.num_tasks = 16;
    config.min_subtasks = 2;
    config.max_subtasks = 5;
    config.target_utilization = 0.7;
    auto workload = MakeRandomWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.error();
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    CheckAllModes(workload.value(), /*pre=*/40, /*post=*/60);
  }
}

// The durable text format must preserve the guarantee exactly: every double
// round-trips through its hex bit pattern, so a snapshot pushed through
// serialization resumes the same bitwise trajectory as the in-memory one.
TEST(RecoveryPropertyTest, SerializedSnapshotResumesBitIdentically) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  CheckResume(w, MakeConfig(1, /*active=*/false), 60, 60, RoundTrip::kString,
              "dense via string");
  CheckResume(w, MakeConfig(8, /*active=*/true), 60, 60, RoundTrip::kString,
              "active via string");
  CheckResume(w, MakeConfig(1, /*active=*/true), 60, 60, RoundTrip::kFile,
              "active via file");
}

// Same guarantee for binary b1 (DESIGN.md §7.10): the RLE/sparse encodings
// preserve exact bit patterns, so a binary round trip resumes the same
// bitwise trajectory — dense and active-set, threads 1 and 8.
TEST(RecoveryPropertyTest, BinarySnapshotResumesBitIdentically) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  for (const bool active : {false, true}) {
    for (const int num_threads : {1, 8}) {
      char label[64];
      std::snprintf(label, sizeof(label), "binary %s threads=%d",
                    active ? "active" : "dense", num_threads);
      CheckResume(w, MakeConfig(num_threads, active), 60, 60,
                  RoundTrip::kBinary, label);
    }
  }
}

// Cross-format identity: text -> binary -> text reproduces the first text
// image byte-for-byte, and binary -> text -> binary reproduces the binary
// image — neither format drops or perturbs any state the other carries.
// Covers both a dense engine (active-set sections empty) and an active-set
// engine (all 21 sections populated).
TEST(RecoveryPropertyTest, TextBinaryCrossRoundTripIsLossless) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  for (const bool active : {false, true}) {
    SCOPED_TRACE(active ? "active" : "dense");
    LlaEngine engine(w, model, MakeConfig(active ? 8 : 1, active));
    for (int i = 0; i < 60; ++i) engine.Step();
    const StateSnapshot snapshot = engine.Checkpoint();

    auto text = SaveSnapshotToString(snapshot);
    auto binary = SaveSnapshotBinaryToString(snapshot);
    ASSERT_TRUE(text.ok());
    ASSERT_TRUE(binary.ok());
    ASSERT_TRUE(SnapshotBytesAreBinary(binary.value()));
    ASSERT_FALSE(SnapshotBytesAreBinary(text.value()));

    // text -> load -> binary -> load -> text
    auto from_text = LoadSnapshotFromString(text.value());
    ASSERT_TRUE(from_text.ok()) << from_text.error();
    auto binary2 = SaveSnapshotBinaryToString(from_text.value());
    ASSERT_TRUE(binary2.ok());
    ASSERT_EQ(binary.value().size(), binary2.value().size());
    EXPECT_EQ(std::memcmp(binary.value().data(), binary2.value().data(),
                          binary.value().size()),
              0);
    auto from_binary = LoadSnapshotFromString(binary2.value());
    ASSERT_TRUE(from_binary.ok()) << from_binary.error();
    auto text2 = SaveSnapshotToString(from_binary.value());
    ASSERT_TRUE(text2.ok());
    ASSERT_EQ(text.value().size(), text2.value().size());
    EXPECT_EQ(std::memcmp(text.value().data(), text2.value().data(),
                          text.value().size()),
              0);
  }
}

// A checkpoint taken at iteration 0 (before any step) must also restore: it
// captures the cold-start state, so the restored engine replays the whole
// run bit-identically.
TEST(RecoveryPropertyTest, CheckpointAtIterationZeroRestores) {
  auto workload = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  CheckResume(workload.value(), MakeConfig(1, /*active=*/false), 0, 40,
              RoundTrip::kInMemory, "iteration zero");
}

// Accelerated dynamics (DESIGN.md §7.8) add velocity and Nesterov base
// vectors to the dual state; a checkpoint must capture them so the restored
// momentum continues mid-flight, not from rest.  Tolerance 0 including the
// durable text form (snapshot v2).
TEST(RecoveryPropertyTest, DynamicsStateResumesBitIdentically) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  for (const DynamicsKind kind :
       {DynamicsKind::kHeavyBall, DynamicsKind::kNesterov}) {
    for (const bool active : {false, true}) {
      LlaConfig config = MakeConfig(active ? 8 : 1, active);
      config.dynamics.kind = kind;
      config.dynamics.momentum = 0.9;
      char label[80];
      std::snprintf(label, sizeof(label), "%s %s", ToString(kind),
                    active ? "active" : "dense");
      CheckResume(w, config, 60, 80, RoundTrip::kInMemory, label);
      CheckResume(w, config, 60, 60, RoundTrip::kString, label);
    }
  }
}

// The diminishing schedule gamma_t = gamma0 / (1 + t / tau) is pure
// iteration-counter state; a restore that failed to carry the counter would
// resume with too-large steps and diverge from the reference immediately.
TEST(RecoveryPropertyTest, DiminishingScheduleResumesBitIdentically) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  LlaConfig config = MakeConfig(1, /*active=*/true);
  config.step_policy = StepPolicyKind::kDiminishing;
  config.gamma0 = 3.0;
  config.diminishing_tau = 50.0;
  CheckResume(workload.value(), config, 60, 80, RoundTrip::kInMemory,
              "diminishing");
  CheckResume(workload.value(), config, 60, 60, RoundTrip::kString,
              "diminishing via string");
}

// Backward compatibility: a v1 snapshot (no momentum_restarts line, no
// velocity/base fvecs) must still restore and, for a plain-dynamics engine,
// resume bit-identically — the dynamics fields it lacks are exactly the
// ones a plain engine never reads.
TEST(RecoveryPropertyTest, V1SnapshotStillRestores) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  const LlaConfig config = MakeConfig(1, /*active=*/true);
  LlaEngine reference(w, model, config);
  for (int i = 0; i < 60; ++i) reference.Step();

  auto text = SaveSnapshotToString(reference.Checkpoint());
  ASSERT_TRUE(text.ok());
  // Rewrite the v2 text into what the v1 writer produced: old header, no
  // momentum line, no (empty) dynamics vectors.
  std::string v1 = text.value();
  const auto strip = [&v1](const std::string& line) {
    const std::size_t pos = v1.find(line);
    ASSERT_NE(pos, std::string::npos) << line;
    v1.erase(pos, line.size());
  };
  const std::size_t header = v1.find("snapshot v2\n");
  ASSERT_NE(header, std::string::npos);
  v1.replace(header, std::strlen("snapshot v2"), "snapshot v1");
  strip("momentum_restarts 0\n");
  strip("fvec mu_velocity 0\n");
  strip("fvec lambda_velocity 0\n");
  strip("fvec mu_base 0\n");
  strip("fvec lambda_base 0\n");
  strip("fvec mu_phase 0\n");
  strip("fvec lambda_phase 0\n");

  auto loaded = LoadSnapshotFromString(v1);
  ASSERT_TRUE(loaded.ok()) << loaded.error();

  const Trajectory expected = StepAndRecord(&reference, 60);
  LlaEngine restored(w, model, config);
  ASSERT_TRUE(restored.Restore(loaded.value()).ok());
  const Trajectory actual = StepAndRecord(&restored, 60);
  ExpectBitIdentical(expected, actual, "v1 snapshot");
}

// Restore must reject snapshots from a different workload shape instead of
// indexing out of bounds.
TEST(RecoveryPropertyTest, RestoreRejectsShapeMismatch) {
  auto small = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  auto large = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  LatencyModel small_model(small.value());
  LatencyModel large_model(large.value());
  LlaEngine donor(small.value(), small_model, MakeConfig(1, false));
  for (int i = 0; i < 10; ++i) donor.Step();
  const StateSnapshot snapshot = donor.Checkpoint();

  LlaEngine other(large.value(), large_model, MakeConfig(1, false));
  EXPECT_FALSE(other.Restore(snapshot).ok());
}

}  // namespace
}  // namespace lla
