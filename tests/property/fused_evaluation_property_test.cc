// Property suite for the fused evaluation layer: on randomized workloads
// and assignments, every Fill*/FromArrays variant must equal its scalar
// oracle bit-for-bit (EXPECT_EQ on doubles, not EXPECT_NEAR — the fused
// sweeps promise the same arithmetic, not an approximation), the cached
// solver must match the uncached reference solver, and a full engine run
// must be bit-identical for any thread count.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/latency_solver.h"
#include "core/step_workspace.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "workloads/random.h"

namespace lla {
namespace {

Workload MakeWorkload(std::uint64_t seed, int num_tasks = 6) {
  RandomWorkloadConfig config;
  config.seed = seed;
  config.num_tasks = num_tasks;
  config.target_utilization = 0.8;
  auto workload = MakeRandomWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.error();
  return std::move(workload.value());
}

Assignment RandomAssignment(const Workload& workload, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.5, 25.0);
  Assignment latencies(workload.subtask_count());
  for (double& lat : latencies) lat = dist(rng);
  return latencies;
}

class FusedEvaluationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FusedEvaluationProperty, FillsMatchScalarOraclesExactly) {
  const std::uint64_t seed = GetParam();
  const Workload w = MakeWorkload(seed);
  const LatencyModel model(w);

  // Exercise both the serial path and a real 4-wide pool with a grain of
  // one (max_concurrency overrides the hardware clamp, so single-core CI
  // still runs the parallel path).
  ParallelConfig force;
  force.min_items_per_thread = 1;
  force.max_concurrency = 4;
  ThreadPool pool(4, force);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    for (std::uint64_t round = 0; round < 4; ++round) {
      const Assignment latencies = RandomAssignment(w, seed * 131 + round);

      std::vector<double> share_sums;
      FillResourceShareSums(w, model, latencies, &share_sums, p);
      ASSERT_EQ(share_sums.size(), w.resource_count());
      for (const ResourceInfo& resource : w.resources()) {
        EXPECT_EQ(share_sums[resource.id.value()],
                  ResourceShareSum(w, model, resource.id, latencies));
      }

      std::vector<double> path_latencies;
      FillPathLatencies(w, latencies, &path_latencies, p);
      ASSERT_EQ(path_latencies.size(), w.path_count());
      for (const PathInfo& path : w.paths()) {
        EXPECT_EQ(path_latencies[path.id.value()],
                  PathLatency(w, path.id, latencies));
      }

      for (UtilityVariant variant :
           {UtilityVariant::kPathWeighted, UtilityVariant::kSum}) {
        std::vector<double> weighted, utilities;
        FillTaskAggregates(w, latencies, variant, &weighted, &utilities, p);
        ASSERT_EQ(utilities.size(), w.task_count());
        double total = 0.0;
        for (const TaskInfo& task : w.tasks()) {
          EXPECT_EQ(utilities[task.id.value()],
                    TaskUtility(w, task.id, latencies, variant));
          total += utilities[task.id.value()];
        }
        EXPECT_EQ(total, TotalUtility(w, latencies, variant));
      }

      const FeasibilityReport oracle = CheckFeasibility(w, model, latencies);
      const FeasibilitySummary summary =
          SummarizeFeasibility(w, share_sums, path_latencies);
      EXPECT_EQ(summary.feasible, oracle.feasible);
      EXPECT_EQ(summary.max_resource_excess, oracle.max_resource_excess);
      EXPECT_EQ(summary.max_path_ratio, oracle.max_path_ratio);

      const FeasibilityReport from_arrays =
          FeasibilityFromArrays(w, share_sums, path_latencies);
      EXPECT_EQ(from_arrays.feasible, oracle.feasible);
      EXPECT_EQ(from_arrays.max_resource_excess, oracle.max_resource_excess);
      EXPECT_EQ(from_arrays.max_path_ratio, oracle.max_path_ratio);
      EXPECT_EQ(from_arrays.resource_share_sums, oracle.resource_share_sums);
      EXPECT_EQ(from_arrays.critical_paths, oracle.critical_paths);
    }
  }
}

TEST_P(FusedEvaluationProperty, StepWorkspaceMatchesScalarOracles) {
  const std::uint64_t seed = GetParam();
  const Workload w = MakeWorkload(seed);
  const LatencyModel model(w);
  const Assignment latencies = RandomAssignment(w, seed * 977 + 5);

  StepWorkspace workspace;
  workspace.Resize(w);
  FillStepWorkspace(w, model, latencies, UtilityVariant::kPathWeighted, 1e-3,
                    nullptr, &workspace);

  EXPECT_EQ(workspace.total_utility,
            TotalUtility(w, latencies, UtilityVariant::kPathWeighted));
  const FeasibilityReport oracle = CheckFeasibility(w, model, latencies, 1e-3);
  EXPECT_EQ(workspace.feasibility.feasible, oracle.feasible);
  EXPECT_EQ(workspace.feasibility.max_resource_excess,
            oracle.max_resource_excess);
  EXPECT_EQ(workspace.feasibility.max_path_ratio, oracle.max_path_ratio);
  for (const ResourceInfo& resource : w.resources()) {
    const std::size_t r = resource.id.value();
    EXPECT_EQ(workspace.resource_share_sums[r],
              ResourceShareSum(w, model, resource.id, latencies));
    EXPECT_EQ(workspace.resource_congested[r],
              workspace.resource_share_sums[r] > resource.capacity);
  }
}

TEST_P(FusedEvaluationProperty, CachedSolverMatchesUncachedReference) {
  const std::uint64_t seed = GetParam();
  const Workload w = MakeWorkload(seed);
  LatencyModel model(w);

  LatencySolverConfig cached_config;
  LatencySolverConfig reference_config;
  reference_config.cache_invariants = false;
  const LatencySolver cached(w, model, cached_config);
  const LatencySolver reference(w, model, reference_config);

  std::mt19937_64 rng(seed * 31 + 7);
  std::uniform_real_distribution<double> price_dist(0.0, 3.0);
  const auto check_all_prices = [&] {
    PriceVector prices = PriceVector::Uniform(w, 0.0, 0.0);
    for (double& mu : prices.mu) mu = price_dist(rng);
    for (double& lambda : prices.lambda) lambda = price_dist(rng);
    Assignment from_cached(w.subtask_count(), 0.0);
    Assignment from_reference(w.subtask_count(), 0.0);
    cached.SolveAll(prices, &from_cached);
    reference.SolveAll(prices, &from_reference);
    EXPECT_EQ(from_cached, from_reference);
    for (const SubtaskInfo& sub : w.subtasks()) {
      EXPECT_EQ(cached.LatLo(sub.id), reference.LatLo(sub.id));
      EXPECT_EQ(cached.LatHi(sub.id), reference.LatHi(sub.id));
    }
  };

  check_all_prices();
  // A model correction must reach the cached solver through the revision
  // check alone — no explicit invalidation here.
  model.SetAdditiveError(SubtaskId(std::size_t{0}), -0.4);
  model.SetAdditiveError(SubtaskId(w.subtask_count() - 1), 0.3);
  check_all_prices();
}

TEST_P(FusedEvaluationProperty, EngineRunBitIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  const Workload w = MakeWorkload(seed, /*num_tasks=*/8);
  const LatencyModel model(w);

  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;

  constexpr int kSteps = 400;
  std::vector<IterationStats> base_history;
  Assignment base_latencies;
  PriceVector base_prices;
  for (int num_threads : {1, 2, 8}) {
    config.num_threads = num_threads;
    config.parallel.max_concurrency = num_threads;
    config.parallel.min_items_per_thread = 1;
    LlaEngine engine(w, model, config);
    for (int i = 0; i < kSteps; ++i) engine.Step();
    if (num_threads == 1) {
      base_history = engine.history();
      base_latencies = engine.latencies();
      base_prices = engine.prices();
      continue;
    }
    ASSERT_EQ(engine.history().size(), base_history.size());
    for (int i = 0; i < kSteps; ++i) {
      EXPECT_EQ(engine.history()[i].total_utility,
                base_history[i].total_utility)
          << "threads=" << num_threads << " step=" << i;
      EXPECT_EQ(engine.history()[i].max_resource_excess,
                base_history[i].max_resource_excess);
      EXPECT_EQ(engine.history()[i].max_path_ratio,
                base_history[i].max_path_ratio);
      EXPECT_EQ(engine.history()[i].feasible, base_history[i].feasible);
    }
    EXPECT_EQ(engine.latencies(), base_latencies) << "threads=" << num_threads;
    EXPECT_EQ(engine.prices().mu, base_prices.mu);
    EXPECT_EQ(engine.prices().lambda, base_prices.lambda);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FusedEvaluationProperty,
                         ::testing::Values(11u, 29u, 47u, 83u, 131u));

}  // namespace
}  // namespace lla
