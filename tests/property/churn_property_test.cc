// Churn determinism properties (DESIGN.md §7.9): a FIXED mutation script
// applied through the ChurnDriver is a pure function of the script and the
// initial system.  Two pins:
//
//   1. The final prices after the whole script are memcmp bit-identical
//      (tolerance 0) across thread counts {1, 8}, dense vs active-set, and
//      admission probe widths — threading and the incremental mode change
//      the work, never the trajectory.
//   2. Checkpoint/Restore mid-churn is a pure fast-path: snapshotting the
//      live engine between mutations, deliberately wandering off with extra
//      steps, then restoring and replaying the remaining script lands on
//      bit-identical final prices (the PR-5 recovery guarantee composed
//      with structural warm starts).
//
// The TSan copy of this file in the default ctest run keeps the
// EngineBatch-backed admission probes and the parallel per-task solves
// honest under the race detector.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "runtime/churn.h"
#include "workloads/random.h"
#include "workloads/transform.h"

namespace lla {
namespace {

using runtime::ChurnConfig;
using runtime::ChurnDriver;
using runtime::ChurnMutation;
using runtime::ChurnRecord;
using runtime::ChurnScriptConfig;
using runtime::MakeChurnScript;

constexpr int kMaxIterations = 8000;

WorkloadSpecs BaseSpecs() {
  RandomWorkloadConfig config;
  config.seed = 11;
  config.num_resources = 8;
  config.num_tasks = 6;
  config.target_utilization = 0.6;
  auto workload = MakeRandomWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.error();
  return ExtractSpecs(workload.value());
}

std::vector<ChurnMutation> Script(std::size_t mutations) {
  ChurnScriptConfig config;
  config.seed = 3;
  config.mutations = mutations;
  config.num_resources = 8;
  config.donor_tasks = 6;
  auto script = MakeChurnScript(config);
  EXPECT_TRUE(script.ok()) << script.error();
  return std::move(script).value();
}

ChurnConfig DriverConfig(int num_threads, bool active, int probe_threads) {
  ChurnConfig config;
  config.lla.step_policy = StepPolicyKind::kAdaptive;
  config.lla.gamma0 = 3.0;
  config.lla.record_history = false;
  config.lla.num_threads = num_threads;
  // Force the requested width even on single-core hosts so the parallel
  // solve path participates in the bit-identity claim.
  config.lla.parallel.max_concurrency = num_threads;
  config.lla.parallel.min_items_per_thread = 1;
  config.lla.active_set.enabled = active;
  config.max_iterations = kMaxIterations;
  config.min_tasks = 2;
  config.admission.lla = config.lla;
  config.admission.max_iterations = kMaxIterations;
  config.admission.probe_threads = probe_threads;
  return config;
}

void ExpectPricesBitIdentical(const PriceVector& expected,
                              const PriceVector& actual, const char* label) {
  ASSERT_EQ(expected.mu.size(), actual.mu.size()) << label;
  ASSERT_EQ(expected.lambda.size(), actual.lambda.size()) << label;
  EXPECT_EQ(std::memcmp(expected.mu.data(), actual.mu.data(),
                        expected.mu.size() * sizeof(double)),
            0)
      << label << ": mu diverges";
  EXPECT_EQ(std::memcmp(expected.lambda.data(), actual.lambda.data(),
                        expected.lambda.size() * sizeof(double)),
            0)
      << label << ": lambda diverges";
}

TEST(ChurnPropertyTest, FixedScriptBitIdenticalAcrossThreadsAndModes) {
  const WorkloadSpecs specs = BaseSpecs();
  const std::vector<ChurnMutation> script = Script(16);

  struct Variant {
    int num_threads;
    bool active;
    int probe_threads;
    const char* label;
  };
  const Variant variants[] = {
      {1, false, 1, "dense x1 probes 1"},
      {1, true, 1, "active x1 probes 1"},
      {8, false, 3, "dense x8 probes 3"},
      {8, true, 4, "active x8 probes 4"},
  };

  bool have_reference = false;
  PriceVector reference_prices;
  std::vector<ChurnRecord> reference_records;
  std::size_t reference_tasks = 0;
  for (const Variant& variant : variants) {
    auto driver = ChurnDriver::Create(
        specs.resources, specs.tasks,
        DriverConfig(variant.num_threads, variant.active,
                     variant.probe_threads));
    ASSERT_TRUE(driver.ok()) << variant.label << ": " << driver.error();
    const std::vector<ChurnRecord> records =
        driver.value().ApplyAll(script);
    ASSERT_EQ(records.size(), script.size()) << variant.label;
    if (!have_reference) {
      have_reference = true;
      reference_prices = driver.value().engine().prices();
      reference_records = records;
      reference_tasks = driver.value().workload().task_count();
      // The script must exercise every mutation kind to mean anything.
      std::size_t applied_structural = 0, applied_perturbs = 0;
      for (const ChurnRecord& record : records) {
        if (!record.applied) continue;
        if (record.kind == runtime::ChurnKind::kWcetPerturb) {
          ++applied_perturbs;
        } else {
          ++applied_structural;
        }
      }
      EXPECT_GT(applied_structural, 0u);
      EXPECT_GT(applied_perturbs, 0u);
      continue;
    }
    EXPECT_EQ(driver.value().workload().task_count(), reference_tasks)
        << variant.label;
    ExpectPricesBitIdentical(reference_prices,
                             driver.value().engine().prices(),
                             variant.label);
    // The whole record stream matches: same admissions, same skips, same
    // per-mutation re-convergence trajectory lengths.
    for (std::size_t m = 0; m < records.size(); ++m) {
      EXPECT_EQ(records[m].kind, reference_records[m].kind)
          << variant.label << " mutation " << m;
      EXPECT_EQ(records[m].applied, reference_records[m].applied)
          << variant.label << " mutation " << m;
      EXPECT_EQ(records[m].converged, reference_records[m].converged)
          << variant.label << " mutation " << m;
      EXPECT_EQ(records[m].iterations, reference_records[m].iterations)
          << variant.label << " mutation " << m;
      EXPECT_EQ(records[m].tasks_after, reference_records[m].tasks_after)
          << variant.label << " mutation " << m;
    }
  }
}

TEST(ChurnPropertyTest, CheckpointRestoreMidChurnResumesBitIdentically) {
  const WorkloadSpecs specs = BaseSpecs();
  const std::vector<ChurnMutation> script = Script(16);
  const std::size_t split = script.size() / 2;
  const ChurnConfig config = DriverConfig(2, true, 2);

  // Reference: the uninterrupted run, snapshotted at the split point.
  auto reference = ChurnDriver::Create(specs.resources, specs.tasks, config);
  ASSERT_TRUE(reference.ok()) << reference.error();
  for (std::size_t m = 0; m < split; ++m) {
    reference.value().Apply(script[m]);
  }
  const StateSnapshot snapshot = reference.value().engine().Checkpoint();
  for (std::size_t m = split; m < script.size(); ++m) {
    reference.value().Apply(script[m]);
  }
  const PriceVector expected = reference.value().engine().prices();

  // Victim: same prefix, then wander off (extra un-scripted iterations),
  // then restore the snapshot and replay the suffix.
  auto victim = ChurnDriver::Create(specs.resources, specs.tasks, config);
  ASSERT_TRUE(victim.ok()) << victim.error();
  for (std::size_t m = 0; m < split; ++m) {
    victim.value().Apply(script[m]);
  }
  victim.value().engine().ClearConvergenceWindow();
  for (int i = 0; i < 25; ++i) victim.value().engine().Step();
  const Status restored = victim.value().engine().Restore(snapshot);
  ASSERT_TRUE(restored.ok()) << restored.error();
  for (std::size_t m = split; m < script.size(); ++m) {
    victim.value().Apply(script[m]);
  }

  EXPECT_EQ(victim.value().workload().task_count(),
            reference.value().workload().task_count());
  ExpectPricesBitIdentical(expected, victim.value().engine().prices(),
                           "restore-mid-churn");
}

}  // namespace
}  // namespace lla
