// Property: the parallel execution layer must never enter a computed value.
// For any thread count and any grain cutoff, the engine's trajectory —
// latency assignments AND dual prices, at every iteration — must be
// bit-identical to the serial run, both through a standalone LlaEngine and
// through the batched EngineBatch API.  This is the contract that lets the
// benches/coordinator pick thread counts freely (DESIGN.md §7.5).
#include <cstdio>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/engine_batch.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla {
namespace {

struct Trajectory {
  std::vector<Assignment> latencies;
  std::vector<PriceVector> prices;
};

LlaConfig BaseConfig(int num_threads, int min_items_per_thread) {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.record_history = false;
  config.num_threads = num_threads;
  // Force the requested width even on single-core hosts, so the parallel
  // code paths (not just the serial fallback) are what we pin.
  config.parallel.max_concurrency = num_threads;
  config.parallel.min_items_per_thread = min_items_per_thread;
  return config;
}

Trajectory RunEngine(const Workload& workload, const LatencyModel& model,
                     const LlaConfig& config, int steps) {
  LlaEngine engine(workload, model, config);
  Trajectory trajectory;
  for (int i = 0; i < steps; ++i) {
    engine.Step();
    trajectory.latencies.push_back(engine.latencies());
    trajectory.prices.push_back(engine.prices());
  }
  return trajectory;
}

void ExpectBitIdentical(const Trajectory& expected, const Trajectory& actual,
                        const char* label) {
  ASSERT_EQ(expected.latencies.size(), actual.latencies.size()) << label;
  for (std::size_t step = 0; step < expected.latencies.size(); ++step) {
    const Assignment& a = expected.latencies[step];
    const Assignment& b = actual.latencies[step];
    ASSERT_EQ(a.size(), b.size());
    // memcmp: bit-identity, not approximate equality — distinguishes -0.0
    // and would catch any reassociated reduction.
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << label << " latencies diverge at step " << step;
    const PriceVector& pa = expected.prices[step];
    const PriceVector& pb = actual.prices[step];
    ASSERT_EQ(std::memcmp(pa.mu.data(), pb.mu.data(),
                          pa.mu.size() * sizeof(double)),
              0)
        << label << " mu diverges at step " << step;
    ASSERT_EQ(std::memcmp(pa.lambda.data(), pb.lambda.data(),
                          pa.lambda.size() * sizeof(double)),
              0)
        << label << " lambda diverges at step " << step;
  }
}

void CheckWorkload(const Workload& workload, int steps) {
  LatencyModel model(workload);
  const Trajectory serial =
      RunEngine(workload, model, BaseConfig(1, 32), steps);
  for (const int num_threads : {1, 2, 8}) {
    for (const int cutoff : {1, 64}) {
      const LlaConfig config = BaseConfig(num_threads, cutoff);
      const Trajectory parallel = RunEngine(workload, model, config, steps);
      char label[64];
      std::snprintf(label, sizeof(label), "threads=%d cutoff=%d",
                    num_threads, cutoff);
      ExpectBitIdentical(serial, parallel, label);

      // Same trajectory again through the batched API: two copies of the
      // same engine stepped concurrently must both match the serial run.
      EngineBatch batch(num_threads, config.parallel);
      batch.Add(workload, model, config);
      batch.Add(workload, model, config);
      Trajectory batched0, batched1;
      for (int i = 0; i < steps; ++i) {
        batch.StepAll();
        batched0.latencies.push_back(batch.engine(0).latencies());
        batched0.prices.push_back(batch.engine(0).prices());
        batched1.latencies.push_back(batch.engine(1).latencies());
        batched1.prices.push_back(batch.engine(1).prices());
      }
      ExpectBitIdentical(serial, batched0, label);
      ExpectBitIdentical(serial, batched1, label);
    }
  }
}

TEST(ParallelDeterminismPropertyTest, Fig6WorkloadBitIdentical) {
  auto workload = MakeScaledSimWorkload(4, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  CheckWorkload(workload.value(), 120);
}

TEST(ParallelDeterminismPropertyTest, RandomWorkloadBitIdentical) {
  RandomWorkloadConfig config;
  config.seed = 11;
  config.num_resources = 8;
  config.num_tasks = 24;
  config.min_subtasks = 2;
  config.max_subtasks = 6;
  config.target_utilization = 0.7;
  auto workload = MakeRandomWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  CheckWorkload(workload.value(), 120);
}

}  // namespace
}  // namespace lla
