// Cross-module property suite: on randomly generated schedulable workloads,
// LLA must (a) converge, (b) end feasible, (c) satisfy the KKT conditions
// within dual-iteration tolerance, and (d) match the independent barrier
// solver's utility.  This is the repository's strongest end-to-end
// correctness statement.
#include <cmath>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "solver/barrier.h"
#include "solver/kkt.h"
#include "workloads/random.h"

namespace lla {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  UtilityVariant variant;
  double utilization;
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << " variant=" << ToString(c.variant)
      << " util=" << c.utilization;
}

class LlaOptimalityProperty : public ::testing::TestWithParam<PropertyCase> {
};

TEST_P(LlaOptimalityProperty, ConvergesFeasiblyToOptimum) {
  const PropertyCase& param = GetParam();
  RandomWorkloadConfig config;
  config.seed = param.seed;
  config.num_tasks = 4;
  config.target_utilization = param.utilization;
  auto workload = MakeRandomWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  LlaConfig lla_config;
  lla_config.solver.variant = param.variant;
  lla_config.step_policy = StepPolicyKind::kAdaptive;
  lla_config.gamma0 = 3.0;
  lla_config.record_history = false;
  LlaEngine engine(w, model, lla_config);
  const RunResult run = engine.Run(12000);

  // (a)+(b) converged and feasible.
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(run.final_feasibility.feasible);

  // (c) KKT residuals small (dual iteration tolerance).
  LatencySolver solver(w, model, lla_config.solver);
  const KktReport kkt = CheckKkt(w, model, solver, engine.latencies(),
                                 engine.prices(), param.variant);
  EXPECT_LT(kkt.max_primal_violation, 2e-3) << kkt.Summary();
  EXPECT_LT(kkt.max_dual_violation, 1e-12) << kkt.Summary();

  // (d) utility within 1.5% of the independent reference optimum.
  BarrierSolverConfig barrier_config;
  barrier_config.variant = param.variant;
  BarrierSolver barrier(w, model, barrier_config);
  auto reference = barrier.Solve();
  ASSERT_TRUE(reference.ok()) << reference.error();
  const double scale = std::max(1.0, std::fabs(reference.value().utility));
  EXPECT_NEAR(run.final_utility, reference.value().utility, 0.015 * scale);
  // LLA must not beat the true optimum by more than numerical slack
  // (it may appear to, slightly, because its iterate can sit marginally
  // outside the feasible set within the convergence tolerance).
  EXPECT_LT(run.final_utility, reference.value().utility + 0.015 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, LlaOptimalityProperty,
    ::testing::Values(
        PropertyCase{101, UtilityVariant::kPathWeighted, 0.75},
        PropertyCase{102, UtilityVariant::kPathWeighted, 0.8},
        PropertyCase{103, UtilityVariant::kPathWeighted, 0.6},
        PropertyCase{104, UtilityVariant::kSum, 0.75},
        PropertyCase{105, UtilityVariant::kSum, 0.8},
        PropertyCase{106, UtilityVariant::kSum, 0.9},
        PropertyCase{107, UtilityVariant::kPathWeighted, 0.9},
        PropertyCase{108, UtilityVariant::kSum, 0.6}));

// Monotonicity property: relaxing every critical time can only improve (or
// preserve) the optimal utility... but since utility depends on C through
// f_i = 2C - x, compare via the barrier solver on identical utilities:
// instead we check that loosening utilization (smaller target) never lowers
// LLA's achieved total utility for the same seed.
class UtilizationMonotonicity : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(UtilizationMonotonicity, TighterDeadlinesNeverHelp) {
  double previous = -1e300;
  // target_utilization 0.9 -> tight deadlines; 0.5 -> loose.  Utility
  // offsets grow with C (f = 2C - x), so looser must score higher.
  for (double utilization : {0.9, 0.7, 0.5}) {
    RandomWorkloadConfig config;
    config.seed = GetParam();
    config.target_utilization = utilization;
    auto workload = MakeRandomWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.error();
    LatencyModel model(workload.value());
    LlaConfig lla_config;
    lla_config.step_policy = StepPolicyKind::kAdaptive;
    lla_config.gamma0 = 3.0;
    lla_config.record_history = false;
    LlaEngine engine(workload.value(), model, lla_config);
    const RunResult run = engine.Run(12000);
    EXPECT_TRUE(run.final_feasibility.feasible);
    EXPECT_GE(run.final_utility, previous - 1e-6);
    previous = run.final_utility;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UtilizationMonotonicity,
                         ::testing::Values(201, 202, 203));

}  // namespace
}  // namespace lla
