// Determinism properties of the accelerated price dynamics (DESIGN.md §7.8).
//
// Per accelerated policy (heavy-ball, Nesterov), in exact mode
// (epsilon_quiescence == 0):
//   1. THREAD INVARIANCE: the trajectory — latencies AND dual prices at
//      every iteration — is bit-identical (memcmp, tolerance 0) across
//      thread counts {1, 8}, dense and active-set.  Momentum state is
//      per-component and written from the same static partitioning as the
//      prices, so width must not be observable.
//   2. SPARSE == DENSE: the active-set engine's trajectory is bit-identical
//      to the dense engine's.  This is the sharp one: a retirement skip is
//      only sound because a settled component carries exactly zero velocity
//      (and zero Nesterov base), making (value, v, base) = (0, 0, 0) an
//      absorbing state for ANY step size the skipped iterations would have
//      used.
#include <cstdio>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/price_dynamics.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla {
namespace {

struct Trajectory {
  std::vector<Assignment> latencies;
  std::vector<PriceVector> prices;
};

LlaConfig BaseConfig(DynamicsKind kind, int num_threads, bool active) {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  config.num_threads = num_threads;
  // Force the requested width even on single-core hosts so the parallel
  // paths (not just the serial fallback) are what we pin.
  config.parallel.max_concurrency = num_threads;
  config.parallel.min_items_per_thread = 1;
  config.active_set.enabled = active;
  config.dynamics.kind = kind;
  config.dynamics.momentum = 0.9;
  return config;
}

Trajectory RunEngine(const Workload& workload, const LatencyModel& model,
                     const LlaConfig& config, int steps) {
  LlaEngine engine(workload, model, config);
  Trajectory trajectory;
  for (int i = 0; i < steps; ++i) {
    engine.Step();
    trajectory.latencies.push_back(engine.latencies());
    trajectory.prices.push_back(engine.prices());
  }
  return trajectory;
}

void ExpectBitIdentical(const Trajectory& expected, const Trajectory& actual,
                        const char* label) {
  ASSERT_EQ(expected.latencies.size(), actual.latencies.size()) << label;
  for (std::size_t step = 0; step < expected.latencies.size(); ++step) {
    const Assignment& a = expected.latencies[step];
    const Assignment& b = actual.latencies[step];
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << label << " latencies diverge at step " << step;
    const PriceVector& pa = expected.prices[step];
    const PriceVector& pb = actual.prices[step];
    ASSERT_EQ(std::memcmp(pa.mu.data(), pb.mu.data(),
                          pa.mu.size() * sizeof(double)),
              0)
        << label << " mu diverges at step " << step;
    ASSERT_EQ(std::memcmp(pa.lambda.data(), pb.lambda.data(),
                          pa.lambda.size() * sizeof(double)),
              0)
        << label << " lambda diverges at step " << step;
  }
}

// The reference is the single-thread dense run; every other (threads,
// active) combination must reproduce it bitwise.
void CheckDeterministic(const Workload& workload, DynamicsKind kind,
                        int steps) {
  LatencyModel model(workload);
  const Trajectory reference = RunEngine(
      workload, model, BaseConfig(kind, 1, /*active=*/false), steps);
  for (const bool active : {false, true}) {
    for (const int num_threads : {1, 8}) {
      if (!active && num_threads == 1) continue;  // that's the reference
      const Trajectory run = RunEngine(
          workload, model, BaseConfig(kind, num_threads, active), steps);
      char label[80];
      std::snprintf(label, sizeof(label), "%s %s threads=%d", ToString(kind),
                    active ? "active" : "dense", num_threads);
      ExpectBitIdentical(reference, run, label);
    }
  }
}

TEST(DynamicsPropertyTest, HeavyBallPaperWorkloadDeterministic) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  CheckDeterministic(workload.value(), DynamicsKind::kHeavyBall, 150);
}

TEST(DynamicsPropertyTest, NesterovPaperWorkloadDeterministic) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  CheckDeterministic(workload.value(), DynamicsKind::kNesterov, 150);
}

TEST(DynamicsPropertyTest, RandomWorkloadsDeterministic) {
  for (const unsigned seed : {11u, 42u}) {
    RandomWorkloadConfig config;
    config.seed = seed;
    config.num_resources = 8;
    config.num_tasks = 24;
    config.min_subtasks = 2;
    config.max_subtasks = 6;
    config.target_utilization = 0.7;
    auto workload = MakeRandomWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.error();
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    CheckDeterministic(workload.value(), DynamicsKind::kHeavyBall, 120);
    CheckDeterministic(workload.value(), DynamicsKind::kNesterov, 120);
  }
}

// Run long enough to pass through convergence: late iterations are where
// multipliers retire (the skip path the velocity zero-clamp makes sound).
// A wrong settled certificate shows up here as a late-step divergence.
TEST(DynamicsPropertyTest, SparseMatchesDenseThroughConvergence) {
  auto workload = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  for (const DynamicsKind kind :
       {DynamicsKind::kHeavyBall, DynamicsKind::kNesterov}) {
    LlaEngine dense(w, model, BaseConfig(kind, 1, /*active=*/false));
    LlaEngine sparse(w, model, BaseConfig(kind, 1, /*active=*/true));
    for (int step = 0; step < 900; ++step) {
      dense.Step();
      sparse.Step();
      const PriceVector& pa = dense.prices();
      const PriceVector& pb = sparse.prices();
      ASSERT_EQ(std::memcmp(pa.mu.data(), pb.mu.data(),
                            pa.mu.size() * sizeof(double)),
                0)
          << ToString(kind) << " mu diverges at step " << step;
      ASSERT_EQ(std::memcmp(pa.lambda.data(), pb.lambda.data(),
                            pa.lambda.size() * sizeof(double)),
                0)
          << ToString(kind) << " lambda diverges at step " << step;
    }
    EXPECT_EQ(dense.momentum_restarts(), sparse.momentum_restarts())
        << ToString(kind);
  }
}

}  // namespace
}  // namespace lla
