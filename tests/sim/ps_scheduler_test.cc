#include "sim/ps_scheduler.h"

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace lla::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(GpsSchedulerTest, SingleFlowRunsAtFullCapacity) {
  GpsScheduler gps(1.0);
  const int flow = gps.AddFlow(0.25);
  gps.Enqueue(flow, {1, 10.0, 0.0});
  // Work-conserving: the only backlogged flow gets everything.
  EXPECT_DOUBLE_EQ(gps.NextCompletionMs(), 10.0);
  std::vector<double> completions;
  gps.AdvanceTo(20.0, [&](std::uint64_t, double t) { completions.push_back(t); });
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_NEAR(completions[0], 10.0, 1e-9);
}

TEST(GpsSchedulerTest, TwoFlowsShareProportionally) {
  GpsScheduler gps(1.0);
  const int a = gps.AddFlow(2.0);
  const int b = gps.AddFlow(1.0);
  gps.Enqueue(a, {1, 10.0, 0.0});
  gps.Enqueue(b, {2, 10.0, 0.0});
  std::map<std::uint64_t, double> done;
  gps.AdvanceTo(100.0, [&](std::uint64_t id, double t) { done[id] = t; });
  // Flow a at rate 2/3 finishes at 15; then flow b alone: remaining
  // 10 - 15/3 = 5 at full speed -> completes at 20.
  EXPECT_NEAR(done[1], 15.0, 1e-9);
  EXPECT_NEAR(done[2], 20.0, 1e-9);
}

TEST(GpsSchedulerTest, AlwaysBackloggedFlowConsumesItsShare) {
  GpsScheduler gps(1.0);
  const int gc = gps.AddFlow(0.1, /*always_backlogged=*/true);
  (void)gc;
  const int a = gps.AddFlow(0.9);
  gps.Enqueue(a, {1, 9.0, 0.0});
  std::vector<double> completions;
  gps.AdvanceTo(100.0, [&](std::uint64_t, double t) { completions.push_back(t); });
  // Flow a gets 0.9 of the capacity: 9 / 0.9 = 10 ms.
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_NEAR(completions[0], 10.0, 1e-9);
}

TEST(GpsSchedulerTest, FifoWithinFlow) {
  GpsScheduler gps(1.0);
  const int a = gps.AddFlow(1.0);
  gps.Enqueue(a, {1, 5.0, 0.0});
  gps.Enqueue(a, {2, 5.0, 0.0});
  std::vector<std::uint64_t> order;
  gps.AdvanceTo(20.0, [&](std::uint64_t id, double) { order.push_back(id); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
}

TEST(GpsSchedulerTest, IdleWhenNoJobs) {
  GpsScheduler gps(1.0);
  gps.AddFlow(1.0);
  EXPECT_EQ(gps.NextCompletionMs(), kInf);
  gps.AdvanceTo(50.0, nullptr);
  EXPECT_DOUBLE_EQ(gps.now_ms(), 50.0);
}

TEST(GpsSchedulerTest, ReweightingTakesEffect) {
  GpsScheduler gps(1.0);
  const int a = gps.AddFlow(1.0);
  const int b = gps.AddFlow(1.0, /*always_backlogged=*/true);
  (void)b;
  gps.Enqueue(a, {1, 10.0, 0.0});
  gps.AdvanceTo(10.0, nullptr);  // serves 5 ms of work (half rate)
  gps.SetWeight(a, 3.0);         // now rate = 3/4
  std::vector<double> completions;
  gps.AdvanceTo(100.0, [&](std::uint64_t, double t) { completions.push_back(t); });
  // Remaining 5 ms at rate 0.75 -> completes at 10 + 6.667.
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_NEAR(completions[0], 10.0 + 5.0 / 0.75, 1e-6);
}

TEST(GpsSchedulerTest, ManyFlowsConserveWork) {
  GpsScheduler gps(1.0);
  std::vector<int> flows;
  const int n = 10;
  double total_work = 0.0;
  for (int i = 0; i < n; ++i) {
    flows.push_back(gps.AddFlow(1.0 + i));
  }
  for (int i = 0; i < n; ++i) {
    const double work = 3.0 + i;
    total_work += work;
    gps.Enqueue(flows[i], {static_cast<std::uint64_t>(i), work, 0.0});
  }
  double last_completion = 0.0;
  int completed = 0;
  gps.AdvanceTo(1000.0, [&](std::uint64_t, double t) {
    last_completion = std::max(last_completion, t);
    ++completed;
  });
  EXPECT_EQ(completed, n);
  // Work conservation: the busy period ends exactly at total work.
  EXPECT_NEAR(last_completion, total_work, 1e-6);
}

TEST(SfsSchedulerTest, SingleFlowMatchesGps) {
  SfsScheduler sfs(1.0, 1.0);
  const int a = sfs.AddFlow(0.5);
  sfs.Enqueue(a, {1, 7.0, 0.0});
  std::vector<double> completions;
  sfs.AdvanceTo(50.0, [&](std::uint64_t, double t) { completions.push_back(t); });
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_NEAR(completions[0], 7.0, 1.0 + 1e-9);  // within one quantum
}

TEST(SfsSchedulerTest, LongRunServiceProportionalToWeights) {
  SfsScheduler sfs(1.0, 1.0);
  const int a = sfs.AddFlow(3.0);
  const int b = sfs.AddFlow(1.0);
  // Keep both flows saturated with many jobs.
  std::uint64_t id = 0;
  for (int i = 0; i < 400; ++i) {
    sfs.Enqueue(a, {id++, 1.0, 0.0});
    sfs.Enqueue(b, {id++, 1.0, 0.0});
  }
  int done_a = 0, done_b = 0;
  sfs.AdvanceTo(400.0, [&](std::uint64_t job, double) {
    (job % 2 == 0 ? done_a : done_b) += 1;
  });
  // 400 ms of service split 3:1 -> ~300 vs ~100 jobs of 1 ms.
  EXPECT_NEAR(static_cast<double>(done_a) / done_b, 3.0, 0.2);
}

TEST(SfsSchedulerTest, AlwaysBackloggedStealsShare) {
  SfsScheduler sfs(1.0, 1.0);
  const int gc = sfs.AddFlow(1.0, /*always_backlogged=*/true);
  (void)gc;
  const int a = sfs.AddFlow(1.0);
  std::uint64_t id = 0;
  for (int i = 0; i < 100; ++i) sfs.Enqueue(a, {id++, 1.0, 0.0});
  int done = 0;
  sfs.AdvanceTo(100.0, [&](std::uint64_t, double) { ++done; });
  // Equal weights: flow a gets ~half the 100 ms.
  EXPECT_NEAR(done, 50, 2);
}

TEST(SfsSchedulerTest, NewlyBackloggedFlowCannotClaimPastService) {
  SfsScheduler sfs(1.0, 1.0);
  const int a = sfs.AddFlow(1.0);
  const int b = sfs.AddFlow(1.0);
  std::uint64_t id = 0;
  for (int i = 0; i < 50; ++i) sfs.Enqueue(a, {id++, 1.0, 0.0});
  sfs.AdvanceTo(30.0, nullptr);  // a alone consumed 30 ms
  // b wakes up; it must not monopolize to "catch up" the missed 30 ms.
  for (int i = 0; i < 50; ++i) sfs.Enqueue(b, {1000 + id++, 1.0, 0.0});
  int done_a = 0, done_b = 0;
  sfs.AdvanceTo(50.0, [&](std::uint64_t job, double) {
    (job >= 1000 ? done_b : done_a) += 1;
  });
  // The next 20 ms should split roughly evenly.
  EXPECT_NEAR(done_a, 10, 2);
  EXPECT_NEAR(done_b, 10, 2);
}

// Property: GPS latencies are bounded by work/guaranteed-rate when the
// system is fully loaded with equal weights.
class GpsLatencyBound : public ::testing::TestWithParam<int> {};

TEST_P(GpsLatencyBound, HeadLatencyWithinGuarantee) {
  const int flows = GetParam();
  GpsScheduler gps(1.0);
  std::vector<int> ids;
  for (int i = 0; i < flows; ++i) ids.push_back(gps.AddFlow(1.0));
  for (int i = 0; i < flows; ++i) {
    gps.Enqueue(ids[i], {static_cast<std::uint64_t>(i), 4.0, 0.0});
  }
  std::vector<double> completions(flows, 0.0);
  gps.AdvanceTo(1000.0, [&](std::uint64_t id, double t) {
    completions[id] = t;
  });
  for (int i = 0; i < flows; ++i) {
    // Guaranteed rate 1/flows: latency <= work * flows.
    EXPECT_LE(completions[i], 4.0 * flows + 1e-6);
    EXPECT_GT(completions[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, GpsLatencyBound,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace lla::sim
