#include "sim/trigger_source.h"

#include <vector>

#include <gtest/gtest.h>

namespace lla::sim {
namespace {

TEST(TriggerSourceTest, PeriodicSequence) {
  TriggerSource source(TriggerSpec::Periodic(100.0, 7.0), 1);
  EXPECT_DOUBLE_EQ(source.NextReleaseMs(), 7.0);
  EXPECT_DOUBLE_EQ(source.NextReleaseMs(), 107.0);
  EXPECT_DOUBLE_EQ(source.NextReleaseMs(), 207.0);
}

TEST(TriggerSourceTest, PeriodicZeroPhaseStartsAtZero) {
  TriggerSource source(TriggerSpec::Periodic(25.0), 1);
  EXPECT_DOUBLE_EQ(source.NextReleaseMs(), 0.0);
  EXPECT_DOUBLE_EQ(source.NextReleaseMs(), 25.0);
}

TEST(TriggerSourceTest, PoissonMeanRate) {
  TriggerSource source(TriggerSpec::Poisson(40.0), 5);
  double last = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double t = source.NextReleaseMs();
    EXPECT_GT(t, last);
    last = t;
  }
  // n arrivals at 40/s should span ~n/40 seconds.
  EXPECT_NEAR(last / 1000.0, n / 40.0, 0.05 * n / 40.0);
}

TEST(TriggerSourceTest, PoissonDeterministicPerSeed) {
  TriggerSource a(TriggerSpec::Poisson(10.0), 9);
  TriggerSource b(TriggerSpec::Poisson(10.0), 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.NextReleaseMs(), b.NextReleaseMs());
  }
}

TEST(TriggerSourceTest, BurstyEmitsBurstsThenGaps) {
  TriggerSource source(TriggerSpec::Bursty(100.0, 3, 2.0), 1);
  EXPECT_DOUBLE_EQ(source.NextReleaseMs(), 0.0);
  EXPECT_DOUBLE_EQ(source.NextReleaseMs(), 2.0);
  EXPECT_DOUBLE_EQ(source.NextReleaseMs(), 4.0);
  EXPECT_DOUBLE_EQ(source.NextReleaseMs(), 100.0);
  EXPECT_DOUBLE_EQ(source.NextReleaseMs(), 102.0);
}

TEST(TriggerSourceTest, BurstSizeOneIsPeriodic) {
  TriggerSource bursty(TriggerSpec::Bursty(50.0, 1, 0.0), 1);
  TriggerSource periodic(TriggerSpec::Periodic(50.0), 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(bursty.NextReleaseMs(), periodic.NextReleaseMs());
  }
}

}  // namespace
}  // namespace lla::sim
