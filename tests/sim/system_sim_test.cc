#include "sim/system_sim.h"

#include <gtest/gtest.h>

#include "model/trigger.h"
#include "model/utility.h"
#include "workloads/paper.h"

namespace lla::sim {
namespace {

// Single task, single subtask, one CPU: fully analyzable.
Workload OneSubtaskWorkload(double period_ms = 50.0) {
  std::vector<ResourceSpec> resources = {{"cpu", ResourceKind::kCpu, 1.0, 0.0}};
  TaskSpec task;
  task.name = "t";
  task.critical_time_ms = 1000.0;
  task.utility = MakePrototypeUtility();
  task.trigger = TriggerSpec::Periodic(period_ms);
  task.subtasks = {{"s", ResourceId(0u), 5.0, 0.0}};
  auto workload = Workload::Create(std::move(resources), {task});
  EXPECT_TRUE(workload.ok());
  return std::move(workload).value();
}

TEST(SystemSimTest, SingleSubtaskLatencyMatchesShare) {
  const Workload w = OneSubtaskWorkload();
  SimConfig config;
  config.duration_ms = 20000.0;
  config.service_jitter = 0.0;  // every job exactly at WCET
  config.model_background_load = false;
  SystemSimulator simulator(w, config);
  const SimResult result = simulator.Run({0.25});
  // Jobs are spaced 50 ms apart, each needs 5 ms of work at rate 0.25
  // (no other flow -> work conserving gives full rate, job completes in 5).
  ASSERT_GT(result.jobs_completed, 100u);
  EXPECT_NEAR(result.subtask_latencies[0].Value(0.5), 5.0, 1e-6);
  EXPECT_NEAR(result.task_latencies[0].Value(0.99), 5.0, 1e-6);
}

TEST(SystemSimTest, BackgroundLoadSlowsJobs) {
  // capacity 0.8 => background flow weight 0.2; subtask share 0.4 ->
  // effective rate 0.4/(0.4+0.2) = 2/3 -> latency 7.5 ms.
  std::vector<ResourceSpec> resources = {{"cpu", ResourceKind::kCpu, 0.8, 0.0}};
  TaskSpec task;
  task.name = "t";
  task.critical_time_ms = 1000.0;
  task.utility = MakePrototypeUtility();
  task.trigger = TriggerSpec::Periodic(50.0);
  task.subtasks = {{"s", ResourceId(0u), 5.0, 0.0}};
  auto workload = Workload::Create(std::move(resources), {task});
  ASSERT_TRUE(workload.ok());
  SimConfig config;
  config.duration_ms = 20000.0;
  config.service_jitter = 0.0;
  SystemSimulator simulator(workload.value(), config);
  const SimResult result = simulator.Run({0.4});
  EXPECT_NEAR(result.subtask_latencies[0].Value(0.5), 7.5, 1e-6);
}

TEST(SystemSimTest, ChainRespectsPrecedence) {
  // Two-subtask chain on two CPUs: end-to-end = sum of stage latencies.
  std::vector<ResourceSpec> resources = {
      {"cpu0", ResourceKind::kCpu, 1.0, 0.0},
      {"cpu1", ResourceKind::kCpu, 1.0, 0.0}};
  TaskSpec task;
  task.name = "chain";
  task.critical_time_ms = 1000.0;
  task.utility = MakePrototypeUtility();
  task.trigger = TriggerSpec::Periodic(40.0);
  task.subtasks = {{"a", ResourceId(0u), 4.0, 0.0},
                   {"b", ResourceId(1u), 6.0, 0.0}};
  task.edges = {{0, 1}};
  auto workload = Workload::Create(std::move(resources), {task});
  ASSERT_TRUE(workload.ok());
  SimConfig config;
  config.duration_ms = 20000.0;
  config.service_jitter = 0.0;
  config.model_background_load = false;
  SystemSimulator simulator(workload.value(), config);
  const SimResult result = simulator.Run({1.0, 1.0});
  EXPECT_NEAR(result.subtask_latencies[0].Value(0.5), 4.0, 1e-6);
  EXPECT_NEAR(result.subtask_latencies[1].Value(0.5), 6.0, 1e-6);
  EXPECT_NEAR(result.task_latencies[0].Value(0.5), 10.0, 1e-6);
}

TEST(SystemSimTest, FanOutCompletesAllLeaves) {
  std::vector<ResourceSpec> resources = {
      {"cpu0", ResourceKind::kCpu, 1.0, 0.0},
      {"cpu1", ResourceKind::kCpu, 1.0, 0.0},
      {"cpu2", ResourceKind::kCpu, 1.0, 0.0}};
  TaskSpec task;
  task.name = "fan";
  task.critical_time_ms = 1000.0;
  task.utility = MakePrototypeUtility();
  task.trigger = TriggerSpec::Periodic(50.0);
  task.subtasks = {{"root", ResourceId(0u), 2.0, 0.0},
                   {"l1", ResourceId(1u), 3.0, 0.0},
                   {"l2", ResourceId(2u), 7.0, 0.0}};
  task.edges = {{0, 1}, {0, 2}};
  auto workload = Workload::Create(std::move(resources), {task});
  ASSERT_TRUE(workload.ok());
  SimConfig config;
  config.duration_ms = 10000.0;
  config.service_jitter = 0.0;
  config.model_background_load = false;
  SystemSimulator simulator(workload.value(), config);
  const SimResult result = simulator.Run({1.0, 1.0, 1.0});
  // Job set latency = root + slowest leaf = 2 + 7.
  EXPECT_NEAR(result.task_latencies[0].Value(0.5), 9.0, 1e-6);
  EXPECT_GT(result.job_sets_completed, 100u);
}

TEST(SystemSimTest, DeterministicPerSeed) {
  const Workload w = OneSubtaskWorkload();
  SimConfig config;
  config.duration_ms = 5000.0;
  config.seed = 77;
  SystemSimulator a(w, config);
  SystemSimulator b(w, config);
  const SimResult ra = a.Run({0.3});
  const SimResult rb = b.Run({0.3});
  EXPECT_EQ(ra.jobs_completed, rb.jobs_completed);
  EXPECT_DOUBLE_EQ(ra.subtask_latencies[0].Value(0.9),
                   rb.subtask_latencies[0].Value(0.9));
}

TEST(SystemSimTest, UndersizedShareGrowsQueue) {
  // Rate 20/s, wcet 5 -> sustainable share 0.1; give far less while a
  // background flow keeps the resource busy (no work-conserving rescue).
  std::vector<ResourceSpec> resources = {{"cpu", ResourceKind::kCpu, 0.5, 0.0}};
  TaskSpec task;
  task.name = "t";
  task.critical_time_ms = 10000.0;
  task.utility = MakePrototypeUtility();
  task.trigger = TriggerSpec::Periodic(50.0);
  task.subtasks = {{"s", ResourceId(0u), 5.0, 0.0}};
  auto workload = Workload::Create(std::move(resources), {task});
  ASSERT_TRUE(workload.ok());
  SimConfig config;
  config.duration_ms = 30000.0;
  config.service_jitter = 0.0;
  SystemSimulator simulator(workload.value(), config);
  // share 0.05 against background 0.5 -> effective rate ~0.09 < demand 0.1.
  const SimResult result = simulator.Run({0.05});
  EXPECT_GT(result.max_queue_length, 5u);
}

TEST(SystemSimTest, PrototypeWorkloadMeasuredBelowModel) {
  // The Sec. 6.3 effect: measured latencies undershoot (wcet+lag)/share.
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  SimConfig config;
  config.duration_ms = 20000.0;
  SystemSimulator simulator(w, config);
  // Uncorrected-optimum shares: fast 0.2857, slow 0.1643.
  std::vector<double> shares(w.subtask_count());
  for (const SubtaskInfo& sub : w.subtasks()) {
    shares[sub.id.value()] = sub.min_share > 0.15 ? 0.2857 : 0.1643;
  }
  const SimResult result = simulator.Run(shares);
  for (const SubtaskInfo& sub : w.subtasks()) {
    const double measured =
        result.subtask_latencies[sub.id.value()].Value(0.95);
    const double predicted = sub.work_ms / shares[sub.id.value()];
    EXPECT_LT(measured, predicted) << sub.name;
    EXPECT_GT(measured, 0.0) << sub.name;
  }
}

TEST(SystemSimTest, SfsCloseToGpsOnAggregate) {
  const Workload w = OneSubtaskWorkload();
  SimConfig gps_config;
  gps_config.duration_ms = 20000.0;
  gps_config.service_jitter = 0.0;
  gps_config.model_background_load = false;
  SimConfig sfs_config = gps_config;
  sfs_config.scheduler = SchedulerKind::kSurplusFair;
  sfs_config.sfs_quantum_ms = 0.5;
  const SimResult gps = SystemSimulator(w, gps_config).Run({0.25});
  const SimResult sfs = SystemSimulator(w, sfs_config).Run({0.25});
  EXPECT_EQ(gps.job_sets_completed, sfs.job_sets_completed);
  EXPECT_NEAR(sfs.subtask_latencies[0].Value(0.5),
              gps.subtask_latencies[0].Value(0.5), 1.0);
}

TEST(SystemSimTest, DeadlineMissAccounting) {
  // Critical time below the achievable latency: every job set misses.
  std::vector<ResourceSpec> resources = {{"cpu", ResourceKind::kCpu, 1.0, 0.0}};
  TaskSpec task;
  task.name = "t";
  task.critical_time_ms = 3.0;  // job needs 5 ms even alone
  task.utility = MakePrototypeUtility();
  task.trigger = TriggerSpec::Periodic(50.0);
  task.subtasks = {{"s", ResourceId(0u), 5.0, 0.0}};
  auto workload = Workload::Create(std::move(resources), {task});
  ASSERT_TRUE(workload.ok());
  SimConfig config;
  config.duration_ms = 10000.0;
  config.service_jitter = 0.0;
  config.model_background_load = false;
  SystemSimulator simulator(workload.value(), config);
  const SimResult result = simulator.Run({1.0});
  EXPECT_EQ(result.deadline_misses[0], result.completed_per_task[0]);
  EXPECT_DOUBLE_EQ(result.MissRatio(TaskId(0u)), 1.0);
}

TEST(SystemSimTest, NoMissesWithGenerousDeadline) {
  const Workload w = OneSubtaskWorkload();
  SimConfig config;
  config.duration_ms = 10000.0;
  config.service_jitter = 0.0;
  config.model_background_load = false;
  SystemSimulator simulator(w, config);
  const SimResult result = simulator.Run({0.25});
  EXPECT_EQ(result.deadline_misses[0], 0u);
  EXPECT_DOUBLE_EQ(result.MissRatio(TaskId(0u)), 0.0);
  EXPECT_GT(result.completed_per_task[0], 100u);
}

TEST(SystemSimTest, ResourceUtilizationMatchesDemand) {
  // wcet 5 every 50 ms -> 10% demand on the CPU.
  const Workload w = OneSubtaskWorkload(/*period_ms=*/50.0);
  SimConfig config;
  config.duration_ms = 60000.0;
  config.service_jitter = 0.0;
  config.model_background_load = false;
  SystemSimulator simulator(w, config);
  const SimResult result = simulator.Run({0.5});
  ASSERT_EQ(result.resource_utilization.size(), 1u);
  EXPECT_NEAR(result.resource_utilization[0], 0.10, 0.005);
}

TEST(SystemSimTest, MetricsMirrorResultCounts) {
  const Workload w = OneSubtaskWorkload();
  SimConfig config;
  config.duration_ms = 5000.0;
  obs::MetricRegistry metrics;
  config.metrics = &metrics;
  SystemSimulator simulator(w, config);
  const SimResult result = simulator.Run({0.25});

  EXPECT_EQ(metrics.GetCounter("sim.jobs_completed")->value(),
            result.jobs_completed);
  EXPECT_EQ(metrics.GetCounter("sim.job_sets_released")->value(),
            result.job_sets_released);
  EXPECT_EQ(metrics.GetCounter("sim.job_sets_completed")->value(),
            result.job_sets_completed);
  EXPECT_GT(result.jobs_completed, 0u);
  EXPECT_EQ(metrics.GetTimer("sim.run")->count(), 1u);
  // A second run on the same registry accumulates rather than resets.
  SystemSimulator again(w, config);
  const SimResult second = again.Run({0.25});
  EXPECT_EQ(metrics.GetCounter("sim.jobs_completed")->value(),
            result.jobs_completed + second.jobs_completed);
  EXPECT_EQ(metrics.GetTimer("sim.run")->count(), 2u);
}

}  // namespace
}  // namespace lla::sim
