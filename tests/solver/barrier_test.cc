#include "solver/barrier.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla {
namespace {

TEST(BarrierTest, InteriorPointIsStrictlyFeasible) {
  RandomWorkloadConfig config;
  config.seed = 11;
  config.target_utilization = 0.7;
  auto workload = MakeRandomWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  BarrierSolver solver(w, model);
  auto interior = solver.FindInteriorPoint();
  ASSERT_TRUE(interior.ok()) << interior.error();
  const auto report = CheckFeasibility(w, model, interior.value(), 0.0);
  EXPECT_TRUE(report.feasible);
  EXPECT_LT(report.max_path_ratio, 1.0);
}

TEST(BarrierTest, SolutionIsFeasible) {
  RandomWorkloadConfig config;
  config.seed = 23;
  config.target_utilization = 0.8;
  auto workload = MakeRandomWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  BarrierSolver solver(w, model);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.error();
  const auto report = CheckFeasibility(w, model, result.value().latencies,
                                       1e-6);
  EXPECT_TRUE(report.feasible);
}

TEST(BarrierTest, RejectsInfeasibleStart) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  BarrierSolver solver(w, model);
  Assignment bad(w.subtask_count(), 0.01);  // absurd shares
  EXPECT_FALSE(solver.SolveFrom(bad).ok());
  Assignment wrong_size(3, 10.0);
  EXPECT_FALSE(solver.SolveFrom(wrong_size).ok());
}

TEST(BarrierTest, MatchesEngineOnSlackWorkload) {
  // On a workload with slack both methods must find the same optimum.
  RandomWorkloadConfig config;
  config.seed = 5;
  config.num_tasks = 3;
  config.target_utilization = 0.75;
  auto workload = MakeRandomWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  BarrierSolver barrier(w, model);
  auto reference = barrier.Solve();
  ASSERT_TRUE(reference.ok()) << reference.error();

  LlaConfig lla_config;
  lla_config.step_policy = StepPolicyKind::kAdaptive;
  lla_config.gamma0 = 3.0;
  LlaEngine engine(w, model, lla_config);
  engine.Run(12000);

  const double engine_utility = engine.TotalUtilityNow();
  const double scale = std::max(1.0, std::fabs(reference.value().utility));
  EXPECT_NEAR(engine_utility, reference.value().utility, 0.01 * scale);
}

TEST(BarrierTest, UtilityNeverBelowInteriorStart) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  SimWorkloadOptions opts;  // defaults
  const Workload& w = workload.value();
  LatencyModel model(w);
  BarrierSolverConfig config;
  BarrierSolver solver(w, model, config);
  auto interior = solver.FindInteriorPoint();
  if (!interior.ok()) GTEST_SKIP() << interior.error();
  const double start_utility =
      TotalUtility(w, interior.value(), config.variant);
  auto result = solver.SolveFrom(interior.value());
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_GE(result.value().utility, start_utility - 1e-6);
}

}  // namespace
}  // namespace lla
