#include "solver/kkt.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "model/trigger.h"
#include "model/utility.h"
#include "workloads/paper.h"

namespace lla {
namespace {

// Hand-constructed optimum: one subtask (work 4) on one resource (B = 1),
// linear utility slope 1, large critical time (path constraint slack).
// With mu = work/lat^2 * ... stationarity: -1 - 0 + mu*4/lat^2 = 0 and the
// resource is saturated: 4/lat = 1 => lat = 4 => mu = lat^2/4 = 4.
Workload OneSubtask() {
  std::vector<ResourceSpec> resources = {{"r0", ResourceKind::kCpu, 1.0, 1.0}};
  TaskSpec task;
  task.name = "t";
  task.critical_time_ms = 100.0;
  task.utility = MakePaperSimUtility(100.0);
  task.trigger = TriggerSpec::Periodic(100.0);
  task.subtasks = {{"s", ResourceId(0u), 3.0, 0.0}};  // work = 4
  auto workload = Workload::Create(std::move(resources), {task});
  EXPECT_TRUE(workload.ok());
  return std::move(workload).value();
}

TEST(KktTest, AcceptsHandComputedOptimum) {
  const Workload w = OneSubtask();
  LatencyModel model(w);
  LatencySolver solver(w, model);
  Assignment lat = {4.0};
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = 4.0;
  const auto report =
      CheckKkt(w, model, solver, lat, prices, UtilityVariant::kPathWeighted);
  EXPECT_TRUE(report.Satisfied(1e-9)) << report.Summary();
}

TEST(KktTest, DetectsWrongPrice) {
  const Workload w = OneSubtask();
  LatencyModel model(w);
  LatencySolver solver(w, model);
  Assignment lat = {4.0};
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = 10.0;  // too expensive: stationarity violated
  const auto report =
      CheckKkt(w, model, solver, lat, prices, UtilityVariant::kPathWeighted);
  EXPECT_GT(report.max_stationarity_violation, 0.1);
}

TEST(KktTest, DetectsPrimalViolation) {
  const Workload w = OneSubtask();
  LatencyModel model(w);
  LatencySolver solver(w, model);
  Assignment lat = {2.0};  // share = 2 > 1
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = 1.0;
  const auto report =
      CheckKkt(w, model, solver, lat, prices, UtilityVariant::kPathWeighted);
  EXPECT_GT(report.max_primal_violation, 0.9);
}

TEST(KktTest, DetectsComplementaritySlackViolation) {
  const Workload w = OneSubtask();
  LatencyModel model(w);
  LatencySolver solver(w, model);
  Assignment lat = {8.0};  // share = 0.5: resource slack 0.5
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = 16.0;  // positive price despite slack
  const auto report =
      CheckKkt(w, model, solver, lat, prices, UtilityVariant::kPathWeighted);
  EXPECT_GT(report.max_complementarity_violation, 1.0);
}

TEST(KktTest, DetectsNegativePrices) {
  const Workload w = OneSubtask();
  LatencyModel model(w);
  LatencySolver solver(w, model);
  Assignment lat = {4.0};
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = -0.5;
  const auto report =
      CheckKkt(w, model, solver, lat, prices, UtilityVariant::kPathWeighted);
  EXPECT_DOUBLE_EQ(report.max_dual_violation, 0.5);
}

TEST(KktTest, EngineConvergedStateSatisfiesKkt) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.convergence.rel_tol = 1e-6;
  LlaEngine engine(w, model, config);
  engine.Run(12000);
  LatencySolver solver(w, model, config.solver);
  const auto report = CheckKkt(w, model, solver, engine.latencies(),
                               engine.prices(), config.solver.variant);
  // The dual iteration converges to the KKT point; tolerances reflect the
  // finite step size.
  EXPECT_LT(report.max_primal_violation, 2e-3) << report.Summary();
  EXPECT_LT(report.max_dual_violation, 1e-12) << report.Summary();
  EXPECT_LT(report.max_stationarity_violation, 0.2) << report.Summary();
  EXPECT_LT(report.max_complementarity_violation, 0.6) << report.Summary();
}

TEST(KktTest, SummaryListsAllResiduals) {
  KktReport report;
  report.max_stationarity_violation = 1.0;
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("stationarity"), std::string::npos);
  EXPECT_NE(summary.find("primal"), std::string::npos);
  EXPECT_NE(summary.find("dual"), std::string::npos);
  EXPECT_NE(summary.find("complementarity"), std::string::npos);
}

}  // namespace
}  // namespace lla
