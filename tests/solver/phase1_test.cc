#include "solver/phase1.h"

#include <gtest/gtest.h>

#include "solver/barrier.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla {
namespace {

TEST(Phase1Test, FindsInteriorOnSlackWorkload) {
  RandomWorkloadConfig config;
  config.seed = 5;
  config.target_utilization = 0.7;
  auto workload = MakeRandomWorkload(config);
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  Phase1Solver solver(w, model);
  const Phase1Result result = solver.Solve();
  EXPECT_TRUE(result.strictly_feasible);
  EXPECT_LT(result.max_violation, 0.0);
  const auto report = CheckFeasibility(w, model, result.latencies, 0.0);
  EXPECT_TRUE(report.feasible);
}

TEST(Phase1Test, FindsInteriorOnTightPaperWorkload) {
  // The Table 1 workload sits exactly at capacity; the scaled equal-split
  // witness fails but a strictly interior point exists and Phase-I must
  // find it.
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  Phase1Solver solver(w, model);
  const Phase1Result result = solver.Solve();
  EXPECT_TRUE(result.strictly_feasible)
      << "residual " << result.max_violation;
}

TEST(Phase1Test, CertifiesInfeasibleWorkload) {
  // Figure 7's unschedulable instance: Phase-I cannot reach a negative
  // violation.
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/false);
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  Phase1Solver solver(w, model);
  const Phase1Result result = solver.Solve();
  EXPECT_FALSE(result.strictly_feasible);
  EXPECT_GT(result.max_violation, 0.01);
}

TEST(Phase1Test, BarrierUsesPhase1Fallback) {
  // End to end: BarrierSolver now solves the exactly-at-capacity paper
  // workload via the Phase-I interior point.
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  BarrierSolver barrier(w, model);
  auto interior = barrier.FindInteriorPoint();
  ASSERT_TRUE(interior.ok()) << interior.error();
  auto result = barrier.Solve();
  ASSERT_TRUE(result.ok()) << result.error();
  // The optimum should be at least as good as LLA's converged value
  // (engine reaches ~ -75.93 on this instance; allow numerical slack).
  EXPECT_GT(result.value().utility, -78.0);
  EXPECT_LT(result.value().utility, -74.0);
}

// Property: Phase-I verdict agrees with the generator's constructive
// schedulability across seeds and utilizations.
struct Phase1Case {
  std::uint64_t seed;
  double utilization;
  bool expect_feasible;
};

void PrintTo(const Phase1Case& c, std::ostream* os) {
  *os << "seed=" << c.seed << "_util=" << c.utilization;
}

class Phase1Agreement : public ::testing::TestWithParam<Phase1Case> {};

TEST_P(Phase1Agreement, VerdictMatchesConstruction) {
  const Phase1Case& param = GetParam();
  RandomWorkloadConfig config;
  config.seed = param.seed;
  config.target_utilization = param.utilization;
  auto workload = MakeRandomWorkload(config);
  ASSERT_TRUE(workload.ok());
  LatencyModel model(workload.value());
  Phase1Solver solver(workload.value(), model);
  const Phase1Result result = solver.Solve();
  EXPECT_EQ(result.strictly_feasible, param.expect_feasible)
      << "residual " << result.max_violation;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Phase1Agreement,
    ::testing::Values(Phase1Case{301, 0.5, true}, Phase1Case{302, 0.7, true},
                      Phase1Case{303, 0.9, true},
                      // target > 1 overconstrains deadlines below the
                      // equal-split witness -> infeasible by construction
                      // is not guaranteed, but 2.5x is far past capacity.
                      Phase1Case{304, 2.5, false},
                      Phase1Case{305, 3.0, false}));

}  // namespace
}  // namespace lla
