// End-to-end tests for the `lla` binary: the documented exit-code scheme
// (0 success, 2 usage, 3 load error, 4 not converged/infeasible) and the
// `trace` subcommand's JSONL output.  The binary path is injected by CMake
// via LLA_CLI_PATH; commands run through std::system with streams redirected
// to files under the build tree.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

const char* kCli = LLA_CLI_PATH;
const char* kPaperWorkload = LLA_SOURCE_DIR "/examples/data/paper_table1.lla";

// Runs `lla <args>` with stdout/stderr discarded and returns the exit code,
// or -1 if the shell could not launch it.
int RunCli(const std::string& args) {
  const std::string command =
      std::string(kCli) + " " + args + " >/dev/null 2>/dev/null";
  const int status = std::system(command.c_str());
  if (status < 0) return -1;
#ifdef WIFEXITED
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
#else
  return status;
#endif
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CliTest, SolveSucceedsOnPaperWorkload) {
  EXPECT_EQ(RunCli(std::string("solve ") + kPaperWorkload), 0);
}

TEST(CliTest, UsageErrorsReturnTwo) {
  EXPECT_EQ(RunCli(""), 2);                                    // no command
  EXPECT_EQ(RunCli("frobnicate x"), 2);                        // unknown verb
  EXPECT_EQ(RunCli(std::string("solve ") + kPaperWorkload +
                   " --bad-flag"), 2);                         // unknown flag
  EXPECT_EQ(RunCli(std::string("solve ") + kPaperWorkload +
                   " --iters 0"), 2);                          // bad value
}

TEST(CliTest, ThreadsFlagAcceptedOnSolveAndTrace) {
  EXPECT_EQ(RunCli(std::string("solve ") + kPaperWorkload + " --threads=4"),
            0);
  EXPECT_EQ(RunCli(std::string("solve ") + kPaperWorkload + " --threads 2"),
            0);
  const std::string out = ::testing::TempDir() + "/cli_trace_threads.jsonl";
  std::remove(out.c_str());
  EXPECT_EQ(RunCli(std::string("trace ") + kPaperWorkload + " --threads=4" +
                   " --out " + out),
            0);
  std::remove(out.c_str());
}

TEST(CliTest, InvalidThreadsValueReturnsTwo) {
  const std::string solve = std::string("solve ") + kPaperWorkload;
  EXPECT_EQ(RunCli(solve + " --threads=0"), 2);      // below minimum
  EXPECT_EQ(RunCli(solve + " --threads=-2"), 2);     // negative
  EXPECT_EQ(RunCli(solve + " --threads=abc"), 2);    // not a number
  EXPECT_EQ(RunCli(solve + " --threads=4x"), 2);     // trailing garbage
  EXPECT_EQ(RunCli(solve + " --threads="), 2);       // empty value
  EXPECT_EQ(RunCli(solve + " --threads"), 2);        // missing value
  EXPECT_EQ(RunCli(solve + " --threads=99999"), 2);  // above sane cap
  EXPECT_EQ(RunCli(std::string("trace ") + kPaperWorkload + " --threads=0"),
            2);
}

TEST(CliTest, DuplicateThreadsFlagReturnsTwo) {
  // A repeated --threads is ambiguous; the CLI rejects it rather than
  // silently letting the last occurrence win.
  const std::string solve = std::string("solve ") + kPaperWorkload;
  EXPECT_EQ(RunCli(solve + " --threads=2 --threads=4"), 2);
  EXPECT_EQ(RunCli(solve + " --threads 2 --threads=2"), 2);  // same value too
  EXPECT_EQ(RunCli(solve + " --threads=2 --threads 4"), 2);  // mixed forms
}

TEST(CliTest, EpsilonQuiescenceFlagAcceptedOnSolve) {
  const std::string solve = std::string("solve ") + kPaperWorkload;
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence=1e-3"), 0);
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence 1e-4"), 0);  // space form
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence=0"), 0);     // exact mode
}

TEST(CliTest, InvalidEpsilonQuiescenceValueReturnsTwo) {
  const std::string solve = std::string("solve ") + kPaperWorkload;
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence=-0.1"), 2);  // negative
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence=-1"), 2);    // negative
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence=1"), 2);     // >= 1
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence=1.5"), 2);   // >= 1
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence=abc"), 2);   // not a number
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence=1e-3x"), 2); // garbage
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence="), 2);      // empty value
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence"), 2);       // missing
  EXPECT_EQ(RunCli(solve + " --epsilon-quiescence=nan"), 2);   // not finite
}

TEST(CliTest, DynamicsFlagAcceptedOnSolve) {
  const std::string solve = std::string("solve ") + kPaperWorkload;
  EXPECT_EQ(RunCli(solve + " --dynamics=plain"), 0);
  EXPECT_EQ(RunCli(solve + " --dynamics=heavy-ball"), 0);
  EXPECT_EQ(RunCli(solve + " --dynamics=nesterov"), 0);
  EXPECT_EQ(RunCli(solve + " --dynamics heavy-ball"), 0);  // space form
  EXPECT_EQ(RunCli(solve + " --dynamics=heavy-ball --momentum=0.8"), 0);
  EXPECT_EQ(RunCli(solve + " --dynamics=nesterov --momentum 0.5"), 0);
  EXPECT_EQ(RunCli(solve + " --momentum=0"), 0);  // beta 0 == plain
}

TEST(CliTest, InvalidDynamicsOrMomentumValueReturnsTwo) {
  const std::string solve = std::string("solve ") + kPaperWorkload;
  EXPECT_EQ(RunCli(solve + " --dynamics=adam"), 2);      // unknown policy
  EXPECT_EQ(RunCli(solve + " --dynamics="), 2);          // empty value
  EXPECT_EQ(RunCli(solve + " --dynamics"), 2);           // missing value
  EXPECT_EQ(RunCli(solve + " --momentum=1"), 2);         // beta must be < 1
  EXPECT_EQ(RunCli(solve + " --momentum=1.5"), 2);       // out of range
  EXPECT_EQ(RunCli(solve + " --momentum=-0.1"), 2);      // negative
  EXPECT_EQ(RunCli(solve + " --momentum=abc"), 2);       // not a number
  EXPECT_EQ(RunCli(solve + " --momentum=0.9x"), 2);      // garbage suffix
  EXPECT_EQ(RunCli(solve + " --momentum="), 2);          // empty value
  EXPECT_EQ(RunCli(solve + " --momentum"), 2);           // missing value
  EXPECT_EQ(RunCli(solve + " --momentum=nan"), 2);       // not finite
}

TEST(CliTest, RoundThreadsAcceptsDynamicsFlags) {
  // --dynamics/--momentum are valid on BOTH paths: the engine and the
  // --round-threads distributed deployment (they configure the shard
  // agents' accelerated mu updates, DESIGN.md §7.12).
  const std::string solve = std::string("solve ") + kPaperWorkload;
  EXPECT_EQ(RunCli(solve + " --round-threads=1"), 0);
  EXPECT_EQ(RunCli(solve + " --round-threads=2 --dynamics=heavy-ball "
                           "--momentum=0.7"),
            0);
  EXPECT_EQ(RunCli(solve + " --round-threads=1 --dynamics=nesterov"), 0);
  // Engine-only flags stay rejected on the distributed path.
  EXPECT_EQ(RunCli(solve + " --round-threads=2 --threads=2"), 2);
  EXPECT_EQ(RunCli(solve + " --round-threads=2 --epsilon-quiescence=1e-4"), 2);
  // Bad dynamics values are usage errors here too.
  EXPECT_EQ(RunCli(solve + " --round-threads=2 --dynamics=adam"), 2);
  EXPECT_EQ(RunCli(solve + " --round-threads=2 --momentum=1.5"), 2);
}

TEST(CliTest, CheckpointThenRestoreRoundTrips) {
  const std::string snap = ::testing::TempDir() + "/cli_state.snap";
  std::remove(snap.c_str());
  ASSERT_EQ(RunCli(std::string("checkpoint ") + kPaperWorkload + " " + snap +
                   " --iters 50"),
            0);
  EXPECT_NE(ReadFile(snap).find("snapshot v2"), std::string::npos);
  // Resuming the dual iteration from the mid-run snapshot converges.
  EXPECT_EQ(RunCli(std::string("solve ") + kPaperWorkload +
                   " --restore=" + snap),
            0);
  std::remove(snap.c_str());
}

// --format=binary writes a b1 image (magic bytes, no text header), and
// `solve --restore=` sniffs the format — the same restore flag consumes
// either encoding with no extra flag.
TEST(CliTest, BinaryCheckpointRestoresThroughAutoDetection) {
  const std::string snap = ::testing::TempDir() + "/cli_state_b1.snap";
  std::remove(snap.c_str());
  ASSERT_EQ(RunCli(std::string("checkpoint ") + kPaperWorkload + " " + snap +
                   " --iters 50 --format=binary"),
            0);
  const std::string bytes = ReadFile(snap);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.compare(0, 8, "LLASNAPB"), 0);
  EXPECT_EQ(bytes.find("snapshot v"), std::string::npos);
  EXPECT_EQ(RunCli(std::string("solve ") + kPaperWorkload +
                   " --restore=" + snap),
            0);
  std::remove(snap.c_str());
}

// --format=text is the explicit spelling of the default.
TEST(CliTest, TextFormatFlagMatchesDefault) {
  const std::string snap = ::testing::TempDir() + "/cli_state_text.snap";
  std::remove(snap.c_str());
  ASSERT_EQ(RunCli(std::string("checkpoint ") + kPaperWorkload + " " + snap +
                   " --iters 50 --format=text"),
            0);
  EXPECT_NE(ReadFile(snap).find("snapshot v2"), std::string::npos);
  std::remove(snap.c_str());
}

TEST(CliTest, InvalidFormatValueReturnsTwo) {
  const std::string checkpoint = std::string("checkpoint ") + kPaperWorkload +
                                 " " + ::testing::TempDir() +
                                 "/cli_fmt.snap --iters 5";
  EXPECT_EQ(RunCli(checkpoint + " --format=json"), 2);   // unknown format
  EXPECT_EQ(RunCli(checkpoint + " --format=Binary"), 2); // case-sensitive
  EXPECT_EQ(RunCli(checkpoint + " --format="), 2);       // empty value
  EXPECT_EQ(RunCli(checkpoint + " --format"), 2);        // missing value
  // --format belongs to checkpoint, not solve.
  EXPECT_EQ(RunCli(std::string("solve ") + kPaperWorkload +
                   " --format=binary"),
            2);
}

TEST(CliTest, CheckpointAndRestoreErrors) {
  EXPECT_EQ(RunCli(std::string("checkpoint ") + kPaperWorkload), 2);
  EXPECT_EQ(RunCli(std::string("checkpoint ") + kPaperWorkload +
                   " --iters 5"),
            2);  // flag where the snapshot path belongs
  const std::string solve = std::string("solve ") + kPaperWorkload;
  EXPECT_EQ(RunCli(solve + " --restore="), 2);  // empty path
  EXPECT_EQ(RunCli(solve + " --restore=/nonexistent/state.snap"), 3);

  // A corrupt snapshot is a load error (3), not a crash.
  const std::string bad = ::testing::TempDir() + "/cli_bad.snap";
  std::ofstream(bad) << "snapshot v1\nshape 1 1\n";  // malformed shape line
  EXPECT_EQ(RunCli(solve + " --restore=" + bad), 3);

  // So is a truncated binary snapshot (valid magic, cut-off body).
  std::ofstream(bad, std::ios::binary) << "LLASNAPB\x01";
  EXPECT_EQ(RunCli(solve + " --restore=" + bad), 3);
  std::remove(bad.c_str());
}

TEST(CliTest, LoadErrorsReturnThree) {
  EXPECT_EQ(RunCli("describe /nonexistent/workload.lla"), 3);
  EXPECT_EQ(RunCli("solve /nonexistent/workload.lla"), 3);
}

TEST(CliTest, NotConvergedReturnsFour) {
  // Three iterations cannot converge on the paper workload.
  EXPECT_EQ(RunCli(std::string("solve ") + kPaperWorkload + " --iters 3"), 4);
}

TEST(CliTest, TraceEmitsJsonlAndConverges) {
  const std::string out = ::testing::TempDir() + "/cli_trace.jsonl";
  std::remove(out.c_str());
  ASSERT_EQ(RunCli(std::string("trace ") + kPaperWorkload + " --out " + out),
            0);

  const std::string jsonl = ReadFile(out);
  ASSERT_FALSE(jsonl.empty());
  // First record opens the run, last closes it.
  EXPECT_EQ(jsonl.find("{\"type\":\"run_begin\""), 0u);
  EXPECT_NE(jsonl.find("\"type\":\"run_end\""), std::string::npos);
  // Per-iteration records carry the series the figures need.
  EXPECT_NE(jsonl.find("\"type\":\"iteration\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"total_utility\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"resource_share_sums\":["), std::string::npos);
  EXPECT_NE(jsonl.find("\"resource_mu\":["), std::string::npos);

  // Iterations are 1-based, one JSON object per line, ending with run_end.
  std::istringstream lines(jsonl);
  std::string line;
  int records = 0;
  std::string last;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++records;
    last = line;
  }
  EXPECT_GT(records, 3);
  EXPECT_NE(last.find("run_end"), std::string::npos);
  std::remove(out.c_str());
}

TEST(CliTest, TraceWithDynamicsEmitsMomentumDiagnostics) {
  const std::string out = ::testing::TempDir() + "/cli_trace_momentum.jsonl";
  std::remove(out.c_str());
  ASSERT_EQ(RunCli(std::string("trace ") + kPaperWorkload +
                   " --dynamics=heavy-ball --momentum=0.9 --out " + out),
            0);
  const std::string jsonl = ReadFile(out);
  // Divergence must be diagnosable from the JSONL alone: every iteration
  // record carries the per-step restart count and the effective beta.
  EXPECT_NE(jsonl.find("\"momentum_restarts\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"effective_beta\":"), std::string::npos);
  std::remove(out.c_str());

  // Plain dynamics omit the momentum fields entirely.
  ASSERT_EQ(RunCli(std::string("trace ") + kPaperWorkload + " --out " + out),
            0);
  EXPECT_EQ(ReadFile(out).find("momentum_restarts"), std::string::npos);
  std::remove(out.c_str());
}

TEST(CliTest, TraceNotConvergedReturnsFour) {
  const std::string out = ::testing::TempDir() + "/cli_trace_short.jsonl";
  EXPECT_EQ(RunCli(std::string("trace ") + kPaperWorkload +
                   " --iters 3 --out " + out),
            4);
  std::remove(out.c_str());
}

TEST(CliTest, ChurnRunsAMutationStorm) {
  EXPECT_EQ(RunCli(std::string("churn ") + kPaperWorkload +
                   " --mutations=12 --seed=5 --threads=2"),
            0);
}

TEST(CliTest, ChurnFlagErrorsReturnTwo) {
  const std::string churn = std::string("churn ") + kPaperWorkload;
  EXPECT_EQ(RunCli(churn + " --mutations=0"), 2);   // below minimum
  EXPECT_EQ(RunCli(churn + " --threads=0"), 2);     // invalid thread count
  EXPECT_EQ(RunCli(churn + " --bogus-flag"), 2);    // unknown flag
}

}  // namespace
