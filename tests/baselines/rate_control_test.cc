#include "baselines/rate_control.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/paper.h"

namespace lla::baselines {
namespace {

TEST(RateControlTest, DrivesBottleneckToSetpoint) {
  // Prototype workload: nominal utilization 0.66 on every CPU (below the
  // normalized setpoint 0.7 * 0.9 = 0.63 -> slightly above, so rates are
  // throttled marginally until the bottleneck hits the setpoint).
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  RateControlConfig config;
  config.utilization_setpoint = 0.7;
  const RateControlResult result =
      RunRateControl(w, model, UtilityVariant::kPathWeighted, config);
  EXPECT_TRUE(result.converged);
  double bottleneck = 0.0;
  for (const ResourceInfo& resource : w.resources()) {
    bottleneck = std::max(bottleneck,
                          result.utilization[resource.id.value()] /
                              resource.capacity);
  }
  EXPECT_NEAR(bottleneck, 0.7, 0.02);
}

TEST(RateControlTest, ThrottlesOverload) {
  // Double the prototype's fast rates: nominal utilization 1.06 > 1.
  PrototypeWorkloadOptions opts;
  opts.fast_rate_per_s = 80.0;
  auto workload = MakePrototypeWorkload(opts);
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  const RateControlResult result =
      RunRateControl(w, model, UtilityVariant::kPathWeighted);
  EXPECT_LT(result.throughput_ratio, 1.0);
  for (const ResourceInfo& resource : w.resources()) {
    EXPECT_LE(result.utilization[resource.id.value()],
              resource.capacity + 1e-6);
  }
}

TEST(RateControlTest, RespectsRateBounds) {
  PrototypeWorkloadOptions opts;
  opts.fast_rate_per_s = 160.0;  // hopeless overload
  auto workload = MakePrototypeWorkload(opts);
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  RateControlConfig config;
  config.rate_min_factor = 0.25;
  const RateControlResult result =
      RunRateControl(w, model, UtilityVariant::kPathWeighted, config);
  for (const TaskInfo& task : w.tasks()) {
    const double nominal = task.trigger.MeanRatePerSecond();
    EXPECT_GE(result.rates[task.id.value()], 0.25 * nominal - 1e-9);
    EXPECT_LE(result.rates[task.id.value()], nominal + 1e-9);
  }
}

TEST(RateControlTest, MissesDeadlinesOnLatencyConstrainedWorkload) {
  // The paper's core distinction (Sec. 7): utilization control has no
  // latency objective.  The Table 1 workload is latency-constrained, not
  // utilization-constrained (nominal utilization ~0.07 per resource), so
  // rate control happily keeps full throughput — and its utilization-
  // proportional allocation blows through the critical times that LLA's
  // converged assignment respects.
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);

  LlaConfig lla_config;
  lla_config.step_policy = StepPolicyKind::kAdaptive;
  lla_config.gamma0 = 3.0;
  lla_config.record_history = false;
  LlaEngine engine(w, model, lla_config);
  const RunResult lla = engine.Run(12000);
  ASSERT_TRUE(lla.converged);
  EXPECT_TRUE(lla.final_feasibility.feasible);

  const RateControlResult rate =
      RunRateControl(w, model, UtilityVariant::kPathWeighted);
  EXPECT_NEAR(rate.throughput_ratio, 1.0, 1e-6);
  EXPECT_FALSE(rate.deadlines_met);
  // Its (infeasible) utility is not comparable; among *feasible*
  // assignments LLA is optimal by the property suite.
}

TEST(RateControlTest, DeterministicAndIdempotent) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  const RateControlResult a =
      RunRateControl(w, model, UtilityVariant::kSum);
  const RateControlResult b =
      RunRateControl(w, model, UtilityVariant::kSum);
  EXPECT_EQ(a.rates, b.rates);
  EXPECT_DOUBLE_EQ(a.utility, b.utility);
}

}  // namespace
}  // namespace lla::baselines
