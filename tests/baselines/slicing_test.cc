#include "baselines/slicing.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla::baselines {
namespace {

TEST(SlicingTest, EqualSliceMeetsDeadlinesByConstruction) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const Assignment latencies = Slice(w, SlicingPolicy::kEqual);
  for (const PathInfo& path : w.paths()) {
    EXPECT_LE(PathLatency(w, path.id, latencies),
              path.critical_time_ms * (1.0 + 1e-9));
  }
}

TEST(SlicingTest, EqualSliceChainSplitsEvenly) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const Assignment latencies = Slice(w, SlicingPolicy::kEqual);
  // Task 3 is a 6-hop chain with C = 53: every subtask gets 53/6.
  for (unsigned s = 15; s < 21; ++s) {
    EXPECT_NEAR(latencies[s], 53.0 / 6.0, 1e-12);
  }
}

TEST(SlicingTest, WcetProportionalMeetsDeadlines) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const Assignment latencies = Slice(w, SlicingPolicy::kWcetProportional);
  for (const PathInfo& path : w.paths()) {
    EXPECT_LE(PathLatency(w, path.id, latencies),
              path.critical_time_ms * (1.0 + 1e-9));
  }
  // Heavier subtasks get more budget: T25 (wcet 7) vs T27 (wcet 2).
  EXPECT_GT(latencies[11], latencies[13]);
}

TEST(SlicingTest, LaxityFairMeetsDeadlines) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const Assignment latencies = Slice(w, SlicingPolicy::kLaxityFair);
  for (const PathInfo& path : w.paths()) {
    EXPECT_LE(PathLatency(w, path.id, latencies),
              path.critical_time_ms * (1.0 + 1e-6));
  }
  // Every latency covers at least the work term.
  for (const SubtaskInfo& sub : w.subtasks()) {
    EXPECT_GE(latencies[sub.id.value()], sub.work_ms);
  }
}

TEST(SlicingTest, RepairFixesOverloadOnSlackWorkload) {
  RandomWorkloadConfig config;
  config.seed = 31;
  config.target_utilization = 0.6;
  auto workload = MakeRandomWorkload(config);
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  for (SlicingPolicy policy :
       {SlicingPolicy::kEqual, SlicingPolicy::kWcetProportional,
        SlicingPolicy::kLaxityFair}) {
    const BaselineResult result = EvaluateBaseline(
        w, model, policy, UtilityVariant::kPathWeighted, /*repair=*/true);
    EXPECT_TRUE(result.feasible) << ToString(policy);
  }
}

TEST(SlicingTest, LlaBeatsAllBaselines) {
  // The headline comparison: LLA's optimized assignment dominates every
  // offline slicing baseline on utility (it optimizes exactly that).
  RandomWorkloadConfig config;
  config.seed = 47;
  config.target_utilization = 0.7;
  auto workload = MakeRandomWorkload(config);
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);

  LlaConfig lla_config;
  lla_config.step_policy = StepPolicyKind::kAdaptive;
  lla_config.gamma0 = 3.0;
  lla_config.record_history = false;
  LlaEngine engine(w, model, lla_config);
  const RunResult run = engine.Run(12000);
  ASSERT_TRUE(run.converged);

  for (SlicingPolicy policy :
       {SlicingPolicy::kEqual, SlicingPolicy::kWcetProportional,
        SlicingPolicy::kLaxityFair}) {
    const BaselineResult baseline = EvaluateBaseline(
        w, model, policy, UtilityVariant::kPathWeighted);
    if (!baseline.feasible) continue;  // infeasible baselines lose by default
    EXPECT_GE(run.final_utility, baseline.utility - 1e-6)
        << ToString(policy);
  }
}

TEST(SlicingTest, PolicyNames) {
  EXPECT_STREQ(ToString(SlicingPolicy::kEqual), "equal-slice");
  EXPECT_STREQ(ToString(SlicingPolicy::kWcetProportional),
               "wcet-proportional");
  EXPECT_STREQ(ToString(SlicingPolicy::kLaxityFair), "laxity-fair");
}

}  // namespace
}  // namespace lla::baselines
