#include "core/price_update.h"

#include <gtest/gtest.h>

#include "model/trigger.h"
#include "model/utility.h"

namespace lla {
namespace {

// One resource (B = 1, lag 0), one chain task of two subtasks (the second on
// a different resource so the first resource's arithmetic stays simple).
Workload MakeFixture(double capacity0 = 1.0) {
  std::vector<ResourceSpec> resources = {
      {"r0", ResourceKind::kCpu, capacity0, 0.0},
      {"r1", ResourceKind::kCpu, 1.0, 0.0}};
  TaskSpec task;
  task.name = "t";
  task.critical_time_ms = 20.0;
  task.utility = MakePaperSimUtility(20.0);
  task.trigger = TriggerSpec::Periodic(100.0);
  task.subtasks = {{"a", ResourceId(0u), 4.0, 0.0},
                   {"b", ResourceId(1u), 2.0, 0.0}};
  task.edges = {{0, 1}};
  auto workload = Workload::Create(std::move(resources), {task});
  EXPECT_TRUE(workload.ok()) << workload.error();
  return std::move(workload).value();
}

StepSizes UniformSteps(const Workload& w, double gamma) {
  StepSizes steps;
  steps.resource.assign(w.resource_count(), gamma);
  steps.path.assign(w.path_count(), gamma);
  return steps;
}

TEST(PriceUpdateTest, ResourcePriceRisesUnderCongestion) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  PriceUpdater updater(w, model);
  PriceVector prices = PriceVector::Zero(w);
  // lat_a = 2 -> share 2.0 on r0: excess 1.0.
  const Assignment lat = {2.0, 4.0};
  updater.UpdateResourcePrices(lat, UniformSteps(w, 0.5), &prices);
  // mu = 0 - 0.5 * (1 - 2) = 0.5.
  EXPECT_DOUBLE_EQ(prices.mu[0], 0.5);
  // r1: share 0.5, slack 0.5, price stays projected at 0.
  EXPECT_DOUBLE_EQ(prices.mu[1], 0.0);
}

TEST(PriceUpdateTest, ResourcePriceDecaysWithSlack) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  PriceUpdater updater(w, model);
  PriceVector prices = PriceVector::Zero(w);
  prices.mu = {2.0, 2.0};
  const Assignment lat = {8.0, 4.0};  // shares 0.5 each, slack 0.5
  updater.UpdateResourcePrices(lat, UniformSteps(w, 1.0), &prices);
  EXPECT_DOUBLE_EQ(prices.mu[0], 1.5);
  EXPECT_DOUBLE_EQ(prices.mu[1], 1.5);
}

TEST(PriceUpdateTest, ProjectionKeepsPricesNonNegative) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  PriceUpdater updater(w, model);
  PriceVector prices = PriceVector::Zero(w);
  prices.mu = {0.1, 0.0};
  const Assignment lat = {8.0, 4.0};  // slack 0.5 on both
  updater.UpdateResourcePrices(lat, UniformSteps(w, 10.0), &prices);
  EXPECT_DOUBLE_EQ(prices.mu[0], 0.0);
  EXPECT_DOUBLE_EQ(prices.mu[1], 0.0);
}

TEST(PriceUpdateTest, PathPriceFollowsNormalizedSlack) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  PriceUpdater updater(w, model);
  PriceVector prices = PriceVector::Zero(w);
  // Path latency 30 vs C = 20: violation by 50%.
  const Assignment lat = {20.0, 10.0};
  updater.UpdatePathPrices(lat, UniformSteps(w, 2.0), &prices);
  // lambda = 0 - 2 * (1 - 30/20) = 1.0.
  EXPECT_DOUBLE_EQ(prices.lambda[0], 1.0);
}

TEST(PriceUpdateTest, PathPriceDecaysWhenMeetingDeadline) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  PriceUpdater updater(w, model);
  PriceVector prices = PriceVector::Zero(w);
  prices.lambda[0] = 1.0;
  const Assignment lat = {5.0, 5.0};  // latency 10, slack 50%
  updater.UpdatePathPrices(lat, UniformSteps(w, 1.0), &prices);
  EXPECT_DOUBLE_EQ(prices.lambda[0], 0.5);
}

TEST(PriceUpdateTest, CongestionFlags) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  PriceUpdater updater(w, model);
  const Assignment congested = {2.0, 4.0};  // r0 share 2.0 > 1
  auto flags = updater.ResourceCongestion(congested);
  EXPECT_TRUE(flags[0]);
  EXPECT_FALSE(flags[1]);
  const Assignment ok = {8.0, 4.0};
  flags = updater.ResourceCongestion(ok);
  EXPECT_FALSE(flags[0]);
  EXPECT_FALSE(flags[1]);
}

TEST(PriceUpdateTest, ExactBoundaryIsNotCongested) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  PriceUpdater updater(w, model);
  const Assignment boundary = {4.0, 4.0};  // share exactly 1.0 on r0
  EXPECT_FALSE(updater.ResourceCongestion(boundary)[0]);
  // And the price update leaves mu unchanged (zero gradient).
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = 3.0;
  updater.UpdateResourcePrices(boundary, UniformSteps(w, 1.0), &prices);
  EXPECT_DOUBLE_EQ(prices.mu[0], 3.0);
}

TEST(PriceUpdateTest, RespectsReducedCapacity) {
  const Workload w = MakeFixture(/*capacity0=*/0.5);
  LatencyModel model(w);
  PriceUpdater updater(w, model);
  const Assignment lat = {8.0, 4.0};  // share 0.5 on r0 == B_r
  EXPECT_FALSE(updater.ResourceCongestion(lat)[0]);
  const Assignment over = {7.0, 4.0};  // share 4/7 > 0.5
  EXPECT_TRUE(updater.ResourceCongestion(over)[0]);
}

TEST(PriceUpdateTest, CorrectedModelChangesShareSums) {
  const Workload w = MakeFixture();
  LatencyModel model(w);
  PriceUpdater updater(w, model);
  const Assignment lat = {3.0, 4.0};  // share 4/3 > 1: congested
  EXPECT_TRUE(updater.ResourceCongestion(lat)[0]);
  // With error -3, share = 4/(3+3) = 0.67: no longer congested.
  model.SetAdditiveError(SubtaskId(0u), -3.0);
  EXPECT_FALSE(updater.ResourceCongestion(lat)[0]);
}

}  // namespace
}  // namespace lla
