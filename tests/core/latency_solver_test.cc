#include "core/latency_solver.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/math.h"
#include "model/trigger.h"
#include "model/utility.h"
#include "workloads/paper.h"

namespace lla {
namespace {

// Single task, single subtask on one resource: the solver must reproduce the
// closed form lat = sqrt(mu * work / (w + Lambda)).
Workload OneSubtaskWorkload(UtilityPtr utility, double min_share = 0.0) {
  std::vector<ResourceSpec> resources = {{"r0", ResourceKind::kCpu, 1.0, 1.0}};
  TaskSpec task;
  task.name = "t";
  task.critical_time_ms = 100.0;
  task.utility = std::move(utility);
  task.trigger = TriggerSpec::Periodic(100.0);
  task.subtasks = {{"s", ResourceId(0u), 3.0, min_share}};  // work = 4
  auto workload = Workload::Create(std::move(resources), {task});
  EXPECT_TRUE(workload.ok()) << workload.error();
  return std::move(workload).value();
}

TEST(LatencySolverTest, ClosedFormLinearUtility) {
  const Workload w = OneSubtaskWorkload(MakePaperSimUtility(100.0));
  LatencyModel model(w);
  LatencySolver solver(w, model);
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = 25.0;
  prices.lambda[0] = 0.0;
  Assignment lat(1, 0.0);
  solver.SolveAll(prices, &lat);
  // lat = sqrt(mu * work / (w + Lambda)) = sqrt(25*4/1) = 10.
  EXPECT_NEAR(lat[0], 10.0, 1e-12);
}

TEST(LatencySolverTest, PathPriceEntersDenominator) {
  const Workload w = OneSubtaskWorkload(MakePaperSimUtility(100.0));
  LatencyModel model(w);
  LatencySolver solver(w, model);
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = 25.0;
  prices.lambda[0] = 3.0;
  Assignment lat(1, 0.0);
  solver.SolveAll(prices, &lat);
  // sqrt(25*4/(1+3)) = 5.
  EXPECT_NEAR(lat[0], 5.0, 1e-12);
}

TEST(LatencySolverTest, ZeroResourcePriceDrivesLatencyToFloor) {
  const Workload w = OneSubtaskWorkload(MakePaperSimUtility(100.0));
  LatencyModel model(w);
  LatencySolver solver(w, model);
  const PriceVector prices = PriceVector::Zero(w);
  Assignment lat(1, 0.0);
  solver.SolveAll(prices, &lat);
  // Free resource + positive pressure: grab the whole capacity.
  EXPECT_NEAR(lat[0], solver.LatLo(SubtaskId(0u)), 1e-12);
  EXPECT_NEAR(lat[0], 4.0, 1e-12);  // share = work/lat = 1.0 = capacity
}

TEST(LatencySolverTest, FlatUtilityReleasesResource) {
  // Constant utility, no path pressure: latency goes to its cap.
  const Workload w =
      OneSubtaskWorkload(std::make_shared<LinearUtility>(10.0, 0.0));
  LatencyModel model(w);
  LatencySolver solver(w, model);
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = 25.0;
  Assignment lat(1, 0.0);
  solver.SolveAll(prices, &lat);
  EXPECT_NEAR(lat[0], solver.LatHi(SubtaskId(0u)), 1e-12);
}

TEST(LatencySolverTest, MinShareFloorCapsLatency) {
  const Workload w =
      OneSubtaskWorkload(MakePaperSimUtility(100.0), /*min_share=*/0.2);
  LatencyModel model(w);
  LatencySolver solver(w, model);
  // LatHi = work / min_share = 20.
  EXPECT_NEAR(solver.LatHi(SubtaskId(0u)), 20.0, 1e-12);
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = 1e6;  // enormous price wants a huge latency
  Assignment lat(1, 0.0);
  solver.SolveAll(prices, &lat);
  EXPECT_NEAR(lat[0], 20.0, 1e-12);
}

TEST(LatencySolverTest, BoundsAreOrdered) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LatencySolver solver(w, model);
  for (const SubtaskInfo& sub : w.subtasks()) {
    EXPECT_GT(solver.LatLo(sub.id), 0.0);
    EXPECT_LE(solver.LatLo(sub.id), solver.LatHi(sub.id));
  }
}

// Stationarity property: at the solver's output, each interior latency is a
// true maximizer of the per-subtask Lagrangian term
//   L_s(lat) = w * f'(X) * lat - Lambda * lat - mu * share(lat)
// (linear utility: f'(X) constant, so the per-subtask term is exact).
class StationarityProperty : public ::testing::TestWithParam<double> {};

TEST_P(StationarityProperty, OutputMaximizesLagrangianTerm) {
  const double mu_seed = GetParam();
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LatencySolver solver(w, model);

  PriceVector prices = PriceVector::Zero(w);
  for (std::size_t r = 0; r < prices.mu.size(); ++r) {
    prices.mu[r] = mu_seed * (1.0 + 0.3 * r);
  }
  for (std::size_t p = 0; p < prices.lambda.size(); ++p) {
    prices.lambda[p] = 0.2 * mu_seed * (p % 3);
  }
  Assignment lat(w.subtask_count(), 0.0);
  solver.SolveAll(prices, &lat);

  for (const SubtaskInfo& sub : w.subtasks()) {
    const double w_s =
        w.Weight(sub.id, UtilityVariant::kPathWeighted);
    const double lambda_sum = prices.PathPriceSum(w, sub.id);
    const double mu = prices.mu[sub.resource.value()];
    const auto term = [&](double l) {
      return -w_s * l - lambda_sum * l - mu * model.share(sub.id).Share(l);
    };
    const double lo = solver.LatLo(sub.id);
    const double hi = solver.LatHi(sub.id);
    const double best = GoldenSectionMax(term, lo, hi, 1e-9);
    EXPECT_NEAR(term(lat[sub.id.value()]), term(best),
                1e-6 * (1.0 + std::fabs(term(best))))
        << sub.name << " mu_seed=" << mu_seed;
  }
}

INSTANTIATE_TEST_SUITE_P(MuSeeds, StationarityProperty,
                         ::testing::Values(0.5, 2.0, 10.0, 60.0, 250.0));

// Nonlinear utility: the fixed point over X must satisfy the coupled
// stationarity equation.
TEST(LatencySolverTest, NonlinearUtilityFixedPoint) {
  std::vector<ResourceSpec> resources = {
      {"r0", ResourceKind::kCpu, 1.0, 1.0},
      {"r1", ResourceKind::kCpu, 1.0, 1.0}};
  TaskSpec task;
  task.name = "quad";
  task.critical_time_ms = 200.0;
  task.utility = std::make_shared<PowerUtility>(1000.0, 0.05, 2.0);
  task.trigger = TriggerSpec::Periodic(100.0);
  task.subtasks = {{"a", ResourceId(0u), 3.0, 0.0},
                   {"b", ResourceId(1u), 5.0, 0.0}};
  task.edges = {{0, 1}};
  auto workload = Workload::Create(std::move(resources), {task});
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  LatencySolver solver(w, model);

  PriceVector prices = PriceVector::Zero(w);
  prices.mu = {40.0, 60.0};
  prices.lambda[0] = 0.5;
  Assignment lat(2, 0.0);
  solver.SolveAll(prices, &lat);

  // Verify stationarity: w*f'(X) - Lambda - mu*share'(lat) = 0 per subtask.
  const double x = lat[0] + lat[1];
  const double slope = w.task(TaskId(0u)).utility->Derivative(x);
  for (const SubtaskInfo& sub : w.subtasks()) {
    const double residual =
        slope - prices.lambda[0] -
        prices.mu[sub.resource.value()] *
            model.share(sub.id).DShareDLat(lat[sub.id.value()]);
    EXPECT_NEAR(residual, 0.0, 1e-5) << sub.name;
  }
}

TEST(LatencySolverTest, CorrectionShiftsSolution) {
  const Workload w = OneSubtaskWorkload(MakePaperSimUtility(100.0));
  LatencyModel model(w);
  LatencySolver solver(w, model);
  PriceVector prices = PriceVector::Zero(w);
  prices.mu[0] = 25.0;
  Assignment before(1, 0.0), after(1, 0.0);
  solver.SolveAll(prices, &before);
  model.SetAdditiveError(SubtaskId(0u), -2.0);
  solver.SolveAll(prices, &after);
  // Corrected share work/(lat+2): interior solution shifts by the error:
  // sqrt(25*4/1) - 2 = 8.
  EXPECT_NEAR(after[0], before[0] - 2.0, 1e-9);
}

}  // namespace
}  // namespace lla
