#include "core/engine.h"

#include <cmath>

#include <gtest/gtest.h>

#include "workloads/paper.h"

namespace lla {
namespace {

LlaConfig PaperConfig() {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.adaptive_max_multiplier = 8.0;
  return config;
}

TEST(EngineTest, ConvergesOnPaperWorkload) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaEngine engine(w, model, PaperConfig());
  const RunResult result = engine.Run(12000);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.final_feasibility.feasible);
  // All eight resources end close to full (the paper's near-congestion
  // parametrization).
  for (double sum : result.final_feasibility.resource_share_sums) {
    EXPECT_GT(sum, 0.9);
    EXPECT_LE(sum, 1.0 + 1e-3);
  }
}

TEST(EngineTest, CriticalPathsApproachCriticalTimes) {
  // The paper's Sec. 3.2 claim: critical paths converge to within 1% of the
  // critical times.
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaEngine engine(w, model, PaperConfig());
  engine.Run(12000);
  ASSERT_TRUE(engine.Converged());
  for (const TaskInfo& task : w.tasks()) {
    const double crit = CriticalPathLatency(w, task.id, engine.latencies());
    EXPECT_LE(crit, task.critical_time_ms * (1.0 + 1e-3)) << task.name;
    EXPECT_GT(crit, task.critical_time_ms * 0.97) << task.name;
  }
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaEngine a(w, model, PaperConfig());
  LlaEngine b(w, model, PaperConfig());
  for (int i = 0; i < 200; ++i) {
    const auto sa = a.Step();
    const auto sb = b.Step();
    ASSERT_DOUBLE_EQ(sa.total_utility, sb.total_utility) << "iter " << i;
  }
  EXPECT_EQ(a.latencies(), b.latencies());
}

TEST(EngineTest, ResetRestartsIdentically) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaEngine engine(w, model, PaperConfig());
  std::vector<double> first;
  for (int i = 0; i < 50; ++i) first.push_back(engine.Step().total_utility);
  engine.Reset();
  EXPECT_EQ(engine.iteration(), 0);
  EXPECT_FALSE(engine.Converged());
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(engine.Step().total_utility, first[i]) << i;
  }
}

TEST(EngineTest, HistoryRecordsEveryIteration) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config = PaperConfig();
  LlaEngine engine(w, model, config);
  for (int i = 0; i < 25; ++i) engine.Step();
  ASSERT_EQ(engine.history().size(), 25u);
  EXPECT_EQ(engine.history().front().iteration, 1);
  EXPECT_EQ(engine.history().back().iteration, 25);
}

TEST(EngineTest, HistoryCanBeDisabled) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config = PaperConfig();
  config.record_history = false;
  LlaEngine engine(w, model, config);
  for (int i = 0; i < 10; ++i) engine.Step();
  EXPECT_TRUE(engine.history().empty());
}

TEST(EngineTest, SumAndPathWeightedBothConverge) {
  // Sec. 5.2: "results were not different in terms of convergence".
  for (UtilityVariant variant :
       {UtilityVariant::kSum, UtilityVariant::kPathWeighted}) {
    auto workload = MakeSimWorkload();
    ASSERT_TRUE(workload.ok());
    const Workload& w = workload.value();
    LatencyModel model(w);
    LlaConfig config = PaperConfig();
    config.solver.variant = variant;
    LlaEngine engine(w, model, config);
    const RunResult result = engine.Run(12000);
    EXPECT_TRUE(result.converged) << ToString(variant);
    EXPECT_TRUE(result.final_feasibility.feasible) << ToString(variant);
  }
}

TEST(EngineTest, FixedLargeStepOscillates) {
  // The Figure 5 shape: a too-large fixed step never settles.
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config;
  config.step_policy = StepPolicyKind::kFixed;
  config.gamma0 = 100.0;
  LlaEngine engine(w, model, config);
  const RunResult result = engine.Run(1500);
  EXPECT_FALSE(result.converged);
}

TEST(EngineTest, ModelCorrectionShiftsConvergedAllocation) {
  // Apply an additive error mid-run; the engine must settle at a different
  // allocation (Sec. 6.4's mechanism, on the simulation workload).
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaEngine engine(w, model, PaperConfig());
  engine.Run(12000);
  ASSERT_TRUE(engine.Converged());
  const Assignment before = engine.latencies();

  for (const SubtaskInfo& sub : w.subtasks()) {
    model.SetAdditiveError(sub.id, -1.0);
  }
  engine.Run(12000);
  const Assignment after = engine.latencies();
  double max_shift = 0.0;
  for (std::size_t s = 0; s < before.size(); ++s) {
    max_shift = std::max(max_shift, std::fabs(after[s] - before[s]));
  }
  EXPECT_GT(max_shift, 0.1);
  EXPECT_TRUE(engine.Feasibility().feasible);
}

TEST(EngineTest, PrototypeWorkloadConvergesAndHonorsFloors) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config = PaperConfig();
  LlaEngine engine(w, model, config);
  const RunResult result = engine.Run(12000);
  EXPECT_TRUE(result.final_feasibility.feasible);
  // Shares must respect the sustainable minimum (0.2 fast / 0.13 slow).
  for (const SubtaskInfo& sub : w.subtasks()) {
    const double share =
        model.share(sub.id).Share(engine.latencies()[sub.id.value()]);
    EXPECT_GE(share, sub.min_share - 1e-9) << sub.name;
  }
  // Fast tasks meet their 105 ms critical time.
  for (const TaskInfo& task : w.tasks()) {
    EXPECT_LE(CriticalPathLatency(w, task.id, engine.latencies()),
              task.critical_time_ms * (1.0 + 1e-3))
        << task.name;
  }
}

}  // namespace
}  // namespace lla
