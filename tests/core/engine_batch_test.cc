// EngineBatch: batched stepping must be exactly equivalent to stepping each
// member standalone — same trajectories, same RunResult — at any thread
// count, and member engines must be forced serial so the per-step fork-join
// overhead cannot reappear inside a batch item.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/engine_batch.h"
#include "workloads/paper.h"

namespace lla {
namespace {

ParallelConfig Force(int threads) {
  ParallelConfig config;
  config.min_items_per_thread = 1;
  config.max_concurrency = threads;
  return config;
}

LlaConfig PolicyConfig(double gamma) {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kFixed;
  config.gamma0 = gamma;
  config.record_history = false;
  return config;
}

TEST(EngineBatchTest, StepAllMatchesStandaloneEngines) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);

  const std::vector<double> gammas = {0.5, 2.0, 8.0};
  EngineBatch batch(4, Force(4));
  std::vector<LlaEngine> standalone;
  standalone.reserve(gammas.size());
  for (double gamma : gammas) {
    batch.Add(w, model, PolicyConfig(gamma));
    standalone.emplace_back(w, model, PolicyConfig(gamma));
  }
  ASSERT_EQ(batch.size(), gammas.size());

  for (int round = 0; round < 10; ++round) {
    batch.StepAll(7);
    for (std::size_t i = 0; i < standalone.size(); ++i) {
      for (int s = 0; s < 7; ++s) standalone[i].Step();
      const Assignment& a = standalone[i].latencies();
      const Assignment& b = batch.engine(i).latencies();
      ASSERT_EQ(a.size(), b.size());
      ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)),
                0)
          << "engine " << i << " diverged by round " << round;
    }
  }
}

TEST(EngineBatchTest, RunAllMatchesStandaloneRun) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);

  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.record_history = false;

  EngineBatch batch(2, Force(2));
  batch.Add(w, model, config);
  batch.Add(w, model, config);
  const std::vector<RunResult> results = batch.RunAll(4000);
  ASSERT_EQ(results.size(), 2u);

  LlaEngine reference(w, model, config);
  const RunResult expected = reference.Run(4000);
  for (const RunResult& result : results) {
    EXPECT_EQ(result.converged, expected.converged);
    EXPECT_EQ(result.iterations, expected.iterations);
    EXPECT_EQ(result.final_utility, expected.final_utility);
    EXPECT_EQ(result.final_feasibility.feasible,
              expected.final_feasibility.feasible);
  }
}

TEST(EngineBatchTest, MemberEnginesAreForcedSerial) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);

  LlaConfig config;
  config.num_threads = 8;  // would be a pool per engine if honored
  EngineBatch batch(2, Force(2));
  const int index = batch.Add(w, model, config);
  EXPECT_EQ(batch.engine(index).config().num_threads, 1);
}

TEST(EngineBatchTest, SerialBatchHasNoPool) {
  EngineBatch batch(1);
  EXPECT_EQ(batch.pool(), nullptr);
  EXPECT_EQ(batch.size(), 0u);
}

}  // namespace
}  // namespace lla
