// LlaEngine::WarmStartStructural semantics (DESIGN.md §7.9): the selective
// re-prime after a task join/leave.  A two-cluster workload with disjoint
// resource sets makes the dirty closure observable — the untouched
// cluster's prices must come through BIT-identical, while the changed
// cluster is re-seeded (leave) or kept as a lower bound (join).
#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "model/trigger.h"
#include "model/utility.h"
#include "workloads/transform.h"

namespace lla {
namespace {

std::vector<ResourceSpec> FourCpus() {
  return {{"cpu0", ResourceKind::kCpu, 1.0, 0.0},
          {"cpu1", ResourceKind::kCpu, 1.0, 0.0},
          {"cpu2", ResourceKind::kCpu, 1.0, 0.0},
          {"cpu3", ResourceKind::kCpu, 1.0, 0.0}};
}

TaskSpec ChainTask(const std::string& name, std::size_t r0, std::size_t r1) {
  TaskSpec task;
  task.name = name;
  task.critical_time_ms = 50.0;
  task.utility = MakePaperSimUtility(50.0);
  task.trigger = TriggerSpec::Periodic(100.0);
  task.subtasks = {{"a", ResourceId(r0), 8.0, 0.0},
                   {"b", ResourceId(r1), 12.0, 0.0}};
  task.edges = {{0, 1}};
  return task;
}

LlaConfig Converging() {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  return config;
}

// Cluster A: tA alone on {cpu0, cpu1}.  Cluster B: tB, tC share {cpu2,
// cpu3}.  The closure of a change to tC is exactly cluster B.
Workload FullSystem() {
  auto built = Workload::Create(
      FourCpus(), {ChainTask("tA", 0, 1), ChainTask("tB", 2, 3),
                   ChainTask("tC", 2, 3)});
  EXPECT_TRUE(built.ok()) << built.error();
  return std::move(built).value();
}

TEST(StructuralWarmStartTest, LeaveResetsOnlyTheClosure) {
  const Workload full = FullSystem();
  LatencyModel full_model(full);
  LlaEngine incumbent(full, full_model, Converging());
  ASSERT_TRUE(incumbent.Run(12000).converged);
  const PriceVector optimum = incumbent.prices();

  auto reduced = WithoutTask(full, TaskId(2u));
  ASSERT_TRUE(reduced.ok()) << reduced.error();
  LatencyModel reduced_model(reduced.value());
  LlaEngine warm(reduced.value(), reduced_model, Converging());
  const Status seeded = warm.WarmStartStructural(
      full, optimum, StructuralChange::TaskLeave(TaskId(2u)));
  ASSERT_TRUE(seeded.ok()) << seeded.error();

  // Cluster A is outside the closure: mu and tA's path lambda BIT-identical.
  EXPECT_EQ(std::memcmp(&warm.prices().mu[0], &optimum.mu[0],
                        2 * sizeof(double)),
            0);
  EXPECT_EQ(warm.prices().lambda[0], optimum.lambda[0]);
  // Cluster B's mu re-seeded at initial_mu; its lambda kept mapped.
  EXPECT_EQ(warm.prices().mu[2], Converging().initial_mu);
  EXPECT_EQ(warm.prices().mu[3], Converging().initial_mu);
  EXPECT_EQ(warm.prices().lambda[1], optimum.lambda[1]);
  // The closure: tB plus {cpu2, cpu3}.
  EXPECT_EQ(warm.last_reprime_tasks(), 1u);
  EXPECT_EQ(warm.last_reprime_resources(), 2u);

  // And the warm restart reaches the reduced system's optimum.
  LlaEngine cold(reduced.value(), reduced_model, Converging());
  const RunResult cold_run = cold.Run(12000);
  ASSERT_TRUE(cold_run.converged);
  const RunResult warm_run = warm.Run(12000);
  EXPECT_TRUE(warm_run.converged);
  EXPECT_NEAR(warm_run.final_utility, cold_run.final_utility,
              0.01 * std::abs(cold_run.final_utility));
}

TEST(StructuralWarmStartTest, JoinKeepsMappedPricesAndSeedsNewcomer) {
  auto reduced = Workload::Create(
      FourCpus(), {ChainTask("tA", 0, 1), ChainTask("tB", 2, 3)});
  ASSERT_TRUE(reduced.ok()) << reduced.error();
  LatencyModel reduced_model(reduced.value());
  LlaConfig config = Converging();
  config.initial_lambda = 0.25;  // distinguishable newcomer seed
  LlaEngine incumbent(reduced.value(), reduced_model, config);
  ASSERT_TRUE(incumbent.Run(12000).converged);
  const PriceVector before = incumbent.prices();

  auto grown = WithTask(reduced.value(), ChainTask("tC", 2, 3));
  ASSERT_TRUE(grown.ok()) << grown.error();
  LatencyModel grown_model(grown.value());
  LlaEngine warm(grown.value(), grown_model, config);
  const Status seeded = warm.WarmStartStructural(
      reduced.value(), before, StructuralChange::TaskJoin(TaskId(2u)));
  ASSERT_TRUE(seeded.ok()) << seeded.error();

  // A join keeps EVERY mapped price (the old mu is a lower bound for the
  // grown system); only the newcomer's lambda is fresh.
  EXPECT_EQ(std::memcmp(warm.prices().mu.data(), before.mu.data(),
                        before.mu.size() * sizeof(double)),
            0);
  EXPECT_EQ(warm.prices().lambda[0], before.lambda[0]);
  EXPECT_EQ(warm.prices().lambda[1], before.lambda[1]);
  EXPECT_EQ(warm.prices().lambda[2], 0.25);
  // The closure still reports what must re-converge: cluster B + newcomer.
  EXPECT_EQ(warm.last_reprime_tasks(), 2u);
  EXPECT_EQ(warm.last_reprime_resources(), 2u);
  EXPECT_TRUE(warm.Run(12000).converged);
}

TEST(StructuralWarmStartTest, RejectsInconsistentArguments) {
  const Workload full = FullSystem();
  LatencyModel full_model(full);
  LlaEngine incumbent(full, full_model, Converging());
  incumbent.Run(2000);
  const PriceVector prices = incumbent.prices();

  auto reduced = WithoutTask(full, TaskId(2u));
  ASSERT_TRUE(reduced.ok());
  LatencyModel reduced_model(reduced.value());
  LlaEngine warm(reduced.value(), reduced_model, Converging());

  // Old prices whose shape does not match the old workload.
  PriceVector misshapen = prices;
  misshapen.lambda.pop_back();
  EXPECT_FALSE(warm.WarmStartStructural(
                       full, misshapen,
                       StructuralChange::TaskLeave(TaskId(2u)))
                   .ok());
  // Departed id outside the old workload.
  EXPECT_FALSE(warm.WarmStartStructural(
                       full, prices, StructuralChange::TaskLeave(TaskId(7u)))
                   .ok());
  // Workloads that do not differ by exactly one task (old == new here).
  const PriceVector reduced_prices = PriceVector::Zero(reduced.value());
  EXPECT_FALSE(warm.WarmStartStructural(
                       reduced.value(), reduced_prices,
                       StructuralChange::TaskLeave(TaskId(0u)))
                   .ok());
  // Wrong direction: a join descriptor against a shrunk workload.
  EXPECT_FALSE(warm.WarmStartStructural(
                       full, prices, StructuralChange::TaskJoin(TaskId(1u)))
                   .ok());
  // A failed call never touches the engine.
  EXPECT_EQ(warm.iteration(), 0);
}

TEST(StructuralWarmStartDeathTest, PlainWarmStartAbortsOnShapeMismatch) {
  const Workload full = FullSystem();
  LatencyModel model(full);
  LlaEngine engine(full, model, Converging());
  PriceVector bad = PriceVector::Zero(full);
  bad.lambda.pop_back();  // a structurally-transformed vector, mis-passed
  EXPECT_DEATH(engine.WarmStart(bad), "does not match the workload");
}

}  // namespace
}  // namespace lla
