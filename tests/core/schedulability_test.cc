#include "core/schedulability.h"

#include <gtest/gtest.h>

#include "workloads/paper.h"

namespace lla {
namespace {

SchedulabilityConfig TestConfig() {
  SchedulabilityConfig config;
  config.lla.step_policy = StepPolicyKind::kAdaptive;
  config.lla.gamma0 = 3.0;
  config.lla.adaptive_max_multiplier = 8.0;
  config.max_iterations = 25000;
  return config;
}

TEST(SchedulabilityTest, BaseWorkloadIsSchedulable) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  LatencyModel model(workload.value());
  SchedulabilityTester tester(workload.value(), model, TestConfig());
  const auto report = tester.Test();
  EXPECT_EQ(report.verdict, Schedulability::kSchedulable)
      << report.explanation;
  EXPECT_TRUE(report.converged);
  for (double ratio : report.task_path_ratios) EXPECT_LE(ratio, 1.001);
}

TEST(SchedulabilityTest, ScaledWorkloadWithScaledDeadlinesIsSchedulable) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok());
  LatencyModel model(workload.value());
  SchedulabilityTester tester(workload.value(), model, TestConfig());
  const auto report = tester.Test();
  EXPECT_EQ(report.verdict, Schedulability::kSchedulable)
      << report.explanation;
}

TEST(SchedulabilityTest, UnscaledDeadlinesAreUnschedulable) {
  // The Figure 7 experiment: 6 tasks with the original critical times.
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/false);
  ASSERT_TRUE(workload.ok());
  LatencyModel model(workload.value());
  SchedulabilityConfig config = TestConfig();
  config.max_iterations = 1500;
  SchedulabilityTester tester(workload.value(), model, config);
  const auto report = tester.Test();
  EXPECT_EQ(report.verdict, Schedulability::kUnschedulable)
      << report.explanation;
  EXPECT_FALSE(report.converged);
  // The paper observes path ratios of 1.75-2.41x and non-settling share
  // sums; our run must show at least one violation signal persistently.
  EXPECT_TRUE(report.mean_max_path_ratio > 1.05 ||
              report.mean_max_resource_excess > 0.05);
}

TEST(SchedulabilityTest, MinShareOverloadShortCircuits) {
  // Prototype workload with doubled rates: min shares alone exceed B_r.
  PrototypeWorkloadOptions opts;
  opts.fast_rate_per_s = 100.0;  // 0.5 share each, two fast tasks -> 1.0+
  auto workload = MakePrototypeWorkload(opts);
  ASSERT_TRUE(workload.ok());
  LatencyModel model(workload.value());
  SchedulabilityTester tester(workload.value(), model, TestConfig());
  const auto report = tester.Test();
  EXPECT_EQ(report.verdict, Schedulability::kUnschedulable);
  EXPECT_EQ(report.iterations, 0);  // rejected before running LLA
  EXPECT_NE(report.explanation.find("minimum sustainable"),
            std::string::npos);
}

TEST(SchedulabilityTest, VerdictToString) {
  EXPECT_STREQ(ToString(Schedulability::kSchedulable), "schedulable");
  EXPECT_STREQ(ToString(Schedulability::kUnschedulable), "unschedulable");
  EXPECT_STREQ(ToString(Schedulability::kIndeterminate), "indeterminate");
}

}  // namespace
}  // namespace lla
