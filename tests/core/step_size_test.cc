#include "core/step_size.h"

#include <gtest/gtest.h>

#include "workloads/paper.h"
#include "workloads/transform.h"

namespace lla {
namespace {

class StepSizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto workload = MakeSimWorkload();
    ASSERT_TRUE(workload.ok()) << workload.error();
    workload_ = std::make_unique<Workload>(std::move(workload).value());
  }
  const Workload& workload() const { return *workload_; }
  std::unique_ptr<Workload> workload_;
};

TEST_F(StepSizeTest, FixedIsConstant) {
  FixedStepSize policy(2.5);
  policy.Reset(workload());
  StepSizes steps;
  std::vector<bool> congested(workload().resource_count(), true);
  policy.Update(workload(), congested, &steps);
  for (double g : steps.resource) EXPECT_DOUBLE_EQ(g, 2.5);
  for (double g : steps.path) EXPECT_DOUBLE_EQ(g, 2.5);
  // Congestion has no effect.
  policy.Update(workload(), congested, &steps);
  for (double g : steps.resource) EXPECT_DOUBLE_EQ(g, 2.5);
}

TEST_F(StepSizeTest, AdaptiveDoublesWhileCongested) {
  AdaptiveStepSize policy(1.0, /*max_multiplier=*/64.0);
  policy.Reset(workload());
  StepSizes steps;
  std::vector<bool> congested(workload().resource_count(), false);
  congested[0] = true;

  policy.Update(workload(), congested, &steps);
  EXPECT_DOUBLE_EQ(steps.resource[0], 2.0);
  EXPECT_DOUBLE_EQ(steps.resource[1], 1.0);
  policy.Update(workload(), congested, &steps);
  EXPECT_DOUBLE_EQ(steps.resource[0], 4.0);
  policy.Update(workload(), congested, &steps);
  EXPECT_DOUBLE_EQ(steps.resource[0], 8.0);
}

TEST_F(StepSizeTest, AdaptiveRevertsOnUncongestion) {
  AdaptiveStepSize policy(1.0, 64.0);
  policy.Reset(workload());
  StepSizes steps;
  std::vector<bool> congested(workload().resource_count(), false);
  congested[0] = true;
  policy.Update(workload(), congested, &steps);
  policy.Update(workload(), congested, &steps);
  EXPECT_DOUBLE_EQ(steps.resource[0], 4.0);
  congested[0] = false;
  policy.Update(workload(), congested, &steps);
  EXPECT_DOUBLE_EQ(steps.resource[0], 1.0);
}

TEST_F(StepSizeTest, AdaptiveHonorsCap) {
  AdaptiveStepSize policy(1.0, 8.0);
  policy.Reset(workload());
  StepSizes steps;
  std::vector<bool> congested(workload().resource_count(), true);
  for (int i = 0; i < 20; ++i) policy.Update(workload(), congested, &steps);
  for (double g : steps.resource) EXPECT_DOUBLE_EQ(g, 8.0);
  for (double g : steps.path) EXPECT_DOUBLE_EQ(g, 8.0);
}

TEST_F(StepSizeTest, AdaptivePathsFollowTraversedResources) {
  AdaptiveStepSize policy(1.0, 64.0);
  policy.Reset(workload());
  StepSizes steps;
  std::vector<bool> congested(workload().resource_count(), false);
  // Resource 7 is used only by task 2 (T28) and task 3 (T36): the paths of
  // task 1 must not double.
  congested[7] = true;
  policy.Update(workload(), congested, &steps);
  const Workload& w = workload();
  for (const PathInfo& path : w.paths()) {
    bool traverses = false;
    for (SubtaskId sid : path.subtasks) {
      if (w.subtask(sid).resource.value() == 7u) traverses = true;
    }
    EXPECT_DOUBLE_EQ(steps.path[path.id.value()], traverses ? 2.0 : 1.0)
        << "path " << path.id;
  }
}

// Regression: Update() used to rebuild its per-resource/per-path state only
// when the *resource* vector size mismatched.  A workload transform that
// changes the path count but keeps the resource count (task removal on a
// fixed resource set) then left path_multiplier_ stale — or, in the growing
// direction, undersized and written out of bounds.
TEST_F(StepSizeTest, AdaptiveRebuildsWhenPathCountShrinks) {
  auto removed = WithoutTask(workload(), TaskId(1u));
  ASSERT_TRUE(removed.ok()) << removed.error();
  const Workload& smaller = removed.value();
  ASSERT_EQ(smaller.resource_count(), workload().resource_count());
  ASSERT_LT(smaller.path_count(), workload().path_count());

  AdaptiveStepSize policy(1.0, 64.0);
  policy.Reset(workload());
  StepSizes steps;
  // Congestion streak on the full workload: every multiplier climbs to 8x.
  std::vector<bool> congested(workload().resource_count(), true);
  for (int i = 0; i < 3; ++i) policy.Update(workload(), congested, &steps);
  for (double g : steps.path) EXPECT_DOUBLE_EQ(g, 8.0);

  // Mid-run transform to the path-shrunk workload: the first update must
  // start from fresh multipliers (one doubling from 1.0), not resume the
  // stale 8x streak.
  policy.Update(smaller, congested, &steps);
  ASSERT_EQ(steps.path.size(), smaller.path_count());
  for (double g : steps.path) EXPECT_DOUBLE_EQ(g, 2.0);
  for (double g : steps.resource) EXPECT_DOUBLE_EQ(g, 2.0);
}

TEST_F(StepSizeTest, AdaptiveRebuildsWhenPathCountGrows) {
  auto removed = WithoutTask(workload(), TaskId(2u));
  ASSERT_TRUE(removed.ok()) << removed.error();
  const Workload& smaller = removed.value();
  ASSERT_EQ(smaller.resource_count(), workload().resource_count());

  AdaptiveStepSize policy(1.0, 64.0);
  policy.Reset(smaller);
  StepSizes steps;
  std::vector<bool> congested(workload().resource_count(), true);
  policy.Update(smaller, congested, &steps);

  // Task re-admission: more paths than the policy's state.  Without the
  // rebuild this wrote past the end of path_multiplier_.
  policy.Update(workload(), congested, &steps);
  ASSERT_EQ(steps.path.size(), workload().path_count());
  for (double g : steps.path) EXPECT_DOUBLE_EQ(g, 2.0);
}

TEST_F(StepSizeTest, DiminishingSchedule) {
  DiminishingStepSize policy(10.0, 5.0);
  policy.Reset(workload());
  StepSizes steps;
  std::vector<bool> congested(workload().resource_count(), false);
  policy.Update(workload(), congested, &steps);
  EXPECT_DOUBLE_EQ(steps.resource[0], 10.0);  // t = 0
  policy.Update(workload(), congested, &steps);
  EXPECT_DOUBLE_EQ(steps.resource[0], 10.0 / (1.0 + 1.0 / 5.0));
  for (int i = 0; i < 48; ++i) policy.Update(workload(), congested, &steps);
  EXPECT_NEAR(steps.resource[0], 10.0 / (1.0 + 49.0 / 5.0), 1e-12);
}

TEST_F(StepSizeTest, DiminishingResetRestartsSchedule) {
  DiminishingStepSize policy(10.0, 5.0);
  policy.Reset(workload());
  StepSizes steps;
  std::vector<bool> congested(workload().resource_count(), false);
  policy.Update(workload(), congested, &steps);
  policy.Update(workload(), congested, &steps);
  policy.Reset(workload());
  policy.Update(workload(), congested, &steps);
  EXPECT_DOUBLE_EQ(steps.resource[0], 10.0);
}

TEST_F(StepSizeTest, DescribeMentionsParameters) {
  EXPECT_NE(FixedStepSize(2.0).Describe().find("2"), std::string::npos);
  EXPECT_NE(AdaptiveStepSize(1.0, 8.0).Describe().find("adaptive"),
            std::string::npos);
  EXPECT_NE(DiminishingStepSize(1.0, 9.0).Describe().find("diminishing"),
            std::string::npos);
}

}  // namespace
}  // namespace lla
