#include "core/prices.h"

#include <gtest/gtest.h>

#include "workloads/paper.h"

namespace lla {
namespace {

TEST(PriceVectorTest, ZeroAndUniformFactories) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const PriceVector zero = PriceVector::Zero(w);
  EXPECT_EQ(zero.mu.size(), w.resource_count());
  EXPECT_EQ(zero.lambda.size(), w.path_count());
  for (double mu : zero.mu) EXPECT_DOUBLE_EQ(mu, 0.0);

  const PriceVector uniform = PriceVector::Uniform(w, 3.5, 0.25);
  for (double mu : uniform.mu) EXPECT_DOUBLE_EQ(mu, 3.5);
  for (double lambda : uniform.lambda) EXPECT_DOUBLE_EQ(lambda, 0.25);
}

TEST(PriceVectorTest, MaxAbsDiff) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  PriceVector a = PriceVector::Uniform(w, 1.0, 1.0);
  PriceVector b = a;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.0);
  b.mu[3] = 4.5;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 3.5);
  b.lambda[2] = -9.0;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 10.0);
  EXPECT_DOUBLE_EQ(b.MaxAbsDiff(a), 10.0);  // symmetric
}

TEST(PriceVectorTest, PathPriceSumAggregatesContainingPaths) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  PriceVector prices = PriceVector::Zero(w);
  // Task 1 has 5 paths (global ids 0..4); its root T11 lies on all five.
  for (std::size_t p = 0; p < 5; ++p) prices.lambda[p] = 1.0 + p;
  EXPECT_DOUBLE_EQ(prices.PathPriceSum(w, SubtaskId(0u)),
                   1.0 + 2.0 + 3.0 + 4.0 + 5.0);
  // Leaf T13 (local 2) lies on exactly one of them.
  const SubtaskInfo& leaf = w.subtask(SubtaskId(2u));
  ASSERT_EQ(leaf.paths.size(), 1u);
  EXPECT_DOUBLE_EQ(prices.PathPriceSum(w, leaf.id),
                   prices.lambda[leaf.paths[0].value()]);
  // Task 3's subtasks see only task 3's single path (price 0 here).
  EXPECT_DOUBLE_EQ(prices.PathPriceSum(w, SubtaskId(15u)), 0.0);
}

}  // namespace
}  // namespace lla
