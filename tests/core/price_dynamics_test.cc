// PriceDynamicsPolicy (DESIGN.md §7.8): accelerated dual dynamics.
//
// The anchors ISSUE 6 requires:
//   * beta = 0 reduces every accelerated variant to the plain dynamics
//     bit-for-bit (memcmp on prices and latencies, every step);
//   * the adaptive restart rule actually fires on an oscillating run
//     (large fixed step sizes, the Figure 5 regime);
//   * an unschedulable workload (Figure 7) does not overflow or NaN under
//     momentum — velocity is bounded by gamma*|g|/(1-beta), mirroring the
//     AdaptiveStepSize max_multiplier cap rationale;
//   * a component that projects to zero carries exactly zero velocity (the
//     absorbing-state invariant active-set retirement relies on).
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/price_dynamics.h"
#include "obs/trace.h"
#include "workloads/paper.h"

namespace lla {
namespace {

LlaConfig MakeConfig(DynamicsKind kind, double beta, bool active,
                     int num_threads) {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  config.num_threads = num_threads;
  config.parallel.max_concurrency = num_threads;
  config.parallel.min_items_per_thread = 1;
  config.active_set.enabled = active;
  config.dynamics.kind = kind;
  config.dynamics.momentum = beta;
  return config;
}

void ExpectSamePrices(const PriceVector& a, const PriceVector& b, int step,
                      const char* label) {
  ASSERT_EQ(
      std::memcmp(a.mu.data(), b.mu.data(), a.mu.size() * sizeof(double)), 0)
      << label << ": mu diverges at step " << step;
  ASSERT_EQ(std::memcmp(a.lambda.data(), b.lambda.data(),
                        a.lambda.size() * sizeof(double)),
            0)
      << label << ": lambda diverges at step " << step;
}

// beta = 0 must run the plain trajectory bit-for-bit: 0 * v contributes a
// signed zero IEEE addition absorbs, and max(0.0, x) normalizes -0.  This is
// the regression anchor that proves the dynamics layer rewrites nothing
// when momentum is off.
TEST(PriceDynamicsTest, BetaZeroIsBitIdenticalToPlain) {
  auto workload = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  for (const DynamicsKind kind :
       {DynamicsKind::kHeavyBall, DynamicsKind::kNesterov}) {
    for (const bool active : {false, true}) {
      LlaEngine plain(w, model,
                      MakeConfig(DynamicsKind::kPlain, 0.0, active, 1));
      LlaEngine accel(w, model, MakeConfig(kind, 0.0, active, 1));
      for (int step = 0; step < 200; ++step) {
        plain.Step();
        accel.Step();
        ExpectSamePrices(plain.prices(), accel.prices(), step,
                         ToString(kind));
        const Assignment& a = plain.latencies();
        const Assignment& b = accel.latencies();
        ASSERT_EQ(
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
            << ToString(kind) << ": latencies diverge at step " << step;
      }
      // (Restarts may still fire at beta = 0 — the stored "velocity" is
      // last step's gamma * g, and the guard compares it against the new
      // gradient — but resetting a velocity that beta = 0 is about to
      // multiply away cannot perturb the trajectory, which is the claim the
      // memcmp above pins.)
    }
  }
}

// Large fixed steps oscillate (the Figure 5 gamma = 10 regime); momentum on
// top of that MUST trip the gradient-restart guard, or built-up velocity
// would amplify the oscillation instead of damping it.
TEST(PriceDynamicsTest, RestartFiresUnderOscillation) {
  auto workload = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  LatencyModel model(workload.value());
  LlaConfig config = MakeConfig(DynamicsKind::kHeavyBall, 0.9, true, 1);
  config.step_policy = StepPolicyKind::kFixed;
  config.gamma0 = 10.0;
  LlaEngine engine(workload.value(), model, config);
  for (int i = 0; i < 300; ++i) engine.Step();
  EXPECT_GT(engine.momentum_restarts(), 0u);
}

// Figure 7's unschedulable workload: prices grow without bound, but they
// must grow FINITELY — the velocity recursion v <- beta*v + gamma*g has a
// bounded fixed point gamma*g/(1-beta), so momentum only multiplies the
// growth rate by a constant, never compounds it geometrically.
TEST(PriceDynamicsTest, UnschedulableWorkloadStaysFinite) {
  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/false);
  ASSERT_TRUE(workload.ok()) << workload.error();
  LatencyModel model(workload.value());
  for (const DynamicsKind kind :
       {DynamicsKind::kHeavyBall, DynamicsKind::kNesterov}) {
    LlaEngine engine(workload.value(), model, MakeConfig(kind, 0.9, true, 1));
    for (int i = 0; i < 2000; ++i) {
      const IterationStats stats = engine.Step();
      ASSERT_TRUE(std::isfinite(stats.total_utility))
          << ToString(kind) << " utility at iteration " << i;
    }
    for (double mu : engine.prices().mu) {
      ASSERT_TRUE(std::isfinite(mu)) << ToString(kind);
    }
    for (double lambda : engine.prices().lambda) {
      ASSERT_TRUE(std::isfinite(lambda)) << ToString(kind);
    }
    EXPECT_FALSE(engine.Converged()) << ToString(kind);
  }
}

// The zero-clamp invariant: any component the projection parks at 0 must
// store velocity exactly +0.0 (and, for Nesterov, base 0), so a retired
// skip and a computed update are indistinguishable for any step size.
TEST(PriceDynamicsTest, ProjectedZeroCarriesZeroVelocity) {
  auto workload = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  const PriceVector prices = PriceVector::Uniform(w, 1.0, 1.0);
  for (const DynamicsKind kind :
       {DynamicsKind::kHeavyBall, DynamicsKind::kNesterov}) {
    DynamicsConfig config;
    config.kind = kind;
    config.momentum = 0.9;
    auto policy = MakeDynamicsPolicy(config);
    policy->Reset(w, prices);
    // Positive slack (satisfied constraint) large enough to project to 0.
    const DynamicsStep step =
        policy->Step(DualSpace::kResource, 0, /*value=*/1.0, /*gamma=*/1.0,
                     /*slack=*/5.0);
    EXPECT_EQ(step.value, 0.0) << ToString(kind);
    EXPECT_TRUE(step.settled) << ToString(kind);
    DynamicsPolicyState state;
    policy->SaveState(&state);
    ASSERT_FALSE(state.mu_velocity.empty()) << ToString(kind);
    EXPECT_EQ(state.mu_velocity[0], 0.0) << ToString(kind);
    EXPECT_FALSE(std::signbit(state.mu_velocity[0])) << ToString(kind);
    // The momentum ramp resets with the velocity: the absorbing state is
    // (value, velocity, phase) = (0, 0, 0).
    ASSERT_FALSE(state.mu_phase.empty()) << ToString(kind);
    EXPECT_EQ(state.mu_phase[0], 0.0) << ToString(kind);
    if (kind == DynamicsKind::kNesterov) {
      ASSERT_FALSE(state.mu_base.empty());
      EXPECT_EQ(state.mu_base[0], 0.0);
    }
  }
}

// A momentum step can project to 0 while the gradient still points up
// (velocity overshoot).  That zero is NOT settled — retiring it would
// freeze a multiplier dense dynamics would lift off zero next step.
TEST(PriceDynamicsTest, ZeroWithUphillGradientIsNotSettled) {
  auto workload = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  HeavyBallDynamics policy(/*beta=*/0.5, /*adaptive_restart=*/false);
  policy.Reset(w, PriceVector::Uniform(w, 1.0, 1.0));
  // Build large downhill velocity: two satisfied-constraint steps from a
  // high value (no projection to 0 yet).
  policy.Step(DualSpace::kResource, 0, 100.0, 1.0, 10.0);
  policy.Step(DualSpace::kResource, 0, 90.0, 1.0, 10.0);
  // Now the constraint flips to violated (slack < 0, ascent gradient up),
  // but the residual downhill velocity (v = 0.5 * -15 + 1 = -6.5) still
  // drags the value to 0.
  const DynamicsStep step =
      policy.Step(DualSpace::kResource, 0, 6.0, 1.0, /*slack=*/-1.0);
  EXPECT_EQ(step.value, 0.0);
  EXPECT_FALSE(step.settled);
}

// Restart accounting: velocity built downhill, then a flipped gradient
// must reset it and count one restart per opposing component step.
TEST(PriceDynamicsTest, RestartCountsOpposingSteps) {
  auto workload = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  HeavyBallDynamics policy(/*beta=*/0.9, /*adaptive_restart=*/true);
  policy.Reset(w, PriceVector::Uniform(w, 1.0, 1.0));
  // Violated constraint: velocity accumulates upward (v > 0, g > 0).
  policy.Step(DualSpace::kResource, 0, 1.0, 1.0, /*slack=*/-2.0);
  EXPECT_EQ(policy.total_restarts(), 0u);
  // Constraint flips satisfied: v * g < 0 -> restart.
  policy.Step(DualSpace::kResource, 0, 3.0, 1.0, /*slack=*/1.0);
  EXPECT_EQ(policy.total_restarts(), 1u);
}

// Momentum trace fields flow end-to-end through the engine: present (and
// sane) under accelerated dynamics, absent under plain.
TEST(PriceDynamicsTest, TraceCarriesMomentumDiagnostics) {
  auto workload = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  LatencyModel model(workload.value());
  obs::RingBufferTraceSink sink(8);
  LlaConfig config = MakeConfig(DynamicsKind::kHeavyBall, 0.9, true, 1);
  config.trace_sink = &sink;
  LlaEngine engine(workload.value(), model, config);
  for (int i = 0; i < 8; ++i) engine.Step();
  ASSERT_EQ(sink.size(), 8u);
  for (std::size_t i = 0; i < sink.size(); ++i) {
    const obs::IterationTrace& trace = sink.at(i);
    EXPECT_GE(trace.momentum_restarts, 0);
    EXPECT_GE(trace.effective_beta, 0.0);
    EXPECT_LE(trace.effective_beta, 0.9);
  }

  obs::RingBufferTraceSink plain_sink(8);
  LlaConfig plain = MakeConfig(DynamicsKind::kPlain, 0.9, true, 1);
  plain.trace_sink = &plain_sink;
  LlaEngine plain_engine(workload.value(), model, plain);
  plain_engine.Step();
  EXPECT_EQ(plain_sink.at(0).momentum_restarts, -1);
  EXPECT_EQ(plain_sink.at(0).effective_beta, -1.0);
}

TEST(PriceDynamicsTest, NamesAndFactory) {
  EXPECT_STREQ(ToString(DynamicsKind::kPlain), "plain");
  EXPECT_STREQ(ToString(DynamicsKind::kHeavyBall), "heavy-ball");
  EXPECT_STREQ(ToString(DynamicsKind::kNesterov), "nesterov");
  DynamicsConfig config;
  for (const DynamicsKind kind :
       {DynamicsKind::kPlain, DynamicsKind::kHeavyBall,
        DynamicsKind::kNesterov}) {
    config.kind = kind;
    auto policy = MakeDynamicsPolicy(config);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_FALSE(policy->Describe().empty());
  }
}

}  // namespace
}  // namespace lla
