// Cache-invalidation contract of the solver's model-invariant cache
// (regression for the online error-correction flow, paper Sec. 6.3):
//
//  1. replacing a share function through the LatencyModel bumps the model
//     revision and the cached solver picks it up on the next solve — a
//     warm-started engine after a correction must follow exactly the same
//     trajectory as a freshly constructed engine;
//  2. mutating a share object *in place* is invisible to the revision
//     counter, so the cached bounds go stale until InvalidateModelCache().
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/latency_solver.h"
#include "model/latency_model.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla {
namespace {

Workload MakeWorkload(std::uint64_t seed) {
  RandomWorkloadConfig config;
  config.seed = seed;
  config.num_tasks = 6;
  config.target_utilization = 0.75;
  auto workload = MakeRandomWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.error();
  return std::move(workload.value());
}

LlaConfig TestConfig() {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  return config;
}

// After an online model correction, an engine that keeps running via
// WarmStart must be bit-identical to a fresh engine built on the corrected
// model and warm-started from the same prices.
TEST(ModelCacheTest, WarmStartAfterCorrectionMatchesFreshEngine) {
  const Workload w = MakeWorkload(17);
  LatencyModel model(w);
  const LlaConfig config = TestConfig();

  LlaEngine live(w, model, config);
  for (int i = 0; i < 300; ++i) live.Step();
  const PriceVector checkpoint = live.prices();

  // The correction arrives mid-run: three subtasks get measured errors.
  model.SetAdditiveError(SubtaskId(std::size_t{0}), -0.5);
  model.SetAdditiveError(SubtaskId(std::size_t{3}), 0.25);
  model.SetAdditiveError(SubtaskId(w.subtask_count() - 1), -0.2);

  // Explicit invalidation (harmless here — the revision check would catch
  // the replacement anyway) plus warm restart from the checkpoint prices.
  live.InvalidateModelCache();
  live.WarmStart(checkpoint);

  LlaEngine fresh(w, model, config);
  fresh.WarmStart(checkpoint);

  ASSERT_EQ(live.latencies(), fresh.latencies());
  for (int i = 0; i < 300; ++i) {
    const IterationStats a = live.Step();
    const IterationStats b = fresh.Step();
    ASSERT_EQ(a.total_utility, b.total_utility) << "step " << i;
    ASSERT_EQ(a.max_resource_excess, b.max_resource_excess) << "step " << i;
    ASSERT_EQ(a.max_path_ratio, b.max_path_ratio) << "step " << i;
    ASSERT_EQ(a.feasible, b.feasible) << "step " << i;
  }
  EXPECT_EQ(live.latencies(), fresh.latencies());
  EXPECT_EQ(live.prices().mu, fresh.prices().mu);
  EXPECT_EQ(live.prices().lambda, fresh.prices().lambda);
}

// The revision counter alone must propagate a SetShareFunction /
// SetAdditiveError replacement into the cached solver — no explicit
// invalidation call.
TEST(ModelCacheTest, RevisionDetectsReplacementWithoutExplicitInvalidate) {
  const Workload w = MakeWorkload(23);
  LatencyModel model(w);
  const LatencySolver cached(w, model);

  const SubtaskId target(std::size_t{1});
  const double lo_before = cached.LatLo(target);
  const std::uint64_t revision_before = model.revision();

  model.SetAdditiveError(target, 0.8);
  EXPECT_GT(model.revision(), revision_before);

  LatencySolverConfig uncached_config;
  uncached_config.cache_invariants = false;
  const LatencySolver uncached(w, model, uncached_config);
  EXPECT_EQ(cached.LatLo(target), uncached.LatLo(target));
  EXPECT_EQ(cached.LatHi(target), uncached.LatHi(target));
  // A positive additive error raises the reachable-latency floor.
  EXPECT_GT(cached.LatLo(target), lo_before);
}

// A share function whose parameters change behind the model's back: the
// revision cannot see it, so this is the case that requires the explicit
// InvalidateModelCache() hook.
class MutableWorkShare final : public ShareFunction {
 public:
  explicit MutableWorkShare(double work_ms) : work_ms_(work_ms) {}

  void set_work_ms(double work_ms) { work_ms_ = work_ms; }

  double Share(double latency_ms) const override {
    return work_ms_ / latency_ms;
  }
  double DShareDLat(double latency_ms) const override {
    return -work_ms_ / (latency_ms * latency_ms);
  }
  double LatencyForShare(double share) const override {
    return work_ms_ / share;
  }
  double MinLatency() const override { return 0.0; }
  double LatencyForNegSlope(double g, double lo, double hi) const override {
    const double lat = std::sqrt(work_ms_ / g);
    return std::min(std::max(lat, lo), hi);
  }
  std::string Describe() const override { return "mutable-work"; }

 private:
  double work_ms_;
};

TEST(ModelCacheTest, InPlaceMutationRequiresExplicitInvalidate) {
  const Workload w = MakeWorkload(31);
  LatencyModel model(w);

  const SubtaskId target(std::size_t{0});
  auto mutable_share = std::make_shared<MutableWorkShare>(6.0);
  model.SetShareFunction(target, mutable_share);

  LatencySolver solver(w, model);
  const double lo_initial = solver.LatLo(target);

  // In-place mutation: same object, same revision — the cached bound is now
  // stale and the solver must NOT see the change yet (that staleness is the
  // documented contract, not a bug).
  mutable_share->set_work_ms(12.0);
  EXPECT_EQ(solver.LatLo(target), lo_initial);

  // The explicit hook flushes the cache; the rebuilt bound matches an
  // uncached reference solver.
  solver.InvalidateModelCache();
  LatencySolverConfig uncached_config;
  uncached_config.cache_invariants = false;
  const LatencySolver uncached(w, model, uncached_config);
  EXPECT_EQ(solver.LatLo(target), uncached.LatLo(target));
  EXPECT_EQ(solver.LatHi(target), uncached.LatHi(target));
  EXPECT_GT(solver.LatLo(target), lo_initial);
}

// End-to-end on a paper workload: the engine-level InvalidateModelCache()
// forwards to the solver, so an in-place mutation followed by the hook and
// a warm restart matches a fresh engine.
TEST(ModelCacheTest, EngineInvalidateAfterInPlaceMutation) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  const SubtaskId target(std::size_t{2});
  auto mutable_share = std::make_shared<MutableWorkShare>(5.0);
  model.SetShareFunction(target, mutable_share);

  const LlaConfig config = TestConfig();
  LlaEngine live(w, model, config);
  for (int i = 0; i < 200; ++i) live.Step();
  const PriceVector checkpoint = live.prices();

  mutable_share->set_work_ms(9.0);
  live.InvalidateModelCache();
  live.WarmStart(checkpoint);

  LlaEngine fresh(w, model, config);
  fresh.WarmStart(checkpoint);

  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(live.Step().total_utility, fresh.Step().total_utility)
        << "step " << i;
  }
  EXPECT_EQ(live.latencies(), fresh.latencies());
}

// Regression: InvalidateModelCache() must also invalidate the active-set
// dirty-tracking state.  An in-place share mutation changes solve results
// without changing a single price bit, so if the active engine kept its
// baseline it would classify every task as clean and serve stale workspace
// latencies forever.  A dense engine stepped in lockstep is the oracle.
TEST(ModelCacheTest, InvalidateResetsActiveSetDirtyTracking) {
  const Workload w = MakeWorkload(37);
  LatencyModel model(w);

  const SubtaskId target(std::size_t{1});
  auto mutable_share = std::make_shared<MutableWorkShare>(4.0);
  model.SetShareFunction(target, mutable_share);

  LlaConfig dense_config = TestConfig();
  dense_config.active_set.enabled = false;
  LlaConfig active_config = TestConfig();
  active_config.active_set.enabled = true;

  LlaEngine dense(w, model, dense_config);
  LlaEngine active(w, model, active_config);
  for (int i = 0; i < 150; ++i) {
    dense.Step();
    active.Step();
    ASSERT_EQ(dense.latencies(), active.latencies()) << "pre step " << i;
  }

  // The mutation is invisible to the model revision AND to the price bits:
  // only the explicit hook can tell the active engine its baseline is void.
  mutable_share->set_work_ms(8.0);
  dense.InvalidateModelCache();
  active.InvalidateModelCache();

  for (int i = 0; i < 150; ++i) {
    dense.Step();
    active.Step();
    ASSERT_EQ(dense.latencies(), active.latencies()) << "post step " << i;
    ASSERT_EQ(dense.prices().mu, active.prices().mu) << "post step " << i;
    ASSERT_EQ(dense.prices().lambda, active.prices().lambda)
        << "post step " << i;
  }
}

}  // namespace
}  // namespace lla
