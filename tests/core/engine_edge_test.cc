// Edge-case and regression tests for the engine.
#include <cmath>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "model/trigger.h"
#include "model/utility.h"
#include "workloads/paper.h"

namespace lla {
namespace {

// Regression: utility can plateau while prices still drift (all latencies
// pinned at their box bounds).  Before the price-stability convergence
// requirement, a warm start with absurdly high prices would "converge"
// immediately at the pinned allocation; now the engine must ride the
// prices back down to the true equilibrium.
TEST(EngineEdgeTest, DoesNotConvergeOnUtilityPlateau) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  LlaEngine engine(w, model, config);
  engine.WarmStart(PriceVector::Uniform(w, 5000.0, 0.0));
  const RunResult run = engine.Run(30000);
  ASSERT_TRUE(run.converged);
  // The true uncorrected equilibrium, not the price-pinned floor state.
  const double fast_share =
      model.share(SubtaskId(0u)).Share(engine.latencies()[0]);
  EXPECT_NEAR(fast_share, 0.2857, 0.005);
  // CPUs saturated (floors-only would leave them at 0.66).
  const FeasibilityReport report = engine.Feasibility();
  for (double sum : report.resource_share_sums) EXPECT_GT(sum, 0.85);
}

TEST(EngineEdgeTest, SingleTaskSingleResource) {
  std::vector<ResourceSpec> resources = {{"r", ResourceKind::kCpu, 1.0, 1.0}};
  TaskSpec task;
  task.name = "solo";
  task.critical_time_ms = 50.0;
  task.utility = MakePaperSimUtility(50.0);
  task.trigger = TriggerSpec::Periodic(100.0);
  task.subtasks = {{"s", ResourceId(0u), 4.0, 0.0}};
  auto workload = Workload::Create(std::move(resources), {task});
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaEngine engine(w, model, LlaConfig{});
  const RunResult run = engine.Run(5000);
  EXPECT_TRUE(run.converged);
  // Sole subtask grabs the full resource: lat = work / 1.0 = 5 ms.
  EXPECT_NEAR(engine.latencies()[0], 5.0, 1e-3);
}

TEST(EngineEdgeTest, SharedResourceWithinTaskOption) {
  // Two subtasks of one task on the same CPU (allowed via Options): the
  // engine must still converge and respect capacity.
  std::vector<ResourceSpec> resources = {{"r", ResourceKind::kCpu, 1.0, 1.0}};
  TaskSpec task;
  task.name = "both";
  task.critical_time_ms = 60.0;
  task.utility = MakePaperSimUtility(60.0);
  task.trigger = TriggerSpec::Periodic(100.0);
  task.subtasks = {{"a", ResourceId(0u), 4.0, 0.0},
                   {"b", ResourceId(0u), 6.0, 0.0}};
  task.edges = {{0, 1}};
  WorkloadOptions options;
  options.allow_shared_resource_within_task = true;
  auto workload = Workload::Create(std::move(resources), {task}, options);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config;
  config.gamma0 = 3.0;
  LlaEngine engine(w, model, config);
  const RunResult run = engine.Run(12000);
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(run.final_feasibility.feasible);
  EXPECT_NEAR(run.final_feasibility.resource_share_sums[0], 1.0, 1e-3);
}

TEST(EngineEdgeTest, InelasticTasksConstrainWithoutTradeoff) {
  // One inelastic (hard-deadline-style) and one elastic task sharing a CPU:
  // the inelastic plateau means its utility is flat until near the
  // deadline, so the elastic task should capture most of the headroom.
  std::vector<ResourceSpec> resources = {
      {"r0", ResourceKind::kCpu, 1.0, 1.0},
      {"r1", ResourceKind::kCpu, 1.0, 1.0}};
  TaskSpec hard;
  hard.name = "hard";
  hard.critical_time_ms = 60.0;
  hard.utility = std::make_shared<InelasticUtility>(100.0, 40.0, 1.0);
  hard.trigger = TriggerSpec::Periodic(100.0);
  hard.subtasks = {{"h", ResourceId(0u), 4.0, 0.0}};
  TaskSpec soft;
  soft.name = "soft";
  soft.critical_time_ms = 80.0;
  soft.utility = MakePaperSimUtility(80.0);
  soft.trigger = TriggerSpec::Periodic(100.0);
  soft.subtasks = {{"s0", ResourceId(0u), 4.0, 0.0},
                   {"s1", ResourceId(1u), 3.0, 0.0}};
  soft.edges = {{0, 1}};
  auto workload = Workload::Create(std::move(resources), {hard, soft});
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config;
  config.gamma0 = 3.0;
  LlaEngine engine(w, model, config);
  const RunResult run = engine.Run(12000);
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(run.final_feasibility.feasible);
  // The inelastic task is pushed toward (just inside) its plateau edge;
  // the elastic one gets the larger share of r0.
  const double hard_lat = engine.latencies()[0];
  const double soft_lat0 = engine.latencies()[1];
  EXPECT_GT(hard_lat, 20.0);   // does not hoard the resource
  EXPECT_LT(hard_lat, 60.0);   // meets its deadline
  EXPECT_LT(soft_lat0, hard_lat);
}

TEST(EngineEdgeTest, ZeroInitialPricesMatchDefault) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config;
  config.initial_mu = 0.0;
  config.initial_lambda = 0.0;
  LlaEngine a(w, model, config);
  LlaEngine b(w, model, LlaConfig{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Step().total_utility, b.Step().total_utility);
  }
}

TEST(EngineEdgeTest, NonZeroInitialPricesStillConverge) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config;
  config.gamma0 = 3.0;
  config.initial_mu = 50.0;
  config.initial_lambda = 2.0;
  LlaEngine engine(w, model, config);
  const RunResult run = engine.Run(12000);
  EXPECT_TRUE(run.converged);
  EXPECT_NEAR(run.final_utility, -76.0, 1.0);
}

}  // namespace
}  // namespace lla
