#include "workloads/random.h"

#include <gtest/gtest.h>

#include "model/evaluation.h"
#include "model/latency_model.h"

namespace lla {
namespace {

TEST(RandomWorkloadTest, Deterministic) {
  RandomWorkloadConfig config;
  config.seed = 99;
  auto a = MakeRandomWorkload(config);
  auto b = MakeRandomWorkload(config);
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().subtask_count(), b.value().subtask_count());
  for (std::size_t s = 0; s < a.value().subtask_count(); ++s) {
    EXPECT_DOUBLE_EQ(a.value().subtask(SubtaskId(s)).wcet_ms,
                     b.value().subtask(SubtaskId(s)).wcet_ms);
    EXPECT_EQ(a.value().subtask(SubtaskId(s)).resource,
              b.value().subtask(SubtaskId(s)).resource);
  }
}

TEST(RandomWorkloadTest, DifferentSeedsDiffer) {
  RandomWorkloadConfig config;
  config.seed = 1;
  auto a = MakeRandomWorkload(config);
  config.seed = 2;
  auto b = MakeRandomWorkload(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_diff =
      a.value().subtask_count() != b.value().subtask_count();
  if (!any_diff) {
    for (std::size_t s = 0; s < a.value().subtask_count(); ++s) {
      if (a.value().subtask(SubtaskId(s)).wcet_ms !=
          b.value().subtask(SubtaskId(s)).wcet_ms) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomWorkloadTest, RejectsImpossibleConfig) {
  RandomWorkloadConfig config;
  config.num_resources = 3;
  config.max_subtasks = 5;
  EXPECT_FALSE(MakeRandomWorkload(config).ok());
  config = {};
  config.min_subtasks = 0;
  EXPECT_FALSE(MakeRandomWorkload(config).ok());
  config = {};
  config.min_subtasks = 7;
  config.max_subtasks = 6;
  EXPECT_FALSE(MakeRandomWorkload(config).ok());
}

// Property: for utilization < 1 the equal-split witness meets all deadlines
// — the generator's constructive schedulability guarantee.
class RandomWorkloadSchedulable : public ::testing::TestWithParam<int> {};

TEST_P(RandomWorkloadSchedulable, EqualSplitWitnessIsFeasible) {
  RandomWorkloadConfig config;
  config.seed = static_cast<std::uint64_t>(GetParam());
  config.target_utilization = 0.8;
  auto workload = MakeRandomWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  Assignment witness(w.subtask_count(), 0.0);
  for (const ResourceInfo& resource : w.resources()) {
    const double n_r = static_cast<double>(resource.subtasks.size());
    for (SubtaskId sid : resource.subtasks) {
      witness[sid.value()] =
          model.share(sid).LatencyForShare(resource.capacity / n_r);
    }
  }
  const auto report = CheckFeasibility(w, model, witness, 1e-9);
  EXPECT_TRUE(report.feasible) << "seed " << GetParam();
  // Deadlines hold with margin ~ target_utilization.
  EXPECT_LE(report.max_path_ratio, config.target_utilization + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadSchedulable,
                         ::testing::Range(1, 21));

TEST(RandomWorkloadTest, StructurallyValidAcrossSeeds) {
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    RandomWorkloadConfig config;
    config.seed = seed;
    auto workload = MakeRandomWorkload(config);
    ASSERT_TRUE(workload.ok()) << "seed " << seed << ": " << workload.error();
    const Workload& w = workload.value();
    EXPECT_EQ(w.task_count(), static_cast<std::size_t>(config.num_tasks));
    for (const TaskInfo& task : w.tasks()) {
      EXPECT_GE(static_cast<int>(task.subtasks.size()), config.min_subtasks);
      EXPECT_LE(static_cast<int>(task.subtasks.size()), config.max_subtasks);
      EXPECT_GT(task.critical_time_ms, 0.0);
      EXPECT_GE(task.paths.size(), 1u);
    }
  }
}

}  // namespace
}  // namespace lla
