#include "workloads/transform.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla {
namespace {

TEST(TransformTest, ExtractRebuildRoundTrips) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& original = workload.value();
  auto rebuilt = Rebuild(original, nullptr, nullptr);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error();
  const Workload& copy = rebuilt.value();
  ASSERT_EQ(copy.subtask_count(), original.subtask_count());
  ASSERT_EQ(copy.path_count(), original.path_count());
  for (std::size_t s = 0; s < original.subtask_count(); ++s) {
    const SubtaskInfo& a = original.subtask(SubtaskId(s));
    const SubtaskInfo& b = copy.subtask(SubtaskId(s));
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.wcet_ms, b.wcet_ms);
    EXPECT_EQ(a.resource, b.resource);
    EXPECT_DOUBLE_EQ(a.min_share, b.min_share);
    EXPECT_EQ(a.path_count, b.path_count);
  }
  for (std::size_t r = 0; r < original.resource_count(); ++r) {
    EXPECT_DOUBLE_EQ(original.resource(ResourceId(r)).capacity,
                     copy.resource(ResourceId(r)).capacity);
  }
}

TEST(TransformTest, WithResourceCapacity) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  auto changed = WithResourceCapacity(workload.value(), ResourceId(3u), 0.5);
  ASSERT_TRUE(changed.ok()) << changed.error();
  EXPECT_DOUBLE_EQ(changed.value().resource(ResourceId(3u)).capacity, 0.5);
  EXPECT_DOUBLE_EQ(changed.value().resource(ResourceId(0u)).capacity, 1.0);
}

TEST(TransformTest, WithResourceCapacityValidates) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  EXPECT_FALSE(
      WithResourceCapacity(workload.value(), ResourceId(3u), 0.0).ok());
  EXPECT_FALSE(
      WithResourceCapacity(workload.value(), ResourceId(3u), 1.5).ok());
}

TEST(TransformTest, WithScaledCriticalTimesRescalesLinearUtility) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  auto scaled = WithScaledCriticalTimes(workload.value(), 2.0);
  ASSERT_TRUE(scaled.ok()) << scaled.error();
  const TaskInfo& task = scaled.value().task(TaskId(0u));
  EXPECT_DOUBLE_EQ(task.critical_time_ms, 90.0);
  // f = 2C - x becomes 2*(2C) - x: value at 0 doubles.
  EXPECT_DOUBLE_EQ(task.utility->Value(0.0), 180.0);
}

TEST(TransformTest, WithoutTaskRemovesOne) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  auto smaller = WithoutTask(workload.value(), TaskId(1u));
  ASSERT_TRUE(smaller.ok()) << smaller.error();
  EXPECT_EQ(smaller.value().task_count(), 2u);
  EXPECT_EQ(smaller.value().task(TaskId(0u)).name, "push-multicast");
  EXPECT_EQ(smaller.value().task(TaskId(1u)).name, "client-server");
  EXPECT_EQ(smaller.value().subtask_count(), 13u);
  EXPECT_FALSE(WithoutTask(workload.value(), TaskId(9u)).ok());
  EXPECT_FALSE(WithoutTask(workload.value(), TaskId()).ok());
}

TEST(TransformTest, WithTaskAppendsOne) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  TaskSpec clone = ExtractSpecs(w).tasks[0];
  clone.name = "newcomer";
  auto larger = WithTask(w, clone);
  ASSERT_TRUE(larger.ok()) << larger.error();
  EXPECT_EQ(larger.value().task_count(), w.task_count() + 1);
  // Appended at the end; existing ids are untouched.
  EXPECT_EQ(larger.value().task(TaskId(w.task_count())).name, "newcomer");
  EXPECT_EQ(larger.value().task(TaskId(0u)).name, w.task(TaskId(0u)).name);
  EXPECT_EQ(larger.value().subtask_count(),
            w.subtask_count() + clone.subtasks.size());
}

TEST(TransformTest, MapPricesWithoutTaskIsFilteredCopy) {
  // The invariant the mapping rests on: paths are ordered by task, then dag
  // order, and BOTH orders survive a removal — so the surviving tasks' old
  // lambda values, read in old path order, land on the reduced workload's
  // paths in the same order.
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  PriceVector prices = PriceVector::Zero(w);
  for (std::size_t r = 0; r < prices.mu.size(); ++r) {
    prices.mu[r] = 100.0 + static_cast<double>(r);
  }
  for (std::size_t p = 0; p < prices.lambda.size(); ++p) {
    prices.lambda[p] = 1.0 + static_cast<double>(p);
  }

  const TaskId removed(1u);  // a middle task, the order-sensitive case
  const PriceVector mapped = MapPricesWithoutTask(w, prices, removed);

  // mu is resource-indexed and the resource set is fixed: identical copy.
  ASSERT_EQ(mapped.mu.size(), prices.mu.size());
  for (std::size_t r = 0; r < prices.mu.size(); ++r) {
    EXPECT_EQ(mapped.mu[r], prices.mu[r]);
  }

  // lambda is the filtered copy: the removed task's entries drop out, the
  // rest keep their values and relative order.
  std::vector<double> expected;
  for (const TaskInfo& task : w.tasks()) {
    if (task.id == removed) continue;
    for (PathId path : task.paths) {
      expected.push_back(prices.lambda[path.value()]);
    }
  }
  ASSERT_EQ(mapped.lambda, expected);

  // And the size matches the rebuilt reduced workload exactly.
  auto reduced = WithoutTask(w, removed);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(mapped.lambda.size(), reduced.value().path_count());
}

TEST(TransformTest, MapPricesWithTaskInvertsRemoval) {
  // Removing a middle task and mapping back with its id reproduces the
  // original lambda layout, with the re-added task's entries re-seeded.
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  PriceVector prices = PriceVector::Zero(w);
  for (std::size_t p = 0; p < prices.lambda.size(); ++p) {
    prices.lambda[p] = 1.0 + static_cast<double>(p);
  }

  const TaskId task(1u);
  const PriceVector reduced = MapPricesWithoutTask(w, prices, task);
  const PriceVector restored = MapPricesWithTask(w, reduced, task, 0.5);

  ASSERT_EQ(restored.lambda.size(), w.path_count());
  for (const TaskInfo& t : w.tasks()) {
    for (PathId path : t.paths) {
      const double expected =
          t.id == task ? 0.5 : prices.lambda[path.value()];
      EXPECT_EQ(restored.lambda[path.value()], expected)
          << "path " << path.value();
    }
  }
  // Negative seeds are projected onto the feasible (non-negative) set.
  const PriceVector projected = MapPricesWithTask(w, reduced, task, -3.0);
  for (PathId path : w.task(task).paths) {
    EXPECT_EQ(projected.lambda[path.value()], 0.0);
  }
}

TEST(TransformTest, WarmStartReconvergesAfterCapacityChange) {
  // The adaptation story: converge on a workload with slack, degrade one
  // resource by 15%, and re-converge warm vs cold.  Warm starting lands on
  // the same optimum in no more (typically fewer) iterations.
  RandomWorkloadConfig random_config;
  random_config.seed = 42;
  random_config.target_utilization = 0.7;
  auto workload = MakeRandomWorkload(random_config);
  ASSERT_TRUE(workload.ok());
  const Workload& base = workload.value();
  LatencyModel base_model(base);
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  LlaEngine engine(base, base_model, config);
  const RunResult first = engine.Run(12000);
  ASSERT_TRUE(first.converged);

  auto degraded = WithResourceCapacity(base, ResourceId(0u), 0.85);
  ASSERT_TRUE(degraded.ok());
  const Workload& changed = degraded.value();
  LatencyModel changed_model(changed);

  LlaEngine cold(changed, changed_model, config);
  const RunResult cold_run = cold.Run(12000);
  ASSERT_TRUE(cold_run.converged);

  LlaEngine warm(changed, changed_model, config);
  warm.WarmStart(engine.prices());
  const RunResult warm_run = warm.Run(12000);

  EXPECT_TRUE(warm_run.converged);
  EXPECT_TRUE(warm_run.final_feasibility.feasible);
  // Same optimum either way, and the warm start never pays more.
  EXPECT_NEAR(warm_run.final_utility, cold_run.final_utility,
              0.01 * std::abs(cold_run.final_utility));
  EXPECT_LE(warm_run.iterations, cold_run.iterations);
}

TEST(TransformTest, WarmStartFromOwnOptimumConvergesImmediately) {
  RandomWorkloadConfig random_config;
  random_config.seed = 42;
  random_config.target_utilization = 0.7;
  auto workload = MakeRandomWorkload(random_config);
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  LlaEngine engine(w, model, config);
  ASSERT_TRUE(engine.Run(12000).converged);

  LlaEngine resumed(w, model, config);
  resumed.WarmStart(engine.prices());
  const RunResult run = resumed.Run(12000);
  EXPECT_TRUE(run.converged);
  // Re-detecting convergence needs at least the detector window; allow a
  // small multiple of it.
  EXPECT_LE(run.iterations, 3 * config.convergence.window);
}

TEST(TransformTest, WarmStartProjectsNegativePrices) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaEngine engine(w, model, LlaConfig{});
  PriceVector prices = PriceVector::Uniform(w, -1.0, -2.0);
  engine.WarmStart(prices);
  for (double mu : engine.prices().mu) EXPECT_GE(mu, 0.0);
  for (double lambda : engine.prices().lambda) EXPECT_GE(lambda, 0.0);
}

}  // namespace
}  // namespace lla
