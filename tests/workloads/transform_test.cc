#include "workloads/transform.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla {
namespace {

TEST(TransformTest, ExtractRebuildRoundTrips) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& original = workload.value();
  auto rebuilt = Rebuild(original, nullptr, nullptr);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error();
  const Workload& copy = rebuilt.value();
  ASSERT_EQ(copy.subtask_count(), original.subtask_count());
  ASSERT_EQ(copy.path_count(), original.path_count());
  for (std::size_t s = 0; s < original.subtask_count(); ++s) {
    const SubtaskInfo& a = original.subtask(SubtaskId(s));
    const SubtaskInfo& b = copy.subtask(SubtaskId(s));
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.wcet_ms, b.wcet_ms);
    EXPECT_EQ(a.resource, b.resource);
    EXPECT_DOUBLE_EQ(a.min_share, b.min_share);
    EXPECT_EQ(a.path_count, b.path_count);
  }
  for (std::size_t r = 0; r < original.resource_count(); ++r) {
    EXPECT_DOUBLE_EQ(original.resource(ResourceId(r)).capacity,
                     copy.resource(ResourceId(r)).capacity);
  }
}

TEST(TransformTest, WithResourceCapacity) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  auto changed = WithResourceCapacity(workload.value(), ResourceId(3u), 0.5);
  ASSERT_TRUE(changed.ok()) << changed.error();
  EXPECT_DOUBLE_EQ(changed.value().resource(ResourceId(3u)).capacity, 0.5);
  EXPECT_DOUBLE_EQ(changed.value().resource(ResourceId(0u)).capacity, 1.0);
}

TEST(TransformTest, WithResourceCapacityValidates) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  EXPECT_FALSE(
      WithResourceCapacity(workload.value(), ResourceId(3u), 0.0).ok());
  EXPECT_FALSE(
      WithResourceCapacity(workload.value(), ResourceId(3u), 1.5).ok());
}

TEST(TransformTest, WithScaledCriticalTimesRescalesLinearUtility) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  auto scaled = WithScaledCriticalTimes(workload.value(), 2.0);
  ASSERT_TRUE(scaled.ok()) << scaled.error();
  const TaskInfo& task = scaled.value().task(TaskId(0u));
  EXPECT_DOUBLE_EQ(task.critical_time_ms, 90.0);
  // f = 2C - x becomes 2*(2C) - x: value at 0 doubles.
  EXPECT_DOUBLE_EQ(task.utility->Value(0.0), 180.0);
}

TEST(TransformTest, WithoutTaskRemovesOne) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  auto smaller = WithoutTask(workload.value(), TaskId(1u));
  ASSERT_TRUE(smaller.ok()) << smaller.error();
  EXPECT_EQ(smaller.value().task_count(), 2u);
  EXPECT_EQ(smaller.value().task(TaskId(0u)).name, "push-multicast");
  EXPECT_EQ(smaller.value().task(TaskId(1u)).name, "client-server");
  EXPECT_EQ(smaller.value().subtask_count(), 13u);
  EXPECT_FALSE(WithoutTask(workload.value(), TaskId(9u)).ok());
  EXPECT_FALSE(WithoutTask(workload.value(), TaskId()).ok());
}

TEST(TransformTest, WarmStartReconvergesAfterCapacityChange) {
  // The adaptation story: converge on a workload with slack, degrade one
  // resource by 15%, and re-converge warm vs cold.  Warm starting lands on
  // the same optimum in no more (typically fewer) iterations.
  RandomWorkloadConfig random_config;
  random_config.seed = 42;
  random_config.target_utilization = 0.7;
  auto workload = MakeRandomWorkload(random_config);
  ASSERT_TRUE(workload.ok());
  const Workload& base = workload.value();
  LatencyModel base_model(base);
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  LlaEngine engine(base, base_model, config);
  const RunResult first = engine.Run(12000);
  ASSERT_TRUE(first.converged);

  auto degraded = WithResourceCapacity(base, ResourceId(0u), 0.85);
  ASSERT_TRUE(degraded.ok());
  const Workload& changed = degraded.value();
  LatencyModel changed_model(changed);

  LlaEngine cold(changed, changed_model, config);
  const RunResult cold_run = cold.Run(12000);
  ASSERT_TRUE(cold_run.converged);

  LlaEngine warm(changed, changed_model, config);
  warm.WarmStart(engine.prices());
  const RunResult warm_run = warm.Run(12000);

  EXPECT_TRUE(warm_run.converged);
  EXPECT_TRUE(warm_run.final_feasibility.feasible);
  // Same optimum either way, and the warm start never pays more.
  EXPECT_NEAR(warm_run.final_utility, cold_run.final_utility,
              0.01 * std::abs(cold_run.final_utility));
  EXPECT_LE(warm_run.iterations, cold_run.iterations);
}

TEST(TransformTest, WarmStartFromOwnOptimumConvergesImmediately) {
  RandomWorkloadConfig random_config;
  random_config.seed = 42;
  random_config.target_utilization = 0.7;
  auto workload = MakeRandomWorkload(random_config);
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  LlaEngine engine(w, model, config);
  ASSERT_TRUE(engine.Run(12000).converged);

  LlaEngine resumed(w, model, config);
  resumed.WarmStart(engine.prices());
  const RunResult run = resumed.Run(12000);
  EXPECT_TRUE(run.converged);
  // Re-detecting convergence needs at least the detector window; allow a
  // small multiple of it.
  EXPECT_LE(run.iterations, 3 * config.convergence.window);
}

TEST(TransformTest, WarmStartProjectsNegativePrices) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaEngine engine(w, model, LlaConfig{});
  PriceVector prices = PriceVector::Uniform(w, -1.0, -2.0);
  engine.WarmStart(prices);
  for (double mu : engine.prices().mu) EXPECT_GE(mu, 0.0);
  for (double lambda : engine.prices().lambda) EXPECT_GE(lambda, 0.0);
}

}  // namespace
}  // namespace lla
