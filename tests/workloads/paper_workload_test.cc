#include "workloads/paper.h"

#include <gtest/gtest.h>

#include "model/evaluation.h"
#include "model/latency_model.h"

namespace lla {
namespace {

TEST(PaperWorkloadTest, StructureMatchesTable1) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  EXPECT_EQ(w.task_count(), 3u);
  EXPECT_EQ(w.resource_count(), 8u);
  EXPECT_EQ(w.subtask_count(), 21u);  // 7 + 8 + 6
  EXPECT_EQ(w.path_count(), 9u);      // 5 + 3 + 1
  EXPECT_DOUBLE_EQ(w.task(TaskId(0u)).critical_time_ms, 45.0);
  EXPECT_DOUBLE_EQ(w.task(TaskId(1u)).critical_time_ms, 76.0);
  EXPECT_DOUBLE_EQ(w.task(TaskId(2u)).critical_time_ms, 53.0);
}

TEST(PaperWorkloadTest, ExecTimesMatchTable1) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const double expected_wcet[] = {2, 3, 4, 5, 4, 3, 2,     // task 1
                                  2, 4, 3, 6, 7, 5, 2, 3,  // task 2
                                  3, 2, 2, 3, 4, 4};       // task 3
  const unsigned expected_resource[] = {0, 1, 2, 3, 4, 5, 6,     //
                                        0, 1, 2, 4, 5, 6, 3, 7,  //
                                        0, 1, 2, 4, 6, 7};
  for (std::size_t s = 0; s < w.subtask_count(); ++s) {
    EXPECT_DOUBLE_EQ(w.subtask(SubtaskId(s)).wcet_ms, expected_wcet[s]) << s;
    EXPECT_EQ(w.subtask(SubtaskId(s)).resource.value(), expected_resource[s])
        << s;
  }
}

// The key reconstruction check: at Table 1's published latencies, every
// resource's share sum is ~1.0 (all "close to congestion") and the critical
// paths match the published values.  This validates the recovered B_r = 1,
// l_r = 1 ms and the reconstructed graphs.
TEST(PaperWorkloadTest, Table1LatenciesSaturateAllResources) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  const Assignment& ref = GetTable1Reference().latencies_ms;
  ASSERT_EQ(ref.size(), w.subtask_count());
  for (const ResourceInfo& resource : w.resources()) {
    const double sum = ResourceShareSum(w, model, resource.id, ref);
    EXPECT_NEAR(sum, 1.0, 0.01) << resource.name;
  }
}

TEST(PaperWorkloadTest, Table1CriticalPathsMatch) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const Table1Reference& ref = GetTable1Reference();
  for (std::size_t t = 0; t < 3; ++t) {
    const double crit =
        CriticalPathLatency(w, TaskId(t), ref.latencies_ms);
    EXPECT_NEAR(crit, ref.critical_paths_ms[t], 0.15) << "task " << t;
    EXPECT_LT(crit, ref.critical_times_ms[t]);
  }
}

TEST(PaperWorkloadTest, PathWeightedWeights) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  // Task 1: T11, T12 on all 5 paths; leaves on 1.
  EXPECT_DOUBLE_EQ(w.Weight(SubtaskId(0u), UtilityVariant::kPathWeighted), 5);
  EXPECT_DOUBLE_EQ(w.Weight(SubtaskId(1u), UtilityVariant::kPathWeighted), 5);
  EXPECT_DOUBLE_EQ(w.Weight(SubtaskId(2u), UtilityVariant::kPathWeighted), 1);
  // Task 2: T21, T22 on 3 paths; T24 on 2.
  EXPECT_DOUBLE_EQ(w.Weight(SubtaskId(7u), UtilityVariant::kPathWeighted), 3);
  EXPECT_DOUBLE_EQ(w.Weight(SubtaskId(8u), UtilityVariant::kPathWeighted), 3);
  EXPECT_DOUBLE_EQ(w.Weight(SubtaskId(10u), UtilityVariant::kPathWeighted),
                   2);
  // Task 3 chain: all weights 1.
  for (unsigned s = 15; s < 21; ++s) {
    EXPECT_DOUBLE_EQ(
        w.Weight(SubtaskId(std::size_t{s}), UtilityVariant::kPathWeighted),
        1);
  }
}

TEST(PaperWorkloadTest, ScalingReplicatesTasks) {
  auto workload = MakeScaledSimWorkload(4, true);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  EXPECT_EQ(w.task_count(), 12u);
  EXPECT_EQ(w.subtask_count(), 84u);
  // Critical times scaled by 4.
  EXPECT_DOUBLE_EQ(w.task(TaskId(0u)).critical_time_ms, 180.0);
  // Unscaled variant keeps the originals.
  auto unscaled = MakeScaledSimWorkload(4, false);
  ASSERT_TRUE(unscaled.ok());
  EXPECT_DOUBLE_EQ(unscaled.value().task(TaskId(0u)).critical_time_ms, 45.0);
}

TEST(PaperWorkloadTest, PrototypeWorkloadShape) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  EXPECT_EQ(w.task_count(), 4u);
  EXPECT_EQ(w.resource_count(), 3u);
  EXPECT_EQ(w.subtask_count(), 12u);
  // Every CPU hosts one subtask of each task.
  for (const ResourceInfo& resource : w.resources()) {
    EXPECT_EQ(resource.subtasks.size(), 4u);
    EXPECT_DOUBLE_EQ(resource.capacity, 0.9);  // 0.1 reserved for the GC
    EXPECT_DOUBLE_EQ(resource.lag_ms, 5.0);
  }
  // Sustainable minimum shares: 0.2 fast, 0.13 slow; total 0.66.
  EXPECT_NEAR(w.subtask(SubtaskId(0u)).min_share, 0.2, 1e-12);
  EXPECT_NEAR(w.subtask(SubtaskId(6u)).min_share, 0.13, 1e-12);
  EXPECT_NEAR(w.MinShareDemand(ResourceId(0u)), 0.66, 1e-12);
  // Critical times.
  EXPECT_DOUBLE_EQ(w.task(TaskId(0u)).critical_time_ms, 105.0);
  EXPECT_DOUBLE_EQ(w.task(TaskId(3u)).critical_time_ms, 800.0);
  // Utility is f(lat) = -lat.
  EXPECT_DOUBLE_EQ(w.task(TaskId(0u)).utility->Value(10.0), -10.0);
}

TEST(PaperWorkloadTest, Table1ReferenceInternallyConsistent) {
  const Table1Reference& ref = GetTable1Reference();
  EXPECT_EQ(ref.latencies_ms.size(), 21u);
  for (double lat : ref.latencies_ms) EXPECT_GT(lat, 0.0);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_LT(ref.critical_paths_ms[t], ref.critical_times_ms[t]);
  }
}

}  // namespace
}  // namespace lla
