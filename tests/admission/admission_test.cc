#include "admission/admission.h"

#include <gtest/gtest.h>

#include "model/trigger.h"
#include "model/utility.h"

namespace lla::admission {
namespace {

std::vector<ResourceSpec> TwoCpus() {
  return {{"cpu0", ResourceKind::kCpu, 1.0, 1.0},
          {"cpu1", ResourceKind::kCpu, 1.0, 1.0}};
}

/// A chain task over both CPUs with the given demand level.
TaskSpec MakeTask(const std::string& name, double wcet_ms,
                  double critical_ms, double rate_per_s = 10.0,
                  double slope = 1.0) {
  TaskSpec task;
  task.name = name;
  task.critical_time_ms = critical_ms;
  task.utility =
      std::make_shared<LinearUtility>(2.0 * critical_ms * slope, slope);
  task.trigger = TriggerSpec::Periodic(1000.0 / rate_per_s);
  const double min_share = rate_per_s * wcet_ms / 1000.0;
  task.subtasks = {{"a", ResourceId(0u), wcet_ms, min_share},
                   {"b", ResourceId(1u), wcet_ms, min_share}};
  task.edges = {{0, 1}};
  return task;
}

AdmissionConfig TestConfig() {
  AdmissionConfig config;
  config.lla.step_policy = StepPolicyKind::kAdaptive;
  config.lla.gamma0 = 3.0;
  return config;
}

TEST(AdmissionTest, AdmitsFeasibleTasks) {
  AdmissionController controller(TwoCpus(), TestConfig());
  const auto first = controller.TryAdmit(MakeTask("t1", 5.0, 100.0));
  EXPECT_EQ(first.decision, Decision::kAdmitted) << first.reason;
  const auto second = controller.TryAdmit(MakeTask("t2", 5.0, 100.0));
  EXPECT_EQ(second.decision, Decision::kAdmitted) << second.reason;
  EXPECT_EQ(controller.task_count(), 2u);
  EXPECT_GT(second.utility_after, second.utility_before);
}

TEST(AdmissionTest, RejectsOverloadingTask) {
  AdmissionController controller(TwoCpus(), TestConfig());
  ASSERT_EQ(controller.TryAdmit(MakeTask("t1", 5.0, 50.0, 40.0)).decision,
            Decision::kAdmitted);  // min share 0.2 per cpu
  ASSERT_EQ(controller.TryAdmit(MakeTask("t2", 5.0, 50.0, 40.0)).decision,
            Decision::kAdmitted);  // 0.4 total
  // A task demanding 0.7 sustainable share per CPU cannot fit on top.
  const auto report = controller.TryAdmit(MakeTask("hog", 7.0, 60.0, 100.0));
  EXPECT_EQ(report.decision, Decision::kRejectedInfeasible) << report.reason;
  EXPECT_EQ(controller.task_count(), 2u);  // incumbents untouched
}

TEST(AdmissionTest, RejectsImpossibleDeadline) {
  AdmissionController controller(TwoCpus(), TestConfig());
  // Two 5 ms subtasks (plus 1 ms lag each) can never finish within 5 ms.
  const auto report = controller.TryAdmit(MakeTask("tight", 5.0, 5.0));
  EXPECT_EQ(report.decision, Decision::kRejectedInfeasible) << report.reason;
}

TEST(AdmissionTest, RejectsInvalidSpec) {
  AdmissionController controller(TwoCpus(), TestConfig());
  TaskSpec bad = MakeTask("bad", 5.0, 100.0);
  bad.utility = nullptr;
  EXPECT_EQ(controller.TryAdmit(bad).decision, Decision::kRejectedInvalid);
  TaskSpec cyclic = MakeTask("cyclic", 5.0, 100.0);
  cyclic.edges = {{0, 1}, {1, 0}};
  EXPECT_EQ(controller.TryAdmit(cyclic).decision,
            Decision::kRejectedInvalid);
}

TEST(AdmissionTest, RemoveFreesCapacity) {
  AdmissionController controller(TwoCpus(), TestConfig());
  ASSERT_EQ(controller.TryAdmit(MakeTask("t1", 5.0, 60.0, 60.0)).decision,
            Decision::kAdmitted);  // 0.3 per cpu sustainable
  ASSERT_EQ(controller.TryAdmit(MakeTask("t2", 5.0, 60.0, 60.0)).decision,
            Decision::kAdmitted);  // 0.6
  const auto rejected =
      controller.TryAdmit(MakeTask("t3", 5.0, 60.0, 100.0));  // 0.5 more
  ASSERT_EQ(rejected.decision, Decision::kRejectedInfeasible);
  EXPECT_TRUE(controller.Remove("t1"));
  EXPECT_FALSE(controller.Remove("t1"));  // already gone
  const auto retried =
      controller.TryAdmit(MakeTask("t3", 5.0, 60.0, 100.0));
  EXPECT_EQ(retried.decision, Decision::kAdmitted) << retried.reason;
  const auto names = controller.TaskNames();
  EXPECT_EQ(names, (std::vector<std::string>{"t2", "t3"}));
}

TEST(AdmissionTest, NetBenefitPolicyRejectsHarmfulTask) {
  AdmissionConfig config = TestConfig();
  config.policy = Policy::kNetBenefit;
  // Demand a material gain: a low-value newcomer squeezing a high-value
  // incumbent must be rejected even though it is schedulable.
  config.min_net_benefit = 100.0;
  AdmissionController controller(TwoCpus(), config);
  ASSERT_EQ(controller
                .TryAdmit(MakeTask("vip", 5.0, 40.0, 40.0, /*slope=*/5.0))
                .decision,
            Decision::kAdmitted);
  const auto report =
      controller.TryAdmit(MakeTask("lowvalue", 5.0, 60.0, 40.0,
                                   /*slope=*/1.0));
  EXPECT_EQ(report.decision, Decision::kRejectedNetBenefit) << report.reason;
  EXPECT_EQ(controller.task_count(), 1u);
}

TEST(AdmissionTest, BuildWorkloadReflectsAdmittedSet) {
  AdmissionController controller(TwoCpus(), TestConfig());
  EXPECT_FALSE(controller.BuildWorkload().ok());
  controller.TryAdmit(MakeTask("t1", 5.0, 100.0));
  auto workload = controller.BuildWorkload();
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload.value().task_count(), 1u);
  EXPECT_GT(controller.CurrentUtility(), 0.0);
}

}  // namespace
}  // namespace lla::admission
