// Sharded-coordinator pins (DESIGN.md §7.10).  The sharded deployment
// batches a shard's prices into one message and applies them as one
// contiguous vector write, so in synchronous rounds it must be *numerically
// identical* to the classic one-agent-per-resource deployment — same fixed
// point, same per-round prices — while sending strictly fewer messages.
// Message counts are asserted exactly against the combinatorial expectation
// (Σ_task used-shards + Σ_shard client-tasks), not just "smaller".
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "runtime/coordinator.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla::runtime {
namespace {

// Dense workload: each task touches 12-16 of 16 resources, so with 4 shards
// every task's per-resource fan-out collapses ~4x.  A sparse workload would
// still be correct but would make the message-count contrast weak.
RandomWorkloadConfig DenseConfig() {
  RandomWorkloadConfig config;
  config.seed = 7;
  config.num_resources = 16;
  config.num_tasks = 12;
  config.min_subtasks = 12;
  config.max_subtasks = 16;
  return config;
}

CoordinatorConfig ShardedConfig(int num_shards) {
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 0.0;
  config.num_shards = num_shards;
  return config;
}

TEST(ShardedCoordinator, SyncRunMatchesUnshardedBitExactly) {
  auto workload = MakeRandomWorkload(DenseConfig());
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  Coordinator unsharded(w, model, ShardedConfig(0));
  Coordinator sharded(w, model, ShardedConfig(4));
  ASSERT_FALSE(unsharded.sharded());
  ASSERT_TRUE(sharded.sharded());
  EXPECT_EQ(sharded.shard_count(), 4u);

  const RunResult plain_run = unsharded.RunSync(4000);
  const RunResult shard_run = sharded.RunSync(4000);
  ASSERT_TRUE(plain_run.converged);
  ASSERT_TRUE(shard_run.converged);

  // Sync rounds interleave identically (all controllers, then all price
  // owners), and shard agents reuse ResourceAgent's exact Eq. 8 arithmetic
  // on disjoint slots — so the runs are bit-identical, not merely close.
  EXPECT_EQ(shard_run.final_utility, plain_run.final_utility);
  EXPECT_EQ(shard_run.iterations, plain_run.iterations);
  const PriceVector plain_prices = unsharded.CurrentPrices();
  const PriceVector shard_prices = sharded.CurrentPrices();
  for (std::size_t r = 0; r < w.resource_count(); ++r) {
    EXPECT_EQ(shard_prices.mu[r], plain_prices.mu[r]) << "resource " << r;
  }
}

TEST(ShardedCoordinator, ShardsPartitionResourcesContiguously) {
  auto workload = MakeRandomWorkload(DenseConfig());
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  Coordinator coordinator(w, model, ShardedConfig(4));
  std::size_t covered = 0;
  std::uint32_t previous_owner = 0;
  for (std::size_t r = 0; r < w.resource_count(); ++r) {
    int owners = 0;
    std::uint32_t owner = 0;
    for (std::size_t s = 0; s < coordinator.shard_count(); ++s) {
      if (coordinator.shard_agent(s).Hosts(ResourceId(r))) {
        ++owners;
        owner = coordinator.shard_agent(s).shard();
      }
    }
    ASSERT_EQ(owners, 1) << "resource " << r;
    EXPECT_GE(owner, previous_owner) << "partition must be contiguous";
    previous_owner = owner;
    ++covered;
  }
  EXPECT_EQ(covered, w.resource_count());

  // Requesting more shards than resources clamps instead of creating
  // empty shards.
  Coordinator clamped(w, model, ShardedConfig(64));
  EXPECT_EQ(clamped.shard_count(), w.resource_count());
}

TEST(ShardedCoordinator, RoundMessageCountMatchesShardCombinatorics) {
  auto workload = MakeRandomWorkload(DenseConfig());
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  const int kShards = 4;
  Coordinator unsharded(w, model, ShardedConfig(0));
  Coordinator sharded(w, model, ShardedConfig(kShards));

  // resource -> owning shard, recovered through the public Hosts() probe.
  std::vector<std::uint32_t> owner(w.resource_count(), 0);
  for (std::size_t r = 0; r < w.resource_count(); ++r) {
    for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
      if (sharded.shard_agent(s).Hosts(ResourceId(r))) {
        owner[r] = sharded.shard_agent(s).shard();
      }
    }
  }

  // Per steady round: every controller sends one latency update per used
  // resource (classic) or per used shard (sharded); every price owner sends
  // one price update per client task.
  std::uint64_t expect_unsharded = 0;
  std::uint64_t expect_sharded = 0;
  std::vector<std::set<TaskId>> shard_clients(sharded.shard_count());
  std::vector<std::set<TaskId>> resource_clients(w.resource_count());
  for (const TaskInfo& task : w.tasks()) {
    std::set<ResourceId> used_resources;
    std::set<std::uint32_t> used_shards;
    for (SubtaskId s : task.subtasks) {
      const ResourceId r = w.subtask(s).resource;
      used_resources.insert(r);
      used_shards.insert(owner[r.value()]);
      resource_clients[r.value()].insert(task.id);
      shard_clients[owner[r.value()]].insert(task.id);
    }
    expect_unsharded += used_resources.size();
    expect_sharded += used_shards.size();
  }
  for (const auto& clients : resource_clients) {
    expect_unsharded += clients.size();
  }
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    expect_sharded += shard_clients[s].size();
    EXPECT_EQ(sharded.shard_agent(s).client_tasks().size(),
              shard_clients[s].size());
  }
  ASSERT_LT(expect_sharded, expect_unsharded);

  const int kRounds = 5;
  const net::BusStats plain_before = unsharded.bus().stats();
  for (int i = 0; i < kRounds; ++i) unsharded.RunSyncRound();
  const net::BusStats plain_after = unsharded.bus().stats();
  const net::BusStats shard_before = sharded.bus().stats();
  for (int i = 0; i < kRounds; ++i) sharded.RunSyncRound();
  const net::BusStats shard_after = sharded.bus().stats();

  EXPECT_EQ(plain_after.sent - plain_before.sent,
            expect_unsharded * kRounds);
  EXPECT_EQ(shard_after.sent - shard_before.sent, expect_sharded * kRounds);
  EXPECT_EQ(shard_after.dropped - shard_before.dropped, 0u);
}

// The engine<->runtime equivalence pin (DESIGN.md §8: 6e-5 relative utility
// on the paper workload) must keep holding when the runtime is sharded.
TEST(ShardedCoordinator, PaperWorkloadMatchesEngineWithinDocumentedBound) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  LlaConfig engine_config;
  engine_config.step_policy = StepPolicyKind::kAdaptive;
  engine_config.gamma0 = 3.0;
  engine_config.record_history = false;
  LlaEngine engine(w, model, engine_config);
  const RunResult engine_run = engine.Run(12000);
  ASSERT_TRUE(engine_run.converged);

  Coordinator sharded(w, model, ShardedConfig(2));
  const RunResult shard_run = sharded.RunSync(12000);
  ASSERT_TRUE(shard_run.converged);
  ASSERT_TRUE(shard_run.final_feasibility.feasible);

  const double bound =
      6e-5 * std::max(1.0, std::fabs(engine_run.final_utility));
  EXPECT_NEAR(shard_run.final_utility, engine_run.final_utility, bound);
}

}  // namespace
}  // namespace lla::runtime
