// Coordinator what-if scenario evaluation: EvaluateScenarios must (a) leave
// the running distributed system untouched, (b) warm-start from the agents'
// live dual state (CurrentPrices), and (c) return bit-identical results
// whether the scenarios are evaluated serially or fanned across threads.
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "runtime/coordinator.h"
#include "workloads/paper.h"

namespace lla::runtime {
namespace {

LlaConfig Scenario(double gamma) {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = gamma;
  config.record_history = false;
  return config;
}

TEST(CoordinatorScenarioTest, CurrentPricesMatchesAgentState) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 0.0;
  Coordinator coordinator(w, model, config);
  for (int i = 0; i < 50; ++i) coordinator.RunSyncRound();

  const PriceVector prices = coordinator.CurrentPrices();
  ASSERT_EQ(prices.mu.size(), w.resource_count());
  ASSERT_EQ(prices.lambda.size(), w.path_count());
  for (const ResourceInfo& resource : w.resources()) {
    EXPECT_EQ(prices.mu[resource.id.value()],
              coordinator.agent(resource.id).mu());
  }
  // After 50 congested-start rounds at least one price moved off zero.
  double total = 0.0;
  for (double mu : prices.mu) total += mu;
  for (double lambda : prices.lambda) total += lambda;
  EXPECT_GT(total, 0.0);
}

TEST(CoordinatorScenarioTest, ThreadedEvaluationBitIdenticalAndReadOnly) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 0.0;
  Coordinator coordinator(w, model, config);
  for (int i = 0; i < 200; ++i) coordinator.RunSyncRound();

  const PriceVector before = coordinator.CurrentPrices();
  const Assignment assignment_before = coordinator.CurrentAssignment();

  const std::vector<LlaConfig> scenarios = {Scenario(1.0), Scenario(3.0),
                                            Scenario(6.0)};
  const std::vector<RunResult> serial =
      coordinator.EvaluateScenarios(scenarios, 6000, /*num_threads=*/1);
  const std::vector<RunResult> threaded =
      coordinator.EvaluateScenarios(scenarios, 6000, /*num_threads=*/4);

  ASSERT_EQ(serial.size(), scenarios.size());
  ASSERT_EQ(threaded.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(serial[i].converged, threaded[i].converged);
    EXPECT_EQ(serial[i].iterations, threaded[i].iterations);
    EXPECT_EQ(serial[i].final_utility, threaded[i].final_utility);
  }

  // Matches a hand-rolled warm-started engine (the scenario semantics).
  LlaEngine reference(w, model, scenarios[0]);
  reference.WarmStart(before);
  const RunResult expected = reference.Run(6000);
  EXPECT_EQ(serial[0].converged, expected.converged);
  EXPECT_EQ(serial[0].iterations, expected.iterations);
  EXPECT_EQ(serial[0].final_utility, expected.final_utility);

  // The running system is untouched by what-if evaluation.
  const PriceVector after = coordinator.CurrentPrices();
  EXPECT_EQ(after.MaxAbsDiff(before), 0.0);
  EXPECT_EQ(coordinator.CurrentAssignment(), assignment_before);
}

}  // namespace
}  // namespace lla::runtime
