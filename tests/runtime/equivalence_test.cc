// Pins the DESIGN.md §8 calibration finding: on the paper workload the
// synchronous distributed deployment matches the single-process engine to
// 6e-5 in final utility.  The only semantic difference between the two is
// that the distributed path step sizes see one-round-stale congestion flags,
// so a regression here means the runtime's update order drifted from the
// engine's.
#include <cmath>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/coordinator.h"
#include "workloads/paper.h"

namespace lla::runtime {
namespace {

TEST(EngineRuntimeEquivalence, SyncRoundsMatchEngineToDocumentedBound) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  LlaConfig engine_config;
  engine_config.step_policy = StepPolicyKind::kAdaptive;
  engine_config.gamma0 = 3.0;
  engine_config.record_history = false;
  LlaEngine engine(w, model, engine_config);
  const RunResult engine_run = engine.Run(12000);
  ASSERT_TRUE(engine_run.converged);
  ASSERT_TRUE(engine_run.final_feasibility.feasible);

  CoordinatorConfig coordinator_config;
  coordinator_config.step.gamma0 = 3.0;
  coordinator_config.bus.base_delay_ms = 0.0;
  Coordinator coordinator(w, model, coordinator_config);
  const RunResult sync_run = coordinator.RunSync(12000);
  ASSERT_TRUE(sync_run.converged);
  ASSERT_TRUE(sync_run.final_feasibility.feasible);

  // DESIGN.md §8: 6e-5 relative on final utility.  Tightening the runtime
  // further is welcome; getting worse is a regression.
  const double bound =
      6e-5 * std::max(1.0, std::fabs(engine_run.final_utility));
  EXPECT_NEAR(sync_run.final_utility, engine_run.final_utility, bound);
}

// Coordinator-side observability: attaching a sink and registry must not
// change the distributed result, traces must carry the bus's virtual clock,
// and the round/message counters must reflect the run.
TEST(EngineRuntimeEquivalence, CoordinatorObservabilityIsReadOnly) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  CoordinatorConfig plain_config;
  plain_config.step.gamma0 = 3.0;
  plain_config.bus.base_delay_ms = 0.0;
  Coordinator plain(w, model, plain_config);
  const RunResult plain_run = plain.RunSync(2000);

  obs::RingBufferTraceSink sink(32);
  obs::MetricRegistry metrics;
  CoordinatorConfig traced_config = plain_config;
  traced_config.trace_sink = &sink;
  traced_config.metrics = &metrics;
  Coordinator traced(w, model, traced_config);
  const RunResult traced_run = traced.RunSync(2000);

  EXPECT_EQ(traced_run.final_utility, plain_run.final_utility);
  EXPECT_EQ(traced_run.iterations, plain_run.iterations);

  ASSERT_GT(sink.total_received(), 0u);
  const obs::IterationTrace& last = sink.at(sink.size() - 1);
  EXPECT_GE(last.at_ms, 0.0);  // distributed traces carry virtual time
  EXPECT_EQ(last.resource_mu.size(), w.resource_count());
  EXPECT_EQ(last.path_lambda.size(), w.path_count());
  EXPECT_EQ(last.total_utility, traced_run.final_utility);

  EXPECT_EQ(metrics.GetCounter("coordinator.rounds")->value(),
            static_cast<std::uint64_t>(traced_run.iterations));
  EXPECT_GT(metrics.GetCounter("bus.sent")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("bus.sent")->value(),
            metrics.GetCounter("bus.delivered")->value() +
                metrics.GetCounter("bus.dropped")->value());
}

}  // namespace
}  // namespace lla::runtime
