#include "runtime/coordinator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/paper.h"

namespace lla::runtime {
namespace {

CoordinatorConfig SyncConfig() {
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 0.0;
  return config;
}

TEST(RuntimeTest, SyncRoundsMatchEngineUtility) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);

  LlaConfig engine_config;
  engine_config.step_policy = StepPolicyKind::kAdaptive;
  engine_config.gamma0 = 3.0;
  engine_config.record_history = false;
  LlaEngine engine(w, model, engine_config);
  const RunResult engine_result = engine.Run(12000);
  ASSERT_TRUE(engine_result.converged);

  Coordinator coordinator(w, model, SyncConfig());
  const RunResult runtime_result = coordinator.RunSync(12000);
  EXPECT_TRUE(runtime_result.converged);
  EXPECT_TRUE(runtime_result.final_feasibility.feasible);
  EXPECT_NEAR(runtime_result.final_utility, engine_result.final_utility,
              1e-3 * std::fabs(engine_result.final_utility));
}

TEST(RuntimeTest, SyncRoundTrafficAccounting) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  Coordinator coordinator(w, model, SyncConfig());
  coordinator.RunSyncRound();
  // Per round: every task sends one LatencyUpdate per used resource
  // (7 + 8 + 6 = 21) and every resource sends one price update per client
  // task (3+3+3+2+3+2+3+2 = 21).
  EXPECT_EQ(coordinator.bus().stats().sent, 42u);
  EXPECT_EQ(coordinator.bus().stats().delivered, 42u);
  EXPECT_GT(coordinator.bus().stats().bytes, 0u);
}

TEST(RuntimeTest, DeterministicAcrossIdenticalRuns) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  Coordinator a(w, model, SyncConfig());
  Coordinator b(w, model, SyncConfig());
  for (int round = 0; round < 100; ++round) {
    a.RunSyncRound();
    b.RunSyncRound();
  }
  EXPECT_EQ(a.CurrentAssignment(), b.CurrentAssignment());
}

TEST(RuntimeTest, AsyncConvergesWithDelaysJitterAndDrops) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 1.0;
  config.bus.jitter_ms = 2.0;
  config.bus.drop_probability = 0.02;
  config.bus.seed = 7;
  Coordinator coordinator(w, model, config);
  coordinator.RunAsync(150000.0);  // 150 s of virtual time
  EXPECT_TRUE(coordinator.Converged());
  EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);

  // Same optimum as the synchronous deployment (approximately).
  Coordinator sync(w, model, SyncConfig());
  const RunResult sync_result = sync.RunSync(12000);
  EXPECT_NEAR(coordinator.CurrentUtility(), sync_result.final_utility,
              0.02 * std::fabs(sync_result.final_utility));
}

TEST(RuntimeTest, AsyncSurvivesHeavyLoss) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 1.0;
  config.bus.drop_probability = 0.25;
  config.bus.seed = 13;
  Coordinator coordinator(w, model, config);
  coordinator.RunAsync(200000.0);
  // With 25% loss convergence detection may flap, but the allocation must
  // still be near-feasible and sane.
  const auto report = coordinator.CurrentFeasibility();
  EXPECT_LT(report.max_resource_excess, 0.05);
  EXPECT_LT(report.max_path_ratio, 1.05);
}

TEST(RuntimeTest, EnactmentsAreSparseAfterConvergence) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  Coordinator coordinator(w, model, SyncConfig());
  coordinator.RunSync(12000);
  const auto& enactments = coordinator.enactments();
  ASSERT_FALSE(enactments.empty());
  // The first enactment happens immediately; the last well before the end
  // (no thrash at convergence).
  EXPECT_LE(enactments.front().round, 1);
  EXPECT_LT(enactments.back().round, coordinator.history().back().round);
  // Enactments are far fewer than rounds.
  EXPECT_LT(enactments.size(), coordinator.history().size() / 10);
}

TEST(RuntimeTest, ControllerSeesResourcePrices) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  Coordinator coordinator(w, model, SyncConfig());
  coordinator.RunSync(200);
  // After many rounds the controllers' view of mu matches the agents'.
  for (const TaskInfo& task : w.tasks()) {
    for (SubtaskId sid : task.subtasks) {
      const ResourceId r = w.subtask(sid).resource;
      EXPECT_NEAR(coordinator.controller(task.id).mu_seen(r),
                  coordinator.agent(r).mu(), 1e-9);
    }
  }
}

TEST(RuntimeTest, PrototypeWorkloadConvergesDistributed) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  Coordinator coordinator(w, model, SyncConfig());
  const RunResult result = coordinator.RunSync(12000);
  EXPECT_TRUE(result.final_feasibility.feasible);
  // Fast subtasks at the theoretical uncorrected equilibrium (~0.2857).
  const Assignment assignment = coordinator.CurrentAssignment();
  const double fast_share =
      model.share(SubtaskId(0u)).Share(assignment[0]);
  EXPECT_NEAR(fast_share, 0.2857, 0.01);
}

}  // namespace
}  // namespace lla::runtime
