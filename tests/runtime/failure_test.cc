// Failure-injection tests: the price protocol must recover from endpoint
// blackouts (crashed or partitioned nodes) because every message carries
// absolute state — the first exchange after healing repairs everything.
#include <cmath>

#include <gtest/gtest.h>

#include "net/bus.h"
#include "runtime/coordinator.h"
#include "workloads/paper.h"

namespace lla::runtime {
namespace {

TEST(BusBlackoutTest, DropsMessagesDuringWindow) {
  net::InProcessBus bus;
  int received = 0;
  const net::EndpointId a =
      bus.Register("a", [&](const net::Message&) { ++received; });
  const net::EndpointId b = bus.Register("b", nullptr);

  bus.BlackoutEndpoint(a, 10.0);
  EXPECT_TRUE(bus.IsBlackedOut(a));

  net::Message message;
  message.sender = b;
  message.receiver = a;
  message.payload = net::ResourcePriceUpdate{ResourceId(0u), 1.0, 0, false};
  bus.Send(message);
  bus.RunAll();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.stats().dropped, 1u);

  // After the window, delivery resumes.
  bus.RunUntil(11.0);
  EXPECT_FALSE(bus.IsBlackedOut(a));
  bus.Send(message);
  bus.RunAll();
  EXPECT_EQ(received, 1);
}

TEST(BusBlackoutTest, InFlightMessagesIntoWindowAreDropped) {
  net::BusConfig config;
  config.base_delay_ms = 5.0;
  net::InProcessBus bus(config);
  int received = 0;
  const net::EndpointId a =
      bus.Register("a", [&](const net::Message&) { ++received; });
  net::Message message;
  message.sender = a;
  message.receiver = a;
  message.payload = net::ResourcePriceUpdate{ResourceId(0u), 1.0, 0, false};
  bus.Send(message);            // delivery at t=5
  bus.BlackoutEndpoint(a, 8.0);  // window covers the delivery
  bus.RunAll();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.stats().dropped, 1u);
}

TEST(BusBlackoutTest, TimersKeepFiringDuringBlackout) {
  net::InProcessBus bus;
  int fired = 0;
  const net::EndpointId a =
      bus.Register("a", nullptr, [&](std::uint64_t) { ++fired; });
  bus.BlackoutEndpoint(a, 100.0);
  bus.ScheduleTimer(a, 10.0, 1);
  bus.RunUntil(20.0);
  EXPECT_EQ(fired, 1);  // the node is partitioned, not stopped
}

TEST(FailureRecoveryTest, ResourcePartitionHealsAndReconverges) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 1.0;
  config.bus.seed = 3;
  Coordinator coordinator(w, model, config);

  // Converge, then partition the busiest resource for 5 s of virtual time.
  coordinator.RunAsync(250000.0);
  ASSERT_TRUE(coordinator.Converged());
  const double before = coordinator.CurrentUtility();

  coordinator.PartitionResource(ResourceId(0u), 5000.0);
  coordinator.RunAsync(5000.0);
  // During the partition the controllers stop hearing resource 0's price;
  // they keep optimizing against a stale mu.  After healing, the system
  // must return to the same optimum.
  coordinator.RunAsync(250000.0);
  EXPECT_TRUE(coordinator.Converged());
  EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);
  EXPECT_NEAR(coordinator.CurrentUtility(), before,
              0.01 * std::fabs(before));
  EXPECT_GT(coordinator.bus().stats().dropped, 0u);
}

TEST(FailureRecoveryTest, ControllerPartitionHealsAndReconverges) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 1.0;
  config.bus.seed = 5;
  Coordinator coordinator(w, model, config);
  coordinator.RunAsync(250000.0);
  ASSERT_TRUE(coordinator.Converged());
  const double before = coordinator.CurrentUtility();

  coordinator.PartitionController(TaskId(1u), 8000.0);
  coordinator.RunAsync(8000.0);
  coordinator.RunAsync(250000.0);
  EXPECT_TRUE(coordinator.Converged());
  EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);
  EXPECT_NEAR(coordinator.CurrentUtility(), before,
              0.01 * std::fabs(before));
}

TEST(FailureRecoveryTest, RepeatedPartitionsDoNotWedgeTheProtocol) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 1.0;
  config.bus.seed = 7;
  Coordinator coordinator(w, model, config);
  for (int round = 0; round < 5; ++round) {
    coordinator.PartitionResource(
        ResourceId(static_cast<std::size_t>(round % 3)), 2000.0);
    coordinator.RunAsync(30000.0);
  }
  coordinator.RunAsync(120000.0);
  EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);
  // Fast subtasks end at the uncorrected equilibrium as usual.
  const Assignment assignment = coordinator.CurrentAssignment();
  EXPECT_NEAR(model.share(SubtaskId(0u)).Share(assignment[0]), 0.2857,
              0.02);
}

}  // namespace
}  // namespace lla::runtime
