// Failure-injection tests: the price protocol must recover from endpoint
// blackouts (crashed or partitioned nodes) because every message carries
// absolute state — the first exchange after healing repairs everything.
// Crash-restart (DESIGN.md §7.7) is stronger: the node loses its state, so
// recovery additionally needs the incarnation protocol (peers discard its
// pre-crash prices as stale) and either the repair exchange (cold restart)
// or a snapshot (checkpoint restart).
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/bus.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/coordinator.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla::runtime {
namespace {

/// Collects recovery.* trace events (ignores per-iteration records).
class EventCollector final : public obs::TraceSink {
 public:
  void OnIteration(const obs::IterationTrace&) override {}
  void OnEvent(const obs::TraceEvent& event) override {
    types.push_back(event.type);
  }
  std::vector<std::string> types;
};

std::uint64_t CounterValue(obs::MetricRegistry* metrics, const char* name) {
  return metrics->GetCounter(name)->value();
}

TEST(BusBlackoutTest, DropsMessagesDuringWindow) {
  net::InProcessBus bus;
  int received = 0;
  const net::EndpointId a =
      bus.Register("a", [&](const net::Message&) { ++received; });
  const net::EndpointId b = bus.Register("b", nullptr);

  bus.BlackoutEndpoint(a, 10.0);
  EXPECT_TRUE(bus.IsBlackedOut(a));

  net::Message message;
  message.sender = b;
  message.receiver = a;
  message.payload = net::ResourcePriceUpdate{ResourceId(0u), 1.0, 0, false};
  bus.Send(message);
  bus.RunAll();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.stats().dropped, 1u);

  // After the window, delivery resumes.
  bus.RunUntil(11.0);
  EXPECT_FALSE(bus.IsBlackedOut(a));
  bus.Send(message);
  bus.RunAll();
  EXPECT_EQ(received, 1);
}

TEST(BusBlackoutTest, InFlightMessagesIntoWindowAreDropped) {
  net::BusConfig config;
  config.base_delay_ms = 5.0;
  net::InProcessBus bus(config);
  int received = 0;
  const net::EndpointId a =
      bus.Register("a", [&](const net::Message&) { ++received; });
  net::Message message;
  message.sender = a;
  message.receiver = a;
  message.payload = net::ResourcePriceUpdate{ResourceId(0u), 1.0, 0, false};
  bus.Send(message);            // delivery at t=5
  bus.BlackoutEndpoint(a, 8.0);  // window covers the delivery
  bus.RunAll();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.stats().dropped, 1u);
}

TEST(BusBlackoutTest, TimersKeepFiringDuringBlackout) {
  net::InProcessBus bus;
  int fired = 0;
  const net::EndpointId a =
      bus.Register("a", nullptr, [&](std::uint64_t) { ++fired; });
  bus.BlackoutEndpoint(a, 100.0);
  bus.ScheduleTimer(a, 10.0, 1);
  bus.RunUntil(20.0);
  EXPECT_EQ(fired, 1);  // the node is partitioned, not stopped
}

// Pins the blackout boundary semantics the crash-restart machinery relies
// on: a window set via BlackoutEndpoint(e, T) is half-open [now, T) — a
// message delivered at exactly t == T is DELIVERED (Dispatch advances the
// clock before the receiver check, and IsBlackedOut uses strict <), while
// one delivered strictly inside the window drops.
TEST(BusBlackoutTest, WindowIsHalfOpenAtExpiry) {
  net::BusConfig config;
  config.base_delay_ms = 5.0;
  net::InProcessBus bus(config);
  int received = 0;
  const net::EndpointId a =
      bus.Register("a", [&](const net::Message&) { ++received; });
  const net::EndpointId b = bus.Register("b", nullptr);
  net::Message message;
  message.sender = b;  // healthy sender: the drop decision is receiver-side
  message.receiver = a;
  message.payload = net::ResourcePriceUpdate{ResourceId(0u), 1.0, 0, false};

  // Send first: a message sent while the receiver is already dark is
  // dropped at Send time and never tests the delivery-side boundary.
  bus.Send(message);             // sent at t=0, delivery at exactly t=5.0
  bus.BlackoutEndpoint(a, 5.0);  // window [0, 5) covers up to the delivery
  bus.RunAll();
  EXPECT_EQ(received, 1);  // boundary delivery goes through
  EXPECT_EQ(bus.stats().dropped, 0u);

  const double until = bus.now_ms() + 5.0 + 0.25;
  bus.Send(message);  // delivery lands 0.25 ms inside the window
  bus.BlackoutEndpoint(a, until);
  bus.RunAll();
  EXPECT_EQ(received, 1);  // still 1: the in-window delivery dropped
  EXPECT_EQ(bus.stats().dropped, 1u);
  EXPECT_TRUE(bus.IsBlackedOut(a));  // clock is at 10.0, inside the window
  bus.RunUntil(until);
  EXPECT_FALSE(bus.IsBlackedOut(a));  // now == until => no longer out
}

TEST(FailureRecoveryTest, ResourcePartitionHealsAndReconverges) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 1.0;
  config.bus.seed = 3;
  Coordinator coordinator(w, model, config);

  // Converge, then partition the busiest resource for 5 s of virtual time.
  coordinator.RunAsync(250000.0);
  ASSERT_TRUE(coordinator.Converged());
  const double before = coordinator.CurrentUtility();

  coordinator.PartitionResource(ResourceId(0u), 5000.0);
  coordinator.RunAsync(5000.0);
  // During the partition the controllers stop hearing resource 0's price;
  // they keep optimizing against a stale mu.  After healing, the system
  // must return to the same optimum.
  coordinator.RunAsync(250000.0);
  EXPECT_TRUE(coordinator.Converged());
  EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);
  EXPECT_NEAR(coordinator.CurrentUtility(), before,
              0.01 * std::fabs(before));
  EXPECT_GT(coordinator.bus().stats().dropped, 0u);
}

TEST(FailureRecoveryTest, ControllerPartitionHealsAndReconverges) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 1.0;
  config.bus.seed = 5;
  Coordinator coordinator(w, model, config);
  coordinator.RunAsync(250000.0);
  ASSERT_TRUE(coordinator.Converged());
  const double before = coordinator.CurrentUtility();

  coordinator.PartitionController(TaskId(1u), 8000.0);
  coordinator.RunAsync(8000.0);
  coordinator.RunAsync(250000.0);
  EXPECT_TRUE(coordinator.Converged());
  EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);
  EXPECT_NEAR(coordinator.CurrentUtility(), before,
              0.01 * std::fabs(before));
}

TEST(FailureRecoveryTest, RepeatedPartitionsDoNotWedgeTheProtocol) {
  auto workload = MakePrototypeWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 1.0;
  config.bus.seed = 7;
  Coordinator coordinator(w, model, config);
  for (int round = 0; round < 5; ++round) {
    coordinator.PartitionResource(
        ResourceId(static_cast<std::size_t>(round % 3)), 2000.0);
    coordinator.RunAsync(30000.0);
  }
  coordinator.RunAsync(120000.0);
  EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);
  // Fast subtasks end at the uncorrected equilibrium as usual.
  const Assignment assignment = coordinator.CurrentAssignment();
  EXPECT_NEAR(model.share(SubtaskId(0u)).Share(assignment[0]), 0.2857,
              0.02);
}

// --- Crash-restart recovery (DESIGN.md §7.7).

CoordinatorConfig RecoveryConfig(obs::MetricRegistry* metrics,
                                 obs::TraceSink* sink = nullptr) {
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  // A grace window that covers the repair round trip under the jitter
  // below (the default 3 ticks assumes a near-zero-delay bus).
  config.step.repair_grace_ticks = 12;
  config.bus.base_delay_ms = 1.0;
  // Jitter much larger than the outage below: some prices the agent sent
  // before its crash are still in flight when it restarts, so they arrive
  // AFTER the repair exchange fast-forwarded the controllers' incarnation
  // watermarks — the stale-rejection path must fire, observably.
  config.bus.jitter_ms = 60.0;
  config.bus.seed = 13;
  config.metrics = metrics;
  config.trace_sink = sink;
  return config;
}

// Cold restart of every resource agent, one at a time: total state loss,
// repair exchange, stale pre-crash prices rejected, and re-convergence to
// the no-failure utility within 1e-6 (relative).
TEST(CrashRestartTest, ColdRestartOfEachResourceAgentReconverges) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);

  // The no-failure reference: same config, no fault injected.
  obs::MetricRegistry ref_metrics;
  Coordinator reference(w, model, RecoveryConfig(&ref_metrics));
  reference.RunAsync(250000.0);
  ASSERT_TRUE(reference.Converged());
  const double no_failure = reference.CurrentUtility();

  for (std::size_t r = 0; r < w.resource_count(); ++r) {
    SCOPED_TRACE(::testing::Message() << "resource " << r);
    obs::MetricRegistry metrics;
    EventCollector events;
    Coordinator coordinator(w, model, RecoveryConfig(&metrics, &events));
    coordinator.RunAsync(250000.0);
    ASSERT_TRUE(coordinator.Converged());

    coordinator.CrashEndpoint(ResourceId(r));
    EXPECT_TRUE(coordinator.agent(ResourceId(r)).crashed());
    coordinator.RunAsync(2.0);  // much shorter than the in-flight tail
    coordinator.RestartEndpoint(ResourceId(r));  // cold: state lost
    EXPECT_FALSE(coordinator.agent(ResourceId(r)).crashed());
    coordinator.RunAsync(250000.0);

    EXPECT_TRUE(coordinator.Converged());
    EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);
    EXPECT_NEAR(coordinator.CurrentUtility(), no_failure,
                1e-6 * std::fabs(no_failure));

    // The incarnation protocol observably rejected pre-crash prices, the
    // repair exchange ran, and the restart was counted and traced.
    EXPECT_EQ(CounterValue(&metrics, "recovery.restarts"), 1u);
    EXPECT_GE(CounterValue(&metrics, "recovery.stale_rejected"), 1u);
    EXPECT_GE(CounterValue(&metrics, "recovery.repair_rounds"), 1u);
    EXPECT_EQ(std::count(events.types.begin(), events.types.end(),
                         "recovery.crash"),
              1);
    EXPECT_EQ(std::count(events.types.begin(), events.types.end(),
                         "recovery.restart"),
              1);
  }
}

// Checkpoint restart: the agent resumes from a snapshot taken before the
// crash — bounded staleness, no repair exchange needed.
TEST(CrashRestartTest, CheckpointRestartSkipsRepairAndReconverges) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  obs::MetricRegistry metrics;
  Coordinator coordinator(w, model, RecoveryConfig(&metrics));
  coordinator.RunAsync(250000.0);
  ASSERT_TRUE(coordinator.Converged());
  const double before = coordinator.CurrentUtility();

  const ResourceId victim(0u);
  const ResourceAgentSnapshot snapshot =
      coordinator.CheckpointResource(victim);
  EXPECT_EQ(snapshot.resource, victim);

  coordinator.CrashEndpoint(victim);
  coordinator.RunAsync(25.0);
  coordinator.RestartEndpoint(victim, snapshot);
  coordinator.RunAsync(250000.0);

  EXPECT_TRUE(coordinator.Converged());
  EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);
  EXPECT_NEAR(coordinator.CurrentUtility(), before,
              1e-6 * std::fabs(before));
  EXPECT_EQ(CounterValue(&metrics, "recovery.restarts"), 1u);
  // Restoring from the snapshot needs no peer repair.
  EXPECT_EQ(CounterValue(&metrics, "recovery.repair_rounds"), 0u);
}

// Controller crash-restart: controllers rebuild their price cache from the
// resources' unprompted periodic broadcasts, so a cold controller restart
// needs no explicit repair exchange either.
TEST(CrashRestartTest, ColdControllerRestartReconverges) {
  auto workload = MakeSimWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  LatencyModel model(w);
  obs::MetricRegistry metrics;
  Coordinator coordinator(w, model, RecoveryConfig(&metrics));
  coordinator.RunAsync(250000.0);
  ASSERT_TRUE(coordinator.Converged());
  const double before = coordinator.CurrentUtility();

  coordinator.CrashEndpoint(TaskId(1u));
  coordinator.RunAsync(25.0);
  coordinator.RestartEndpoint(TaskId(1u));
  coordinator.RunAsync(250000.0);

  EXPECT_TRUE(coordinator.Converged());
  EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);
  EXPECT_NEAR(coordinator.CurrentUtility(), before,
              1e-6 * std::fabs(before));
  EXPECT_EQ(CounterValue(&metrics, "recovery.restarts"), 1u);
}

// Sharded per-resource fault injection (DESIGN.md §7.10-7.11): crashing a
// resource inside a ShardAgent freezes only that resource — the shard's
// endpoint stays up, its other resources keep exchanging batched messages —
// and a cold restart runs the repair exchange for just that resource and
// reconverges to the no-failure utility.
TEST(CrashRestartTest, ShardedColdRestartOfOneResourceReconverges) {
  RandomWorkloadConfig workload_config;
  workload_config.seed = 7;
  workload_config.num_resources = 16;
  workload_config.num_tasks = 12;
  workload_config.min_subtasks = 12;
  workload_config.max_subtasks = 16;
  auto workload = MakeRandomWorkload(workload_config);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  auto sharded_config = [](obs::MetricRegistry* metrics,
                           obs::TraceSink* sink) {
    CoordinatorConfig config;
    config.step.gamma0 = 3.0;
    config.bus.base_delay_ms = 0.0;
    config.num_shards = 4;
    // Tighter than the default 1e-5 so both runs settle close enough for
    // the 1e-6-relative utility comparison below.
    config.convergence.rel_tol = 1e-8;
    config.metrics = metrics;
    config.trace_sink = sink;
    return config;
  };

  obs::MetricRegistry ref_metrics;
  Coordinator reference(w, model, sharded_config(&ref_metrics, nullptr));
  ASSERT_TRUE(reference.sharded());
  const RunResult reference_run = reference.RunSync(4000);
  ASSERT_TRUE(reference_run.converged);
  const double no_failure = reference.CurrentUtility();

  obs::MetricRegistry metrics;
  EventCollector events;
  Coordinator coordinator(w, model, sharded_config(&metrics, &events));
  ASSERT_TRUE(coordinator.RunSync(4000).converged);

  const ResourceId victim(5u);
  std::size_t shard = 0;
  while (!coordinator.shard_agent(shard).Hosts(victim)) ++shard;
  const ShardAgent& agent = coordinator.shard_agent(shard);
  ASSERT_GE(agent.resource_count(), 2u);  // the shard hosts survivors too

  coordinator.CrashEndpoint(victim);
  EXPECT_TRUE(agent.resource_crashed(victim));
  // The shard endpoint stays up through the outage: its round epoch keeps
  // advancing while the crashed resource's price goes out stale.
  const std::uint32_t epoch_at_crash = agent.epoch();
  for (int round = 0; round < 5; ++round) coordinator.RunSyncRound();
  EXPECT_GT(agent.epoch(), epoch_at_crash);
  EXPECT_TRUE(agent.resource_crashed(victim));

  coordinator.RestartEndpoint(victim);  // cold: the resource's state is lost
  EXPECT_FALSE(agent.resource_crashed(victim));
  const RunResult recovered = coordinator.RunSync(4000);
  EXPECT_TRUE(recovered.converged);
  EXPECT_FALSE(agent.resource_awaiting_repair(victim));
  EXPECT_TRUE(coordinator.CurrentFeasibility().feasible);
  EXPECT_NEAR(coordinator.CurrentUtility(), no_failure,
              1e-6 * std::fabs(no_failure));

  EXPECT_EQ(CounterValue(&metrics, "recovery.restarts"), 1u);
  EXPECT_GE(CounterValue(&metrics, "recovery.repair_rounds"), 1u);
  EXPECT_EQ(std::count(events.types.begin(), events.types.end(),
                       "recovery.crash"),
            1);
  EXPECT_EQ(std::count(events.types.begin(), events.types.end(),
                       "recovery.restart"),
            1);
}

}  // namespace
}  // namespace lla::runtime
