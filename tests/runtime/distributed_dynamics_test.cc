// Distributed accelerated price dynamics (DESIGN.md §7.12): the Eq. 8 mu
// update inside ResourceAgent / ShardAgent carries per-resource momentum
// state (velocity, Nesterov base, ramp phase).  These tests pin the
// properties the port must preserve:
//
//   * beta = 0 heavy-ball is BIT-IDENTICAL to the plain inline update —
//     memcmp, not EXPECT_NEAR — in both the unsharded and sharded
//     deployments (0 * v + gamma * g absorbs into the same IEEE additions).
//   * Momentum state survives a checkpoint/restore round-trip, and a
//     pre-momentum snapshot (has_dynamics = false) restores as FRESH
//     momentum re-based at the restored mu.
//   * A snapshot restore supersedes a half-finished repair exchange: the
//     restored agent broadcasts immediately instead of inheriting the grace
//     hold, and its stale repair bookkeeping is gone.
//   * The formerly assert-guarded unsharded-only coordinator surfaces
//     (CheckpointResource, snapshot RestartEndpoint, PartitionResource) and
//     ResourceAgent::RestoreFromSnapshot's shape check abort LOUDLY in every
//     build mode — these used to be NDEBUG-erasable asserts sitting in
//     front of empty-vector indexing.
#include <cstring>

#include <gtest/gtest.h>

#include "runtime/coordinator.h"
#include "workloads/paper.h"
#include "workloads/random.h"

namespace lla::runtime {
namespace {

Expected<Workload> TestWorkload(std::uint64_t seed) {
  RandomWorkloadConfig config;
  config.seed = seed;
  config.num_resources = 12;
  config.num_tasks = 8;
  config.min_subtasks = 3;
  config.max_subtasks = 7;
  config.target_utilization = 0.75;
  return MakeRandomWorkload(config);
}

CoordinatorConfig DynamicsCoordinatorConfig(DynamicsKind kind, double beta,
                                            int num_shards = 0) {
  CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 0.0;
  config.record_history = false;
  config.dynamics.kind = kind;
  config.dynamics.momentum = beta;
  config.num_shards = num_shards;
  return config;
}

bool SameDoubles(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// --- beta = 0 equivalence ------------------------------------------------

TEST(DistributedDynamicsTest, BetaZeroHeavyBallBitIdenticalToPlain) {
  auto workload = TestWorkload(91);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  for (const int num_shards : {0, 4}) {
    SCOPED_TRACE(num_shards == 0 ? "unsharded" : "sharded");
    Coordinator plain(
        w, model, DynamicsCoordinatorConfig(DynamicsKind::kPlain, 0.9,
                                            num_shards));
    Coordinator accelerated(
        w, model, DynamicsCoordinatorConfig(DynamicsKind::kHeavyBall, 0.0,
                                            num_shards));
    for (int round = 0; round < 80; ++round) {
      plain.RunSyncRound();
      accelerated.RunSyncRound();
    }
    const PriceVector plain_prices = plain.CurrentPrices();
    const PriceVector accel_prices = accelerated.CurrentPrices();
    EXPECT_TRUE(SameDoubles(plain_prices.mu, accel_prices.mu));
    EXPECT_TRUE(SameDoubles(plain_prices.lambda, accel_prices.lambda));
    EXPECT_TRUE(
        SameDoubles(plain.CurrentAssignment(), accelerated.CurrentAssignment()));
  }
}

// --- momentum actually engages at beta > 0 -------------------------------

TEST(DistributedDynamicsTest, MomentumStateMovesAndIsObservable) {
  auto workload = TestWorkload(92);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  Coordinator coordinator(
      w, model, DynamicsCoordinatorConfig(DynamicsKind::kHeavyBall, 0.7));
  for (int round = 0; round < 30; ++round) coordinator.RunSyncRound();
  // At least one congested resource must have built nonzero velocity by now
  // (all-zero velocity would mean the dynamics never engaged).
  bool any_velocity = false;
  for (const ResourceInfo& resource : w.resources()) {
    if (coordinator.agent(resource.id).dynamics_state().velocity != 0.0) {
      any_velocity = true;
      break;
    }
  }
  EXPECT_TRUE(any_velocity);

  // Sharded: same observable through ShardAgent::velocity().
  Coordinator sharded(
      w, model,
      DynamicsCoordinatorConfig(DynamicsKind::kHeavyBall, 0.7, 4));
  for (int round = 0; round < 30; ++round) sharded.RunSyncRound();
  bool any_shard_velocity = false;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    const ShardAgent& agent = sharded.shard_agent(s);
    for (const ResourceInfo& resource : w.resources()) {
      if (agent.Hosts(resource.id) && agent.velocity(resource.id) != 0.0) {
        any_shard_velocity = true;
      }
    }
  }
  EXPECT_TRUE(any_shard_velocity);
}

// --- snapshot round-trip -------------------------------------------------

TEST(DistributedDynamicsTest, SnapshotCarriesAndRestoresMomentumState) {
  auto workload = TestWorkload(93);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  Coordinator source(
      w, model, DynamicsCoordinatorConfig(DynamicsKind::kNesterov, 0.7));
  for (int round = 0; round < 40; ++round) source.RunSyncRound();

  // Pick a resource whose dynamics have engaged.
  ResourceId victim = w.resources().front().id;
  for (const ResourceInfo& resource : w.resources()) {
    if (source.agent(resource.id).dynamics_state().phase != 0.0) {
      victim = resource.id;
      break;
    }
  }
  const ResourceAgentSnapshot snapshot = source.CheckpointResource(victim);
  EXPECT_TRUE(snapshot.has_dynamics);
  const ComponentDynamicsState& live = source.agent(victim).dynamics_state();
  EXPECT_EQ(snapshot.velocity, live.velocity);
  EXPECT_EQ(snapshot.dynamics_base, live.base);
  EXPECT_EQ(snapshot.phase, live.phase);

  // Restore into a fresh deployment: the momentum state must come back
  // exactly.
  Coordinator target(
      w, model, DynamicsCoordinatorConfig(DynamicsKind::kNesterov, 0.7));
  target.RestartEndpoint(victim, snapshot);
  const ComponentDynamicsState& restored =
      target.agent(victim).dynamics_state();
  EXPECT_EQ(restored.velocity, snapshot.velocity);
  EXPECT_EQ(restored.base, snapshot.dynamics_base);
  EXPECT_EQ(restored.phase, snapshot.phase);

  // A pre-momentum (v1-era) snapshot restores as FRESH momentum re-based at
  // the restored mu: velocity and phase zero, base = mu.
  ResourceAgentSnapshot old_format = snapshot;
  old_format.has_dynamics = false;
  old_format.velocity = 123.0;  // must be ignored
  old_format.dynamics_base = 456.0;
  old_format.phase = 789.0;
  Coordinator fresh(
      w, model, DynamicsCoordinatorConfig(DynamicsKind::kNesterov, 0.7));
  fresh.RestartEndpoint(victim, old_format);
  const ComponentDynamicsState& reseeded = fresh.agent(victim).dynamics_state();
  EXPECT_EQ(reseeded.velocity, 0.0);
  EXPECT_EQ(reseeded.phase, 0.0);
  EXPECT_EQ(reseeded.base, snapshot.mu);
}

// --- restore supersedes a half-finished repair exchange ------------------

TEST(DistributedDynamicsTest, SnapshotRestoreSupersedesRepairExchange) {
  auto workload = TestWorkload(94);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  Coordinator coordinator(
      w, model, DynamicsCoordinatorConfig(DynamicsKind::kHeavyBall, 0.7));
  for (int round = 0; round < 20; ++round) coordinator.RunSyncRound();

  const ResourceId victim = w.resources().front().id;
  const ResourceAgentSnapshot snapshot =
      coordinator.CheckpointResource(victim);

  // Cold restart puts the agent into the repair exchange (grace-held
  // broadcasts).  Restoring from a snapshot mid-exchange must cancel it:
  // the agent broadcasts on the very next round instead of holding.
  coordinator.CrashEndpoint(victim);
  coordinator.RestartEndpoint(victim);  // cold: awaiting repair
  EXPECT_TRUE(coordinator.agent(victim).awaiting_repair());

  coordinator.RestartEndpoint(victim, snapshot);
  EXPECT_FALSE(coordinator.agent(victim).awaiting_repair());
  const std::uint32_t epoch_before = coordinator.agent(victim).epoch();
  coordinator.RunSyncRound();
  // A grace-held agent would not have advanced its epoch; the restored one
  // must have.
  EXPECT_EQ(coordinator.agent(victim).epoch(), epoch_before + 1);
}

// --- loud aborts replace NDEBUG-erasable asserts -------------------------

using DistributedDynamicsDeathTest = ::testing::Test;

TEST(DistributedDynamicsDeathTest, CheckpointResourceAbortsWhenSharded) {
  auto workload = TestWorkload(95);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  Coordinator sharded(
      w, model, DynamicsCoordinatorConfig(DynamicsKind::kPlain, 0.0, 4));
  EXPECT_DEATH(sharded.CheckpointResource(w.resources().front().id),
               "CheckpointResource is unsharded-only");
}

TEST(DistributedDynamicsDeathTest, SnapshotRestartAbortsWhenSharded) {
  auto workload = TestWorkload(95);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);

  // Take a legitimate snapshot from an unsharded deployment, then try to
  // restore it into a sharded one.
  Coordinator unsharded(
      w, model, DynamicsCoordinatorConfig(DynamicsKind::kPlain, 0.0));
  const ResourceAgentSnapshot snapshot =
      unsharded.CheckpointResource(w.resources().front().id);

  Coordinator sharded(
      w, model, DynamicsCoordinatorConfig(DynamicsKind::kPlain, 0.0, 4));
  EXPECT_DEATH(sharded.RestartEndpoint(w.resources().front().id, snapshot),
               "RestartEndpoint\\(resource, snapshot\\) is unsharded-only");
}

TEST(DistributedDynamicsDeathTest, PartitionResourceAbortsWhenSharded) {
  auto workload = TestWorkload(95);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  Coordinator sharded(
      w, model, DynamicsCoordinatorConfig(DynamicsKind::kPlain, 0.0, 4));
  EXPECT_DEATH(sharded.PartitionResource(w.resources().front().id, 10.0),
               "PartitionResource is unsharded-only");
}

TEST(DistributedDynamicsDeathTest, RestoreRejectsMismatchedSnapshot) {
  auto workload = TestWorkload(96);
  ASSERT_TRUE(workload.ok()) << workload.error();
  const Workload& w = workload.value();
  LatencyModel model(w);
  Coordinator coordinator(
      w, model, DynamicsCoordinatorConfig(DynamicsKind::kPlain, 0.0));

  // Wrong resource id.
  ResourceAgentSnapshot wrong_resource =
      coordinator.CheckpointResource(w.resources().front().id);
  wrong_resource.resource = ResourceId(w.resources().back().id.value());
  if (wrong_resource.resource != w.resources().front().id) {
    EXPECT_DEATH(
        coordinator.RestartEndpoint(w.resources().front().id, wrong_resource),
        "does not match agent");
  }

  // Wrong latency vector shape (snapshot of a structurally different
  // workload).
  ResourceAgentSnapshot wrong_shape =
      coordinator.CheckpointResource(w.resources().front().id);
  wrong_shape.latencies_ms.push_back(1.0);
  EXPECT_DEATH(
      coordinator.RestartEndpoint(w.resources().front().id, wrong_shape),
      "does not match agent");
}

}  // namespace
}  // namespace lla::runtime
