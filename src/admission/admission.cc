#include "admission/admission.h"

#include <memory>
#include <sstream>

#include "core/engine_batch.h"
#include "solver/phase1.h"

namespace lla::admission {

const char* ToString(Decision decision) {
  switch (decision) {
    case Decision::kAdmitted:
      return "admitted";
    case Decision::kRejectedInvalid:
      return "rejected (invalid)";
    case Decision::kRejectedInfeasible:
      return "rejected (infeasible)";
    case Decision::kRejectedNetBenefit:
      return "rejected (net benefit)";
  }
  return "?";
}

AdmissionController::AdmissionController(std::vector<ResourceSpec> resources,
                                         AdmissionConfig config)
    : resources_(std::move(resources)), config_(config) {}

std::vector<std::string> AdmissionController::TaskNames() const {
  std::vector<std::string> names;
  names.reserve(tasks_.size());
  for (const TaskSpec& task : tasks_) names.push_back(task.name);
  return names;
}

Expected<Workload> AdmissionController::BuildWorkload() const {
  if (tasks_.empty()) {
    return Expected<Workload>::Error("AdmissionController: no tasks admitted");
  }
  return Workload::Create(resources_, tasks_);
}

std::vector<ProbeResult> AdmissionController::ProbeAll(
    const std::vector<std::vector<TaskSpec>>& candidate_sets) const {
  // External callers probe arbitrary sets; none is known to be the
  // incumbent, so no warm start applies.
  return ProbeAllImpl(candidate_sets, candidate_sets.size());
}

std::vector<ProbeResult> AdmissionController::ProbeAllImpl(
    const std::vector<std::vector<TaskSpec>>& candidate_sets,
    std::size_t incumbent_index) const {
  std::vector<ProbeResult> results(candidate_sets.size());

  // Validation and the cheap prechecks run serially in set order; sets that
  // survive queue an optimizer run.  Workload/model live on the heap so
  // their addresses stay stable for the batch engines.
  struct PendingRun {
    std::size_t index;
    std::unique_ptr<Workload> workload;
    std::unique_ptr<LatencyModel> model;
  };
  std::vector<PendingRun> pending;
  for (std::size_t i = 0; i < candidate_sets.size(); ++i) {
    ProbeResult& out = results[i];
    auto created = Workload::Create(resources_, candidate_sets[i]);
    if (!created.ok()) {
      out.reason = created.error();
      continue;
    }
    auto workload = std::make_unique<Workload>(std::move(created.value()));

    // Necessary condition: sustainable minimum shares fit.
    bool precheck_failed = false;
    for (const ResourceInfo& resource : workload->resources()) {
      const double demand = workload->MinShareDemand(resource.id);
      if (demand > resource.capacity) {
        std::ostringstream os;
        os << "minimum sustainable share demand " << demand << " exceeds "
           << resource.name << " capacity " << resource.capacity;
        out.reason = os.str();
        precheck_failed = true;
        break;
      }
    }
    if (precheck_failed) continue;

    auto model = std::make_unique<LatencyModel>(*workload);

    // Fast certificate: Phase-I finds (or fails to find) an interior point.
    if (config_.phase1_precheck) {
      Phase1Solver phase1(*workload, *model);
      const Phase1Result result = phase1.Solve();
      if (!result.strictly_feasible && result.max_violation > 1e-3) {
        std::ostringstream os;
        os << "Phase-I residual " << result.max_violation
           << ": no feasible assignment exists";
        out.reason = os.str();
        continue;
      }
    }
    pending.push_back({i, std::move(workload), std::move(model)});
  }
  if (pending.empty()) return results;

  // Full test: the optimizer itself (paper Sec. 5.4), one engine per
  // surviving set, stepped concurrently across probe_threads.
  LlaConfig lla_config = config_.lla;
  lla_config.record_history = false;
  EngineBatch batch(config_.probe_threads);
  std::size_t incumbent_pending = pending.size();
  for (std::size_t p = 0; p < pending.size(); ++p) {
    PendingRun& run = pending[p];
    const int index = batch.Add(*run.workload, *run.model, lla_config);
    if (run.index == incumbent_index && incumbent_prices_valid_ &&
        incumbent_prices_.mu.size() == run.workload->resource_count() &&
        incumbent_prices_.lambda.size() == run.workload->path_count()) {
      // Re-probing the unchanged incumbent set: start at its last known
      // optimum instead of cold.  The warm start primes the engine's
      // active-set baseline, so the re-run's iterations are incremental.
      batch.engine(index).WarmStart(incumbent_prices_);
    }
    if (run.index == incumbent_index) incumbent_pending = p;
  }
  const std::vector<RunResult> runs = batch.RunAll(config_.max_iterations);
  for (std::size_t p = 0; p < pending.size(); ++p) {
    ProbeResult& out = results[pending[p].index];
    const RunResult& run = runs[p];
    out.evaluated = true;
    out.utility = run.final_utility;
    if (!run.converged || !run.final_feasibility.feasible) {
      std::ostringstream os;
      os << "optimizer " << (run.converged ? "converged infeasible" :
                             "did not converge")
         << " after " << run.iterations << " iterations";
      out.reason = os.str();
    } else {
      out.schedulable = true;
      if (p == incumbent_pending) {
        incumbent_prices_ = batch.engine(static_cast<int>(p)).prices();
        incumbent_prices_valid_ = true;
      }
    }
  }
  return results;
}

bool AdmissionController::Schedulable(const std::vector<TaskSpec>& tasks,
                                      double* utility,
                                      std::string* reason) const {
  const ProbeResult probe = ProbeAll({tasks}).front();
  if (probe.evaluated) *utility = probe.utility;
  *reason = probe.reason;
  return probe.schedulable;
}

AdmissionReport AdmissionController::TryAdmit(const TaskSpec& candidate) {
  AdmissionReport report;

  std::vector<TaskSpec> trial = tasks_;
  trial.push_back(candidate);
  {
    // Validation distinct from schedulability for a precise decision code.
    auto workload = Workload::Create(resources_, trial);
    if (!workload.ok()) {
      report.decision = Decision::kRejectedInvalid;
      report.reason = workload.error();
      return report;
    }
  }

  // The incumbent-only optimum (net-benefit policy and reporting) and the
  // with-candidate test are independent optimizations: probe them side by
  // side — concurrent when config_.probe_threads > 1, and bit-identical to
  // the sequential evaluation either way.
  std::vector<std::vector<TaskSpec>> sets;
  if (!tasks_.empty()) sets.push_back(tasks_);
  sets.push_back(trial);
  const std::vector<ProbeResult> probes =
      ProbeAllImpl(sets, tasks_.empty() ? sets.size() : 0);
  if (!tasks_.empty() && probes.front().schedulable) {
    report.utility_before = probes.front().utility;
  }
  const ProbeResult& trial_probe = probes.back();
  if (!trial_probe.schedulable) {
    report.decision = Decision::kRejectedInfeasible;
    report.reason = trial_probe.reason;
    return report;
  }
  const double utility_after = trial_probe.utility;
  report.utility_after = utility_after;

  if (config_.policy == Policy::kNetBenefit &&
      utility_after - report.utility_before < config_.min_net_benefit) {
    std::ostringstream os;
    os << "net benefit " << (utility_after - report.utility_before)
       << " below required " << config_.min_net_benefit;
    report.decision = Decision::kRejectedNetBenefit;
    report.reason = os.str();
    return report;
  }

  tasks_.push_back(candidate);
  incumbent_prices_valid_ = false;  // the admitted set (and its shape) moved
  report.decision = Decision::kAdmitted;
  std::ostringstream os;
  os << "admitted; optimal utility " << report.utility_before << " -> "
     << utility_after;
  report.reason = os.str();
  return report;
}

bool AdmissionController::Remove(const std::string& task_name) {
  for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
    if (it->name == task_name) {
      tasks_.erase(it);
      incumbent_prices_valid_ = false;
      return true;
    }
  }
  return false;
}

double AdmissionController::CurrentUtility() const {
  if (tasks_.empty()) return 0.0;
  const ProbeResult probe = ProbeAllImpl({tasks_}, 0).front();
  return probe.evaluated ? probe.utility : 0.0;
}

}  // namespace lla::admission
