#include "admission/admission.h"

#include <sstream>

#include "solver/phase1.h"

namespace lla::admission {

const char* ToString(Decision decision) {
  switch (decision) {
    case Decision::kAdmitted:
      return "admitted";
    case Decision::kRejectedInvalid:
      return "rejected (invalid)";
    case Decision::kRejectedInfeasible:
      return "rejected (infeasible)";
    case Decision::kRejectedNetBenefit:
      return "rejected (net benefit)";
  }
  return "?";
}

AdmissionController::AdmissionController(std::vector<ResourceSpec> resources,
                                         AdmissionConfig config)
    : resources_(std::move(resources)), config_(config) {}

std::vector<std::string> AdmissionController::TaskNames() const {
  std::vector<std::string> names;
  names.reserve(tasks_.size());
  for (const TaskSpec& task : tasks_) names.push_back(task.name);
  return names;
}

Expected<Workload> AdmissionController::BuildWorkload() const {
  if (tasks_.empty()) {
    return Expected<Workload>::Error("AdmissionController: no tasks admitted");
  }
  return Workload::Create(resources_, tasks_);
}

bool AdmissionController::Schedulable(const std::vector<TaskSpec>& tasks,
                                      double* utility,
                                      std::string* reason) const {
  auto workload = Workload::Create(resources_, tasks);
  if (!workload.ok()) {
    *reason = workload.error();
    return false;
  }
  const Workload& w = workload.value();
  LatencyModel model(w);

  // Necessary condition: sustainable minimum shares fit.
  for (const ResourceInfo& resource : w.resources()) {
    const double demand = w.MinShareDemand(resource.id);
    if (demand > resource.capacity) {
      std::ostringstream os;
      os << "minimum sustainable share demand " << demand << " exceeds "
         << resource.name << " capacity " << resource.capacity;
      *reason = os.str();
      return false;
    }
  }

  // Fast certificate: Phase-I finds (or fails to find) an interior point.
  if (config_.phase1_precheck) {
    Phase1Solver phase1(w, model);
    const Phase1Result result = phase1.Solve();
    if (!result.strictly_feasible && result.max_violation > 1e-3) {
      std::ostringstream os;
      os << "Phase-I residual " << result.max_violation
         << ": no feasible assignment exists";
      *reason = os.str();
      return false;
    }
  }

  // Full test: the optimizer itself (paper Sec. 5.4).
  LlaConfig lla_config = config_.lla;
  lla_config.record_history = false;
  LlaEngine engine(w, model, lla_config);
  const RunResult run = engine.Run(config_.max_iterations);
  *utility = run.final_utility;
  if (!run.converged || !run.final_feasibility.feasible) {
    std::ostringstream os;
    os << "optimizer " << (run.converged ? "converged infeasible" :
                           "did not converge")
       << " after " << run.iterations << " iterations";
    *reason = os.str();
    return false;
  }
  return true;
}

AdmissionReport AdmissionController::TryAdmit(const TaskSpec& candidate) {
  AdmissionReport report;

  // Utility of the incumbents (for the net-benefit policy and reporting).
  if (!tasks_.empty()) {
    std::string unused;
    if (!Schedulable(tasks_, &report.utility_before, &unused)) {
      // Should not happen (we only admit schedulable sets), but stay safe.
      report.utility_before = 0.0;
    }
  }

  std::vector<TaskSpec> trial = tasks_;
  trial.push_back(candidate);

  std::string reason;
  double utility_after = 0.0;
  {
    // Validation distinct from schedulability for a precise decision code.
    auto workload = Workload::Create(resources_, trial);
    if (!workload.ok()) {
      report.decision = Decision::kRejectedInvalid;
      report.reason = workload.error();
      return report;
    }
  }
  if (!Schedulable(trial, &utility_after, &reason)) {
    report.decision = Decision::kRejectedInfeasible;
    report.reason = reason;
    return report;
  }
  report.utility_after = utility_after;

  if (config_.policy == Policy::kNetBenefit &&
      utility_after - report.utility_before < config_.min_net_benefit) {
    std::ostringstream os;
    os << "net benefit " << (utility_after - report.utility_before)
       << " below required " << config_.min_net_benefit;
    report.decision = Decision::kRejectedNetBenefit;
    report.reason = os.str();
    return report;
  }

  tasks_.push_back(candidate);
  report.decision = Decision::kAdmitted;
  std::ostringstream os;
  os << "admitted; optimal utility " << report.utility_before << " -> "
     << utility_after;
  report.reason = os.str();
  return report;
}

bool AdmissionController::Remove(const std::string& task_name) {
  for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
    if (it->name == task_name) {
      tasks_.erase(it);
      return true;
    }
  }
  return false;
}

double AdmissionController::CurrentUtility() const {
  if (tasks_.empty()) return 0.0;
  double utility = 0.0;
  std::string unused;
  Schedulable(tasks_, &utility, &unused);
  return utility;
}

}  // namespace lla::admission
