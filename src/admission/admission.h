// Admission control layered on top of LLA (paper Sec. 3.2: "We assume any
// admission control is layered on top of our approach").
//
// The controller owns the set of admitted task specs.  A candidate task is
// admitted only if the combined workload remains schedulable — tested
// exactly the way the paper proposes (Sec. 5.4): run the optimizer and see
// whether it converges to a feasible assignment, with two cheap prechecks
// first (sustainable-share sums and the Phase-I feasibility solver).
//
// Two policies:
//   * kFeasibilityOnly — admit anything schedulable;
//   * kNetBenefit     — additionally require that total utility with the
//     newcomer exceed the incumbent-only utility by a margin, i.e. the
//     newcomer must bring more benefit than the latency degradation it
//     inflicts on the incumbents.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/expected.h"
#include "core/engine.h"
#include "model/workload.h"

namespace lla::admission {

enum class Decision {
  kAdmitted,
  kRejectedInvalid,      ///< candidate fails workload validation
  kRejectedInfeasible,   ///< combined workload is not schedulable
  kRejectedNetBenefit,   ///< schedulable but hurts aggregate utility
};

const char* ToString(Decision decision);

enum class Policy { kFeasibilityOnly, kNetBenefit };

struct AdmissionConfig {
  LlaConfig lla;
  int max_iterations = 8000;
  Policy policy = Policy::kFeasibilityOnly;
  /// kNetBenefit: required utility improvement over the incumbent-only
  /// optimum.
  double min_net_benefit = 0.0;
  /// Run the Phase-I solver before the full optimizer (fast reject).
  bool phase1_precheck = true;
  /// Threads for concurrent admission probes: TryAdmit runs its
  /// incumbent-only and with-candidate optimizations side by side, and
  /// ProbeAll fans independent what-if sets across an EngineBatch.  Each
  /// probe's result is bit-identical to a serial evaluation (the probes
  /// share nothing mutable); 1 keeps everything sequential.
  int probe_threads = 1;
};

struct AdmissionReport {
  Decision decision = Decision::kRejectedInvalid;
  std::string reason;
  /// Optimal utility of the incumbent workload (0 when empty).
  double utility_before = 0.0;
  /// Optimal utility including the candidate (only when evaluated).
  double utility_after = 0.0;
};

/// Outcome of one what-if probe (see AdmissionController::ProbeAll).
struct ProbeResult {
  bool schedulable = false;
  /// True when the set survived validation and the prechecks and the full
  /// optimizer ran; `utility` is meaningful (even for an infeasible run).
  bool evaluated = false;
  double utility = 0.0;
  std::string reason;  ///< empty when schedulable
};

class AdmissionController {
 public:
  AdmissionController(std::vector<ResourceSpec> resources,
                      AdmissionConfig config = {});

  /// Evaluates the candidate; on admission it joins the controlled set.
  AdmissionReport TryAdmit(const TaskSpec& candidate);

  /// Removes an admitted task by name; false if absent.
  bool Remove(const std::string& task_name);

  std::size_t task_count() const { return tasks_.size(); }
  std::vector<std::string> TaskNames() const;

  /// Builds the current workload (error when no tasks are admitted).
  Expected<Workload> BuildWorkload() const;

  /// Optimal utility of the current set (re-optimized; 0 when empty).
  double CurrentUtility() const;

  /// What-if probes: evaluates every candidate task set through the full
  /// pipeline (validation, min-share precheck, optional Phase-I, LLA run)
  /// without touching the admitted set.  The optimizer runs of all sets
  /// that survive the prechecks execute concurrently across
  /// config.probe_threads (EngineBatch); each result is bit-identical to a
  /// serial evaluation.
  std::vector<ProbeResult> ProbeAll(
      const std::vector<std::vector<TaskSpec>>& candidate_sets) const;

 private:
  /// ProbeAll plus knowledge of which set (if any) is exactly the admitted
  /// incumbent set: that probe warm-starts from the cached incumbent prices
  /// (inheriting the active set, so its re-run is mostly incremental) and
  /// refreshes the cache when it converges.
  std::vector<ProbeResult> ProbeAllImpl(
      const std::vector<std::vector<TaskSpec>>& candidate_sets,
      std::size_t incumbent_index) const;

  /// Runs the full schedulability pipeline on a task set; fills utility.
  bool Schedulable(const std::vector<TaskSpec>& tasks, double* utility,
                   std::string* reason) const;

  std::vector<ResourceSpec> resources_;
  AdmissionConfig config_;
  std::vector<TaskSpec> tasks_;

  /// Converged dual state of the last incumbent-only optimization.
  /// Invalidated whenever the admitted set changes (TryAdmit success,
  /// Remove); refreshed by incumbent probes (mutable: probing is logically
  /// const).  Repeated probes of an unchanged incumbent set — every
  /// TryAdmit evaluates it for the net-benefit baseline — then re-converge
  /// from the optimum in a handful of near-zero-work iterations.
  mutable PriceVector incumbent_prices_;
  mutable bool incumbent_prices_valid_ = false;
};

}  // namespace lla::admission
