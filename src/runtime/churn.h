// High-churn serving layer (DESIGN.md §7.9): applies a stream of task
// join / leave / WCET-correction mutations against ONE live engine, the
// deployment shape where tasks arrive and depart continuously while the
// optimizer keeps serving latency assignments.
//
// Structural mutations rebuild the immutable Workload (clone-with-edit via
// the spec list the driver owns) and seed the fresh engine with
// LlaEngine::WarmStartStructural, so re-convergence only pays for the dirty
// closure of the changed task.  Joins are admission-gated: bursts of
// consecutive joins in a script are probed as CUMULATIVE candidate sets in
// one AdmissionController::ProbeAll call (EngineBatch fans the probes
// across admission.probe_threads), then the longest all-schedulable prefix
// is applied in order — the gate decision is identical to probing each join
// sequentially against the set it would actually land on.  Probes run
// against the live system's CORRECTED WCETs (the accumulated corrections
// baked into the probed specs): the stale spec workload can look
// schedulable while the corrected system is not, and admitting against it
// would stall the live engine on an infeasible join.  WCET mutations
// stay in-place (LatencyModel::SetAdditiveError + ClearConvergenceWindow);
// the accumulated corrections are keyed by (task name, subtask position) so
// they survive structural rebuilds.
//
// Everything is deterministic: a fixed mutation script produces bitwise
// identical final prices at any thread count, dense or active-set
// (churn_property_test pins this with memcmp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "admission/admission.h"
#include "common/expected.h"
#include "core/engine.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla::runtime {

enum class ChurnKind { kJoin, kLeave, kWcetPerturb };
const char* ToString(ChurnKind kind);

/// One scripted mutation.  Fields beyond `kind` are read per kind; indices
/// are taken modulo the live count at application time so a pre-generated
/// script stays valid as the task set grows and shrinks.
struct ChurnMutation {
  ChurnKind kind = ChurnKind::kLeave;
  TaskSpec join_task;             ///< kJoin: the candidate
  std::size_t leave_index = 0;    ///< kLeave: index into the live task list
  std::size_t subtask_index = 0;  ///< kWcetPerturb: index into live subtasks
  double wcet_error_ms = 0.0;     ///< kWcetPerturb: additive WCET correction
};

struct ChurnConfig {
  /// Engine configuration for the live engine and every structural restart.
  LlaConfig lla;
  /// Per-mutation re-convergence budget.
  int max_iterations = 12000;
  /// Leaves are skipped (applied = false) when they would drop the live set
  /// below this.
  std::size_t min_tasks = 1;
  /// ProbeAll gate for joins (its own LlaConfig + probe_threads).
  admission::AdmissionConfig admission;
  /// Escape hatch for warm-continuation stalls: near the saturation
  /// boundary the dual dynamics resumed from a stale operating point can
  /// limit-cycle (observed: an in-place WCET correction left the warm
  /// engine at 1.6e-5 resource excess for 120k+ iterations while a COLD
  /// solve of the identical system converged in 9k).  When a mutation's
  /// re-convergence misses max_iterations, Reset() and re-run once from
  /// cold; both attempts are charged to the record (note says so).
  bool cold_restart_on_stall = true;
  /// Disable to apply joins unprobed (property tests exercising the engine
  /// path without paying for admission probes).
  bool gate_joins = true;
};

/// Outcome of one mutation, the bench's unit of record.
struct ChurnRecord {
  ChurnKind kind = ChurnKind::kLeave;
  bool applied = false;    ///< mutated the live system (admitted joins etc.)
  bool converged = false;  ///< re-converged within max_iterations
  int iterations = 0;      ///< re-convergence iterations for THIS mutation
  /// Subtask solves to re-converge, including the structural prime (one
  /// dense solve of the new workload) so warm/cold comparisons stay
  /// symmetric with bench_convergence's accounting.
  std::uint64_t subtask_solves = 0;
  double final_utility = 0.0;
  double wall_ms = 0.0;
  std::size_t tasks_after = 0;
  std::string note;  ///< rejection / skip reason when !applied
};

class ChurnDriver {
 public:
  /// Validates and optimizes the initial workload (the incumbent the first
  /// mutation hits is already converged).
  static Expected<ChurnDriver> Create(std::vector<ResourceSpec> resources,
                                      std::vector<TaskSpec> tasks,
                                      ChurnConfig config);

  ChurnDriver(ChurnDriver&&) = default;
  ChurnDriver& operator=(ChurnDriver&&) = default;

  /// Applies one mutation (joins probed individually).
  ChurnRecord Apply(const ChurnMutation& mutation);

  /// Applies a whole script; consecutive joins are probed as one cumulative
  /// ProbeAll batch (see file comment).  Returns one record per mutation,
  /// in script order.
  std::vector<ChurnRecord> ApplyAll(const std::vector<ChurnMutation>& script);

  const Workload& workload() const { return *workload_; }
  const std::vector<TaskSpec>& task_specs() const { return tasks_; }
  const std::vector<ResourceSpec>& resource_specs() const {
    return resources_;
  }
  LlaEngine& engine() { return *engine_; }
  const LlaEngine& engine() const { return *engine_; }
  /// The live model (accumulated WCET corrections applied) — lets callers
  /// run reference engines against the exact system state, e.g. the
  /// bench's warm-vs-cold gate.
  const LatencyModel& model() const { return *model_; }

 private:
  ChurnDriver(std::vector<ResourceSpec> resources,
              std::vector<TaskSpec> tasks, ChurnConfig config);

  /// The live task specs with the accumulated WCET corrections baked into
  /// wcet_ms — what admission must probe: the spec-level workload can be
  /// schedulable while the corrected system the engine actually serves is
  /// not (positive drift), and admitting against the stale specs would
  /// stall the live engine on an infeasible join.
  std::vector<TaskSpec> CorrectedSpecs() const;

  ChurnRecord ApplyJoin(const TaskSpec& candidate, bool pre_approved);
  ChurnRecord ApplyLeave(std::size_t leave_index);
  ChurnRecord ApplyPerturb(const ChurnMutation& mutation);
  /// Swaps in a rebuilt workload/model/engine warm-started from the live
  /// prices; returns false (live system untouched) on any failure.
  bool CommitStructural(std::vector<TaskSpec> new_tasks,
                        StructuralChange change, std::string* error);
  void RunAndRecord(std::size_t prime_solves, ChurnRecord* record);
  /// Re-applies the accumulated WCET corrections to a fresh model.
  void ReplayWcetErrors();

  std::vector<ResourceSpec> resources_;
  std::vector<TaskSpec> tasks_;
  ChurnConfig config_;
  std::unique_ptr<admission::AdmissionController> admission_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<LatencyModel> model_;
  std::unique_ptr<LlaEngine> engine_;
  /// Accumulated additive WCET corrections keyed by (task name, subtask
  /// position within the task) — stable identities across rebuilds.
  std::map<std::pair<std::string, std::size_t>, double> wcet_errors_;
};

/// Deterministic churn script generator (pure function of the config).
struct ChurnScriptConfig {
  std::uint64_t seed = 1;
  std::size_t mutations = 100;
  /// Resource-id space the generated join candidates reference; must equal
  /// the target system's resource count.
  int num_resources = 8;
  double join_fraction = 0.4;
  double leave_fraction = 0.3;  ///< remainder: WCET perturbations
  /// Perturbation magnitude: each kWcetPerturb draws uniformly from
  /// [-wcet_error_ms, wcet_error_ms).
  double wcet_error_ms = 0.02;
  /// Join candidates are drawn round-robin from a donor pool of this many
  /// randomly generated tasks (renamed uniquely per join).
  int donor_tasks = 12;
};

Expected<std::vector<ChurnMutation>> MakeChurnScript(
    const ChurnScriptConfig& config);

}  // namespace lla::runtime
