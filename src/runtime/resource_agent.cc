#include "runtime/resource_agent.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace lla::runtime {

ResourceAgent::ResourceAgent(const Workload& workload,
                             const LatencyModel& model, ResourceId resource,
                             AgentStepConfig config)
    : workload_(&workload),
      model_(&model),
      resource_(resource),
      config_(config) {
  const ResourceInfo& info = workload.resource(resource);
  latencies_.resize(info.subtasks.size());
  // Until a controller reports, assume subtasks demand nothing (latency at
  // the model's "min share or far away" end would require the solver's
  // bounds; an effectively-infinite latency gives share ~ 0, which is the
  // correct "no demand yet" reading).
  std::fill(latencies_.begin(), latencies_.end(), 1e9);

  std::set<TaskId> tasks;
  for (SubtaskId sid : info.subtasks) {
    tasks.insert(workload.subtask(sid).task);
  }
  client_tasks_.assign(tasks.begin(), tasks.end());
  task_incarnation_.assign(workload.task_count(), 0);
}

void ResourceAgent::Bind(
    net::InProcessBus* bus, net::EndpointId self,
    const std::vector<net::EndpointId>* controller_endpoints) {
  bus_ = bus;
  self_ = self;
  controller_endpoints_ = controller_endpoints;
}

bool ResourceAgent::AcceptIncarnation(TaskId task,
                                      std::uint32_t incarnation) {
  std::uint32_t& seen = task_incarnation_[task.value()];
  if (incarnation < seen) {
    if (hooks_.stale_rejected != nullptr) hooks_.stale_rejected->Increment();
    return false;
  }
  seen = incarnation;
  return true;
}

void ResourceAgent::OnMessage(const net::Message& message) {
  if (crashed_) return;
  if (const auto* update =
          std::get_if<net::LatencyUpdate>(&message.payload)) {
    if (!AcceptIncarnation(update->task, message.incarnation)) {
      // A stale (pre-restart) latency stream means the gradient this agent
      // integrated is discontinuous at the sender's crash boundary: momentum
      // built from the pre-crash gradients must not be replayed into the
      // post-crash ones, so drop the velocity (the adaptive-restart rule,
      // applied eagerly).
      dynamics_.DropMomentum();
      return;
    }
    const auto& hosted = workload_->resource(resource_).subtasks;
    for (std::size_t i = 0; i < update->subtasks.size(); ++i) {
      const SubtaskId sid = update->subtasks[i];
      const auto it = std::find(hosted.begin(), hosted.end(), sid);
      if (it == hosted.end()) continue;  // misrouted entry; skip defensively
      latencies_[static_cast<std::size_t>(it - hosted.begin())] =
          update->latencies_ms[i];
    }
    return;
  }
  if (const auto* repair =
          std::get_if<net::RepairResponse>(&message.payload)) {
    if (repair->resource != resource_) return;  // misrouted; ignore
    if (!AcceptIncarnation(repair->task, message.incarnation)) {
      dynamics_.DropMomentum();  // same discontinuity as a stale update
      return;
    }
    // Absolute state from a client controller: always absorb the latencies
    // (they are the controller's current truth), and while awaiting repair
    // adopt the price from the freshest epoch offered.
    const auto& hosted = workload_->resource(resource_).subtasks;
    for (std::size_t i = 0; i < repair->subtasks.size(); ++i) {
      const auto it =
          std::find(hosted.begin(), hosted.end(), repair->subtasks[i]);
      if (it == hosted.end()) continue;
      latencies_[static_cast<std::size_t>(it - hosted.begin())] =
          repair->latencies_ms[i];
    }
    if (awaiting_repair_ &&
        (!repair_adopted_ || repair->epoch >= best_repair_epoch_)) {
      best_repair_epoch_ = repair->epoch;
      mu_ = repair->mu;
      epoch_ = repair->epoch;
      gamma_multiplier_ = 1.0;  // congestion history is gone; restart mild
      // The adopted mu is a fresh operating point with no momentum history:
      // re-base the dynamics there instead of replaying pre-crash velocity.
      dynamics_.ReseedAt(mu_);
      repair_adopted_ = true;
      if (hooks_.repair_rounds != nullptr) hooks_.repair_rounds->Increment();
    }
    return;
  }
}

void ResourceAgent::Crash() { crashed_ = true; }

void ResourceAgent::ColdRestart() {
  assert(bus_ != nullptr);
  crashed_ = false;
  std::fill(latencies_.begin(), latencies_.end(), 1e9);
  mu_ = 0.0;
  gamma_multiplier_ = 1.0;
  epoch_ = 0;
  // Momentum is part of the lost state: a cold restart must not replay
  // pre-crash velocity into post-crash gradients.
  dynamics_ = ComponentDynamicsState{};

  awaiting_repair_ = true;
  repair_adopted_ = false;
  repair_grace_left_ = config_.repair_grace_ticks;
  best_repair_epoch_ = 0;
  // Incarnation watermarks are part of the lost state; the monotone max in
  // AcceptIncarnation re-learns them from the first post-restart messages.
  std::fill(task_incarnation_.begin(), task_incarnation_.end(), 0);
  SendRepairRequest();
}

void ResourceAgent::RestoreFromSnapshot(const ResourceAgentSnapshot& snapshot) {
  if (snapshot.resource != resource_ ||
      snapshot.latencies_ms.size() != latencies_.size()) {
    // A misshapen snapshot would leave the agent publishing a restored mu
    // against stale (possibly 1e9 cold-fill) latencies — the restored price
    // and its inputs would disagree silently, forever.  That is always a
    // caller bug (snapshot of a different resource or of a structurally
    // different workload), so fail loudly in every build mode, matching
    // LlaEngine::WarmStart's shape abort.
    std::fprintf(stderr,
                 "ResourceAgent::RestoreFromSnapshot: snapshot of resource "
                 "%u with %zu latencies does not match agent of resource %u "
                 "with %zu hosted subtasks\n",
                 snapshot.resource.value(), snapshot.latencies_ms.size(),
                 resource_.value(), latencies_.size());
    std::abort();
  }
  crashed_ = false;
  awaiting_repair_ = false;
  repair_adopted_ = false;
  // A restore supersedes any half-finished repair exchange: clear its grace
  // budget and epoch watermark so a late RepairResponse (or a later cold
  // restart) starts from a clean slate instead of inheriting them.
  repair_grace_left_ = 0;
  best_repair_epoch_ = 0;
  mu_ = snapshot.mu;
  gamma_multiplier_ = snapshot.gamma_multiplier;
  epoch_ = snapshot.epoch;
  latencies_ = snapshot.latencies_ms;
  if (snapshot.has_dynamics) {
    dynamics_.velocity = snapshot.velocity;
    dynamics_.base = snapshot.dynamics_base;
    dynamics_.phase = snapshot.phase;
  } else {
    // Pre-momentum snapshot: restore as fresh momentum at the restored mu
    // (the v1 -> v2 engine-snapshot precedent).
    dynamics_.ReseedAt(mu_);
  }
  std::fill(task_incarnation_.begin(), task_incarnation_.end(), 0);
}

ResourceAgentSnapshot ResourceAgent::Snapshot() const {
  ResourceAgentSnapshot snapshot;
  snapshot.resource = resource_;
  snapshot.mu = mu_;
  snapshot.gamma_multiplier = gamma_multiplier_;
  snapshot.epoch = epoch_;
  snapshot.latencies_ms = latencies_;
  snapshot.has_dynamics = true;
  snapshot.velocity = dynamics_.velocity;
  snapshot.dynamics_base = dynamics_.base;
  snapshot.phase = dynamics_.phase;
  return snapshot;
}

void ResourceAgent::SendRepairRequest() {
  net::RepairRequest request;
  request.resource = resource_;
  for (TaskId task : client_tasks_) {
    net::Message message;
    message.sender = self_;
    message.receiver = (*controller_endpoints_)[task.value()];
    message.payload = request;
    bus_->Send(std::move(message));
  }
}

double ResourceAgent::ShareSum() const {
  const auto& hosted = workload_->resource(resource_).subtasks;
  double sum = 0.0;
  for (std::size_t i = 0; i < hosted.size(); ++i) {
    const ShareFunction& share = model_->share(hosted[i]);
    const double lat = std::max(latencies_[i], share.MinLatency() + 1e-9);
    sum += share.Share(lat);
  }
  return sum;
}

bool ResourceAgent::Congested() const {
  return ShareSum() > workload_->resource(resource_).capacity;
}

void ResourceAgent::ComputePriceAndBroadcast() {
  assert(bus_ != nullptr);
  if (crashed_) return;
  if (awaiting_repair_) {
    // Hold the broadcast while the repair exchange is in flight: publishing
    // the reset mu=0 would drag every client through a cold transient.  The
    // request is re-sent each held tick (the first may have been dropped);
    // once a response was absorbed — or the grace budget is exhausted (e.g.
    // all controllers are down too) — broadcasting resumes.
    if (!repair_adopted_ && repair_grace_left_ > 0) {
      --repair_grace_left_;
      SendRepairRequest();
      return;
    }
    awaiting_repair_ = false;
  }
  const ResourceInfo& info = workload_->resource(resource_);
  const double share_sum = ShareSum();
  const bool congested = share_sum > info.capacity;

  // Adaptive step (Sec. 5.2): double while congested, revert when not.
  if (config_.adaptive) {
    gamma_multiplier_ =
        congested ? std::min(gamma_multiplier_ * 2.0,
                             config_.adaptive_max_multiplier)
                  : 1.0;
  }
  const double gamma = config_.gamma0 * gamma_multiplier_;

  // Eq. 8 with projection at zero, optionally accelerated (DESIGN.md §7.12):
  // the velocity half-step is applied BEFORE the non-negativity projection,
  // exactly as the engine's PriceDynamicsPolicy does, so (value, velocity,
  // phase) = (0, 0, 0) stays absorbing and beta = 0 heavy-ball is
  // bit-identical to the plain inline update.
  const double slack = info.capacity - share_sum;
  if (config_.dynamics.kind == DynamicsKind::kPlain) {
    mu_ = std::max(0.0, mu_ - gamma * slack);
  } else {
    mu_ = StepComponentDynamics(config_.dynamics, &dynamics_, mu_, gamma,
                                slack, &momentum_restarts_)
              .value;
  }
  ++epoch_;

  net::ResourcePriceUpdate update;
  update.resource = resource_;
  update.mu = mu_;
  update.epoch = epoch_;
  update.congested = congested;
  for (TaskId task : client_tasks_) {
    net::Message message;
    message.sender = self_;
    message.receiver = (*controller_endpoints_)[task.value()];
    message.payload = update;
    bus_->Send(std::move(message));
  }
}

}  // namespace lla::runtime
