#include "runtime/resource_agent.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace lla::runtime {

ResourceAgent::ResourceAgent(const Workload& workload,
                             const LatencyModel& model, ResourceId resource,
                             AgentStepConfig config)
    : workload_(&workload),
      model_(&model),
      resource_(resource),
      config_(config) {
  const ResourceInfo& info = workload.resource(resource);
  latencies_.resize(info.subtasks.size());
  // Until a controller reports, assume subtasks demand nothing (latency at
  // the model's "min share or far away" end would require the solver's
  // bounds; an effectively-infinite latency gives share ~ 0, which is the
  // correct "no demand yet" reading).
  std::fill(latencies_.begin(), latencies_.end(), 1e9);

  std::set<TaskId> tasks;
  for (SubtaskId sid : info.subtasks) {
    tasks.insert(workload.subtask(sid).task);
  }
  client_tasks_.assign(tasks.begin(), tasks.end());
  task_incarnation_.assign(workload.task_count(), 0);
}

void ResourceAgent::Bind(
    net::InProcessBus* bus, net::EndpointId self,
    const std::vector<net::EndpointId>* controller_endpoints) {
  bus_ = bus;
  self_ = self;
  controller_endpoints_ = controller_endpoints;
}

bool ResourceAgent::AcceptIncarnation(TaskId task,
                                      std::uint32_t incarnation) {
  std::uint32_t& seen = task_incarnation_[task.value()];
  if (incarnation < seen) {
    if (hooks_.stale_rejected != nullptr) hooks_.stale_rejected->Increment();
    return false;
  }
  seen = incarnation;
  return true;
}

void ResourceAgent::OnMessage(const net::Message& message) {
  if (crashed_) return;
  if (const auto* update =
          std::get_if<net::LatencyUpdate>(&message.payload)) {
    if (!AcceptIncarnation(update->task, message.incarnation)) return;
    const auto& hosted = workload_->resource(resource_).subtasks;
    for (std::size_t i = 0; i < update->subtasks.size(); ++i) {
      const SubtaskId sid = update->subtasks[i];
      const auto it = std::find(hosted.begin(), hosted.end(), sid);
      if (it == hosted.end()) continue;  // misrouted entry; skip defensively
      latencies_[static_cast<std::size_t>(it - hosted.begin())] =
          update->latencies_ms[i];
    }
    return;
  }
  if (const auto* repair =
          std::get_if<net::RepairResponse>(&message.payload)) {
    if (repair->resource != resource_) return;  // misrouted; ignore
    if (!AcceptIncarnation(repair->task, message.incarnation)) return;
    // Absolute state from a client controller: always absorb the latencies
    // (they are the controller's current truth), and while awaiting repair
    // adopt the price from the freshest epoch offered.
    const auto& hosted = workload_->resource(resource_).subtasks;
    for (std::size_t i = 0; i < repair->subtasks.size(); ++i) {
      const auto it =
          std::find(hosted.begin(), hosted.end(), repair->subtasks[i]);
      if (it == hosted.end()) continue;
      latencies_[static_cast<std::size_t>(it - hosted.begin())] =
          repair->latencies_ms[i];
    }
    if (awaiting_repair_ &&
        (!repair_adopted_ || repair->epoch >= best_repair_epoch_)) {
      best_repair_epoch_ = repair->epoch;
      mu_ = repair->mu;
      epoch_ = repair->epoch;
      gamma_multiplier_ = 1.0;  // congestion history is gone; restart mild
      repair_adopted_ = true;
      if (hooks_.repair_rounds != nullptr) hooks_.repair_rounds->Increment();
    }
    return;
  }
}

void ResourceAgent::Crash() { crashed_ = true; }

void ResourceAgent::ColdRestart() {
  assert(bus_ != nullptr);
  crashed_ = false;
  std::fill(latencies_.begin(), latencies_.end(), 1e9);
  mu_ = 0.0;
  gamma_multiplier_ = 1.0;
  epoch_ = 0;
  awaiting_repair_ = true;
  repair_adopted_ = false;
  repair_grace_left_ = config_.repair_grace_ticks;
  best_repair_epoch_ = 0;
  // Incarnation watermarks are part of the lost state; the monotone max in
  // AcceptIncarnation re-learns them from the first post-restart messages.
  std::fill(task_incarnation_.begin(), task_incarnation_.end(), 0);
  SendRepairRequest();
}

void ResourceAgent::RestoreFromSnapshot(const ResourceAgentSnapshot& snapshot) {
  assert(snapshot.resource == resource_);
  crashed_ = false;
  awaiting_repair_ = false;
  repair_adopted_ = false;
  mu_ = snapshot.mu;
  gamma_multiplier_ = snapshot.gamma_multiplier;
  epoch_ = snapshot.epoch;
  if (snapshot.latencies_ms.size() == latencies_.size()) {
    latencies_ = snapshot.latencies_ms;
  }
  std::fill(task_incarnation_.begin(), task_incarnation_.end(), 0);
}

ResourceAgentSnapshot ResourceAgent::Snapshot() const {
  ResourceAgentSnapshot snapshot;
  snapshot.resource = resource_;
  snapshot.mu = mu_;
  snapshot.gamma_multiplier = gamma_multiplier_;
  snapshot.epoch = epoch_;
  snapshot.latencies_ms = latencies_;
  return snapshot;
}

void ResourceAgent::SendRepairRequest() {
  net::RepairRequest request;
  request.resource = resource_;
  for (TaskId task : client_tasks_) {
    net::Message message;
    message.sender = self_;
    message.receiver = (*controller_endpoints_)[task.value()];
    message.payload = request;
    bus_->Send(std::move(message));
  }
}

double ResourceAgent::ShareSum() const {
  const auto& hosted = workload_->resource(resource_).subtasks;
  double sum = 0.0;
  for (std::size_t i = 0; i < hosted.size(); ++i) {
    const ShareFunction& share = model_->share(hosted[i]);
    const double lat = std::max(latencies_[i], share.MinLatency() + 1e-9);
    sum += share.Share(lat);
  }
  return sum;
}

bool ResourceAgent::Congested() const {
  return ShareSum() > workload_->resource(resource_).capacity;
}

void ResourceAgent::ComputePriceAndBroadcast() {
  assert(bus_ != nullptr);
  if (crashed_) return;
  if (awaiting_repair_) {
    // Hold the broadcast while the repair exchange is in flight: publishing
    // the reset mu=0 would drag every client through a cold transient.  The
    // request is re-sent each held tick (the first may have been dropped);
    // once a response was absorbed — or the grace budget is exhausted (e.g.
    // all controllers are down too) — broadcasting resumes.
    if (!repair_adopted_ && repair_grace_left_ > 0) {
      --repair_grace_left_;
      SendRepairRequest();
      return;
    }
    awaiting_repair_ = false;
  }
  const ResourceInfo& info = workload_->resource(resource_);
  const double share_sum = ShareSum();
  const bool congested = share_sum > info.capacity;

  // Adaptive step (Sec. 5.2): double while congested, revert when not.
  if (config_.adaptive) {
    gamma_multiplier_ =
        congested ? std::min(gamma_multiplier_ * 2.0,
                             config_.adaptive_max_multiplier)
                  : 1.0;
  }
  const double gamma = config_.gamma0 * gamma_multiplier_;

  // Eq. 8 with projection at zero.
  mu_ = std::max(0.0, mu_ - gamma * (info.capacity - share_sum));
  ++epoch_;

  net::ResourcePriceUpdate update;
  update.resource = resource_;
  update.mu = mu_;
  update.epoch = epoch_;
  update.congested = congested;
  for (TaskId task : client_tasks_) {
    net::Message message;
    message.sender = self_;
    message.receiver = (*controller_endpoints_)[task.value()];
    message.payload = update;
    bus_->Send(std::move(message));
  }
}

}  // namespace lla::runtime
