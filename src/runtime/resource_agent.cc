#include "runtime/resource_agent.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace lla::runtime {

ResourceAgent::ResourceAgent(const Workload& workload,
                             const LatencyModel& model, ResourceId resource,
                             AgentStepConfig config)
    : workload_(&workload),
      model_(&model),
      resource_(resource),
      config_(config) {
  const ResourceInfo& info = workload.resource(resource);
  latencies_.resize(info.subtasks.size());
  // Until a controller reports, assume subtasks demand nothing (latency at
  // the model's "min share or far away" end would require the solver's
  // bounds; an effectively-infinite latency gives share ~ 0, which is the
  // correct "no demand yet" reading).
  std::fill(latencies_.begin(), latencies_.end(), 1e9);

  std::set<TaskId> tasks;
  for (SubtaskId sid : info.subtasks) {
    tasks.insert(workload.subtask(sid).task);
  }
  client_tasks_.assign(tasks.begin(), tasks.end());
}

void ResourceAgent::Bind(net::InProcessBus* bus, net::EndpointId self,
                         std::vector<net::EndpointId> controller_endpoints) {
  bus_ = bus;
  self_ = self;
  controller_endpoints_ = std::move(controller_endpoints);
}

void ResourceAgent::OnMessage(const net::Message& message) {
  const auto* update = std::get_if<net::LatencyUpdate>(&message.payload);
  if (update == nullptr) return;  // not for us; ignore
  const auto& hosted = workload_->resource(resource_).subtasks;
  for (std::size_t i = 0; i < update->subtasks.size(); ++i) {
    const SubtaskId sid = update->subtasks[i];
    const auto it = std::find(hosted.begin(), hosted.end(), sid);
    if (it == hosted.end()) continue;  // misrouted entry; skip defensively
    latencies_[static_cast<std::size_t>(it - hosted.begin())] =
        update->latencies_ms[i];
  }
}

double ResourceAgent::ShareSum() const {
  const auto& hosted = workload_->resource(resource_).subtasks;
  double sum = 0.0;
  for (std::size_t i = 0; i < hosted.size(); ++i) {
    const ShareFunction& share = model_->share(hosted[i]);
    const double lat = std::max(latencies_[i], share.MinLatency() + 1e-9);
    sum += share.Share(lat);
  }
  return sum;
}

bool ResourceAgent::Congested() const {
  return ShareSum() > workload_->resource(resource_).capacity;
}

void ResourceAgent::ComputePriceAndBroadcast() {
  assert(bus_ != nullptr);
  const ResourceInfo& info = workload_->resource(resource_);
  const double share_sum = ShareSum();
  const bool congested = share_sum > info.capacity;

  // Adaptive step (Sec. 5.2): double while congested, revert when not.
  if (config_.adaptive) {
    gamma_multiplier_ =
        congested ? std::min(gamma_multiplier_ * 2.0,
                             config_.adaptive_max_multiplier)
                  : 1.0;
  }
  const double gamma = config_.gamma0 * gamma_multiplier_;

  // Eq. 8 with projection at zero.
  mu_ = std::max(0.0, mu_ - gamma * (info.capacity - share_sum));
  ++epoch_;

  net::ResourcePriceUpdate update;
  update.resource = resource_;
  update.mu = mu_;
  update.epoch = epoch_;
  update.congested = congested;
  for (TaskId task : client_tasks_) {
    net::Message message;
    message.sender = self_;
    message.receiver = controller_endpoints_[task.value()];
    message.payload = update;
    bus_->Send(std::move(message));
  }
}

}  // namespace lla::runtime
