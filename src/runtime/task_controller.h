// TaskController: the per-task participant of the distributed LLA protocol
// (paper Sec. 4.2, "Latency Allocation").
//
//   1. Receive the price values mu_r of the resources the task uses
//      (with the sender's congestion flag, for the adaptive step sizes).
//   2. Compute the path prices lambda_p of the task's own paths (Eq. 9).
//   3. Compute new latencies by zeroing the Lagrangian derivative (Eq. 7)
//      — delegated to LatencySolver::SolveTask.
//   4. Send the latencies to the resources hosting the subtasks.
#pragma once

#include <cstdint>
#include <vector>

#include "core/latency_solver.h"
#include "core/prices.h"
#include "model/latency_model.h"
#include "model/workload.h"
#include "net/bus.h"
#include "runtime/resource_agent.h"

namespace lla::runtime {

class TaskController {
 public:
  TaskController(const Workload& workload, const LatencyModel& model,
                 TaskId task, AgentStepConfig step_config,
                 LatencySolverConfig solver_config = {});

  /// Wires the controller to the bus.  `resource_endpoints[r]` is the
  /// endpoint of resource r's agent.
  void Bind(net::InProcessBus* bus, net::EndpointId self,
            std::vector<net::EndpointId> resource_endpoints);

  /// Handles a ResourcePriceUpdate destined for this controller.
  void OnMessage(const net::Message& message);

  /// One latency allocation + path price update + broadcast.
  void AllocateAndSend();

  TaskId task() const { return task_; }

  /// Drops the solver's cached model invariants (see
  /// LatencySolver::InvalidateModelCache).
  void InvalidateModelCache() { solver_.InvalidateModelCache(); }

  /// Latencies of this task's subtasks (indexed by local subtask order).
  const std::vector<double>& latencies() const { return local_latencies_; }
  /// Path prices of this task's paths (indexed by local path order).
  const std::vector<double>& lambdas() const { return local_lambdas_; }
  /// Adaptive step multipliers of this task's paths (same local order).
  const std::vector<double>& path_step_multipliers() const {
    return path_gamma_multiplier_;
  }
  double mu_seen(ResourceId r) const { return prices_.mu[r.value()]; }
  /// Resource epoch at which mu_seen(r) was cached (repair provenance).
  std::uint32_t mu_epoch_seen(ResourceId r) const {
    return resource_epoch_[r.value()];
  }

  /// Crash-restart recovery (DESIGN.md §7.7); driven by the Coordinator in
  /// lockstep with the bus-side CrashEndpoint/RestartEndpoint.
  void set_recovery_hooks(const RecoveryHooks& hooks) { hooks_ = hooks; }
  void Crash();
  /// Rejoins with total state loss; the next resource broadcasts repopulate
  /// the price cache within one period (controllers need no repair exchange
  /// — resources re-send their state unprompted every tick).
  void ColdRestart();
  void RestoreFromSnapshot(const TaskControllerSnapshot& snapshot);
  TaskControllerSnapshot Snapshot() const;
  bool crashed() const { return crashed_; }

 private:
  /// Incarnation-gated acceptance of a resource agent's message.
  bool AcceptIncarnation(ResourceId resource, std::uint32_t incarnation);
  const Workload* workload_;
  const LatencyModel* model_;
  TaskId task_;
  AgentStepConfig step_config_;
  LatencySolver solver_;

  net::InProcessBus* bus_ = nullptr;
  net::EndpointId self_ = 0;
  std::vector<net::EndpointId> resource_endpoints_;
  std::vector<ResourceId> used_resources_;

  /// Full-size price vector so SolveTask can be reused unchanged; only the
  /// entries of used resources / own paths are ever non-zero.
  PriceVector prices_;
  Assignment scratch_latencies_;
  std::vector<double> local_latencies_;
  std::vector<double> local_lambdas_;
  /// Latest congestion flag per resource (from the price messages).
  std::vector<bool> resource_congested_;
  /// Adaptive multiplier per local path.
  std::vector<double> path_gamma_multiplier_;

  /// Recovery state: the epoch each cached mu was computed at (served back
  /// in RepairResponses), the highest incarnation seen per resource agent,
  /// and the crash flag.
  RecoveryHooks hooks_;
  bool crashed_ = false;
  std::vector<std::uint32_t> resource_epoch_;
  std::vector<std::uint32_t> resource_incarnation_;
};

}  // namespace lla::runtime
