// TaskController: the per-task participant of the distributed LLA protocol
// (paper Sec. 4.2, "Latency Allocation").
//
//   1. Receive the price values mu_r of the resources the task uses
//      (with the sender's congestion flag, for the adaptive step sizes).
//   2. Compute the path prices lambda_p of the task's own paths (Eq. 9).
//   3. Compute new latencies by zeroing the Lagrangian derivative (Eq. 7)
//      — delegated to LatencySolver::SolveTask.
//   4. Send the latencies to the resources hosting the subtasks — or, in a
//      sharded deployment, one batched message per shard touched.
//
// Controllers keep only O(task) state: compact per-used-resource caches plus
// pointers into a ControllerShared block owned by the coordinator (one
// solver and one full-size price/latency buffer for the whole fleet).  The
// old layout — a LatencySolver and full PriceVector per controller — was
// O(workload) per task and the memory wall at 10^5 subtasks.  Sharing is
// race-free because controllers run on the single-threaded bus and each one
// writes only its own task's slots before solving.
#pragma once

#include <cstdint>
#include <vector>

#include "core/latency_solver.h"
#include "core/prices.h"
#include "model/latency_model.h"
#include "model/workload.h"
#include "net/bus.h"
#include "runtime/resource_agent.h"

namespace lla::runtime {

/// Per-coordinator state shared by every task controller: the latency
/// solver (its invariant caches are O(workload)) and the full-size solve
/// buffers its interface requires.
struct ControllerShared {
  ControllerShared(const Workload& workload, const LatencyModel& model,
                   LatencySolverConfig solver_config)
      : solver(workload, model, solver_config),
        prices(PriceVector::Zero(workload)),
        latencies(workload.subtask_count(), 0.0) {}

  LatencySolver solver;
  PriceVector prices;
  Assignment latencies;
};

class TaskController {
 public:
  /// `shared` is owned by the coordinator and must outlive the controller.
  TaskController(const Workload& workload, const LatencyModel& model,
                 TaskId task, AgentStepConfig step_config,
                 ControllerShared* shared);

  /// Wires the controller to the bus.  `resource_endpoints[r]` is the
  /// endpoint of resource r's agent (non-owning; the coordinator keeps the
  /// vector alive).
  void Bind(net::InProcessBus* bus, net::EndpointId self,
            const std::vector<net::EndpointId>* resource_endpoints);

  /// Switches the controller to sharded sends: latencies go out as one
  /// ShardLatencyUpdate per shard touched, and ShardPriceUpdates are
  /// absorbed in one contiguous pass.  `resource_shard[r]` is the shard
  /// owning resource r; `shard_endpoints[s]` its agent's endpoint (both
  /// non-owning, coordinator-owned).
  void BindShards(const std::vector<net::EndpointId>* shard_endpoints,
                  const std::vector<std::uint32_t>* resource_shard);

  /// Handles a ResourcePriceUpdate / ShardPriceUpdate destined for this
  /// controller.
  void OnMessage(const net::Message& message);

  /// One latency allocation + path price update + broadcast.
  void AllocateAndSend();

  /// Parallel-round variant (DESIGN.md §7.11): publishes prices into the
  /// caller's per-lane PriceVector instead of the shared one (the shared
  /// mu slots overlap across tasks and would race), solves through the
  /// solver's const parallel path (the caller must have run
  /// solver.PrepareSolve() serially this round), and appends the outgoing
  /// messages to `outbox` for the caller's serial commit.  Bit-identical to
  /// AllocateAndSend() — both reach SolveTaskFresh with the full gather
  /// CSR.
  void AllocateAndSend(PriceVector* lane_prices,
                       std::vector<net::Message>* outbox);

  TaskId task() const { return task_; }

  /// Latencies of this task's subtasks (indexed by local subtask order).
  const std::vector<double>& latencies() const { return local_latencies_; }
  /// Path prices of this task's paths (indexed by local path order).
  const std::vector<double>& lambdas() const { return local_lambdas_; }
  /// Adaptive step multipliers of this task's paths (same local order).
  const std::vector<double>& path_step_multipliers() const {
    return path_gamma_multiplier_;
  }
  double mu_seen(ResourceId r) const;
  /// Resource epoch at which mu_seen(r) was cached (repair provenance).
  std::uint32_t mu_epoch_seen(ResourceId r) const;

  /// Crash-restart recovery (DESIGN.md §7.7); driven by the Coordinator in
  /// lockstep with the bus-side CrashEndpoint/RestartEndpoint.
  void set_recovery_hooks(const RecoveryHooks& hooks) { hooks_ = hooks; }
  void Crash();
  /// Rejoins with total state loss; the next resource broadcasts repopulate
  /// the price cache within one period (controllers need no repair exchange
  /// — resources re-send their state unprompted every tick).
  void ColdRestart();
  void RestoreFromSnapshot(const TaskControllerSnapshot& snapshot);
  TaskControllerSnapshot Snapshot() const;
  bool crashed() const { return crashed_; }

 private:
  /// Index of `resource` in used_resources_, or -1 when this task has no
  /// subtask there.
  int UsedIndex(ResourceId resource) const;
  /// Incarnation-gated acceptance of a peer's message; `slot` is a used-
  /// resource index (unsharded) or a shard id (sharded).
  bool AcceptIncarnation(std::vector<std::uint32_t>* watermarks,
                         std::size_t slot, std::uint32_t incarnation);
  /// Shared body of both AllocateAndSend entry points.  `prepared_solver`
  /// selects the solver's const range path (requires a serial PrepareSolve
  /// earlier in the round); a null outbox sends directly.
  void AllocateAndSendImpl(PriceVector& prices, bool prepared_solver,
                           std::vector<net::Message>* outbox);
  const Workload* workload_;
  const LatencyModel* model_;
  TaskId task_;
  AgentStepConfig step_config_;
  ControllerShared* shared_;

  net::InProcessBus* bus_ = nullptr;
  net::EndpointId self_ = 0;
  const std::vector<net::EndpointId>* resource_endpoints_ = nullptr;
  const std::vector<net::EndpointId>* shard_endpoints_ = nullptr;
  const std::vector<std::uint32_t>* resource_shard_ = nullptr;
  std::vector<ResourceId> used_resources_;  ///< sorted
  /// Sharded sends: the distinct shards this task touches, and for each the
  /// (local subtask index) list going into its batched update (parallel to
  /// used_shards_).
  std::vector<std::uint32_t> used_shards_;
  std::vector<std::vector<std::uint32_t>> shard_subtasks_;
  /// shard_used_slots_[s] = indices into used_resources_ of this task's
  /// resources owned by shard s, ascending (indexed by shard id, empty for
  /// untouched shards).  Positionally identical to the shard agent's
  /// client_resources_ list for this task — the decode key of the
  /// positional ShardPriceUpdate (DESIGN.md §7.11).
  std::vector<std::vector<std::uint32_t>> shard_used_slots_;

  /// Compact per-used-resource caches, parallel to used_resources_.
  std::vector<double> mu_cache_;
  std::vector<std::uint8_t> used_congested_;
  std::vector<std::uint32_t> used_epoch_;

  std::vector<double> local_latencies_;
  std::vector<double> local_lambdas_;
  /// Adaptive multiplier per local path.
  std::vector<double> path_gamma_multiplier_;

  /// Recovery state: the highest incarnation seen per used resource
  /// (unsharded) or per shard (sharded), and the crash flag.
  RecoveryHooks hooks_;
  bool crashed_ = false;
  std::vector<std::uint32_t> used_incarnation_;
  std::vector<std::uint32_t> shard_incarnation_;

  /// Reused encode/decode scratch (sharded wire path).
  std::vector<double> mu_scratch_;
  std::vector<double> gather_latencies_;
  std::vector<net::ArenaSpan> latency_spans_;
};

}  // namespace lla::runtime
