#include "runtime/coordinator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/engine_batch.h"

namespace lla::runtime {
namespace {
constexpr std::uint64_t kControllerTimer = 1;
constexpr std::uint64_t kResourceTimer = 2;
constexpr std::uint64_t kMonitorTimer = 3;
}  // namespace

Coordinator::Coordinator(const Workload& workload, const LatencyModel& model,
                         CoordinatorConfig config)
    : workload_(&workload), model_(&model), config_(config) {
  // CoordinatorConfig::dynamics is authoritative for the agents' mu updates
  // (DESIGN.md §7.12); copy it into the step config every agent receives.
  config_.step.dynamics = config_.dynamics;
  if (config_.metrics != nullptr) {
    rounds_counter_ = config_.metrics->GetCounter("coordinator.rounds");
    samples_counter_ = config_.metrics->GetCounter("coordinator.samples");
    enactments_counter_ =
        config_.metrics->GetCounter("coordinator.enactments");
    sync_round_timer_ = config_.metrics->GetTimer("coordinator.sync_round");
    if (config_.bus.metrics == nullptr) {
      config_.bus.metrics = config_.metrics;
    }
  }
  bus_ = std::make_unique<net::InProcessBus>(config_.bus);
  if (config_.round_threads > 1) {
    round_pool_ = std::make_unique<ThreadPool>(config_.round_threads);
  }

  // Create agents, register endpoints into the member vectors, then bind
  // (agents keep pointers into the member vectors, so the vectors must be in
  // their final location and fully populated before binding).
  controller_shared_ = std::make_unique<ControllerShared>(
      workload, model, config_.solver);
  controllers_.reserve(workload.task_count());
  for (const TaskInfo& task : workload.tasks()) {
    controllers_.push_back(std::make_unique<TaskController>(
        workload, model, task.id, config_.step, controller_shared_.get()));
  }
  const bool sharded = config_.num_shards > 0;
  if (sharded) {
    const std::size_t resources = workload.resource_count();
    const std::size_t shards = std::min<std::size_t>(
        static_cast<std::size_t>(config_.num_shards),
        std::max<std::size_t>(resources, 1));
    resource_shard_.assign(resources, 0);
    shard_agents_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      // Contiguous partition: shard s owns [R*s/S, R*(s+1)/S).
      const std::size_t first = resources * s / shards;
      const std::size_t last = resources * (s + 1) / shards;
      shard_agents_.push_back(std::make_unique<ShardAgent>(
          workload, model, static_cast<std::uint32_t>(s),
          ResourceId(static_cast<std::uint32_t>(first)), last - first,
          config_.step));
      for (std::size_t r = first; r < last; ++r) {
        resource_shard_[r] = static_cast<std::uint32_t>(s);
      }
    }
  } else {
    agents_.reserve(workload.resource_count());
    for (const ResourceInfo& resource : workload.resources()) {
      agents_.push_back(std::make_unique<ResourceAgent>(
          workload, model, resource.id, config_.step));
    }
  }

  // Message endpoints; periodic async timers live on separate endpoints
  // created by ArmAsyncTimers.
  // (kept as members for failure injection)
  controller_endpoints_.resize(workload.task_count());
  for (const TaskInfo& task : workload.tasks()) {
    TaskController* controller = controllers_[task.id.value()].get();
    controller_endpoints_[task.id.value()] = bus_->Register(
        "controller/" + task.name,
        [controller](const net::Message& m) { controller->OnMessage(m); });
  }
  if (sharded) {
    shard_endpoints_.resize(shard_agents_.size());
    for (std::size_t s = 0; s < shard_agents_.size(); ++s) {
      ShardAgent* agent = shard_agents_[s].get();
      shard_endpoints_[s] = bus_->Register(
          "shard/" + std::to_string(s),
          [agent](const net::Message& m) { agent->OnMessage(m); });
    }
  } else {
    resource_endpoints_.resize(workload.resource_count());
    for (const ResourceInfo& resource : workload.resources()) {
      ResourceAgent* agent = agents_[resource.id.value()].get();
      resource_endpoints_[resource.id.value()] = bus_->Register(
          "resource/" + resource.name,
          [agent](const net::Message& m) { agent->OnMessage(m); });
    }
  }
  monitor_endpoint_ = bus_->Register(
      "monitor", nullptr, [this](std::uint64_t token) {
        if (token != kMonitorTimer) return;
        RecordSample(bus_->now_ms());
        bus_->ScheduleTimer(monitor_endpoint_, config_.monitor_period_ms,
                            kMonitorTimer);
      });

  for (const TaskInfo& task : workload.tasks()) {
    TaskController* controller = controllers_[task.id.value()].get();
    controller->Bind(bus_.get(), controller_endpoints_[task.id.value()],
                     &resource_endpoints_);
    if (sharded) controller->BindShards(&shard_endpoints_, &resource_shard_);
  }
  if (sharded) {
    for (std::size_t s = 0; s < shard_agents_.size(); ++s) {
      shard_agents_[s]->Bind(bus_.get(), shard_endpoints_[s],
                             &controller_endpoints_);
    }
  } else {
    for (const ResourceInfo& resource : workload.resources()) {
      agents_[resource.id.value()]->Bind(
          bus_.get(), resource_endpoints_[resource.id.value()],
          &controller_endpoints_);
    }
  }

  recovery_hooks_ = RecoveryHooks::Resolve(config_.metrics);
  for (auto& controller : controllers_) {
    controller->set_recovery_hooks(recovery_hooks_);
  }
  for (auto& agent : agents_) agent->set_recovery_hooks(recovery_hooks_);
  for (auto& shard : shard_agents_) shard->set_recovery_hooks(recovery_hooks_);
}

void Coordinator::RequireUnsharded(const char* what) const {
  if (!sharded()) return;
  std::fprintf(stderr,
               "Coordinator::%s is unsharded-only (it indexes the "
               "per-resource agent/endpoint tables, which are empty when "
               "sharded): this coordinator runs %zu shard agents.  Use the "
               "per-resource shard fault APIs (CrashEndpoint / "
               "RestartEndpoint cold) instead.\n",
               what, shard_agents_.size());
  std::abort();
}

void Coordinator::EmitRecoveryEvent(const char* type,
                                    net::EndpointId endpoint,
                                    bool is_resource, double index,
                                    bool cold) {
  if (config_.trace_sink == nullptr) return;
  obs::TraceEvent event;
  event.type = type;
  event.fields = {
      {"at_ms", bus_->now_ms()},
      {is_resource ? "resource" : "task", index},
      {"cold", cold ? 1.0 : 0.0},
      {"incarnation", static_cast<double>(bus_->incarnation(endpoint))},
  };
  config_.trace_sink->OnEvent(event);
}

void Coordinator::CrashEndpoint(ResourceId resource) {
  if (sharded()) {
    // Sharded: the failing unit is the resource's state inside its shard
    // agent, not the transport — the shard endpoint stays up (its other
    // resources keep exchanging messages), so there is no bus-side crash
    // and no incarnation bump.
    const std::uint32_t shard = resource_shard_[resource.value()];
    shard_agents_[shard]->CrashResource(resource);
    EmitRecoveryEvent("recovery.crash", shard_endpoints_[shard],
                      /*is_resource=*/true,
                      static_cast<double>(resource.value()), /*cold=*/false);
    return;
  }
  const net::EndpointId endpoint = resource_endpoints_[resource.value()];
  bus_->CrashEndpoint(endpoint);
  agents_[resource.value()]->Crash();
  EmitRecoveryEvent("recovery.crash", endpoint, /*is_resource=*/true,
                    static_cast<double>(resource.value()), /*cold=*/false);
}

void Coordinator::CrashEndpoint(TaskId task) {
  const net::EndpointId endpoint = controller_endpoints_[task.value()];
  bus_->CrashEndpoint(endpoint);
  controllers_[task.value()]->Crash();
  EmitRecoveryEvent("recovery.crash", endpoint, /*is_resource=*/false,
                    static_cast<double>(task.value()), /*cold=*/false);
}

void Coordinator::RestartEndpoint(ResourceId resource) {
  if (sharded()) {
    const std::uint32_t shard = resource_shard_[resource.value()];
    shard_agents_[shard]->ColdRestartResource(resource);
    if (recovery_hooks_.restarts != nullptr) {
      recovery_hooks_.restarts->Increment();
    }
    EmitRecoveryEvent("recovery.restart", shard_endpoints_[shard],
                      /*is_resource=*/true,
                      static_cast<double>(resource.value()), /*cold=*/true);
    return;
  }
  const net::EndpointId endpoint = resource_endpoints_[resource.value()];
  bus_->RestartEndpoint(endpoint);
  agents_[resource.value()]->ColdRestart();
  if (recovery_hooks_.restarts != nullptr) {
    recovery_hooks_.restarts->Increment();
  }
  EmitRecoveryEvent("recovery.restart", endpoint, /*is_resource=*/true,
                    static_cast<double>(resource.value()), /*cold=*/true);
}

void Coordinator::RestartEndpoint(TaskId task) {
  const net::EndpointId endpoint = controller_endpoints_[task.value()];
  bus_->RestartEndpoint(endpoint);
  controllers_[task.value()]->ColdRestart();
  if (recovery_hooks_.restarts != nullptr) {
    recovery_hooks_.restarts->Increment();
  }
  EmitRecoveryEvent("recovery.restart", endpoint, /*is_resource=*/false,
                    static_cast<double>(task.value()), /*cold=*/true);
}

void Coordinator::RestartEndpoint(ResourceId resource,
                                  const ResourceAgentSnapshot& snapshot) {
  RequireUnsharded("RestartEndpoint(resource, snapshot)");
  const net::EndpointId endpoint = resource_endpoints_[resource.value()];
  bus_->RestartEndpoint(endpoint);
  agents_[resource.value()]->RestoreFromSnapshot(snapshot);
  if (recovery_hooks_.restarts != nullptr) {
    recovery_hooks_.restarts->Increment();
  }
  EmitRecoveryEvent("recovery.restart", endpoint, /*is_resource=*/true,
                    static_cast<double>(resource.value()), /*cold=*/false);
}

void Coordinator::RestartEndpoint(TaskId task,
                                  const TaskControllerSnapshot& snapshot) {
  const net::EndpointId endpoint = controller_endpoints_[task.value()];
  bus_->RestartEndpoint(endpoint);
  controllers_[task.value()]->RestoreFromSnapshot(snapshot);
  if (recovery_hooks_.restarts != nullptr) {
    recovery_hooks_.restarts->Increment();
  }
  EmitRecoveryEvent("recovery.restart", endpoint, /*is_resource=*/false,
                    static_cast<double>(task.value()), /*cold=*/false);
}

ResourceAgentSnapshot Coordinator::CheckpointResource(
    ResourceId resource) const {
  RequireUnsharded("CheckpointResource");
  return agents_[resource.value()]->Snapshot();
}

TaskControllerSnapshot Coordinator::CheckpointController(TaskId task) const {
  return controllers_[task.value()]->Snapshot();
}

void Coordinator::PartitionResource(ResourceId resource,
                                    double duration_ms) {
  RequireUnsharded("PartitionResource");
  bus_->BlackoutEndpoint(resource_endpoints_[resource.value()],
                         bus_->now_ms() + duration_ms);
}

void Coordinator::PartitionController(TaskId task, double duration_ms) {
  bus_->BlackoutEndpoint(controller_endpoints_[task.value()],
                         bus_->now_ms() + duration_ms);
}

void Coordinator::EnsureLaneScratch(int lanes) {
  while (static_cast<int>(lane_prices_.size()) < lanes) {
    lane_prices_.push_back(PriceVector::Zero(*workload_));
  }
  if (static_cast<int>(lane_outboxes_.size()) < lanes) {
    lane_outboxes_.resize(static_cast<std::size_t>(lanes));
  }
}

void Coordinator::CommitLaneOutboxes(int lanes) {
  for (int lane = 0; lane < lanes; ++lane) {
    for (net::Message& message : lane_outboxes_[lane]) {
      bus_->Send(std::move(message));
    }
    lane_outboxes_[lane].clear();
  }
}

RoundStats Coordinator::RunSyncRound() {
  obs::ScopedTimer timing(sync_round_timer_);
  ThreadPool* pool = round_pool_.get();
  if (pool == nullptr || pool->size() <= 1) {
    for (auto& controller : controllers_) controller->AllocateAndSend();
    bus_->RunAll();
    for (auto& agent : agents_) agent->ComputePriceAndBroadcast();
    for (auto& agent : shard_agents_) agent->ComputePricesAndBroadcast();
    bus_->RunAll();
  } else {
    // Parallel round (DESIGN.md §7.11).  Each phase fans disjoint endpoints
    // across the pool with sends deferred to per-lane outboxes; committing
    // the lanes in order reproduces the serial send order exactly (lanes own
    // contiguous ascending chunks), so the bus sees the same (seq, payload)
    // stream and the fixed point is bit-identical at any thread count.
    controller_shared_->solver.PrepareSolve();
    const int lanes =
        pool->ParticipantsFor(controllers_.size(), /*min_items_per_thread=*/1);
    EnsureLaneScratch(std::max(lanes, pool->size()));
    pool->RunRegion(lanes, [&](int index, int total) {
      const auto [begin, end] = ChunkRange(controllers_.size(), total, index);
      for (std::size_t t = begin; t < end; ++t) {
        controllers_[t]->AllocateAndSend(&lane_prices_[index],
                                         &lane_outboxes_[index]);
      }
    });
    CommitLaneOutboxes(lanes);
    bus_->RunAllParallel(pool);
    // Unsharded agents are cheap single-resource updates; only the sharded
    // agents carry enough per-call work to fan out.
    for (auto& agent : agents_) agent->ComputePriceAndBroadcast();
    if (!shard_agents_.empty()) {
      const int shard_lanes = pool->ParticipantsFor(shard_agents_.size(),
                                                    /*min_items_per_thread=*/1);
      pool->RunRegion(shard_lanes, [&](int index, int total) {
        const auto [begin, end] =
            ChunkRange(shard_agents_.size(), total, index);
        for (std::size_t s = begin; s < end; ++s) {
          shard_agents_[s]->ComputePricesAndBroadcast(&lane_outboxes_[index]);
        }
      });
      CommitLaneOutboxes(shard_lanes);
    }
    bus_->RunAllParallel(pool);
  }
  ++round_;
  if (rounds_counter_ != nullptr) rounds_counter_->Increment();
  RecordSample(bus_->now_ms());
  return history_.empty() ? RoundStats{} : history_.back();
}

RunResult Coordinator::RunSync(int max_rounds) {
  assert(max_rounds >= 1);
  RunResult result;
  for (int i = 0; i < max_rounds; ++i) {
    const RoundStats stats = RunSyncRound();
    result.final_utility = stats.total_utility;
    if (converged_) break;
  }
  result.converged = converged_;
  result.iterations = round_;
  result.final_feasibility = CurrentFeasibility();
  return result;
}

void Coordinator::ArmAsyncTimers() {
  if (async_armed_) return;
  async_armed_ = true;
  // Controllers fire first (they own the initial latencies), staggered so no
  // two agents act at the same instant.
  double phase = 0.0;
  for (std::size_t t = 0; t < controllers_.size(); ++t) {
    TaskController* controller = controllers_[t].get();
    const net::EndpointId endpoint =
        bus_->Register("controller-timer/" + std::to_string(t), nullptr,
                       [this, controller, endpoint_slot = t](std::uint64_t) {
                         controller->AllocateAndSend();
                         bus_->ScheduleTimer(
                             controller_timer_endpoints_[endpoint_slot],
                             config_.controller_period_ms, kControllerTimer);
                       });
    controller_timer_endpoints_.push_back(endpoint);
    bus_->ScheduleTimer(endpoint, phase, kControllerTimer);
    phase += config_.phase_spread_ms;
  }
  phase = 0.5 * config_.resource_period_ms;
  for (std::size_t r = 0; r < agents_.size(); ++r) {
    ResourceAgent* agent = agents_[r].get();
    const net::EndpointId endpoint =
        bus_->Register("resource-timer/" + std::to_string(r), nullptr,
                       [this, agent, endpoint_slot = r](std::uint64_t) {
                         agent->ComputePriceAndBroadcast();
                         bus_->ScheduleTimer(
                             resource_timer_endpoints_[endpoint_slot],
                             config_.resource_period_ms, kResourceTimer);
                       });
    resource_timer_endpoints_.push_back(endpoint);
    bus_->ScheduleTimer(endpoint, phase, kResourceTimer);
    phase += config_.phase_spread_ms;
  }
  for (std::size_t s = 0; s < shard_agents_.size(); ++s) {
    ShardAgent* agent = shard_agents_[s].get();
    const net::EndpointId endpoint =
        bus_->Register("shard-timer/" + std::to_string(s), nullptr,
                       [this, agent, endpoint_slot = s](std::uint64_t) {
                         agent->ComputePricesAndBroadcast();
                         bus_->ScheduleTimer(
                             resource_timer_endpoints_[endpoint_slot],
                             config_.resource_period_ms, kResourceTimer);
                       });
    resource_timer_endpoints_.push_back(endpoint);
    bus_->ScheduleTimer(endpoint, phase, kResourceTimer);
    phase += config_.phase_spread_ms;
  }
  bus_->ScheduleTimer(monitor_endpoint_, config_.monitor_period_ms,
                      kMonitorTimer);
}

void Coordinator::RunAsync(double duration_ms) {
  ArmAsyncTimers();
  bus_->RunUntil(bus_->now_ms() + duration_ms);
}

void Coordinator::CollectAssignment(Assignment* latencies) const {
  latencies->resize(workload_->subtask_count());
  for (const TaskInfo& task : workload_->tasks()) {
    const auto& local = controllers_[task.id.value()]->latencies();
    for (std::size_t i = 0; i < task.subtasks.size(); ++i) {
      (*latencies)[task.subtasks[i].value()] = local[i];
    }
  }
}

Assignment Coordinator::CurrentAssignment() const {
  Assignment latencies;
  CollectAssignment(&latencies);
  return latencies;
}

void Coordinator::InvalidateModelCache() {
  controller_shared_->solver.InvalidateModelCache();
}

PriceVector Coordinator::CurrentPrices() const {
  PriceVector prices = PriceVector::Zero(*workload_);
  if (sharded()) {
    for (const ResourceInfo& resource : workload_->resources()) {
      const ShardAgent& agent =
          *shard_agents_[resource_shard_[resource.id.value()]];
      prices.mu[resource.id.value()] = agent.mu(resource.id);
    }
  } else {
    for (const ResourceInfo& resource : workload_->resources()) {
      prices.mu[resource.id.value()] = agents_[resource.id.value()]->mu();
    }
  }
  for (const TaskInfo& task : workload_->tasks()) {
    const auto& lambdas = controllers_[task.id.value()]->lambdas();
    for (std::size_t p = 0; p < task.paths.size(); ++p) {
      prices.lambda[task.paths[p].value()] = lambdas[p];
    }
  }
  return prices;
}

std::vector<RunResult> Coordinator::EvaluateScenarios(
    const std::vector<LlaConfig>& configs, int max_iterations,
    int num_threads) const {
  const PriceVector prices = CurrentPrices();
  EngineBatch batch(num_threads);
  for (const LlaConfig& config : configs) {
    const int index = batch.Add(*workload_, *model_, config);
    // WarmStart primes the engine's active set at the running system's
    // operating point, so scenario re-convergence steps are incremental
    // from the first iteration (only constraints the what-if perturbs
    // re-solve) instead of resetting to dense work.
    batch.engine(index).WarmStart(prices);
  }
  std::vector<RunResult> results = batch.RunAll(max_iterations);
  if (config_.metrics != nullptr) {
    std::uint64_t solves = 0;
    for (const RunResult& result : results) solves += result.subtask_solves;
    config_.metrics->GetCounter("coordinator.scenario.runs")
        ->Increment(results.size());
    config_.metrics->GetCounter("coordinator.scenario.subtask_solves")
        ->Increment(solves);
  }
  return results;
}

double Coordinator::CurrentUtility() const {
  return TotalUtility(*workload_, CurrentAssignment(),
                      config_.solver.variant);
}

FeasibilityReport Coordinator::CurrentFeasibility() const {
  return CheckFeasibility(*workload_, *model_, CurrentAssignment(),
                          config_.convergence.feasibility_tol);
}

void Coordinator::RecordSample(double at_ms) {
  // One fused evaluation sweep into reused buffers (same arrays the engine's
  // StepWorkspace uses), instead of re-walking the workload per quantity.
  CollectAssignment(&scratch_assignment_);
  FillResourceShareSums(*workload_, *model_, scratch_assignment_,
                        &scratch_share_sums_);
  FillPathLatencies(*workload_, scratch_assignment_,
                    &scratch_path_latencies_);
  FillTaskAggregates(*workload_, scratch_assignment_, config_.solver.variant,
                     &scratch_task_weighted_, &scratch_task_utilities_);
  double utility = 0.0;
  for (double task_utility : scratch_task_utilities_) utility += task_utility;
  const FeasibilitySummary summary =
      SummarizeFeasibility(*workload_, scratch_share_sums_,
                           scratch_path_latencies_,
                           config_.convergence.feasibility_tol);
  if (config_.record_history) {
    RoundStats stats;
    stats.round = round_;
    stats.at_ms = at_ms;
    stats.total_utility = utility;
    stats.max_resource_excess = summary.max_resource_excess;
    stats.max_path_ratio = summary.max_path_ratio;
    stats.feasible = summary.feasible;
    history_.push_back(std::move(stats));
  }
  if (samples_counter_ != nullptr) samples_counter_->Increment();
  if (config_.trace_sink != nullptr) EmitTrace(at_ms, utility, summary);
  UpdateConvergence(utility, summary.feasible);
  MaybeEnact(at_ms);
}

void Coordinator::EmitTrace(double at_ms, double utility,
                            const FeasibilitySummary& summary) {
  // Share sums and path latencies come from the scratch buffers RecordSample
  // just filled; the dual state is collected from the agents (mu lives on
  // the resource agents, lambda on the task controllers).
  trace_.iteration = round_;
  trace_.at_ms = at_ms;
  trace_.total_utility = utility;
  trace_.feasible = summary.feasible;
  trace_.max_resource_excess = summary.max_resource_excess;
  trace_.max_path_ratio = summary.max_path_ratio;
  trace_.resource_share_sums = scratch_share_sums_;
  trace_.path_latencies = scratch_path_latencies_;
  trace_.resource_mu.resize(workload_->resource_count());
  trace_.resource_step.resize(workload_->resource_count());
  for (const ResourceInfo& resource : workload_->resources()) {
    if (sharded()) {
      const ShardAgent& agent =
          *shard_agents_[resource_shard_[resource.id.value()]];
      trace_.resource_mu[resource.id.value()] = agent.mu(resource.id);
      trace_.resource_step[resource.id.value()] =
          config_.step.gamma0 * agent.step_multiplier(resource.id);
    } else {
      const ResourceAgent& agent = *agents_[resource.id.value()];
      trace_.resource_mu[resource.id.value()] = agent.mu();
      trace_.resource_step[resource.id.value()] =
          config_.step.gamma0 * agent.step_multiplier();
    }
  }
  trace_.path_lambda.resize(workload_->path_count());
  trace_.path_step.resize(workload_->path_count());
  for (const TaskInfo& task : workload_->tasks()) {
    const TaskController& controller = *controllers_[task.id.value()];
    const auto& lambdas = controller.lambdas();
    const auto& multipliers = controller.path_step_multipliers();
    for (std::size_t p = 0; p < task.paths.size(); ++p) {
      trace_.path_lambda[task.paths[p].value()] = lambdas[p];
      trace_.path_step[task.paths[p].value()] =
          config_.step.gamma0 * multipliers[p];
    }
  }
  config_.trace_sink->OnIteration(trace_);
}

void Coordinator::UpdateConvergence(double utility, bool feasible) {
  const ConvergenceConfig& conv = config_.convergence;
  recent_utilities_.push_back(utility);
  while (static_cast<int>(recent_utilities_.size()) > conv.window) {
    recent_utilities_.pop_front();
  }
  if (static_cast<int>(recent_utilities_.size()) < conv.window) {
    converged_ = false;
    return;
  }
  const auto [min_it, max_it] =
      std::minmax_element(recent_utilities_.begin(), recent_utilities_.end());
  const double spread = *max_it - *min_it;
  const double scale = std::max(1.0, std::fabs(*max_it));
  bool settled = spread <= conv.rel_tol * scale;
  if (settled && conv.require_feasible) {
    settled = feasible;
  }
  converged_ = settled;
}

void Coordinator::MaybeEnact(double at_ms) {
  const double utility = recent_utilities_.back();
  if (!enactments_.empty()) {
    const double last = enactments_.back().utility;
    const double scale = std::max(1.0, std::fabs(last));
    if (std::fabs(utility - last) <= config_.enactment_threshold * scale) {
      return;
    }
  }
  Enactment enactment;
  enactment.round = round_;
  enactment.at_ms = at_ms;
  enactment.utility = utility;
  enactment.latencies = CurrentAssignment();
  enactments_.push_back(std::move(enactment));
  if (enactments_counter_ != nullptr) enactments_counter_->Increment();
}

}  // namespace lla::runtime
