// Crash-restart recovery for the distributed runtime (DESIGN.md §7.7).
//
// Two restart flavors exist, both driven through the Coordinator's
// fault-injection API:
//
//   * Cold restart — the agent lost everything.  Its message endpoint's
//     incarnation is bumped (so peers can reject its pre-crash traffic and
//     it can prove its own freshness), its dual state resets, and it runs
//     the repair exchange: a RepairRequest to every client controller, each
//     answering with its absolute view (cached mu_r + current subtask
//     latencies).  Broadcasts hold for a few grace ticks while repair is in
//     flight so a mu=0 cold price never hits the network.
//
//   * Checkpoint restart — the agent restored a snapshot taken earlier by
//     Coordinator::CheckpointResource/CheckpointController.  It rejoins with
//     bounded staleness (whatever moved since the snapshot) and needs no
//     repair exchange.
//
// This header holds the snapshot structs and the counter bundle; the agent
// logic lives in resource_agent / task_controller, the injection API on the
// Coordinator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "obs/metrics.h"

namespace lla::runtime {

/// Durable state of one ResourceAgent (everything ComputePriceAndBroadcast
/// reads), captured by Coordinator::CheckpointResource.
struct ResourceAgentSnapshot {
  ResourceId resource;
  double mu = 0.0;
  double gamma_multiplier = 1.0;
  std::uint32_t epoch = 0;
  /// Latest latency inputs, indexed like workload.resource(id).subtasks.
  std::vector<double> latencies_ms;
  /// Accelerated-dynamics state (DESIGN.md §7.12).  Snapshots taken before
  /// the momentum port — or by a plain-dynamics agent — leave has_dynamics
  /// false and restore as FRESH momentum (velocity/phase zero, base re-seeded
  /// at mu), mirroring the v1 -> v2 engine-snapshot precedent: an old
  /// checkpoint is a valid operating point, just without acceleration
  /// history.
  bool has_dynamics = false;
  double velocity = 0.0;
  /// Nesterov base iterate x (the published mu is the extrapolated point y).
  double dynamics_base = 0.0;
  /// Steps since the component's last adaptive restart (the ramp clock).
  double phase = 0.0;
};

/// Durable state of one TaskController, captured by
/// Coordinator::CheckpointController.
struct TaskControllerSnapshot {
  TaskId task;
  std::vector<double> local_latencies;
  std::vector<double> local_lambdas;
  std::vector<double> path_gamma_multiplier;
  /// Full-size per-resource caches (only used resources are ever non-zero).
  std::vector<double> mu;
  std::vector<std::uint8_t> resource_congested;
  std::vector<std::uint32_t> resource_epoch;
};

/// Recovery counters, resolved once from a registry and shared by the
/// coordinator with every agent (all null when metrics are disabled, so the
/// hot paths pay one pointer test).
struct RecoveryHooks {
  /// Endpoint restarts injected (cold + checkpointed).
  obs::Counter* restarts = nullptr;
  /// Messages rejected because their incarnation predates the sender's
  /// latest known restart.
  obs::Counter* stale_rejected = nullptr;
  /// RepairResponses absorbed by restarted resource agents.
  obs::Counter* repair_rounds = nullptr;

  static RecoveryHooks Resolve(obs::MetricRegistry* metrics) {
    RecoveryHooks hooks;
    if (metrics != nullptr) {
      hooks.restarts = metrics->GetCounter("recovery.restarts");
      hooks.stale_rejected = metrics->GetCounter("recovery.stale_rejected");
      hooks.repair_rounds = metrics->GetCounter("recovery.repair_rounds");
    }
    return hooks;
  }
};

}  // namespace lla::runtime
