// ResourceAgent: the per-resource participant of the distributed LLA
// protocol (paper Sec. 4.3, "Resource Price Computation").
//
//   1. Receive the computed latencies of all subtasks running here.
//   2. Compute a new resource price mu_r (Eq. 8), adapting the local step
//      size by the doubling heuristic while congested.
//   3. Send (mu_r, congested) to the controllers of tasks with subtasks
//      here.
//
// For a network link the paper assigns this role to one endpoint of the
// link; in the bus deployment every resource simply gets an endpoint.
#pragma once

#include <cstdint>
#include <vector>

#include "core/price_dynamics.h"
#include "model/latency_model.h"
#include "model/workload.h"
#include "net/bus.h"
#include "runtime/recovery.h"

namespace lla::runtime {

struct AgentStepConfig {
  double gamma0 = 3.0;
  bool adaptive = true;
  double adaptive_max_multiplier = 8.0;
  /// Cold restart: price broadcasts hold for this many timer ticks (or until
  /// the first RepairResponse is absorbed, whichever first) so a reset mu=0
  /// never reaches the controllers while repair is in flight.
  int repair_grace_ticks = 3;
  /// Accelerated price dynamics for the Eq. 8 mu update (DESIGN.md §7.12).
  /// The per-component velocity/base/phase state lives inside the agent and
  /// is applied before the non-negativity projection, exactly as the engine
  /// applies PriceDynamicsPolicy — beta = 0 heavy-ball is bit-identical to
  /// plain.  Set through CoordinatorConfig::dynamics in a coordinator
  /// deployment (the coordinator copies it here before building agents).
  DynamicsConfig dynamics;
};

class ResourceAgent {
 public:
  ResourceAgent(const Workload& workload, const LatencyModel& model,
                ResourceId resource, AgentStepConfig config);

  /// Wires the agent to the bus.  `controller_endpoints[t]` is the endpoint
  /// of task t's controller (non-owning; the coordinator keeps the vector
  /// alive); only controllers with subtasks on this resource are messaged.
  void Bind(net::InProcessBus* bus, net::EndpointId self,
            const std::vector<net::EndpointId>* controller_endpoints);

  /// Handles a LatencyUpdate destined for this resource.
  void OnMessage(const net::Message& message);

  /// One price computation + broadcast (driven by the coordinator in sync
  /// mode or by a timer in async mode).
  void ComputePriceAndBroadcast();

  double mu() const { return mu_; }
  double ShareSum() const;
  bool Congested() const;
  /// Current adaptive step multiplier (1.0 when uncongested / non-adaptive).
  double step_multiplier() const { return gamma_multiplier_; }
  ResourceId resource() const { return resource_; }
  std::uint32_t epoch() const { return epoch_; }
  /// Momentum state of the mu component (zero while dynamics are plain).
  const ComponentDynamicsState& dynamics_state() const { return dynamics_; }
  /// Adaptive restarts fired by this agent's dynamics since construction.
  std::uint64_t momentum_restarts() const { return momentum_restarts_; }

  /// Crash-restart recovery (DESIGN.md §7.7).  The Coordinator drives these
  /// together with the bus-side CrashEndpoint/RestartEndpoint so the
  /// process-local flag and the network fault stay in sync.
  void set_recovery_hooks(const RecoveryHooks& hooks) { hooks_ = hooks; }
  /// Halts the agent: message handling and broadcasts no-op until a restart
  /// (the bus drops its traffic anyway; this stops the wasted local work).
  void Crash();
  /// Rejoins with total state loss: dual state resets and the repair
  /// exchange starts — a RepairRequest to every client controller, price
  /// broadcasts held for repair_grace_ticks or until a response is absorbed.
  void ColdRestart();
  /// Rejoins from a snapshot (bounded staleness, no repair exchange).
  void RestoreFromSnapshot(const ResourceAgentSnapshot& snapshot);
  ResourceAgentSnapshot Snapshot() const;
  bool crashed() const { return crashed_; }
  bool awaiting_repair() const { return awaiting_repair_; }

 private:
  void SendRepairRequest();
  /// Incarnation-gated acceptance of a peer controller's message; counts and
  /// rejects traffic older than the controller's latest known restart.
  bool AcceptIncarnation(TaskId task, std::uint32_t incarnation);
  const Workload* workload_;
  const LatencyModel* model_;
  ResourceId resource_;
  AgentStepConfig config_;

  net::InProcessBus* bus_ = nullptr;
  net::EndpointId self_ = 0;
  const std::vector<net::EndpointId>* controller_endpoints_ = nullptr;
  std::vector<TaskId> client_tasks_;  ///< tasks with subtasks here

  /// Latest latency per hosted subtask, indexed like
  /// workload.resource(resource_).subtasks.
  std::vector<double> latencies_;
  double mu_ = 0.0;
  double gamma_multiplier_ = 1.0;
  std::uint32_t epoch_ = 0;
  /// Momentum state of the mu component (DESIGN.md §7.12): velocity and ramp
  /// phase, plus the Nesterov base iterate.  Reset whenever the gradient
  /// stream becomes discontinuous — cold restart, repair adoption, snapshot
  /// restore, incarnation-stale rejection — so pre-crash momentum is never
  /// replayed into a post-crash gradient.
  ComponentDynamicsState dynamics_;
  std::uint64_t momentum_restarts_ = 0;

  /// Recovery state.
  RecoveryHooks hooks_;
  bool crashed_ = false;
  bool awaiting_repair_ = false;
  bool repair_adopted_ = false;
  int repair_grace_left_ = 0;
  std::uint32_t best_repair_epoch_ = 0;
  /// Highest sender incarnation seen per client task (stale rejection).
  std::vector<std::uint32_t> task_incarnation_;
};

}  // namespace lla::runtime
