#include "runtime/task_controller.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace lla::runtime {

TaskController::TaskController(const Workload& workload,
                               const LatencyModel& model, TaskId task,
                               AgentStepConfig step_config,
                               LatencySolverConfig solver_config)
    : workload_(&workload),
      model_(&model),
      task_(task),
      step_config_(step_config),
      solver_(workload, model, solver_config) {
  prices_ = PriceVector::Zero(workload);
  scratch_latencies_.assign(workload.subtask_count(), 0.0);
  const TaskInfo& info = workload.task(task);
  local_latencies_.assign(info.subtasks.size(), 0.0);
  local_lambdas_.assign(info.paths.size(), 0.0);
  path_gamma_multiplier_.assign(info.paths.size(), 1.0);
  resource_congested_.assign(workload.resource_count(), false);

  std::set<ResourceId> used;
  for (SubtaskId sid : info.subtasks) {
    used.insert(workload.subtask(sid).resource);
  }
  used_resources_.assign(used.begin(), used.end());
}

void TaskController::Bind(net::InProcessBus* bus, net::EndpointId self,
                          std::vector<net::EndpointId> resource_endpoints) {
  bus_ = bus;
  self_ = self;
  resource_endpoints_ = std::move(resource_endpoints);
}

void TaskController::OnMessage(const net::Message& message) {
  const auto* update =
      std::get_if<net::ResourcePriceUpdate>(&message.payload);
  if (update == nullptr) return;
  prices_.mu[update->resource.value()] = update->mu;
  resource_congested_[update->resource.value()] = update->congested;
}

void TaskController::AllocateAndSend() {
  assert(bus_ != nullptr);
  const TaskInfo& info = workload_->task(task_);

  // 3. Latency allocation at the stored prices (Eq. 7).
  solver_.SolveTask(task_, prices_, &scratch_latencies_);
  for (std::size_t i = 0; i < info.subtasks.size(); ++i) {
    local_latencies_[i] = scratch_latencies_[info.subtasks[i].value()];
  }

  // 2'. Path price update (Eq. 9) with the adaptive per-path step: a path's
  // step doubles while any resource it traverses reports congestion.
  for (std::size_t p = 0; p < info.paths.size(); ++p) {
    const PathInfo& path = workload_->path(info.paths[p]);
    bool any_congested = false;
    double latency = 0.0;
    for (SubtaskId sid : path.subtasks) {
      latency += scratch_latencies_[sid.value()];
      if (resource_congested_[workload_->subtask(sid).resource.value()]) {
        any_congested = true;
      }
    }
    if (step_config_.adaptive) {
      path_gamma_multiplier_[p] =
          any_congested ? std::min(path_gamma_multiplier_[p] * 2.0,
                                   step_config_.adaptive_max_multiplier)
                        : 1.0;
    }
    const double gamma = step_config_.gamma0 * path_gamma_multiplier_[p];
    const double slack = 1.0 - latency / path.critical_time_ms;
    local_lambdas_[p] =
        std::max(0.0, local_lambdas_[p] - gamma * slack);
    prices_.lambda[info.paths[p].value()] = local_lambdas_[p];
  }

  // 4. Send the new latencies, one message per resource used.
  for (ResourceId resource : used_resources_) {
    net::LatencyUpdate update;
    update.task = task_;
    for (std::size_t i = 0; i < info.subtasks.size(); ++i) {
      const SubtaskId sid = info.subtasks[i];
      if (workload_->subtask(sid).resource != resource) continue;
      update.subtasks.push_back(sid);
      update.latencies_ms.push_back(local_latencies_[i]);
    }
    net::Message message;
    message.sender = self_;
    message.receiver = resource_endpoints_[resource.value()];
    message.payload = std::move(update);
    bus_->Send(std::move(message));
  }
}

}  // namespace lla::runtime
