#include "runtime/task_controller.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <set>
#include <string>

namespace lla::runtime {

TaskController::TaskController(const Workload& workload,
                               const LatencyModel& model, TaskId task,
                               AgentStepConfig step_config,
                               ControllerShared* shared)
    : workload_(&workload),
      model_(&model),
      task_(task),
      step_config_(step_config),
      shared_(shared) {
  assert(shared_ != nullptr);
  const TaskInfo& info = workload.task(task);
  local_latencies_.assign(info.subtasks.size(), 0.0);
  local_lambdas_.assign(info.paths.size(), 0.0);
  path_gamma_multiplier_.assign(info.paths.size(), 1.0);

  std::set<ResourceId> used;
  for (SubtaskId sid : info.subtasks) {
    used.insert(workload.subtask(sid).resource);
  }
  used_resources_.assign(used.begin(), used.end());
  mu_cache_.assign(used_resources_.size(), 0.0);
  used_congested_.assign(used_resources_.size(), 0);
  used_epoch_.assign(used_resources_.size(), 0);
  used_incarnation_.assign(used_resources_.size(), 0);
}

void TaskController::Bind(
    net::InProcessBus* bus, net::EndpointId self,
    const std::vector<net::EndpointId>* resource_endpoints) {
  bus_ = bus;
  self_ = self;
  resource_endpoints_ = resource_endpoints;
}

void TaskController::BindShards(
    const std::vector<net::EndpointId>* shard_endpoints,
    const std::vector<std::uint32_t>* resource_shard) {
  shard_endpoints_ = shard_endpoints;
  resource_shard_ = resource_shard;
  shard_incarnation_.assign(shard_endpoints->size(), 0);

  // Group this task's subtasks by owning shard once, so each send is a
  // gather over precomputed index lists.
  const TaskInfo& info = workload_->task(task_);
  used_shards_.clear();
  shard_subtasks_.clear();
  for (std::size_t i = 0; i < info.subtasks.size(); ++i) {
    const ResourceId resource = workload_->subtask(info.subtasks[i]).resource;
    const std::uint32_t shard = (*resource_shard)[resource.value()];
    auto it = std::find(used_shards_.begin(), used_shards_.end(), shard);
    if (it == used_shards_.end()) {
      used_shards_.push_back(shard);
      shard_subtasks_.emplace_back();
      it = used_shards_.end() - 1;
    }
    shard_subtasks_[static_cast<std::size_t>(it - used_shards_.begin())]
        .push_back(static_cast<std::uint32_t>(i));
  }

  // Static membership for the positional price protocol: for each shard the
  // used-resource slots it owns, ascending.  used_resources_ is sorted and a
  // shard owns a contiguous resource range, so this list is positionally
  // identical to the shard's client_resources_ list for this task.
  shard_used_slots_.assign(shard_endpoints->size(), {});
  for (std::size_t k = 0; k < used_resources_.size(); ++k) {
    shard_used_slots_[(*resource_shard)[used_resources_[k].value()]].push_back(
        static_cast<std::uint32_t>(k));
  }
}

int TaskController::UsedIndex(ResourceId resource) const {
  const auto it = std::lower_bound(used_resources_.begin(),
                                   used_resources_.end(), resource);
  if (it == used_resources_.end() || *it != resource) return -1;
  return static_cast<int>(it - used_resources_.begin());
}

double TaskController::mu_seen(ResourceId r) const {
  const int k = UsedIndex(r);
  return k < 0 ? 0.0 : mu_cache_[static_cast<std::size_t>(k)];
}

std::uint32_t TaskController::mu_epoch_seen(ResourceId r) const {
  const int k = UsedIndex(r);
  return k < 0 ? 0u : used_epoch_[static_cast<std::size_t>(k)];
}

bool TaskController::AcceptIncarnation(std::vector<std::uint32_t>* watermarks,
                                       std::size_t slot,
                                       std::uint32_t incarnation) {
  std::uint32_t& seen = (*watermarks)[slot];
  if (incarnation < seen) {
    if (hooks_.stale_rejected != nullptr) hooks_.stale_rejected->Increment();
    return false;
  }
  seen = incarnation;
  return true;
}

void TaskController::OnMessage(const net::Message& message) {
  if (crashed_) return;
  if (const auto* update =
          std::get_if<net::ResourcePriceUpdate>(&message.payload)) {
    const int k = UsedIndex(update->resource);
    if (k < 0) return;  // misrouted; this task does not use the resource
    const auto slot = static_cast<std::size_t>(k);
    if (!AcceptIncarnation(&used_incarnation_, slot, message.incarnation)) {
      return;
    }
    mu_cache_[slot] = update->mu;
    used_congested_[slot] = update->congested ? 1 : 0;
    used_epoch_[slot] = update->epoch;
    return;
  }
  if (const auto* update =
          std::get_if<net::ShardPriceUpdate>(&message.payload)) {
    if (update->shard >= shard_incarnation_.size()) return;  // misrouted
    if (!AcceptIncarnation(&shard_incarnation_, update->shard,
                           message.incarnation)) {
      return;
    }
    // Positional apply (DESIGN.md §7.11): entry j is the j-th element of
    // this task's used-resource list on the shard.  A count mismatch means
    // the sender's binding disagrees with ours — ignore the whole message.
    const std::vector<std::uint32_t>& slots = shard_used_slots_[update->shard];
    if (update->count != slots.size()) return;
    net::ShardPriceBitsets bits;
    if (!net::DecodeShardPriceUpdate(*update, &mu_scratch_, &bits)) return;
    for (std::size_t j = 0; j < slots.size(); ++j) {
      // A stale bit marks a resource crashed (or mid-repair) inside the
      // shard: keep the cached price, exactly as an unsharded crash keeps
      // the agent's last broadcast.
      if (bits.stale != nullptr && net::TestWireBit(bits.stale, j)) continue;
      const auto slot = static_cast<std::size_t>(slots[j]);
      mu_cache_[slot] = mu_scratch_[j];
      used_congested_[slot] = net::TestWireBit(bits.congested, j) ? 1 : 0;
      used_epoch_[slot] = update->epoch;
    }
    return;
  }
  if (const auto* request =
          std::get_if<net::RepairRequest>(&message.payload)) {
    // A restarted resource asks for our absolute view.  The request carries
    // the agent's post-restart incarnation: adopting it as the watermark
    // makes every price the agent sent before its crash (still in flight,
    // or arriving out of order) rejectable as stale from this moment on.
    const int k = UsedIndex(request->resource);
    if (k >= 0 &&
        !AcceptIncarnation(&used_incarnation_, static_cast<std::size_t>(k),
                           message.incarnation)) {
      return;
    }
    const TaskInfo& info = workload_->task(task_);
    net::RepairResponse repair;
    repair.resource = request->resource;
    repair.task = task_;
    repair.mu = mu_seen(request->resource);
    repair.epoch = mu_epoch_seen(request->resource);
    repair.congested =
        k >= 0 && used_congested_[static_cast<std::size_t>(k)] != 0;
    for (std::size_t i = 0; i < info.subtasks.size(); ++i) {
      const SubtaskId sid = info.subtasks[i];
      if (workload_->subtask(sid).resource != request->resource) continue;
      repair.subtasks.push_back(sid);
      repair.latencies_ms.push_back(local_latencies_[i]);
    }
    net::Message reply;
    reply.sender = self_;
    reply.receiver = message.sender;
    reply.payload = std::move(repair);
    bus_->Send(std::move(reply));
    return;
  }
}

void TaskController::Crash() { crashed_ = true; }

void TaskController::ColdRestart() {
  crashed_ = false;
  std::fill(mu_cache_.begin(), mu_cache_.end(), 0.0);
  std::fill(local_latencies_.begin(), local_latencies_.end(), 0.0);
  std::fill(local_lambdas_.begin(), local_lambdas_.end(), 0.0);
  std::fill(path_gamma_multiplier_.begin(), path_gamma_multiplier_.end(),
            1.0);
  std::fill(used_congested_.begin(), used_congested_.end(), 0);
  std::fill(used_epoch_.begin(), used_epoch_.end(), 0);
  std::fill(used_incarnation_.begin(), used_incarnation_.end(), 0);
  std::fill(shard_incarnation_.begin(), shard_incarnation_.end(), 0);
}

void TaskController::RestoreFromSnapshot(
    const TaskControllerSnapshot& snapshot) {
  assert(snapshot.task == task_);
  crashed_ = false;
  if (snapshot.local_latencies.size() == local_latencies_.size()) {
    local_latencies_ = snapshot.local_latencies;
  }
  if (snapshot.local_lambdas.size() == local_lambdas_.size()) {
    local_lambdas_ = snapshot.local_lambdas;
  }
  if (snapshot.path_gamma_multiplier.size() == path_gamma_multiplier_.size()) {
    path_gamma_multiplier_ = snapshot.path_gamma_multiplier;
  }
  for (std::size_t k = 0; k < used_resources_.size(); ++k) {
    const std::size_t r = used_resources_[k].value();
    if (r < snapshot.mu.size()) mu_cache_[k] = snapshot.mu[r];
    if (r < snapshot.resource_congested.size()) {
      used_congested_[k] = snapshot.resource_congested[r];
    }
    if (r < snapshot.resource_epoch.size()) {
      used_epoch_[k] = snapshot.resource_epoch[r];
    }
  }
  std::fill(used_incarnation_.begin(), used_incarnation_.end(), 0);
  std::fill(shard_incarnation_.begin(), shard_incarnation_.end(), 0);
}

TaskControllerSnapshot TaskController::Snapshot() const {
  TaskControllerSnapshot snapshot;
  snapshot.task = task_;
  snapshot.local_latencies = local_latencies_;
  snapshot.local_lambdas = local_lambdas_;
  snapshot.path_gamma_multiplier = path_gamma_multiplier_;
  // The snapshot struct keeps the full-size layout for compatibility; only
  // used entries are ever non-zero, exactly as the dense cache behaved.
  snapshot.mu.assign(workload_->resource_count(), 0.0);
  snapshot.resource_congested.assign(workload_->resource_count(), 0);
  snapshot.resource_epoch.assign(workload_->resource_count(), 0);
  for (std::size_t k = 0; k < used_resources_.size(); ++k) {
    const std::size_t r = used_resources_[k].value();
    snapshot.mu[r] = mu_cache_[k];
    snapshot.resource_congested[r] = used_congested_[k];
    snapshot.resource_epoch[r] = used_epoch_[k];
  }
  return snapshot;
}

void TaskController::AllocateAndSend() {
  AllocateAndSendImpl(shared_->prices, /*prepared_solver=*/false, nullptr);
}

void TaskController::AllocateAndSend(PriceVector* lane_prices,
                                     std::vector<net::Message>* outbox) {
  assert(lane_prices != nullptr && outbox != nullptr);
  AllocateAndSendImpl(*lane_prices, /*prepared_solver=*/true, outbox);
}

void TaskController::AllocateAndSendImpl(PriceVector& prices,
                                         bool prepared_solver,
                                         std::vector<net::Message>* outbox) {
  assert(bus_ != nullptr);
  if (crashed_) return;
  const TaskInfo& info = workload_->task(task_);
  const auto emit = [&](net::Message&& message) {
    if (outbox != nullptr) {
      outbox->push_back(std::move(message));
    } else {
      bus_->Send(std::move(message));
    }
  };

  // Publish this task's slots of the solve buffers.  Other controllers'
  // stale entries are never read: the solver only gathers the prices of
  // this task's own resources and paths.  In the parallel round `prices` is
  // the lane's private PriceVector — the shared one's mu slots overlap
  // across tasks sharing a resource and would race.
  for (std::size_t k = 0; k < used_resources_.size(); ++k) {
    prices.mu[used_resources_[k].value()] = mu_cache_[k];
  }
  for (std::size_t p = 0; p < info.paths.size(); ++p) {
    prices.lambda[info.paths[p].value()] = local_lambdas_[p];
  }

  // 3. Latency allocation at the stored prices (Eq. 7).  Both branches
  // reach SolveTaskFresh with the full gather CSR: SolveTask refreshes the
  // cache inline, SolveTaskRange relies on the round's serial PrepareSolve.
  // Distinct tasks write disjoint slots of the shared scratch Assignment,
  // so it stays shared even in the parallel round.
  Assignment& scratch = shared_->latencies;
  if (prepared_solver) {
    shared_->solver.SolveTaskRange(task_.value(), task_.value() + 1, prices,
                                   &scratch);
  } else {
    shared_->solver.SolveTask(task_, prices, &scratch);
  }
  for (std::size_t i = 0; i < info.subtasks.size(); ++i) {
    local_latencies_[i] = scratch[info.subtasks[i].value()];
  }

  // 2'. Path price update (Eq. 9) with the adaptive per-path step: a path's
  // step doubles while any resource it traverses reports congestion.
  for (std::size_t p = 0; p < info.paths.size(); ++p) {
    const PathInfo& path = workload_->path(info.paths[p]);
    bool any_congested = false;
    double latency = 0.0;
    for (SubtaskId sid : path.subtasks) {
      latency += scratch[sid.value()];
      const int k = UsedIndex(workload_->subtask(sid).resource);
      if (k >= 0 && used_congested_[static_cast<std::size_t>(k)] != 0) {
        any_congested = true;
      }
    }
    if (step_config_.adaptive) {
      path_gamma_multiplier_[p] =
          any_congested ? std::min(path_gamma_multiplier_[p] * 2.0,
                                   step_config_.adaptive_max_multiplier)
                        : 1.0;
    }
    const double gamma = step_config_.gamma0 * path_gamma_multiplier_[p];
    const double slack = 1.0 - latency / path.critical_time_ms;
    local_lambdas_[p] =
        std::max(0.0, local_lambdas_[p] - gamma * slack);
  }

  // 4. Send the new latencies: one batched positional message per shard
  // touched, or — unsharded — one message per resource used.
  if (shard_endpoints_ != nullptr) {
    // One arena per round: every shard's payload is encoded back-to-back,
    // then sliced per message (the messages share ownership of the arena).
    // The b1 chooser never exceeds the raw encoding, so Σ(1 + 8n) bounds
    // the arena.
    std::string arena;
    std::size_t reserve = 0;
    for (const auto& subs : shard_subtasks_) reserve += 1 + 8 * subs.size();
    arena.reserve(reserve);
    latency_spans_.resize(used_shards_.size());
    for (std::size_t s = 0; s < used_shards_.size(); ++s) {
      const std::vector<std::uint32_t>& subs = shard_subtasks_[s];
      gather_latencies_.resize(subs.size());
      for (std::size_t j = 0; j < subs.size(); ++j) {
        gather_latencies_[j] = local_latencies_[subs[j]];
      }
      latency_spans_[s] = net::AppendShardLatencyPayload(
          gather_latencies_.data(), subs.size(), &arena);
    }
    auto shared_arena = std::make_shared<const std::string>(std::move(arena));
    for (std::size_t s = 0; s < used_shards_.size(); ++s) {
      net::ShardLatencyUpdate update;
      update.task = task_;
      update.shard = used_shards_[s];
      update.count = static_cast<std::uint32_t>(shard_subtasks_[s].size());
      update.payload = net::WireSlice(shared_arena, latency_spans_[s].offset,
                                      latency_spans_[s].length);
      net::Message message;
      message.sender = self_;
      message.receiver = (*shard_endpoints_)[used_shards_[s]];
      message.payload = std::move(update);
      emit(std::move(message));
    }
    return;
  }
  for (ResourceId resource : used_resources_) {
    net::LatencyUpdate update;
    update.task = task_;
    for (std::size_t i = 0; i < info.subtasks.size(); ++i) {
      const SubtaskId sid = info.subtasks[i];
      if (workload_->subtask(sid).resource != resource) continue;
      update.subtasks.push_back(sid);
      update.latencies_ms.push_back(local_latencies_[i]);
    }
    net::Message message;
    message.sender = self_;
    message.receiver = (*resource_endpoints_)[resource.value()];
    message.payload = std::move(update);
    emit(std::move(message));
  }
}

}  // namespace lla::runtime
