#include "runtime/task_controller.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace lla::runtime {

TaskController::TaskController(const Workload& workload,
                               const LatencyModel& model, TaskId task,
                               AgentStepConfig step_config,
                               LatencySolverConfig solver_config)
    : workload_(&workload),
      model_(&model),
      task_(task),
      step_config_(step_config),
      solver_(workload, model, solver_config) {
  prices_ = PriceVector::Zero(workload);
  scratch_latencies_.assign(workload.subtask_count(), 0.0);
  const TaskInfo& info = workload.task(task);
  local_latencies_.assign(info.subtasks.size(), 0.0);
  local_lambdas_.assign(info.paths.size(), 0.0);
  path_gamma_multiplier_.assign(info.paths.size(), 1.0);
  resource_congested_.assign(workload.resource_count(), false);

  std::set<ResourceId> used;
  for (SubtaskId sid : info.subtasks) {
    used.insert(workload.subtask(sid).resource);
  }
  used_resources_.assign(used.begin(), used.end());
  resource_epoch_.assign(workload.resource_count(), 0);
  resource_incarnation_.assign(workload.resource_count(), 0);
}

void TaskController::Bind(net::InProcessBus* bus, net::EndpointId self,
                          std::vector<net::EndpointId> resource_endpoints) {
  bus_ = bus;
  self_ = self;
  resource_endpoints_ = std::move(resource_endpoints);
}

bool TaskController::AcceptIncarnation(ResourceId resource,
                                       std::uint32_t incarnation) {
  std::uint32_t& seen = resource_incarnation_[resource.value()];
  if (incarnation < seen) {
    if (hooks_.stale_rejected != nullptr) hooks_.stale_rejected->Increment();
    return false;
  }
  seen = incarnation;
  return true;
}

void TaskController::OnMessage(const net::Message& message) {
  if (crashed_) return;
  if (const auto* update =
          std::get_if<net::ResourcePriceUpdate>(&message.payload)) {
    if (!AcceptIncarnation(update->resource, message.incarnation)) return;
    prices_.mu[update->resource.value()] = update->mu;
    resource_congested_[update->resource.value()] = update->congested;
    resource_epoch_[update->resource.value()] = update->epoch;
    return;
  }
  if (const auto* request =
          std::get_if<net::RepairRequest>(&message.payload)) {
    // A restarted resource asks for our absolute view.  The request carries
    // the agent's post-restart incarnation: adopting it as the watermark
    // makes every price the agent sent before its crash (still in flight,
    // or arriving out of order) rejectable as stale from this moment on.
    if (!AcceptIncarnation(request->resource, message.incarnation)) return;
    const TaskInfo& info = workload_->task(task_);
    net::RepairResponse repair;
    repair.resource = request->resource;
    repair.task = task_;
    repair.mu = prices_.mu[request->resource.value()];
    repair.epoch = resource_epoch_[request->resource.value()];
    repair.congested = resource_congested_[request->resource.value()];
    for (std::size_t i = 0; i < info.subtasks.size(); ++i) {
      const SubtaskId sid = info.subtasks[i];
      if (workload_->subtask(sid).resource != request->resource) continue;
      repair.subtasks.push_back(sid);
      repair.latencies_ms.push_back(local_latencies_[i]);
    }
    net::Message reply;
    reply.sender = self_;
    reply.receiver = message.sender;
    reply.payload = std::move(repair);
    bus_->Send(std::move(reply));
    return;
  }
}

void TaskController::Crash() { crashed_ = true; }

void TaskController::ColdRestart() {
  crashed_ = false;
  prices_ = PriceVector::Zero(*workload_);
  std::fill(local_latencies_.begin(), local_latencies_.end(), 0.0);
  std::fill(local_lambdas_.begin(), local_lambdas_.end(), 0.0);
  std::fill(path_gamma_multiplier_.begin(), path_gamma_multiplier_.end(),
            1.0);
  std::fill(resource_congested_.begin(), resource_congested_.end(), false);
  std::fill(resource_epoch_.begin(), resource_epoch_.end(), 0);
  std::fill(resource_incarnation_.begin(), resource_incarnation_.end(), 0);
}

void TaskController::RestoreFromSnapshot(
    const TaskControllerSnapshot& snapshot) {
  assert(snapshot.task == task_);
  crashed_ = false;
  if (snapshot.local_latencies.size() == local_latencies_.size()) {
    local_latencies_ = snapshot.local_latencies;
  }
  if (snapshot.local_lambdas.size() == local_lambdas_.size()) {
    local_lambdas_ = snapshot.local_lambdas;
    const TaskInfo& info = workload_->task(task_);
    for (std::size_t p = 0; p < info.paths.size(); ++p) {
      prices_.lambda[info.paths[p].value()] = local_lambdas_[p];
    }
  }
  if (snapshot.path_gamma_multiplier.size() == path_gamma_multiplier_.size()) {
    path_gamma_multiplier_ = snapshot.path_gamma_multiplier;
  }
  if (snapshot.mu.size() == prices_.mu.size()) prices_.mu = snapshot.mu;
  if (snapshot.resource_congested.size() == resource_congested_.size()) {
    for (std::size_t r = 0; r < resource_congested_.size(); ++r) {
      resource_congested_[r] = snapshot.resource_congested[r] != 0;
    }
  }
  if (snapshot.resource_epoch.size() == resource_epoch_.size()) {
    resource_epoch_ = snapshot.resource_epoch;
  }
  std::fill(resource_incarnation_.begin(), resource_incarnation_.end(), 0);
}

TaskControllerSnapshot TaskController::Snapshot() const {
  TaskControllerSnapshot snapshot;
  snapshot.task = task_;
  snapshot.local_latencies = local_latencies_;
  snapshot.local_lambdas = local_lambdas_;
  snapshot.path_gamma_multiplier = path_gamma_multiplier_;
  snapshot.mu = prices_.mu;
  snapshot.resource_congested.resize(resource_congested_.size());
  for (std::size_t r = 0; r < resource_congested_.size(); ++r) {
    snapshot.resource_congested[r] = resource_congested_[r] ? 1 : 0;
  }
  snapshot.resource_epoch = resource_epoch_;
  return snapshot;
}

void TaskController::AllocateAndSend() {
  assert(bus_ != nullptr);
  if (crashed_) return;
  const TaskInfo& info = workload_->task(task_);

  // 3. Latency allocation at the stored prices (Eq. 7).
  solver_.SolveTask(task_, prices_, &scratch_latencies_);
  for (std::size_t i = 0; i < info.subtasks.size(); ++i) {
    local_latencies_[i] = scratch_latencies_[info.subtasks[i].value()];
  }

  // 2'. Path price update (Eq. 9) with the adaptive per-path step: a path's
  // step doubles while any resource it traverses reports congestion.
  for (std::size_t p = 0; p < info.paths.size(); ++p) {
    const PathInfo& path = workload_->path(info.paths[p]);
    bool any_congested = false;
    double latency = 0.0;
    for (SubtaskId sid : path.subtasks) {
      latency += scratch_latencies_[sid.value()];
      if (resource_congested_[workload_->subtask(sid).resource.value()]) {
        any_congested = true;
      }
    }
    if (step_config_.adaptive) {
      path_gamma_multiplier_[p] =
          any_congested ? std::min(path_gamma_multiplier_[p] * 2.0,
                                   step_config_.adaptive_max_multiplier)
                        : 1.0;
    }
    const double gamma = step_config_.gamma0 * path_gamma_multiplier_[p];
    const double slack = 1.0 - latency / path.critical_time_ms;
    local_lambdas_[p] =
        std::max(0.0, local_lambdas_[p] - gamma * slack);
    prices_.lambda[info.paths[p].value()] = local_lambdas_[p];
  }

  // 4. Send the new latencies, one message per resource used.
  for (ResourceId resource : used_resources_) {
    net::LatencyUpdate update;
    update.task = task_;
    for (std::size_t i = 0; i < info.subtasks.size(); ++i) {
      const SubtaskId sid = info.subtasks[i];
      if (workload_->subtask(sid).resource != resource) continue;
      update.subtasks.push_back(sid);
      update.latencies_ms.push_back(local_latencies_[i]);
    }
    net::Message message;
    message.sender = self_;
    message.receiver = resource_endpoints_[resource.value()];
    message.payload = std::move(update);
    bus_->Send(std::move(message));
  }
}

}  // namespace lla::runtime
