#include "runtime/churn.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/rng.h"
#include "workloads/random.h"
#include "workloads/transform.h"

namespace lla::runtime {

const char* ToString(ChurnKind kind) {
  switch (kind) {
    case ChurnKind::kJoin:
      return "join";
    case ChurnKind::kLeave:
      return "leave";
    case ChurnKind::kWcetPerturb:
      return "wcet_perturb";
  }
  return "?";
}

ChurnDriver::ChurnDriver(std::vector<ResourceSpec> resources,
                         std::vector<TaskSpec> tasks, ChurnConfig config)
    : resources_(std::move(resources)),
      tasks_(std::move(tasks)),
      config_(std::move(config)) {
  admission_ = std::make_unique<admission::AdmissionController>(
      resources_, config_.admission);
}

Expected<ChurnDriver> ChurnDriver::Create(std::vector<ResourceSpec> resources,
                                          std::vector<TaskSpec> tasks,
                                          ChurnConfig config) {
  auto built = Workload::Create(resources, tasks);
  if (!built.ok()) {
    return Expected<ChurnDriver>::Error("ChurnDriver: " + built.error());
  }
  ChurnDriver driver(std::move(resources), std::move(tasks),
                     std::move(config));
  driver.workload_ = std::make_unique<Workload>(std::move(built).value());
  driver.model_ = std::make_unique<LatencyModel>(*driver.workload_);
  driver.engine_ = std::make_unique<LlaEngine>(
      *driver.workload_, *driver.model_, driver.config_.lla);
  driver.engine_->Run(driver.config_.max_iterations);
  return driver;
}

std::vector<TaskSpec> ChurnDriver::CorrectedSpecs() const {
  std::vector<TaskSpec> corrected = tasks_;
  if (wcet_errors_.empty()) return corrected;
  for (TaskSpec& task : corrected) {
    for (std::size_t j = 0; j < task.subtasks.size(); ++j) {
      const auto it = wcet_errors_.find({task.name, j});
      // The stored error is clamped >= -0.5 * wcet at application time, so
      // the corrected wcet stays strictly positive.
      if (it != wcet_errors_.end()) task.subtasks[j].wcet_ms += it->second;
    }
  }
  return corrected;
}

void ChurnDriver::ReplayWcetErrors() {
  if (wcet_errors_.empty()) return;
  for (const TaskInfo& task : workload_->tasks()) {
    for (std::size_t j = 0; j < task.subtasks.size(); ++j) {
      const auto it = wcet_errors_.find({task.name, j});
      if (it != wcet_errors_.end()) {
        model_->SetAdditiveError(task.subtasks[j], it->second);
      }
    }
  }
}

bool ChurnDriver::CommitStructural(std::vector<TaskSpec> new_tasks,
                                   StructuralChange change,
                                   std::string* error) {
  auto built = Workload::Create(resources_, new_tasks);
  if (!built.ok()) {
    *error = built.error();
    return false;
  }
  auto new_workload = std::make_unique<Workload>(std::move(built).value());
  auto new_model = std::make_unique<LatencyModel>(*new_workload);
  auto new_engine = std::make_unique<LlaEngine>(*new_workload, *new_model,
                                                config_.lla);
  const Status seeded = new_engine->WarmStartStructural(
      *workload_, engine_->prices(), change);
  if (!seeded.ok()) {
    *error = seeded.error();
    return false;
  }
  // Destruction order: the old engine references the old workload/model, so
  // it goes first.
  engine_ = std::move(new_engine);
  model_ = std::move(new_model);
  workload_ = std::move(new_workload);
  tasks_ = std::move(new_tasks);
  // Replaying the accumulated WCET corrections bumps the model revision, so
  // the engine's first Step() re-primes against the corrected model.
  ReplayWcetErrors();
  return true;
}

void ChurnDriver::RunAndRecord(std::size_t prime_solves,
                               ChurnRecord* record) {
  const int iterations_before = engine_->iteration();
  const auto start = std::chrono::steady_clock::now();
  const RunResult result = engine_->Run(config_.max_iterations);
  record->converged = result.converged;
  record->iterations = engine_->iteration() - iterations_before;
  record->subtask_solves =
      static_cast<std::uint64_t>(prime_solves) + result.subtask_solves;
  record->final_utility = result.final_utility;
  if (!result.converged && config_.cold_restart_on_stall) {
    // Warm continuation stalled (see ChurnConfig::cold_restart_on_stall):
    // restart from cold once, charging the retry — including its dense
    // prime — to the same record.
    engine_->Reset();
    const RunResult retry = engine_->Run(config_.max_iterations);
    record->converged = retry.converged;
    record->iterations += retry.iterations;
    record->subtask_solves +=
        retry.subtask_solves + workload_->subtask_count();
    record->final_utility = retry.final_utility;
    record->note = "cold restart after warm stall";
  }
  const auto stop = std::chrono::steady_clock::now();
  record->wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  record->tasks_after = workload_->task_count();
}

ChurnRecord ChurnDriver::ApplyJoin(const TaskSpec& candidate,
                                   bool pre_approved) {
  ChurnRecord record;
  record.kind = ChurnKind::kJoin;
  record.tasks_after = workload_->task_count();
  if (!pre_approved && config_.gate_joins) {
    std::vector<TaskSpec> with_candidate = CorrectedSpecs();
    with_candidate.push_back(candidate);
    const auto probes = admission_->ProbeAll({std::move(with_candidate)});
    if (!probes.front().schedulable) {
      record.note = probes.front().reason.empty() ? "not schedulable"
                                                  : probes.front().reason;
      return record;
    }
  }
  std::vector<TaskSpec> new_tasks = tasks_;
  new_tasks.push_back(candidate);
  const TaskId added(static_cast<std::uint32_t>(new_tasks.size() - 1));
  if (!CommitStructural(std::move(new_tasks),
                        StructuralChange::TaskJoin(added), &record.note)) {
    return record;
  }
  record.applied = true;
  RunAndRecord(workload_->subtask_count(), &record);
  return record;
}

ChurnRecord ChurnDriver::ApplyLeave(std::size_t leave_index) {
  ChurnRecord record;
  record.kind = ChurnKind::kLeave;
  record.tasks_after = workload_->task_count();
  if (workload_->task_count() <= config_.min_tasks) {
    record.note = "at min_tasks";
    return record;
  }
  const std::size_t index = leave_index % workload_->task_count();
  const TaskId removed(static_cast<std::uint32_t>(index));
  std::vector<TaskSpec> new_tasks = tasks_;
  // Departed tasks take their accumulated WCET corrections with them (the
  // name may be reused by a later, unrelated join).
  for (std::size_t j = 0; j < new_tasks[index].subtasks.size(); ++j) {
    wcet_errors_.erase({new_tasks[index].name, j});
  }
  new_tasks.erase(new_tasks.begin() + static_cast<std::ptrdiff_t>(index));
  if (!CommitStructural(std::move(new_tasks),
                        StructuralChange::TaskLeave(removed), &record.note)) {
    return record;
  }
  record.applied = true;
  RunAndRecord(workload_->subtask_count(), &record);
  return record;
}

ChurnRecord ChurnDriver::ApplyPerturb(const ChurnMutation& mutation) {
  ChurnRecord record;
  record.kind = ChurnKind::kWcetPerturb;
  record.tasks_after = workload_->task_count();
  const std::size_t index = mutation.subtask_index % workload_->subtask_count();
  const SubtaskId sid(static_cast<std::uint32_t>(index));
  const SubtaskInfo& subtask = workload_->subtask(sid);
  const TaskInfo& task = workload_->task(subtask.task);
  std::size_t position = 0;
  while (position < task.subtasks.size() && task.subtasks[position] != sid) {
    ++position;
  }
  assert(position < task.subtasks.size());
  double& error = wcet_errors_[{task.name, position}];
  // Keep the corrected WCET strictly positive: corrections never shrink the
  // estimate below half the spec.
  error = std::max(error + mutation.wcet_error_ms, -0.5 * subtask.wcet_ms);
  model_->SetAdditiveError(sid, error);
  engine_->ClearConvergenceWindow();
  record.applied = true;
  RunAndRecord(0, &record);
  return record;
}

ChurnRecord ChurnDriver::Apply(const ChurnMutation& mutation) {
  switch (mutation.kind) {
    case ChurnKind::kJoin:
      return ApplyJoin(mutation.join_task, /*pre_approved=*/false);
    case ChurnKind::kLeave:
      return ApplyLeave(mutation.leave_index);
    case ChurnKind::kWcetPerturb:
      return ApplyPerturb(mutation);
  }
  return {};
}

std::vector<ChurnRecord> ChurnDriver::ApplyAll(
    const std::vector<ChurnMutation>& script) {
  std::vector<ChurnRecord> records;
  records.reserve(script.size());
  std::size_t i = 0;
  while (i < script.size()) {
    if (script[i].kind != ChurnKind::kJoin || !config_.gate_joins) {
      records.push_back(Apply(script[i]));
      ++i;
      continue;
    }
    // Burst of consecutive joins: probe CUMULATIVE candidate sets (set k =
    // live tasks + joins i..i+k) concurrently in one ProbeAll — the verdict
    // for set k under an all-schedulable prefix equals the sequential gate
    // decision for join i+k.  The longest schedulable prefix is applied in
    // order; the first rejection is recorded, and the remainder of the
    // burst re-probes against the new incumbent.
    std::size_t burst_end = i;
    while (burst_end < script.size() &&
           script[burst_end].kind == ChurnKind::kJoin) {
      ++burst_end;
    }
    while (i < burst_end) {
      std::vector<std::vector<TaskSpec>> candidate_sets;
      candidate_sets.reserve(burst_end - i);
      std::vector<TaskSpec> cumulative = CorrectedSpecs();
      for (std::size_t k = i; k < burst_end; ++k) {
        cumulative.push_back(script[k].join_task);
        candidate_sets.push_back(cumulative);
      }
      const auto probes = admission_->ProbeAll(candidate_sets);
      std::size_t prefix = 0;
      while (prefix < probes.size() && probes[prefix].schedulable) ++prefix;
      for (std::size_t k = 0; k < prefix; ++k) {
        records.push_back(
            ApplyJoin(script[i + k].join_task, /*pre_approved=*/true));
      }
      i += prefix;
      if (i < burst_end) {
        ChurnRecord rejected;
        rejected.kind = ChurnKind::kJoin;
        rejected.tasks_after = workload_->task_count();
        rejected.note = probes[prefix].reason.empty()
                            ? "not schedulable"
                            : probes[prefix].reason;
        records.push_back(std::move(rejected));
        ++i;
      }
    }
  }
  return records;
}

Expected<std::vector<ChurnMutation>> MakeChurnScript(
    const ChurnScriptConfig& config) {
  // Donor pool: tasks from a random workload over the same resource-id
  // space, renamed uniquely per join so repeated admissions stay valid.
  RandomWorkloadConfig donor;
  donor.seed = config.seed * 0x9e3779b97f4a7c15ULL + 1;
  donor.num_resources = config.num_resources;
  donor.num_tasks = std::max(1, config.donor_tasks);
  donor.max_subtasks = std::min(donor.max_subtasks, config.num_resources);
  donor.min_subtasks = std::min(donor.min_subtasks, donor.max_subtasks);
  // Generously schedulable in isolation: the gate, not the generator,
  // decides what the live system can absorb.
  donor.target_utilization = 0.5;
  auto donor_workload = MakeRandomWorkload(donor);
  if (!donor_workload.ok()) {
    return Expected<std::vector<ChurnMutation>>::Error(
        "MakeChurnScript: donor workload: " + donor_workload.error());
  }
  const std::vector<TaskSpec> pool =
      ExtractSpecs(donor_workload.value()).tasks;

  Rng rng(config.seed);
  std::vector<ChurnMutation> script;
  script.reserve(config.mutations);
  std::size_t joins = 0;
  for (std::size_t m = 0; m < config.mutations; ++m) {
    const double draw = rng.NextDouble();
    ChurnMutation mutation;
    if (draw < config.join_fraction) {
      mutation.kind = ChurnKind::kJoin;
      mutation.join_task = pool[joins % pool.size()];
      mutation.join_task.name = "join_" + std::to_string(joins);
      ++joins;
    } else if (draw < config.join_fraction + config.leave_fraction) {
      mutation.kind = ChurnKind::kLeave;
      mutation.leave_index = static_cast<std::size_t>(rng.Below(1u << 30));
    } else {
      mutation.kind = ChurnKind::kWcetPerturb;
      mutation.subtask_index = static_cast<std::size_t>(rng.Below(1u << 30));
      mutation.wcet_error_ms =
          rng.Uniform(-config.wcet_error_ms, config.wcet_error_ms);
    }
    script.push_back(std::move(mutation));
  }
  return script;
}

}  // namespace lla::runtime
