#include "runtime/shard_agent.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace lla::runtime {

ShardAgent::ShardAgent(const Workload& workload, const LatencyModel& model,
                       std::uint32_t shard, ResourceId first_resource,
                       std::size_t count, AgentStepConfig config)
    : workload_(&workload),
      model_(&model),
      shard_(shard),
      first_(first_resource.value()),
      config_(config) {
  resources_.reserve(count);
  latency_offset_.reserve(count + 1);
  latency_offset_.push_back(0);
  std::map<TaskId, std::set<std::uint32_t>> clients;
  for (std::size_t i = 0; i < count; ++i) {
    const ResourceId r(static_cast<std::uint32_t>(first_ + i));
    resources_.push_back(r);
    const ResourceInfo& info = workload.resource(r);
    for (SubtaskId sid : info.subtasks) {
      subtask_slot_.emplace(sid.value(), latencies_.size());
      // Same "no demand yet" initial reading as the per-resource agent: an
      // effectively-infinite latency gives share ~ 0.
      latencies_.push_back(1e9);
      clients[workload.subtask(sid).task].insert(
          static_cast<std::uint32_t>(i));
    }
    latency_offset_.push_back(latencies_.size());
  }
  client_tasks_.reserve(clients.size());
  client_resources_.reserve(clients.size());
  for (const auto& [task, locals] : clients) {
    client_tasks_.push_back(task);
    client_resources_.emplace_back(locals.begin(), locals.end());
  }
  mu_.assign(count, 0.0);
  gamma_multiplier_.assign(count, 1.0);
  congested_.assign(count, 0);
  task_incarnation_.assign(workload.task_count(), 0);
}

void ShardAgent::Bind(net::InProcessBus* bus, net::EndpointId self,
                      const std::vector<net::EndpointId>* controller_endpoints) {
  bus_ = bus;
  self_ = self;
  controller_endpoints_ = controller_endpoints;
}

bool ShardAgent::AcceptIncarnation(TaskId task, std::uint32_t incarnation) {
  std::uint32_t& seen = task_incarnation_[task.value()];
  if (incarnation < seen) {
    if (hooks_.stale_rejected != nullptr) hooks_.stale_rejected->Increment();
    return false;
  }
  seen = incarnation;
  return true;
}

void ShardAgent::OnMessage(const net::Message& message) {
  const auto* update = std::get_if<net::ShardLatencyUpdate>(&message.payload);
  if (update == nullptr) return;
  if (update->shard != shard_) return;  // misrouted; ignore
  if (update->task.value() >= task_incarnation_.size()) return;  // unknown task
  if (!AcceptIncarnation(update->task, message.incarnation)) return;
  for (std::size_t i = 0; i < update->subtasks.size(); ++i) {
    const auto it = subtask_slot_.find(update->subtasks[i].value());
    if (it == subtask_slot_.end()) continue;  // misrouted entry; skip
    latencies_[it->second] = update->latencies_ms[i];
  }
}

double ShardAgent::ShareSum(ResourceId r) const {
  const std::size_t local = Local(r);
  const auto& hosted = workload_->resource(r).subtasks;
  const std::size_t base = latency_offset_[local];
  double sum = 0.0;
  for (std::size_t i = 0; i < hosted.size(); ++i) {
    const ShareFunction& share = model_->share(hosted[i]);
    const double lat = std::max(latencies_[base + i], share.MinLatency() + 1e-9);
    sum += share.Share(lat);
  }
  return sum;
}

bool ShardAgent::Congested(ResourceId r) const {
  return ShareSum(r) > workload_->resource(r).capacity;
}

void ShardAgent::ComputePricesAndBroadcast() {
  assert(bus_ != nullptr);
  for (std::size_t i = 0; i < resources_.size(); ++i) {
    const ResourceId r = resources_[i];
    const ResourceInfo& info = workload_->resource(r);
    const double share_sum = ShareSum(r);
    const bool congested = share_sum > info.capacity;
    congested_[i] = congested ? 1 : 0;

    // Adaptive step (Sec. 5.2): double while congested, revert when not —
    // identical to the per-resource agent so sharded and unsharded sync runs
    // produce the same fixed point.
    if (config_.adaptive) {
      gamma_multiplier_[i] =
          congested ? std::min(gamma_multiplier_[i] * 2.0,
                               config_.adaptive_max_multiplier)
                    : 1.0;
    }
    const double gamma = config_.gamma0 * gamma_multiplier_[i];

    // Eq. 8 with projection at zero.
    mu_[i] = std::max(0.0, mu_[i] - gamma * (info.capacity - share_sum));
  }
  ++epoch_;

  // One batched message per client, carrying only the prices that client
  // reads: a whole-shard vector to every client would multiply the round's
  // byte volume by shard_width / task_resources_per_shard on sparse
  // workloads (11x measured on random_100k) for data the controller skips.
  for (std::size_t c = 0; c < client_tasks_.size(); ++c) {
    net::ShardPriceUpdate update;
    update.shard = shard_;
    update.epoch = epoch_;
    const std::vector<std::uint32_t>& locals = client_resources_[c];
    update.resources.reserve(locals.size());
    update.mu.reserve(locals.size());
    update.congested.reserve(locals.size());
    for (const std::uint32_t i : locals) {
      update.resources.push_back(resources_[i]);
      update.mu.push_back(mu_[i]);
      update.congested.push_back(congested_[i]);
    }
    net::Message message;
    message.sender = self_;
    message.receiver = (*controller_endpoints_)[client_tasks_[c].value()];
    message.payload = std::move(update);
    bus_->Send(std::move(message));
  }
}

}  // namespace lla::runtime
