#include "runtime/shard_agent.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <set>
#include <utility>

namespace lla::runtime {

ShardAgent::ShardAgent(const Workload& workload, const LatencyModel& model,
                       std::uint32_t shard, ResourceId first_resource,
                       std::size_t count, AgentStepConfig config)
    : workload_(&workload),
      model_(&model),
      shard_(shard),
      first_(first_resource.value()),
      config_(config) {
  resources_.reserve(count);
  latency_offset_.reserve(count + 1);
  latency_offset_.push_back(0);
  std::map<TaskId, std::set<std::uint32_t>> clients;
  for (std::size_t i = 0; i < count; ++i) {
    const ResourceId r(static_cast<std::uint32_t>(first_ + i));
    resources_.push_back(r);
    const ResourceInfo& info = workload.resource(r);
    for (SubtaskId sid : info.subtasks) {
      subtask_slot_.emplace(sid.value(), latencies_.size());
      // Same "no demand yet" initial reading as the per-resource agent: an
      // effectively-infinite latency gives share ~ 0.
      latencies_.push_back(1e9);
      slot_resource_.push_back(static_cast<std::uint32_t>(i));
      clients[workload.subtask(sid).task].insert(
          static_cast<std::uint32_t>(i));
    }
    latency_offset_.push_back(latencies_.size());
  }
  client_tasks_.reserve(clients.size());
  client_resources_.reserve(clients.size());
  client_latency_slots_.reserve(clients.size());
  resource_clients_.assign(count, {});
  for (const auto& [task, locals] : clients) {
    const auto c = static_cast<std::uint32_t>(client_tasks_.size());
    client_tasks_.push_back(task);
    client_resources_.emplace_back(locals.begin(), locals.end());
    for (const std::uint32_t local : client_resources_.back()) {
      resource_clients_[local].push_back(c);
    }
    // The positional latency list: the client's subtasks hosted here, in
    // the client's local subtask order — exactly the order the controller's
    // shard_subtasks_ gather emits.
    auto& slots = client_latency_slots_.emplace_back();
    for (SubtaskId sid : workload.task(task).subtasks) {
      const auto it = subtask_slot_.find(sid.value());
      if (it != subtask_slot_.end()) slots.push_back(it->second);
    }
  }
  mu_.assign(count, 0.0);
  gamma_multiplier_.assign(count, 1.0);
  velocity_.assign(count, 0.0);
  dynamics_base_.assign(count, 0.0);
  dynamics_phase_.assign(count, 0.0);
  congested_.assign(count, 0);
  resource_crashed_.assign(count, 0);
  awaiting_repair_.assign(count, 0);
  repair_adopted_.assign(count, 0);
  repair_grace_left_.assign(count, 0);
  best_repair_epoch_.assign(count, 0);
  task_incarnation_.assign(workload.task_count(), 0);
}

void ShardAgent::Bind(net::InProcessBus* bus, net::EndpointId self,
                      const std::vector<net::EndpointId>* controller_endpoints) {
  bus_ = bus;
  self_ = self;
  controller_endpoints_ = controller_endpoints;
}

bool ShardAgent::AcceptIncarnation(TaskId task, std::uint32_t incarnation) {
  std::uint32_t& seen = task_incarnation_[task.value()];
  if (incarnation < seen) {
    if (hooks_.stale_rejected != nullptr) hooks_.stale_rejected->Increment();
    return false;
  }
  seen = incarnation;
  return true;
}

int ShardAgent::ClientIndex(TaskId task) const {
  const auto it =
      std::lower_bound(client_tasks_.begin(), client_tasks_.end(), task);
  if (it == client_tasks_.end() || *it != task) return -1;
  return static_cast<int>(it - client_tasks_.begin());
}

void ShardAgent::OnMessage(const net::Message& message) {
  if (const auto* update =
          std::get_if<net::ShardLatencyUpdate>(&message.payload)) {
    if (update->shard != shard_) return;  // misrouted; ignore
    if (update->task.value() >= task_incarnation_.size()) return;
    if (!AcceptIncarnation(update->task, message.incarnation)) {
      DropClientMomentum(update->task);
      return;
    }
    ApplyLatencyUpdate(*update);
    return;
  }
  if (const auto* repair =
          std::get_if<net::RepairResponse>(&message.payload)) {
    if (!Hosts(repair->resource)) return;  // misrouted; ignore
    if (repair->task.value() >= task_incarnation_.size()) return;
    if (!AcceptIncarnation(repair->task, message.incarnation)) {
      const std::size_t local = Local(repair->resource);
      velocity_[local] = 0.0;
      dynamics_phase_[local] = 0.0;
      return;
    }
    ApplyRepairResponse(*repair);
    return;
  }
}

void ShardAgent::DropClientMomentum(TaskId task) {
  if (config_.dynamics.kind == DynamicsKind::kPlain) return;
  const int c = ClientIndex(task);
  if (c < 0) return;
  for (const std::uint32_t local :
       client_resources_[static_cast<std::size_t>(c)]) {
    velocity_[local] = 0.0;
    dynamics_phase_[local] = 0.0;
  }
}

void ShardAgent::ApplyLatencyUpdate(const net::ShardLatencyUpdate& update) {
  const int c = ClientIndex(update.task);
  if (c < 0) return;  // not a client here; ignore
  const std::vector<std::size_t>& slots =
      client_latency_slots_[static_cast<std::size_t>(c)];
  // The positional contract: the sender's entry list is derived from the
  // same static membership, so the counts must agree; a mismatch means a
  // stale or foreign binding and the whole message is ignored.
  if (update.count != slots.size()) return;
  if (!net::DecodeShardLatencyUpdate(update, &decode_scratch_)) return;
  if (!any_resource_faulted_) {
    for (std::size_t j = 0; j < slots.size(); ++j) {
      latencies_[slots[j]] = decode_scratch_[j];
    }
    return;
  }
  for (std::size_t j = 0; j < slots.size(); ++j) {
    // A crashed resource's state is frozen until its restart (the
    // per-resource analogue of the crashed agent ignoring messages).
    if (resource_crashed_[slot_resource_[slots[j]]] != 0) continue;
    latencies_[slots[j]] = decode_scratch_[j];
  }
}

void ShardAgent::ApplyRepairResponse(const net::RepairResponse& repair) {
  const std::size_t local = Local(repair.resource);
  if (resource_crashed_[local] != 0) return;  // still down; ignore
  // Absolute state from a client controller: always absorb the latencies
  // (they are the controller's current truth), and while awaiting repair
  // adopt the price from the freshest epoch offered — same policy as
  // ResourceAgent, scoped to one resource.
  for (std::size_t i = 0; i < repair.subtasks.size(); ++i) {
    const auto it = subtask_slot_.find(repair.subtasks[i].value());
    if (it == subtask_slot_.end()) continue;
    if (slot_resource_[it->second] != local) continue;  // misrouted entry
    latencies_[it->second] = repair.latencies_ms[i];
  }
  if (awaiting_repair_[local] != 0 &&
      (repair_adopted_[local] == 0 ||
       repair.epoch >= best_repair_epoch_[local])) {
    best_repair_epoch_[local] = repair.epoch;
    mu_[local] = repair.mu;
    congested_[local] = repair.congested ? 1 : 0;
    gamma_multiplier_[local] = 1.0;  // congestion history is gone
    // Re-base the dynamics at the adopted price: momentum history is gone
    // with the rest of the pre-crash state.
    velocity_[local] = 0.0;
    dynamics_base_[local] = repair.mu;
    dynamics_phase_[local] = 0.0;
    repair_adopted_[local] = 1;
    if (hooks_.repair_rounds != nullptr) hooks_.repair_rounds->Increment();
  }
}

void ShardAgent::CrashResource(ResourceId r) {
  assert(Hosts(r));
  resource_crashed_[Local(r)] = 1;
  any_resource_faulted_ = true;
}

void ShardAgent::ColdRestartResource(ResourceId r) {
  assert(bus_ != nullptr && Hosts(r));
  const std::size_t local = Local(r);
  resource_crashed_[local] = 0;
  std::fill(latencies_.begin() +
                static_cast<std::ptrdiff_t>(latency_offset_[local]),
            latencies_.begin() +
                static_cast<std::ptrdiff_t>(latency_offset_[local + 1]),
            1e9);
  mu_[local] = 0.0;
  gamma_multiplier_[local] = 1.0;
  velocity_[local] = 0.0;
  dynamics_base_[local] = 0.0;
  dynamics_phase_[local] = 0.0;
  congested_[local] = 0;
  awaiting_repair_[local] = 1;
  repair_adopted_[local] = 0;
  repair_grace_left_[local] = config_.repair_grace_ticks;
  best_repair_epoch_[local] = 0;
  any_resource_faulted_ = true;
  // Unlike a whole-agent restart there is no incarnation bump (the shard's
  // endpoint never went down) and no watermark reset: the transport state
  // survives, only this resource's dual state was lost.
  SendRepairRequest(local, nullptr);
}

void ShardAgent::SendRepairRequest(std::size_t local,
                                   std::vector<net::Message>* outbox) {
  net::RepairRequest request;
  request.resource = resources_[local];
  for (const std::uint32_t c : resource_clients_[local]) {
    net::Message message;
    message.sender = self_;
    message.receiver = (*controller_endpoints_)[client_tasks_[c].value()];
    message.payload = request;
    if (outbox != nullptr) {
      outbox->push_back(std::move(message));
    } else {
      bus_->Send(std::move(message));
    }
  }
}

double ShardAgent::ShareSum(ResourceId r) const {
  const std::size_t local = Local(r);
  const auto& hosted = workload_->resource(r).subtasks;
  const std::size_t base = latency_offset_[local];
  double sum = 0.0;
  for (std::size_t i = 0; i < hosted.size(); ++i) {
    const ShareFunction& share = model_->share(hosted[i]);
    const double lat = std::max(latencies_[base + i], share.MinLatency() + 1e-9);
    sum += share.Share(lat);
  }
  return sum;
}

bool ShardAgent::Congested(ResourceId r) const {
  return ShareSum(r) > workload_->resource(r).capacity;
}

void ShardAgent::ComputePricesAndBroadcast(
    std::vector<net::Message>* outbox) {
  assert(bus_ != nullptr);
  bool still_faulted = false;
  for (std::size_t i = 0; i < resources_.size(); ++i) {
    if (any_resource_faulted_) {
      if (resource_crashed_[i] != 0) {
        still_faulted = true;
        continue;  // frozen: no Eq. 8 step, entry goes out stale
      }
      if (awaiting_repair_[i] != 0) {
        // Hold this resource's price while the repair exchange is in
        // flight (publishing the reset mu=0 would drag its clients through
        // a cold transient); re-request each held tick, resume once a
        // response was adopted or the grace budget is exhausted.
        if (repair_adopted_[i] == 0 && repair_grace_left_[i] > 0) {
          --repair_grace_left_[i];
          SendRepairRequest(i, outbox);
          still_faulted = true;
          continue;
        }
        awaiting_repair_[i] = 0;
      }
    }
    const ResourceId r = resources_[i];
    const ResourceInfo& info = workload_->resource(r);
    const double share_sum = ShareSum(r);
    const bool congested = share_sum > info.capacity;
    congested_[i] = congested ? 1 : 0;

    // Adaptive step (Sec. 5.2): double while congested, revert when not —
    // identical to the per-resource agent so sharded and unsharded sync runs
    // produce the same fixed point.
    if (config_.adaptive) {
      gamma_multiplier_[i] =
          congested ? std::min(gamma_multiplier_[i] * 2.0,
                               config_.adaptive_max_multiplier)
                    : 1.0;
    }
    const double gamma = config_.gamma0 * gamma_multiplier_[i];

    // Eq. 8 with projection at zero, optionally accelerated — identical
    // arithmetic to the per-resource agent (and, for plain / beta = 0, to
    // the pre-momentum inline update), so sharded and unsharded sync runs
    // still reach the same fixed point bit-for-bit.  The dynamics slots are
    // per-resource-local, so the parallel round's shard partition never
    // shares one and bit-identity at any round_threads is preserved.
    const double slack = info.capacity - share_sum;
    switch (config_.dynamics.kind) {
      case DynamicsKind::kPlain:
        mu_[i] = std::max(0.0, mu_[i] - gamma * slack);
        break;
      case DynamicsKind::kHeavyBall:
        mu_[i] = HeavyBallComponentStep(
                     config_.dynamics.momentum,
                     config_.dynamics.adaptive_restart, mu_[i], gamma, slack,
                     &velocity_[i], &dynamics_phase_[i], &momentum_restarts_)
                     .value;
        break;
      case DynamicsKind::kNesterov:
        mu_[i] = NesterovComponentStep(
                     config_.dynamics.momentum,
                     config_.dynamics.adaptive_restart, mu_[i], gamma, slack,
                     &velocity_[i], &dynamics_base_[i], &dynamics_phase_[i],
                     &momentum_restarts_)
                     .value;
        break;
    }
  }
  any_resource_faulted_ = still_faulted;
  ++epoch_;

  // One batched positional message per client, carrying only the prices
  // that client reads (a whole-shard vector to every client would multiply
  // the round's byte volume by shard_width / task_resources_per_shard on
  // sparse workloads).  All clients' payloads are encoded into one arena,
  // then sliced per message — encode once, slice per client.
  std::string arena;
  arena.reserve(client_tasks_.size() * 2 + latencies_.size() * 8);
  client_spans_.resize(client_tasks_.size());
  for (std::size_t c = 0; c < client_tasks_.size(); ++c) {
    const std::vector<std::uint32_t>& locals = client_resources_[c];
    gather_mu_.resize(locals.size());
    gather_congested_.resize(locals.size());
    const std::uint8_t* stale = nullptr;
    for (std::size_t j = 0; j < locals.size(); ++j) {
      gather_mu_[j] = mu_[locals[j]];
      gather_congested_[j] = congested_[locals[j]];
    }
    if (any_resource_faulted_) {
      gather_stale_.resize(locals.size());
      for (std::size_t j = 0; j < locals.size(); ++j) {
        const std::uint32_t i = locals[j];
        gather_stale_[j] =
            (resource_crashed_[i] != 0 || awaiting_repair_[i] != 0) ? 1 : 0;
      }
      stale = gather_stale_.data();
    }
    client_spans_[c] = net::AppendShardPricePayload(
        gather_mu_.data(), gather_congested_.data(), stale, locals.size(),
        &arena);
  }
  const auto shared_arena =
      std::make_shared<const std::string>(std::move(arena));
  for (std::size_t c = 0; c < client_tasks_.size(); ++c) {
    net::ShardPriceUpdate update;
    update.shard = shard_;
    update.epoch = epoch_;
    update.count = static_cast<std::uint32_t>(client_resources_[c].size());
    update.payload = net::WireSlice(shared_arena, client_spans_[c].offset,
                                    client_spans_[c].length);
    net::Message message;
    message.sender = self_;
    message.receiver = (*controller_endpoints_)[client_tasks_[c].value()];
    message.payload = std::move(update);
    if (outbox != nullptr) {
      outbox->push_back(std::move(message));
    } else {
      bus_->Send(std::move(message));
    }
  }
}

}  // namespace lla::runtime
