// Coordinator: wires a workload's task controllers and resource agents onto
// an InProcessBus and drives the distributed LLA iteration.
//
// Two execution modes:
//   * Synchronous rounds — the paper's iteration structure: all controllers
//     allocate and send, messages flush, all resources price and send,
//     messages flush.  With a zero-delay bus this matches the single-process
//     LlaEngine up to the one-round staleness of the congestion flags used
//     for path step sizes.
//   * Asynchronous — every agent runs on its own periodic timer with
//     staggered phases while the bus applies delay, jitter and drops; this
//     is the regime a real deployment would see.
//
// The coordinator also implements the enactment policy of Sec. 4.4: the
// running allocation is only "enacted" (recorded for the executing system)
// when utility has improved by more than a threshold since the last
// enactment, so a converged system stops thrashing scheduling parameters.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "core/engine.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"
#include "net/bus.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/resource_agent.h"
#include "runtime/shard_agent.h"
#include "runtime/task_controller.h"

namespace lla::runtime {

struct CoordinatorConfig {
  AgentStepConfig step;
  LatencySolverConfig solver;
  net::BusConfig bus;
  ConvergenceConfig convergence;
  /// Accelerated price dynamics for the distributed Eq. 8 mu updates
  /// (DESIGN.md §7.12): velocity/base/phase state lives per ResourceAgent
  /// (one component) and per resource inside each ShardAgent, with the same
  /// adaptive restart + ramp the engine's PriceDynamicsPolicy applies.
  /// Authoritative: the coordinator copies this into step.dynamics before
  /// building agents (beta = 0 or kPlain keeps the classic update
  /// bit-for-bit).  Path lambdas stay plain — they live on the task
  /// controllers, whose Eq. 9 update this config does not touch.
  DynamicsConfig dynamics;
  /// Sharded deployment (DESIGN.md §7.10): partition the resources into this
  /// many shard agents, each owning a contiguous range and exchanging one
  /// batched message per peer per round — O(shards) instead of O(resources)
  /// coordinator round traffic.  0 (the default) keeps the classic
  /// one-agent-per-resource deployment.  Crash/restart of a single resource
  /// works in both modes (sharded: the resource's state inside its shard
  /// agent, see ShardAgent::CrashResource); snapshot restarts, checkpoints
  /// and partitions of a single resource remain unsharded-only.
  int num_shards = 0;
  /// Parallel synchronous rounds (DESIGN.md §7.11): with N > 1 the
  /// coordinator owns an N-thread pool and each RunSyncRound fans the
  /// controller solves, the shard price computations and the bus delivery
  /// waves across it, with all sends deferred to per-lane outboxes and
  /// committed serially in lane order — the fixed point is bit-identical to
  /// the single-threaded round at any thread count.  Requires an RNG-free
  /// bus (drop_probability == 0 && jitter_ms == 0); async mode ignores it.
  int round_threads = 1;
  /// Relative utility change that triggers an enactment.
  double enactment_threshold = 0.01;
  /// Async mode: local re-optimization periods and initial phase stagger.
  double controller_period_ms = 10.0;
  double resource_period_ms = 10.0;
  double phase_spread_ms = 1.0;
  /// Async mode: cadence of the monitor that samples utility/enactments.
  double monitor_period_ms = 10.0;
  bool record_history = true;
  /// Receives one IterationTrace per monitor sample (sync round or async
  /// monitor tick) with the per-resource mu / per-path lambda collected from
  /// the agents.  Null disables tracing (non-owning; must outlive the
  /// coordinator).
  obs::TraceSink* trace_sink = nullptr;
  /// Registry for coordinator.rounds / coordinator.samples /
  /// coordinator.enactments and the coordinator.sync_round timer; also
  /// forwarded to the bus (bus.* counters) unless bus.metrics is already
  /// set.  Null disables instrumentation (non-owning; must outlive the
  /// coordinator).
  obs::MetricRegistry* metrics = nullptr;
};

struct RoundStats {
  int round = 0;
  double at_ms = 0.0;
  double total_utility = 0.0;
  double max_resource_excess = 0.0;
  double max_path_ratio = 0.0;
  bool feasible = false;
};

struct Enactment {
  int round = 0;
  double at_ms = 0.0;
  double utility = 0.0;
  Assignment latencies;
};

class Coordinator {
 public:
  Coordinator(const Workload& workload, const LatencyModel& model,
              CoordinatorConfig config = {});

  /// One synchronous protocol round.
  RoundStats RunSyncRound();

  /// Synchronous rounds until convergence (per config) or `max_rounds`.
  RunResult RunSync(int max_rounds);

  /// Advances the asynchronous deployment by `duration_ms` of virtual time
  /// (timers for all agents are armed on first call).
  void RunAsync(double duration_ms);

  /// Failure injection: partitions the resource agent's / task controller's
  /// message endpoint for `duration_ms` of virtual time from now (messages
  /// to and from it are dropped; its local timers keep running, so it
  /// resumes with stale state when the partition heals).
  void PartitionResource(ResourceId resource, double duration_ms);
  void PartitionController(TaskId task, double duration_ms);

  /// Crash-restart fault injection (DESIGN.md §7.7).  CrashEndpoint halts
  /// the agent and black-holes its traffic open-endedly; RestartEndpoint
  /// clears the fault, bumps the endpoint's incarnation (so peers reject its
  /// pre-crash prices as stale), and rejoins the agent either cold — total
  /// state loss followed by the peer repair exchange — or from a snapshot
  /// previously taken by CheckpointResource/CheckpointController (bounded
  /// staleness, no repair needed).  Each restart increments
  /// recovery.restarts and emits a "recovery.restart" trace event.
  void CrashEndpoint(ResourceId resource);
  void CrashEndpoint(TaskId task);
  void RestartEndpoint(ResourceId resource);
  void RestartEndpoint(TaskId task);
  void RestartEndpoint(ResourceId resource,
                       const ResourceAgentSnapshot& snapshot);
  void RestartEndpoint(TaskId task, const TaskControllerSnapshot& snapshot);
  ResourceAgentSnapshot CheckpointResource(ResourceId resource) const;
  TaskControllerSnapshot CheckpointController(TaskId task) const;

  /// The latest latency assignment across all controllers.
  Assignment CurrentAssignment() const;
  double CurrentUtility() const;
  FeasibilityReport CurrentFeasibility() const;
  bool Converged() const { return converged_; }

  /// The distributed system's current dual state: mu collected from the
  /// resource agents, lambda from the task controllers (the same collection
  /// the trace emitter performs).
  PriceVector CurrentPrices() const;

  /// What-if scenario evaluation: runs one centralized LLA optimization per
  /// config over this coordinator's workload/model, each warm-started from
  /// CurrentPrices() — near the running system's operating point, so
  /// re-convergence is much faster than a cold start.  The warm start also
  /// primes each engine's active set (dirty tracking baseline), so scenario
  /// iterations re-solve only what actually moves; total probe work lands in
  /// the coordinator.scenario.subtask_solves counter.  Scenarios are
  /// independent engines fanned across `num_threads` (EngineBatch, grain of
  /// one); results are bit-identical to evaluating them one by one and the
  /// coordinator's own agents are never touched.  Scenario configs must not
  /// carry a shared trace sink or metric registry when num_threads > 1.
  std::vector<RunResult> EvaluateScenarios(const std::vector<LlaConfig>& configs,
                                           int max_iterations,
                                           int num_threads = 1) const;

  /// Drops the task controllers' cached solver invariants; needed only when
  /// a share function was mutated in place (replacements through the
  /// LatencyModel are detected automatically via its revision).
  void InvalidateModelCache();

  const std::vector<RoundStats>& history() const { return history_; }
  const std::vector<Enactment>& enactments() const { return enactments_; }
  net::InProcessBus& bus() { return *bus_; }
  const TaskController& controller(TaskId task) const {
    return *controllers_[task.value()];
  }
  /// Unsharded mode only.
  const ResourceAgent& agent(ResourceId resource) const {
    return *agents_[resource.value()];
  }
  bool sharded() const { return !shard_agents_.empty(); }
  std::size_t shard_count() const { return shard_agents_.size(); }
  /// Sharded mode only.
  const ShardAgent& shard_agent(std::size_t shard) const {
    return *shard_agents_[shard];
  }

 private:
  /// Aborts loudly when this coordinator is sharded: the per-resource
  /// checkpoint/restore/partition surfaces index agents_ /
  /// resource_endpoints_, which are EMPTY in sharded mode.  This used to be
  /// an assert, which NDEBUG release builds compile out — turning a caller
  /// bug into silent out-of-bounds UB — so it is now an unconditional
  /// runtime check (same policy as LlaEngine::WarmStart's shape abort).
  void RequireUnsharded(const char* what) const;
  void CollectAssignment(Assignment* latencies) const;
  void RecordSample(double at_ms);
  void UpdateConvergence(double utility, bool feasible);
  void MaybeEnact(double at_ms);
  void ArmAsyncTimers();
  void EmitRecoveryEvent(const char* type, net::EndpointId endpoint,
                         bool is_resource, double index, bool cold);
  /// Lane scratch for the parallel round: full-size per-lane PriceVectors
  /// (the shared one's mu slots overlap across tasks) and deferred-send
  /// outboxes, grown on first use.
  void EnsureLaneScratch(int lanes);
  /// Sends every lane's deferred messages in lane order (= the serial send
  /// order, since lanes own contiguous ascending chunks) and clears them.
  void CommitLaneOutboxes(int lanes);

  const Workload* workload_;
  const LatencyModel* model_;
  CoordinatorConfig config_;
  std::unique_ptr<net::InProcessBus> bus_;
  /// One solver + full-size solve buffers shared by all controllers; must
  /// precede controllers_ (they hold a pointer into it).
  std::unique_ptr<ControllerShared> controller_shared_;
  std::vector<std::unique_ptr<TaskController>> controllers_;
  std::vector<std::unique_ptr<ResourceAgent>> agents_;   ///< unsharded mode
  std::vector<std::unique_ptr<ShardAgent>> shard_agents_;  ///< sharded mode
  net::EndpointId monitor_endpoint_ = 0;
  std::vector<net::EndpointId> controller_endpoints_;
  std::vector<net::EndpointId> resource_endpoints_;
  std::vector<net::EndpointId> shard_endpoints_;
  /// Sharded mode: the shard owning each resource.
  std::vector<std::uint32_t> resource_shard_;
  std::vector<net::EndpointId> controller_timer_endpoints_;
  std::vector<net::EndpointId> resource_timer_endpoints_;
  /// Parallel-round pool (null when config.round_threads <= 1) and lane
  /// scratch.
  std::unique_ptr<ThreadPool> round_pool_;
  std::vector<PriceVector> lane_prices_;
  std::vector<std::vector<net::Message>> lane_outboxes_;
  bool async_armed_ = false;
  int round_ = 0;
  bool converged_ = false;
  std::deque<double> recent_utilities_;
  std::vector<RoundStats> history_;
  std::vector<Enactment> enactments_;

  /// Reused by RecordSample so monitor sampling reuses the fused evaluators
  /// without per-sample allocation.
  Assignment scratch_assignment_;
  std::vector<double> scratch_share_sums_;
  std::vector<double> scratch_path_latencies_;
  std::vector<double> scratch_task_weighted_;
  std::vector<double> scratch_task_utilities_;

  /// Observability handles (null when config.metrics is null) and the
  /// reused trace record buffer.
  obs::Counter* rounds_counter_ = nullptr;
  obs::Counter* samples_counter_ = nullptr;
  obs::Counter* enactments_counter_ = nullptr;
  obs::Timer* sync_round_timer_ = nullptr;
  RecoveryHooks recovery_hooks_;
  obs::IterationTrace trace_;

  void EmitTrace(double at_ms, double utility,
                 const FeasibilitySummary& summary);
};

}  // namespace lla::runtime
