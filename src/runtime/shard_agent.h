// ShardAgent: the batched, many-resources-per-agent variant of
// ResourceAgent for large deployments (DESIGN.md §7.10).
//
// A shard owns a contiguous range of resources.  Controllers send one
// ShardLatencyUpdate per shard they touch (instead of one LatencyUpdate per
// resource), and the shard answers each round with a single
// ShardPriceUpdate per client carrying the batched prices of exactly the
// resources that client uses on the shard — so the coordinator's per-round
// message count drops from O(resources) to O(shards) per task without
// inflating bytes on sparse workloads, while every per-resource quantity
// (share sum, Eq. 8 price, adaptive step multiplier, congestion flag) is
// computed exactly as the one-resource agent computes it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/latency_model.h"
#include "model/workload.h"
#include "net/bus.h"
#include "runtime/resource_agent.h"

namespace lla::runtime {

class ShardAgent {
 public:
  /// The shard owns resources [first_resource, first_resource + count).
  ShardAgent(const Workload& workload, const LatencyModel& model,
             std::uint32_t shard, ResourceId first_resource,
             std::size_t count, AgentStepConfig config);

  /// Wires the agent to the bus.  `controller_endpoints[t]` is the endpoint
  /// of task t's controller (non-owning; the coordinator keeps the vector
  /// alive).  Only controllers with subtasks on this shard are messaged.
  void Bind(net::InProcessBus* bus, net::EndpointId self,
            const std::vector<net::EndpointId>* controller_endpoints);

  /// Handles a ShardLatencyUpdate destined for this shard.
  void OnMessage(const net::Message& message);

  /// One price computation for every owned resource + a single batched
  /// broadcast per client controller.
  void ComputePricesAndBroadcast();

  std::uint32_t shard() const { return shard_; }
  std::size_t resource_count() const { return resources_.size(); }
  bool Hosts(ResourceId r) const {
    return r.value() >= first_ && r.value() < first_ + resources_.size();
  }
  double mu(ResourceId r) const { return mu_[Local(r)]; }
  double step_multiplier(ResourceId r) const {
    return gamma_multiplier_[Local(r)];
  }
  double ShareSum(ResourceId r) const;
  bool Congested(ResourceId r) const;
  std::uint32_t epoch() const { return epoch_; }
  const std::vector<TaskId>& client_tasks() const { return client_tasks_; }

  void set_recovery_hooks(const RecoveryHooks& hooks) { hooks_ = hooks; }

 private:
  std::size_t Local(ResourceId r) const { return r.value() - first_; }
  /// Incarnation-gated acceptance of a peer controller's message.
  bool AcceptIncarnation(TaskId task, std::uint32_t incarnation);

  const Workload* workload_;
  const LatencyModel* model_;
  std::uint32_t shard_;
  std::size_t first_;
  AgentStepConfig config_;

  net::InProcessBus* bus_ = nullptr;
  net::EndpointId self_ = 0;
  const std::vector<net::EndpointId>* controller_endpoints_ = nullptr;
  std::vector<ResourceId> resources_;
  std::vector<TaskId> client_tasks_;  ///< tasks with subtasks on the shard
  /// client_resources_[c] = sorted local indices of the resources
  /// client_tasks_[c] uses here; its per-round price update carries exactly
  /// these (sending the whole shard vector to every client would blow the
  /// round's byte volume up by shard_width / resources_per_task_per_shard).
  std::vector<std::vector<std::uint32_t>> client_resources_;

  /// Flattened latest-latency inputs: resource-local slice
  /// [latency_offset_[i], latency_offset_[i+1]) holds the latencies of
  /// workload.resource(resources_[i]).subtasks in hosted order.
  std::vector<double> latencies_;
  std::vector<std::size_t> latency_offset_;
  /// Flat slot per hosted subtask id (only this shard's subtasks appear).
  std::unordered_map<std::uint32_t, std::size_t> subtask_slot_;

  /// Per-resource dual state, indexed by Local().
  std::vector<double> mu_;
  std::vector<double> gamma_multiplier_;
  /// This round's congestion flags, filled by ComputePricesAndBroadcast
  /// before the per-client sends (scratch; avoids re-deriving share sums).
  std::vector<std::uint8_t> congested_;
  std::uint32_t epoch_ = 0;

  RecoveryHooks hooks_;
  /// Highest sender incarnation seen per client task (stale rejection).
  std::vector<std::uint32_t> task_incarnation_;
};

}  // namespace lla::runtime
