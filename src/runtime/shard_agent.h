// ShardAgent: the batched, many-resources-per-agent variant of
// ResourceAgent for large deployments (DESIGN.md §7.10).
//
// A shard owns a contiguous range of resources.  Controllers send one
// ShardLatencyUpdate per shard they touch (instead of one LatencyUpdate per
// resource), and the shard answers each round with a single
// ShardPriceUpdate per client carrying the batched prices of exactly the
// resources that client uses on the shard — so the coordinator's per-round
// message count drops from O(resources) to O(shards) per task without
// inflating bytes on sparse workloads, while every per-resource quantity
// (share sum, Eq. 8 price, adaptive step multiplier, congestion flag) is
// computed exactly as the one-resource agent computes it.
//
// Since PR 9 the shard messages are positional (DESIGN.md §7.11): shard
// membership is static, so the agent derives, once, the ordered entry list
// of each client — latency slots for inbound updates, used resources for
// outbound prices — and the wire carries only b1-encoded value arrays.
// All clients' price payloads are encoded into ONE arena per round and each
// message holds a WireSlice into it (encode once, slice per client).
//
// Per-resource fault injection: a single resource inside the shard can be
// crashed and cold-restarted (the shard's endpoint stays up — the failing
// unit is the resource's state, not the transport).  A crashed resource's
// price entries are marked stale in the broadcasts (clients keep their
// cached price) and inbound latency writes to it are dropped; a cold
// restart re-runs the ResourceAgent repair exchange (RepairRequest to the
// resource's clients, freshest-epoch adoption, grace-held broadcast) for
// just that resource.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/latency_model.h"
#include "model/workload.h"
#include "net/bus.h"
#include "runtime/resource_agent.h"

namespace lla::runtime {

class ShardAgent {
 public:
  /// The shard owns resources [first_resource, first_resource + count).
  ShardAgent(const Workload& workload, const LatencyModel& model,
             std::uint32_t shard, ResourceId first_resource,
             std::size_t count, AgentStepConfig config);

  /// Wires the agent to the bus.  `controller_endpoints[t]` is the endpoint
  /// of task t's controller (non-owning; the coordinator keeps the vector
  /// alive).  Only controllers with subtasks on this shard are messaged.
  void Bind(net::InProcessBus* bus, net::EndpointId self,
            const std::vector<net::EndpointId>* controller_endpoints);

  /// Handles a ShardLatencyUpdate or RepairResponse destined for this
  /// shard.
  void OnMessage(const net::Message& message);

  /// One price computation for every owned resource + a single batched
  /// broadcast per client controller.  With an outbox, the messages are
  /// appended to it instead of sent (the parallel round's deferred-commit
  /// path); a null outbox sends directly.
  void ComputePricesAndBroadcast() { ComputePricesAndBroadcast(nullptr); }
  void ComputePricesAndBroadcast(std::vector<net::Message>* outbox);

  /// Per-resource fault injection (the resource must be hosted here).
  /// CrashResource freezes the resource: its price entries go out stale and
  /// inbound latency writes to it are dropped.  ColdRestartResource clears
  /// the crash with total loss of the resource's state and starts the
  /// repair exchange with its client controllers.
  void CrashResource(ResourceId r);
  void ColdRestartResource(ResourceId r);
  bool resource_crashed(ResourceId r) const {
    return resource_crashed_[Local(r)] != 0;
  }
  bool resource_awaiting_repair(ResourceId r) const {
    return awaiting_repair_[Local(r)] != 0;
  }

  std::uint32_t shard() const { return shard_; }
  std::size_t resource_count() const { return resources_.size(); }
  bool Hosts(ResourceId r) const {
    return r.value() >= first_ && r.value() < first_ + resources_.size();
  }
  double mu(ResourceId r) const { return mu_[Local(r)]; }
  double step_multiplier(ResourceId r) const {
    return gamma_multiplier_[Local(r)];
  }
  /// Momentum velocity of one resource (0.0 while dynamics are plain).
  double velocity(ResourceId r) const { return velocity_[Local(r)]; }
  /// Adaptive restarts fired across all owned resources' dynamics.
  std::uint64_t momentum_restarts() const { return momentum_restarts_; }
  double ShareSum(ResourceId r) const;
  bool Congested(ResourceId r) const;
  std::uint32_t epoch() const { return epoch_; }
  const std::vector<TaskId>& client_tasks() const { return client_tasks_; }

  void set_recovery_hooks(const RecoveryHooks& hooks) { hooks_ = hooks; }

 private:
  std::size_t Local(ResourceId r) const { return r.value() - first_; }
  /// Incarnation-gated acceptance of a peer controller's message.
  bool AcceptIncarnation(TaskId task, std::uint32_t incarnation);
  /// Index of `task` in client_tasks_ (sorted ascending), or -1.
  int ClientIndex(TaskId task) const;
  /// RepairRequest for one restarted resource to its client controllers
  /// (appended to `outbox` when non-null, sent directly otherwise).
  void SendRepairRequest(std::size_t local, std::vector<net::Message>* outbox);
  void ApplyLatencyUpdate(const net::ShardLatencyUpdate& update);
  void ApplyRepairResponse(const net::RepairResponse& repair);

  const Workload* workload_;
  const LatencyModel* model_;
  std::uint32_t shard_;
  std::size_t first_;
  AgentStepConfig config_;

  net::InProcessBus* bus_ = nullptr;
  net::EndpointId self_ = 0;
  const std::vector<net::EndpointId>* controller_endpoints_ = nullptr;
  std::vector<ResourceId> resources_;
  std::vector<TaskId> client_tasks_;  ///< tasks with subtasks here, sorted
  /// client_resources_[c] = sorted local indices of the resources
  /// client_tasks_[c] uses here; its per-round price update carries exactly
  /// these, positionally (the controller derives the same ascending list).
  std::vector<std::vector<std::uint32_t>> client_resources_;
  /// client_latency_slots_[c] = flat latency slot of each entry of client
  /// c's ShardLatencyUpdate, in the client's local subtask order (the same
  /// order the controller's shard_subtasks_ list emits).
  std::vector<std::vector<std::size_t>> client_latency_slots_;
  /// clients of each resource, as indices into client_tasks_ (repair).
  std::vector<std::vector<std::uint32_t>> resource_clients_;

  /// Flattened latest-latency inputs: resource-local slice
  /// [latency_offset_[i], latency_offset_[i+1]) holds the latencies of
  /// workload.resource(resources_[i]).subtasks in hosted order.
  std::vector<double> latencies_;
  std::vector<std::size_t> latency_offset_;
  /// Owning local resource of each flat latency slot.
  std::vector<std::uint32_t> slot_resource_;
  /// Flat slot per hosted subtask id (only this shard's subtasks appear).
  std::unordered_map<std::uint32_t, std::size_t> subtask_slot_;

  /// Incarnation-stale traffic from `task` was rejected: drop the momentum
  /// of every resource that client feeds here (its latency stream — the
  /// gradient input — is discontinuous at the sender's crash boundary, so
  /// built-up velocity must not be replayed into post-crash gradients).
  void DropClientMomentum(TaskId task);

  /// Per-resource dual state, indexed by Local().
  std::vector<double> mu_;
  std::vector<double> gamma_multiplier_;
  /// Per-resource momentum state (DESIGN.md §7.12), parallel to resources_:
  /// velocity, Nesterov base iterate, and ramp phase.  Updated only inside
  /// ComputePricesAndBroadcast — per-resource-local, so the parallel round's
  /// lane partition never shares a slot and the fixed point stays
  /// bit-identical at any round_threads.
  std::vector<double> velocity_;
  std::vector<double> dynamics_base_;
  std::vector<double> dynamics_phase_;
  std::uint64_t momentum_restarts_ = 0;
  /// This round's congestion flags, filled by ComputePricesAndBroadcast
  /// before the per-client sends (scratch; avoids re-deriving share sums).
  std::vector<std::uint8_t> congested_;
  std::uint32_t epoch_ = 0;

  /// Per-resource fault state (all parallel to resources_).  The shard-wide
  /// epoch_ keeps running across single-resource restarts; only the
  /// resource's own dual state resets.
  std::vector<std::uint8_t> resource_crashed_;
  std::vector<std::uint8_t> awaiting_repair_;
  std::vector<std::uint8_t> repair_adopted_;
  std::vector<int> repair_grace_left_;
  std::vector<std::uint32_t> best_repair_epoch_;
  /// True while any entry of resource_crashed_ / awaiting_repair_ is set —
  /// keeps the fault bookkeeping off the fault-free broadcast fast path.
  bool any_resource_faulted_ = false;

  /// Reused encode/decode scratch (per-client gathers + payload decode).
  std::vector<double> gather_mu_;
  std::vector<std::uint8_t> gather_congested_;
  std::vector<std::uint8_t> gather_stale_;
  std::vector<net::ArenaSpan> client_spans_;
  std::vector<double> decode_scratch_;

  RecoveryHooks hooks_;
  /// Highest sender incarnation seen per client task (stale rejection).
  std::vector<std::uint32_t> task_incarnation_;
};

}  // namespace lla::runtime
