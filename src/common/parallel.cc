#include "common/parallel.h"

#include <cassert>

namespace lla {

ThreadPool::ThreadPool(int num_threads) {
  const int workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(int worker_index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      body = body_;
      n = body_n_;
    }
    // Worker i runs chunk i + 1; the caller runs chunk 0.
    const auto [begin, end] = ChunkRange(n, size(), worker_index + 1);
    if (begin < end) (*body)(begin, end);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (workers_.empty() || n == 0) {
    if (n > 0) body(0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(pending_ == 0 && "ParallelFor is not reentrant");
    body_ = &body;
    body_n_ = n;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  const auto [begin, end] = ChunkRange(n, size(), 0);
  if (begin < end) body(begin, end);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    body_ = nullptr;
  }
}

void StaticParallelFor(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (pool == nullptr || pool->size() <= 1) {
    if (n > 0) body(0, n);
    return;
  }
  pool->ParallelFor(n, body);
}

}  // namespace lla
