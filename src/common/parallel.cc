#include "common/parallel.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace lla {
namespace {

int HardwareCap() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads, ParallelConfig config)
    : config_(config) {
  if (config_.min_items_per_thread < 1) config_.min_items_per_thread = 1;
  if (config_.spin_count < 0) config_.spin_count = 0;
  const int cap =
      config_.max_concurrency > 0 ? config_.max_concurrency : HardwareCap();
  const int participants = std::max(1, std::min(num_threads, cap));
  const int spawned = participants - 1;
  if (spawned == 0) return;
  slots_ = std::make_unique<WorkerSlot[]>(static_cast<std::size_t>(spawned));
  workers_.reserve(static_cast<std::size_t>(spawned));
  for (int i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    // The lock orders the stop flag against a worker's parked-state
    // re-check, so no worker can park after missing the notify.
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_seq_cst);
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::ParticipantsFor(std::size_t n, int min_items_per_thread)
    const {
  const std::size_t min_items =
      static_cast<std::size_t>(std::max(1, min_items_per_thread));
  const std::size_t by_grain = n / min_items;  // full grains available
  const std::size_t by_pool = static_cast<std::size_t>(size());
  const std::size_t participants = std::min(by_grain, by_pool);
  return participants < 1 ? 1 : static_cast<int>(participants);
}

void ThreadPool::FatalReentrancy() {
  std::fprintf(stderr,
               "lla::ThreadPool: ParallelFor/RunRegion is not reentrant "
               "(dispatch issued while another dispatch is in flight)\n");
  std::abort();
}

void ThreadPool::Publish(int participants) {
  if (busy_.exchange(true, std::memory_order_acq_rel)) FatalReentrancy();
  job_participants_ = participants;
  ++generation_;
  // seq_cst doorbell stores: each is globally ordered before the
  // num_parked_ load below, so a worker that parked after reading a stale
  // doorbell is guaranteed visible here (and gets the notify), and a worker
  // that sees the fresh doorbell never parks on it.
  for (int i = 0; i < participants - 1; ++i) {
    slots_[i].job.store(generation_, std::memory_order_seq_cst);
  }
  if (num_parked_.load(std::memory_order_seq_cst) > 0) {
    // Empty critical section: orders the notify after any in-flight park's
    // predicate check under the same mutex.
    { std::lock_guard<std::mutex> lock(mutex_); }
    start_cv_.notify_all();
  }
}

bool ThreadPool::AllDone(std::uint64_t gen, int participants) const {
  for (int i = 0; i < participants - 1; ++i) {
    if (slots_[i].done.load(std::memory_order_acquire) < gen) return false;
  }
  return true;
}

void ThreadPool::AwaitDone(std::uint64_t gen, int participants) {
  for (int spins = 0; spins < config_.spin_count; ++spins) {
    if (AllDone(gen, participants)) return;
    CpuRelax();
  }
  done_waiters_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return AllDone(gen, participants); });
  }
  done_waiters_.fetch_sub(1, std::memory_order_seq_cst);
}

void ThreadPool::RunAssigned(int participant_index) {
  if (job_kind_ == JobKind::kFor) {
    const auto [begin, end] =
        ChunkRange(job_n_, job_participants_, participant_index);
    if (begin < end) for_body_(begin, end);
  } else {
    region_body_(participant_index, job_participants_);
  }
}

bool ThreadPool::ParkWorker(WorkerSlot& slot, std::uint64_t seen) {
  // Eventcount: advertise the park (seq_cst, pairs with Publish's doorbell
  // store → num_parked_ load), then re-check the doorbell under the lock
  // before actually sleeping.
  num_parked_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    start_cv_.wait(lock, [&] {
      return slot.job.load(std::memory_order_seq_cst) != seen ||
             stop_.load(std::memory_order_seq_cst);
    });
  }
  num_parked_.fetch_sub(1, std::memory_order_seq_cst);
  return !stop_.load(std::memory_order_seq_cst);
}

void ThreadPool::WorkerLoop(int worker_index) {
  WorkerSlot& slot = slots_[worker_index];
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen = seen;
    int spins = 0;
    while ((gen = slot.job.load(std::memory_order_acquire)) == seen) {
      if (stop_.load(std::memory_order_relaxed)) return;
      if (++spins > config_.spin_count) {
        if (!ParkWorker(slot, seen)) return;
        spins = 0;
      } else {
        CpuRelax();
      }
    }
    seen = gen;
    RunAssigned(worker_index + 1);
    slot.done.store(gen, std::memory_order_seq_cst);
    if (done_waiters_.load(std::memory_order_seq_cst) > 0) {
      { std::lock_guard<std::mutex> lock(mutex_); }
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n, int min_items_per_thread,
                             ParallelBody body) {
  const int participants = ParticipantsFor(n, min_items_per_thread);
  if (participants <= 1) {
    if (n > 0) body(0, n);
    return;
  }
  job_kind_ = JobKind::kFor;
  for_body_ = body;
  job_n_ = n;
  Publish(participants);
  const auto [begin, end] = ChunkRange(n, participants, 0);
  if (begin < end) body(begin, end);
  AwaitDone(generation_, participants);
  busy_.store(false, std::memory_order_release);
}

void ThreadPool::RunRegion(int participants, RegionBody body) {
  participants = std::max(1, std::min(participants, size()));
  if (participants <= 1) {
    body(0, 1);
    return;
  }
  job_kind_ = JobKind::kRegion;
  region_body_ = body;
  Publish(participants);
  body(0, participants);
  AwaitDone(generation_, participants);
  busy_.store(false, std::memory_order_release);
}

void StaticParallelFor(ThreadPool* pool, std::size_t n, ParallelBody body) {
  if (pool == nullptr || pool->size() <= 1) {
    if (n > 0) body(0, n);
    return;
  }
  pool->ParallelFor(n, body);
}

void ParallelSweep(ThreadPool* pool, std::size_t n,
                   FunctionRef<void(std::size_t)> body) {
  auto chunk = [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  };
  if (pool == nullptr || pool->size() <= 1) {
    if (n > 0) chunk(0, n);
    return;
  }
  pool->ParallelFor(n, /*min_items_per_thread=*/1, chunk);
}

}  // namespace lla
