// Online statistics used by the measurement and error-correction layers.
//
// The paper computes utility from configurable latency *percentiles*
// (Sec. 2.1) and corrects its latency model from "high percentile samples
// (greater than 90th percentile)" (Sec. 6.3).  `P2Quantile` provides constant
// memory streaming quantile estimation (Jain & Chlamtac's P² algorithm);
// `ReservoirQuantile` keeps an exact window for small sample counts;
// `ExponentialSmoother` is the smoothing filter of Sec. 6.3.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lla {

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x);
  void Reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n - 1); 0 below 2 samples
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming quantile estimator (P² algorithm, Jain & Chlamtac 1985).
/// Constant memory; exact for the first five samples, approximate after.
class P2Quantile {
 public:
  /// `quantile` in (0, 1), e.g. 0.9 for the 90th percentile.
  explicit P2Quantile(double quantile);

  void Add(double x);
  /// Current estimate; exact order statistic until 5 samples are seen.
  double Value() const;
  std::size_t count() const { return count_; }

 private:
  double q_;
  std::size_t count_ = 0;
  // P² marker state.
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
};

/// Exact quantiles over all recorded samples (O(n) memory); used where sample
/// counts are modest and exactness matters (tests, per-interval correction).
class SampleQuantile {
 public:
  void Add(double x) { samples_.push_back(x); }
  void Reset() { samples_.clear(); }
  std::size_t count() const { return samples_.size(); }
  /// Returns the `q`-quantile (0 <= q <= 1) by linear interpolation between
  /// order statistics; 0 if empty.
  double Value(double q) const;

 private:
  std::vector<double> samples_;
};

/// First-order exponential smoothing: y <- alpha * x + (1 - alpha) * y.
class ExponentialSmoother {
 public:
  /// `alpha` in (0, 1]; larger reacts faster.
  explicit ExponentialSmoother(double alpha);

  /// Feeds a sample and returns the new smoothed value.  The first sample
  /// initializes the filter.
  double Add(double x);
  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void Reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace lla
