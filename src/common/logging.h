// Minimal leveled logging to stderr.
//
// The library is silent by default (benchmarks print their own tables);
// set the global level to kDebug/kInfo to trace algorithm internals.
#pragma once

#include <sstream>
#include <string>

namespace lla {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace lla

#define LLA_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::lla::GetLogLevel())) { \
  } else                                                    \
    ::lla::internal::LogLine(level)

#define LLA_DEBUG() LLA_LOG(::lla::LogLevel::kDebug)
#define LLA_INFO() LLA_LOG(::lla::LogLevel::kInfo)
#define LLA_WARN() LLA_LOG(::lla::LogLevel::kWarn)
#define LLA_ERROR() LLA_LOG(::lla::LogLevel::kError)
