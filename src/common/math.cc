#include "common/math.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lla {

bool AlmostEqual(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

double Clamp(double x, double lo, double hi) {
  assert(lo <= hi);
  return std::min(std::max(x, lo), hi);
}

RootFindResult Bisect(const std::function<double(double)>& f, double lo,
                      double hi, double x_tol, double f_tol, int max_iter) {
  RootFindResult result;
  double flo = f(lo);
  double fhi = f(hi);
  if (std::fabs(flo) <= f_tol) return {lo, 0, true};
  if (std::fabs(fhi) <= f_tol) return {hi, 0, true};
  if (flo * fhi > 0.0) return {0.5 * (lo + hi), 0, false};

  double mid = 0.5 * (lo + hi);
  for (int i = 0; i < max_iter; ++i) {
    mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    result.iterations = i + 1;
    if (std::fabs(fmid) <= f_tol || (hi - lo) <= x_tol) {
      return {mid, result.iterations, true};
    }
    if (flo * fmid <= 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return {mid, result.iterations, false};
}

RootFindResult SafeguardedNewton(const std::function<double(double)>& f,
                                 const std::function<double(double)>& df,
                                 double lo, double hi, double x_tol,
                                 double f_tol, int max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  if (std::fabs(flo) <= f_tol) return {lo, 0, true};
  if (std::fabs(fhi) <= f_tol) return {hi, 0, true};
  if (flo * fhi > 0.0) {
    // No sign change: report the endpoint with smaller |f| as non-converged
    // best effort; callers treat this as "solution at boundary".
    return {std::fabs(flo) < std::fabs(fhi) ? lo : hi, 0, false};
  }

  double x = 0.5 * (lo + hi);
  for (int i = 0; i < max_iter; ++i) {
    const double fx = f(x);
    if (std::fabs(fx) <= f_tol) return {x, i + 1, true};
    // Maintain the bracket.
    if (flo * fx <= 0.0) {
      hi = x;
    } else {
      lo = x;
      flo = fx;
    }
    if ((hi - lo) <= x_tol) return {0.5 * (lo + hi), i + 1, true};

    const double dfx = df(x);
    double next;
    if (dfx != 0.0) {
      next = x - fx / dfx;
      if (next <= lo || next >= hi) next = 0.5 * (lo + hi);  // safeguard
    } else {
      next = 0.5 * (lo + hi);
    }
    x = next;
  }
  return {x, max_iter, false};
}

double GoldenSectionMax(const std::function<double(double)>& f, double lo,
                        double hi, double x_tol) {
  static const double kInvPhi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c), fd = f(d);
  while ((b - a) > x_tol) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace lla
