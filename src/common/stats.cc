#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lla {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  assert(quantile > 0.0 && quantile < 1.0);
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = i + 1;
  }
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q_;
  desired_[2] = 1 + 4 * q_;
  desired_[3] = 3 + 2 * q_;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q_ / 2;
  increments_[2] = q_;
  increments_[3] = (1 + q_) / 2;
  increments_[4] = 1;
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  // Locate cell k such that heights_[k] <= x < heights_[k+1].
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  ++count_;
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers with parabolic (falling back to linear) moves.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // P² parabolic prediction.
      const double np = positions_[i + 1];
      const double nm = positions_[i - 1];
      const double n = positions_[i];
      double candidate =
          heights_[i] +
          sign / (np - nm) *
              ((n - nm + sign) * (heights_[i + 1] - heights_[i]) / (np - n) +
               (np - n - sign) * (heights_[i] - heights_[i - 1]) / (n - nm));
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        // Linear fallback keeps markers ordered.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact order statistic over the samples seen so far.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double idx = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

double SampleQuantile::Value(double q) const {
  if (samples_.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

ExponentialSmoother::ExponentialSmoother(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

double ExponentialSmoother::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
  return value_;
}

void ExponentialSmoother::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

}  // namespace lla
