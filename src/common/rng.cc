#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace lla {

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  // Avoid log(0): NextDouble() is in [0, 1), so 1 - u is in (0, 1].
  const double u = 1.0 - NextDouble();
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  const double u1 = 1.0 - NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace lla
