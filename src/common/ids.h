// Strongly typed identifiers for the entities of the LLA system.
//
// The paper's model has four kinds of entities that are all naturally indexed
// by small integers: tasks, subtasks, resources and (per-task) paths.  Using
// raw integers invites mixing them up, so each gets its own thin wrapper type.
// Ids are dense indices into the owning container (e.g. SubtaskId indexes
// Workload::subtasks()), which keeps lookups O(1) without hash maps.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace lla {

/// CRTP-free strong id: `Tag` makes distinct instantiations incompatible.
template <class Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  /// Sentinel for "no id"; default-constructed ids are invalid.
  static constexpr underlying_type kInvalid = 0xffffffffu;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type value) : value_(value) {}
  constexpr explicit StrongId(std::size_t value)
      : value_(static_cast<underlying_type>(value)) {}

  constexpr underlying_type value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  underlying_type value_ = kInvalid;
};

struct TaskTag {};
struct SubtaskTag {};
struct ResourceTag {};
struct PathTag {};

/// Index of a task within a Workload.
using TaskId = StrongId<TaskTag>;
/// Global index of a subtask within a Workload (across all tasks).
using SubtaskId = StrongId<SubtaskTag>;
/// Index of a resource (CPU or network link) within a Workload.
using ResourceId = StrongId<ResourceTag>;
/// Global index of a root-to-leaf path (across all tasks).
using PathId = StrongId<PathTag>;

}  // namespace lla

namespace std {
template <class Tag>
struct hash<lla::StrongId<Tag>> {
  size_t operator()(lla::StrongId<Tag> id) const noexcept {
    return std::hash<typename lla::StrongId<Tag>::underlying_type>{}(
        id.value());
  }
};
}  // namespace std
