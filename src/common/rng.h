// Deterministic, seedable random number generation.
//
// Every stochastic component in the repository (message bus delays, workload
// generators, trigger processes) takes an explicit seed so experiments are
// bit-reproducible.  SplitMix64 seeds Xoshiro256**, the main generator.
#pragma once

#include <cstdint>
#include <limits>

namespace lla {

/// SplitMix64 (Steele, Lea, Flood) — used to expand a single 64-bit seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality, tiny state.  Satisfies the essential
/// parts of UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'5eed'5eed'5eedull) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n); n > 0.
  std::uint64_t Below(std::uint64_t n) { return Next() % n; }

  /// Exponentially distributed sample with the given mean (> 0).
  double Exponential(double mean);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double Normal(double mean = 0.0, double stddev = 1.0);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace lla
