// Minimal expected<T, std::string> substitute (std::expected is C++23).
//
// Construction-time validation in the model layer returns Expected<T> so that
// malformed workloads are reported with a human-readable reason instead of
// aborting; algorithm hot paths never allocate these.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace lla {

/// Wrapper carrying either a value or an error message.
template <class T>
class Expected {
 public:
  // Implicit conversions keep `return T{...};` and `return Error(...)` terse.
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  static Expected Error(std::string message) {
    Expected e;
    e.error_ = std::move(message);
    return e;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const std::string& error() const {
    assert(!ok());
    return error_;
  }

 private:
  Expected() = default;
  std::optional<T> value_;
  std::string error_;
};

/// Void specialization: success/failure with message.
class Status {
 public:
  Status() = default;
  static Status Error(std::string message) {
    Status s;
    s.error_ = std::move(message);
    return s;
  }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const std::string& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<std::string> error_;
};

}  // namespace lla
