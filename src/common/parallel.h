// A small reusable thread pool with deterministic static partitioning.
//
// The LLA iteration decomposes per task (latency allocation) and per
// resource/path (price sweeps); given the prices those pieces are
// independent, which is exactly the structure the paper exploits for
// distribution.  ParallelFor splits [0, n) into size() contiguous chunks —
// chunk t is [t*n/T, (t+1)*n/T) — so the work-to-chunk mapping depends only
// on n and the pool size, never on scheduling.  Workers write disjoint
// output slots and callers reduce per-item results serially in index order,
// which makes every result bit-identical for any thread count (including
// the no-pool serial path).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lla {

/// The half-open index range of chunk `index` when [0, n) is split into
/// `chunks` contiguous pieces (sizes differ by at most one).
inline std::pair<std::size_t, std::size_t> ChunkRange(std::size_t n,
                                                      int chunks, int index) {
  const std::size_t t = static_cast<std::size_t>(chunks);
  const std::size_t i = static_cast<std::size_t>(index);
  return {n * i / t, n * (i + 1) / t};
}

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread is the last
  /// participant).  `num_threads <= 1` spawns nothing and ParallelFor runs
  /// serially.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of participants (workers + the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `body(begin, end)` over [0, n) split into size() static chunks;
  /// blocks until every chunk finishes.  `body` must not throw and chunks
  /// must only write disjoint state.  Not reentrant.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void WorkerLoop(int worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t body_n_ = 0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

/// ParallelFor through an optional pool: serial (one `body(0, n)` call) when
/// `pool` is null or single-threaded, so call sites need no branching.
void StaticParallelFor(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace lla
