// A low-overhead fork-join thread pool with deterministic static
// partitioning.
//
// The LLA iteration decomposes per task (latency allocation) and per
// resource/path (price sweeps); given the prices those pieces are
// independent, which is exactly the structure the paper exploits for
// distribution.  ParallelFor splits [0, n) into contiguous chunks — chunk t
// of P is [t*n/P, (t+1)*n/P) — so the work-to-chunk mapping depends only on
// n and the participant count, never on scheduling.  Workers write disjoint
// output slots and callers reduce per-item results serially in index order,
// which makes every result bit-identical for any thread count (including
// the no-pool serial path) and for any chunking.
//
// Dispatch protocol (DESIGN.md §7.5): each worker owns a cache-line-padded
// slot holding a `job` doorbell and a `done` acknowledgement, both
// monotonically increasing generation counters.  The caller publishes a job
// descriptor, bumps the participating workers' doorbells, and wakes the
// condition variable only when a worker has actually parked; workers spin on
// their doorbell for a bounded budget before parking.  Completion is the
// mirror image: the caller spins on the `done` counters and only touches the
// mutex when the spin budget runs out.  In the steady state (workers hot) a
// fork-join round is a handful of atomic operations — no mutex, no condvar,
// no allocation (`FunctionRef` replaces `std::function`).
//
// A deterministic grain-size cutoff keeps tiny sweeps serial: a sweep fans
// out only when every participant would receive at least
// `min_items_per_thread` items, so an n too small to amortize a wake-up
// never pays for one.  The cutoff changes only which thread computes an
// item, never its value, so it cannot perturb results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lla {

/// A non-owning, non-allocating reference to a callable — the pool's
/// replacement for std::function on the dispatch path.  The referenced
/// callable must outlive every call (always true for ParallelFor/RunRegion,
/// which join before returning).
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Null reference; calling it is undefined.  Exists so the pool can hold
  /// a FunctionRef member between dispatches.
  FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& callable) noexcept  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        invoke_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void* object_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

/// Chunked body: called with the half-open item range [begin, end).
using ParallelBody = FunctionRef<void(std::size_t, std::size_t)>;
/// Region body: called once per participant with (index, participants);
/// index 0 is the dispatching thread.
using RegionBody = FunctionRef<void(int, int)>;

/// Tuning knobs for the pool; every value is deterministic configuration —
/// none of them can change a computed result, only where/when it is
/// computed.
struct ParallelConfig {
  /// A sweep fans out only if every participant gets at least this many
  /// items; smaller sweeps run serially on the calling thread.
  int min_items_per_thread = 32;
  /// Upper bound on concurrently working threads.  0 means the hardware
  /// concurrency of the host — threads beyond the core count only add
  /// contention.  Tests force a value to exercise parallelism regardless of
  /// host size.
  int max_concurrency = 0;
  /// Doorbell/done spins before falling back to the parking condvar.
  int spin_count = 4096;
};

/// The half-open index range of chunk `index` when [0, n) is split into
/// `chunks` contiguous pieces (sizes differ by at most one).
inline std::pair<std::size_t, std::size_t> ChunkRange(std::size_t n,
                                                      int chunks, int index) {
  const std::size_t t = static_cast<std::size_t>(chunks);
  const std::size_t i = static_cast<std::size_t>(index);
  return {n * i / t, n * (i + 1) / t};
}

/// One bounded-spin pause (x86 PAUSE / arm YIELD when available).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// A reusable centralized sense-reversing barrier for the participants of a
/// fork-join region (spin with yield fallback; regions are microseconds
/// long).  Stack-allocate one next to the region body and have every
/// participant call Wait() the same number of times.
class SpinBarrier {
 public:
  explicit SpinBarrier(int participants) : participants_(participants) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void Wait() {
    const std::uint64_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.store(phase + 1, std::memory_order_release);
      return;
    }
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == phase) {
      if (++spins > kSpinsBeforeYield) {
        std::this_thread::yield();
      } else {
        CpuRelax();
      }
    }
  }

 private:
  static constexpr int kSpinsBeforeYield = 1024;
  const int participants_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> phase_{0};
};

class ThreadPool {
 public:
  /// Spawns up to `num_threads - 1` workers (the calling thread is always
  /// participant 0).  The worker count is additionally clamped by
  /// `config.max_concurrency` (default: the host's hardware concurrency) —
  /// oversubscribed workers cannot speed anything up, and the clamp cannot
  /// change results (only chunking).  `num_threads <= 1` spawns nothing and
  /// every call runs serially.
  explicit ThreadPool(int num_threads, ParallelConfig config = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of participants (spawned workers + the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  const ParallelConfig& config() const { return config_; }

  /// Number of threads a sweep over `n` items would use given the grain
  /// cutoff: min(size(), n / min_items) but at least 1.  Deterministic in
  /// (n, config, pool size).
  int ParticipantsFor(std::size_t n) const {
    return ParticipantsFor(n, config_.min_items_per_thread);
  }
  int ParticipantsFor(std::size_t n, int min_items_per_thread) const;

  /// Runs `body(begin, end)` over [0, n) split into ParticipantsFor(n)
  /// static chunks; blocks until every chunk finishes.  Runs serially (one
  /// `body(0, n)` call) when the grain cutoff keeps the sweep on one
  /// thread.  `body` must not throw and chunks must only write disjoint
  /// state.  Not reentrant: dispatching while another dispatch is in flight
  /// aborts with a message (release builds included).
  void ParallelFor(std::size_t n, ParallelBody body) {
    ParallelFor(n, config_.min_items_per_thread, body);
  }

  /// ParallelFor with an explicit grain (min items per participating
  /// thread); pass 1 for coarse items that are whole jobs by themselves
  /// (e.g. stepping independent engines).
  void ParallelFor(std::size_t n, int min_items_per_thread, ParallelBody body);

  /// Fused fork-join region: runs `body(index, participants)` once on each
  /// of `participants` threads (index 0 = the calling thread) and joins.
  /// The body may synchronize its phases with a SpinBarrier, which is how
  /// the engine packs solve + evaluation sweeps into a single wake-up per
  /// step.  `participants` is clamped to [1, size()]; 1 runs inline.
  void RunRegion(int participants, RegionBody body);

 private:
  enum class JobKind : std::uint8_t { kFor, kRegion };

  /// One cache line per worker: the doorbell the caller rings (`job`) and
  /// the acknowledgement the worker posts (`done`), both generation
  /// numbers.  Padding keeps one worker's spinning off its neighbours'
  /// lines.
  struct alignas(64) WorkerSlot {
    std::atomic<std::uint64_t> job{0};
    std::atomic<std::uint64_t> done{0};
  };

  void WorkerLoop(int worker_index);
  void RunAssigned(int participant_index);
  /// True once every participating worker acknowledged generation `gen`.
  bool AllDone(std::uint64_t gen, int participants) const;
  /// Rings doorbells for workers 0..participants-2 and wakes parked ones.
  void Publish(int participants);
  /// Spin-then-park wait until AllDone.
  void AwaitDone(std::uint64_t gen, int participants);
  /// Parks worker `slot` until its doorbell moves past `seen` or shutdown;
  /// returns false on shutdown.
  bool ParkWorker(WorkerSlot& slot, std::uint64_t seen);
  [[noreturn]] static void FatalReentrancy();

  ParallelConfig config_;
  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerSlot[]> slots_;

  // Job descriptor: written by the caller before ringing doorbells, read by
  // workers after their acquire-load of the doorbell.
  JobKind job_kind_ = JobKind::kFor;
  ParallelBody for_body_;
  RegionBody region_body_;
  std::size_t job_n_ = 0;
  int job_participants_ = 0;
  std::uint64_t generation_ = 0;  ///< only the dispatching thread mutates

  std::atomic<bool> busy_{false};  ///< release-mode reentrancy detector
  std::atomic<bool> stop_{false};

  // Parking fallback (only touched when spin budgets run out).
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::atomic<int> num_parked_{0};
  std::atomic<int> done_waiters_{0};
};

/// ParallelFor through an optional pool: serial (one `body(0, n)` call) when
/// `pool` is null or single-threaded, so call sites need no branching.
void StaticParallelFor(ThreadPool* pool, std::size_t n, ParallelBody body);

/// Coarse-grained sweep: runs `body(i)` for every i in [0, n) with a grain
/// of one — each item is assumed to be a whole job (an engine step, an
/// admission probe), so any n >= 2 fans out when a pool is available.  The
/// backbone of EngineBatch.
void ParallelSweep(ThreadPool* pool, std::size_t n,
                   FunctionRef<void(std::size_t)> body);

}  // namespace lla
