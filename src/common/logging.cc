#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace lla {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {
void Emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[lla %s] %s\n", LevelName(level), message.c_str());
}
}  // namespace internal

}  // namespace lla
