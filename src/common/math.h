// Numeric helpers: comparisons with tolerance and 1-D root finding.
//
// The latency-allocation step of LLA solves the stationarity condition
// (paper Eq. 7) per subtask.  For linear utilities the solution is closed
// form; for general concave utilities we need a robust scalar root finder.
// `SafeguardedNewton` is Newton's method that falls back to bisection when a
// step leaves the bracketing interval — guaranteed convergence for continuous
// functions with a sign change, fast convergence near the root.
#pragma once

#include <cmath>
#include <functional>
#include <optional>

namespace lla {

/// Relative/absolute tolerance equality for doubles.
bool AlmostEqual(double a, double b, double rel_tol = 1e-9,
                 double abs_tol = 1e-12);

/// Clamps `x` to [lo, hi]; requires lo <= hi.
double Clamp(double x, double lo, double hi);

struct RootFindResult {
  double root = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Finds a root of `f` in [lo, hi] by bisection.  Requires f(lo) and f(hi)
/// to have opposite signs (or one of them to be ~0).  Tolerances are on the
/// interval width and |f|.
RootFindResult Bisect(const std::function<double(double)>& f, double lo,
                      double hi, double x_tol = 1e-10, double f_tol = 1e-12,
                      int max_iter = 200);

/// Newton's method on [lo, hi] with bisection safeguard.  `f` must be
/// continuous with a sign change over [lo, hi]; `df` is its derivative.
RootFindResult SafeguardedNewton(const std::function<double(double)>& f,
                                 const std::function<double(double)>& df,
                                 double lo, double hi, double x_tol = 1e-12,
                                 double f_tol = 1e-12, int max_iter = 100);

/// Golden-section maximization of a unimodal function on [lo, hi].
/// Used by tests to cross-check solver outputs.
double GoldenSectionMax(const std::function<double(double)>& f, double lo,
                        double hi, double x_tol = 1e-10);

}  // namespace lla
