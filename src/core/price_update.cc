#include "core/price_update.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "core/price_dynamics.h"

namespace lla {
namespace {

inline bool SameBits(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

// One projected dual step for component `i`: the policy's accelerated
// variant when `dynamics` is set, the inline Eq. 8/9 arithmetic otherwise.
inline DynamicsStep ProjectedStep(PriceDynamicsPolicy* dynamics,
                                  DualSpace space, std::size_t i, double value,
                                  double gamma, double slack) {
  if (dynamics != nullptr) {
    return dynamics->Step(space, i, value, gamma, slack);
  }
  const double proposed = std::max(0.0, value - gamma * slack);
  return {proposed, proposed == 0.0};
}

}  // namespace

PriceUpdater::PriceUpdater(const Workload& workload, const LatencyModel& model)
    : workload_(&workload), model_(&model) {}

void PriceUpdater::UpdateResourcePrices(const Assignment& latencies,
                                        const StepSizes& steps,
                                        PriceVector* prices) const {
  assert(steps.resource.size() == workload_->resource_count());
  assert(prices->mu.size() == workload_->resource_count());
  for (const ResourceInfo& resource : workload_->resources()) {
    const std::size_t r = resource.id.value();
    const double share_sum =
        ResourceShareSum(*workload_, *model_, resource.id, latencies);
    const double slack = resource.capacity - share_sum;
    prices->mu[r] = std::max(0.0, prices->mu[r] - steps.resource[r] * slack);
  }
}

void PriceUpdater::UpdatePathPrices(const Assignment& latencies,
                                    const StepSizes& steps,
                                    PriceVector* prices) const {
  assert(steps.path.size() == workload_->path_count());
  assert(prices->lambda.size() == workload_->path_count());
  for (const PathInfo& path : workload_->paths()) {
    const std::size_t p = path.id.value();
    const double latency = PathLatency(*workload_, path.id, latencies);
    const double slack = 1.0 - latency / path.critical_time_ms;
    prices->lambda[p] =
        std::max(0.0, prices->lambda[p] - steps.path[p] * slack);
  }
}

void PriceUpdater::Update(const Assignment& latencies, const StepSizes& steps,
                          PriceVector* prices) const {
  UpdateResourcePrices(latencies, steps, prices);
  UpdatePathPrices(latencies, steps, prices);
}

void PriceUpdater::Update(const std::vector<double>& resource_share_sums,
                          const std::vector<double>& path_latencies,
                          const StepSizes& steps, PriceVector* prices,
                          PriceDynamicsPolicy* dynamics) const {
  assert(resource_share_sums.size() == workload_->resource_count());
  assert(path_latencies.size() == workload_->path_count());
  assert(steps.resource.size() == workload_->resource_count());
  assert(steps.path.size() == workload_->path_count());
  for (const ResourceInfo& resource : workload_->resources()) {
    const std::size_t r = resource.id.value();
    const double slack = resource.capacity - resource_share_sums[r];
    prices->mu[r] = ProjectedStep(dynamics, DualSpace::kResource, r,
                                  prices->mu[r], steps.resource[r], slack)
                        .value;
  }
  for (const PathInfo& path : workload_->paths()) {
    const std::size_t p = path.id.value();
    const double slack = 1.0 - path_latencies[p] / path.critical_time_ms;
    prices->lambda[p] = ProjectedStep(dynamics, DualSpace::kPath, p,
                                      prices->lambda[p], steps.path[p], slack)
                            .value;
  }
}

ActivePriceWork PriceUpdater::UpdateActive(
    const std::vector<double>& resource_share_sums,
    const std::vector<double>& path_latencies, const StepSizes& steps,
    double epsilon_quiescence, int quiescence_epochs, PriceVector* prices,
    ActivePriceState* state, PriceDynamicsPolicy* dynamics) const {
  const std::size_t resource_count = workload_->resource_count();
  const std::size_t path_count = workload_->path_count();
  assert(resource_share_sums.size() == resource_count);
  assert(path_latencies.size() == path_count);
  assert(steps.resource.size() == resource_count);
  assert(steps.path.size() == path_count);
  assert(prices->mu.size() == resource_count);
  assert(prices->lambda.size() == path_count);
  assert(epsilon_quiescence >= 0.0);
  assert(quiescence_epochs >= 1);

  ActivePriceWork work;
  const bool primed = state->primed &&
                      state->prev_share_sums.size() == resource_count &&
                      state->prev_path_latencies.size() == path_count;
  if (!primed) {
    state->mu_settled.assign(resource_count, 0);
    state->lambda_settled.assign(path_count, 0);
    state->mu_zero_epochs.assign(resource_count, 0);
    state->lambda_zero_epochs.assign(path_count, 0);
    state->mu_stable_epochs.assign(resource_count, 0);
    state->lambda_stable_epochs.assign(path_count, 0);
    state->shadow_mu = prices->mu;
    state->shadow_lambda = prices->lambda;
    state->prev_share_sums.resize(resource_count);
    state->prev_path_latencies.resize(path_count);
  }
  const std::uint32_t retire_after =
      static_cast<std::uint32_t>(quiescence_epochs);

  const std::vector<ResourceInfo>& resources = workload_->resources();
  for (std::size_t r = 0; r < resource_count; ++r) {
    const double sum = resource_share_sums[r];
    const bool changed = !primed || !SameBits(sum, state->prev_share_sums[r]);
    // Retired: multiplier clamped at 0 long enough, input bits unchanged.
    if (!changed && prices->mu[r] == 0.0 && state->mu_settled[r] != 0 &&
        state->mu_zero_epochs[r] >= retire_after) {
      ++state->mu_zero_epochs[r];
      ++work.mu_skipped;
      continue;
    }
    const double old_mu = prices->mu[r];
    const double slack = resources[r].capacity - sum;
    bool settled;
    bool write = true;
    if (epsilon_quiescence > 0.0) {
      // The shadow integrates Eq. 8 unconditionally; publishing is lazy.
      // Freezing only ever suppresses writes, so a slow persistent drift
      // accumulates in the shadow and forces a re-publish once it exceeds
      // the epsilon threshold — the publish error stays <= epsilon
      // (relative) no matter how long the freeze lasts.  Under accelerated
      // dynamics the shadow is the dynamical variable: velocity follows the
      // shadow trajectory, never the frozen published value.
      const DynamicsStep ds =
          ProjectedStep(dynamics, DualSpace::kResource, r, state->shadow_mu[r],
                        steps.resource[r], slack);
      const double proposed = ds.value;
      state->shadow_mu[r] = proposed;
      settled = ds.settled;
      const bool stable =
          std::fabs(proposed - old_mu) <=
          epsilon_quiescence * std::max(1.0, std::fabs(old_mu));
      const bool frozen = state->mu_stable_epochs[r] >= retire_after;
      if (!stable) state->mu_stable_epochs[r] = 0;
      if (frozen) {
        write = !stable;
      } else if (stable && ++state->mu_stable_epochs[r] >= retire_after) {
        write = false;
      }
      if (write) {
        prices->mu[r] = proposed;
        ++work.mu_updated;
      } else {
        ++work.mu_frozen;
      }
    } else {
      const DynamicsStep ds = ProjectedStep(dynamics, DualSpace::kResource, r,
                                            old_mu, steps.resource[r], slack);
      settled = ds.settled;
      prices->mu[r] = ds.value;
      ++work.mu_updated;
    }
    state->mu_zero_epochs[r] = (settled && prices->mu[r] == 0.0)
                                   ? state->mu_zero_epochs[r] + 1
                                   : 0;
    state->mu_settled[r] = settled ? 1 : 0;
    state->prev_share_sums[r] = sum;
  }

  const std::vector<PathInfo>& paths = workload_->paths();
  for (std::size_t p = 0; p < path_count; ++p) {
    const double latency = path_latencies[p];
    const bool changed =
        !primed || !SameBits(latency, state->prev_path_latencies[p]);
    if (!changed && prices->lambda[p] == 0.0 &&
        state->lambda_settled[p] != 0 &&
        state->lambda_zero_epochs[p] >= retire_after) {
      ++state->lambda_zero_epochs[p];
      ++work.lambda_skipped;
      continue;
    }
    const double old_lambda = prices->lambda[p];
    const double slack = 1.0 - latency / paths[p].critical_time_ms;
    bool settled;
    bool write = true;
    if (epsilon_quiescence > 0.0) {
      const DynamicsStep ds =
          ProjectedStep(dynamics, DualSpace::kPath, p,
                        state->shadow_lambda[p], steps.path[p], slack);
      const double proposed = ds.value;
      state->shadow_lambda[p] = proposed;
      settled = ds.settled;
      const bool stable =
          std::fabs(proposed - old_lambda) <=
          epsilon_quiescence * std::max(1.0, std::fabs(old_lambda));
      const bool frozen = state->lambda_stable_epochs[p] >= retire_after;
      if (!stable) state->lambda_stable_epochs[p] = 0;
      if (frozen) {
        write = !stable;
      } else if (stable &&
                 ++state->lambda_stable_epochs[p] >= retire_after) {
        write = false;
      }
      if (write) {
        prices->lambda[p] = proposed;
        ++work.lambda_updated;
      } else {
        ++work.lambda_frozen;
      }
    } else {
      const DynamicsStep ds = ProjectedStep(dynamics, DualSpace::kPath, p,
                                            old_lambda, steps.path[p], slack);
      settled = ds.settled;
      prices->lambda[p] = ds.value;
      ++work.lambda_updated;
    }
    state->lambda_zero_epochs[p] = (settled && prices->lambda[p] == 0.0)
                                       ? state->lambda_zero_epochs[p] + 1
                                       : 0;
    state->lambda_settled[p] = settled ? 1 : 0;
    state->prev_path_latencies[p] = latency;
  }
  state->primed = true;

  for (double mu : prices->mu) {
    if (mu != 0.0) ++work.mu_nonzero;
  }
  for (double lambda : prices->lambda) {
    if (lambda != 0.0) ++work.lambda_nonzero;
  }
  return work;
}

std::vector<bool> PriceUpdater::ResourceCongestion(
    const Assignment& latencies) const {
  std::vector<bool> congested;
  ResourceCongestion(latencies, &congested);
  return congested;
}

void PriceUpdater::ResourceCongestion(const Assignment& latencies,
                                      std::vector<bool>* congested) const {
  congested->resize(workload_->resource_count());
  for (const ResourceInfo& resource : workload_->resources()) {
    const double share_sum =
        ResourceShareSum(*workload_, *model_, resource.id, latencies);
    (*congested)[resource.id.value()] = share_sum > resource.capacity;
  }
}

}  // namespace lla
