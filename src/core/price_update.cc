#include "core/price_update.h"

#include <algorithm>
#include <cassert>

namespace lla {

PriceUpdater::PriceUpdater(const Workload& workload, const LatencyModel& model)
    : workload_(&workload), model_(&model) {}

void PriceUpdater::UpdateResourcePrices(const Assignment& latencies,
                                        const StepSizes& steps,
                                        PriceVector* prices) const {
  assert(steps.resource.size() == workload_->resource_count());
  assert(prices->mu.size() == workload_->resource_count());
  for (const ResourceInfo& resource : workload_->resources()) {
    const std::size_t r = resource.id.value();
    const double share_sum =
        ResourceShareSum(*workload_, *model_, resource.id, latencies);
    const double slack = resource.capacity - share_sum;
    prices->mu[r] = std::max(0.0, prices->mu[r] - steps.resource[r] * slack);
  }
}

void PriceUpdater::UpdatePathPrices(const Assignment& latencies,
                                    const StepSizes& steps,
                                    PriceVector* prices) const {
  assert(steps.path.size() == workload_->path_count());
  assert(prices->lambda.size() == workload_->path_count());
  for (const PathInfo& path : workload_->paths()) {
    const std::size_t p = path.id.value();
    const double latency = PathLatency(*workload_, path.id, latencies);
    const double slack = 1.0 - latency / path.critical_time_ms;
    prices->lambda[p] =
        std::max(0.0, prices->lambda[p] - steps.path[p] * slack);
  }
}

void PriceUpdater::Update(const Assignment& latencies, const StepSizes& steps,
                          PriceVector* prices) const {
  UpdateResourcePrices(latencies, steps, prices);
  UpdatePathPrices(latencies, steps, prices);
}

void PriceUpdater::Update(const std::vector<double>& resource_share_sums,
                          const std::vector<double>& path_latencies,
                          const StepSizes& steps, PriceVector* prices) const {
  assert(resource_share_sums.size() == workload_->resource_count());
  assert(path_latencies.size() == workload_->path_count());
  assert(steps.resource.size() == workload_->resource_count());
  assert(steps.path.size() == workload_->path_count());
  for (const ResourceInfo& resource : workload_->resources()) {
    const std::size_t r = resource.id.value();
    const double slack = resource.capacity - resource_share_sums[r];
    prices->mu[r] = std::max(0.0, prices->mu[r] - steps.resource[r] * slack);
  }
  for (const PathInfo& path : workload_->paths()) {
    const std::size_t p = path.id.value();
    const double slack = 1.0 - path_latencies[p] / path.critical_time_ms;
    prices->lambda[p] =
        std::max(0.0, prices->lambda[p] - steps.path[p] * slack);
  }
}

std::vector<bool> PriceUpdater::ResourceCongestion(
    const Assignment& latencies) const {
  std::vector<bool> congested;
  ResourceCongestion(latencies, &congested);
  return congested;
}

void PriceUpdater::ResourceCongestion(const Assignment& latencies,
                                      std::vector<bool>* congested) const {
  congested->resize(workload_->resource_count());
  for (const ResourceInfo& resource : workload_->resources()) {
    const double share_sum =
        ResourceShareSum(*workload_, *model_, resource.id, latencies);
    (*congested)[resource.id.value()] = share_sum > resource.capacity;
  }
}

}  // namespace lla
