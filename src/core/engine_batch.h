// EngineBatch: coarse-grained parallelism over independent LLA instances.
//
// Splitting one engine's ~microsecond step across threads amortizes poorly:
// even a single hot fork-join costs a fraction of the step.  What does scale
// is running B *independent* iterations concurrently — a step-size sweep
// (Fig. 5), replicated workloads (Fig. 6), admission what-if probes, the
// coordinator's scenario evaluation.  EngineBatch owns the pool, forces each
// member engine serial (num_threads = 1, so the per-step fork-join overhead
// disappears entirely), and fans whole Step()/Run() calls out with a grain
// of one item via ParallelSweep.
//
// Every member engine computes exactly what it would standalone: engines
// never share mutable state, each item is stepped by exactly one thread at
// a time, and the schedule (which engine runs on which thread) cannot enter
// any computed value — so batched trajectories are bit-identical to
// unbatched ones at any thread count.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "core/engine.h"

namespace lla {

class EngineBatch {
 public:
  /// `num_threads` sizes the shared pool (clamped by hardware concurrency
  /// unless `config.max_concurrency` says otherwise); items are stepped with
  /// a grain of one.
  explicit EngineBatch(int num_threads, ParallelConfig config = {});
  ~EngineBatch();

  EngineBatch(const EngineBatch&) = delete;
  EngineBatch& operator=(const EngineBatch&) = delete;

  /// Constructs an engine in-place and returns its index.  The engine is
  /// forced to num_threads = 1 — batch members parallelize across, never
  /// within, instances.  `workload`/`model` must outlive the batch.  Batch
  /// members step concurrently, so they must not share a trace sink or
  /// metric registry; give each member its own (e.g. a RingBufferTraceSink
  /// replayed serially afterwards) or none.
  int Add(const Workload& workload, const LatencyModel& model,
          LlaConfig config);

  std::size_t size() const { return engines_.size(); }
  LlaEngine& engine(std::size_t index) { return *engines_[index]; }
  const LlaEngine& engine(std::size_t index) const { return *engines_[index]; }

  /// Advances every engine by `steps` iterations, one batch item per pool
  /// slot.  Engines already converged still step (matching a standalone
  /// Step() loop).
  void StepAll(int steps = 1);

  /// Run(max_iterations) on every engine concurrently; results are indexed
  /// like the engines.
  std::vector<RunResult> RunAll(int max_iterations);

  /// The shared pool, for callers that want to sweep their own items with
  /// batch-style granularity (see ParallelSweep).
  ThreadPool* pool() { return pool_.get(); }

 private:
  std::unique_ptr<ThreadPool> pool_;  ///< null when num_threads <= 1
  std::vector<std::unique_ptr<LlaEngine>> engines_;
};

}  // namespace lla
