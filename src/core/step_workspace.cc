#include "core/step_workspace.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace lla {
namespace {

// Serial reductions in index order: identical for every thread count.
void ReduceWorkspace(const Workload& workload, double feasibility_tol,
                     StepWorkspace* workspace) {
  const std::vector<ResourceInfo>& resources = workload.resources();
  for (std::size_t r = 0; r < resources.size(); ++r) {
    workspace->resource_congested[r] =
        workspace->resource_share_sums[r] > resources[r].capacity;
  }
  double total = 0.0;
  for (double utility : workspace->task_utilities) total += utility;
  workspace->total_utility = total;
  workspace->feasibility =
      SummarizeFeasibility(workload, workspace->resource_share_sums,
                           workspace->path_latencies, feasibility_tol);
}

}  // namespace

void StepWorkspace::Resize(const Workload& workload) {
  resource_share_sums.resize(workload.resource_count());
  path_latencies.resize(workload.path_count());
  task_weighted_latencies.resize(workload.task_count());
  task_utilities.resize(workload.task_count());
  resource_congested.resize(workload.resource_count());
}

void FillStepWorkspace(const Workload& workload, const LatencyModel& model,
                       const Assignment& latencies, UtilityVariant variant,
                       double feasibility_tol, ThreadPool* pool,
                       StepWorkspace* workspace) {
  assert(latencies.size() == workload.subtask_count());
  FillResourceShareSums(workload, model, latencies,
                        &workspace->resource_share_sums, pool);
  FillPathLatencies(workload, latencies, &workspace->path_latencies, pool);
  FillTaskAggregates(workload, latencies, variant,
                     &workspace->task_weighted_latencies,
                     &workspace->task_utilities, pool);
  ReduceWorkspace(workload, feasibility_tol, workspace);
}

void SolveAndFillStepWorkspace(const LatencySolver& solver,
                               const Workload& workload,
                               const LatencyModel& model,
                               const PriceVector& prices,
                               UtilityVariant variant, double feasibility_tol,
                               ThreadPool* pool, Assignment* latencies,
                               StepWorkspace* workspace) {
  assert(latencies->size() == workload.subtask_count());
  workspace->Resize(workload);
  // Cache refresh is serial; the region below only reads solver state
  // (besides the disjoint per-task scratch/latency slots).
  solver.PrepareSolve();

  const std::size_t task_count = workload.task_count();
  const std::size_t resource_count = workload.resource_count();
  const std::size_t path_count = workload.path_count();

  // Each sweep gets its own deterministic participant count; the region is
  // sized for the widest sweep and narrower sweeps leave the extra threads
  // idle for that phase.
  const int p_task = pool != nullptr ? pool->ParticipantsFor(task_count) : 1;
  const int p_resource =
      pool != nullptr ? pool->ParticipantsFor(resource_count) : 1;
  const int p_path = pool != nullptr ? pool->ParticipantsFor(path_count) : 1;
  const int region = std::max({p_task, p_resource, p_path});

  if (pool == nullptr || region <= 1) {
    solver.SolveTaskRange(0, task_count, prices, latencies);
    FillResourceShareSumsRange(workload, model, *latencies, 0, resource_count,
                               &workspace->resource_share_sums);
    FillPathLatenciesRange(workload, *latencies, 0, path_count,
                           &workspace->path_latencies);
    FillTaskAggregatesRange(workload, *latencies, variant, 0, task_count,
                            &workspace->task_weighted_latencies,
                            &workspace->task_utilities);
    ReduceWorkspace(workload, feasibility_tol, workspace);
    return;
  }

  SpinBarrier barrier(region);
  pool->RunRegion(region, [&](int index, int /*participants*/) {
    // Phase 1: latency allocation over task chunks (disjoint latency slots).
    if (index < p_task) {
      const auto [begin, end] = ChunkRange(task_count, p_task, index);
      solver.SolveTaskRange(begin, end, prices, latencies);
    }
    // Every evaluation sweep reads latencies across chunk boundaries, so
    // all solving must be visible first.
    barrier.Wait();
    // Phase 2: the three independent evaluation sweeps.
    if (index < p_resource) {
      const auto [begin, end] = ChunkRange(resource_count, p_resource, index);
      FillResourceShareSumsRange(workload, model, *latencies, begin, end,
                                 &workspace->resource_share_sums);
    }
    if (index < p_path) {
      const auto [begin, end] = ChunkRange(path_count, p_path, index);
      FillPathLatenciesRange(workload, *latencies, begin, end,
                             &workspace->path_latencies);
    }
    if (index < p_task) {
      const auto [begin, end] = ChunkRange(task_count, p_task, index);
      FillTaskAggregatesRange(workload, *latencies, variant, begin, end,
                              &workspace->task_weighted_latencies,
                              &workspace->task_utilities);
    }
  });
  ReduceWorkspace(workload, feasibility_tol, workspace);
}

namespace {

inline bool SameBits(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

/// Builds the workload-shape parts of the state (reverse indexes, zeroed
/// flag arrays).  Called at prime time only.
void BindActiveSetState(const Workload& workload, ActiveSetState* state) {
  const std::vector<ResourceInfo>& resources = workload.resources();
  state->res_task_offset.assign(resources.size() + 1, 0);
  state->res_task_index.clear();
  std::vector<std::uint32_t> tasks_of_resource;
  for (std::size_t r = 0; r < resources.size(); ++r) {
    tasks_of_resource.clear();
    for (SubtaskId sid : resources[r].subtasks) {
      tasks_of_resource.push_back(
          static_cast<std::uint32_t>(workload.subtask(sid).task.value()));
    }
    std::sort(tasks_of_resource.begin(), tasks_of_resource.end());
    tasks_of_resource.erase(
        std::unique(tasks_of_resource.begin(), tasks_of_resource.end()),
        tasks_of_resource.end());
    state->res_task_index.insert(state->res_task_index.end(),
                                 tasks_of_resource.begin(),
                                 tasks_of_resource.end());
    state->res_task_offset[r + 1] = state->res_task_index.size();
  }
  state->task_dirty.assign(workload.task_count(), 0);
  state->resource_dirty.assign(workload.resource_count(), 0);
  state->path_dirty.assign(workload.path_count(), 0);
  state->dirty_tasks.clear();
  state->dirty_resources.clear();
  state->dirty_paths.clear();
}

}  // namespace

ActiveStepWork ActiveSolveAndFillStepWorkspace(
    const LatencySolver& solver, const Workload& workload,
    const LatencyModel& model, const PriceVector& prices,
    UtilityVariant variant, double feasibility_tol, ThreadPool* pool,
    Assignment* latencies, StepWorkspace* workspace, ActiveSetState* state) {
  ActiveStepWork work;
  const bool shape_ok =
      state->prev_latencies.size() == workload.subtask_count() &&
      state->solve_prices.mu.size() == prices.mu.size() &&
      state->solve_prices.lambda.size() == prices.lambda.size();
  if (!state->primed || state->model_revision != model.revision() ||
      !shape_ok) {
    // Dense prime: one full solve + fill, then snapshot the inputs/outputs
    // it was computed from.  A baseline solve at these prices is exactly
    // what the first incremental step would recompute, so the next Step()
    // can already diff against it.
    SolveAndFillStepWorkspace(solver, workload, model, prices, variant,
                              feasibility_tol, pool, latencies, workspace);
    BindActiveSetState(workload, state);
    state->solve_prices = prices;
    state->prev_latencies = *latencies;
    state->model_revision = model.revision();
    state->primed = true;
    work.primed = true;
    work.tasks_solved = workload.task_count();
    work.subtasks_solved = workload.subtask_count();
    work.resources_refreshed = workload.resource_count();
    work.paths_refreshed = workload.path_count();
    return work;
  }
  assert(latencies->size() == workload.subtask_count());

  // 1. Diff the prices against the ones the current buffers were solved at.
  DiffPrices(prices, state->solve_prices, &state->mu_changed,
             &state->lambda_changed);

  // 2. Mark dirty tasks: any task with a subtask on a changed-mu resource or
  //    a changed-lambda path must re-solve.  Also detect whether the lambda
  //    ZERO-PATTERN moved — only then does the compacted gather CSR need a
  //    rebuild (a nonzero->nonzero change keeps the index valid).
  state->dirty_tasks.clear();
  bool lambda_pattern_changed = false;
  for (std::size_t r = 0; r < state->mu_changed.size(); ++r) {
    if (state->mu_changed[r] == 0) continue;
    for (std::size_t i = state->res_task_offset[r];
         i < state->res_task_offset[r + 1]; ++i) {
      const std::uint32_t t = state->res_task_index[i];
      if (state->task_dirty[t] == 0) {
        state->task_dirty[t] = 1;
        state->dirty_tasks.push_back(t);
      }
    }
  }
  for (std::size_t p = 0; p < state->lambda_changed.size(); ++p) {
    if (state->lambda_changed[p] == 0) continue;
    if (prices.lambda[p] == 0.0 || state->solve_prices.lambda[p] == 0.0) {
      lambda_pattern_changed = true;
    }
    const std::uint32_t t =
        static_cast<std::uint32_t>(workload.path(PathId(p)).task.value());
    if (state->task_dirty[t] == 0) {
      state->task_dirty[t] = 1;
      state->dirty_tasks.push_back(t);
    }
  }

  // Snapshot the new solve prices (vector assignment reuses capacity).
  state->solve_prices = prices;

  if (!state->dirty_tasks.empty()) {
    std::sort(state->dirty_tasks.begin(), state->dirty_tasks.end());

    // 3. Re-solve the dirty tasks only.  Clean tasks would reproduce their
    //    persisted latencies bit-for-bit (identical inputs, identical
    //    arithmetic), so reusing the buffer entries IS the dense result.
    solver.RefreshCache();
    if (!solver.has_active_gather() || lambda_pattern_changed) {
      solver.PrepareSolve(prices);
    }
    const std::uint32_t* task_ids = state->dirty_tasks.data();
    StaticParallelFor(pool, state->dirty_tasks.size(),
                      [&](std::size_t begin, std::size_t end) {
                        solver.SolveTaskList(task_ids, begin, end, prices,
                                             latencies);
                      });

    // 4. Diff the re-solved latencies; a resource/path is dirty iff one of
    //    its member subtasks changed bits.  Clean aggregates keep their
    //    persisted values (a full re-sum over unchanged bits is a no-op).
    state->dirty_resources.clear();
    state->dirty_paths.clear();
    for (std::uint32_t t : state->dirty_tasks) {
      state->task_dirty[t] = 0;  // reset for the next step
      for (SubtaskId sid : workload.task(TaskId(t)).subtasks) {
        const std::size_t s = sid.value();
        ++work.subtasks_solved;
        if (SameBits((*latencies)[s], state->prev_latencies[s])) continue;
        state->prev_latencies[s] = (*latencies)[s];
        const SubtaskInfo& sub = workload.subtask(sid);
        const std::size_t r = sub.resource.value();
        if (state->resource_dirty[r] == 0) {
          state->resource_dirty[r] = 1;
          state->dirty_resources.push_back(static_cast<std::uint32_t>(r));
        }
        for (PathId pid : sub.paths) {
          const std::size_t p = pid.value();
          if (state->path_dirty[p] == 0) {
            state->path_dirty[p] = 1;
            state->dirty_paths.push_back(static_cast<std::uint32_t>(p));
          }
        }
      }
    }
    work.tasks_solved = state->dirty_tasks.size();
    work.resources_refreshed = state->dirty_resources.size();
    work.paths_refreshed = state->dirty_paths.size();

    // 5. Re-aggregate dirty items in full (never delta arithmetic): each
    //    item's sum runs the dense inner loop over ALL its members in index
    //    order, so the bits match the dense sweep exactly.
    const std::uint32_t* dirty_resources = state->dirty_resources.data();
    StaticParallelFor(
        pool, state->dirty_resources.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t r = dirty_resources[i];
            FillResourceShareSumsRange(workload, model, *latencies, r, r + 1,
                                       &workspace->resource_share_sums);
          }
        });
    const std::uint32_t* dirty_paths = state->dirty_paths.data();
    StaticParallelFor(pool, state->dirty_paths.size(),
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          const std::size_t p = dirty_paths[i];
                          FillPathLatenciesRange(workload, *latencies, p,
                                                 p + 1,
                                                 &workspace->path_latencies);
                        }
                      });
    StaticParallelFor(
        pool, state->dirty_tasks.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t t = task_ids[i];
            FillTaskAggregatesRange(workload, *latencies, variant, t, t + 1,
                                    &workspace->task_weighted_latencies,
                                    &workspace->task_utilities);
          }
        });
    for (std::uint32_t r : state->dirty_resources) {
      state->resource_dirty[r] = 0;
    }
    for (std::uint32_t p : state->dirty_paths) state->path_dirty[p] = 0;
  }

  // 6. The reductions stay dense: they read only the (bit-identical)
  //    workspace arrays, cost O(R + P + task paths), and keeping them whole
  //    means the congestion flags, utility total and feasibility summary
  //    need no dirtiness reasoning at all.
  ReduceWorkspace(workload, feasibility_tol, workspace);
  return work;
}

}  // namespace lla
