#include "core/step_workspace.h"

#include <cassert>

namespace lla {

void StepWorkspace::Resize(const Workload& workload) {
  resource_share_sums.resize(workload.resource_count());
  path_latencies.resize(workload.path_count());
  task_weighted_latencies.resize(workload.task_count());
  task_utilities.resize(workload.task_count());
  resource_congested.resize(workload.resource_count());
}

void FillStepWorkspace(const Workload& workload, const LatencyModel& model,
                       const Assignment& latencies, UtilityVariant variant,
                       double feasibility_tol, ThreadPool* pool,
                       StepWorkspace* workspace) {
  assert(latencies.size() == workload.subtask_count());
  FillResourceShareSums(workload, model, latencies,
                        &workspace->resource_share_sums, pool);
  FillPathLatencies(workload, latencies, &workspace->path_latencies, pool);
  FillTaskAggregates(workload, latencies, variant,
                     &workspace->task_weighted_latencies,
                     &workspace->task_utilities, pool);

  // Serial reductions in index order: identical for every thread count.
  const std::vector<ResourceInfo>& resources = workload.resources();
  for (std::size_t r = 0; r < resources.size(); ++r) {
    workspace->resource_congested[r] =
        workspace->resource_share_sums[r] > resources[r].capacity;
  }
  double total = 0.0;
  for (double utility : workspace->task_utilities) total += utility;
  workspace->total_utility = total;
  workspace->feasibility =
      SummarizeFeasibility(workload, workspace->resource_share_sums,
                           workspace->path_latencies, feasibility_tol);
}

}  // namespace lla
