#include "core/step_workspace.h"

#include <algorithm>
#include <cassert>

namespace lla {
namespace {

// Serial reductions in index order: identical for every thread count.
void ReduceWorkspace(const Workload& workload, double feasibility_tol,
                     StepWorkspace* workspace) {
  const std::vector<ResourceInfo>& resources = workload.resources();
  for (std::size_t r = 0; r < resources.size(); ++r) {
    workspace->resource_congested[r] =
        workspace->resource_share_sums[r] > resources[r].capacity;
  }
  double total = 0.0;
  for (double utility : workspace->task_utilities) total += utility;
  workspace->total_utility = total;
  workspace->feasibility =
      SummarizeFeasibility(workload, workspace->resource_share_sums,
                           workspace->path_latencies, feasibility_tol);
}

}  // namespace

void StepWorkspace::Resize(const Workload& workload) {
  resource_share_sums.resize(workload.resource_count());
  path_latencies.resize(workload.path_count());
  task_weighted_latencies.resize(workload.task_count());
  task_utilities.resize(workload.task_count());
  resource_congested.resize(workload.resource_count());
}

void FillStepWorkspace(const Workload& workload, const LatencyModel& model,
                       const Assignment& latencies, UtilityVariant variant,
                       double feasibility_tol, ThreadPool* pool,
                       StepWorkspace* workspace) {
  assert(latencies.size() == workload.subtask_count());
  FillResourceShareSums(workload, model, latencies,
                        &workspace->resource_share_sums, pool);
  FillPathLatencies(workload, latencies, &workspace->path_latencies, pool);
  FillTaskAggregates(workload, latencies, variant,
                     &workspace->task_weighted_latencies,
                     &workspace->task_utilities, pool);
  ReduceWorkspace(workload, feasibility_tol, workspace);
}

void SolveAndFillStepWorkspace(const LatencySolver& solver,
                               const Workload& workload,
                               const LatencyModel& model,
                               const PriceVector& prices,
                               UtilityVariant variant, double feasibility_tol,
                               ThreadPool* pool, Assignment* latencies,
                               StepWorkspace* workspace) {
  assert(latencies->size() == workload.subtask_count());
  workspace->Resize(workload);
  // Cache refresh is serial; the region below only reads solver state
  // (besides the disjoint per-task scratch/latency slots).
  solver.PrepareSolve();

  const std::size_t task_count = workload.task_count();
  const std::size_t resource_count = workload.resource_count();
  const std::size_t path_count = workload.path_count();

  // Each sweep gets its own deterministic participant count; the region is
  // sized for the widest sweep and narrower sweeps leave the extra threads
  // idle for that phase.
  const int p_task = pool != nullptr ? pool->ParticipantsFor(task_count) : 1;
  const int p_resource =
      pool != nullptr ? pool->ParticipantsFor(resource_count) : 1;
  const int p_path = pool != nullptr ? pool->ParticipantsFor(path_count) : 1;
  const int region = std::max({p_task, p_resource, p_path});

  if (pool == nullptr || region <= 1) {
    solver.SolveTaskRange(0, task_count, prices, latencies);
    FillResourceShareSumsRange(workload, model, *latencies, 0, resource_count,
                               &workspace->resource_share_sums);
    FillPathLatenciesRange(workload, *latencies, 0, path_count,
                           &workspace->path_latencies);
    FillTaskAggregatesRange(workload, *latencies, variant, 0, task_count,
                            &workspace->task_weighted_latencies,
                            &workspace->task_utilities);
    ReduceWorkspace(workload, feasibility_tol, workspace);
    return;
  }

  SpinBarrier barrier(region);
  pool->RunRegion(region, [&](int index, int /*participants*/) {
    // Phase 1: latency allocation over task chunks (disjoint latency slots).
    if (index < p_task) {
      const auto [begin, end] = ChunkRange(task_count, p_task, index);
      solver.SolveTaskRange(begin, end, prices, latencies);
    }
    // Every evaluation sweep reads latencies across chunk boundaries, so
    // all solving must be visible first.
    barrier.Wait();
    // Phase 2: the three independent evaluation sweeps.
    if (index < p_resource) {
      const auto [begin, end] = ChunkRange(resource_count, p_resource, index);
      FillResourceShareSumsRange(workload, model, *latencies, begin, end,
                                 &workspace->resource_share_sums);
    }
    if (index < p_path) {
      const auto [begin, end] = ChunkRange(path_count, p_path, index);
      FillPathLatenciesRange(workload, *latencies, begin, end,
                             &workspace->path_latencies);
    }
    if (index < p_task) {
      const auto [begin, end] = ChunkRange(task_count, p_task, index);
      FillTaskAggregatesRange(workload, *latencies, variant, begin, end,
                              &workspace->task_weighted_latencies,
                              &workspace->task_utilities);
    }
  });
  ReduceWorkspace(workload, feasibility_tol, workspace);
}

}  // namespace lla
