// Workload schedulability testing with LLA (paper Sec. 5.4).
//
// A schedulable workload converges to a feasible assignment; an
// unschedulable one either fails to converge or converges to latencies that
// violate the critical-time constraints (the paper observes critical paths
// at 1.75-2.41x the constraint on its unschedulable 6-task workload).  The
// tester runs the engine and classifies the outcome, also applying the
// cheap necessary condition sum(min_share) <= B_r first.
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

enum class Schedulability { kSchedulable, kUnschedulable, kIndeterminate };

const char* ToString(Schedulability verdict);

struct SchedulabilityConfig {
  LlaConfig lla;
  int max_iterations = 2000;
  /// Critical-path-to-critical-time ratio above which a non-converged run
  /// is declared unschedulable.
  double violation_threshold = 1.05;
  /// Resource share excess (sum of shares minus B_r) above which a
  /// non-converged run is declared unschedulable (Figure 7 also shows the
  /// share sums failing to settle below capacity).
  double resource_excess_threshold = 0.05;
  /// The violations must persist on average over this many trailing
  /// iterations (a single oscillation spike is not a verdict).
  int stable_window = 25;
};

struct SchedulabilityReport {
  Schedulability verdict = Schedulability::kIndeterminate;
  bool converged = false;
  int iterations = 0;
  /// Per-task critical-path / critical-time at the final iterate.
  std::vector<double> task_path_ratios;
  /// Trailing-window means of the two violation signals.
  double mean_max_path_ratio = 0.0;
  double mean_max_resource_excess = 0.0;
  double final_max_resource_excess = 0.0;
  std::string explanation;
};

class SchedulabilityTester {
 public:
  SchedulabilityTester(const Workload& workload, const LatencyModel& model,
                       SchedulabilityConfig config = {});

  SchedulabilityReport Test();

 private:
  const Workload* workload_;
  const LatencyModel* model_;
  SchedulabilityConfig config_;
};

}  // namespace lla
