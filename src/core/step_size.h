// Step-size policies for the gradient-projection price updates (Eqs. 8-9).
//
// The paper studies fixed step sizes (Figure 5: gamma = 0.1 converges
// slowly, 1 converges in ~500 iterations, 10 oscillates) and proposes an
// adaptive heuristic (Sec. 5.2): while a resource is congested, double its
// step size and the step sizes of all paths traversing it; revert to the
// initial value once it becomes uncongested.  A diminishing schedule
// (gamma_t = gamma0 / (1 + t/tau)) is included as the textbook
// convergence-guaranteed alternative.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/workload.h"

namespace lla {

/// Per-resource and per-path step sizes for one price update.
struct StepSizes {
  std::vector<double> resource;  ///< indexed by ResourceId
  std::vector<double> path;      ///< indexed by PathId
};

/// Serializable state of a step-size policy, for engine checkpoints
/// (DESIGN.md §7.7).  A policy only fills / reads the fields it owns:
/// adaptive uses the multiplier vectors, diminishing the iteration counter,
/// fixed nothing.
struct StepPolicyState {
  std::vector<double> resource_multiplier;
  std::vector<double> path_multiplier;
  std::int64_t iteration = 0;
};

class StepSizePolicy {
 public:
  virtual ~StepSizePolicy() = default;

  /// Clears internal state and sizes the output for `workload`.
  virtual void Reset(const Workload& workload) = 0;

  /// Computes the step sizes for the next price update.
  /// `resource_congested[r]` reports whether Eq. 3 is violated at the
  /// latencies just produced by latency allocation.
  virtual void Update(const Workload& workload,
                      const std::vector<bool>& resource_congested,
                      StepSizes* steps) = 0;

  /// Checkpoint hooks: SaveState writes the policy's mutable state into
  /// `out` (leaving foreign fields untouched); LoadState restores it.
  /// Stateless policies inherit the no-ops.  Call Reset() before LoadState
  /// so vectors not covered by the saved state are correctly sized.
  virtual void SaveState(StepPolicyState* out) const { (void)out; }
  virtual void LoadState(const StepPolicyState& in) { (void)in; }

  virtual std::string Describe() const = 0;
};

/// Constant gamma for all resources and paths.
class FixedStepSize final : public StepSizePolicy {
 public:
  explicit FixedStepSize(double gamma);
  void Reset(const Workload& workload) override;
  void Update(const Workload& workload,
              const std::vector<bool>& resource_congested,
              StepSizes* steps) override;
  std::string Describe() const override;

 private:
  double gamma_;
};

/// The paper's doubling heuristic.  `max_multiplier` caps the growth (the
/// paper does not cap, but an unschedulable workload — Figure 7 — keeps
/// resources congested indefinitely and an uncapped double overflows).
class AdaptiveStepSize final : public StepSizePolicy {
 public:
  explicit AdaptiveStepSize(double gamma0, double max_multiplier = 8.0);
  void Reset(const Workload& workload) override;
  void Update(const Workload& workload,
              const std::vector<bool>& resource_congested,
              StepSizes* steps) override;
  void SaveState(StepPolicyState* out) const override;
  void LoadState(const StepPolicyState& in) override;
  std::string Describe() const override;

 private:
  double gamma0_;
  double max_multiplier_;
  std::vector<double> resource_multiplier_;
  std::vector<double> path_multiplier_;
};

/// gamma_t = gamma0 / (1 + t / tau): satisfies the diminishing-step
/// conditions under which dual subgradient methods provably converge.
class DiminishingStepSize final : public StepSizePolicy {
 public:
  DiminishingStepSize(double gamma0, double tau);
  void Reset(const Workload& workload) override;
  void Update(const Workload& workload,
              const std::vector<bool>& resource_congested,
              StepSizes* steps) override;
  void SaveState(StepPolicyState* out) const override;
  void LoadState(const StepPolicyState& in) override;
  std::string Describe() const override;

 private:
  double gamma0_;
  double tau_;
  int iteration_ = 0;
};

/// Which policy an LlaConfig selects.
enum class StepPolicyKind { kFixed, kAdaptive, kDiminishing };

const char* ToString(StepPolicyKind kind);

}  // namespace lla
