#include "core/engine_batch.h"

namespace lla {

EngineBatch::EngineBatch(int num_threads, ParallelConfig config) {
  if (num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads, config);
  }
}

EngineBatch::~EngineBatch() = default;

int EngineBatch::Add(const Workload& workload, const LatencyModel& model,
                     LlaConfig config) {
  config.num_threads = 1;  // parallelism lives across instances
  engines_.push_back(std::make_unique<LlaEngine>(workload, model, config));
  return static_cast<int>(engines_.size()) - 1;
}

void EngineBatch::StepAll(int steps) {
  ParallelSweep(pool_.get(), engines_.size(), [&](std::size_t i) {
    for (int s = 0; s < steps; ++s) engines_[i]->Step();
  });
}

std::vector<RunResult> EngineBatch::RunAll(int max_iterations) {
  std::vector<RunResult> results(engines_.size());
  ParallelSweep(pool_.get(), engines_.size(), [&](std::size_t i) {
    results[i] = engines_[i]->Run(max_iterations);
  });
  return results;
}

}  // namespace lla
