#include "core/schedulability.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace lla {

const char* ToString(Schedulability verdict) {
  switch (verdict) {
    case Schedulability::kSchedulable:
      return "schedulable";
    case Schedulability::kUnschedulable:
      return "unschedulable";
    case Schedulability::kIndeterminate:
      return "indeterminate";
  }
  return "?";
}

SchedulabilityTester::SchedulabilityTester(const Workload& workload,
                                           const LatencyModel& model,
                                           SchedulabilityConfig config)
    : workload_(&workload), model_(&model), config_(config) {}

SchedulabilityReport SchedulabilityTester::Test() {
  SchedulabilityReport report;

  // Necessary condition: the sustainable-rate share floors alone must fit.
  for (const ResourceInfo& resource : workload_->resources()) {
    const double demand = workload_->MinShareDemand(resource.id);
    if (demand > resource.capacity) {
      report.verdict = Schedulability::kUnschedulable;
      std::ostringstream os;
      os << "minimum sustainable share demand " << demand << " on resource '"
         << resource.name << "' exceeds capacity " << resource.capacity;
      report.explanation = os.str();
      return report;
    }
  }

  LlaConfig lla_config = config_.lla;
  lla_config.record_history = true;
  LlaEngine engine(*workload_, *model_, lla_config);
  const RunResult run = engine.Run(config_.max_iterations);
  report.converged = run.converged;
  report.iterations = run.iterations;
  report.final_max_resource_excess =
      run.final_feasibility.max_resource_excess;

  for (const TaskInfo& task : workload_->tasks()) {
    const double crit =
        CriticalPathLatency(*workload_, task.id, engine.latencies());
    report.task_path_ratios.push_back(crit / task.critical_time_ms);
  }

  // Trailing-window means of the violation signals.
  const auto& history = engine.history();
  const int window = std::min<int>(config_.stable_window,
                                   static_cast<int>(history.size()));
  double mean_ratio = 0.0;
  double mean_excess = 0.0;
  for (int i = 0; i < window; ++i) {
    mean_ratio += history[history.size() - 1 - i].max_path_ratio;
    mean_excess += history[history.size() - 1 - i].max_resource_excess;
  }
  if (window > 0) {
    mean_ratio /= window;
    mean_excess /= window;
  }
  report.mean_max_path_ratio = mean_ratio;
  report.mean_max_resource_excess = mean_excess;

  std::ostringstream os;
  if (run.converged && run.final_feasibility.feasible) {
    report.verdict = Schedulability::kSchedulable;
    os << "converged to a feasible assignment after " << run.iterations
       << " iterations";
  } else if (mean_ratio > config_.violation_threshold ||
             mean_excess > config_.resource_excess_threshold) {
    report.verdict = Schedulability::kUnschedulable;
    os << "no convergence after " << run.iterations
       << " iterations; critical paths persistently at " << mean_ratio
       << "x the critical-time constraint, resource share excess "
       << mean_excess;
  } else {
    report.verdict = Schedulability::kIndeterminate;
    os << "no convergence after " << run.iterations
       << " iterations but constraints are not persistently violated "
          "(trailing ratio "
       << mean_ratio << "); rerun with more iterations";
  }
  report.explanation = os.str();
  return report;
}

}  // namespace lla
