// Price computation (paper Sec. 4.3): gradient projection on the dual.
//
//   mu_r     <- [ mu_r - gamma_r * (B_r - sum of shares at r) ]+        (Eq. 8)
//   lambda_p <- [ lambda_p - gamma_p * (1 - path latency / C_i) ]+      (Eq. 9)
//
// Prices rise while their constraint is violated and decay toward zero when
// it is slack; the projection at zero keeps them dual-feasible.
//
// Each update exists in two forms: the scalar form recomputes the share
// sums / path latencies from the assignment (reference oracle), and the
// array form consumes sums already computed into a StepWorkspace so the
// per-iteration sweep over the workload happens exactly once.  Both produce
// bit-identical prices.
#pragma once

#include <cstdint>
#include <vector>

#include "core/prices.h"
#include "core/step_size.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

class PriceDynamicsPolicy;

/// Dirty/quiescence state of the incremental price update (UpdateActive).
///
/// A constraint is RETIRED when its multiplier has sat clamped at exactly 0
/// for `quiescence_epochs` consecutive computed updates; retired constraints
/// skip the gradient-projection arithmetic entirely until any input bit
/// changes.  The skip is exact and step-size independent: a computed update
/// that output 0 proves mu_prev - gamma * slack <= 0 with mu_prev >= 0,
/// hence slack >= 0; with the share sum (or path latency) bitwise unchanged,
/// max(0, 0 - gamma' * slack) == +0.0 for ANY gamma' >= 0.
struct ActivePriceState {
  bool primed = false;
  /// Last computed update for this constraint output exactly 0.0.
  std::vector<std::uint8_t> mu_settled;
  std::vector<std::uint8_t> lambda_settled;
  /// Consecutive updates (computed or skipped) with the multiplier at 0.
  std::vector<std::uint32_t> mu_zero_epochs;
  std::vector<std::uint32_t> lambda_zero_epochs;
  /// Consecutive computed updates with |proposed - published| within
  /// epsilon (relative); feeds the opt-in epsilon_quiescence freeze.
  std::vector<std::uint32_t> mu_stable_epochs;
  std::vector<std::uint32_t> lambda_stable_epochs;
  /// epsilon_quiescence > 0 only: the un-frozen dual state.  The shadow
  /// keeps integrating Eq. 8/9 every computed update even while the
  /// published price is frozen, so a slow persistent drift accumulates here
  /// and eventually forces a re-publish — freezing suppresses writes, never
  /// the dynamics.  Invariant: |published - shadow| <= epsilon *
  /// max(1, |published|) after every update.
  std::vector<double> shadow_mu;
  std::vector<double> shadow_lambda;
  /// Inputs of the previous update, for exact (bitwise) change detection.
  std::vector<double> prev_share_sums;
  std::vector<double> prev_path_latencies;

  void Invalidate() { primed = false; }
};

/// Work/sparsity report of one UpdateActive call.
struct ActivePriceWork {
  std::size_t mu_updated = 0;
  std::size_t mu_skipped = 0;  ///< retired constraints (exact, at 0)
  std::size_t mu_frozen = 0;   ///< epsilon-quiescence holds (opt-in mode)
  std::size_t lambda_updated = 0;
  std::size_t lambda_skipped = 0;
  std::size_t lambda_frozen = 0;
  std::size_t mu_nonzero = 0;      ///< active-set size after the update
  std::size_t lambda_nonzero = 0;
};

class PriceUpdater {
 public:
  PriceUpdater(const Workload& workload, const LatencyModel& model);

  /// Applies Eq. 8 to every resource price.
  void UpdateResourcePrices(const Assignment& latencies,
                            const StepSizes& steps, PriceVector* prices) const;

  /// Applies Eq. 9 to every path price.
  void UpdatePathPrices(const Assignment& latencies, const StepSizes& steps,
                        PriceVector* prices) const;

  /// Both updates (scalar form: re-evaluates the workload).
  void Update(const Assignment& latencies, const StepSizes& steps,
              PriceVector* prices) const;

  /// Both updates from precomputed per-resource share sums and per-path
  /// latencies (as filled by FillStepWorkspace) — no workload re-walk.
  ///
  /// `dynamics` selects the accelerated variant of the projected step
  /// (heavy-ball / Nesterov, see price_dynamics.h); nullptr runs the
  /// original inline Eq. 8/9 arithmetic, which PlainDynamics matches
  /// bit-for-bit.
  void Update(const std::vector<double>& resource_share_sums,
              const std::vector<double>& path_latencies,
              const StepSizes& steps, PriceVector* prices,
              PriceDynamicsPolicy* dynamics = nullptr) const;

  /// The array-form Update with retirement and (opt-in) epsilon freezing.
  ///
  /// With epsilon_quiescence == 0 the written prices are bit-identical to
  /// Update() for every constraint: non-retired constraints run the same
  /// arithmetic, and retired ones skip a computation proven to output +0.0
  /// (see ActivePriceState).  With epsilon_quiescence > 0, a multiplier
  /// whose computed move stayed within epsilon * max(1, |published|) for
  /// `quiescence_epochs` consecutive updates is frozen (not written); its
  /// shadow keeps integrating the dynamics and the price is re-published as
  /// soon as the accumulated drift exceeds the same threshold.  Published
  /// prices therefore track the shadow dual trajectory with per-component
  /// relative error <= epsilon — a documented suboptimality trade
  /// (DESIGN.md §7.6), not an exact mode.
  /// With a non-null `dynamics`, the per-component arithmetic (including the
  /// epsilon-mode shadow integration) is delegated to the policy's Step();
  /// retirement then keys off the policy's `settled` bit, which certifies
  /// the component's whole dynamics state (value AND velocity) is at the
  /// absorbing zero — that is what keeps sparse and dense momentum
  /// trajectories bit-identical in exact mode.
  ActivePriceWork UpdateActive(const std::vector<double>& resource_share_sums,
                               const std::vector<double>& path_latencies,
                               const StepSizes& steps,
                               double epsilon_quiescence,
                               int quiescence_epochs, PriceVector* prices,
                               ActivePriceState* state,
                               PriceDynamicsPolicy* dynamics = nullptr) const;

  /// True for every resource whose share sum exceeds its capacity at the
  /// given latencies (the congestion signal the adaptive policy consumes).
  std::vector<bool> ResourceCongestion(const Assignment& latencies) const;

  /// Allocation-free variant: writes into `congested` (resized to
  /// resource_count); reuse the buffer across iterations.
  void ResourceCongestion(const Assignment& latencies,
                          std::vector<bool>* congested) const;

 private:
  const Workload* workload_;
  const LatencyModel* model_;
};

}  // namespace lla
