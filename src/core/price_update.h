// Price computation (paper Sec. 4.3): gradient projection on the dual.
//
//   mu_r     <- [ mu_r - gamma_r * (B_r - sum of shares at r) ]+        (Eq. 8)
//   lambda_p <- [ lambda_p - gamma_p * (1 - path latency / C_i) ]+      (Eq. 9)
//
// Prices rise while their constraint is violated and decay toward zero when
// it is slack; the projection at zero keeps them dual-feasible.
//
// Each update exists in two forms: the scalar form recomputes the share
// sums / path latencies from the assignment (reference oracle), and the
// array form consumes sums already computed into a StepWorkspace so the
// per-iteration sweep over the workload happens exactly once.  Both produce
// bit-identical prices.
#pragma once

#include <vector>

#include "core/prices.h"
#include "core/step_size.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

class PriceUpdater {
 public:
  PriceUpdater(const Workload& workload, const LatencyModel& model);

  /// Applies Eq. 8 to every resource price.
  void UpdateResourcePrices(const Assignment& latencies,
                            const StepSizes& steps, PriceVector* prices) const;

  /// Applies Eq. 9 to every path price.
  void UpdatePathPrices(const Assignment& latencies, const StepSizes& steps,
                        PriceVector* prices) const;

  /// Both updates (scalar form: re-evaluates the workload).
  void Update(const Assignment& latencies, const StepSizes& steps,
              PriceVector* prices) const;

  /// Both updates from precomputed per-resource share sums and per-path
  /// latencies (as filled by FillStepWorkspace) — no workload re-walk.
  void Update(const std::vector<double>& resource_share_sums,
              const std::vector<double>& path_latencies,
              const StepSizes& steps, PriceVector* prices) const;

  /// True for every resource whose share sum exceeds its capacity at the
  /// given latencies (the congestion signal the adaptive policy consumes).
  std::vector<bool> ResourceCongestion(const Assignment& latencies) const;

  /// Allocation-free variant: writes into `congested` (resized to
  /// resource_count); reuse the buffer across iterations.
  void ResourceCongestion(const Assignment& latencies,
                          std::vector<bool>* congested) const;

 private:
  const Workload* workload_;
  const LatencyModel* model_;
};

}  // namespace lla
