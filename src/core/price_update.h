// Price computation (paper Sec. 4.3): gradient projection on the dual.
//
//   mu_r     <- [ mu_r - gamma_r * (B_r - sum of shares at r) ]+        (Eq. 8)
//   lambda_p <- [ lambda_p - gamma_p * (1 - path latency / C_i) ]+      (Eq. 9)
//
// Prices rise while their constraint is violated and decay toward zero when
// it is slack; the projection at zero keeps them dual-feasible.
#pragma once

#include <vector>

#include "core/prices.h"
#include "core/step_size.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

class PriceUpdater {
 public:
  PriceUpdater(const Workload& workload, const LatencyModel& model);

  /// Applies Eq. 8 to every resource price.
  void UpdateResourcePrices(const Assignment& latencies,
                            const StepSizes& steps, PriceVector* prices) const;

  /// Applies Eq. 9 to every path price.
  void UpdatePathPrices(const Assignment& latencies, const StepSizes& steps,
                        PriceVector* prices) const;

  /// Both updates.
  void Update(const Assignment& latencies, const StepSizes& steps,
              PriceVector* prices) const;

  /// True for every resource whose share sum exceeds its capacity at the
  /// given latencies (the congestion signal the adaptive policy consumes).
  std::vector<bool> ResourceCongestion(const Assignment& latencies) const;

 private:
  const Workload* workload_;
  const LatencyModel* model_;
};

}  // namespace lla
