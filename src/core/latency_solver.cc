#include "core/latency_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math.h"

namespace lla {

LatencySolver::LatencySolver(const Workload& workload,
                             const LatencyModel& model,
                             LatencySolverConfig config)
    : workload_(&workload), model_(&model), config_(config) {
  assert(config.lat_cap_factor >= 1.0);
  const std::size_t n = workload.subtask_count();
  weight_.reserve(n);
  path_offset_.reserve(n + 1);
  path_offset_.push_back(0);
  for (const SubtaskInfo& sub : workload.subtasks()) {
    weight_.push_back(workload.Weight(sub.id, config_.variant));
    for (PathId pid : sub.paths) path_index_.push_back(pid.value());
    path_offset_.push_back(path_index_.size());
  }
}

double LatencySolver::ComputeLatLo(SubtaskId id) const {
  const SubtaskInfo& sub = workload_->subtask(id);
  const ShareFunction& share = model_->share(id);
  const double cap = workload_->resource(sub.resource).capacity;
  // The subtask may not demand more than the whole available fraction; with
  // corrected models the inverse can dip to/below MinLatency, so guard it.
  const double floor =
      std::max(share.MinLatency() * (1.0 + 1e-12) + 1e-12, 1e-9);
  return std::max(share.LatencyForShare(cap), floor);
}

double LatencySolver::ComputeLatHi(SubtaskId id) const {
  const SubtaskInfo& sub = workload_->subtask(id);
  const ShareFunction& share = model_->share(id);
  const double critical_time =
      workload_->task(sub.task).critical_time_ms;
  double hi = sub.min_share > 0.0 ? share.LatencyForShare(sub.min_share)
                                  : config_.lat_cap_factor * critical_time;
  return std::max(hi, ComputeLatLo(id));
}

void LatencySolver::EnsureCacheFresh() const {
  if (!config_.cache_invariants) return;
  if (cache_valid_ && cached_revision_ == model_->revision()) return;
  const std::size_t n = workload_->subtask_count();
  lat_lo_.resize(n);
  lat_hi_.resize(n);
  share_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const SubtaskId id(s);
    lat_lo_[s] = ComputeLatLo(id);
    lat_hi_[s] = ComputeLatHi(id);
    share_[s] = &model_->share(id);
  }
  cached_revision_ = model_->revision();
  cache_valid_ = true;
}

void LatencySolver::InvalidateModelCache() { cache_valid_ = false; }

double LatencySolver::LatLo(SubtaskId id) const {
  if (!config_.cache_invariants) return ComputeLatLo(id);
  EnsureCacheFresh();
  return lat_lo_[id.value()];
}

double LatencySolver::LatHi(SubtaskId id) const {
  if (!config_.cache_invariants) return ComputeLatHi(id);
  EnsureCacheFresh();
  return lat_hi_[id.value()];
}

double LatencySolver::SolveSubtask(SubtaskId id, double utility_slope,
                                   const PriceVector& prices) const {
  const std::size_t s = id.value();
  const bool cached = config_.cache_invariants;
  const ShareFunction& share = cached ? *share_[s] : model_->share(id);
  const double lo = cached ? lat_lo_[s] : ComputeLatLo(id);
  const double hi = cached ? lat_hi_[s] : ComputeLatHi(id);
  if (lo >= hi) return lo;

  const double w = weight_[s];
  double lambda_sum = 0.0;
  for (std::size_t i = path_offset_[s]; i < path_offset_[s + 1]; ++i) {
    lambda_sum += prices.lambda[path_index_[i]];
  }
  const double mu =
      prices.mu[workload_->subtask(id).resource.value()];

  // Marginal benefit of shrinking this latency (>= 0 since f' <= 0).
  const double pressure = lambda_sum - w * utility_slope;
  if (mu <= 0.0) {
    // Free resource: shrinking latency costs nothing.  Any positive pressure
    // drives the latency to its floor; zero pressure leaves it indifferent,
    // and we also pick the floor (work-conserving choice).
    return pressure > 0.0 ? lo : hi;
  }
  if (pressure <= 0.0) {
    // No benefit from shrinking (flat utility, no binding paths): release
    // the resource entirely.
    return hi;
  }
  return share.LatencyForNegSlope(pressure / mu, lo, hi);
}

void LatencySolver::SolveTaskFresh(TaskId task, const PriceVector& prices,
                                   Assignment* latencies) const {
  assert(latencies->size() == workload_->subtask_count());
  const TaskInfo& info = workload_->task(task);
  const UtilityFunction& f = *info.utility;
  const bool cached = config_.cache_invariants;

  // Bracket the coupling value X = sum of weighted latencies.
  double x_lo = 0.0, x_hi = 0.0;
  for (SubtaskId sid : info.subtasks) {
    const std::size_t s = sid.value();
    x_lo += weight_[s] * (cached ? lat_lo_[s] : ComputeLatLo(sid));
    x_hi += weight_[s] * (cached ? lat_hi_[s] : ComputeLatHi(sid));
  }

  // If f' is (numerically) constant over the bracket — the linear case —
  // the subtasks decouple and one pass suffices.
  const double slope_lo = f.Derivative(x_lo);
  const double slope_hi = f.Derivative(x_hi);
  double slope = slope_lo;
  if (!AlmostEqual(slope_lo, slope_hi, 1e-12, 1e-15)) {
    // General concave f: solve X = h(X).  h is non-increasing in X because
    // f' is non-increasing, so g(X) = h(X) - X is strictly decreasing and
    // has a unique root in [x_lo, x_hi].
    const auto h = [&](double x) {
      const double fx = f.Derivative(x);
      double sum = 0.0;
      for (SubtaskId sid : info.subtasks) {
        sum += weight_[sid.value()] * SolveSubtask(sid, fx, prices);
      }
      return sum;
    };
    double lo = x_lo, hi = x_hi;
    double x = 0.5 * (lo + hi);
    for (int iter = 0; iter < config_.fixed_point_max_iter; ++iter) {
      x = 0.5 * (lo + hi);
      const double gap = h(x) - x;
      if (std::fabs(gap) <= config_.fixed_point_tol * (1.0 + x) ||
          (hi - lo) <= config_.fixed_point_tol * (1.0 + x)) {
        break;
      }
      if (gap > 0.0) {
        lo = x;
      } else {
        hi = x;
      }
    }
    slope = f.Derivative(x);
  }

  for (SubtaskId sid : info.subtasks) {
    (*latencies)[sid.value()] = SolveSubtask(sid, slope, prices);
  }
}

void LatencySolver::SolveTask(TaskId task, const PriceVector& prices,
                              Assignment* latencies) const {
  EnsureCacheFresh();
  SolveTaskFresh(task, prices, latencies);
}

void LatencySolver::SolveAll(const PriceVector& prices, Assignment* latencies,
                             ThreadPool* pool) const {
  assert(latencies->size() == workload_->subtask_count());
  // Refresh serially before fanning out; workers then only read the cache.
  EnsureCacheFresh();
  const std::vector<TaskInfo>& tasks = workload_->tasks();
  StaticParallelFor(pool, tasks.size(),
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t t = begin; t < end; ++t) {
                        SolveTaskFresh(tasks[t].id, prices, latencies);
                      }
                    });
}

}  // namespace lla
