#include "core/latency_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math.h"

namespace lla {

LatencySolver::LatencySolver(const Workload& workload,
                             const LatencyModel& model,
                             LatencySolverConfig config)
    : workload_(&workload), model_(&model), config_(config) {
  assert(config.lat_cap_factor >= 1.0);
  const std::size_t n = workload.subtask_count();
  weight_.reserve(n);
  resource_index_.reserve(n);
  path_offset_.reserve(n + 1);
  path_offset_.push_back(0);
  for (const SubtaskInfo& sub : workload.subtasks()) {
    weight_.push_back(workload.Weight(sub.id, config_.variant));
    resource_index_.push_back(sub.resource.value());
    for (PathId pid : sub.paths) path_index_.push_back(pid.value());
    path_offset_.push_back(path_index_.size());
  }
  // Per-task subtask spans.  Workload construction assigns subtask ids in
  // task order, so spans are contiguous in practice; the flag guards the
  // flat kernel against any future layout that breaks that.
  const std::vector<TaskInfo>& tasks = workload.tasks();
  task_begin_.resize(tasks.size(), 0);
  task_end_.resize(tasks.size(), 0);
  task_contiguous_.resize(tasks.size(), 0);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const std::vector<SubtaskId>& subs = tasks[t].subtasks;
    if (subs.empty()) {
      task_contiguous_[t] = 1;  // empty span, kernel trivially applies
      continue;
    }
    task_begin_[t] = subs.front().value();
    task_end_[t] = subs.back().value() + 1;
    bool contiguous = task_end_[t] - task_begin_[t] == subs.size();
    for (std::size_t i = 0; contiguous && i < subs.size(); ++i) {
      contiguous = subs[i].value() == task_begin_[t] + i;
    }
    task_contiguous_[t] = contiguous ? 1 : 0;
  }
}

double LatencySolver::ComputeLatLo(SubtaskId id) const {
  const SubtaskInfo& sub = workload_->subtask(id);
  const ShareFunction& share = model_->share(id);
  const double cap = workload_->resource(sub.resource).capacity;
  // The subtask may not demand more than the whole available fraction; with
  // corrected models the inverse can dip to/below MinLatency, so guard it.
  const double floor =
      std::max(share.MinLatency() * (1.0 + 1e-12) + 1e-12, 1e-9);
  return std::max(share.LatencyForShare(cap), floor);
}

double LatencySolver::ComputeLatHi(SubtaskId id) const {
  const SubtaskInfo& sub = workload_->subtask(id);
  const ShareFunction& share = model_->share(id);
  const double critical_time =
      workload_->task(sub.task).critical_time_ms;
  double hi = sub.min_share > 0.0 ? share.LatencyForShare(sub.min_share)
                                  : config_.lat_cap_factor * critical_time;
  return std::max(hi, ComputeLatLo(id));
}

void LatencySolver::EnsureCacheFresh() const {
  if (!config_.cache_invariants) return;
  if (cache_valid_ && cached_revision_ == model_->revision()) return;
  const std::size_t n = workload_->subtask_count();
  lat_lo_.resize(n);
  lat_hi_.resize(n);
  share_.resize(n);
  closed_work_.resize(n);
  closed_err_.resize(n);
  lambda_scratch_.resize(n);
  std::vector<std::uint8_t> closed(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    const SubtaskId id(s);
    lat_lo_[s] = ComputeLatLo(id);
    lat_hi_[s] = ComputeLatHi(id);
    share_[s] = &model_->share(id);
    double work = 0.0, err = 0.0;
    if (share_[s]->ReciprocalForm(&work, &err)) {
      closed_work_[s] = work;
      closed_err_[s] = err;
      closed[s] = 1;
    }
  }
  const std::vector<TaskInfo>& tasks = workload_->tasks();
  task_closed_.assign(tasks.size(), 0);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    bool all_closed = task_contiguous_[t] != 0;
    for (std::size_t s = task_begin_[t]; all_closed && s < task_end_[t]; ++s) {
      all_closed = closed[s] != 0;
    }
    task_closed_[t] = all_closed ? 1 : 0;
  }
  cached_revision_ = model_->revision();
  cache_valid_ = true;
  // Cache rebuild means the model moved; stale compaction can't be trusted.
  active_csr_valid_ = false;
}

void LatencySolver::InvalidateModelCache() {
  cache_valid_ = false;
  active_csr_valid_ = false;
}

double LatencySolver::LatLo(SubtaskId id) const {
  if (!config_.cache_invariants) return ComputeLatLo(id);
  EnsureCacheFresh();
  return lat_lo_[id.value()];
}

double LatencySolver::LatHi(SubtaskId id) const {
  if (!config_.cache_invariants) return ComputeLatHi(id);
  EnsureCacheFresh();
  return lat_hi_[id.value()];
}

double LatencySolver::SolveSubtask(SubtaskId id, double utility_slope,
                                   const PriceVector& prices) const {
  const std::size_t s = id.value();
  const bool cached = config_.cache_invariants;
  const ShareFunction& share = cached ? *share_[s] : model_->share(id);
  const double lo = cached ? lat_lo_[s] : ComputeLatLo(id);
  const double hi = cached ? lat_hi_[s] : ComputeLatHi(id);
  if (lo >= hi) return lo;

  const double w = weight_[s];
  const std::size_t* off =
      active_csr_valid_ ? active_path_offset_.data() : path_offset_.data();
  const std::size_t* idx =
      active_csr_valid_ ? active_path_index_.data() : path_index_.data();
  double lambda_sum = 0.0;
  for (std::size_t i = off[s]; i < off[s + 1]; ++i) {
    lambda_sum += prices.lambda[idx[i]];
  }
  const double mu =
      prices.mu[workload_->subtask(id).resource.value()];

  // Marginal benefit of shrinking this latency (>= 0 since f' <= 0).
  const double pressure = lambda_sum - w * utility_slope;
  if (mu <= 0.0) {
    // Free resource: shrinking latency costs nothing.  Any positive pressure
    // drives the latency to its floor; zero pressure leaves it indifferent,
    // and we also pick the floor (work-conserving choice).
    return pressure > 0.0 ? lo : hi;
  }
  if (pressure <= 0.0) {
    // No benefit from shrinking (flat utility, no binding paths): release
    // the resource entirely.
    return hi;
  }
  return share.LatencyForNegSlope(pressure / mu, lo, hi);
}

void LatencySolver::SolveClosedSpan(std::size_t begin, std::size_t end,
                                    double utility_slope,
                                    const PriceVector& prices,
                                    double* out) const {
  // Gather pass: per-subtask path-price sums, accumulated in CSR order
  // (matching SolveSubtask exactly).  The active-compacted index only drops
  // lambda == 0 entries, and adding 0.0 to a partial sum of non-negatives
  // is a bitwise no-op, so both indexes produce the same bits.
  const double* lambda = prices.lambda.data();
  const std::size_t* off =
      active_csr_valid_ ? active_path_offset_.data() : path_offset_.data();
  const std::size_t* idx =
      active_csr_valid_ ? active_path_index_.data() : path_index_.data();
  for (std::size_t s = begin; s < end; ++s) {
    double lambda_sum = 0.0;
    for (std::size_t i = off[s]; i < off[s + 1]; ++i) {
      lambda_sum += lambda[idx[i]];
    }
    lambda_scratch_[s] = lambda_sum;
  }
  // Closed-form pass over flat arrays.  Every expression mirrors
  // SolveSubtask / LatencyForNegSlope operation-for-operation (division by
  // mu first, then work/g, then err + sqrt, then clamp) so the result is
  // bit-identical to the virtual-dispatch path.
  const double* mu = prices.mu.data();
  for (std::size_t s = begin; s < end; ++s) {
    const double lo = lat_lo_[s];
    const double hi = lat_hi_[s];
    double lat;
    if (lo >= hi) {
      lat = lo;
    } else {
      const double m = mu[resource_index_[s]];
      const double pressure =
          lambda_scratch_[s] - weight_[s] * utility_slope;
      if (m <= 0.0) {
        lat = pressure > 0.0 ? lo : hi;
      } else if (pressure <= 0.0) {
        lat = hi;
      } else {
        const double g = pressure / m;
        if (g == 0.0) {
          lat = hi;
        } else {
          double v = closed_err_[s] + std::sqrt(closed_work_[s] / g);
          v = v < lo ? lo : v;  // == Clamp(v, lo, hi)
          v = v > hi ? hi : v;
          lat = v;
        }
      }
    }
    out[s] = lat;
  }
}

void LatencySolver::SolveTaskFresh(TaskId task, const PriceVector& prices,
                                   Assignment* latencies) const {
  assert(latencies->size() == workload_->subtask_count());
  const TaskInfo& info = workload_->task(task);
  const UtilityFunction& f = *info.utility;
  const bool cached = config_.cache_invariants;
  const bool closed = cached && task_closed_[task.value()] != 0;
  const std::size_t span_begin = task_begin_[task.value()];
  const std::size_t span_end = task_end_[task.value()];

  // Bracket the coupling value X = sum of weighted latencies.
  double x_lo = 0.0, x_hi = 0.0;
  for (SubtaskId sid : info.subtasks) {
    const std::size_t s = sid.value();
    x_lo += weight_[s] * (cached ? lat_lo_[s] : ComputeLatLo(sid));
    x_hi += weight_[s] * (cached ? lat_hi_[s] : ComputeLatHi(sid));
  }

  // If f' is (numerically) constant over the bracket — the linear case —
  // the subtasks decouple and one pass suffices.
  const double slope_lo = f.Derivative(x_lo);
  const double slope_hi = f.Derivative(x_hi);
  double slope = slope_lo;
  if (!AlmostEqual(slope_lo, slope_hi, 1e-12, 1e-15)) {
    // General concave f: solve X = h(X).  h is non-increasing in X because
    // f' is non-increasing, so g(X) = h(X) - X is strictly decreasing and
    // has a unique root in [x_lo, x_hi].
    // Each h evaluation writes the task's own latency span (overwritten by
    // the final pass below, and disjoint from other tasks' spans), which
    // lets the closed-form kernel serve the fixed point too.
    const auto h = [&](double x) {
      const double fx = f.Derivative(x);
      double sum = 0.0;
      if (closed) {
        SolveClosedSpan(span_begin, span_end, fx, prices, latencies->data());
        for (std::size_t s = span_begin; s < span_end; ++s) {
          sum += weight_[s] * (*latencies)[s];
        }
      } else {
        for (SubtaskId sid : info.subtasks) {
          sum += weight_[sid.value()] * SolveSubtask(sid, fx, prices);
        }
      }
      return sum;
    };
    double lo = x_lo, hi = x_hi;
    double x = 0.5 * (lo + hi);
    for (int iter = 0; iter < config_.fixed_point_max_iter; ++iter) {
      x = 0.5 * (lo + hi);
      const double gap = h(x) - x;
      if (std::fabs(gap) <= config_.fixed_point_tol * (1.0 + x) ||
          (hi - lo) <= config_.fixed_point_tol * (1.0 + x)) {
        break;
      }
      if (gap > 0.0) {
        lo = x;
      } else {
        hi = x;
      }
    }
    slope = f.Derivative(x);
  }

  if (closed) {
    SolveClosedSpan(span_begin, span_end, slope, prices, latencies->data());
  } else {
    for (SubtaskId sid : info.subtasks) {
      (*latencies)[sid.value()] = SolveSubtask(sid, slope, prices);
    }
  }
}

void LatencySolver::SolveTask(TaskId task, const PriceVector& prices,
                              Assignment* latencies) const {
  EnsureCacheFresh();
  // Arbitrary prices: a compacted index built for other prices could drop a
  // now-nonzero path, so fall back to the full gather.
  active_csr_valid_ = false;
  SolveTaskFresh(task, prices, latencies);
}

void LatencySolver::PrepareSolve() const {
  EnsureCacheFresh();
  active_csr_valid_ = false;
}

void LatencySolver::PrepareSolve(const PriceVector& prices) const {
  EnsureCacheFresh();
  active_csr_valid_ = false;
  if (!config_.compact_lambda_gather) return;
  const std::size_t n = workload_->subtask_count();
  active_path_offset_.resize(n + 1);
  active_path_index_.clear();
  active_path_index_.reserve(path_index_.size());
  active_path_offset_[0] = 0;
  const double* lambda = prices.lambda.data();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t i = path_offset_[s]; i < path_offset_[s + 1]; ++i) {
      const std::size_t p = path_index_[i];
      if (lambda[p] != 0.0) active_path_index_.push_back(p);
    }
    active_path_offset_[s + 1] = active_path_index_.size();
  }
  active_csr_valid_ = true;
}

void LatencySolver::SolveTaskRange(std::size_t begin, std::size_t end,
                                   const PriceVector& prices,
                                   Assignment* latencies) const {
  const std::vector<TaskInfo>& tasks = workload_->tasks();
  for (std::size_t t = begin; t < end; ++t) {
    SolveTaskFresh(tasks[t].id, prices, latencies);
  }
}

void LatencySolver::SolveTaskList(const std::uint32_t* ids, std::size_t begin,
                                  std::size_t end, const PriceVector& prices,
                                  Assignment* latencies) const {
  const std::vector<TaskInfo>& tasks = workload_->tasks();
  for (std::size_t i = begin; i < end; ++i) {
    SolveTaskFresh(tasks[ids[i]].id, prices, latencies);
  }
}

void LatencySolver::SolveAll(const PriceVector& prices, Assignment* latencies,
                             ThreadPool* pool) const {
  assert(latencies->size() == workload_->subtask_count());
  // Refresh serially before fanning out; workers then only read the cache.
  PrepareSolve();
  StaticParallelFor(pool, workload_->tasks().size(),
                    [&](std::size_t begin, std::size_t end) {
                      SolveTaskRange(begin, end, prices, latencies);
                    });
}

}  // namespace lla
