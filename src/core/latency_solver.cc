#include "core/latency_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math.h"

namespace lla {

LatencySolver::LatencySolver(const Workload& workload,
                             const LatencyModel& model,
                             LatencySolverConfig config)
    : workload_(&workload), model_(&model), config_(config) {
  assert(config.lat_cap_factor >= 1.0);
}

double LatencySolver::LatLo(SubtaskId id) const {
  const SubtaskInfo& sub = workload_->subtask(id);
  const ShareFunction& share = model_->share(id);
  const double cap = workload_->resource(sub.resource).capacity;
  // The subtask may not demand more than the whole available fraction; with
  // corrected models the inverse can dip to/below MinLatency, so guard it.
  const double floor =
      std::max(share.MinLatency() * (1.0 + 1e-12) + 1e-12, 1e-9);
  return std::max(share.LatencyForShare(cap), floor);
}

double LatencySolver::LatHi(SubtaskId id) const {
  const SubtaskInfo& sub = workload_->subtask(id);
  const ShareFunction& share = model_->share(id);
  const double critical_time =
      workload_->task(sub.task).critical_time_ms;
  double hi = sub.min_share > 0.0 ? share.LatencyForShare(sub.min_share)
                                  : config_.lat_cap_factor * critical_time;
  return std::max(hi, LatLo(id));
}

double LatencySolver::SolveSubtask(SubtaskId id, double utility_slope,
                                   const PriceVector& prices) const {
  const SubtaskInfo& sub = workload_->subtask(id);
  const ShareFunction& share = model_->share(id);
  const double lo = LatLo(id);
  const double hi = LatHi(id);
  if (lo >= hi) return lo;

  const double w = workload_->Weight(id, config_.variant);
  const double lambda_sum = prices.PathPriceSum(*workload_, id);
  const double mu = prices.mu[sub.resource.value()];

  // Marginal benefit of shrinking this latency (>= 0 since f' <= 0).
  const double pressure = lambda_sum - w * utility_slope;
  if (mu <= 0.0) {
    // Free resource: shrinking latency costs nothing.  Any positive pressure
    // drives the latency to its floor; zero pressure leaves it indifferent,
    // and we also pick the floor (work-conserving choice).
    return pressure > 0.0 ? lo : hi;
  }
  if (pressure <= 0.0) {
    // No benefit from shrinking (flat utility, no binding paths): release
    // the resource entirely.
    return hi;
  }
  return share.LatencyForNegSlope(pressure / mu, lo, hi);
}

void LatencySolver::SolveTask(TaskId task, const PriceVector& prices,
                              Assignment* latencies) const {
  assert(latencies->size() == workload_->subtask_count());
  const TaskInfo& info = workload_->task(task);
  const UtilityFunction& f = *info.utility;

  // Bracket the coupling value X = sum of weighted latencies.
  double x_lo = 0.0, x_hi = 0.0;
  for (SubtaskId sid : info.subtasks) {
    const double w = workload_->Weight(sid, config_.variant);
    x_lo += w * LatLo(sid);
    x_hi += w * LatHi(sid);
  }

  // If f' is (numerically) constant over the bracket — the linear case —
  // the subtasks decouple and one pass suffices.
  const double slope_lo = f.Derivative(x_lo);
  const double slope_hi = f.Derivative(x_hi);
  double slope = slope_lo;
  if (!AlmostEqual(slope_lo, slope_hi, 1e-12, 1e-15)) {
    // General concave f: solve X = h(X).  h is non-increasing in X because
    // f' is non-increasing, so g(X) = h(X) - X is strictly decreasing and
    // has a unique root in [x_lo, x_hi].
    const auto h = [&](double x) {
      const double fx = f.Derivative(x);
      double sum = 0.0;
      for (SubtaskId sid : info.subtasks) {
        sum += workload_->Weight(sid, config_.variant) *
               SolveSubtask(sid, fx, prices);
      }
      return sum;
    };
    double lo = x_lo, hi = x_hi;
    double x = 0.5 * (lo + hi);
    for (int iter = 0; iter < config_.fixed_point_max_iter; ++iter) {
      x = 0.5 * (lo + hi);
      const double gap = h(x) - x;
      if (std::fabs(gap) <= config_.fixed_point_tol * (1.0 + x) ||
          (hi - lo) <= config_.fixed_point_tol * (1.0 + x)) {
        break;
      }
      if (gap > 0.0) {
        lo = x;
      } else {
        hi = x;
      }
    }
    slope = f.Derivative(x);
  }

  for (SubtaskId sid : info.subtasks) {
    (*latencies)[sid.value()] = SolveSubtask(sid, slope, prices);
  }
}

void LatencySolver::SolveAll(const PriceVector& prices,
                             Assignment* latencies) const {
  assert(latencies->size() == workload_->subtask_count());
  for (const TaskInfo& task : workload_->tasks()) {
    SolveTask(task.id, prices, latencies);
  }
}

}  // namespace lla
