// Dual variables of the LLA optimization (paper Sec. 4).
//
// mu[r] is the price per unit of resource r (multiplier of Eq. 3);
// lambda[p] is the price of path p (multiplier of Eq. 4).  Both are
// non-negative; gradient projection keeps them so.
#pragma once

#include <cstddef>
#include <vector>

#include "model/workload.h"

namespace lla {

struct PriceVector {
  std::vector<double> mu;      ///< indexed by ResourceId
  std::vector<double> lambda;  ///< indexed by PathId

  static PriceVector Zero(const Workload& workload) {
    PriceVector p;
    p.mu.assign(workload.resource_count(), 0.0);
    p.lambda.assign(workload.path_count(), 0.0);
    return p;
  }

  /// Uniform initialization; useful to start the dual iteration away from
  /// the all-zero corner.
  static PriceVector Uniform(const Workload& workload, double mu0,
                             double lambda0) {
    PriceVector p;
    p.mu.assign(workload.resource_count(), mu0);
    p.lambda.assign(workload.path_count(), lambda0);
    return p;
  }

  /// L-infinity distance to another price vector (same workload).
  double MaxAbsDiff(const PriceVector& other) const;

  /// Sum of path prices over all paths containing subtask `s`
  /// (the Lambda_s term of the stationarity condition, Eq. 7).
  double PathPriceSum(const Workload& workload, SubtaskId s) const;
};

}  // namespace lla
