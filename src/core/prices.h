// Dual variables of the LLA optimization (paper Sec. 4).
//
// mu[r] is the price per unit of resource r (multiplier of Eq. 3);
// lambda[p] is the price of path p (multiplier of Eq. 4).  Both are
// non-negative; gradient projection keeps them so.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/workload.h"

namespace lla {

struct PriceVector {
  std::vector<double> mu;      ///< indexed by ResourceId
  std::vector<double> lambda;  ///< indexed by PathId

  static PriceVector Zero(const Workload& workload) {
    PriceVector p;
    p.mu.assign(workload.resource_count(), 0.0);
    p.lambda.assign(workload.path_count(), 0.0);
    return p;
  }

  /// Uniform initialization; useful to start the dual iteration away from
  /// the all-zero corner.
  static PriceVector Uniform(const Workload& workload, double mu0,
                             double lambda0) {
    PriceVector p;
    p.mu.assign(workload.resource_count(), mu0);
    p.lambda.assign(workload.path_count(), lambda0);
    return p;
  }

  /// L-infinity distance to another price vector (same workload).
  double MaxAbsDiff(const PriceVector& other) const;

  /// Sum of path prices over all paths containing subtask `s`
  /// (the Lambda_s term of the stationarity condition, Eq. 7).
  double PathPriceSum(const Workload& workload, SubtaskId s) const;
};

/// Bitwise (memcmp-style) per-entry diff of two price vectors of the same
/// shape: changed[i] = 1 iff the doubles differ in representation.  This is
/// the dirty signal of the active-set engine — exact equality of bits, not
/// of values, so -0.0 vs +0.0 counts as changed (conservative) and a NaN
/// that keeps its payload counts as unchanged (a re-solve with the same NaN
/// inputs reproduces the same outputs).  The output vectors are resized and
/// fully overwritten; reuse them across steps to stay allocation-free.
void DiffPrices(const PriceVector& now, const PriceVector& prev,
                std::vector<std::uint8_t>* mu_changed,
                std::vector<std::uint8_t>* lambda_changed);

}  // namespace lla
