// Accelerated first-order dynamics for the Eq. 8-9 projected dual updates.
//
// The plain gradient-projection price update moves each multiplier by
// gamma * gradient and projects at zero.  Accelerated Distributed Allocation
// (arXiv:2401.15598) and Momentum-based Distributed Resource Scheduling
// (arXiv:2503.06167) show that the same distributed allocation dynamics
// converge in a fraction of the iterations when augmented with a momentum
// term; this file provides those variants as pluggable policies the engine
// composes with any StepSizePolicy (the step sizes gamma stay per-resource /
// per-path and per-iteration, chosen exactly as before):
//
//   plain       mu <- [mu + gamma*g]+                       (g = -slack)
//   heavy-ball  v  <- beta*v + gamma*g;  mu <- [mu + v]+
//   Nesterov    x' <- [y + gamma*g]+;  v <- x' - x;
//               y' <- [x' + beta*v]+                        (published = y)
//
// The dual function here is nonsmooth (the latency allocation is a
// projection onto box constraints) and the iterates are themselves
// projected at zero, so raw momentum can overshoot and oscillate the way
// Figure 5's gamma=10 run does.  Two guards make acceleration safe:
//
//   * Adaptive restart (O'Donoghue-Candes gradient restart, per component):
//     when the momentum direction opposes the current gradient (v*g < 0)
//     the velocity is reset to zero, so built-up momentum can never carry a
//     multiplier uphill for more than one step.  A restart also resets the
//     component's momentum RAMP: the coefficient actually applied is
//     beta_t = min(beta, t / (t + 3)) with t the steps since that
//     component's last restart.  Far from the optimum the iterates travel
//     monotonically, t grows, and the full beta drives the acceleration;
//     near the optimum (a warm restart after a small perturbation) the
//     overshoot/restart cycle pins t — and with it the effective momentum —
//     low, so the dynamics degrade gracefully into the plain update instead
//     of ringing at the sqrt(beta)-per-step envelope fixed-beta momentum
//     settles at.  Without the ramp a beta=0.9 warm restart takes ~12x the
//     plain iteration count on the paper workload; with it, parity.
//   * Zero-clamp: whenever a multiplier projects to exactly 0, its velocity
//     (and Nesterov base iterate) is forced to exactly +0.0.  This keeps
//     the absorbing state of the active-set retirement proof intact: a
//     settled multiplier is (value=0, velocity=0, base=0), from which a
//     computed update with unchanged inputs returns the same state for ANY
//     step size — so retired constraints can skip the arithmetic and the
//     sparse trajectory stays bit-identical to the dense one.
//
// With beta = 0 every variant reduces to the plain update bit-for-bit
// (0*v contributes a signed zero that IEEE addition absorbs), which is the
// regression anchor price_dynamics_test pins by memcmp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/prices.h"
#include "model/workload.h"

namespace lla {

/// Which dual space a component index addresses.
enum class DualSpace { kResource, kPath };

enum class DynamicsKind { kPlain, kHeavyBall, kNesterov };

const char* ToString(DynamicsKind kind);

/// Price-dynamics selection an LlaConfig carries.
struct DynamicsConfig {
  DynamicsKind kind = DynamicsKind::kPlain;
  /// Momentum coefficient beta in [0, 1).  0 is exactly the plain dynamics.
  double momentum = 0.9;
  /// Reset a component's velocity (and momentum ramp) when it opposes the
  /// current gradient.  Disabling this also disables the ramp — pure
  /// fixed-beta momentum, for experiments only: under projection,
  /// unrestarted momentum can diverge the way Figure 5's large fixed steps
  /// do.
  bool adaptive_restart = true;
};

/// Serializable state of a dynamics policy, for engine checkpoints
/// (snapshot v2).  A policy only fills / reads the fields it owns: plain
/// nothing, heavy-ball velocities + ramp phases, Nesterov those + base
/// iterates.  Phases are per-component steps-since-restart counters (small
/// integers stored as doubles so they share the fvec hex round trip).
/// `restarts` is the cumulative adaptive-restart count.
struct DynamicsPolicyState {
  std::vector<double> mu_velocity;
  std::vector<double> lambda_velocity;
  std::vector<double> mu_base;
  std::vector<double> lambda_base;
  std::vector<double> mu_phase;
  std::vector<double> lambda_phase;
  std::uint64_t restarts = 0;
};

/// Result of one per-component dynamics step.
struct DynamicsStep {
  /// The projected published multiplier.
  double value = 0.0;
  /// True when the component's whole state (published value, velocity and,
  /// for Nesterov, the base iterate) is at the absorbing zero — the
  /// precondition for active-set retirement.
  bool settled = false;
};

/// Momentum state of ONE dual component, for holders that own their
/// components individually rather than as workload-wide vectors — the
/// distributed resource agents (DESIGN.md §7.12), where velocity lives per
/// ResourceAgent / per resource inside a ShardAgent.  Zero-initialized state
/// is exactly "fresh momentum": no velocity, no ramp credit, base at the
/// projection boundary.  Whenever the published value is re-seeded from
/// outside the dynamics (repair adoption, snapshot restore without momentum
/// fields), call ReseedAt(value) so the Nesterov base tracks the published
/// point instead of replaying a stale extrapolation.
struct ComponentDynamicsState {
  double velocity = 0.0;
  /// Nesterov base iterate x (unused by plain/heavy-ball).
  double base = 0.0;
  /// Steps since this component's last restart (the ramp clock t).
  double phase = 0.0;

  /// Drops momentum and re-bases at `value`: the state a component has right
  /// after a restart at that published point.
  void ReseedAt(double value) {
    velocity = 0.0;
    base = value;
    phase = 0.0;
  }
  /// Drops momentum without touching the base: the gradient stream became
  /// discontinuous (e.g. a peer's incarnation-stale traffic was rejected),
  /// so built-up velocity must not be replayed into the next gradient.
  void DropMomentum() {
    velocity = 0.0;
    phase = 0.0;
  }
};

/// One projected dual step on a single component, operation-for-operation
/// identical to the corresponding PriceDynamicsPolicy::Step — the vector
/// policies below are implemented ON these functions, so the engine and the
/// distributed agents share one arithmetic definition and beta = 0 heavy-ball
/// stays bit-identical to plain in both deployments.  `restarts` (nullable)
/// is incremented on each adaptive restart.
DynamicsStep StepComponentDynamics(const DynamicsConfig& config,
                                   ComponentDynamicsState* state, double value,
                                   double gamma, double slack,
                                   std::uint64_t* restarts);

/// The heavy-ball arithmetic on raw velocity/phase slots (the vector policy
/// passes &velocity_[i]; the shard agent passes into its per-resource
/// arrays).
DynamicsStep HeavyBallComponentStep(double beta, bool adaptive_restart,
                                    double value, double gamma, double slack,
                                    double* velocity, double* phase,
                                    std::uint64_t* restarts);

/// The Nesterov two-sequence arithmetic on raw velocity/base/phase slots.
DynamicsStep NesterovComponentStep(double beta, bool adaptive_restart,
                                   double value, double gamma, double slack,
                                   double* velocity, double* base,
                                   double* phase, std::uint64_t* restarts);

/// One accelerated variant of the projected dual update.  The policy owns
/// the per-resource mu and per-path lambda velocity vectors; PriceUpdater
/// calls Step() once per computed (non-retired) component, passing the
/// current published (or, under epsilon-quiescence, shadow) value, the step
/// size the StepSizePolicy chose, and the Eq. 8/9 constraint slack.
///
/// Policies are deterministic and single-threaded by contract: the price
/// update runs serially after the fused parallel solve, so velocity state
/// needs no synchronization and results are bit-identical at any engine
/// thread count.
class PriceDynamicsPolicy {
 public:
  virtual ~PriceDynamicsPolicy() = default;

  virtual DynamicsKind kind() const = 0;
  /// The configured momentum coefficient (0 for plain).
  virtual double beta() const { return 0.0; }

  /// Zeroes velocities and sizes state for `workload`; `prices` seeds the
  /// Nesterov base iterate (before any momentum the published vector IS the
  /// base).  Call whenever the engine's dual state is (re)initialized —
  /// Reset, WarmStart, Restore.
  virtual void Reset(const Workload& workload, const PriceVector& prices) = 0;

  /// Applies one projected dual step to component `i` of `space`.  `slack`
  /// follows the Eq. 8/9 sign convention (positive = constraint satisfied),
  /// so the ascent gradient is -slack.
  virtual DynamicsStep Step(DualSpace space, std::size_t i, double value,
                            double gamma, double slack) = 0;

  /// Cumulative adaptive restarts since construction / LoadState.  The
  /// engine differences this across a Step() to report per-iteration
  /// restarts in traces and metrics.
  std::uint64_t total_restarts() const { return total_restarts_; }

  /// Checkpoint hooks, mirroring StepSizePolicy: SaveState writes only the
  /// fields this policy owns; LoadState adopts matching-size vectors and
  /// keeps the Reset() state otherwise (so a foreign-policy or v1 snapshot
  /// restores with fresh momentum instead of misindexed velocities).
  virtual void SaveState(DynamicsPolicyState* out) const;
  virtual void LoadState(const DynamicsPolicyState& in);

  virtual std::string Describe() const = 0;

 protected:
  std::uint64_t total_restarts_ = 0;
};

/// The unaccelerated Eq. 8/9 update, stateless.  Exists so the policy API is
/// total; the engine short-circuits this kind to the original inline
/// arithmetic (bit-identical either way — pinned by price_dynamics_test).
class PlainDynamics final : public PriceDynamicsPolicy {
 public:
  DynamicsKind kind() const override { return DynamicsKind::kPlain; }
  void Reset(const Workload& workload, const PriceVector& prices) override;
  DynamicsStep Step(DualSpace space, std::size_t i, double value,
                    double gamma, double slack) override;
  std::string Describe() const override;
};

/// Polyak heavy-ball: v <- beta*v + gamma*g, value <- [value + v]+.  Under a
/// persistently violated constraint (Figure 7's unschedulable workload) the
/// velocity converges to gamma*g/(1-beta) — bounded, so an unschedulable
/// run grows prices linearly like the plain dynamics and never overflows
/// (the same rationale as AdaptiveStepSize's max_multiplier cap).
class HeavyBallDynamics final : public PriceDynamicsPolicy {
 public:
  HeavyBallDynamics(double beta, bool adaptive_restart);
  DynamicsKind kind() const override { return DynamicsKind::kHeavyBall; }
  double beta() const override { return beta_; }
  void Reset(const Workload& workload, const PriceVector& prices) override;
  DynamicsStep Step(DualSpace space, std::size_t i, double value,
                    double gamma, double slack) override;
  void SaveState(DynamicsPolicyState* out) const override;
  void LoadState(const DynamicsPolicyState& in) override;
  std::string Describe() const override;

 private:
  double beta_;
  bool adaptive_restart_;
  std::vector<double> mu_velocity_;
  std::vector<double> lambda_velocity_;
  std::vector<double> mu_phase_;
  std::vector<double> lambda_phase_;
};

/// Nesterov acceleration in its projected two-sequence form.  The PUBLISHED
/// multiplier is the extrapolated point y (the next solve evaluates the
/// gradient there, which is what distinguishes Nesterov from heavy-ball);
/// the base iterate x lives inside the policy.
class NesterovDynamics final : public PriceDynamicsPolicy {
 public:
  NesterovDynamics(double beta, bool adaptive_restart);
  DynamicsKind kind() const override { return DynamicsKind::kNesterov; }
  double beta() const override { return beta_; }
  void Reset(const Workload& workload, const PriceVector& prices) override;
  DynamicsStep Step(DualSpace space, std::size_t i, double value,
                    double gamma, double slack) override;
  void SaveState(DynamicsPolicyState* out) const override;
  void LoadState(const DynamicsPolicyState& in) override;
  std::string Describe() const override;

 private:
  double beta_;
  bool adaptive_restart_;
  std::vector<double> mu_velocity_;
  std::vector<double> lambda_velocity_;
  std::vector<double> mu_base_;
  std::vector<double> lambda_base_;
  std::vector<double> mu_phase_;
  std::vector<double> lambda_phase_;
};

/// Builds the dynamics policy a DynamicsConfig describes.
std::unique_ptr<PriceDynamicsPolicy> MakeDynamicsPolicy(
    const DynamicsConfig& config);

}  // namespace lla
