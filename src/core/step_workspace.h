// StepWorkspace: the fused per-iteration evaluation cache of the LLA core.
//
// One LLA step needs the same handful of aggregates many times over —
// resource share sums (congestion detection, Eq. 8 price update,
// feasibility, complementary slackness), path latencies (Eq. 9, feasibility,
// complementary slackness) and the task utility aggregates (iteration stats,
// convergence window).  Before this layer the engine recomputed each of them
// from the workload on every use, four-plus O(|subtasks|)+O(|paths|) sweeps
// per iteration.  FillStepWorkspace computes everything exactly once per
// step into flat arrays owned by the caller; every downstream consumer reads
// the arrays.  The buffers are reused across steps, so the steady-state
// iteration performs no allocation, and all values are bit-identical to the
// scalar oracles in model/evaluation.h for any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "core/latency_solver.h"
#include "core/prices.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

struct StepWorkspace {
  std::vector<double> resource_share_sums;     ///< by ResourceId (Eq. 3 lhs)
  std::vector<double> path_latencies;          ///< by PathId (Eq. 4 lhs)
  std::vector<double> task_weighted_latencies; ///< X_i by TaskId
  std::vector<double> task_utilities;          ///< f_i(X_i) by TaskId
  std::vector<bool> resource_congested;        ///< share sum > B_r
  double total_utility = 0.0;
  FeasibilitySummary feasibility;

  /// Sizes every buffer for `workload` (idempotent; call once up front so
  /// the per-step fills never allocate).
  void Resize(const Workload& workload);
};

/// Fills every array and scalar of `workspace` from `latencies`: the fused
/// replacement for the per-consumer sweeps.  The resource/path/task loops
/// split across `pool` when given; the utility total and feasibility maxima
/// are reduced serially in index order so results do not depend on the
/// thread count.
void FillStepWorkspace(const Workload& workload, const LatencyModel& model,
                       const Assignment& latencies, UtilityVariant variant,
                       double feasibility_tol, ThreadPool* pool,
                       StepWorkspace* workspace);

/// The whole compute half of one LLA step — latency allocation at `prices`
/// into `latencies`, then every workspace array — as a single fork-join
/// region.  With a pool this costs ONE worker wake-up per step (the solve
/// and evaluation sweeps are separated by an in-region SpinBarrier and the
/// three evaluation sweeps are independent), instead of the four
/// dispatch/join rounds of SolveAll + FillStepWorkspace.  Each internal
/// sweep chunks by its own deterministic participant count (grain cutoff on
/// its item count), and the reductions stay serial, so results are
/// bit-identical to the unfused path at any thread count.  Runs serially
/// when `pool` is null or every sweep falls under the grain cutoff.
void SolveAndFillStepWorkspace(const LatencySolver& solver,
                               const Workload& workload,
                               const LatencyModel& model,
                               const PriceVector& prices,
                               UtilityVariant variant, double feasibility_tol,
                               ThreadPool* pool, Assignment* latencies,
                               StepWorkspace* workspace);

/// Dirty-tracking state of the incremental (active-set) stepping mode.
///
/// The sparse step keys every skip on exact bitwise equality: a task whose
/// subtasks see bit-identical mu and lambda re-solves to bit-identical
/// latencies, so its persisted latency/workspace entries ARE the re-solve's
/// result; a resource/path whose member latencies are all bit-unchanged
/// re-aggregates to the same sum.  Dirty items are recomputed in full with
/// the dense arithmetic (never delta-updated), which makes the incremental
/// trajectory bit-for-bit equal to the dense one at any thread count.
///
/// Invalidate() (or a LatencyModel::revision() move, or a shape change)
/// forces a dense re-prime on the next step — required whenever the model is
/// mutated in place (see LlaEngine::InvalidateModelCache).
struct ActiveSetState {
  bool primed = false;
  std::uint64_t model_revision = 0;

  /// Inputs/outputs the current workspace and latency buffers were computed
  /// from (the baseline the next step diffs against).
  PriceVector solve_prices;
  Assignment prev_latencies;

  /// Reverse index: resource -> distinct tasks with a subtask on it (CSR,
  /// ascending task ids).  Built at prime time.
  std::vector<std::size_t> res_task_offset;
  std::vector<std::uint32_t> res_task_index;

  /// Per-step scratch, reused (allocation-free in steady state).
  std::vector<std::uint8_t> mu_changed;
  std::vector<std::uint8_t> lambda_changed;
  std::vector<std::uint8_t> task_dirty;
  std::vector<std::uint8_t> resource_dirty;
  std::vector<std::uint8_t> path_dirty;
  std::vector<std::uint32_t> dirty_tasks;
  std::vector<std::uint32_t> dirty_resources;
  std::vector<std::uint32_t> dirty_paths;

  void Invalidate() { primed = false; }
};

/// What one incremental step actually computed (the skipped-work /
/// active-set observability signal; dense mode reports the full counts).
struct ActiveStepWork {
  std::size_t tasks_solved = 0;
  std::size_t subtasks_solved = 0;
  std::size_t resources_refreshed = 0;
  std::size_t paths_refreshed = 0;
  bool primed = false;  ///< this step ran the dense prime
};

/// SolveAndFillStepWorkspace with dirty tracking: only tasks whose prices
/// changed (bitwise, vs. state->solve_prices) are re-solved, and only
/// resources/paths/tasks with a bit-changed member latency are
/// re-aggregated; everything else reuses the persisted workspace entries.
/// Results are bit-identical to SolveAndFillStepWorkspace at any thread
/// count (see ActiveSetState).  The first call (or any call after
/// Invalidate(), a model revision move, or a shape change) primes densely.
/// `latencies` and `workspace` must be the same objects across calls.
ActiveStepWork ActiveSolveAndFillStepWorkspace(
    const LatencySolver& solver, const Workload& workload,
    const LatencyModel& model, const PriceVector& prices,
    UtilityVariant variant, double feasibility_tol, ThreadPool* pool,
    Assignment* latencies, StepWorkspace* workspace, ActiveSetState* state);

}  // namespace lla
