#include "core/price_dynamics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace lla {

const char* ToString(DynamicsKind kind) {
  switch (kind) {
    case DynamicsKind::kPlain:
      return "plain";
    case DynamicsKind::kHeavyBall:
      return "heavy-ball";
    case DynamicsKind::kNesterov:
      return "nesterov";
  }
  return "?";
}

void PriceDynamicsPolicy::SaveState(DynamicsPolicyState* out) const {
  out->restarts = total_restarts_;
}

void PriceDynamicsPolicy::LoadState(const DynamicsPolicyState& in) {
  total_restarts_ = in.restarts;
}

// ---------------------------------------------------------------------------
// Per-component steps (shared by the vector policies and the distributed
// agents, DESIGN.md §7.12)

DynamicsStep HeavyBallComponentStep(double beta, bool adaptive_restart,
                                    double value, double gamma, double slack,
                                    double* velocity, double* phase,
                                    std::uint64_t* restarts) {
  double v = *velocity;
  double t = *phase;
  // Ascent gradient of the dual in this component (Eq. 8/9 move the price
  // up while its constraint is violated, i.e. while slack < 0).
  const double g = -slack;
  if (adaptive_restart && v * g < 0.0) {
    // Momentum points against the current gradient: built-up velocity would
    // carry the multiplier uphill.  Drop it and restart the ramp (gradient
    // restart).
    v = 0.0;
    t = 0.0;
    if (restarts != nullptr) ++*restarts;
  }
  // The ramp (see header): momentum re-earns its coefficient after every
  // restart, so a component in an overshoot/restart cycle near the optimum
  // runs nearly plain while a long monotone crawl gets the full beta.
  const double beta_t =
      adaptive_restart ? std::min(beta, t / (t + 3.0)) : beta;
  v = beta_t * v + gamma * g;
  const double proposed = std::max(0.0, value + v);
  // Zero-clamp: a multiplier parked at the projection boundary carries no
  // velocity and no ramp credit.  This is what makes (0, 0, 0) an absorbing
  // state the active-set retirement proof can rely on (see header).
  if (proposed == 0.0) {
    v = 0.0;
    t = 0.0;
  } else {
    t += 1.0;
  }
  *velocity = v;
  *phase = t;
  // Unlike the plain update, a momentum step can project to 0 while the
  // constraint is still violated (leftover negative velocity outweighs a
  // positive gradient for one step).  Such a zero is NOT absorbing — the
  // next computed step lifts off it — so `settled` additionally requires
  // g <= 0: only then does a recompute from (0, 0) with unchanged inputs
  // return (0, 0) for every step size, which is what retirement skips rely
  // on.
  return {proposed, proposed == 0.0 && g <= 0.0};
}

DynamicsStep NesterovComponentStep(double beta, bool adaptive_restart,
                                   double value, double gamma, double slack,
                                   double* velocity, double* base,
                                   double* phase, std::uint64_t* restarts) {
  // `value` is the extrapolated point y the last step published; the solve
  // that produced `slack` evaluated the gradient THERE, so this is the real
  // Nesterov scheme, not a lookahead approximation.
  const double g = -slack;
  double t = *phase;
  const double x_new = std::max(0.0, value + gamma * g);
  double v = x_new - *base;
  if (x_new == 0.0) v = 0.0;  // zero-clamp, as in heavy-ball
  if (adaptive_restart && v * g < 0.0) {
    // The freshly realized step opposes the gradient at the extrapolated
    // point: overshoot.  Publish the un-extrapolated iterate and restart
    // the ramp.
    v = 0.0;
    t = 0.0;
    if (restarts != nullptr) ++*restarts;
  }
  // Same ramp as heavy-ball: extrapolation re-earns its coefficient after
  // every restart.
  const double beta_t =
      adaptive_restart ? std::min(beta, t / (t + 3.0)) : beta;
  const double y_new = std::max(0.0, x_new + beta_t * v);
  *base = x_new;
  *velocity = v;
  if (x_new == 0.0) {
    t = 0.0;  // zero-clamp the ramp, as for the velocity
  } else {
    t += 1.0;
  }
  *phase = t;
  // x_new == 0 forces v == 0 and hence y_new == 0: the whole component
  // state is at zero.  As in heavy-ball, the zero is only absorbing (and
  // hence retirable) when the gradient also points down or is flat.
  return {y_new, x_new == 0.0 && g <= 0.0};
}

DynamicsStep StepComponentDynamics(const DynamicsConfig& config,
                                   ComponentDynamicsState* state, double value,
                                   double gamma, double slack,
                                   std::uint64_t* restarts) {
  switch (config.kind) {
    case DynamicsKind::kPlain:
      break;
    case DynamicsKind::kHeavyBall:
      return HeavyBallComponentStep(config.momentum, config.adaptive_restart,
                                    value, gamma, slack, &state->velocity,
                                    &state->phase, restarts);
    case DynamicsKind::kNesterov:
      return NesterovComponentStep(config.momentum, config.adaptive_restart,
                                   value, gamma, slack, &state->velocity,
                                   &state->base, &state->phase, restarts);
  }
  const double proposed = std::max(0.0, value - gamma * slack);
  return {proposed, proposed == 0.0};
}

// ---------------------------------------------------------------------------
// Plain

void PlainDynamics::Reset(const Workload& /*workload*/,
                          const PriceVector& /*prices*/) {}

DynamicsStep PlainDynamics::Step(DualSpace /*space*/, std::size_t /*i*/,
                                 double value, double gamma, double slack) {
  const double proposed = std::max(0.0, value - gamma * slack);
  return {proposed, proposed == 0.0};
}

std::string PlainDynamics::Describe() const { return "plain"; }

// ---------------------------------------------------------------------------
// Heavy-ball

HeavyBallDynamics::HeavyBallDynamics(double beta, bool adaptive_restart)
    : beta_(beta), adaptive_restart_(adaptive_restart) {
  assert(beta >= 0.0 && beta < 1.0);
}

void HeavyBallDynamics::Reset(const Workload& workload,
                              const PriceVector& /*prices*/) {
  mu_velocity_.assign(workload.resource_count(), 0.0);
  lambda_velocity_.assign(workload.path_count(), 0.0);
  mu_phase_.assign(workload.resource_count(), 0.0);
  lambda_phase_.assign(workload.path_count(), 0.0);
}

DynamicsStep HeavyBallDynamics::Step(DualSpace space, std::size_t i,
                                     double value, double gamma,
                                     double slack) {
  std::vector<double>& velocity =
      space == DualSpace::kResource ? mu_velocity_ : lambda_velocity_;
  std::vector<double>& phase =
      space == DualSpace::kResource ? mu_phase_ : lambda_phase_;
  assert(i < velocity.size());
  return HeavyBallComponentStep(beta_, adaptive_restart_, value, gamma, slack,
                                &velocity[i], &phase[i], &total_restarts_);
}

void HeavyBallDynamics::SaveState(DynamicsPolicyState* out) const {
  PriceDynamicsPolicy::SaveState(out);
  out->mu_velocity = mu_velocity_;
  out->lambda_velocity = lambda_velocity_;
  out->mu_phase = mu_phase_;
  out->lambda_phase = lambda_phase_;
}

void HeavyBallDynamics::LoadState(const DynamicsPolicyState& in) {
  PriceDynamicsPolicy::LoadState(in);
  if (in.mu_velocity.size() == mu_velocity_.size() &&
      in.lambda_velocity.size() == lambda_velocity_.size()) {
    mu_velocity_ = in.mu_velocity;
    lambda_velocity_ = in.lambda_velocity;
  }
  if (in.mu_phase.size() == mu_phase_.size() &&
      in.lambda_phase.size() == lambda_phase_.size()) {
    mu_phase_ = in.mu_phase;
    lambda_phase_ = in.lambda_phase;
  }
}

std::string HeavyBallDynamics::Describe() const {
  std::ostringstream os;
  os << "heavy-ball(beta=" << beta_
     << (adaptive_restart_ ? ", restart" : ", no-restart") << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Nesterov

NesterovDynamics::NesterovDynamics(double beta, bool adaptive_restart)
    : beta_(beta), adaptive_restart_(adaptive_restart) {
  assert(beta >= 0.0 && beta < 1.0);
}

void NesterovDynamics::Reset(const Workload& workload,
                             const PriceVector& prices) {
  assert(prices.mu.size() == workload.resource_count());
  assert(prices.lambda.size() == workload.path_count());
  mu_velocity_.assign(workload.resource_count(), 0.0);
  lambda_velocity_.assign(workload.path_count(), 0.0);
  mu_phase_.assign(workload.resource_count(), 0.0);
  lambda_phase_.assign(workload.path_count(), 0.0);
  // Before any momentum the published vector is the base iterate.
  mu_base_ = prices.mu;
  lambda_base_ = prices.lambda;
}

DynamicsStep NesterovDynamics::Step(DualSpace space, std::size_t i,
                                    double value, double gamma,
                                    double slack) {
  std::vector<double>& velocity =
      space == DualSpace::kResource ? mu_velocity_ : lambda_velocity_;
  std::vector<double>& base =
      space == DualSpace::kResource ? mu_base_ : lambda_base_;
  std::vector<double>& phase =
      space == DualSpace::kResource ? mu_phase_ : lambda_phase_;
  assert(i < velocity.size());
  return NesterovComponentStep(beta_, adaptive_restart_, value, gamma, slack,
                               &velocity[i], &base[i], &phase[i],
                               &total_restarts_);
}

void NesterovDynamics::SaveState(DynamicsPolicyState* out) const {
  PriceDynamicsPolicy::SaveState(out);
  out->mu_velocity = mu_velocity_;
  out->lambda_velocity = lambda_velocity_;
  out->mu_base = mu_base_;
  out->lambda_base = lambda_base_;
  out->mu_phase = mu_phase_;
  out->lambda_phase = lambda_phase_;
}

void NesterovDynamics::LoadState(const DynamicsPolicyState& in) {
  PriceDynamicsPolicy::LoadState(in);
  if (in.mu_velocity.size() == mu_velocity_.size() &&
      in.lambda_velocity.size() == lambda_velocity_.size() &&
      in.mu_base.size() == mu_base_.size() &&
      in.lambda_base.size() == lambda_base_.size()) {
    mu_velocity_ = in.mu_velocity;
    lambda_velocity_ = in.lambda_velocity;
    mu_base_ = in.mu_base;
    lambda_base_ = in.lambda_base;
  }
  if (in.mu_phase.size() == mu_phase_.size() &&
      in.lambda_phase.size() == lambda_phase_.size()) {
    mu_phase_ = in.mu_phase;
    lambda_phase_ = in.lambda_phase;
  }
}

std::string NesterovDynamics::Describe() const {
  std::ostringstream os;
  os << "nesterov(beta=" << beta_
     << (adaptive_restart_ ? ", restart" : ", no-restart") << ")";
  return os.str();
}

std::unique_ptr<PriceDynamicsPolicy> MakeDynamicsPolicy(
    const DynamicsConfig& config) {
  switch (config.kind) {
    case DynamicsKind::kPlain:
      return std::make_unique<PlainDynamics>();
    case DynamicsKind::kHeavyBall:
      return std::make_unique<HeavyBallDynamics>(config.momentum,
                                                 config.adaptive_restart);
    case DynamicsKind::kNesterov:
      return std::make_unique<NesterovDynamics>(config.momentum,
                                                config.adaptive_restart);
  }
  return std::make_unique<PlainDynamics>();
}

}  // namespace lla
