#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lla {

std::unique_ptr<StepSizePolicy> MakeStepPolicy(const LlaConfig& config) {
  switch (config.step_policy) {
    case StepPolicyKind::kFixed:
      return std::make_unique<FixedStepSize>(config.gamma0);
    case StepPolicyKind::kAdaptive:
      return std::make_unique<AdaptiveStepSize>(
          config.gamma0, config.adaptive_max_multiplier);
    case StepPolicyKind::kDiminishing:
      return std::make_unique<DiminishingStepSize>(config.gamma0,
                                                   config.diminishing_tau);
  }
  return std::make_unique<FixedStepSize>(config.gamma0);
}

LlaEngine::LlaEngine(const Workload& workload, const LatencyModel& model,
                     LlaConfig config)
    : workload_(&workload),
      model_(&model),
      config_(config),
      solver_(workload, model, config.solver),
      updater_(workload, model),
      step_policy_(MakeStepPolicy(config)),
      // Plain dynamics short-circuit to the original inline arithmetic (a
      // null policy), so default configurations pay nothing for the layer.
      dynamics_(config.dynamics.kind == DynamicsKind::kPlain
                    ? nullptr
                    : MakeDynamicsPolicy(config.dynamics)) {
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads,
                                         config_.parallel);
  }
  assert(config_.active_set.epsilon_quiescence >= 0.0 &&
         config_.active_set.epsilon_quiescence < 1.0);
  assert(config_.active_set.quiescence_epochs >= 1);
  assert(config_.dynamics.momentum >= 0.0 && config_.dynamics.momentum < 1.0);
  if (config_.metrics != nullptr) {
    steps_counter_ = config_.metrics->GetCounter("engine.steps");
    solve_timer_ = config_.metrics->GetTimer("engine.solve");
    price_timer_ = config_.metrics->GetTimer("engine.price_update");
    if (config_.active_set.enabled) {
      active_tasks_solved_ =
          config_.metrics->GetCounter("engine.active.tasks_solved");
      active_subtasks_solved_ =
          config_.metrics->GetCounter("engine.active.subtasks_solved");
      active_resources_refreshed_ =
          config_.metrics->GetCounter("engine.active.resources_refreshed");
      active_paths_refreshed_ =
          config_.metrics->GetCounter("engine.active.paths_refreshed");
      active_primes_ = config_.metrics->GetCounter("engine.active.primes");
      active_mu_skipped_ =
          config_.metrics->GetCounter("engine.active.mu_skipped");
      active_lambda_skipped_ =
          config_.metrics->GetCounter("engine.active.lambda_skipped");
      active_frozen_ = config_.metrics->GetCounter("engine.active.frozen");
    }
    if (dynamics_ != nullptr) {
      momentum_restarts_counter_ =
          config_.metrics->GetCounter("engine.momentum.restarts");
    }
    reprime_tasks_counter_ =
        config_.metrics->GetCounter("engine.reprime.tasks");
    reprime_resources_counter_ =
        config_.metrics->GetCounter("engine.reprime.resources");
  }
  workspace_.Resize(workload);
  Reset();
}

void LlaEngine::Reset() {
  prices_ = PriceVector::Uniform(*workload_, config_.initial_mu,
                                 config_.initial_lambda);
  latencies_.assign(workload_->subtask_count(), 0.0);
  step_policy_->Reset(*workload_);
  if (dynamics_ != nullptr) dynamics_->Reset(*workload_, prices_);
  iteration_ = 0;
  converged_ = false;
  total_subtask_solves_ = 0;
  recent_utilities_.clear();
  history_.clear();
  // Start from the price-greedy allocation so latencies_ is always valid.
  // In active-set mode this is the dense prime: it also fills the workspace
  // and snapshots the inputs, so the first Step() is already incremental
  // (its solve at the unchanged prices reuses everything).
  PrimeOrSolve();
}

void LlaEngine::PrimeOrSolve() {
  active_state_.Invalidate();
  price_state_.Invalidate();
  if (config_.active_set.enabled) {
    const ActiveStepWork work = ActiveSolveAndFillStepWorkspace(
        solver_, *workload_, *model_, prices_, config_.solver.variant,
        config_.convergence.feasibility_tol, pool_.get(), &latencies_,
        &workspace_, &active_state_);
    (void)work;
    if (active_primes_ != nullptr) active_primes_->Increment();
  } else {
    solver_.SolveAll(prices_, &latencies_, pool_.get());
  }
}

void LlaEngine::ClearConvergenceWindow() {
  recent_utilities_.clear();
  converged_ = false;
}

void LlaEngine::InvalidateModelCache() {
  solver_.InvalidateModelCache();
  // In-place share mutations change solve/aggregation results without a
  // revision bump, so every dirty-tracking baseline is stale: force a dense
  // re-prime and a fully computed price update on the next Step().
  active_state_.Invalidate();
  price_state_.Invalidate();
}

void LlaEngine::WarmStart(const PriceVector& prices) {
  if (prices.mu.size() != workload_->resource_count() ||
      prices.lambda.size() != workload_->path_count()) {
    // A misshapen warm start would silently assign every multiplier to the
    // wrong resource/path (the vectors are plain index spaces).  That is
    // always a caller bug — after a structural transform the caller must
    // remap (WarmStartStructural does it internally) — so fail loudly in
    // every build mode rather than corrupting the dual state.
    std::fprintf(stderr,
                 "LlaEngine::WarmStart: price vector shape (%zu mu, %zu "
                 "lambda) does not match the workload (%zu resources, %zu "
                 "paths); use WarmStartStructural after a structural "
                 "transform\n",
                 prices.mu.size(), prices.lambda.size(),
                 workload_->resource_count(), workload_->path_count());
    std::abort();
  }
  prices_ = prices;
  for (double& mu : prices_.mu) mu = std::max(0.0, mu);
  for (double& lambda : prices_.lambda) lambda = std::max(0.0, lambda);
  step_policy_->Reset(*workload_);
  if (dynamics_ != nullptr) dynamics_->Reset(*workload_, prices_);
  ClearConvergenceWindow();
  total_subtask_solves_ = 0;
  // Same prime as Reset: warm-started engines (coordinator what-ifs,
  // admission probes) inherit the active set through the warm prices — the
  // first Step() diffs against this baseline instead of starting dense.
  PrimeOrSolve();
}

Status LlaEngine::WarmStartStructural(const Workload& old_workload,
                                      const PriceVector& old_prices,
                                      const StructuralChange& change) {
  const Workload& now = *workload_;
  if (old_prices.mu.size() != old_workload.resource_count() ||
      old_prices.lambda.size() != old_workload.path_count()) {
    return Status::Error(
        "WarmStartStructural: price vector shape does not match the old "
        "workload");
  }
  if (old_workload.resource_count() != now.resource_count()) {
    return Status::Error(
        "WarmStartStructural: resource sets differ (structural changes keep "
        "the resource set fixed)");
  }

  PriceVector mapped;
  // Resources the changed task touches, the seed of the dirty closure.
  std::vector<std::uint8_t> dirty_resource(now.resource_count(), 0);
  if (change.kind == StructuralChange::Kind::kTaskLeave) {
    if (!change.task.valid() ||
        change.task.value() >= old_workload.task_count()) {
      return Status::Error(
          "WarmStartStructural: departed task id is not in the old workload");
    }
    if (old_workload.task_count() != now.task_count() + 1) {
      return Status::Error(
          "WarmStartStructural: workloads do not differ by exactly the "
          "departed task");
    }
    mapped = MapPricesWithoutTask(old_workload, old_prices, change.task);
    if (mapped.lambda.size() != now.path_count()) {
      return Status::Error(
          "WarmStartStructural: surviving path count does not match this "
          "workload");
    }
    for (SubtaskId sid : old_workload.task(change.task).subtasks) {
      dirty_resource[old_workload.subtask(sid).resource.value()] = 1;
    }
  } else {
    if (!change.task.valid() || change.task.value() >= now.task_count()) {
      return Status::Error(
          "WarmStartStructural: joined task id is not in this workload");
    }
    if (now.task_count() != old_workload.task_count() + 1) {
      return Status::Error(
          "WarmStartStructural: workloads do not differ by exactly the "
          "joined task");
    }
    if (old_prices.lambda.size() + now.task(change.task).paths.size() !=
        now.path_count()) {
      return Status::Error(
          "WarmStartStructural: old path count does not match this workload "
          "minus the joined task");
    }
    mapped = MapPricesWithTask(now, old_prices, change.task,
                               config_.initial_lambda);
    for (SubtaskId sid : now.task(change.task).subtasks) {
      dirty_resource[now.subtask(sid).resource.value()] = 1;
    }
  }

  // Transitive closure of the seed over the task<->resource sharing graph
  // of the NEW workload: a task touching a dirty resource re-solves, which
  // moves the share sums of every OTHER resource it uses, so those become
  // dirty too.  The surviving operating point shifts exactly on this
  // closure; everything outside it is provably unaffected by the event.
  std::vector<std::uint8_t> dirty_task(now.task_count(), 0);
  bool grew = true;
  while (grew) {
    grew = false;
    for (const TaskInfo& task : now.tasks()) {
      if (dirty_task[task.id.value()]) continue;
      bool touches = false;
      for (SubtaskId sid : task.subtasks) {
        if (dirty_resource[now.subtask(sid).resource.value()]) {
          touches = true;
          break;
        }
      }
      if (!touches) continue;
      dirty_task[task.id.value()] = 1;
      for (SubtaskId sid : task.subtasks) {
        std::uint8_t& d = dirty_resource[now.subtask(sid).resource.value()];
        if (d == 0) {
          d = 1;
          grew = true;
        }
      }
    }
  }

  // Selective re-prime.  After a LEAVE the mapped mu on closure resources
  // is upper-biased (the departed demand no longer pushes against B_r), and
  // Eq. 8 decays an inflated mu only at gamma * slack <= gamma * B_r per
  // step while the complementary-slackness convergence test blocks until it
  // reaches ~0 — the measured 8x-worse-than-cold regression.  Re-seeding
  // the closure's mu at initial_mu lets congestion-driven rises (fast:
  // adaptive step doubling) rediscover the right level, exactly as a cold
  // start would, while non-closure prices stay bit-identical so their tasks
  // never re-solve.  A JOIN is the fast direction: added demand RAISES mu,
  // so the mapped values are kept as the lower bound they are.  lambda is
  // kept in both directions (near-zero at any interior optimum; a stale
  // positive lambda rides the same fast-rise dynamics).
  std::size_t reprime_resources = 0;
  std::size_t reprime_tasks = 0;
  for (std::size_t t = 0; t < dirty_task.size(); ++t) {
    reprime_tasks += dirty_task[t];
  }
  for (std::size_t r = 0; r < dirty_resource.size(); ++r) {
    if (dirty_resource[r] == 0) continue;
    ++reprime_resources;
    if (change.kind == StructuralChange::Kind::kTaskLeave) {
      mapped.mu[r] = config_.initial_mu;
    }
  }
  last_reprime_tasks_ = reprime_tasks;
  last_reprime_resources_ = reprime_resources;
  if (reprime_tasks_counter_ != nullptr) {
    reprime_tasks_counter_->Increment(reprime_tasks);
    reprime_resources_counter_->Increment(reprime_resources);
  }

  WarmStart(mapped);
  return Status{};
}

StateSnapshot LlaEngine::Checkpoint() const {
  StateSnapshot snap;
  snap.resource_count = workload_->resource_count();
  snap.path_count = workload_->path_count();
  snap.subtask_count = workload_->subtask_count();
  snap.task_count = workload_->task_count();
  snap.iteration = iteration_;
  snap.converged = converged_;
  snap.total_subtask_solves = total_subtask_solves_;
  snap.mu = prices_.mu;
  snap.lambda = prices_.lambda;
  StepPolicyState policy_state;
  step_policy_->SaveState(&policy_state);
  snap.resource_step_multiplier = std::move(policy_state.resource_multiplier);
  snap.path_step_multiplier = std::move(policy_state.path_multiplier);
  snap.step_iteration = policy_state.iteration;
  snap.recent_utilities.assign(recent_utilities_.begin(),
                               recent_utilities_.end());
  if (dynamics_ != nullptr) {
    // Snapshot v2 payload: the momentum state.  Plain engines leave these
    // empty, so their snapshots stay byte-compatible with what v1 loaders
    // reconstructed.
    DynamicsPolicyState dynamics_state;
    dynamics_->SaveState(&dynamics_state);
    snap.mu_velocity = std::move(dynamics_state.mu_velocity);
    snap.lambda_velocity = std::move(dynamics_state.lambda_velocity);
    snap.mu_base = std::move(dynamics_state.mu_base);
    snap.lambda_base = std::move(dynamics_state.lambda_base);
    snap.mu_phase = std::move(dynamics_state.mu_phase);
    snap.lambda_phase = std::move(dynamics_state.lambda_phase);
    snap.momentum_restarts = dynamics_state.restarts;
  }
  snap.price_state_primed = price_state_.primed;
  if (price_state_.primed) {
    snap.mu_settled = price_state_.mu_settled;
    snap.lambda_settled = price_state_.lambda_settled;
    snap.mu_zero_epochs = price_state_.mu_zero_epochs;
    snap.lambda_zero_epochs = price_state_.lambda_zero_epochs;
    snap.mu_stable_epochs = price_state_.mu_stable_epochs;
    snap.lambda_stable_epochs = price_state_.lambda_stable_epochs;
    snap.shadow_mu = price_state_.shadow_mu;
    snap.shadow_lambda = price_state_.shadow_lambda;
    snap.prev_share_sums = price_state_.prev_share_sums;
    snap.prev_path_latencies = price_state_.prev_path_latencies;
  }
  return snap;
}

Status LlaEngine::Restore(const StateSnapshot& snapshot) {
  StateSnapshot copy = snapshot;
  return RestoreImpl(std::move(copy));
}

Status LlaEngine::Restore(const SnapshotView& view) {
  // Shape-check from the header scalars before decoding any section, so a
  // foreign snapshot is refused without touching the payload (or the
  // engine).
  if (view.resource_count != workload_->resource_count() ||
      view.path_count != workload_->path_count() ||
      view.subtask_count != workload_->subtask_count() ||
      view.task_count != workload_->task_count()) {
    return Status::Error(
        "Restore: snapshot shape does not match this workload");
  }
  return RestoreImpl(MaterializeSnapshot(view));
}

Status LlaEngine::RestoreImpl(StateSnapshot&& snapshot) {
  if (snapshot.resource_count != workload_->resource_count() ||
      snapshot.path_count != workload_->path_count() ||
      snapshot.subtask_count != workload_->subtask_count() ||
      snapshot.task_count != workload_->task_count()) {
    return Status::Error(
        "Restore: snapshot shape does not match this workload");
  }
  if (snapshot.mu.size() != workload_->resource_count() ||
      snapshot.lambda.size() != workload_->path_count()) {
    return Status::Error("Restore: snapshot price vectors are misshapen");
  }
  {
    // Dynamics state is optional (absent in v1 snapshots and in snapshots
    // taken by plain engines), but when present it must match the shape.
    const std::size_t R = workload_->resource_count();
    const std::size_t P = workload_->path_count();
    const auto misshapen = [](const std::vector<double>& v, std::size_t n) {
      return !v.empty() && v.size() != n;
    };
    if (misshapen(snapshot.mu_velocity, R) ||
        misshapen(snapshot.lambda_velocity, P) ||
        misshapen(snapshot.mu_base, R) ||
        misshapen(snapshot.lambda_base, P) ||
        misshapen(snapshot.mu_phase, R) ||
        misshapen(snapshot.lambda_phase, P)) {
      return Status::Error("Restore: snapshot dynamics state is misshapen");
    }
  }
  if (snapshot.price_state_primed) {
    // UpdateActive indexes every primed vector unchecked; refuse a corrupt
    // snapshot up front rather than reading out of bounds later.
    const std::size_t R = workload_->resource_count();
    const std::size_t P = workload_->path_count();
    if (snapshot.mu_settled.size() != R || snapshot.lambda_settled.size() != P ||
        snapshot.mu_zero_epochs.size() != R ||
        snapshot.lambda_zero_epochs.size() != P ||
        snapshot.mu_stable_epochs.size() != R ||
        snapshot.lambda_stable_epochs.size() != P ||
        snapshot.shadow_mu.size() != R || snapshot.shadow_lambda.size() != P ||
        snapshot.prev_share_sums.size() != R ||
        snapshot.prev_path_latencies.size() != P) {
      return Status::Error(
          "Restore: snapshot active-set price state is misshapen");
    }
  }
  prices_.mu = std::move(snapshot.mu);
  prices_.lambda = std::move(snapshot.lambda);
  // Reset sizes the policy's vectors for this workload; LoadState then
  // overwrites the saved fields (and ignores a foreign-policy snapshot —
  // e.g. a fixed-policy checkpoint restored into an adaptive engine simply
  // keeps the reset state).
  step_policy_->Reset(*workload_);
  StepPolicyState policy_state;
  policy_state.resource_multiplier = std::move(snapshot.resource_step_multiplier);
  policy_state.path_multiplier = std::move(snapshot.path_step_multiplier);
  policy_state.iteration = snapshot.step_iteration;
  step_policy_->LoadState(policy_state);
  if (dynamics_ != nullptr) {
    // Reset sizes (and, for Nesterov, seeds the base iterate from the
    // restored prices); LoadState then adopts any matching-size saved
    // vectors.  A v1 or plain-engine snapshot carries none, so a momentum
    // engine restores with fresh (zero) velocity — the correct reading of a
    // checkpoint that never had momentum state.
    dynamics_->Reset(*workload_, prices_);
    DynamicsPolicyState dynamics_state;
    dynamics_state.mu_velocity = std::move(snapshot.mu_velocity);
    dynamics_state.lambda_velocity = std::move(snapshot.lambda_velocity);
    dynamics_state.mu_base = std::move(snapshot.mu_base);
    dynamics_state.lambda_base = std::move(snapshot.lambda_base);
    dynamics_state.mu_phase = std::move(snapshot.mu_phase);
    dynamics_state.lambda_phase = std::move(snapshot.lambda_phase);
    dynamics_state.restarts = snapshot.momentum_restarts;
    dynamics_->LoadState(dynamics_state);
  }
  iteration_ = static_cast<int>(snapshot.iteration);
  converged_ = snapshot.converged;
  total_subtask_solves_ = snapshot.total_subtask_solves;
  recent_utilities_.assign(snapshot.recent_utilities.begin(),
                           snapshot.recent_utilities.end());
  history_.clear();
  // Re-derive latencies_ and the workspace from the restored prices.  This
  // is deliberately NOT PrimeOrSolve(): that would leave price_state_
  // invalidated, losing the restored retirement/freeze counters.  The dense
  // prime at prices_ reproduces bitwise the latencies the checkpointed
  // engine held (the active-set invariant: a full solve at the same price
  // bits equals the incremental state), after which the saved price state
  // is layered back on.
  active_state_.Invalidate();
  price_state_.Invalidate();
  if (config_.active_set.enabled) {
    ActiveSolveAndFillStepWorkspace(
        solver_, *workload_, *model_, prices_, config_.solver.variant,
        config_.convergence.feasibility_tol, pool_.get(), &latencies_,
        &workspace_, &active_state_);
    if (active_primes_ != nullptr) active_primes_->Increment();
    if (snapshot.price_state_primed) {
      price_state_.primed = true;
      price_state_.mu_settled = std::move(snapshot.mu_settled);
      price_state_.lambda_settled = std::move(snapshot.lambda_settled);
      price_state_.mu_zero_epochs = std::move(snapshot.mu_zero_epochs);
      price_state_.lambda_zero_epochs = std::move(snapshot.lambda_zero_epochs);
      price_state_.mu_stable_epochs = std::move(snapshot.mu_stable_epochs);
      price_state_.lambda_stable_epochs =
          std::move(snapshot.lambda_stable_epochs);
      price_state_.shadow_mu = std::move(snapshot.shadow_mu);
      price_state_.shadow_lambda = std::move(snapshot.shadow_lambda);
      price_state_.prev_share_sums = std::move(snapshot.prev_share_sums);
      price_state_.prev_path_latencies =
          std::move(snapshot.prev_path_latencies);
    }
  } else {
    solver_.SolveAll(prices_, &latencies_, pool_.get());
  }
  return Status{};
}

IterationStats LlaEngine::Step() {
  // 1. Latency allocation at current prices plus the fused evaluation sweep
  //    (share sums, path latencies, utility aggregates) as a single
  //    fork-join region — one worker wake-up per step.  Everything below
  //    reads the workspace arrays.  Active-set mode recomputes only what a
  //    changed price bit can reach; results are bit-identical either way.
  ActiveStepWork work;
  {
    obs::ScopedTimer timing(solve_timer_);
    if (config_.active_set.enabled) {
      work = ActiveSolveAndFillStepWorkspace(
          solver_, *workload_, *model_, prices_, config_.solver.variant,
          config_.convergence.feasibility_tol, pool_.get(), &latencies_,
          &workspace_, &active_state_);
    } else {
      SolveAndFillStepWorkspace(solver_, *workload_, *model_, prices_,
                                config_.solver.variant,
                                config_.convergence.feasibility_tol,
                                pool_.get(), &latencies_, &workspace_);
      work.tasks_solved = workload_->task_count();
      work.subtasks_solved = workload_->subtask_count();
      work.resources_refreshed = workload_->resource_count();
      work.paths_refreshed = workload_->path_count();
    }
  }

  // 2. Price computation: congestion feedback chooses the step sizes, then
  //    gradient projection moves the prices.
  {
    obs::ScopedTimer timing(price_timer_);
    step_policy_->Update(*workload_, workspace_.resource_congested, &steps_);
    const std::uint64_t restarts_before =
        dynamics_ != nullptr ? dynamics_->total_restarts() : 0;
    if (config_.active_set.enabled) {
      last_price_work_ = updater_.UpdateActive(
          workspace_.resource_share_sums, workspace_.path_latencies, steps_,
          config_.active_set.epsilon_quiescence,
          config_.active_set.quiescence_epochs, &prices_, &price_state_,
          dynamics_.get());
      last_step_updates_ = last_price_work_.mu_updated +
                           last_price_work_.mu_frozen +
                           last_price_work_.lambda_updated +
                           last_price_work_.lambda_frozen;
    } else {
      updater_.Update(workspace_.resource_share_sums,
                      workspace_.path_latencies, steps_, &prices_,
                      dynamics_.get());
      last_step_updates_ = workload_->resource_count() +
                           workload_->path_count();
    }
    last_step_restarts_ =
        dynamics_ != nullptr ? dynamics_->total_restarts() - restarts_before
                             : 0;
    if (momentum_restarts_counter_ != nullptr) {
      momentum_restarts_counter_->Increment(last_step_restarts_);
    }
  }

  ++iteration_;
  total_subtask_solves_ += work.subtasks_solved;
  if (steps_counter_ != nullptr) steps_counter_->Increment();
  if (active_tasks_solved_ != nullptr) {
    active_tasks_solved_->Increment(work.tasks_solved);
    active_subtasks_solved_->Increment(work.subtasks_solved);
    active_resources_refreshed_->Increment(work.resources_refreshed);
    active_paths_refreshed_->Increment(work.paths_refreshed);
    if (work.primed) active_primes_->Increment();
    active_mu_skipped_->Increment(last_price_work_.mu_skipped);
    active_lambda_skipped_->Increment(last_price_work_.lambda_skipped);
    active_frozen_->Increment(last_price_work_.mu_frozen +
                              last_price_work_.lambda_frozen);
  }

  IterationStats stats;
  stats.iteration = iteration_;
  stats.total_utility = workspace_.total_utility;
  stats.max_resource_excess = workspace_.feasibility.max_resource_excess;
  stats.max_path_ratio = workspace_.feasibility.max_path_ratio;
  stats.feasible = workspace_.feasibility.feasible;
  stats.tasks_solved = static_cast<int>(work.tasks_solved);
  stats.subtasks_solved = static_cast<int>(work.subtasks_solved);
  if (config_.record_history) history_.push_back(stats);
  if (config_.trace_sink != nullptr) EmitTrace(stats);

  UpdateConvergence(stats.total_utility, stats.feasible);
  return stats;
}

void LlaEngine::EmitTrace(const IterationStats& stats) {
  // Everything comes from the workspace, the price vector and the step
  // sizes already computed this step — no extra evaluation sweeps.  The
  // vector assignments reuse trace_'s capacity after the first iteration.
  trace_.iteration = stats.iteration;
  trace_.at_ms = -1.0;
  trace_.total_utility = stats.total_utility;
  trace_.feasible = stats.feasible;
  trace_.max_resource_excess = stats.max_resource_excess;
  trace_.max_path_ratio = stats.max_path_ratio;
  trace_.resource_share_sums = workspace_.resource_share_sums;
  trace_.resource_mu = prices_.mu;
  trace_.resource_step = steps_.resource;
  trace_.path_latencies = workspace_.path_latencies;
  trace_.path_lambda = prices_.lambda;
  trace_.path_step = steps_.path;
  if (config_.active_set.enabled) {
    trace_.tasks_solved = stats.tasks_solved;
    trace_.subtasks_solved = stats.subtasks_solved;
    trace_.active_mu = static_cast<int>(last_price_work_.mu_nonzero);
    trace_.active_lambda = static_cast<int>(last_price_work_.lambda_nonzero);
  } else {
    trace_.tasks_solved = -1;
    trace_.subtasks_solved = -1;
    trace_.active_mu = -1;
    trace_.active_lambda = -1;
  }
  if (dynamics_ != nullptr) {
    // Per-step restart count and the effective momentum actually applied:
    // a restarted component contributed beta * 0, so the mean coefficient
    // across computed updates is beta * (1 - restarts / updates).  A
    // diverging run shows up in JSONL as effective_beta pinned well below
    // the configured beta (restarts firing every step).
    trace_.momentum_restarts = static_cast<int>(last_step_restarts_);
    const double beta = dynamics_->beta();
    trace_.effective_beta =
        last_step_updates_ > 0
            ? beta * (1.0 - static_cast<double>(last_step_restarts_) /
                                static_cast<double>(last_step_updates_))
            : beta;
  } else {
    trace_.momentum_restarts = -1;
    trace_.effective_beta = -1.0;
  }
  config_.trace_sink->OnIteration(trace_);
}

void LlaEngine::UpdateConvergence(double utility, bool feasible) {
  const ConvergenceConfig& conv = config_.convergence;
  recent_utilities_.push_back(utility);
  while (static_cast<int>(recent_utilities_.size()) > conv.window) {
    recent_utilities_.pop_front();
  }
  if (static_cast<int>(recent_utilities_.size()) < conv.window) {
    converged_ = false;
    return;
  }
  const auto [min_it, max_it] =
      std::minmax_element(recent_utilities_.begin(), recent_utilities_.end());
  const double spread = *max_it - *min_it;
  const double scale = std::max(1.0, std::fabs(*max_it));
  bool settled = spread <= conv.rel_tol * scale;
  if (settled && conv.require_complementary_slackness) {
    // At a dual fixed point every constraint is tight or its price ~0.
    // The workspace holds this step's share sums / path latencies.
    double residual = 0.0;
    for (const ResourceInfo& resource : workload_->resources()) {
      const double slack =
          resource.capacity -
          workspace_.resource_share_sums[resource.id.value()];
      residual = std::max(residual,
                          prices_.mu[resource.id.value()] *
                              std::max(0.0, slack) / resource.capacity);
    }
    for (const PathInfo& path : workload_->paths()) {
      const double slack = 1.0 - workspace_.path_latencies[path.id.value()] /
                                     path.critical_time_ms;
      residual = std::max(residual, prices_.lambda[path.id.value()] *
                                        std::max(0.0, slack));
    }
    settled = residual <= conv.complementarity_tol;
  }
  if (settled && conv.require_feasible) {
    settled = feasible;
  }
  converged_ = settled;
}

RunResult LlaEngine::Run(int max_iterations) {
  assert(max_iterations >= 1);
  RunResult result;
  for (int i = 0; i < max_iterations; ++i) {
    const IterationStats stats = Step();
    result.final_utility = stats.total_utility;
    result.subtask_solves += static_cast<std::uint64_t>(stats.subtasks_solved);
    if (converged_) break;
  }
  result.converged = converged_;
  result.iterations = iteration_;
  result.final_feasibility = Feasibility();
  return result;
}

FeasibilityReport LlaEngine::Feasibility() const {
  return CheckFeasibility(*workload_, *model_, latencies_,
                          config_.convergence.feasibility_tol);
}

double LlaEngine::TotalUtilityNow() const {
  return TotalUtility(*workload_, latencies_, config_.solver.variant);
}

}  // namespace lla
