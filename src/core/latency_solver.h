// Latency allocation (paper Sec. 4.2): given prices, compute the latencies
// that maximize the Lagrangian.
//
// Stationarity (Eq. 7) for subtask s of task i on resource r:
//
//   w_s * f_i'(X_i) - Lambda_s - mu_r * share_s'(lat_s) = 0,
//   X_i = sum_{s in task i} w_s * lat_s,   Lambda_s = sum_{p contains s} lambda_p.
//
// Rearranged: -share_s'(lat_s) = (Lambda_s - w_s * f_i'(X_i)) / mu_r.
// For linear f_i the right-hand side is a constant and each subtask solves
// independently (closed form sqrt(mu*work/(w+Lambda)) for the WCET/lag share
// model).  For general concave f_i the subtasks of a task couple through
// X_i; because f_i' is non-increasing, lat_s(X) is non-increasing in X, so
// X = h(X) is a monotone scalar fixed point solved by bisection.
//
// Latencies are clamped to [lat_lo, lat_hi]:
//   lat_lo: share may not exceed the resource capacity B_r;
//   lat_hi: share may not drop below the sustainable minimum (min_share),
//           else a configurable multiple of the critical time.
//
// The bounds, variant weights and the subtask->path price index depend only
// on the workload, the model and the config, not on the prices, so the
// solver caches them in flat arrays (the bisection's h(x) used to recompute
// the bounds on every evaluation).  The cache is keyed to
// LatencyModel::revision(), so replacing a share function (online error
// correction, Sec. 6.3) is picked up on the next solve automatically;
// InvalidateModelCache() covers share objects mutated in place, which no
// revision bump can observe.  SolveAll optionally fans the independent
// per-task solves out across a thread pool; tasks write disjoint latency
// slots, so results are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "core/prices.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

struct LatencySolverConfig {
  UtilityVariant variant = UtilityVariant::kPathWeighted;
  /// lat_hi = lat_cap_factor * critical_time when no min_share floor.
  double lat_cap_factor = 10.0;
  /// Tolerance/iteration cap for the per-task fixed point (nonlinear f_i).
  double fixed_point_tol = 1e-10;
  int fixed_point_max_iter = 200;
  /// Disables the per-subtask invariant cache: bounds, weights and path
  /// price sums are recomputed on every evaluation, as the pre-workspace
  /// solver did.  Reference/bench mode only — results are bit-identical
  /// either way.
  bool cache_invariants = true;
  /// PrepareSolve(prices) compacts the subtask->path CSR down to paths with
  /// lambda != 0 so the gather skips retired path constraints.  Bit-exact:
  /// lambda entries are outputs of max(0.0, .) (never -0.0), and x + 0.0 == x
  /// bitwise for any x that is itself a partial sum of non-negative terms.
  bool compact_lambda_gather = true;
};

class LatencySolver {
 public:
  /// Both `workload` and `model` must outlive the solver.  The model is
  /// consulted through a revision-checked cache, so online corrections
  /// (which replace share functions) still apply on the next solve.
  LatencySolver(const Workload& workload, const LatencyModel& model,
                LatencySolverConfig config = {});

  /// Computes the Lagrangian-maximizing latencies for every subtask of
  /// `task` and stores them in `latencies` (which must have
  /// workload.subtask_count() entries).
  void SolveTask(TaskId task, const PriceVector& prices,
                 Assignment* latencies) const;

  /// SolveTask for every task; with a pool the independent per-task solves
  /// run in parallel (static partitioning, bit-identical results).
  void SolveAll(const PriceVector& prices, Assignment* latencies,
                ThreadPool* pool = nullptr) const;

  /// Refreshes the invariant cache (serial).  Call once before fanning
  /// SolveTaskRange out across threads; workers then only read the cache.
  /// Invalidates any active-compacted CSR (full gather until the next
  /// PrepareSolve(prices)).
  void PrepareSolve() const;

  /// PrepareSolve plus active-set compaction (serial): rebuilds the
  /// subtask->path gather CSR keeping only paths with lambda != 0, so
  /// retired path constraints cost nothing in the solve.  The compacted
  /// index is valid ONLY for solves against bitwise the same `prices` —
  /// callers must re-prepare whenever lambda changes.  Disabled (falls back
  /// to the full CSR) when config.compact_lambda_gather is false.
  void PrepareSolve(const PriceVector& prices) const;

  /// Solves tasks [begin, end) — the chunk body of a parallel solve.
  /// Requires PrepareSolve first; writes only the latency slots of the
  /// chunk's own subtasks, so disjoint chunks compose race-free.
  void SolveTaskRange(std::size_t begin, std::size_t end,
                      const PriceVector& prices, Assignment* latencies) const;

  /// Solves the tasks named by ids[begin..end) — the chunk body of a sparse
  /// (active-set) parallel solve.  Same contract as SolveTaskRange: requires
  /// PrepareSolve first, distinct tasks write disjoint latency slots.
  void SolveTaskList(const std::uint32_t* ids, std::size_t begin,
                     std::size_t end, const PriceVector& prices,
                     Assignment* latencies) const;

  /// Clamping bounds for a subtask's latency.
  double LatLo(SubtaskId id) const;
  double LatHi(SubtaskId id) const;

  /// EnsureCacheFresh without dropping an installed active-compacted CSR
  /// (unless the model cache actually rebuilds).  The incremental stepping
  /// path uses this: the compacted index survives across steps as long as
  /// the lambda zero-pattern is unchanged.
  void RefreshCache() const { EnsureCacheFresh(); }

  /// True when an active-compacted gather CSR is installed (see
  /// PrepareSolve(prices)).
  bool has_active_gather() const { return active_csr_valid_; }

  /// Drops the cached per-subtask model invariants so the next solve
  /// rebuilds them.  Share-function *replacements* are detected via
  /// LatencyModel::revision() without this call; use it after mutating a
  /// share object in place.
  void InvalidateModelCache();

  const LatencySolverConfig& config() const { return config_; }

 private:
  /// Rebuilds the cache if the model revision moved (serial; call before
  /// entering any parallel region).
  void EnsureCacheFresh() const;

  /// Uncached bound computations (the cache builder and reference path).
  double ComputeLatLo(SubtaskId id) const;
  double ComputeLatHi(SubtaskId id) const;

  /// lat_s given the utility slope f_i'(X) at the coupling value X.
  double SolveSubtask(SubtaskId id, double utility_slope,
                      const PriceVector& prices) const;
  /// SolveTask body, assuming the cache is fresh.
  void SolveTaskFresh(TaskId task, const PriceVector& prices,
                      Assignment* latencies) const;
  /// Flat closed-form stationarity kernel over the contiguous subtask span
  /// [begin, end): lat = clamp(err + sqrt(work / ((Lambda - w f') / mu))),
  /// evaluated over the cached SoA arrays with exactly the arithmetic of
  /// SolveSubtask + LatencyForNegSlope, so results are bit-identical to the
  /// virtual-dispatch path.  `out` is indexed by global subtask id.
  void SolveClosedSpan(std::size_t begin, std::size_t end,
                       double utility_slope, const PriceVector& prices,
                       double* out) const;

  const Workload* workload_;
  const LatencyModel* model_;
  LatencySolverConfig config_;

  // Workload/config invariants (built once in the constructor).
  std::vector<double> weight_;           ///< w_s under config_.variant
  std::vector<std::size_t> path_offset_; ///< CSR offsets, subtask -> paths
  std::vector<std::size_t> path_index_;  ///< CSR values: global PathId values
  std::vector<std::size_t> resource_index_;  ///< subtask -> ResourceId value
  std::vector<std::size_t> task_begin_;  ///< task -> first subtask id
  std::vector<std::size_t> task_end_;    ///< task -> one-past-last subtask id
  std::vector<std::uint8_t> task_contiguous_;  ///< span covers exactly the task

  // Model-derived invariants, rebuilt when the model revision moves.
  mutable std::uint64_t cached_revision_ = 0;
  mutable bool cache_valid_ = false;
  mutable std::vector<double> lat_lo_;
  mutable std::vector<double> lat_hi_;
  mutable std::vector<const ShareFunction*> share_;
  mutable std::vector<double> closed_work_;  ///< reciprocal-form work coeff
  mutable std::vector<double> closed_err_;   ///< reciprocal-form error coeff
  /// task -> every subtask has a reciprocal-form share AND the task's
  /// subtask ids are contiguous, i.e. SolveClosedSpan applies.
  mutable std::vector<std::uint8_t> task_closed_;
  /// Per-subtask scratch for the kernel's path-price gather; tasks own
  /// disjoint spans, so parallel chunks never collide.
  mutable std::vector<double> lambda_scratch_;

  // Active-compacted gather CSR (PrepareSolve(prices)).  Valid only for the
  // prices it was built from; every other entry point clears the flag so
  // solves fall back to the full CSR rather than drop a now-nonzero term.
  mutable bool active_csr_valid_ = false;
  mutable std::vector<std::size_t> active_path_offset_;
  mutable std::vector<std::size_t> active_path_index_;
};

}  // namespace lla
