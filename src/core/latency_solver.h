// Latency allocation (paper Sec. 4.2): given prices, compute the latencies
// that maximize the Lagrangian.
//
// Stationarity (Eq. 7) for subtask s of task i on resource r:
//
//   w_s * f_i'(X_i) - Lambda_s - mu_r * share_s'(lat_s) = 0,
//   X_i = sum_{s in task i} w_s * lat_s,   Lambda_s = sum_{p contains s} lambda_p.
//
// Rearranged: -share_s'(lat_s) = (Lambda_s - w_s * f_i'(X_i)) / mu_r.
// For linear f_i the right-hand side is a constant and each subtask solves
// independently (closed form sqrt(mu*work/(w+Lambda)) for the WCET/lag share
// model).  For general concave f_i the subtasks of a task couple through
// X_i; because f_i' is non-increasing, lat_s(X) is non-increasing in X, so
// X = h(X) is a monotone scalar fixed point solved by bisection.
//
// Latencies are clamped to [lat_lo, lat_hi]:
//   lat_lo: share may not exceed the resource capacity B_r;
//   lat_hi: share may not drop below the sustainable minimum (min_share),
//           else a configurable multiple of the critical time.
#pragma once

#include <vector>

#include "core/prices.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

struct LatencySolverConfig {
  UtilityVariant variant = UtilityVariant::kPathWeighted;
  /// lat_hi = lat_cap_factor * critical_time when no min_share floor.
  double lat_cap_factor = 10.0;
  /// Tolerance/iteration cap for the per-task fixed point (nonlinear f_i).
  double fixed_point_tol = 1e-10;
  int fixed_point_max_iter = 200;
};

class LatencySolver {
 public:
  /// Both `workload` and `model` must outlive the solver.  The model is
  /// consulted on every solve, so online corrections apply immediately.
  LatencySolver(const Workload& workload, const LatencyModel& model,
                LatencySolverConfig config = {});

  /// Computes the Lagrangian-maximizing latencies for every subtask of
  /// `task` and stores them in `latencies` (which must have
  /// workload.subtask_count() entries).
  void SolveTask(TaskId task, const PriceVector& prices,
                 Assignment* latencies) const;

  /// SolveTask for every task.
  void SolveAll(const PriceVector& prices, Assignment* latencies) const;

  /// Clamping bounds for a subtask's latency.
  double LatLo(SubtaskId id) const;
  double LatHi(SubtaskId id) const;

  const LatencySolverConfig& config() const { return config_; }

 private:
  /// lat_s given the utility slope f_i'(X) at the coupling value X.
  double SolveSubtask(SubtaskId id, double utility_slope,
                      const PriceVector& prices) const;

  const Workload* workload_;
  const LatencyModel* model_;
  LatencySolverConfig config_;
};

}  // namespace lla
