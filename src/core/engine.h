// LlaEngine: the synchronous LLA iteration (paper Sec. 4.1).
//
// One Step() performs the paper's two half-steps in order:
//   1. latency allocation — every task controller maximizes the Lagrangian
//      at the current prices (LatencySolver);
//   2. price computation — every resource and every controller moves its
//      prices by gradient projection (PriceUpdater), with step sizes chosen
//      by the configured policy.
//
// Between the half-steps the engine fills a StepWorkspace once — resource
// share sums, path latencies, task utility aggregates — and every per-step
// consumer (congestion detection, price update, iteration stats,
// feasibility, complementary slackness) reads those arrays instead of
// re-walking the workload.  The workspace buffers are reused, so the
// steady-state iteration is allocation-free.  With num_threads > 1 the
// per-task solves and the evaluation sweeps run as ONE fork-join region per
// step (SolveAndFillStepWorkspace) with static partitioning and a
// deterministic grain cutoff; results are bit-identical for any thread
// count.
//
// The engine is the single-process reference implementation used by the
// simulation experiments (Secs. 5.2-5.4); the message-passing deployment of
// the same iteration lives in src/runtime.  Online error correction applied
// between steps (Sec. 6.3) is picked up automatically: the solver's cached
// model invariants are keyed to LatencyModel::revision().  Call
// InvalidateModelCache() only when a share function object was mutated in
// place (a replacement via SetShareFunction/SetAdditiveError bumps the
// revision by itself).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "core/latency_solver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/price_dynamics.h"
#include "core/price_update.h"
#include "core/prices.h"
#include "core/step_size.h"
#include "core/step_workspace.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/serialization.h"
#include "model/workload.h"
#include "workloads/transform.h"

namespace lla {

struct ConvergenceConfig {
  /// Converged when the relative utility change across the trailing window
  /// stays below this.
  double rel_tol = 1e-5;
  int window = 10;
  /// Additionally require near-feasibility before declaring convergence
  /// (the dual approaches the constraint boundary, so allow this slack).
  bool require_feasible = true;
  double feasibility_tol = 1e-3;
  /// Utility can plateau while the dual state is far from its fixed point
  /// (e.g. all latencies pinned at box bounds under inflated prices, slack
  /// resources still carrying large mu).  Convergence therefore also
  /// requires approximate complementary slackness: for every resource,
  /// mu_r * slack_r / B_r below this (and the path analogue); at a true
  /// dual fixed point either the constraint is tight or its price is ~0.
  bool require_complementary_slackness = true;
  double complementarity_tol = 0.1;
};

/// The incremental (active-set) stepping mode: dirty-tracked sparse dual
/// iteration.  See DESIGN.md §7.6.
struct ActiveSetConfig {
  /// Master switch.  Enabled (the default) with epsilon_quiescence == 0 is
  /// EXACT: every skip is keyed on bitwise-unchanged inputs, so the
  /// trajectory is bit-for-bit the dense one at any thread count — only the
  /// work per step shrinks.
  bool enabled = true;
  /// Opt-in approximation: freeze (stop publishing) a multiplier whose
  /// per-update movement stayed within epsilon_quiescence * max(1, |value|)
  /// for quiescence_epochs consecutive updates.  The dynamics are never
  /// frozen — a shadow copy keeps integrating Eq. 8/9, and the price is
  /// re-published the moment its accumulated drift from the published value
  /// exceeds the same threshold.  Published prices therefore track the
  /// shadow dual trajectory with per-component relative error <= epsilon,
  /// which bounds the final objective gap at O(epsilon) relative (DESIGN.md
  /// §7.6 gives the argument; active_set_property_test pins the bound with
  /// a measured constant).  0 (the default) disables freezing.  Must be
  /// >= 0 and < 1.
  double epsilon_quiescence = 0.0;
  /// Consecutive quiescent updates before a clamped-at-zero constraint is
  /// retired / a stable multiplier is frozen.  Must be >= 1.
  int quiescence_epochs = 3;
};

struct LlaConfig {
  LatencySolverConfig solver;
  StepPolicyKind step_policy = StepPolicyKind::kAdaptive;
  double gamma0 = 1.0;                        ///< base step size
  double adaptive_max_multiplier = 8.0;        ///< cap for the doubling
  double diminishing_tau = 50.0;
  /// Accelerated price dynamics (heavy-ball / Nesterov momentum with
  /// adaptive restart; see price_dynamics.h).  Orthogonal to step_policy:
  /// the step-size policy still chooses gamma per component per iteration,
  /// the dynamics decide how the gradient step is applied.  The default
  /// (plain) runs the original Eq. 8/9 arithmetic unchanged.
  DynamicsConfig dynamics;
  double initial_mu = 0.0;
  double initial_lambda = 0.0;
  ConvergenceConfig convergence;
  /// Incremental active-set stepping (exact by default; see the struct).
  ActiveSetConfig active_set;
  /// Record per-iteration stats (utility traces for the figures).
  bool record_history = true;
  /// Threads for the per-task solves and the evaluation sweeps.  1 (the
  /// default) runs serially with no pool; any value produces bit-identical
  /// results (static partitioning, serial reductions).
  int num_threads = 1;
  /// Pool tuning: grain cutoff, hardware-concurrency clamp, spin budget.
  /// None of these can change results, only scheduling (see parallel.h).
  ParallelConfig parallel;
  /// Receives one IterationTrace per Step(), sourced from the fused
  /// StepWorkspace (no extra sweeps).  Null (the default) disables tracing
  /// at the cost of one pointer test; an attached sink never perturbs the
  /// trajectory (non-owning; must outlive the engine).
  obs::TraceSink* trace_sink = nullptr;
  /// Registry for the engine's counters (engine.steps) and phase timers:
  /// engine.solve (the fused solve+evaluate region — one fork-join per
  /// step) and engine.price_update.  Null disables instrumentation entirely
  /// (non-owning; must outlive the engine).
  obs::MetricRegistry* metrics = nullptr;
};

/// Per-iteration diagnostics (the quantities Figures 5-7 plot).
struct IterationStats {
  int iteration = 0;
  double total_utility = 0.0;
  double max_resource_excess = 0.0;  ///< max over r of (share sum - B_r), >= 0
  double max_path_ratio = 0.0;       ///< max over p of latency / C_i
  bool feasible = false;
  /// Work this step actually performed (equals the full task/subtask counts
  /// in dense mode; smaller under active-set stepping).
  int tasks_solved = 0;
  int subtasks_solved = 0;
};

struct RunResult {
  bool converged = false;
  int iterations = 0;
  double final_utility = 0.0;
  FeasibilityReport final_feasibility;
  /// Sum of IterationStats::subtasks_solved over this Run's steps — the
  /// convergence-work metric bench_convergence reports.
  std::uint64_t subtask_solves = 0;
};

class LlaEngine {
 public:
  /// `workload` and `model` must outlive the engine.
  LlaEngine(const Workload& workload, const LatencyModel& model,
            LlaConfig config = {});

  /// One latency-allocation + price-computation iteration.
  IterationStats Step();

  /// Runs until convergence (per config) or `max_iterations` steps,
  /// whichever first.
  RunResult Run(int max_iterations);

  /// Resets prices, step-size state, convergence state and history;
  /// keeps the workload/model bindings.
  void Reset();

  /// Clears only the convergence detector (call after the LatencyModel
  /// changes so a previously settled engine re-evaluates from its warm
  /// price state instead of reporting stale convergence).
  void ClearConvergenceWindow();

  /// Drops the solver's cached model invariants (box bounds, share
  /// pointers).  Needed only when a share function was mutated in place;
  /// replacing one through the LatencyModel is detected automatically.
  void InvalidateModelCache();

  /// Seeds the dual state from a previous run (typically on a transformed
  /// workload with the same structure: after a capacity or critical-time
  /// change the old prices are near the new optimum and re-convergence is
  /// much faster than a cold start).  Price vector sizes MUST match this
  /// workload — a mismatch aborts (it would silently mis-map every
  /// multiplier; after a structural transform use WarmStartStructural, which
  /// remaps).  Negative entries are projected to zero.
  void WarmStart(const PriceVector& prices);

  /// Structural warm start: seeds this engine (built on the NEW workload)
  /// from the dual state of a run on the OLD workload, where the two differ
  /// by exactly one task (a leave or a join; resources fixed).  The price
  /// remapping happens internally (MapPricesWithoutTask / MapPricesWithTask),
  /// followed by the selective re-prime policy of DESIGN.md §7.9: the dirty
  /// set is the transitive closure of the changed task's resources over the
  /// task<->resource sharing graph, and after a LEAVE the closure resources'
  /// mu is re-seeded at config.initial_mu (the mapped values are upper-
  /// biased — the departed demand is gone — and Eq. 8 decays an inflated mu
  /// only at gamma*slack per step, which is why a naive mapped warm start
  /// re-converges slower than cold).  Everything outside the closure keeps
  /// its mapped prices bit-identical, so untouched tasks re-quiesce without
  /// re-solving.  A JOIN keeps all mapped multipliers (congestion-driven
  /// rises are fast) and seeds the newcomer's lambda at
  /// config.initial_lambda.  Fails without touching the engine when the
  /// shapes are inconsistent.
  Status WarmStartStructural(const Workload& old_workload,
                             const PriceVector& old_prices,
                             const StructuralChange& change);

  /// Captures the complete dual state — prices, step-size policy state,
  /// convergence window, counters, and the active-set price state — into a
  /// durable snapshot (DESIGN.md §7.7).  Restore() of the snapshot into a
  /// fresh engine on the same workload resumes the dense trajectory
  /// bit-identically: every subsequent Step() produces bitwise the same
  /// prices and latencies the checkpointed engine would have produced.
  /// History is diagnostics and is not captured.
  StateSnapshot Checkpoint() const;

  /// Adopts a snapshot taken by Checkpoint() (possibly in another process).
  /// Fails without touching the engine if the snapshot's shape does not
  /// match this workload.  On success the engine's latencies and workspace
  /// are re-derived from the restored prices by a dense solve, history is
  /// cleared, and the next Step() continues the checkpointed trajectory
  /// bit-for-bit (any thread count, active-set on or off).
  Status Restore(const StateSnapshot& snapshot);

  /// Zero-copy restore (DESIGN.md §7.11): adopts a parsed binary snapshot
  /// view — typically backed by an mmap'd file (MappedSnapshotFile) — by
  /// decoding each section exactly once, straight into the engine's own
  /// buffers, then moving them into place.  No whole-file string, no
  /// intermediate StateSnapshot.  Same validation and bit-identical resume
  /// guarantee as Restore(StateSnapshot); the view's backing bytes only
  /// need to live until this call returns.
  Status Restore(const SnapshotView& view);

  bool Converged() const { return converged_; }
  int iteration() const { return iteration_; }
  /// Cumulative adaptive-restart count of the momentum dynamics since the
  /// last Reset/WarmStart/Restore (0 under plain dynamics).
  std::uint64_t momentum_restarts() const {
    return dynamics_ != nullptr ? dynamics_->total_restarts() : 0;
  }
  /// Cumulative subtask solves performed by Step() since the last
  /// Reset/WarmStart (the dense mode counts every subtask every step).
  std::uint64_t total_subtask_solves() const { return total_subtask_solves_; }
  /// Dirty-closure size of the last WarmStartStructural (0 before any):
  /// tasks / resources whose dual state the structural event re-primed.
  std::size_t last_reprime_tasks() const { return last_reprime_tasks_; }
  std::size_t last_reprime_resources() const { return last_reprime_resources_; }
  const Assignment& latencies() const { return latencies_; }
  const PriceVector& prices() const { return prices_; }
  const std::vector<IterationStats>& history() const { return history_; }
  const LlaConfig& config() const { return config_; }
  const Workload& workload() const { return *workload_; }
  const LatencyModel& model() const { return *model_; }

  /// Convenience: evaluate the current assignment.
  FeasibilityReport Feasibility() const;
  double TotalUtilityNow() const;

 private:
  void UpdateConvergence(double utility, bool feasible);
  void EmitTrace(const IterationStats& stats);
  /// Shared Restore body; consumes the snapshot's vectors (the view path
  /// decodes sections once and moves them into place with no extra copy).
  Status RestoreImpl(StateSnapshot&& snapshot);
  /// Invalidates the dirty-tracking state, then runs the initial solve at
  /// prices_: the dense active-set prime when enabled, else SolveAll.
  void PrimeOrSolve();

  const Workload* workload_;
  const LatencyModel* model_;
  LlaConfig config_;
  LatencySolver solver_;
  PriceUpdater updater_;
  std::unique_ptr<StepSizePolicy> step_policy_;
  /// Null for DynamicsKind::kPlain: the default configuration executes the
  /// pre-existing inline arithmetic with zero dispatch overhead, and the
  /// null check doubles as the "momentum is active" flag for traces,
  /// metrics, and snapshot state.
  std::unique_ptr<PriceDynamicsPolicy> dynamics_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when num_threads <= 1
  StepSizes steps_;
  PriceVector prices_;
  Assignment latencies_;
  StepWorkspace workspace_;
  ActiveSetState active_state_;
  ActivePriceState price_state_;
  int iteration_ = 0;
  bool converged_ = false;
  std::uint64_t total_subtask_solves_ = 0;
  std::size_t last_reprime_tasks_ = 0;
  std::size_t last_reprime_resources_ = 0;
  /// Sparsity of the last Step's price update (trace/metric source).
  ActivePriceWork last_price_work_;
  /// Momentum diagnostics of the last Step (trace/metric source): adaptive
  /// restarts fired and components whose update was actually computed.
  std::uint64_t last_step_restarts_ = 0;
  std::uint64_t last_step_updates_ = 0;
  std::deque<double> recent_utilities_;
  std::vector<IterationStats> history_;

  /// Observability handles, resolved once at construction (all null when
  /// config.metrics is null) and a reused trace record buffer.
  obs::Counter* steps_counter_ = nullptr;
  obs::Timer* solve_timer_ = nullptr;  ///< fused solve+evaluate region
  obs::Timer* price_timer_ = nullptr;
  obs::Counter* active_tasks_solved_ = nullptr;
  obs::Counter* active_subtasks_solved_ = nullptr;
  obs::Counter* active_resources_refreshed_ = nullptr;
  obs::Counter* active_paths_refreshed_ = nullptr;
  obs::Counter* active_primes_ = nullptr;
  obs::Counter* active_mu_skipped_ = nullptr;
  obs::Counter* active_lambda_skipped_ = nullptr;
  obs::Counter* active_frozen_ = nullptr;
  obs::Counter* momentum_restarts_counter_ = nullptr;
  obs::Counter* reprime_tasks_counter_ = nullptr;
  obs::Counter* reprime_resources_counter_ = nullptr;
  obs::IterationTrace trace_;
};

/// Builds the step-size policy an LlaConfig describes (also used by the
/// distributed runtime).
std::unique_ptr<StepSizePolicy> MakeStepPolicy(const LlaConfig& config);

}  // namespace lla
