#include "core/prices.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace lla {

double PriceVector::MaxAbsDiff(const PriceVector& other) const {
  assert(mu.size() == other.mu.size());
  assert(lambda.size() == other.lambda.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    worst = std::max(worst, std::fabs(mu[i] - other.mu[i]));
  }
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    worst = std::max(worst, std::fabs(lambda[i] - other.lambda[i]));
  }
  return worst;
}

double PriceVector::PathPriceSum(const Workload& workload,
                                 SubtaskId s) const {
  double sum = 0.0;
  for (PathId pid : workload.subtask(s).paths) {
    sum += lambda[pid.value()];
  }
  return sum;
}

namespace {

inline std::uint8_t BitsDiffer(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba != bb ? 1 : 0;
}

}  // namespace

void DiffPrices(const PriceVector& now, const PriceVector& prev,
                std::vector<std::uint8_t>* mu_changed,
                std::vector<std::uint8_t>* lambda_changed) {
  assert(now.mu.size() == prev.mu.size());
  assert(now.lambda.size() == prev.lambda.size());
  mu_changed->resize(now.mu.size());
  lambda_changed->resize(now.lambda.size());
  for (std::size_t r = 0; r < now.mu.size(); ++r) {
    (*mu_changed)[r] = BitsDiffer(now.mu[r], prev.mu[r]);
  }
  for (std::size_t p = 0; p < now.lambda.size(); ++p) {
    (*lambda_changed)[p] = BitsDiffer(now.lambda[p], prev.lambda[p]);
  }
}

}  // namespace lla
