#include "core/prices.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lla {

double PriceVector::MaxAbsDiff(const PriceVector& other) const {
  assert(mu.size() == other.mu.size());
  assert(lambda.size() == other.lambda.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    worst = std::max(worst, std::fabs(mu[i] - other.mu[i]));
  }
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    worst = std::max(worst, std::fabs(lambda[i] - other.lambda[i]));
  }
  return worst;
}

double PriceVector::PathPriceSum(const Workload& workload,
                                 SubtaskId s) const {
  double sum = 0.0;
  for (PathId pid : workload.subtask(s).paths) {
    sum += lambda[pid.value()];
  }
  return sum;
}

}  // namespace lla
