#include "core/step_size.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace lla {

const char* ToString(StepPolicyKind kind) {
  switch (kind) {
    case StepPolicyKind::kFixed:
      return "fixed";
    case StepPolicyKind::kAdaptive:
      return "adaptive";
    case StepPolicyKind::kDiminishing:
      return "diminishing";
  }
  return "?";
}

FixedStepSize::FixedStepSize(double gamma) : gamma_(gamma) {
  assert(gamma > 0.0);
}

void FixedStepSize::Reset(const Workload& /*workload*/) {}

void FixedStepSize::Update(const Workload& workload,
                           const std::vector<bool>& /*resource_congested*/,
                           StepSizes* steps) {
  steps->resource.assign(workload.resource_count(), gamma_);
  steps->path.assign(workload.path_count(), gamma_);
}

std::string FixedStepSize::Describe() const {
  std::ostringstream os;
  os << "fixed(gamma=" << gamma_ << ")";
  return os.str();
}

AdaptiveStepSize::AdaptiveStepSize(double gamma0, double max_multiplier)
    : gamma0_(gamma0), max_multiplier_(max_multiplier) {
  assert(gamma0 > 0.0);
  assert(max_multiplier >= 1.0);
}

void AdaptiveStepSize::Reset(const Workload& workload) {
  resource_multiplier_.assign(workload.resource_count(), 1.0);
  path_multiplier_.assign(workload.path_count(), 1.0);
}

void AdaptiveStepSize::Update(const Workload& workload,
                              const std::vector<bool>& resource_congested,
                              StepSizes* steps) {
  assert(resource_congested.size() == workload.resource_count());
  // Rebuild on any size mismatch.  Checking only the resource vector left
  // path_multiplier_ stale (or undersized — an out-of-bounds write below)
  // when a workload transform changed the path count but not the resource
  // count, e.g. a task add/remove on a fixed resource set.
  if (resource_multiplier_.size() != workload.resource_count() ||
      path_multiplier_.size() != workload.path_count()) {
    Reset(workload);
  }
  for (std::size_t r = 0; r < workload.resource_count(); ++r) {
    if (resource_congested[r]) {
      resource_multiplier_[r] =
          std::min(resource_multiplier_[r] * 2.0, max_multiplier_);
    } else {
      resource_multiplier_[r] = 1.0;  // revert as soon as uncongested
    }
  }
  // A path doubles while any resource it traverses is congested.
  for (const PathInfo& path : workload.paths()) {
    bool any_congested = false;
    for (SubtaskId sid : path.subtasks) {
      if (resource_congested[workload.subtask(sid).resource.value()]) {
        any_congested = true;
        break;
      }
    }
    double& mult = path_multiplier_[path.id.value()];
    mult = any_congested ? std::min(mult * 2.0, max_multiplier_) : 1.0;
  }

  steps->resource.resize(workload.resource_count());
  for (std::size_t r = 0; r < workload.resource_count(); ++r) {
    steps->resource[r] = gamma0_ * resource_multiplier_[r];
  }
  steps->path.resize(workload.path_count());
  for (std::size_t p = 0; p < workload.path_count(); ++p) {
    steps->path[p] = gamma0_ * path_multiplier_[p];
  }
}

void AdaptiveStepSize::SaveState(StepPolicyState* out) const {
  out->resource_multiplier = resource_multiplier_;
  out->path_multiplier = path_multiplier_;
}

void AdaptiveStepSize::LoadState(const StepPolicyState& in) {
  // Size mismatches fall back to the Reset() state (all 1.0) rather than
  // adopting misindexed multipliers; Update() rebuilds on mismatch anyway.
  if (in.resource_multiplier.size() == resource_multiplier_.size() &&
      in.path_multiplier.size() == path_multiplier_.size()) {
    resource_multiplier_ = in.resource_multiplier;
    path_multiplier_ = in.path_multiplier;
  }
}

std::string AdaptiveStepSize::Describe() const {
  std::ostringstream os;
  os << "adaptive(gamma0=" << gamma0_ << ", cap=" << max_multiplier_ << ")";
  return os.str();
}

DiminishingStepSize::DiminishingStepSize(double gamma0, double tau)
    : gamma0_(gamma0), tau_(tau) {
  assert(gamma0 > 0.0);
  assert(tau > 0.0);
}

void DiminishingStepSize::Reset(const Workload& /*workload*/) {
  iteration_ = 0;
}

void DiminishingStepSize::Update(const Workload& workload,
                                 const std::vector<bool>& /*congested*/,
                                 StepSizes* steps) {
  const double gamma = gamma0_ / (1.0 + iteration_ / tau_);
  ++iteration_;
  steps->resource.assign(workload.resource_count(), gamma);
  steps->path.assign(workload.path_count(), gamma);
}

void DiminishingStepSize::SaveState(StepPolicyState* out) const {
  out->iteration = iteration_;
}

void DiminishingStepSize::LoadState(const StepPolicyState& in) {
  iteration_ = static_cast<int>(in.iteration);
}

std::string DiminishingStepSize::Describe() const {
  std::ostringstream os;
  os << "diminishing(gamma0=" << gamma0_ << ", tau=" << tau_ << ")";
  return os.str();
}

}  // namespace lla
