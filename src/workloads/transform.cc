#include "workloads/transform.h"

#include <cassert>

#include "model/utility.h"

namespace lla {

WorkloadSpecs ExtractSpecs(const Workload& workload) {
  WorkloadSpecs specs;
  specs.resources.reserve(workload.resource_count());
  for (const ResourceInfo& resource : workload.resources()) {
    specs.resources.push_back(
        {resource.name, resource.kind, resource.capacity, resource.lag_ms});
  }
  specs.tasks.reserve(workload.task_count());
  for (const TaskInfo& task : workload.tasks()) {
    TaskSpec spec;
    spec.name = task.name;
    spec.critical_time_ms = task.critical_time_ms;
    spec.utility = task.utility;
    spec.trigger = task.trigger;
    spec.edges = task.dag.edges();
    for (SubtaskId sid : task.subtasks) {
      const SubtaskInfo& sub = workload.subtask(sid);
      spec.subtasks.push_back(
          {sub.name, sub.resource, sub.wcet_ms, sub.min_share});
    }
    specs.tasks.push_back(std::move(spec));
  }
  return specs;
}

Expected<Workload> Rebuild(
    const Workload& workload,
    const std::function<void(ResourceId, ResourceSpec&)>& edit_resource,
    const std::function<void(TaskId, TaskSpec&)>& edit_task) {
  WorkloadSpecs specs = ExtractSpecs(workload);
  if (edit_resource) {
    for (std::size_t r = 0; r < specs.resources.size(); ++r) {
      edit_resource(ResourceId(r), specs.resources[r]);
    }
  }
  if (edit_task) {
    for (std::size_t t = 0; t < specs.tasks.size(); ++t) {
      edit_task(TaskId(t), specs.tasks[t]);
    }
  }
  return Workload::Create(std::move(specs.resources),
                          std::move(specs.tasks));
}

Expected<Workload> WithResourceCapacity(const Workload& workload,
                                        ResourceId resource,
                                        double capacity) {
  return Rebuild(workload,
                 [&](ResourceId id, ResourceSpec& spec) {
                   if (id == resource) spec.capacity = capacity;
                 });
}

Expected<Workload> WithScaledCriticalTimes(const Workload& workload,
                                           double factor,
                                           bool rescale_linear_utility) {
  assert(factor > 0.0);
  return Rebuild(
      workload, nullptr, [&](TaskId, TaskSpec& spec) {
        spec.critical_time_ms *= factor;
        if (rescale_linear_utility) {
          // Recognize f = offset - slope*x and rescale the offset with C so
          // the 2C-x family keeps its meaning; other shapes stay untouched.
          if (const auto* linear =
                  dynamic_cast<const LinearUtility*>(spec.utility.get())) {
            spec.utility = std::make_shared<LinearUtility>(
                linear->offset() * factor, linear->slope());
          }
        }
      });
}

Expected<Workload> WithoutTask(const Workload& workload, TaskId task) {
  if (!task.valid() || task.value() >= workload.task_count()) {
    return Expected<Workload>::Error("WithoutTask: invalid task id");
  }
  WorkloadSpecs specs = ExtractSpecs(workload);
  specs.tasks.erase(specs.tasks.begin() + task.value());
  return Workload::Create(std::move(specs.resources),
                          std::move(specs.tasks));
}

}  // namespace lla
