#include "workloads/transform.h"

#include <algorithm>
#include <cassert>

#include "model/utility.h"

namespace lla {

WorkloadSpecs ExtractSpecs(const Workload& workload) {
  WorkloadSpecs specs;
  specs.resources.reserve(workload.resource_count());
  for (const ResourceInfo& resource : workload.resources()) {
    specs.resources.push_back(
        {resource.name, resource.kind, resource.capacity, resource.lag_ms});
  }
  specs.tasks.reserve(workload.task_count());
  for (const TaskInfo& task : workload.tasks()) {
    TaskSpec spec;
    spec.name = task.name;
    spec.critical_time_ms = task.critical_time_ms;
    spec.utility = task.utility;
    spec.trigger = task.trigger;
    spec.edges = task.dag.edges();
    for (SubtaskId sid : task.subtasks) {
      const SubtaskInfo& sub = workload.subtask(sid);
      spec.subtasks.push_back(
          {sub.name, sub.resource, sub.wcet_ms, sub.min_share});
    }
    specs.tasks.push_back(std::move(spec));
  }
  return specs;
}

Expected<Workload> Rebuild(
    const Workload& workload,
    const std::function<void(ResourceId, ResourceSpec&)>& edit_resource,
    const std::function<void(TaskId, TaskSpec&)>& edit_task) {
  WorkloadSpecs specs = ExtractSpecs(workload);
  if (edit_resource) {
    for (std::size_t r = 0; r < specs.resources.size(); ++r) {
      edit_resource(ResourceId(r), specs.resources[r]);
    }
  }
  if (edit_task) {
    for (std::size_t t = 0; t < specs.tasks.size(); ++t) {
      edit_task(TaskId(t), specs.tasks[t]);
    }
  }
  return Workload::Create(std::move(specs.resources),
                          std::move(specs.tasks));
}

Expected<Workload> WithResourceCapacity(const Workload& workload,
                                        ResourceId resource,
                                        double capacity) {
  return Rebuild(workload,
                 [&](ResourceId id, ResourceSpec& spec) {
                   if (id == resource) spec.capacity = capacity;
                 });
}

Expected<Workload> WithScaledCriticalTimes(const Workload& workload,
                                           double factor,
                                           bool rescale_linear_utility) {
  assert(factor > 0.0);
  return Rebuild(
      workload, nullptr, [&](TaskId, TaskSpec& spec) {
        spec.critical_time_ms *= factor;
        if (rescale_linear_utility) {
          // Recognize f = offset - slope*x and rescale the offset with C so
          // the 2C-x family keeps its meaning; other shapes stay untouched.
          if (const auto* linear =
                  dynamic_cast<const LinearUtility*>(spec.utility.get())) {
            spec.utility = std::make_shared<LinearUtility>(
                linear->offset() * factor, linear->slope());
          }
        }
      });
}

Expected<Workload> WithoutTask(const Workload& workload, TaskId task) {
  if (!task.valid() || task.value() >= workload.task_count()) {
    return Expected<Workload>::Error("WithoutTask: invalid task id");
  }
  WorkloadSpecs specs = ExtractSpecs(workload);
  specs.tasks.erase(specs.tasks.begin() + task.value());
  return Workload::Create(std::move(specs.resources),
                          std::move(specs.tasks));
}

Expected<Workload> WithTask(const Workload& workload, TaskSpec task) {
  WorkloadSpecs specs = ExtractSpecs(workload);
  specs.tasks.push_back(std::move(task));
  return Workload::Create(std::move(specs.resources),
                          std::move(specs.tasks));
}

PriceVector MapPricesWithoutTask(const Workload& old_workload,
                                 const PriceVector& prices, TaskId removed) {
  assert(prices.mu.size() == old_workload.resource_count());
  assert(prices.lambda.size() == old_workload.path_count());
  assert(removed.valid() && removed.value() < old_workload.task_count());
  PriceVector mapped;
  mapped.mu = prices.mu;
  mapped.lambda.reserve(old_workload.path_count() -
                        old_workload.task(removed).paths.size());
  for (const TaskInfo& task : old_workload.tasks()) {
    if (task.id == removed) continue;
    for (PathId path : task.paths) {
      mapped.lambda.push_back(prices.lambda[path.value()]);
    }
  }
  return mapped;
}

PriceVector MapPricesWithTask(const Workload& new_workload,
                              const PriceVector& old_prices, TaskId added,
                              double initial_lambda) {
  assert(old_prices.mu.size() == new_workload.resource_count());
  assert(added.valid() && added.value() < new_workload.task_count());
  PriceVector mapped;
  mapped.mu = old_prices.mu;
  mapped.lambda.reserve(new_workload.path_count());
  const double seed = std::max(0.0, initial_lambda);
  std::size_t next_old = 0;
  for (const TaskInfo& task : new_workload.tasks()) {
    for (std::size_t k = 0; k < task.paths.size(); ++k) {
      if (task.id == added) {
        mapped.lambda.push_back(seed);
      } else {
        assert(next_old < old_prices.lambda.size());
        mapped.lambda.push_back(old_prices.lambda[next_old++]);
      }
    }
  }
  assert(next_old == old_prices.lambda.size());
  return mapped;
}

}  // namespace lla
