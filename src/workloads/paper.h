// The paper's evaluation workloads, reconstructed from Figure 4, Table 1 and
// Sec. 6.2.
//
// Table 1 lists resources, execution times and the converged latencies; the
// unstated parameters are recovered by inversion: with lag l_r = 1 ms and
// B_r = 1.0, the published latencies put every one of the 8 resources at a
// share sum of ~1.00 ("all resources are close to congestion"), and the
// published critical paths (44.9 / 75.6 / 52.8 ms) are exactly realizable
// with the graphs below:
//
//   Task 1 (push/multicast, C=45):  T11 -> T12 -> {T13..T17}
//   Task 2 (complex pull,  C=76):   T21 -> T22 -> {T23, T24},
//                                   T24 -> {T25, T26}, T26 -> T27 -> T28
//   Task 3 (client-server, C=53):   chain T31 -> ... -> T36
#pragma once

#include <array>
#include <vector>

#include "common/expected.h"
#include "model/workload.h"

namespace lla {

struct SimWorkloadOptions {
  /// Utility f_i(x) = k*C_i - x (paper uses k = 2).
  double k = 2.0;
  /// All-resource scheduling lag (recovered value: 1 ms).
  double lag_ms = 1.0;
  /// All-resource availability (recovered value: 1.0).
  double capacity = 1.0;
  /// Trigger period (paper: 100 ms).
  double period_ms = 100.0;
  /// Install sustainable-rate share floors (wcet/period).
  bool with_min_share = true;
};

/// The basic 3-task / 8-resource simulation workload (Figure 4, Table 1).
Expected<Workload> MakeSimWorkload(SimWorkloadOptions options = {});

/// The scaled workload of Sec. 5.3 / 5.4: `replication` copies of each base
/// task (2 -> 6 tasks, 4 -> 12 tasks).  When `scale_critical_times` is true
/// the critical times are multiplied by `replication` (the paper's
/// overprovisioning, keeping the workload schedulable); when false the
/// original critical times are kept, yielding the unschedulable workload of
/// Figure 7.
Expected<Workload> MakeScaledSimWorkload(int replication,
                                         bool scale_critical_times,
                                         SimWorkloadOptions options = {});

struct PrototypeWorkloadOptions {
  double lag_ms = 5.0;        ///< Sec. 6.3
  double gc_share = 0.1;      ///< reserved for the Metronome GC (Sec. 6.2)
  double fast_wcet_ms = 5.0;  ///< tasks 1, 2
  double slow_wcet_ms = 13.0; ///< tasks 3, 4
  double fast_rate_per_s = 40.0;
  double slow_rate_per_s = 10.0;
  double fast_critical_ms = 105.0;
  double slow_critical_ms = 800.0;
};

/// The prototype workload of Sec. 6.2: 4 linear tasks x 3 subtasks over
/// 3 CPUs; each CPU runs one subtask of every task; f_i(lat) = -lat.
Expected<Workload> MakePrototypeWorkload(PrototypeWorkloadOptions opts = {});

/// Table 1's published optimization results, for comparison in tests and
/// benches.  Latencies are in task order (T11..T17, T21..T28, T31..T36).
struct Table1Reference {
  std::vector<double> latencies_ms;
  std::array<double, 3> critical_times_ms;
  std::array<double, 3> critical_paths_ms;
};
const Table1Reference& GetTable1Reference();

}  // namespace lla
