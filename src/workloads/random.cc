#include "workloads/random.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/trigger.h"
#include "model/utility.h"

namespace lla {

Expected<Workload> MakeRandomWorkload(const RandomWorkloadConfig& config) {
  using E = Expected<Workload>;
  if (config.max_subtasks > config.num_resources) {
    return E::Error(
        "MakeRandomWorkload: max_subtasks exceeds num_resources (subtasks of "
        "a task must use distinct resources)");
  }
  if (config.min_subtasks < 1 || config.min_subtasks > config.max_subtasks) {
    return E::Error("MakeRandomWorkload: invalid subtask count range");
  }
  Rng rng(config.seed);

  std::vector<ResourceSpec> resources;
  for (int r = 0; r < config.num_resources; ++r) {
    ResourceSpec spec;
    spec.name = "res" + std::to_string(r);
    spec.kind = r % 2 == 0 ? ResourceKind::kCpu : ResourceKind::kNetworkLink;
    spec.capacity = config.capacity;
    spec.lag_ms = config.lag_ms;
    resources.push_back(std::move(spec));
  }

  // Persistent pool for scaled sampling: a partial Fisher-Yates of length n
  // over any permutation yields a uniform distinct n-subset, so the pool
  // need not be re-initialized between tasks.
  std::vector<int> pool(config.num_resources);
  std::iota(pool.begin(), pool.end(), 0);

  std::vector<TaskSpec> tasks;
  std::vector<int> resource_ids;
  for (int t = 0; t < config.num_tasks; ++t) {
    const int n = config.min_subtasks +
                  static_cast<int>(rng.Below(
                      config.max_subtasks - config.min_subtasks + 1));

    TaskSpec task;
    task.name = "rand" + std::to_string(t);
    task.trigger = TriggerSpec::Periodic(config.trigger_period_ms);

    // Distinct resources per task.
    if (config.scaled_sampling) {
      // Partial Fisher-Yates: O(n) draws against the persistent pool.
      resource_ids.resize(n);
      for (int i = 0; i < n; ++i) {
        std::swap(pool[i],
                  pool[i + rng.Below(config.num_resources - i)]);
        resource_ids[i] = pool[i];
      }
    } else {
      // Full shuffle, prefix taken (the original stream; seeds are pinned).
      resource_ids.resize(config.num_resources);
      std::iota(resource_ids.begin(), resource_ids.end(), 0);
      for (int i = config.num_resources - 1; i > 0; --i) {
        std::swap(resource_ids[i], resource_ids[rng.Below(i + 1)]);
      }
    }

    for (int i = 0; i < n; ++i) {
      SubtaskSpec sub;
      sub.name = task.name + ".s" + std::to_string(i);
      sub.resource = ResourceId(static_cast<std::size_t>(resource_ids[i]));
      sub.wcet_ms = rng.Uniform(config.min_wcet_ms, config.max_wcet_ms);
      sub.min_share = sub.wcet_ms / config.trigger_period_ms;
      task.subtasks.push_back(std::move(sub));
    }

    // Random DAG: node i > 0 attaches under a random earlier node (tree),
    // plus optional extra forward edges.
    for (int i = 1; i < n; ++i) {
      const int parent = static_cast<int>(rng.Below(i));
      task.edges.emplace_back(parent, i);
      if (i >= 2 && rng.NextDouble() < config.extra_edge_prob) {
        int extra = static_cast<int>(rng.Below(i));
        if (extra != parent) task.edges.emplace_back(extra, i);
      }
    }

    // Placeholder critical time; calibrated below once the workload (and so
    // the path structure) exists.
    task.critical_time_ms = 1.0;
    task.utility = MakePaperSimUtility(1.0, config.utility_k);
    tasks.push_back(std::move(task));
  }

  // First build with placeholder critical times (validation of everything
  // else happens here).  min_share <= capacity may fail for unlucky draws;
  // that is a legitimate validation error surfaced to the caller.
  auto tentative = Workload::Create(resources, tasks);
  if (!tentative.ok()) return tentative;
  const Workload& probe = tentative.value();

  // Equal-split witness: subtask on resource r gets share B_r / n_r.
  Assignment witness(probe.subtask_count(), 0.0);
  for (const ResourceInfo& resource : probe.resources()) {
    const double n_r = static_cast<double>(resource.subtasks.size());
    if (n_r == 0) continue;
    for (SubtaskId sid : resource.subtasks) {
      const double share = resource.capacity / n_r;
      witness[sid.value()] = probe.subtask(sid).work_ms / share;
    }
  }

  for (const TaskInfo& task : probe.tasks()) {
    const double crit = CriticalPathLatency(probe, task.id, witness);
    const double critical_time = crit / config.target_utilization;
    tasks[task.id.value()].critical_time_ms = critical_time;
    tasks[task.id.value()].utility =
        MakePaperSimUtility(critical_time, config.utility_k);
  }

  return Workload::Create(std::move(resources), std::move(tasks));
}

RandomWorkloadConfig ScaledRandomWorkloadConfig(std::size_t num_subtasks,
                                                std::uint64_t seed) {
  RandomWorkloadConfig config;
  config.seed = seed;
  config.num_resources = static_cast<int>(
      std::max<std::size_t>(8, num_subtasks / 200));
  config.min_subtasks = 3;
  config.max_subtasks = 6;
  // Mean subtasks per task is (3+6)/2 = 4.5.
  config.num_tasks = static_cast<int>(
      std::max<std::size_t>(1, 2 * num_subtasks / 9));
  config.extra_edge_prob = 0.15;
  config.target_utilization = 0.8;
  // Scale the trigger period with the expected per-resource load so the sum
  // of min shares (wcet / period) per resource stays near 0.3 of capacity at
  // any size — keeping both the hard min-share validity check and the
  // equal-split schedulable witness comfortable.
  const double per_resource =
      static_cast<double>(num_subtasks) / config.num_resources;
  const double mean_wcet = 0.5 * (config.min_wcet_ms + config.max_wcet_ms);
  config.trigger_period_ms =
      std::max(100.0, per_resource * mean_wcet / (0.3 * config.capacity));
  config.scaled_sampling = true;
  return config;
}

}  // namespace lla
