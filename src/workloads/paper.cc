#include "workloads/paper.h"

#include <cassert>
#include <string>

#include "model/trigger.h"
#include "model/utility.h"

namespace lla {
namespace {

struct SubtaskDef {
  int resource;
  double wcet;
};

struct TaskDef {
  const char* name;
  double critical_time;
  std::vector<SubtaskDef> subtasks;
  std::vector<std::pair<int, int>> edges;
};

// Figure 4 / Table 1.  Resource ids and execution times are verbatim from
// Table 1; the graphs are the reconstruction documented in paper.h.
const std::vector<TaskDef>& BaseTaskDefs() {
  static const std::vector<TaskDef> defs = {
      {"push-multicast",
       45.0,
       {{0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 4}, {5, 3}, {6, 2}},
       {{0, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}}},
      {"complex-pull",
       76.0,
       {{0, 2}, {1, 4}, {2, 3}, {4, 6}, {5, 7}, {6, 5}, {3, 2}, {7, 3}},
       {{0, 1}, {1, 2}, {1, 3}, {3, 4}, {3, 5}, {5, 6}, {6, 7}}},
      {"client-server",
       53.0,
       {{0, 3}, {1, 2}, {2, 2}, {4, 3}, {6, 4}, {7, 4}},
       {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}},
  };
  return defs;
}

constexpr int kNumResources = 8;

std::vector<ResourceSpec> MakeResources(const SimWorkloadOptions& options) {
  std::vector<ResourceSpec> resources;
  resources.reserve(kNumResources);
  for (int r = 0; r < kNumResources; ++r) {
    ResourceSpec spec;
    spec.name = (r % 2 == 0 ? "cpu" : "link") + std::to_string(r);
    spec.kind = r % 2 == 0 ? ResourceKind::kCpu : ResourceKind::kNetworkLink;
    spec.capacity = options.capacity;
    spec.lag_ms = options.lag_ms;
    resources.push_back(std::move(spec));
  }
  return resources;
}

TaskSpec MakeTask(const TaskDef& def, const SimWorkloadOptions& options,
                  int replica) {
  TaskSpec task;
  task.name = std::string(def.name) +
              (replica == 0 ? "" : "#" + std::to_string(replica));
  task.critical_time_ms = def.critical_time;
  task.edges = def.edges;
  task.utility = MakePaperSimUtility(def.critical_time, options.k);
  task.trigger = TriggerSpec::Periodic(options.period_ms);
  for (std::size_t i = 0; i < def.subtasks.size(); ++i) {
    SubtaskSpec sub;
    sub.name = task.name + ".s" + std::to_string(i);
    sub.resource = ResourceId(static_cast<std::size_t>(def.subtasks[i].resource));
    sub.wcet_ms = def.subtasks[i].wcet;
    sub.min_share =
        options.with_min_share ? def.subtasks[i].wcet / options.period_ms : 0.0;
    task.subtasks.push_back(std::move(sub));
  }
  return task;
}

}  // namespace

Expected<Workload> MakeSimWorkload(SimWorkloadOptions options) {
  return MakeScaledSimWorkload(1, false, options);
}

Expected<Workload> MakeScaledSimWorkload(int replication,
                                         bool scale_critical_times,
                                         SimWorkloadOptions options) {
  assert(replication >= 1);
  std::vector<TaskSpec> tasks;
  for (int replica = 0; replica < replication; ++replica) {
    for (const TaskDef& def : BaseTaskDefs()) {
      TaskSpec task = MakeTask(def, options, replica);
      if (scale_critical_times && replication > 1) {
        task.critical_time_ms *= replication;
        task.utility =
            MakePaperSimUtility(task.critical_time_ms, options.k);
      }
      tasks.push_back(std::move(task));
    }
  }
  return Workload::Create(MakeResources(options), std::move(tasks));
}

Expected<Workload> MakePrototypeWorkload(PrototypeWorkloadOptions opts) {
  std::vector<ResourceSpec> resources;
  for (int r = 0; r < 3; ++r) {
    ResourceSpec spec;
    spec.name = "cpu" + std::to_string(r);
    spec.kind = ResourceKind::kCpu;
    spec.capacity = 1.0 - opts.gc_share;
    spec.lag_ms = opts.lag_ms;
    resources.push_back(std::move(spec));
  }

  std::vector<TaskSpec> tasks;
  for (int t = 0; t < 4; ++t) {
    const bool fast = t < 2;
    const double wcet = fast ? opts.fast_wcet_ms : opts.slow_wcet_ms;
    const double rate = fast ? opts.fast_rate_per_s : opts.slow_rate_per_s;
    TaskSpec task;
    task.name = (fast ? "fast" : "slow") + std::to_string(t + 1);
    task.critical_time_ms =
        fast ? opts.fast_critical_ms : opts.slow_critical_ms;
    task.utility = MakePrototypeUtility();
    task.trigger = TriggerSpec::Periodic(1000.0 / rate,
                                         /*phase_ms=*/t * 2.5);
    for (int j = 0; j < 3; ++j) {
      SubtaskSpec sub;
      sub.name = task.name + ".s" + std::to_string(j);
      sub.resource = ResourceId(static_cast<std::size_t>(j));
      sub.wcet_ms = wcet;
      sub.min_share = rate * wcet / 1000.0;  // 0.2 fast, 0.13 slow
      task.subtasks.push_back(std::move(sub));
    }
    task.edges = {{0, 1}, {1, 2}};
    tasks.push_back(std::move(task));
  }
  return Workload::Create(std::move(resources), std::move(tasks));
}

const Table1Reference& GetTable1Reference() {
  static const Table1Reference ref = {
      // T11..T17, T21..T28, T31..T36 (ms)
      {9.7, 13.8, 19.5, 14.4, 21.4, 10.5, 19.2,           // task 1
       10.3, 15.0, 15.1, 19.3, 12.8, 16.6, 5.1, 9.3,      // task 2
       9.9, 7.9, 6.2, 9.8, 10.3, 8.7},                    // task 3
      {45.0, 76.0, 53.0},
      {44.9, 75.6, 52.8},
  };
  return ref;
}

}  // namespace lla
