// Random workload generation for property tests and stress benches.
//
// Generates tasks with random DAG shapes (chains, trees, general DAGs) and
// random execution times, then calibrates critical times so that the
// equal-split share assignment (every subtask on resource r receives
// B_r / n_r) meets all deadlines with a configurable margin — a
// constructive witness that the workload is schedulable.  Setting
// `target_utilization` above 1 instead produces (likely) unschedulable
// workloads for negative testing.
#pragma once

#include <cstdint>

#include "common/expected.h"
#include "model/workload.h"

namespace lla {

struct RandomWorkloadConfig {
  std::uint64_t seed = 1;
  int num_resources = 8;
  int num_tasks = 4;
  int min_subtasks = 3;
  int max_subtasks = 6;  ///< must be <= num_resources
  double min_wcet_ms = 1.0;
  double max_wcet_ms = 8.0;
  double lag_ms = 1.0;
  double capacity = 1.0;
  /// Probability that a non-root node gets a second incoming edge,
  /// producing general DAGs instead of trees.
  double extra_edge_prob = 0.25;
  /// Critical time = equal-split critical path / target_utilization.
  /// < 1 leaves slack (schedulable); > 1 overconstrains.
  double target_utilization = 0.8;
  double trigger_period_ms = 100.0;
  /// Utility f_i(x) = k*C_i - x.
  double utility_k = 2.0;
  /// Samples each task's resources with a partial Fisher-Yates over a
  /// persistent pool — O(subtasks) per task instead of O(num_resources) —
  /// which is what makes 10^5-subtask generation cheap.  The draw produces
  /// the same uniform distinct-subset distribution but a different RNG
  /// stream, so it is opt-in to keep existing seeds byte-identical.
  bool scaled_sampling = false;
};

Expected<Workload> MakeRandomWorkload(const RandomWorkloadConfig& config);

/// The size-parameterized random_100k family (random_1k / random_10k /
/// random_100k / random_1m in the scale bench): ~`num_subtasks` subtasks
/// spread over
/// num_subtasks/200 resources (min 8) in tasks of 3-6 subtasks, with
/// trigger periods scaled to the per-resource load so the per-resource
/// min-share capacity check and the equal-split schedulable witness hold at
/// any size.  Feed the result to MakeRandomWorkload.
RandomWorkloadConfig ScaledRandomWorkloadConfig(std::size_t num_subtasks,
                                                std::uint64_t seed = 1);

}  // namespace lla
