// Workload transforms: Workload is immutable, so runtime changes (a link
// losing capacity, an SLA renegotiation, a task joining/leaving) are
// expressed as clone-with-edit.  Combined with LlaEngine::WarmStart the
// optimizer resumes from its previous prices and re-converges quickly —
// the paper's "adapts to both workload and resource variations" (Sec. 1).
#pragma once

#include <functional>

#include "common/expected.h"
#include "core/prices.h"
#include "model/workload.h"

namespace lla {

/// The raw specs a Workload was built from (reconstructed losslessly).
struct WorkloadSpecs {
  std::vector<ResourceSpec> resources;
  std::vector<TaskSpec> tasks;
};

/// Reconstructs editable specs from a validated workload.
WorkloadSpecs ExtractSpecs(const Workload& workload);

/// Clone-with-edit: the editors may mutate any spec; the result is
/// re-validated from scratch.  Pass nullptr to skip an editor.
Expected<Workload> Rebuild(
    const Workload& workload,
    const std::function<void(ResourceId, ResourceSpec&)>& edit_resource,
    const std::function<void(TaskId, TaskSpec&)>& edit_task = nullptr);

/// Convenience: one resource's capacity changes (failure / failover /
/// recovery).  Capacity must stay in (0, 1].
Expected<Workload> WithResourceCapacity(const Workload& workload,
                                        ResourceId resource, double capacity);

/// Convenience: scales every task's critical time by `factor` and, when
/// `rescale_linear_utility` is set, rebuilds f = 2C - x style linear
/// utilities around the new C (non-linear utilities are kept as-is).
Expected<Workload> WithScaledCriticalTimes(const Workload& workload,
                                           double factor,
                                           bool rescale_linear_utility = true);

/// Convenience: removes one task (admission control evicting it).
Expected<Workload> WithoutTask(const Workload& workload, TaskId task);

/// Convenience: appends one task (admission control accepting it).  The new
/// task validates against the existing resource set; its id in the result is
/// the old task_count().
Expected<Workload> WithTask(const Workload& workload, TaskSpec task);

/// Describes how a new workload structurally relates to the old one a price
/// vector came from, so LlaEngine::WarmStartStructural can remap the dual
/// state internally.  Resources are fixed across both kinds; exactly one
/// task differs.
struct StructuralChange {
  enum class Kind {
    kTaskLeave,  ///< `task` (an OLD-workload id) departed
    kTaskJoin,   ///< `task` (a NEW-workload id) joined
  };
  Kind kind = Kind::kTaskLeave;
  TaskId task;

  static StructuralChange TaskLeave(TaskId removed) {
    return {Kind::kTaskLeave, removed};
  }
  static StructuralChange TaskJoin(TaskId added) {
    return {Kind::kTaskJoin, added};
  }
};

/// Maps the dual prices of `old_workload` onto the price index space of
/// `old_workload` minus `removed` (mu copies 1:1 — the resource set is
/// untouched).  Paths are ordered by task and, per task, in dag order; both
/// orders survive a task removal, so the lambda mapping is a filtered copy
/// of the surviving tasks' entries in their original order.
PriceVector MapPricesWithoutTask(const Workload& old_workload,
                                 const PriceVector& prices, TaskId removed);

/// Inverse for a join: maps `old_prices` (from the workload WITHOUT the
/// task) onto `new_workload`'s index space, where `added` is the joined
/// task's id in `new_workload`.  Surviving tasks keep their lambda in
/// order; the joined task's paths start at `initial_lambda` (projected to
/// >= 0); mu copies 1:1.
PriceVector MapPricesWithTask(const Workload& new_workload,
                              const PriceVector& old_prices, TaskId added,
                              double initial_lambda = 0.0);

}  // namespace lla
