// Workload transforms: Workload is immutable, so runtime changes (a link
// losing capacity, an SLA renegotiation, a task joining/leaving) are
// expressed as clone-with-edit.  Combined with LlaEngine::WarmStart the
// optimizer resumes from its previous prices and re-converges quickly —
// the paper's "adapts to both workload and resource variations" (Sec. 1).
#pragma once

#include <functional>

#include "common/expected.h"
#include "model/workload.h"

namespace lla {

/// The raw specs a Workload was built from (reconstructed losslessly).
struct WorkloadSpecs {
  std::vector<ResourceSpec> resources;
  std::vector<TaskSpec> tasks;
};

/// Reconstructs editable specs from a validated workload.
WorkloadSpecs ExtractSpecs(const Workload& workload);

/// Clone-with-edit: the editors may mutate any spec; the result is
/// re-validated from scratch.  Pass nullptr to skip an editor.
Expected<Workload> Rebuild(
    const Workload& workload,
    const std::function<void(ResourceId, ResourceSpec&)>& edit_resource,
    const std::function<void(TaskId, TaskSpec&)>& edit_task = nullptr);

/// Convenience: one resource's capacity changes (failure / failover /
/// recovery).  Capacity must stay in (0, 1].
Expected<Workload> WithResourceCapacity(const Workload& workload,
                                        ResourceId resource, double capacity);

/// Convenience: scales every task's critical time by `factor` and, when
/// `rescale_linear_utility` is set, rebuilds f = 2C - x style linear
/// utilities around the new C (non-linear utilities are kept as-is).
Expected<Workload> WithScaledCriticalTimes(const Workload& workload,
                                           double factor,
                                           bool rescale_linear_utility = true);

/// Convenience: removes one task (admission control evicting it).
Expected<Workload> WithoutTask(const Workload& workload, TaskId task);

}  // namespace lla
