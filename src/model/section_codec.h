// Shared word-level codec of the binary snapshot format "b1"
// (DESIGN.md §7.10) — extracted from serialization.cc so the wire path can
// reuse the exact encoders (DESIGN.md §7.11).
//
// A "section" is a contiguous array of fixed-width words (f64 / u32 / u8
// bit patterns) stored in one of three encodings, chosen by encoded size:
//   raw    — count * width contiguous little-endian words (mmap-friendly);
//   rle    — u64 run_count, then (u64 run_len, word) pairs;
//   sparse — u64 nnz, then (u32 index, word) pairs, strictly increasing.
// Every encoding preserves the exact bit patterns (zero means bit-pattern
// zero: -0.0 never qualifies as an implicit sparse zero), so a round-trip
// is bitwise-identical regardless of the encoding picked.
//
// The snapshot writer frames sections with a table (id/kind/count/offset/
// size); the wire messages frame them inline with a 1-byte encoding tag and
// derive the encoded length from the leading run/nnz word.  Both call the
// Encode/Decode pair below, so the byte layouts stay in lockstep.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace lla::b1 {

inline constexpr std::uint8_t kEncodingRaw = 0;
inline constexpr std::uint8_t kEncodingRle = 1;
inline constexpr std::uint8_t kEncodingSparse = 2;

template <typename T>
void PutWord(std::string* out, T value) {
  static_assert(std::endian::native == std::endian::little,
                "snapshot b1 writes native little-endian words");
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T GetWord(const char* at) {
  T value;
  std::memcpy(&value, at, sizeof(value));
  return value;
}

template <typename T>
bool IsZeroWord(T v) {
  // Bit-pattern zero, not value zero: -0.0 must round-trip as -0.0, so it
  // does not qualify for the sparse encoding's implicit zeros.
  T zero{};
  return std::memcmp(&v, &zero, sizeof(T)) == 0;
}

/// Appends the size-minimal encoding of values[0..count) to *out and
/// returns the encoding chosen.  Exactly the choice rule the snapshot
/// writer has always used: rle when strictly smaller than raw and no larger
/// than sparse, else sparse when strictly smaller than raw, else raw.
template <typename T>
std::uint8_t EncodeWords(const T* values, std::size_t count,
                         std::string* out) {
  const std::size_t width = sizeof(T);
  std::size_t runs = count == 0 ? 0 : 1;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0 && std::memcmp(&values[i], &values[i - 1], width) != 0) ++runs;
    if (!IsZeroWord(values[i])) ++nnz;
  }
  const std::size_t raw_size = count * width;
  const std::size_t rle_size = 8 + runs * (8 + width);
  const bool sparse_ok = count <= 0xffffffffull;
  const std::size_t sparse_size =
      sparse_ok ? 8 + nnz * (4 + width) : raw_size + 1;

  if (rle_size < raw_size && rle_size <= sparse_size) {
    PutWord<std::uint64_t>(out, runs);
    std::size_t i = 0;
    while (i < count) {
      std::size_t j = i + 1;
      while (j < count && std::memcmp(&values[j], &values[i], width) == 0) {
        ++j;
      }
      PutWord<std::uint64_t>(out, j - i);
      out->append(reinterpret_cast<const char*>(&values[i]), width);
      i = j;
    }
    return kEncodingRle;
  }
  if (sparse_ok && sparse_size < raw_size) {
    PutWord<std::uint64_t>(out, nnz);
    for (std::size_t i = 0; i < count; ++i) {
      if (IsZeroWord(values[i])) continue;
      PutWord<std::uint32_t>(out, static_cast<std::uint32_t>(i));
      out->append(reinterpret_cast<const char*>(&values[i]), width);
    }
    return kEncodingSparse;
  }
  out->append(reinterpret_cast<const char*>(values), raw_size);
  return kEncodingRaw;
}

/// The encoded byte length of a section whose frame does not record it (the
/// wire messages): derived from `count` for raw, from the leading run/nnz
/// word otherwise.  False when `avail` bytes cannot hold the section or the
/// encoding byte is unknown.
template <typename T>
bool EncodedWordsSize(const char* at, std::size_t avail, std::uint8_t encoding,
                      std::size_t count, std::size_t* size) {
  const std::size_t width = sizeof(T);
  if (encoding == kEncodingRaw) {
    *size = count * width;
  } else if (encoding == kEncodingRle) {
    if (avail < 8) return false;
    const std::uint64_t runs = GetWord<std::uint64_t>(at);
    if (runs > count) return false;  // each run covers >= 1 element
    *size = 8 + static_cast<std::size_t>(runs) * (8 + width);
  } else if (encoding == kEncodingSparse) {
    if (avail < 8) return false;
    const std::uint64_t nnz = GetWord<std::uint64_t>(at);
    if (nnz > count) return false;
    *size = 8 + static_cast<std::size_t>(nnz) * (4 + width);
  } else {
    return false;
  }
  return *size <= avail;
}

/// Decodes `count` words of the given encoding from [at, at + size) into
/// out[0..count).  `size` must be the exact encoded length; every malformed
/// shape (size mismatch, zero-length or overlong runs, out-of-range or
/// non-increasing sparse indices) is rejected with a message.
template <typename T>
bool DecodeWords(const char* at, std::size_t size, std::uint8_t encoding,
                 std::size_t count, T* out, std::string* error) {
  const std::size_t width = sizeof(T);
  if (encoding == kEncodingRaw) {
    if (size != count * width) {
      *error = "raw section size does not match element count";
      return false;
    }
    std::memcpy(out, at, size);
    return true;
  }
  if (encoding == kEncodingRle) {
    if (size < 8) {
      *error = "rle section too small for its run count";
      return false;
    }
    const std::uint64_t runs = GetWord<std::uint64_t>(at);
    // Each run covers >= 1 element, so runs <= count; with count capped by
    // the caller this also keeps the size product below u64 overflow.
    if (runs > count || size != 8 + runs * (8 + width)) {
      *error = "rle section size does not match run count";
      return false;
    }
    std::size_t filled = 0;
    const char* run = at + 8;
    for (std::uint64_t i = 0; i < runs; ++i) {
      const std::uint64_t len = GetWord<std::uint64_t>(run);
      if (len == 0 || len > count - filled) {
        *error = "rle runs do not sum to the element count";
        return false;
      }
      T value;
      std::memcpy(&value, run + 8, width);
      std::fill_n(out + filled, len, value);
      filled += len;
      run += 8 + width;
    }
    if (filled != count) {
      *error = "rle runs do not sum to the element count";
      return false;
    }
    return true;
  }
  if (encoding == kEncodingSparse) {
    if (size < 8) {
      *error = "sparse section too small for its entry count";
      return false;
    }
    const std::uint64_t nnz = GetWord<std::uint64_t>(at);
    if (size != 8 + nnz * (4 + width) || nnz > count) {
      *error = "sparse section size does not match entry count";
      return false;
    }
    std::fill(out, out + count, T{});
    const char* pair = at + 8;
    std::uint64_t prev_plus_one = 0;
    for (std::uint64_t i = 0; i < nnz; ++i) {
      const std::uint32_t index = GetWord<std::uint32_t>(pair);
      if (index >= count || index + 1 <= prev_plus_one) {
        *error = "sparse section indices not strictly increasing in range";
        return false;
      }
      std::memcpy(&out[index], pair + 4, width);
      prev_plus_one = static_cast<std::uint64_t>(index) + 1;
      pair += 4 + width;
    }
    return true;
  }
  *error = "unknown section encoding";
  return false;
}

/// DecodeWords' validation without the output writes: checks that
/// [at, at + size) is a structurally well-formed encoding of `count` words.
/// The zero-copy snapshot parse runs this once up front so materialization
/// (possibly much later, straight into the consumer's buffers) cannot fail.
/// Error strings are identical to DecodeWords'.
template <typename T>
bool ValidateWords(const char* at, std::size_t size, std::uint8_t encoding,
                   std::size_t count, std::string* error) {
  const std::size_t width = sizeof(T);
  if (encoding == kEncodingRaw) {
    if (size != count * width) {
      *error = "raw section size does not match element count";
      return false;
    }
    return true;
  }
  if (encoding == kEncodingRle) {
    if (size < 8) {
      *error = "rle section too small for its run count";
      return false;
    }
    const std::uint64_t runs = GetWord<std::uint64_t>(at);
    if (runs > count || size != 8 + runs * (8 + width)) {
      *error = "rle section size does not match run count";
      return false;
    }
    std::size_t filled = 0;
    const char* run = at + 8;
    for (std::uint64_t i = 0; i < runs; ++i) {
      const std::uint64_t len = GetWord<std::uint64_t>(run);
      if (len == 0 || len > count - filled) {
        *error = "rle runs do not sum to the element count";
        return false;
      }
      filled += len;
      run += 8 + width;
    }
    if (filled != count) {
      *error = "rle runs do not sum to the element count";
      return false;
    }
    return true;
  }
  if (encoding == kEncodingSparse) {
    if (size < 8) {
      *error = "sparse section too small for its entry count";
      return false;
    }
    const std::uint64_t nnz = GetWord<std::uint64_t>(at);
    if (size != 8 + nnz * (4 + width) || nnz > count) {
      *error = "sparse section size does not match entry count";
      return false;
    }
    const char* pair = at + 8;
    std::uint64_t prev_plus_one = 0;
    for (std::uint64_t i = 0; i < nnz; ++i) {
      const std::uint32_t index = GetWord<std::uint32_t>(pair);
      if (index >= count || index + 1 <= prev_plus_one) {
        *error = "sparse section indices not strictly increasing in range";
        return false;
      }
      prev_plus_one = static_cast<std::uint64_t>(index) + 1;
      pair += 4 + width;
    }
    return true;
  }
  *error = "unknown section encoding";
  return false;
}

}  // namespace lla::b1
