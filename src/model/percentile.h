// Latency-percentile composition (paper Sec. 2.1).
//
// If each of the n subtasks on a path meets its latency bound with
// probability q (independently), the path meets the sum of the bounds with
// probability q^n.  So to compute utility from the p-th end-to-end latency
// percentile, each subtask must use its q = p^(1/n) percentile.  The paper
// states this in percent notation: q_pct = p_pct^(1/n) * 100^((n-1)/n).
#pragma once

namespace lla {

/// Per-subtask percentile (as a fraction in (0,1]) needed so that a path of
/// `path_length` subtasks achieves the end-to-end `path_fraction` percentile.
/// path_fraction in (0, 1], path_length >= 1.
double PerSubtaskPercentile(double path_fraction, int path_length);

/// End-to-end percentile achieved by a path of `path_length` subtasks when
/// each subtask uses its `subtask_fraction` percentile bound.
double PathPercentile(double subtask_fraction, int path_length);

/// Percent-notation variant matching the paper's formula:
/// returns p^(1/n) * 100^((n-1)/n) for p in (0, 100].
double PerSubtaskPercentilePct(double path_pct, int path_length);

}  // namespace lla
