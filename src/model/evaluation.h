// Evaluation of a latency assignment against a workload: utilities,
// resource share sums, path latencies, and constraint violations.
//
// These are the quantities in the paper's objective (Eq. 2) and constraints
// (Eqs. 3-4), and the diagnostics its figures plot (total utility, per-
// resource share sums, critical-path-to-critical-time ratios).
//
// Two forms are provided.  The scalar helpers (ResourceShareSum,
// PathLatency, ...) evaluate one resource/path/task at a time and are the
// reference oracles.  The Fill* variants evaluate everything into
// caller-owned flat arrays in one sweep — no allocation in steady state and
// each quantity computed exactly once per iteration — and the *FromArrays
// helpers derive feasibility from those arrays instead of re-walking the
// workload.  Every Fill*/FromArrays result is bit-identical to the scalar
// oracle (same iteration order, same arithmetic), for any thread count.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

/// A latency assignment: latencies_ms[s] is the predicted latency of global
/// subtask s.  Produced by LLA, the baselines, and the reference solver.
using Assignment = std::vector<double>;

/// U_i = f_i(sum of weighted subtask latencies) for one task.
double TaskUtility(const Workload& workload, TaskId task,
                   const Assignment& latencies, UtilityVariant variant);

/// Objective of Eq. 2: sum of task utilities.
double TotalUtility(const Workload& workload, const Assignment& latencies,
                    UtilityVariant variant);

/// Left-hand side of Eq. 3 for one resource: sum of subtask shares.
double ResourceShareSum(const Workload& workload, const LatencyModel& model,
                        ResourceId resource, const Assignment& latencies);

/// Left-hand side of Eq. 4 for one path: sum of subtask latencies on it.
double PathLatency(const Workload& workload, PathId path,
                   const Assignment& latencies);

/// Latency of the task's critical path: max over its paths of PathLatency.
double CriticalPathLatency(const Workload& workload, TaskId task,
                           const Assignment& latencies);

/// Summary of how (in)feasible an assignment is.
struct FeasibilityReport {
  bool feasible = true;
  /// max over resources of (share sum - capacity), clamped at >= 0.
  double max_resource_excess = 0.0;
  /// max over paths of (path latency / critical time); > 1 means violated.
  double max_path_ratio = 0.0;
  /// per-resource share sums, indexed by ResourceId.
  std::vector<double> resource_share_sums;
  /// per-task critical-path latencies, indexed by TaskId.
  std::vector<double> critical_paths;
};

/// Checks Eq. 3 and Eq. 4 with the given tolerance (relative slack allowed
/// on each constraint; the dual algorithm converges to the boundary, so a
/// small tolerance is appropriate when classifying its output).
FeasibilityReport CheckFeasibility(const Workload& workload,
                                   const LatencyModel& model,
                                   const Assignment& latencies,
                                   double tolerance = 1e-6);

/// ResourceShareSum for every resource into `sums` (resized to
/// resource_count; reuse the buffer to stay allocation-free).  With a pool
/// the sweep is split over resources.
void FillResourceShareSums(const Workload& workload, const LatencyModel& model,
                           const Assignment& latencies,
                           std::vector<double>* sums,
                           ThreadPool* pool = nullptr);

/// PathLatency for every path into `latencies_out` (resized to path_count).
void FillPathLatencies(const Workload& workload, const Assignment& latencies,
                       std::vector<double>* latencies_out,
                       ThreadPool* pool = nullptr);

/// Per-task latency aggregate X_i (the weighted subtask sum f_i is applied
/// to) and utility f_i(X_i), both indexed by TaskId.  TotalUtility is the
/// serial sum of `utilities` in task order.
void FillTaskAggregates(const Workload& workload, const Assignment& latencies,
                        UtilityVariant variant,
                        std::vector<double>* weighted_latencies,
                        std::vector<double>* utilities,
                        ThreadPool* pool = nullptr);

/// Range forms of the Fill* sweeps: compute items [begin, end) into
/// already-sized output arrays.  These are the chunk bodies a caller-managed
/// parallel region uses to pack several sweeps into one fork-join (see
/// SolveAndFillStepWorkspace); each writes only its chunk's slots and uses
/// the same iteration order and arithmetic as the full Fill*, so chunked
/// results stay bit-identical to the scalar oracles.
void FillResourceShareSumsRange(const Workload& workload,
                                const LatencyModel& model,
                                const Assignment& latencies, std::size_t begin,
                                std::size_t end, std::vector<double>* sums);
void FillPathLatenciesRange(const Workload& workload,
                            const Assignment& latencies, std::size_t begin,
                            std::size_t end,
                            std::vector<double>* latencies_out);
void FillTaskAggregatesRange(const Workload& workload,
                             const Assignment& latencies,
                             UtilityVariant variant, std::size_t begin,
                             std::size_t end,
                             std::vector<double>* weighted_latencies,
                             std::vector<double>* utilities);

/// The three FeasibilityReport scalars without the per-resource/per-task
/// vectors — the per-iteration form (no allocation).
struct FeasibilitySummary {
  bool feasible = true;
  double max_resource_excess = 0.0;
  double max_path_ratio = 0.0;
};

/// CheckFeasibility's verdict from already-computed share sums and path
/// latencies (as filled by FillResourceShareSums / FillPathLatencies).
FeasibilitySummary SummarizeFeasibility(
    const Workload& workload, const std::vector<double>& resource_share_sums,
    const std::vector<double>& path_latencies, double tolerance = 1e-6);

/// Full CheckFeasibility report from the same arrays (for callers that need
/// the per-resource/per-task vectors, e.g. the distributed coordinator).
FeasibilityReport FeasibilityFromArrays(
    const Workload& workload, const std::vector<double>& resource_share_sums,
    const std::vector<double>& path_latencies, double tolerance = 1e-6);

}  // namespace lla
