#include "model/evaluation.h"

#include <algorithm>
#include <cassert>

namespace lla {

double TaskUtility(const Workload& workload, TaskId task,
                   const Assignment& latencies, UtilityVariant variant) {
  assert(latencies.size() == workload.subtask_count());
  const TaskInfo& info = workload.task(task);
  double weighted = 0.0;
  for (SubtaskId sid : info.subtasks) {
    weighted += workload.Weight(sid, variant) * latencies[sid.value()];
  }
  return info.utility->Value(weighted);
}

double TotalUtility(const Workload& workload, const Assignment& latencies,
                    UtilityVariant variant) {
  double total = 0.0;
  for (const TaskInfo& task : workload.tasks()) {
    total += TaskUtility(workload, task.id, latencies, variant);
  }
  return total;
}

double ResourceShareSum(const Workload& workload, const LatencyModel& model,
                        ResourceId resource, const Assignment& latencies) {
  assert(latencies.size() == workload.subtask_count());
  double sum = 0.0;
  for (SubtaskId sid : workload.resource(resource).subtasks) {
    sum += model.share(sid).Share(latencies[sid.value()]);
  }
  return sum;
}

double PathLatency(const Workload& workload, PathId path,
                   const Assignment& latencies) {
  assert(latencies.size() == workload.subtask_count());
  double sum = 0.0;
  for (SubtaskId sid : workload.path(path).subtasks) {
    sum += latencies[sid.value()];
  }
  return sum;
}

double CriticalPathLatency(const Workload& workload, TaskId task,
                           const Assignment& latencies) {
  double worst = 0.0;
  for (PathId pid : workload.task(task).paths) {
    worst = std::max(worst, PathLatency(workload, pid, latencies));
  }
  return worst;
}

FeasibilityReport CheckFeasibility(const Workload& workload,
                                   const LatencyModel& model,
                                   const Assignment& latencies,
                                   double tolerance) {
  FeasibilityReport report;
  report.resource_share_sums.reserve(workload.resource_count());
  for (const ResourceInfo& resource : workload.resources()) {
    const double sum =
        ResourceShareSum(workload, model, resource.id, latencies);
    report.resource_share_sums.push_back(sum);
    const double excess = sum - resource.capacity;
    report.max_resource_excess = std::max(report.max_resource_excess, excess);
    if (excess > tolerance * resource.capacity) report.feasible = false;
  }
  report.critical_paths.reserve(workload.task_count());
  for (const TaskInfo& task : workload.tasks()) {
    const double crit = CriticalPathLatency(workload, task.id, latencies);
    report.critical_paths.push_back(crit);
    const double ratio = crit / task.critical_time_ms;
    report.max_path_ratio = std::max(report.max_path_ratio, ratio);
    if (ratio > 1.0 + tolerance) report.feasible = false;
  }
  report.max_resource_excess = std::max(report.max_resource_excess, 0.0);
  return report;
}

void FillResourceShareSumsRange(const Workload& workload,
                                const LatencyModel& model,
                                const Assignment& latencies, std::size_t begin,
                                std::size_t end, std::vector<double>* sums) {
  const std::vector<ResourceInfo>& resources = workload.resources();
  for (std::size_t r = begin; r < end; ++r) {
    double sum = 0.0;
    for (SubtaskId sid : resources[r].subtasks) {
      sum += model.share(sid).Share(latencies[sid.value()]);
    }
    (*sums)[r] = sum;
  }
}

void FillResourceShareSums(const Workload& workload, const LatencyModel& model,
                           const Assignment& latencies,
                           std::vector<double>* sums, ThreadPool* pool) {
  assert(latencies.size() == workload.subtask_count());
  sums->resize(workload.resource_count());
  StaticParallelFor(pool, workload.resources().size(),
                    [&](std::size_t begin, std::size_t end) {
                      FillResourceShareSumsRange(workload, model, latencies,
                                                 begin, end, sums);
                    });
}

void FillPathLatenciesRange(const Workload& workload,
                            const Assignment& latencies, std::size_t begin,
                            std::size_t end,
                            std::vector<double>* latencies_out) {
  const std::vector<PathInfo>& paths = workload.paths();
  for (std::size_t p = begin; p < end; ++p) {
    double sum = 0.0;
    for (SubtaskId sid : paths[p].subtasks) {
      sum += latencies[sid.value()];
    }
    (*latencies_out)[p] = sum;
  }
}

void FillPathLatencies(const Workload& workload, const Assignment& latencies,
                       std::vector<double>* latencies_out, ThreadPool* pool) {
  assert(latencies.size() == workload.subtask_count());
  latencies_out->resize(workload.path_count());
  StaticParallelFor(pool, workload.paths().size(),
                    [&](std::size_t begin, std::size_t end) {
                      FillPathLatenciesRange(workload, latencies, begin, end,
                                             latencies_out);
                    });
}

void FillTaskAggregatesRange(const Workload& workload,
                             const Assignment& latencies,
                             UtilityVariant variant, std::size_t begin,
                             std::size_t end,
                             std::vector<double>* weighted_latencies,
                             std::vector<double>* utilities) {
  const std::vector<TaskInfo>& tasks = workload.tasks();
  for (std::size_t t = begin; t < end; ++t) {
    double weighted = 0.0;
    for (SubtaskId sid : tasks[t].subtasks) {
      weighted += workload.Weight(sid, variant) * latencies[sid.value()];
    }
    (*weighted_latencies)[t] = weighted;
    (*utilities)[t] = tasks[t].utility->Value(weighted);
  }
}

void FillTaskAggregates(const Workload& workload, const Assignment& latencies,
                        UtilityVariant variant,
                        std::vector<double>* weighted_latencies,
                        std::vector<double>* utilities, ThreadPool* pool) {
  assert(latencies.size() == workload.subtask_count());
  weighted_latencies->resize(workload.task_count());
  utilities->resize(workload.task_count());
  StaticParallelFor(pool, workload.tasks().size(),
                    [&](std::size_t begin, std::size_t end) {
                      FillTaskAggregatesRange(workload, latencies, variant,
                                              begin, end, weighted_latencies,
                                              utilities);
                    });
}

FeasibilitySummary SummarizeFeasibility(
    const Workload& workload, const std::vector<double>& resource_share_sums,
    const std::vector<double>& path_latencies, double tolerance) {
  assert(resource_share_sums.size() == workload.resource_count());
  assert(path_latencies.size() == workload.path_count());
  FeasibilitySummary summary;
  for (const ResourceInfo& resource : workload.resources()) {
    const double excess =
        resource_share_sums[resource.id.value()] - resource.capacity;
    summary.max_resource_excess =
        std::max(summary.max_resource_excess, excess);
    if (excess > tolerance * resource.capacity) summary.feasible = false;
  }
  for (const TaskInfo& task : workload.tasks()) {
    double crit = 0.0;
    for (PathId pid : task.paths) {
      crit = std::max(crit, path_latencies[pid.value()]);
    }
    const double ratio = crit / task.critical_time_ms;
    summary.max_path_ratio = std::max(summary.max_path_ratio, ratio);
    if (ratio > 1.0 + tolerance) summary.feasible = false;
  }
  summary.max_resource_excess = std::max(summary.max_resource_excess, 0.0);
  return summary;
}

FeasibilityReport FeasibilityFromArrays(
    const Workload& workload, const std::vector<double>& resource_share_sums,
    const std::vector<double>& path_latencies, double tolerance) {
  assert(resource_share_sums.size() == workload.resource_count());
  assert(path_latencies.size() == workload.path_count());
  FeasibilityReport report;
  report.resource_share_sums = resource_share_sums;
  for (const ResourceInfo& resource : workload.resources()) {
    const double excess =
        resource_share_sums[resource.id.value()] - resource.capacity;
    report.max_resource_excess = std::max(report.max_resource_excess, excess);
    if (excess > tolerance * resource.capacity) report.feasible = false;
  }
  report.critical_paths.reserve(workload.task_count());
  for (const TaskInfo& task : workload.tasks()) {
    double crit = 0.0;
    for (PathId pid : task.paths) {
      crit = std::max(crit, path_latencies[pid.value()]);
    }
    report.critical_paths.push_back(crit);
    const double ratio = crit / task.critical_time_ms;
    report.max_path_ratio = std::max(report.max_path_ratio, ratio);
    if (ratio > 1.0 + tolerance) report.feasible = false;
  }
  report.max_resource_excess = std::max(report.max_resource_excess, 0.0);
  return report;
}

}  // namespace lla
