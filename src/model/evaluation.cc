#include "model/evaluation.h"

#include <algorithm>
#include <cassert>

namespace lla {

double TaskUtility(const Workload& workload, TaskId task,
                   const Assignment& latencies, UtilityVariant variant) {
  assert(latencies.size() == workload.subtask_count());
  const TaskInfo& info = workload.task(task);
  double weighted = 0.0;
  for (SubtaskId sid : info.subtasks) {
    weighted += workload.Weight(sid, variant) * latencies[sid.value()];
  }
  return info.utility->Value(weighted);
}

double TotalUtility(const Workload& workload, const Assignment& latencies,
                    UtilityVariant variant) {
  double total = 0.0;
  for (const TaskInfo& task : workload.tasks()) {
    total += TaskUtility(workload, task.id, latencies, variant);
  }
  return total;
}

double ResourceShareSum(const Workload& workload, const LatencyModel& model,
                        ResourceId resource, const Assignment& latencies) {
  assert(latencies.size() == workload.subtask_count());
  double sum = 0.0;
  for (SubtaskId sid : workload.resource(resource).subtasks) {
    sum += model.share(sid).Share(latencies[sid.value()]);
  }
  return sum;
}

double PathLatency(const Workload& workload, PathId path,
                   const Assignment& latencies) {
  assert(latencies.size() == workload.subtask_count());
  double sum = 0.0;
  for (SubtaskId sid : workload.path(path).subtasks) {
    sum += latencies[sid.value()];
  }
  return sum;
}

double CriticalPathLatency(const Workload& workload, TaskId task,
                           const Assignment& latencies) {
  double worst = 0.0;
  for (PathId pid : workload.task(task).paths) {
    worst = std::max(worst, PathLatency(workload, pid, latencies));
  }
  return worst;
}

FeasibilityReport CheckFeasibility(const Workload& workload,
                                   const LatencyModel& model,
                                   const Assignment& latencies,
                                   double tolerance) {
  FeasibilityReport report;
  report.resource_share_sums.reserve(workload.resource_count());
  for (const ResourceInfo& resource : workload.resources()) {
    const double sum =
        ResourceShareSum(workload, model, resource.id, latencies);
    report.resource_share_sums.push_back(sum);
    const double excess = sum - resource.capacity;
    report.max_resource_excess = std::max(report.max_resource_excess, excess);
    if (excess > tolerance * resource.capacity) report.feasible = false;
  }
  report.critical_paths.reserve(workload.task_count());
  for (const TaskInfo& task : workload.tasks()) {
    const double crit = CriticalPathLatency(workload, task.id, latencies);
    report.critical_paths.push_back(crit);
    const double ratio = crit / task.critical_time_ms;
    report.max_path_ratio = std::max(report.max_path_ratio, ratio);
    if (ratio > 1.0 + tolerance) report.feasible = false;
  }
  report.max_resource_excess = std::max(report.max_resource_excess, 0.0);
  return report;
}

}  // namespace lla
