#include "model/utility.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace lla {

LinearUtility::LinearUtility(double offset, double slope)
    : offset_(offset), slope_(slope) {
  assert(slope >= 0.0);
}

double LinearUtility::Value(double x) const { return offset_ - slope_ * x; }

double LinearUtility::Derivative(double /*x*/) const { return -slope_; }

std::string LinearUtility::Describe() const {
  std::ostringstream os;
  os << "linear(" << offset_ << " - " << slope_ << "*x)";
  return os.str();
}

PowerUtility::PowerUtility(double offset, double coeff, double exponent)
    : offset_(offset), coeff_(coeff), exponent_(exponent) {
  assert(coeff >= 0.0);
  assert(exponent >= 1.0);
}

double PowerUtility::Value(double x) const {
  return offset_ - coeff_ * std::pow(x, exponent_);
}

double PowerUtility::Derivative(double x) const {
  return -coeff_ * exponent_ * std::pow(x, exponent_ - 1.0);
}

std::string PowerUtility::Describe() const {
  std::ostringstream os;
  os << "power(" << offset_ << " - " << coeff_ << "*x^" << exponent_ << ")";
  return os.str();
}

NegExpUtility::NegExpUtility(double offset, double rate)
    : offset_(offset), rate_(rate) {
  assert(rate > 0.0);
}

double NegExpUtility::Value(double x) const {
  return offset_ - std::exp(rate_ * x) / rate_;
}

double NegExpUtility::Derivative(double x) const {
  return -std::exp(rate_ * x);
}

std::string NegExpUtility::Describe() const {
  std::ostringstream os;
  os << "negexp(" << offset_ << " - exp(" << rate_ << "*x)/" << rate_ << ")";
  return os.str();
}

InelasticUtility::InelasticUtility(double plateau, double flat_until,
                                   double steepness)
    : plateau_(plateau), flat_until_(flat_until), steepness_(steepness) {
  assert(flat_until >= 0.0);
  assert(steepness > 0.0);
}

double InelasticUtility::Value(double x) const {
  if (x <= flat_until_) return plateau_;
  const double d = x - flat_until_;
  return plateau_ - 0.5 * steepness_ * d * d;
}

double InelasticUtility::Derivative(double x) const {
  if (x <= flat_until_) return 0.0;
  return -steepness_ * (x - flat_until_);
}

std::string InelasticUtility::Describe() const {
  std::ostringstream os;
  os << "inelastic(plateau=" << plateau_ << ", flat_until=" << flat_until_
     << ", steepness=" << steepness_ << ")";
  return os.str();
}

UtilityPtr MakePaperSimUtility(double critical_time_ms, double k) {
  assert(k >= 1.0);
  return std::make_shared<LinearUtility>(k * critical_time_ms, 1.0);
}

UtilityPtr MakePrototypeUtility() {
  return std::make_shared<LinearUtility>(0.0, 1.0);
}

bool CheckConcaveNonIncreasing(const UtilityFunction& u, double lo, double hi,
                               int samples) {
  assert(samples >= 3);
  assert(lo < hi);
  const double step = (hi - lo) / (samples - 1);
  double prev_value = u.Value(lo);
  double prev_deriv = u.Derivative(lo);
  constexpr double kSlack = 1e-9;
  for (int i = 1; i < samples; ++i) {
    const double x = lo + i * step;
    const double value = u.Value(x);
    const double deriv = u.Derivative(x);
    if (deriv > kSlack) return false;                     // increasing
    if (value > prev_value + kSlack) return false;        // increasing
    if (deriv > prev_deriv + kSlack * (1 + std::fabs(prev_deriv))) {
      return false;  // derivative increased: convex region
    }
    prev_value = value;
    prev_deriv = deriv;
  }
  return true;
}

}  // namespace lla
