// Share functions: the latency <-> resource-share model (paper Eq. 10).
//
// Under proportional-share scheduling, a subtask that receives share sigma of
// its resource finishes a job of worst-case execution time c in roughly
// (c + l)/sigma, where l is the scheduler lag.  Inverting gives the share
// demanded by a target latency: share(lat) = (c + l)/lat — strictly convex
// and decreasing, as the dual decomposition requires.
//
// The error-corrected variant (paper Sec. 6.3) shifts the model by a measured
// additive error e: predicted latency = (c + l)/sigma + e, i.e.
// share(lat) = (c + l)/(lat - e).
#pragma once

#include <memory>
#include <string>

namespace lla {

/// Strictly convex, strictly decreasing, continuously differentiable mapping
/// from latency (ms) to the fraction of the resource required.
class ShareFunction {
 public:
  virtual ~ShareFunction() = default;

  /// Resource fraction needed to achieve `latency_ms`; latency must exceed
  /// MinLatency().
  virtual double Share(double latency_ms) const = 0;

  /// d(share)/d(latency); < 0.
  virtual double DShareDLat(double latency_ms) const = 0;

  /// Inverse of Share(); `share` must be > 0.
  virtual double LatencyForShare(double share) const = 0;

  /// Infimum of achievable latencies (share -> 1 as latency -> MinLatency
  /// for the WCET/lag model; exact semantics per subclass).  Latency inputs
  /// must be strictly greater than this.
  virtual double MinLatency() const = 0;

  /// Solves -DShareDLat(lat) = g for lat in [lo, hi]; this is the inverse
  /// operation of the stationarity condition (paper Eq. 7).  Since the share
  /// function is strictly convex, -DShareDLat is strictly decreasing, so the
  /// solution is unique; values outside the bracket clamp to lo/hi.
  /// Requires g >= 0.  The default implementation bisects; subclasses with a
  /// closed form override.
  virtual double LatencyForNegSlope(double g, double lo, double hi) const;

  /// If the share function has the reciprocal form work/(lat - error) — so
  /// LatencyForNegSlope(g) = clamp(error + sqrt(work/g)) — writes the two
  /// coefficients and returns true.  The solver uses this to hoist the
  /// closed-form stationarity solve out of the virtual call into a flat
  /// array kernel; the kernel must produce bit-identical results to
  /// LatencyForNegSlope, so overrides must describe exactly the computation
  /// their LatencyForNegSlope performs.
  virtual bool ReciprocalForm(double* work_ms, double* error_ms) const {
    (void)work_ms;
    (void)error_ms;
    return false;
  }

  virtual std::string Describe() const = 0;
};

using SharePtr = std::shared_ptr<const ShareFunction>;

/// share(lat) = work / lat with work = wcet + lag (paper Eq. 10).
class WcetLagShare final : public ShareFunction {
 public:
  /// `wcet_ms` > 0, `lag_ms` >= 0.
  WcetLagShare(double wcet_ms, double lag_ms);

  double Share(double latency_ms) const override;
  double DShareDLat(double latency_ms) const override;
  double LatencyForShare(double share) const override;
  double MinLatency() const override { return 0.0; }
  /// Closed form: work/lat^2 = g  =>  lat = sqrt(work/g).
  double LatencyForNegSlope(double g, double lo, double hi) const override;
  bool ReciprocalForm(double* work_ms, double* error_ms) const override {
    *work_ms = work_ms_;
    *error_ms = 0.0;
    return true;
  }
  std::string Describe() const override;

  double work_ms() const { return work_ms_; }

 private:
  double work_ms_;  ///< wcet + lag
};

/// Additively corrected model: share(lat) = work / (lat - error).
/// `error_ms` may be negative (the common case: the uncorrected model
/// over-predicts latency because job releases are not synchronized).
class CorrectedWcetLagShare final : public ShareFunction {
 public:
  CorrectedWcetLagShare(double wcet_ms, double lag_ms, double error_ms);

  double Share(double latency_ms) const override;
  double DShareDLat(double latency_ms) const override;
  double LatencyForShare(double share) const override;
  double MinLatency() const override { return error_ms_ > 0 ? error_ms_ : 0.0; }
  /// Closed form: work/(lat-e)^2 = g  =>  lat = e + sqrt(work/g).
  double LatencyForNegSlope(double g, double lo, double hi) const override;
  bool ReciprocalForm(double* work_ms, double* error_ms) const override {
    *work_ms = work_ms_;
    *error_ms = error_ms_;
    return true;
  }
  std::string Describe() const override;

  double error_ms() const { return error_ms_; }
  double work_ms() const { return work_ms_; }

 private:
  double work_ms_;
  double error_ms_;
};

/// Numerically verifies that `s` is decreasing and convex on (lo, hi] and
/// that LatencyForShare inverts Share; a property check for tests.
bool CheckShareFunction(const ShareFunction& s, double lo, double hi,
                        int samples = 257);

}  // namespace lla
