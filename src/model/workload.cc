#include "model/workload.h"

#include <set>
#include <sstream>

namespace lla {

const char* ToString(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kNetworkLink:
      return "link";
  }
  return "?";
}

const char* ToString(UtilityVariant variant) {
  switch (variant) {
    case UtilityVariant::kSum:
      return "sum";
    case UtilityVariant::kPathWeighted:
      return "path-weighted";
  }
  return "?";
}

Expected<Workload> Workload::Create(std::vector<ResourceSpec> resources,
                                    std::vector<TaskSpec> tasks,
                                    Options options) {
  using E = Expected<Workload>;
  if (resources.empty()) return E::Error("Workload: no resources");
  if (tasks.empty()) return E::Error("Workload: no tasks");

  Workload w;
  w.resources_.reserve(resources.size());
  for (std::size_t r = 0; r < resources.size(); ++r) {
    const ResourceSpec& spec = resources[r];
    if (spec.capacity <= 0.0 || spec.capacity > 1.0) {
      std::ostringstream os;
      os << "Workload: resource '" << spec.name << "' capacity "
         << spec.capacity << " outside (0, 1]";
      return E::Error(os.str());
    }
    if (spec.lag_ms < 0.0) {
      std::ostringstream os;
      os << "Workload: resource '" << spec.name << "' has negative lag";
      return E::Error(os.str());
    }
    ResourceInfo info;
    info.id = ResourceId(r);
    info.name = spec.name.empty() ? "resource" + std::to_string(r) : spec.name;
    info.kind = spec.kind;
    info.capacity = spec.capacity;
    info.lag_ms = spec.lag_ms;
    w.resources_.push_back(std::move(info));
  }

  for (std::size_t t = 0; t < tasks.size(); ++t) {
    TaskSpec& spec = tasks[t];
    const std::string task_name =
        spec.name.empty() ? "task" + std::to_string(t) : spec.name;
    if (spec.critical_time_ms <= 0.0) {
      return E::Error("Workload: task '" + task_name +
                      "' has non-positive critical time");
    }
    if (!spec.utility) {
      return E::Error("Workload: task '" + task_name + "' has no utility");
    }
    if (spec.subtasks.empty()) {
      return E::Error("Workload: task '" + task_name + "' has no subtasks");
    }

    auto dag = Dag::Create(static_cast<int>(spec.subtasks.size()),
                           spec.edges);
    if (!dag.ok()) {
      return E::Error("Workload: task '" + task_name + "': " + dag.error());
    }

    TaskInfo task_info;
    task_info.id = TaskId(t);
    task_info.name = task_name;
    task_info.critical_time_ms = spec.critical_time_ms;
    task_info.utility = std::move(spec.utility);
    task_info.trigger = spec.trigger;
    task_info.dag = std::move(dag).value();

    std::set<ResourceId> used_resources;
    for (std::size_t local = 0; local < spec.subtasks.size(); ++local) {
      const SubtaskSpec& sub = spec.subtasks[local];
      if (!sub.resource.valid() ||
          sub.resource.value() >= w.resources_.size()) {
        std::ostringstream os;
        os << "Workload: task '" << task_name << "' subtask " << local
           << " references invalid resource";
        return E::Error(os.str());
      }
      if (sub.wcet_ms <= 0.0) {
        std::ostringstream os;
        os << "Workload: task '" << task_name << "' subtask " << local
           << " has non-positive wcet";
        return E::Error(os.str());
      }
      if (sub.min_share < 0.0 ||
          sub.min_share > w.resources_[sub.resource.value()].capacity) {
        std::ostringstream os;
        os << "Workload: task '" << task_name << "' subtask " << local
           << " min_share " << sub.min_share
           << " outside [0, resource capacity]";
        return E::Error(os.str());
      }
      if (!options.allow_shared_resource_within_task &&
          !used_resources.insert(sub.resource).second) {
        std::ostringstream os;
        os << "Workload: task '" << task_name
           << "' places two subtasks on resource "
           << w.resources_[sub.resource.value()].name
           << " (disallowed by default, see Options)";
        return E::Error(os.str());
      }

      SubtaskInfo info;
      info.id = SubtaskId(w.subtasks_.size());
      info.task = task_info.id;
      info.local_index = static_cast<int>(local);
      info.resource = sub.resource;
      info.name = sub.name.empty()
                      ? task_name + "." + std::to_string(local)
                      : sub.name;
      info.wcet_ms = sub.wcet_ms;
      info.work_ms = sub.wcet_ms + w.resources_[sub.resource.value()].lag_ms;
      info.min_share = sub.min_share;
      info.path_count = task_info.dag.path_counts()[local];

      task_info.subtasks.push_back(info.id);
      w.resources_[sub.resource.value()].subtasks.push_back(info.id);
      w.subtasks_.push_back(std::move(info));
    }

    // Flatten paths to global ids.
    for (const std::vector<int>& local_path : task_info.dag.paths()) {
      PathInfo path;
      path.id = PathId(w.paths_.size());
      path.task = task_info.id;
      path.critical_time_ms = task_info.critical_time_ms;
      for (int local : local_path) {
        const SubtaskId sid = task_info.subtasks[local];
        path.subtasks.push_back(sid);
        w.subtasks_[sid.value()].paths.push_back(path.id);
      }
      task_info.paths.push_back(path.id);
      w.paths_.push_back(std::move(path));
    }

    w.tasks_.push_back(std::move(task_info));
  }

  return w;
}

double Workload::MinShareDemand(ResourceId r) const {
  double demand = 0.0;
  for (SubtaskId sid : resource(r).subtasks) {
    demand += subtask(sid).min_share;
  }
  return demand;
}

}  // namespace lla
