#include "model/share.h"

#include <cassert>
#include <cmath>
#include <sstream>

#include "common/math.h"

namespace lla {

double ShareFunction::LatencyForNegSlope(double g, double lo, double hi) const {
  assert(g >= 0.0);
  assert(lo <= hi);
  // -DShareDLat is strictly decreasing in lat.
  if (-DShareDLat(lo) <= g) return lo;
  if (-DShareDLat(hi) >= g) return hi;
  const auto f = [this, g](double lat) { return -DShareDLat(lat) - g; };
  return Bisect(f, lo, hi, 1e-12 * (hi - lo) + 1e-15, 0.0, 200).root;
}

WcetLagShare::WcetLagShare(double wcet_ms, double lag_ms)
    : work_ms_(wcet_ms + lag_ms) {
  assert(wcet_ms > 0.0);
  assert(lag_ms >= 0.0);
}

double WcetLagShare::Share(double latency_ms) const {
  assert(latency_ms > 0.0);
  return work_ms_ / latency_ms;
}

double WcetLagShare::DShareDLat(double latency_ms) const {
  assert(latency_ms > 0.0);
  return -work_ms_ / (latency_ms * latency_ms);
}

double WcetLagShare::LatencyForShare(double share) const {
  assert(share > 0.0);
  return work_ms_ / share;
}

double WcetLagShare::LatencyForNegSlope(double g, double lo, double hi) const {
  assert(g >= 0.0);
  assert(lo <= hi);
  if (g == 0.0) return hi;
  return Clamp(std::sqrt(work_ms_ / g), lo, hi);
}

std::string WcetLagShare::Describe() const {
  std::ostringstream os;
  os << "wcet_lag(" << work_ms_ << "/lat)";
  return os.str();
}

CorrectedWcetLagShare::CorrectedWcetLagShare(double wcet_ms, double lag_ms,
                                             double error_ms)
    : work_ms_(wcet_ms + lag_ms), error_ms_(error_ms) {
  assert(wcet_ms > 0.0);
  assert(lag_ms >= 0.0);
}

double CorrectedWcetLagShare::Share(double latency_ms) const {
  assert(latency_ms > MinLatency());
  return work_ms_ / (latency_ms - error_ms_);
}

double CorrectedWcetLagShare::DShareDLat(double latency_ms) const {
  assert(latency_ms > MinLatency());
  const double d = latency_ms - error_ms_;
  return -work_ms_ / (d * d);
}

double CorrectedWcetLagShare::LatencyForShare(double share) const {
  assert(share > 0.0);
  return work_ms_ / share + error_ms_;
}

double CorrectedWcetLagShare::LatencyForNegSlope(double g, double lo,
                                                 double hi) const {
  assert(g >= 0.0);
  assert(lo <= hi);
  if (g == 0.0) return hi;
  return Clamp(error_ms_ + std::sqrt(work_ms_ / g), lo, hi);
}

std::string CorrectedWcetLagShare::Describe() const {
  std::ostringstream os;
  os << "corrected_wcet_lag(" << work_ms_ << "/(lat - " << error_ms_ << "))";
  return os.str();
}

bool CheckShareFunction(const ShareFunction& s, double lo, double hi,
                        int samples) {
  assert(samples >= 3);
  assert(s.MinLatency() < lo && lo < hi);
  const double step = (hi - lo) / (samples - 1);
  double prev_share = s.Share(lo);
  double prev_deriv = s.DShareDLat(lo);
  constexpr double kSlack = 1e-9;
  for (int i = 1; i < samples; ++i) {
    const double x = lo + i * step;
    const double share = s.Share(x);
    const double deriv = s.DShareDLat(x);
    if (deriv >= 0.0) return false;  // must be strictly decreasing
    if (share >= prev_share) return false;
    // Convexity: derivative non-decreasing.
    if (deriv < prev_deriv - kSlack * (1 + std::fabs(prev_deriv))) {
      return false;
    }
    // Inverse consistency.
    if (!AlmostEqual(s.LatencyForShare(share), x, 1e-6, 1e-9)) return false;
    prev_share = share;
    prev_deriv = deriv;
  }
  return true;
}

}  // namespace lla
