// Text serialization for workloads: a small line-oriented format so
// deployments can be written by hand, versioned, and fed to the CLI tool.
//
//   # comment
//   resource <name> <cpu|link> <capacity> <lag_ms>
//   task <name> <critical_time_ms>
//     utility linear <offset> <slope>
//     utility power <offset> <coeff> <exponent>
//     utility negexp <offset> <rate>
//     utility inelastic <plateau> <flat_until> <steepness>
//     trigger periodic <period_ms> [phase_ms]
//     trigger poisson <rate_per_s>
//     trigger bursty <period_ms> <burst_size> <spread_ms>
//     subtask <name> <resource_name> <wcet_ms> [min_share]
//     edge <from_index> <to_index>
//   end
//
// Resources must be declared before tasks; subtask indices within a task
// follow declaration order.  SaveWorkload emits exactly this format, so
// save/load round-trips.
#pragma once

#include <iosfwd>
#include <string>

#include "common/expected.h"
#include "model/workload.h"

namespace lla {

/// Parses the format above; returns a validated workload or a message with
/// the offending line number.
Expected<Workload> LoadWorkload(std::istream& in);
Expected<Workload> LoadWorkloadFromString(const std::string& text);
Expected<Workload> LoadWorkloadFromFile(const std::string& path);

/// Serializes the workload.  Fails only if a task uses a utility class the
/// format cannot express.
Status SaveWorkload(const Workload& workload, std::ostream& out);
Expected<std::string> SaveWorkloadToString(const Workload& workload);
Status SaveWorkloadToFile(const Workload& workload, const std::string& path);

}  // namespace lla
