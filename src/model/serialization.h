// Text serialization for workloads: a small line-oriented format so
// deployments can be written by hand, versioned, and fed to the CLI tool.
//
//   # comment
//   resource <name> <cpu|link> <capacity> <lag_ms>
//   task <name> <critical_time_ms>
//     utility linear <offset> <slope>
//     utility power <offset> <coeff> <exponent>
//     utility negexp <offset> <rate>
//     utility inelastic <plateau> <flat_until> <steepness>
//     trigger periodic <period_ms> [phase_ms]
//     trigger poisson <rate_per_s>
//     trigger bursty <period_ms> <burst_size> <spread_ms>
//     subtask <name> <resource_name> <wcet_ms> [min_share]
//     edge <from_index> <to_index>
//   end
//
// Resources must be declared before tasks; subtask indices within a task
// follow declaration order.  SaveWorkload emits exactly this format, so
// save/load round-trips.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/expected.h"
#include "model/workload.h"

namespace lla {

/// Parses the format above; returns a validated workload or a message with
/// the offending line number.
Expected<Workload> LoadWorkload(std::istream& in);
Expected<Workload> LoadWorkloadFromString(const std::string& text);
Expected<Workload> LoadWorkloadFromFile(const std::string& path);

/// Serializes the workload.  Fails only if a task uses a utility class the
/// format cannot express.
Status SaveWorkload(const Workload& workload, std::ostream& out);
Expected<std::string> SaveWorkloadToString(const Workload& workload);
Status SaveWorkloadToFile(const Workload& workload, const std::string& path);

/// Durable checkpoint of an engine's dual state (DESIGN.md §7.7): everything
/// LlaEngine::Restore() needs to resume the dense trajectory bit-identically.
/// Lives in the model layer (plain vectors, no core types) so serialization
/// stays dependency-free; the engine translates to/from its internal state.
///
/// Every floating-point value is persisted as the hex IEEE-754 bit pattern
/// of the double, so a save/load round-trip is bit-exact — decimal text
/// would round and break the memcmp resume guarantee.
struct StateSnapshot {
  /// Shape guard: Restore() refuses a snapshot taken against a workload
  /// with different counts (prices would be misindexed, not just stale).
  std::uint64_t resource_count = 0;
  std::uint64_t path_count = 0;
  std::uint64_t subtask_count = 0;
  std::uint64_t task_count = 0;

  std::int64_t iteration = 0;
  bool converged = false;
  std::uint64_t total_subtask_solves = 0;

  /// Dual variables (PriceVector::mu / ::lambda).
  std::vector<double> mu;
  std::vector<double> lambda;

  /// Step-size policy state: adaptive doubling multipliers (empty for the
  /// fixed policy) and the diminishing-schedule iteration counter.
  std::vector<double> resource_step_multiplier;
  std::vector<double> path_step_multiplier;
  std::int64_t step_iteration = 0;

  /// Trailing utility window of the convergence detector.
  std::vector<double> recent_utilities;

  /// Snapshot v2: accelerated price-dynamics state (core/price_dynamics.h).
  /// Velocity vectors per dual space plus, for Nesterov, the un-extrapolated
  /// base iterates, the per-component momentum-ramp phases (steps since
  /// restart, small integers stored as doubles), and the cumulative
  /// adaptive-restart counter.  All empty / zero for plain-dynamics engines
  /// and in v1 files — which restore as fresh (zero) momentum, the faithful
  /// reading of a checkpoint that never carried momentum state.
  std::vector<double> mu_velocity;
  std::vector<double> lambda_velocity;
  std::vector<double> mu_base;
  std::vector<double> lambda_base;
  std::vector<double> mu_phase;
  std::vector<double> lambda_phase;
  std::uint64_t momentum_restarts = 0;

  /// Active-set price state (ActivePriceState): retirement / quiescence
  /// counters, epsilon-freeze shadow prices, and the bitwise change-detection
  /// baselines.  All empty when `price_state_primed` is false (dense mode,
  /// or a checkpoint taken before the first step).
  bool price_state_primed = false;
  std::vector<std::uint8_t> mu_settled;
  std::vector<std::uint8_t> lambda_settled;
  std::vector<std::uint32_t> mu_zero_epochs;
  std::vector<std::uint32_t> lambda_zero_epochs;
  std::vector<std::uint32_t> mu_stable_epochs;
  std::vector<std::uint32_t> lambda_stable_epochs;
  std::vector<double> shadow_mu;
  std::vector<double> shadow_lambda;
  std::vector<double> prev_share_sums;
  std::vector<double> prev_path_latencies;
};

/// Parses a snapshot in either format: text v1/v2 (line-oriented hex) or
/// binary b1, auto-detected by the leading magic bytes.  Returns the
/// snapshot or a message locating the defect (line number for text, byte
/// offset / section for binary).
Expected<StateSnapshot> LoadSnapshot(std::istream& in);
Expected<StateSnapshot> LoadSnapshotFromString(const std::string& text);
Expected<StateSnapshot> LoadSnapshotFromFile(const std::string& path);

/// Writes the line-oriented snapshot format (doubles as hex bit patterns).
Status SaveSnapshot(const StateSnapshot& snapshot, std::ostream& out);
Expected<std::string> SaveSnapshotToString(const StateSnapshot& snapshot);
Status SaveSnapshotToFile(const StateSnapshot& snapshot,
                          const std::string& path);

/// Binary snapshot format "b1" (DESIGN.md §7.10): an 8-byte magic + version,
/// the scalar header, then a section table of length-prefixed sections whose
/// payloads are raw little-endian IEEE-754 bit patterns (or integer words)
/// laid out contiguously and 8-byte aligned — so a restore is a bounds check
/// plus memcpy per section, and the payload region is mmap-friendly.  Each
/// section additionally records one of three encodings chosen by size at
/// save time: raw (contiguous words), run-length (repeated words collapse —
/// step multipliers, settled flags), or sparse (index/value pairs of the
/// non-zero words — retired lambda).  All encodings keep the exact bit
/// patterns, so the round-trip is bitwise-identical like the text format.
/// The loaders above sniff the magic, so binary files flow through the same
/// Load* entry points.
bool SnapshotBytesAreBinary(const std::string& bytes);
bool SnapshotBytesAreBinary(const char* data, std::size_t size);
Status SaveSnapshotBinary(const StateSnapshot& snapshot, std::string* out);
Expected<std::string> SaveSnapshotBinaryToString(const StateSnapshot& snapshot);
Status SaveSnapshotBinaryToFile(const StateSnapshot& snapshot,
                                const std::string& path);
Expected<StateSnapshot> LoadSnapshotBinaryFromString(const std::string& bytes);

/// Zero-copy restore path (DESIGN.md §7.11): a parsed, NON-OWNING view of a
/// binary b1 snapshot.  ParseSnapshotBinary decodes the scalar header and
/// fully validates the section table and every section's encoding structure
/// — exactly the checks LoadSnapshotBinaryFromString performs, with the
/// same error strings — but leaves the section payloads as byte ranges
/// aliasing the caller's buffer (an mmap'd file, typically).  Materializing
/// a section afterwards is a single decode pass straight into the
/// consumer's own vector (one memcpy for raw sections), with no
/// intermediate StateSnapshot and no whole-file std::string; it cannot fail
/// on a parsed view.  The backing bytes must outlive the view.
struct SnapshotSectionRef {
  std::uint8_t elem_kind = 0;
  std::uint8_t encoding = 0;
  std::uint64_t count = 0;
  const char* data = nullptr;  ///< encoded payload bytes (aliased)
  std::uint64_t size = 0;
  bool present() const { return data != nullptr; }
};

struct SnapshotView {
  std::uint64_t resource_count = 0;
  std::uint64_t path_count = 0;
  std::uint64_t subtask_count = 0;
  std::uint64_t task_count = 0;
  std::int64_t iteration = 0;
  bool converged = false;
  std::uint64_t total_subtask_solves = 0;
  std::int64_t step_iteration = 0;
  std::uint64_t momentum_restarts = 0;
  bool price_state_primed = false;
  /// Indexed by section id (1..21, slot 0 unused); absent sections have
  /// data == nullptr and materialize as empty vectors.
  static constexpr std::size_t kMaxSectionId = 21;
  SnapshotSectionRef sections[kMaxSectionId + 1];
};

Expected<SnapshotView> ParseSnapshotBinary(const char* data, std::size_t size);

/// Decodes every section of a parsed view into an owning StateSnapshot (the
/// one copy of the zero-copy path).  LoadSnapshotBinaryFromString is
/// exactly ParseSnapshotBinary + this.
StateSnapshot MaterializeSnapshot(const SnapshotView& view);

/// Per-section materialization for consumers that decode straight into
/// their own buffers (LlaEngine::Restore(const SnapshotView&)).  `out` is
/// resized to the section's count; an absent section yields an empty
/// vector.  The view must come from ParseSnapshotBinary (pre-validated).
void MaterializeSection(const SnapshotSectionRef& section,
                        std::vector<double>* out);
void MaterializeSection(const SnapshotSectionRef& section,
                        std::vector<std::uint8_t>* out);
void MaterializeSection(const SnapshotSectionRef& section,
                        std::vector<std::uint32_t>* out);

/// A read-only file mapping for the zero-copy restore: mmap where the
/// platform has it, falling back to one read into a heap buffer.  Move-only;
/// unmaps/frees on destruction.
class MappedSnapshotFile {
 public:
  MappedSnapshotFile() = default;
  MappedSnapshotFile(MappedSnapshotFile&& other) noexcept;
  MappedSnapshotFile& operator=(MappedSnapshotFile&& other) noexcept;
  MappedSnapshotFile(const MappedSnapshotFile&) = delete;
  MappedSnapshotFile& operator=(const MappedSnapshotFile&) = delete;
  ~MappedSnapshotFile();

  static Expected<MappedSnapshotFile> Open(const std::string& path);

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  /// True when the bytes come from an actual mmap (false: heap fallback).
  bool mapped() const { return mapped_; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  ///< owns the bytes when !mapped_
};

}  // namespace lla
