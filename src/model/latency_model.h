// LatencyModel: the per-subtask share functions the optimizer believes.
//
// By default every subtask uses the paper's Eq. 10 model,
// share = (wcet + lag)/lat.  The online error-correction layer (Sec. 6.3)
// replaces individual entries with additively corrected models as
// measurements arrive; the optimizer always consults this object, so model
// improvements take effect on the next iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "model/share.h"
#include "model/workload.h"

namespace lla {

class LatencyModel {
 public:
  /// Builds the default (uncorrected) model for every subtask of `workload`.
  explicit LatencyModel(const Workload& workload);

  const ShareFunction& share(SubtaskId id) const {
    return *shares_[id.value()];
  }
  SharePtr share_ptr(SubtaskId id) const { return shares_[id.value()]; }

  /// Replaces the model for one subtask (takes effect immediately).
  void SetShareFunction(SubtaskId id, SharePtr share);

  /// Convenience: installs a CorrectedWcetLagShare with the given additive
  /// error for the subtask (error may be negative).
  void SetAdditiveError(SubtaskId id, double error_ms);

  /// The additive error currently applied to a subtask (0 when uncorrected).
  double AdditiveError(SubtaskId id) const;

  std::size_t size() const { return shares_.size(); }

  /// Bumped every time a share function is replaced.  Consumers that cache
  /// model-derived invariants (LatencySolver's box bounds) compare this to
  /// their cached value and rebuild on mismatch, so online corrections keep
  /// taking effect on the next solve without an explicit invalidation call.
  std::uint64_t revision() const { return revision_; }

 private:
  const Workload* workload_;
  std::vector<SharePtr> shares_;
  std::uint64_t revision_ = 0;
};

}  // namespace lla
