// Triggering-event specifications (paper Sec. 2).
//
// Tasks are released by triggering events; the paper's experiments use
// periodic triggers (100 ms period in simulation; 40/s and 10/s rates in the
// prototype).  The model generalizes to Poisson and bursty arrivals, which
// the paper motivates ("real-life workloads with bursty arrivals") — the
// discrete-event substrate honours all three.
#pragma once

#include <cassert>

namespace lla {

struct TriggerSpec {
  enum class Kind { kPeriodic, kPoisson, kBursty };

  Kind kind = Kind::kPeriodic;
  double period_ms = 100.0;     ///< periodic & bursty: inter-release interval
  double phase_ms = 0.0;        ///< periodic: offset of the first release
  double rate_per_s = 10.0;     ///< poisson: mean arrival rate
  int burst_size = 1;           ///< bursty: job sets per burst
  double burst_spread_ms = 0.0; ///< bursty: spacing inside a burst

  static TriggerSpec Periodic(double period_ms, double phase_ms = 0.0) {
    assert(period_ms > 0.0);
    TriggerSpec t;
    t.kind = Kind::kPeriodic;
    t.period_ms = period_ms;
    t.phase_ms = phase_ms;
    return t;
  }

  static TriggerSpec Poisson(double rate_per_s) {
    assert(rate_per_s > 0.0);
    TriggerSpec t;
    t.kind = Kind::kPoisson;
    t.rate_per_s = rate_per_s;
    return t;
  }

  static TriggerSpec Bursty(double period_ms, int burst_size,
                            double burst_spread_ms) {
    assert(period_ms > 0.0);
    assert(burst_size >= 1);
    assert(burst_spread_ms >= 0.0);
    TriggerSpec t;
    t.kind = Kind::kBursty;
    t.period_ms = period_ms;
    t.burst_size = burst_size;
    t.burst_spread_ms = burst_spread_ms;
    return t;
  }

  /// Mean task releases per second implied by the spec.
  double MeanRatePerSecond() const {
    switch (kind) {
      case Kind::kPeriodic:
        return 1000.0 / period_ms;
      case Kind::kPoisson:
        return rate_per_s;
      case Kind::kBursty:
        return 1000.0 * burst_size / period_ms;
    }
    return 0.0;
  }
};

}  // namespace lla
