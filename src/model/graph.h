// Subtask-graph DAG (paper Sec. 2).
//
// A task's subtasks are related by a precedence DAG with a unique root (the
// start subtask); leaves are end subtasks; every root-to-leaf sequence is a
// "path".  The optimizer needs (a) the explicit path list for the per-path
// critical-time constraints (Eq. 4) and (b) the number of paths through each
// node for the *path-weighted* utility variant (Sec. 3.2).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/expected.h"

namespace lla {

/// Immutable validated DAG over nodes [0, n).  Node indices are local to the
/// owning task.
class Dag {
 public:
  /// Empty placeholder (node_count 0); only useful as a to-be-assigned slot.
  Dag() = default;

  /// Validates and builds.  Requirements: n >= 1; edges reference valid
  /// nodes; no self loops or duplicate edges; acyclic; exactly one node with
  /// in-degree zero (the root); every node reachable from the root.
  static Expected<Dag> Create(int node_count,
                              std::vector<std::pair<int, int>> edges);

  /// Convenience: a simple chain 0 -> 1 -> ... -> n-1.
  static Dag Chain(int node_count);

  int node_count() const { return node_count_; }
  int root() const { return root_; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }
  const std::vector<int>& leaves() const { return leaves_; }
  const std::vector<int>& successors(int node) const { return succ_[node]; }
  const std::vector<int>& predecessors(int node) const { return pred_[node]; }

  /// Nodes in a topological order (root first).
  const std::vector<int>& topo_order() const { return topo_; }

  /// All root-to-leaf paths, each as a sequence of node indices.
  /// Deterministic order (lexicographic by successor index).
  const std::vector<std::vector<int>>& paths() const { return paths_; }

  /// Number of root-to-leaf paths passing through each node (the
  /// path-weighted utility weights).
  const std::vector<int>& path_counts() const { return path_counts_; }

 private:
  void ComputeDerived();

  int node_count_ = 0;
  int root_ = 0;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<int>> pred_;
  std::vector<int> leaves_;
  std::vector<int> topo_;
  std::vector<std::vector<int>> paths_;
  std::vector<int> path_counts_;
};

}  // namespace lla
