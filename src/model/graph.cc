#include "model/graph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>
#include <sstream>

namespace lla {

Expected<Dag> Dag::Create(int node_count,
                          std::vector<std::pair<int, int>> edges) {
  if (node_count < 1) {
    return Expected<Dag>::Error("Dag: node_count must be >= 1");
  }
  std::set<std::pair<int, int>> seen;
  for (const auto& [from, to] : edges) {
    if (from < 0 || from >= node_count || to < 0 || to >= node_count) {
      std::ostringstream os;
      os << "Dag: edge (" << from << "," << to << ") references invalid node";
      return Expected<Dag>::Error(os.str());
    }
    if (from == to) {
      std::ostringstream os;
      os << "Dag: self loop at node " << from;
      return Expected<Dag>::Error(os.str());
    }
    if (!seen.insert({from, to}).second) {
      std::ostringstream os;
      os << "Dag: duplicate edge (" << from << "," << to << ")";
      return Expected<Dag>::Error(os.str());
    }
  }

  Dag dag;
  dag.node_count_ = node_count;
  // (fields below overwrite the empty-placeholder defaults)
  dag.edges_ = std::move(edges);
  dag.succ_.assign(node_count, {});
  dag.pred_.assign(node_count, {});
  for (const auto& [from, to] : dag.edges_) {
    dag.succ_[from].push_back(to);
    dag.pred_[to].push_back(from);
  }
  for (auto& s : dag.succ_) std::sort(s.begin(), s.end());
  for (auto& p : dag.pred_) std::sort(p.begin(), p.end());

  // Unique root.
  int root = -1;
  for (int v = 0; v < node_count; ++v) {
    if (dag.pred_[v].empty()) {
      if (root != -1) {
        std::ostringstream os;
        os << "Dag: multiple roots (nodes " << root << " and " << v << ")";
        return Expected<Dag>::Error(os.str());
      }
      root = v;
    }
  }
  if (root == -1) {
    return Expected<Dag>::Error("Dag: no root (graph contains a cycle)");
  }
  dag.root_ = root;

  // Kahn topological sort; detects cycles.
  std::vector<int> indegree(node_count);
  for (int v = 0; v < node_count; ++v) {
    indegree[v] = static_cast<int>(dag.pred_[v].size());
  }
  std::deque<int> ready{root};
  std::vector<int> topo;
  topo.reserve(node_count);
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop_front();
    topo.push_back(v);
    for (int w : dag.succ_[v]) {
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  if (static_cast<int>(topo.size()) != node_count) {
    return Expected<Dag>::Error(
        "Dag: graph contains a cycle or nodes unreachable from the root");
  }
  dag.topo_ = std::move(topo);

  dag.ComputeDerived();
  return dag;
}

Dag Dag::Chain(int node_count) {
  assert(node_count >= 1);
  std::vector<std::pair<int, int>> edges;
  edges.reserve(node_count - 1);
  for (int v = 0; v + 1 < node_count; ++v) edges.emplace_back(v, v + 1);
  auto dag = Create(node_count, std::move(edges));
  assert(dag.ok());
  return std::move(dag).value();
}

void Dag::ComputeDerived() {
  // Leaves.
  leaves_.clear();
  for (int v = 0; v < node_count_; ++v) {
    if (succ_[v].empty()) leaves_.push_back(v);
  }

  // Path enumeration via DFS from the root (successor lists are sorted, so
  // the order is deterministic).
  paths_.clear();
  // Iterative DFS keeping the current path.
  struct Frame {
    int node;
    std::size_t next_succ;
  };
  std::vector<Frame> frames{{root_, 0}};
  std::vector<int> current{root_};
  while (!frames.empty()) {
    Frame& top = frames.back();
    const auto& succs = succ_[top.node];
    if (succs.empty() && top.next_succ == 0) {
      paths_.push_back(current);
      ++top.next_succ;  // mark emitted
    }
    if (top.next_succ >= succs.size() || succs.empty()) {
      frames.pop_back();
      current.pop_back();
      continue;
    }
    const int child = succs[top.next_succ++];
    frames.push_back({child, 0});
    current.push_back(child);
  }

  // Path counts: up[v] = #paths root->v, down[v] = #paths v->any leaf;
  // paths through v = up[v] * down[v].
  std::vector<std::int64_t> up(node_count_, 0), down(node_count_, 0);
  up[root_] = 1;
  for (int v : topo_) {
    for (int w : succ_[v]) up[w] += up[v];
  }
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const int v = *it;
    if (succ_[v].empty()) {
      down[v] = 1;
    } else {
      for (int w : succ_[v]) down[v] += down[w];
    }
  }
  path_counts_.assign(node_count_, 0);
  for (int v = 0; v < node_count_; ++v) {
    path_counts_[v] = static_cast<int>(up[v] * down[v]);
  }
}

}  // namespace lla
