#include "model/latency_model.h"

#include <cassert>

namespace lla {

LatencyModel::LatencyModel(const Workload& workload) : workload_(&workload) {
  shares_.reserve(workload.subtask_count());
  for (const SubtaskInfo& sub : workload.subtasks()) {
    const double lag = workload.resource(sub.resource).lag_ms;
    shares_.push_back(std::make_shared<WcetLagShare>(sub.wcet_ms, lag));
  }
}

void LatencyModel::SetShareFunction(SubtaskId id, SharePtr share) {
  assert(share != nullptr);
  assert(id.value() < shares_.size());
  shares_[id.value()] = std::move(share);
  ++revision_;
}

void LatencyModel::SetAdditiveError(SubtaskId id, double error_ms) {
  assert(id.value() < shares_.size());
  const SubtaskInfo& sub = workload_->subtask(id);
  const double lag = workload_->resource(sub.resource).lag_ms;
  shares_[id.value()] =
      std::make_shared<CorrectedWcetLagShare>(sub.wcet_ms, lag, error_ms);
  ++revision_;
}

double LatencyModel::AdditiveError(SubtaskId id) const {
  assert(id.value() < shares_.size());
  const auto* corrected =
      dynamic_cast<const CorrectedWcetLagShare*>(shares_[id.value()].get());
  return corrected ? corrected->error_ms() : 0.0;
}

}  // namespace lla
