// Utility (time-utility) functions, paper Sec. 2.1 and 3.2.
//
// A task's benefit is a non-increasing function of its (weighted) latency.
// LLA requires utilities to be concave and continuously differentiable below
// the critical time.  The paper's experiments use linear utilities
// (f(x) = k*C - x for simulations, f(x) = -x for the prototype); we also
// provide power-law, negative-exponential and smoothed-inelastic shapes to
// cover the "elastic vs inelastic" spectrum of Figure 2.
#pragma once

#include <memory>
#include <string>

namespace lla {

/// Concave, non-increasing, continuously differentiable mapping from
/// (weighted) latency in milliseconds to a benefit value.
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Benefit at the given latency (>= 0).
  virtual double Value(double latency_ms) const = 0;

  /// d(benefit)/d(latency); must be <= 0 everywhere (non-increasing) and
  /// non-increasing itself (concavity).
  virtual double Derivative(double latency_ms) const = 0;

  /// Human-readable description, e.g. "linear(90 - x)".
  virtual std::string Describe() const = 0;
};

using UtilityPtr = std::shared_ptr<const UtilityFunction>;

/// f(x) = offset - slope * x, slope >= 0.  The paper's workhorse.
class LinearUtility final : public UtilityFunction {
 public:
  LinearUtility(double offset, double slope);
  double Value(double x) const override;
  double Derivative(double x) const override;
  std::string Describe() const override;
  double offset() const { return offset_; }
  double slope() const { return slope_; }

 private:
  double offset_;
  double slope_;
};

/// f(x) = offset - coeff * x^exponent, coeff >= 0, exponent >= 1.
/// exponent = 1 reduces to linear; exponent = 2 is quadratic.
class PowerUtility final : public UtilityFunction {
 public:
  PowerUtility(double offset, double coeff, double exponent);
  double Value(double x) const override;
  double Derivative(double x) const override;
  std::string Describe() const override;
  double offset() const { return offset_; }
  double coeff() const { return coeff_; }
  double exponent() const { return exponent_; }

 private:
  double offset_;
  double coeff_;
  double exponent_;
};

/// f(x) = offset - exp(rate * x) / rate, rate > 0.  Sharply elastic: the
/// penalty accelerates with latency (concave since f'' = -rate*exp(rate*x)).
class NegExpUtility final : public UtilityFunction {
 public:
  NegExpUtility(double offset, double rate);
  double Value(double x) const override;
  double Derivative(double x) const override;
  std::string Describe() const override;
  double offset() const { return offset_; }
  double rate() const { return rate_; }

 private:
  double offset_;
  double rate_;
};

/// Smoothed inelastic task (Figure 2, right): full benefit while latency is
/// below `flat_until`, then a quadratic penalty.  C1-continuous and concave:
/// f(x) = plateau                                   for x <= flat_until
///      = plateau - 0.5*steepness*(x - flat_until)^2 otherwise.
class InelasticUtility final : public UtilityFunction {
 public:
  InelasticUtility(double plateau, double flat_until, double steepness);
  double Value(double x) const override;
  double Derivative(double x) const override;
  std::string Describe() const override;
  double plateau() const { return plateau_; }
  double flat_until() const { return flat_until_; }
  double steepness() const { return steepness_; }

 private:
  double plateau_;
  double flat_until_;
  double steepness_;
};

/// The simulation-experiment utility of Sec. 5.2: f(x) = k*C - x.
UtilityPtr MakePaperSimUtility(double critical_time_ms, double k = 2.0);

/// The prototype-experiment utility of Sec. 6.2: f(x) = -x.
UtilityPtr MakePrototypeUtility();

/// Numerically verifies concavity and monotonicity of `u` by sampling
/// [lo, hi]; returns false with no diagnostics (tests use it as a property
/// check for user-supplied utilities).
bool CheckConcaveNonIncreasing(const UtilityFunction& u, double lo, double hi,
                               int samples = 257);

}  // namespace lla
