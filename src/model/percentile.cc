#include "model/percentile.h"

#include <cassert>
#include <cmath>

namespace lla {

double PerSubtaskPercentile(double path_fraction, int path_length) {
  assert(path_fraction > 0.0 && path_fraction <= 1.0);
  assert(path_length >= 1);
  return std::pow(path_fraction, 1.0 / path_length);
}

double PathPercentile(double subtask_fraction, int path_length) {
  assert(subtask_fraction > 0.0 && subtask_fraction <= 1.0);
  assert(path_length >= 1);
  return std::pow(subtask_fraction, path_length);
}

double PerSubtaskPercentilePct(double path_pct, int path_length) {
  assert(path_pct > 0.0 && path_pct <= 100.0);
  assert(path_length >= 1);
  const double n = path_length;
  return std::pow(path_pct, 1.0 / n) * std::pow(100.0, (n - 1.0) / n);
}

}  // namespace lla
