// Workload: the validated, immutable description of an entire system —
// resources (CPUs and network links) plus tasks (subtask DAGs, utilities,
// triggers).  This is the input to every algorithm in the repository.
//
// Construction performs full validation and precomputes the index structures
// the optimizer needs: the global subtask/path tables, per-resource subtask
// lists, per-subtask path lists, and path-count weights.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/expected.h"
#include "common/ids.h"
#include "model/graph.h"
#include "model/trigger.h"
#include "model/utility.h"

namespace lla {

enum class ResourceKind { kCpu, kNetworkLink };

const char* ToString(ResourceKind kind);

/// Input description of one resource.
struct ResourceSpec {
  std::string name;
  ResourceKind kind = ResourceKind::kCpu;
  /// Fraction of the resource available to the managed tasks, B_r in (0, 1].
  double capacity = 1.0;
  /// Scheduling lag l_r (ms) of the proportional-share scheduler, >= 0.
  double lag_ms = 0.0;
};

/// Input description of one subtask.
struct SubtaskSpec {
  std::string name;
  ResourceId resource;
  /// Worst-case execution time (CPU) or transmission time (link), > 0 ms.
  double wcet_ms = 1.0;
  /// Minimum sustainable share (arrival_rate * wcet); the optimizer never
  /// assigns less, otherwise jobs queue without bound (paper Sec. 6.2).
  /// 0 disables the floor.
  double min_share = 0.0;
};

/// Input description of one task.
struct TaskSpec {
  std::string name;
  double critical_time_ms = 0.0;
  std::vector<SubtaskSpec> subtasks;
  /// Precedence edges between local subtask indices; must form a valid Dag.
  std::vector<std::pair<int, int>> edges;
  UtilityPtr utility;
  TriggerSpec trigger;
};

/// Which utility variant of Sec. 3.2 defines the task latency aggregate.
enum class UtilityVariant {
  kSum,           ///< U_i = f_i(sum of subtask latencies)
  kPathWeighted,  ///< U_i = f_i(sum of path-count-weighted latencies)
};

const char* ToString(UtilityVariant variant);

/// Validated resource with its reverse index.
struct ResourceInfo {
  ResourceId id;
  std::string name;
  ResourceKind kind;
  double capacity;
  double lag_ms;
  std::vector<SubtaskId> subtasks;  ///< all subtasks placed on this resource
};

/// Validated subtask (flattened across tasks).
struct SubtaskInfo {
  SubtaskId id;
  TaskId task;
  int local_index;  ///< node index within the task's Dag
  ResourceId resource;
  std::string name;
  double wcet_ms;
  double work_ms;  ///< wcet + resource lag: numerator of the share function
  double min_share;
  std::vector<PathId> paths;  ///< global ids of paths containing this subtask
  int path_count;             ///< == paths.size(); the path-weighted weight
};

/// Validated root-to-leaf path (flattened across tasks).
struct PathInfo {
  PathId id;
  TaskId task;
  std::vector<SubtaskId> subtasks;
  double critical_time_ms;  ///< the owning task's critical time
};

/// Validated task.
struct TaskInfo {
  TaskId id;
  std::string name;
  double critical_time_ms;
  UtilityPtr utility;
  TriggerSpec trigger;
  Dag dag;
  std::vector<SubtaskId> subtasks;  ///< global ids, in local-index order
  std::vector<PathId> paths;        ///< global ids, in dag.paths() order
};

struct WorkloadOptions {
  /// The paper assumes "no two subtasks in the same task consume the same
  /// resource" (Sec. 2.1); set true to lift that restriction (the
  /// optimizer handles it, the percentile math does not).
  bool allow_shared_resource_within_task = false;
};

class Workload {
 public:
  using Options = WorkloadOptions;

  /// Validates and builds.  Errors include: empty task/resource lists,
  /// invalid resource references, non-positive WCETs/critical times/
  /// capacities, capacities > 1, malformed DAGs, missing utilities, and
  /// (unless allowed) repeated resources within a task.
  static Expected<Workload> Create(std::vector<ResourceSpec> resources,
                                   std::vector<TaskSpec> tasks,
                                   WorkloadOptions options = {});

  const std::vector<ResourceInfo>& resources() const { return resources_; }
  const std::vector<TaskInfo>& tasks() const { return tasks_; }
  const std::vector<SubtaskInfo>& subtasks() const { return subtasks_; }
  const std::vector<PathInfo>& paths() const { return paths_; }

  const ResourceInfo& resource(ResourceId id) const {
    return resources_[id.value()];
  }
  const TaskInfo& task(TaskId id) const { return tasks_[id.value()]; }
  const SubtaskInfo& subtask(SubtaskId id) const {
    return subtasks_[id.value()];
  }
  const PathInfo& path(PathId id) const { return paths_[id.value()]; }

  std::size_t resource_count() const { return resources_.size(); }
  std::size_t task_count() const { return tasks_.size(); }
  std::size_t subtask_count() const { return subtasks_.size(); }
  std::size_t path_count() const { return paths_.size(); }

  /// The utility weight w_s of a subtask under the given variant.
  double Weight(SubtaskId id, UtilityVariant variant) const {
    return variant == UtilityVariant::kSum
               ? 1.0
               : static_cast<double>(subtasks_[id.value()].path_count);
  }

  /// Total share demand on resource `r` if every subtask were assigned its
  /// minimum sustainable share; a quick necessary schedulability check.
  double MinShareDemand(ResourceId r) const;

 private:
  Workload() = default;

  std::vector<ResourceInfo> resources_;
  std::vector<TaskInfo> tasks_;
  std::vector<SubtaskInfo> subtasks_;
  std::vector<PathInfo> paths_;
};

}  // namespace lla
