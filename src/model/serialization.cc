#include "model/serialization.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "model/utility.h"

namespace lla {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

bool ParseDouble(const std::string& token, double* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stod(token, &consumed);
  } catch (...) {
    return false;
  }
  return consumed == token.size();
}

bool ParseInt(const std::string& token, int* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stoi(token, &consumed);
  } catch (...) {
    return false;
  }
  return consumed == token.size();
}

std::string LineError(int line, const std::string& message) {
  std::ostringstream os;
  os << "line " << line << ": " << message;
  return os.str();
}

}  // namespace

Expected<Workload> LoadWorkload(std::istream& in) {
  using E = Expected<Workload>;
  std::vector<ResourceSpec> resources;
  std::map<std::string, std::size_t> resource_index;
  std::vector<TaskSpec> tasks;
  TaskSpec current;
  bool in_task = false;

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "resource") {
      if (in_task) {
        return E::Error(LineError(line_number,
                                  "resource declared inside a task block"));
      }
      if (tokens.size() != 5) {
        return E::Error(LineError(
            line_number, "expected: resource <name> <cpu|link> <cap> <lag>"));
      }
      ResourceSpec spec;
      spec.name = tokens[1];
      if (tokens[2] == "cpu") {
        spec.kind = ResourceKind::kCpu;
      } else if (tokens[2] == "link") {
        spec.kind = ResourceKind::kNetworkLink;
      } else {
        return E::Error(LineError(line_number,
                                  "resource kind must be cpu or link"));
      }
      if (!ParseDouble(tokens[3], &spec.capacity) ||
          !ParseDouble(tokens[4], &spec.lag_ms)) {
        return E::Error(LineError(line_number, "bad capacity/lag number"));
      }
      if (resource_index.count(spec.name)) {
        return E::Error(
            LineError(line_number, "duplicate resource '" + spec.name + "'"));
      }
      resource_index[spec.name] = resources.size();
      resources.push_back(std::move(spec));
    } else if (keyword == "task") {
      if (in_task) {
        return E::Error(
            LineError(line_number, "missing 'end' before new task"));
      }
      if (tokens.size() != 3) {
        return E::Error(LineError(
            line_number, "expected: task <name> <critical_time_ms>"));
      }
      current = TaskSpec{};
      current.name = tokens[1];
      if (!ParseDouble(tokens[2], &current.critical_time_ms)) {
        return E::Error(LineError(line_number, "bad critical time"));
      }
      in_task = true;
    } else if (keyword == "utility") {
      if (!in_task) {
        return E::Error(LineError(line_number, "utility outside task"));
      }
      double a = 0, b = 0, c = 0;
      if (tokens.size() >= 4 && tokens[1] == "linear" &&
          ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b) &&
          tokens.size() == 4) {
        current.utility = std::make_shared<LinearUtility>(a, b);
      } else if (tokens.size() == 5 && tokens[1] == "power" &&
                 ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b) &&
                 ParseDouble(tokens[4], &c)) {
        current.utility = std::make_shared<PowerUtility>(a, b, c);
      } else if (tokens.size() == 4 && tokens[1] == "negexp" &&
                 ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b)) {
        current.utility = std::make_shared<NegExpUtility>(a, b);
      } else if (tokens.size() == 5 && tokens[1] == "inelastic" &&
                 ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b) &&
                 ParseDouble(tokens[4], &c)) {
        current.utility = std::make_shared<InelasticUtility>(a, b, c);
      } else {
        return E::Error(LineError(line_number, "bad utility spec"));
      }
    } else if (keyword == "trigger") {
      if (!in_task) {
        return E::Error(LineError(line_number, "trigger outside task"));
      }
      double a = 0, b = 0;
      int n = 0;
      if (tokens.size() >= 3 && tokens[1] == "periodic" &&
          ParseDouble(tokens[2], &a) &&
          (tokens.size() == 3 ||
           (tokens.size() == 4 && ParseDouble(tokens[3], &b)))) {
        current.trigger = TriggerSpec::Periodic(a, b);
      } else if (tokens.size() == 3 && tokens[1] == "poisson" &&
                 ParseDouble(tokens[2], &a)) {
        current.trigger = TriggerSpec::Poisson(a);
      } else if (tokens.size() == 5 && tokens[1] == "bursty" &&
                 ParseDouble(tokens[2], &a) && ParseInt(tokens[3], &n) &&
                 ParseDouble(tokens[4], &b)) {
        current.trigger = TriggerSpec::Bursty(a, n, b);
      } else {
        return E::Error(LineError(line_number, "bad trigger spec"));
      }
    } else if (keyword == "subtask") {
      if (!in_task) {
        return E::Error(LineError(line_number, "subtask outside task"));
      }
      if (tokens.size() != 4 && tokens.size() != 5) {
        return E::Error(LineError(
            line_number,
            "expected: subtask <name> <resource> <wcet> [min_share]"));
      }
      SubtaskSpec spec;
      spec.name = tokens[1];
      const auto it = resource_index.find(tokens[2]);
      if (it == resource_index.end()) {
        return E::Error(LineError(line_number,
                                  "unknown resource '" + tokens[2] + "'"));
      }
      spec.resource = ResourceId(it->second);
      if (!ParseDouble(tokens[3], &spec.wcet_ms)) {
        return E::Error(LineError(line_number, "bad wcet"));
      }
      if (tokens.size() == 5 && !ParseDouble(tokens[4], &spec.min_share)) {
        return E::Error(LineError(line_number, "bad min_share"));
      }
      current.subtasks.push_back(std::move(spec));
    } else if (keyword == "edge") {
      if (!in_task) {
        return E::Error(LineError(line_number, "edge outside task"));
      }
      int from = 0, to = 0;
      if (tokens.size() != 3 || !ParseInt(tokens[1], &from) ||
          !ParseInt(tokens[2], &to)) {
        return E::Error(LineError(line_number, "expected: edge <from> <to>"));
      }
      current.edges.emplace_back(from, to);
    } else if (keyword == "end") {
      if (!in_task) {
        return E::Error(LineError(line_number, "'end' without task"));
      }
      tasks.push_back(std::move(current));
      in_task = false;
    } else {
      return E::Error(
          LineError(line_number, "unknown keyword '" + keyword + "'"));
    }
  }
  if (in_task) {
    return E::Error("unexpected end of input: task '" + current.name +
                    "' missing 'end'");
  }
  return Workload::Create(std::move(resources), std::move(tasks));
}

Expected<Workload> LoadWorkloadFromString(const std::string& text) {
  std::istringstream is(text);
  return LoadWorkload(is);
}

Expected<Workload> LoadWorkloadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Expected<Workload>::Error("cannot open '" + path + "'");
  }
  return LoadWorkload(in);
}

Status SaveWorkload(const Workload& workload, std::ostream& out) {
  out << "# LLA workload (see model/serialization.h for the format)\n";
  for (const ResourceInfo& resource : workload.resources()) {
    out << "resource " << resource.name << ' '
        << (resource.kind == ResourceKind::kCpu ? "cpu" : "link") << ' '
        << resource.capacity << ' ' << resource.lag_ms << '\n';
  }
  for (const TaskInfo& task : workload.tasks()) {
    out << "task " << task.name << ' ' << task.critical_time_ms << '\n';

    const UtilityFunction* utility = task.utility.get();
    if (const auto* linear = dynamic_cast<const LinearUtility*>(utility)) {
      out << "  utility linear " << linear->offset() << ' '
          << linear->slope() << '\n';
    } else if (const auto* power =
                   dynamic_cast<const PowerUtility*>(utility)) {
      out << "  utility power " << power->offset() << ' ' << power->coeff()
          << ' ' << power->exponent() << '\n';
    } else if (const auto* negexp =
                   dynamic_cast<const NegExpUtility*>(utility)) {
      out << "  utility negexp " << negexp->offset() << ' ' << negexp->rate()
          << '\n';
    } else if (const auto* inelastic =
                   dynamic_cast<const InelasticUtility*>(utility)) {
      out << "  utility inelastic " << inelastic->plateau() << ' '
          << inelastic->flat_until() << ' ' << inelastic->steepness()
          << '\n';
    } else {
      return Status::Error("SaveWorkload: unknown utility class for task '" +
                           task.name + "'");
    }

    switch (task.trigger.kind) {
      case TriggerSpec::Kind::kPeriodic:
        out << "  trigger periodic " << task.trigger.period_ms << ' '
            << task.trigger.phase_ms << '\n';
        break;
      case TriggerSpec::Kind::kPoisson:
        out << "  trigger poisson " << task.trigger.rate_per_s << '\n';
        break;
      case TriggerSpec::Kind::kBursty:
        out << "  trigger bursty " << task.trigger.period_ms << ' '
            << task.trigger.burst_size << ' '
            << task.trigger.burst_spread_ms << '\n';
        break;
    }
    for (SubtaskId sid : task.subtasks) {
      const SubtaskInfo& sub = workload.subtask(sid);
      out << "  subtask " << sub.name << ' '
          << workload.resource(sub.resource).name << ' ' << sub.wcet_ms
          << ' ' << sub.min_share << '\n';
    }
    for (const auto& [from, to] : task.dag.edges()) {
      out << "  edge " << from << ' ' << to << '\n';
    }
    out << "end\n";
  }
  return Status{};
}

Expected<std::string> SaveWorkloadToString(const Workload& workload) {
  std::ostringstream os;
  const Status status = SaveWorkload(workload, os);
  if (!status.ok()) return Expected<std::string>::Error(status.error());
  return os.str();
}

Status SaveWorkloadToFile(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open '" + path + "' for writing");
  return SaveWorkload(workload, out);
}

}  // namespace lla
