#include "model/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

#include "model/utility.h"

namespace lla {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

bool ParseDouble(const std::string& token, double* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stod(token, &consumed);
  } catch (...) {
    return false;
  }
  return consumed == token.size();
}

bool ParseInt(const std::string& token, int* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stoi(token, &consumed);
  } catch (...) {
    return false;
  }
  return consumed == token.size();
}

std::string LineError(int line, const std::string& message) {
  std::ostringstream os;
  os << "line " << line << ": " << message;
  return os.str();
}

}  // namespace

Expected<Workload> LoadWorkload(std::istream& in) {
  using E = Expected<Workload>;
  std::vector<ResourceSpec> resources;
  std::map<std::string, std::size_t> resource_index;
  std::vector<TaskSpec> tasks;
  TaskSpec current;
  bool in_task = false;

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "resource") {
      if (in_task) {
        return E::Error(LineError(line_number,
                                  "resource declared inside a task block"));
      }
      if (tokens.size() != 5) {
        return E::Error(LineError(
            line_number, "expected: resource <name> <cpu|link> <cap> <lag>"));
      }
      ResourceSpec spec;
      spec.name = tokens[1];
      if (tokens[2] == "cpu") {
        spec.kind = ResourceKind::kCpu;
      } else if (tokens[2] == "link") {
        spec.kind = ResourceKind::kNetworkLink;
      } else {
        return E::Error(LineError(line_number,
                                  "resource kind must be cpu or link"));
      }
      if (!ParseDouble(tokens[3], &spec.capacity) ||
          !ParseDouble(tokens[4], &spec.lag_ms)) {
        return E::Error(LineError(line_number, "bad capacity/lag number"));
      }
      if (resource_index.count(spec.name)) {
        return E::Error(
            LineError(line_number, "duplicate resource '" + spec.name + "'"));
      }
      resource_index[spec.name] = resources.size();
      resources.push_back(std::move(spec));
    } else if (keyword == "task") {
      if (in_task) {
        return E::Error(
            LineError(line_number, "missing 'end' before new task"));
      }
      if (tokens.size() != 3) {
        return E::Error(LineError(
            line_number, "expected: task <name> <critical_time_ms>"));
      }
      current = TaskSpec{};
      current.name = tokens[1];
      if (!ParseDouble(tokens[2], &current.critical_time_ms)) {
        return E::Error(LineError(line_number, "bad critical time"));
      }
      in_task = true;
    } else if (keyword == "utility") {
      if (!in_task) {
        return E::Error(LineError(line_number, "utility outside task"));
      }
      double a = 0, b = 0, c = 0;
      if (tokens.size() >= 4 && tokens[1] == "linear" &&
          ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b) &&
          tokens.size() == 4) {
        current.utility = std::make_shared<LinearUtility>(a, b);
      } else if (tokens.size() == 5 && tokens[1] == "power" &&
                 ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b) &&
                 ParseDouble(tokens[4], &c)) {
        current.utility = std::make_shared<PowerUtility>(a, b, c);
      } else if (tokens.size() == 4 && tokens[1] == "negexp" &&
                 ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b)) {
        current.utility = std::make_shared<NegExpUtility>(a, b);
      } else if (tokens.size() == 5 && tokens[1] == "inelastic" &&
                 ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b) &&
                 ParseDouble(tokens[4], &c)) {
        current.utility = std::make_shared<InelasticUtility>(a, b, c);
      } else {
        return E::Error(LineError(line_number, "bad utility spec"));
      }
    } else if (keyword == "trigger") {
      if (!in_task) {
        return E::Error(LineError(line_number, "trigger outside task"));
      }
      double a = 0, b = 0;
      int n = 0;
      if (tokens.size() >= 3 && tokens[1] == "periodic" &&
          ParseDouble(tokens[2], &a) &&
          (tokens.size() == 3 ||
           (tokens.size() == 4 && ParseDouble(tokens[3], &b)))) {
        current.trigger = TriggerSpec::Periodic(a, b);
      } else if (tokens.size() == 3 && tokens[1] == "poisson" &&
                 ParseDouble(tokens[2], &a)) {
        current.trigger = TriggerSpec::Poisson(a);
      } else if (tokens.size() == 5 && tokens[1] == "bursty" &&
                 ParseDouble(tokens[2], &a) && ParseInt(tokens[3], &n) &&
                 ParseDouble(tokens[4], &b)) {
        current.trigger = TriggerSpec::Bursty(a, n, b);
      } else {
        return E::Error(LineError(line_number, "bad trigger spec"));
      }
    } else if (keyword == "subtask") {
      if (!in_task) {
        return E::Error(LineError(line_number, "subtask outside task"));
      }
      if (tokens.size() != 4 && tokens.size() != 5) {
        return E::Error(LineError(
            line_number,
            "expected: subtask <name> <resource> <wcet> [min_share]"));
      }
      SubtaskSpec spec;
      spec.name = tokens[1];
      const auto it = resource_index.find(tokens[2]);
      if (it == resource_index.end()) {
        return E::Error(LineError(line_number,
                                  "unknown resource '" + tokens[2] + "'"));
      }
      spec.resource = ResourceId(it->second);
      if (!ParseDouble(tokens[3], &spec.wcet_ms)) {
        return E::Error(LineError(line_number, "bad wcet"));
      }
      if (tokens.size() == 5 && !ParseDouble(tokens[4], &spec.min_share)) {
        return E::Error(LineError(line_number, "bad min_share"));
      }
      current.subtasks.push_back(std::move(spec));
    } else if (keyword == "edge") {
      if (!in_task) {
        return E::Error(LineError(line_number, "edge outside task"));
      }
      int from = 0, to = 0;
      if (tokens.size() != 3 || !ParseInt(tokens[1], &from) ||
          !ParseInt(tokens[2], &to)) {
        return E::Error(LineError(line_number, "expected: edge <from> <to>"));
      }
      current.edges.emplace_back(from, to);
    } else if (keyword == "end") {
      if (!in_task) {
        return E::Error(LineError(line_number, "'end' without task"));
      }
      tasks.push_back(std::move(current));
      in_task = false;
    } else {
      return E::Error(
          LineError(line_number, "unknown keyword '" + keyword + "'"));
    }
  }
  if (in_task) {
    return E::Error("unexpected end of input: task '" + current.name +
                    "' missing 'end'");
  }
  return Workload::Create(std::move(resources), std::move(tasks));
}

Expected<Workload> LoadWorkloadFromString(const std::string& text) {
  std::istringstream is(text);
  return LoadWorkload(is);
}

Expected<Workload> LoadWorkloadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Expected<Workload>::Error("cannot open '" + path + "'");
  }
  return LoadWorkload(in);
}

Status SaveWorkload(const Workload& workload, std::ostream& out) {
  out << "# LLA workload (see model/serialization.h for the format)\n";
  for (const ResourceInfo& resource : workload.resources()) {
    out << "resource " << resource.name << ' '
        << (resource.kind == ResourceKind::kCpu ? "cpu" : "link") << ' '
        << resource.capacity << ' ' << resource.lag_ms << '\n';
  }
  for (const TaskInfo& task : workload.tasks()) {
    out << "task " << task.name << ' ' << task.critical_time_ms << '\n';

    const UtilityFunction* utility = task.utility.get();
    if (const auto* linear = dynamic_cast<const LinearUtility*>(utility)) {
      out << "  utility linear " << linear->offset() << ' '
          << linear->slope() << '\n';
    } else if (const auto* power =
                   dynamic_cast<const PowerUtility*>(utility)) {
      out << "  utility power " << power->offset() << ' ' << power->coeff()
          << ' ' << power->exponent() << '\n';
    } else if (const auto* negexp =
                   dynamic_cast<const NegExpUtility*>(utility)) {
      out << "  utility negexp " << negexp->offset() << ' ' << negexp->rate()
          << '\n';
    } else if (const auto* inelastic =
                   dynamic_cast<const InelasticUtility*>(utility)) {
      out << "  utility inelastic " << inelastic->plateau() << ' '
          << inelastic->flat_until() << ' ' << inelastic->steepness()
          << '\n';
    } else {
      return Status::Error("SaveWorkload: unknown utility class for task '" +
                           task.name + "'");
    }

    switch (task.trigger.kind) {
      case TriggerSpec::Kind::kPeriodic:
        out << "  trigger periodic " << task.trigger.period_ms << ' '
            << task.trigger.phase_ms << '\n';
        break;
      case TriggerSpec::Kind::kPoisson:
        out << "  trigger poisson " << task.trigger.rate_per_s << '\n';
        break;
      case TriggerSpec::Kind::kBursty:
        out << "  trigger bursty " << task.trigger.period_ms << ' '
            << task.trigger.burst_size << ' '
            << task.trigger.burst_spread_ms << '\n';
        break;
    }
    for (SubtaskId sid : task.subtasks) {
      const SubtaskInfo& sub = workload.subtask(sid);
      out << "  subtask " << sub.name << ' '
          << workload.resource(sub.resource).name << ' ' << sub.wcet_ms
          << ' ' << sub.min_share << '\n';
    }
    for (const auto& [from, to] : task.dag.edges()) {
      out << "  edge " << from << ' ' << to << '\n';
    }
    out << "end\n";
  }
  return Status{};
}

Expected<std::string> SaveWorkloadToString(const Workload& workload) {
  std::ostringstream os;
  const Status status = SaveWorkload(workload, os);
  if (!status.ok()) return Expected<std::string>::Error(status.error());
  return os.str();
}

Status SaveWorkloadToFile(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open '" + path + "' for writing");
  return SaveWorkload(workload, out);
}

// ---------------------------------------------------------------------------
// StateSnapshot: line-oriented like the workload format above, but every
// double travels as the zero-padded hex of its IEEE-754 bit pattern so the
// round-trip is bit-exact (the Restore() memcmp guarantee depends on it).
//
//   snapshot v2
//   shape <resources> <paths> <subtasks> <tasks>
//   counters <iteration> <converged 0|1> <total_subtask_solves>
//   step_iteration <n>
//   price_state_primed <0|1>
//   momentum_restarts <n>                      (v2)
//   fvec <name> <count> <hex64>...
//   u8vec <name> <count> <int>...
//   u32vec <name> <count> <int>...
//   end
//
// v2 adds the accelerated-dynamics sections: the momentum_restarts counter
// and the mu_velocity / lambda_velocity / mu_base / lambda_base /
// mu_phase / lambda_phase fvecs.  The
// loader accepts both headers — a v1 file simply has none of those, which
// LlaEngine::Restore treats as fresh (zero) momentum.
// ---------------------------------------------------------------------------

namespace {

std::uint64_t DoubleBits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(std::uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

bool ParseU64(const std::string& token, int base, std::uint64_t* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stoull(token, &consumed, base);
  } catch (...) {
    return false;
  }
  return consumed == token.size();
}

bool ParseI64(const std::string& token, std::int64_t* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stoll(token, &consumed);
  } catch (...) {
    return false;
  }
  return consumed == token.size();
}

void WriteDoubleVec(std::ostream& out, const char* name,
                    const std::vector<double>& values) {
  out << "fvec " << name << ' ' << values.size() << std::hex;
  for (double value : values) {
    out << ' ' << std::setw(16) << std::setfill('0') << DoubleBits(value);
  }
  out << std::dec << std::setfill(' ') << '\n';
}

template <typename T>
void WriteIntVec(std::ostream& out, const char* tag, const char* name,
                 const std::vector<T>& values) {
  out << tag << ' ' << name << ' ' << values.size();
  for (T value : values) out << ' ' << static_cast<std::uint64_t>(value);
  out << '\n';
}

}  // namespace

Status SaveSnapshot(const StateSnapshot& snapshot, std::ostream& out) {
  out << "# LLA state snapshot (see model/serialization.h for the format)\n";
  out << "snapshot v2\n";
  out << "shape " << snapshot.resource_count << ' ' << snapshot.path_count
      << ' ' << snapshot.subtask_count << ' ' << snapshot.task_count << '\n';
  out << "counters " << snapshot.iteration << ' '
      << (snapshot.converged ? 1 : 0) << ' ' << snapshot.total_subtask_solves
      << '\n';
  out << "step_iteration " << snapshot.step_iteration << '\n';
  out << "price_state_primed " << (snapshot.price_state_primed ? 1 : 0)
      << '\n';
  out << "momentum_restarts " << snapshot.momentum_restarts << '\n';
  WriteDoubleVec(out, "mu", snapshot.mu);
  WriteDoubleVec(out, "lambda", snapshot.lambda);
  WriteDoubleVec(out, "resource_step_multiplier",
                 snapshot.resource_step_multiplier);
  WriteDoubleVec(out, "path_step_multiplier", snapshot.path_step_multiplier);
  WriteDoubleVec(out, "recent_utilities", snapshot.recent_utilities);
  WriteDoubleVec(out, "mu_velocity", snapshot.mu_velocity);
  WriteDoubleVec(out, "lambda_velocity", snapshot.lambda_velocity);
  WriteDoubleVec(out, "mu_base", snapshot.mu_base);
  WriteDoubleVec(out, "lambda_base", snapshot.lambda_base);
  WriteDoubleVec(out, "mu_phase", snapshot.mu_phase);
  WriteDoubleVec(out, "lambda_phase", snapshot.lambda_phase);
  WriteDoubleVec(out, "shadow_mu", snapshot.shadow_mu);
  WriteDoubleVec(out, "shadow_lambda", snapshot.shadow_lambda);
  WriteDoubleVec(out, "prev_share_sums", snapshot.prev_share_sums);
  WriteDoubleVec(out, "prev_path_latencies", snapshot.prev_path_latencies);
  WriteIntVec(out, "u8vec", "mu_settled", snapshot.mu_settled);
  WriteIntVec(out, "u8vec", "lambda_settled", snapshot.lambda_settled);
  WriteIntVec(out, "u32vec", "mu_zero_epochs", snapshot.mu_zero_epochs);
  WriteIntVec(out, "u32vec", "lambda_zero_epochs",
              snapshot.lambda_zero_epochs);
  WriteIntVec(out, "u32vec", "mu_stable_epochs", snapshot.mu_stable_epochs);
  WriteIntVec(out, "u32vec", "lambda_stable_epochs",
              snapshot.lambda_stable_epochs);
  out << "end\n";
  if (!out) return Status::Error("SaveSnapshot: stream write failed");
  return Status{};
}

Expected<StateSnapshot> LoadSnapshot(std::istream& in) {
  using E = Expected<StateSnapshot>;
  StateSnapshot snap;
  bool saw_header = false;
  bool saw_end = false;

  std::map<std::string, std::vector<double>*> fvecs = {
      {"mu", &snap.mu},
      {"lambda", &snap.lambda},
      {"resource_step_multiplier", &snap.resource_step_multiplier},
      {"path_step_multiplier", &snap.path_step_multiplier},
      {"recent_utilities", &snap.recent_utilities},
      {"mu_velocity", &snap.mu_velocity},
      {"lambda_velocity", &snap.lambda_velocity},
      {"mu_base", &snap.mu_base},
      {"lambda_base", &snap.lambda_base},
      {"mu_phase", &snap.mu_phase},
      {"lambda_phase", &snap.lambda_phase},
      {"shadow_mu", &snap.shadow_mu},
      {"shadow_lambda", &snap.shadow_lambda},
      {"prev_share_sums", &snap.prev_share_sums},
      {"prev_path_latencies", &snap.prev_path_latencies},
  };
  std::map<std::string, std::vector<std::uint8_t>*> u8vecs = {
      {"mu_settled", &snap.mu_settled},
      {"lambda_settled", &snap.lambda_settled},
  };
  std::map<std::string, std::vector<std::uint32_t>*> u32vecs = {
      {"mu_zero_epochs", &snap.mu_zero_epochs},
      {"lambda_zero_epochs", &snap.lambda_zero_epochs},
      {"mu_stable_epochs", &snap.mu_stable_epochs},
      {"lambda_stable_epochs", &snap.lambda_stable_epochs},
  };

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (saw_end) {
      return E::Error(LineError(line_number, "content after 'end'"));
    }
    const std::string& keyword = tokens[0];

    if (keyword == "snapshot") {
      if (tokens.size() != 2 || (tokens[1] != "v1" && tokens[1] != "v2")) {
        return E::Error(LineError(line_number, "expected: snapshot v1|v2"));
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return E::Error(LineError(
          line_number, "file does not start with 'snapshot v1' or 'v2'"));
    }

    if (keyword == "shape") {
      if (tokens.size() != 5 ||
          !ParseU64(tokens[1], 10, &snap.resource_count) ||
          !ParseU64(tokens[2], 10, &snap.path_count) ||
          !ParseU64(tokens[3], 10, &snap.subtask_count) ||
          !ParseU64(tokens[4], 10, &snap.task_count)) {
        return E::Error(LineError(
            line_number, "expected: shape <resources> <paths> <subtasks> "
                         "<tasks>"));
      }
    } else if (keyword == "counters") {
      std::uint64_t converged = 0;
      if (tokens.size() != 4 || !ParseI64(tokens[1], &snap.iteration) ||
          !ParseU64(tokens[2], 10, &converged) || converged > 1 ||
          !ParseU64(tokens[3], 10, &snap.total_subtask_solves)) {
        return E::Error(LineError(
            line_number,
            "expected: counters <iteration> <converged 0|1> <solves>"));
      }
      snap.converged = converged == 1;
    } else if (keyword == "step_iteration") {
      if (tokens.size() != 2 || !ParseI64(tokens[1], &snap.step_iteration)) {
        return E::Error(LineError(line_number, "bad step_iteration"));
      }
    } else if (keyword == "price_state_primed") {
      std::uint64_t primed = 0;
      if (tokens.size() != 2 || !ParseU64(tokens[1], 10, &primed) ||
          primed > 1) {
        return E::Error(LineError(line_number, "bad price_state_primed"));
      }
      snap.price_state_primed = primed == 1;
    } else if (keyword == "momentum_restarts") {
      if (tokens.size() != 2 ||
          !ParseU64(tokens[1], 10, &snap.momentum_restarts)) {
        return E::Error(LineError(line_number, "bad momentum_restarts"));
      }
    } else if (keyword == "fvec" || keyword == "u8vec" ||
               keyword == "u32vec") {
      if (tokens.size() < 3) {
        return E::Error(
            LineError(line_number, "expected: " + keyword + " <name> <count>"));
      }
      std::uint64_t count = 0;
      if (!ParseU64(tokens[2], 10, &count) || tokens.size() != count + 3) {
        return E::Error(LineError(line_number,
                                  "vector count does not match values"));
      }
      const std::string& name = tokens[1];
      if (keyword == "fvec") {
        const auto it = fvecs.find(name);
        if (it == fvecs.end()) {
          return E::Error(LineError(line_number, "unknown fvec '" + name + "'"));
        }
        it->second->resize(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          std::uint64_t bits = 0;
          if (!ParseU64(tokens[3 + i], 16, &bits)) {
            return E::Error(LineError(line_number, "bad hex double"));
          }
          (*it->second)[i] = DoubleFromBits(bits);
        }
      } else if (keyword == "u8vec") {
        const auto it = u8vecs.find(name);
        if (it == u8vecs.end()) {
          return E::Error(
              LineError(line_number, "unknown u8vec '" + name + "'"));
        }
        it->second->resize(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          std::uint64_t value = 0;
          if (!ParseU64(tokens[3 + i], 10, &value) || value > 0xff) {
            return E::Error(LineError(line_number, "bad u8 value"));
          }
          (*it->second)[i] = static_cast<std::uint8_t>(value);
        }
      } else {
        const auto it = u32vecs.find(name);
        if (it == u32vecs.end()) {
          return E::Error(
              LineError(line_number, "unknown u32vec '" + name + "'"));
        }
        it->second->resize(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          std::uint64_t value = 0;
          if (!ParseU64(tokens[3 + i], 10, &value) || value > 0xffffffffull) {
            return E::Error(LineError(line_number, "bad u32 value"));
          }
          (*it->second)[i] = static_cast<std::uint32_t>(value);
        }
      }
    } else if (keyword == "end") {
      saw_end = true;
    } else {
      return E::Error(
          LineError(line_number, "unknown keyword '" + keyword + "'"));
    }
  }
  if (!saw_end) {
    return E::Error("unexpected end of input: snapshot missing 'end'");
  }
  if (snap.mu.size() != snap.resource_count ||
      snap.lambda.size() != snap.path_count) {
    return E::Error("snapshot price vectors do not match declared shape");
  }
  return snap;
}

Expected<StateSnapshot> LoadSnapshotFromString(const std::string& text) {
  std::istringstream is(text);
  return LoadSnapshot(is);
}

Expected<StateSnapshot> LoadSnapshotFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Expected<StateSnapshot>::Error("cannot open '" + path + "'");
  }
  return LoadSnapshot(in);
}

Expected<std::string> SaveSnapshotToString(const StateSnapshot& snapshot) {
  std::ostringstream os;
  const Status status = SaveSnapshot(snapshot, os);
  if (!status.ok()) return Expected<std::string>::Error(status.error());
  return os.str();
}

Status SaveSnapshotToFile(const StateSnapshot& snapshot,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open '" + path + "' for writing");
  return SaveSnapshot(snapshot, out);
}

}  // namespace lla
